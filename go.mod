module mptcpgo

go 1.21
