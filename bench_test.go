// Package-level benchmarks: one benchmark per table/figure of the paper's
// evaluation (each runs the corresponding experiment harness in its quick
// configuration and reports domain metrics via b.ReportMetric), plus
// micro-benchmarks for the hot code paths the paper discusses — the DSS/TCP
// checksum (Figure 3) and the four out-of-order reassembly algorithms
// (Figure 8).
package mptcpgo

import (
	"fmt"
	"io"
	"testing"
	"time"

	"mptcpgo/internal/buffer"
	"mptcpgo/internal/core"
	"mptcpgo/internal/experiments"
	"mptcpgo/internal/fleet"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/pool"
	"mptcpgo/internal/sim"
)

// runExperimentBench runs a registered experiment once per benchmark
// iteration with the quick sweep.
func runExperimentBench(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := experiments.RunAndPrint(io.Discard, id, experiments.Options{Quick: true, Seed: 42}); err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
	}
}

func BenchmarkFig03ChecksumGoodput(b *testing.B)  { runExperimentBench(b, "fig3") }
func BenchmarkFig04ReceiveWindow(b *testing.B)    { runExperimentBench(b, "fig4") }
func BenchmarkFig05Memory(b *testing.B)           { runExperimentBench(b, "fig5") }
func BenchmarkFig06aLossy3G(b *testing.B)         { runExperimentBench(b, "fig6a") }
func BenchmarkFig06bAsymGigabit(b *testing.B)     { runExperimentBench(b, "fig6b") }
func BenchmarkFig06cTripleGigabit(b *testing.B)   { runExperimentBench(b, "fig6c") }
func BenchmarkFig07AppLatency(b *testing.B)       { runExperimentBench(b, "fig7") }
func BenchmarkFig08OfoAlgorithms(b *testing.B)    { runExperimentBench(b, "fig8") }
func BenchmarkFig09Real3GWiFi(b *testing.B)       { runExperimentBench(b, "fig9") }
func BenchmarkFig10ConnectionSetup(b *testing.B)  { runExperimentBench(b, "fig10") }
func BenchmarkFig11HTTP(b *testing.B)             { runExperimentBench(b, "fig11") }
func BenchmarkMboxTraversal(b *testing.B)         { runExperimentBench(b, "mbox") }
func BenchmarkRationaleWindowDesign(b *testing.B) { runExperimentBench(b, "rationale") }

// BenchmarkFleetHTTP measures the sharded fleet engine's wall-clock scaling:
// the same 512-client closed-loop workload partitioned into 8 shards, run at
// 1/2/4/8 workers. The merged result is identical at every worker count (the
// fleet determinism tests pin this); only wall-clock should change — on a
// multi-core host, 8 workers should cut it well over 2× vs 1.
func BenchmarkFleetHTTP(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := fleet.DefaultHTTPSpec(42, 512, 2, 32<<10)
				spec.Shards = 8
				spec.Workers = workers
				if _, err := fleet.RunHTTP(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMPTCPTransferWiFi3G measures end-to-end simulated goodput of the
// full stack on the WiFi+3G scenario and reports it as a domain metric.
func BenchmarkMPTCPTransferWiFi3G(b *testing.B) {
	var goodput float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.SendBufBytes = 512 << 10
		cfg.RecvBufBytes = 512 << 10
		res, err := experiments.RunBulk(experiments.BulkOptions{
			Seed:     uint64(i + 1),
			Specs:    netem.WiFi3GSpec(),
			Client:   cfg,
			Server:   cfg,
			Duration: 10 * time.Second,
			Warmup:   3 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		goodput = res.GoodputMbps
	}
	b.ReportMetric(goodput, "Mbps")
}

// ---------------------------------------------------------------------------
// Figure 3 micro-benchmarks: checksum cost per byte
// ---------------------------------------------------------------------------

func benchmarkChecksum(b *testing.B, size int) {
	buf := make([]byte, size)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint16
	for i := 0; i < b.N; i++ {
		sink ^= packet.Checksum(buf)
	}
	_ = sink
}

func BenchmarkChecksum1460(b *testing.B) { benchmarkChecksum(b, 1460) }
func BenchmarkChecksum8960(b *testing.B) { benchmarkChecksum(b, 8960) }

func BenchmarkDSSChecksum1460(b *testing.B) {
	buf := make([]byte, 1460)
	b.SetBytes(1460)
	b.ReportAllocs()
	var sink uint16
	for i := 0; i < b.N; i++ {
		sink ^= packet.DSSChecksum(packet.DataSeq(i), uint32(i), 1460, buf)
	}
	_ = sink
}

// ---------------------------------------------------------------------------
// Figure 8 micro-benchmarks: out-of-order reassembly algorithms
// ---------------------------------------------------------------------------

// ofoWorkload simulates the arrival pattern at an MPTCP receiver whose
// slowest subflow is holding up the trailing edge: data sequence numbers are
// allocated to subflows in contiguous batches, subflow 0's segments are
// delayed to the very end (so the out-of-order queue stays large), and the
// remaining subflows' segments arrive interleaved but in per-subflow order —
// exactly the pattern the Shortcuts algorithms exploit.
func ofoWorkload(subflows, segments, batch int) []buffer.Item {
	const segSize = 1460
	perSubflow := make([][]buffer.Item, subflows)
	var alloc uint64
	for produced := 0; produced < segments; {
		for sf := 0; sf < subflows && produced < segments; sf++ {
			for k := 0; k < batch && produced < segments; k++ {
				perSubflow[sf] = append(perSubflow[sf], buffer.Item{
					Seq: alloc, Data: make([]byte, segSize), Subflow: sf,
				})
				alloc += segSize
				produced++
			}
		}
	}
	items := make([]buffer.Item, 0, segments)
	// Interleave subflows 1..N-1 first (round robin, per-subflow order)...
	idx := make([]int, subflows)
	for {
		emitted := false
		for sf := 1; sf < subflows; sf++ {
			if idx[sf] < len(perSubflow[sf]) {
				items = append(items, perSubflow[sf][idx[sf]])
				idx[sf]++
				emitted = true
			}
		}
		if !emitted {
			break
		}
	}
	// ...then the delayed subflow 0 delivers its backlog.
	items = append(items, perSubflow[0]...)
	return items
}

func benchmarkOfo(b *testing.B, alg buffer.Algorithm, subflows int) {
	items := ofoWorkload(subflows, 4096, 64)
	var steps uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := buffer.NewOfoQueue(alg)
		var next uint64
		for _, it := range items {
			q.Insert(it)
			for _, out := range q.PopContiguous(next) {
				next = out.End()
				pool.Recycle(out.Data) // popped items transfer ownership
			}
		}
		steps = q.Steps()
	}
	b.ReportMetric(float64(steps)/float64(len(items)), "steps/segment")
}

func BenchmarkOfoRegular2(b *testing.B)      { benchmarkOfo(b, buffer.AlgRegular, 2) }
func BenchmarkOfoTree2(b *testing.B)         { benchmarkOfo(b, buffer.AlgTree, 2) }
func BenchmarkOfoShortcuts2(b *testing.B)    { benchmarkOfo(b, buffer.AlgShortcuts, 2) }
func BenchmarkOfoAllShortcuts2(b *testing.B) { benchmarkOfo(b, buffer.AlgAllShortcuts, 2) }
func BenchmarkOfoRegular8(b *testing.B)      { benchmarkOfo(b, buffer.AlgRegular, 8) }
func BenchmarkOfoTree8(b *testing.B)         { benchmarkOfo(b, buffer.AlgTree, 8) }
func BenchmarkOfoShortcuts8(b *testing.B)    { benchmarkOfo(b, buffer.AlgShortcuts, 8) }
func BenchmarkOfoAllShortcuts8(b *testing.B) { benchmarkOfo(b, buffer.AlgAllShortcuts, 8) }

// ---------------------------------------------------------------------------
// Figure 10 micro-benchmarks: key generation and token uniqueness check
// ---------------------------------------------------------------------------

func benchmarkKeyGeneration(b *testing.B, established int) {
	rng := sim.NewRNG(7)
	table := core.NewTokenTable()
	for i := 0; i < established; i++ {
		_, token := table.GenerateUniqueKey(rng)
		table.Insert(token, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clientKey := core.GenerateKey(rng)
		_ = clientKey.Token()
		_ = clientKey.IDSN()
		serverKey, _ := table.GenerateUniqueKey(rng)
		_ = serverKey.IDSN()
	}
}

func BenchmarkKeyGeneration0Conns(b *testing.B)    { benchmarkKeyGeneration(b, 0) }
func BenchmarkKeyGeneration100Conns(b *testing.B)  { benchmarkKeyGeneration(b, 100) }
func BenchmarkKeyGeneration1000Conns(b *testing.B) { benchmarkKeyGeneration(b, 1000) }

// ---------------------------------------------------------------------------
// Hot-path allocation benchmarks
// ---------------------------------------------------------------------------

// BenchmarkSegmentPool measures the pooled build/release cycle of a data
// segment — the per-hop cost of the emulator's forwarding plane. Expected:
// 0 allocs/op at steady state.
func BenchmarkSegmentPool(b *testing.B) {
	payload := make([]byte, 1460)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg := packet.NewSegment()
		seg.Src = packet.Endpoint{Addr: packet.MakeAddr(10, 0, 0, 1), Port: 40000}
		seg.Dst = packet.Endpoint{Addr: packet.MakeAddr(10, 0, 0, 2), Port: 80}
		seg.Seq = packet.SeqNum(i)
		seg.Flags = packet.FlagACK | packet.FlagPSH
		seg.AttachPayload(pool.Copy(payload))
		seg.Release()
	}
}

// BenchmarkBulkTransferAllocs runs a short WiFi+3G bulk transfer and reports
// allocs/op: the end-to-end allocation footprint of the full stack (segment
// and payload pools, send-queue slicing, chunk/DSS free lists, per-segment
// option arenas, OFO recycling, event free list). ~59.8k allocs/op before
// chunk/DSS recycling, ~3.2k after; TestBulkTransferAllocBudget pins it.
func BenchmarkBulkTransferAllocs(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.SendBufBytes = 256 << 10
	cfg.RecvBufBytes = 256 << 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunBulk(experiments.BulkOptions{
			Seed:     uint64(i + 1),
			Specs:    netem.WiFi3GSpec(),
			Client:   cfg,
			Server:   cfg,
			Duration: 3 * time.Second,
			Warmup:   1 * time.Second,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Wire codec benchmarks
// ---------------------------------------------------------------------------

// BenchmarkSegmentEncodeDecode measures one full wire round trip with the
// pooled codec lifecycle: Encode into a pool-owned buffer, Decode into a
// pooled segment (arena options, payload borrowed from the wire buffer),
// then release both. Expected: 0 allocs/op at steady state.
func BenchmarkSegmentEncodeDecode(b *testing.B) {
	seg := &packet.Segment{
		Src:    packet.Endpoint{Addr: packet.MakeAddr(10, 0, 0, 1), Port: 40000},
		Dst:    packet.Endpoint{Addr: packet.MakeAddr(10, 0, 0, 2), Port: 80},
		Seq:    12345,
		Ack:    67890,
		Flags:  packet.FlagACK | packet.FlagPSH,
		Window: 65535,
		Options: []packet.Option{
			&packet.TimestampsOption{Val: 1, Echo: 2},
			&packet.DSSOption{HasDataACK: true, DataACK: 1000, HasMapping: true, DataSeq: 2000, SubflowOffset: 3000, Length: 1460, HasChecksum: true, Checksum: 0xbeef},
		},
		Payload: make([]byte, 1460),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire, err := packet.Encode(seg)
		if err != nil {
			b.Fatal(err)
		}
		dec, err := packet.Decode(seg.Src.Addr, seg.Dst.Addr, wire)
		if err != nil {
			b.Fatal(err)
		}
		dec.Release()
		packet.ReleaseWire(wire)
	}
}
