// Command mboxprobe runs the middlebox traversal matrix: each middlebox
// behaviour from §3/§4.1 of the paper is installed on an emulated path and
// the tool reports whether MPTCP kept working, fell back to regular TCP or
// reset the affected subflow — and whether the data transfer completed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mptcpgo/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shorter transfers")
	seed := flag.Uint64("seed", 42, "base RNG seed")
	pcapDir := flag.String("pcap-dir", "", "capture each matrix case's wire traffic into this directory (classic pcap, one file per case)")
	traceDir := flag.String("trace-dir", "", "flight recorder: write mbox-NN-trace.json and mbox-NN-events.jsonl per matrix case into this directory (capture never changes results)")
	probeInterval := flag.Duration("probe-interval", 0, "flight recorder: per-subflow sampling cadence in simulated time (0 = events only; needs -trace-dir)")
	flag.Parse()

	opts := []experiments.Option{experiments.WithSeed(*seed)}
	if *quick {
		opts = append(opts, experiments.WithQuick())
	}
	if *pcapDir != "" {
		opts = append(opts, experiments.WithPcapDir(*pcapDir))
	}
	if *traceDir != "" {
		opts = append(opts, experiments.WithTrace(*traceDir, time.Duration(*probeInterval)))
	}
	res, err := experiments.Run("mbox", opts...)
	if err == nil {
		err = res.Text(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
