// Command mboxprobe runs the middlebox traversal matrix: each middlebox
// behaviour from §3/§4.1 of the paper is installed on an emulated path and
// the tool reports whether MPTCP kept working, fell back to regular TCP or
// reset the affected subflow — and whether the data transfer completed.
package main

import (
	"flag"
	"fmt"
	"os"

	"mptcpgo/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shorter transfers")
	seed := flag.Uint64("seed", 42, "base RNG seed")
	pcapDir := flag.String("pcap-dir", "", "capture each matrix case's wire traffic into this directory (classic pcap, one file per case)")
	flag.Parse()

	opts := []experiments.Option{experiments.WithSeed(*seed)}
	if *quick {
		opts = append(opts, experiments.WithQuick())
	}
	if *pcapDir != "" {
		opts = append(opts, experiments.WithPcapDir(*pcapDir))
	}
	res, err := experiments.Run("mbox", opts...)
	if err == nil {
		err = res.Text(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
