// Command httpbench runs the apachebench-style HTTP workload of Figure 11:
// closed-loop clients fetching fixed-size responses over regular TCP, TCP
// with link bonding, or MPTCP.
package main

import (
	"flag"
	"fmt"
	"os"

	"mptcpgo/internal/experiments"
)

func main() {
	mode := flag.String("mode", "mptcp", "transport: tcp | bonding | mptcp")
	size := flag.Int("size", 100<<10, "transfer size in bytes")
	clients := flag.Int("clients", 100, "number of concurrent closed-loop clients")
	requests := flag.Int("requests", 2000, "total requests to issue")
	seed := flag.Uint64("seed", 42, "RNG seed")
	sweep := flag.Bool("sweep", false, "run the full Figure 11 sweep instead of a single point")
	quick := flag.Bool("quick", false, "smaller sweep (with -sweep)")
	flag.Parse()

	if *sweep {
		opts := []experiments.Option{experiments.WithSeed(*seed)}
		if *quick {
			opts = append(opts, experiments.WithQuick())
		}
		res, err := experiments.Run("fig11", opts...)
		if err == nil {
			err = res.Text(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	res, err := experiments.RunFig11Point(*seed, *mode, *size, *clients, *requests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("mode=%s size=%dKB clients=%d\n", *mode, *size>>10, *clients)
	fmt.Printf("  completed:      %d (failed %d)\n", res.Completed, res.Failed)
	fmt.Printf("  requests/sec:   %.1f\n", res.RequestsPerSec)
	fmt.Printf("  mean latency:   %v\n", res.MeanLatency)
	fmt.Printf("  p95 latency:    %v\n", res.P95Latency)
	fmt.Printf("  bytes received: %d\n", res.BytesReceived)
}
