// Command httpbench runs the apachebench-style HTTP workload of Figure 11:
// closed-loop clients fetching fixed-size responses over regular TCP, TCP
// with link bonding, or MPTCP. Like mptcpbench, it renders a structured
// Result in text (default), JSON or CSV form.
//
// Usage:
//
//	httpbench -mode mptcp -size 102400 -clients 100
//	httpbench -sweep -quick -format json -out fig11.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mptcpgo/internal/experiments"
)

func main() {
	mode := flag.String("mode", "mptcp", "transport: tcp | bonding | mptcp")
	size := flag.Int("size", 100<<10, "transfer size in bytes")
	clients := flag.Int("clients", 100, "number of concurrent closed-loop clients")
	requests := flag.Int("requests", 2000, "total requests to issue")
	seed := flag.Uint64("seed", 42, "RNG seed")
	sweep := flag.Bool("sweep", false, "run the full Figure 11 sweep instead of a single point")
	quick := flag.Bool("quick", false, "smaller sweep (with -sweep)")
	traceDir := flag.String("trace-dir", "", "flight recorder: write httpbench-trace.json and httpbench-events.jsonl into this directory (single-point runs only; capture never changes results)")
	probeInterval := flag.Duration("probe-interval", 0, "flight recorder: per-subflow sampling cadence in simulated time (0 = events only; needs -trace-dir)")
	format := flag.String("format", "text", "output format: text | json | csv")
	out := flag.String("out", "", "write output to this file instead of stdout")
	flag.Parse()

	switch *format {
	case "text", "json", "csv":
	default:
		fail(fmt.Errorf("unknown output format %q (want text, json or csv)", *format))
	}

	var res *experiments.Result
	var err error
	if *sweep {
		if *traceDir != "" {
			fail(fmt.Errorf("-trace-dir applies to single-point runs only, not -sweep"))
		}
		opts := []experiments.Option{experiments.WithSeed(*seed)}
		if *quick {
			opts = append(opts, experiments.WithQuick())
		}
		res, err = experiments.Run("fig11", opts...)
	} else {
		tspec := experiments.TraceSpec{Dir: *traceDir, ProbeInterval: *probeInterval}
		res, err = runPoint(*seed, *mode, *size, *clients, *requests, tspec)
	}
	if err != nil {
		fail(err)
	}

	w := os.Stdout
	if *out != "" {
		f, cerr := os.Create(*out)
		if cerr != nil {
			fail(cerr)
		}
		defer f.Close()
		w = f
	}
	if err := experiments.WriteResults(w, *format, []*experiments.Result{res}); err != nil {
		fail(err)
	}
}

// runPoint runs one (mode, size) combination and wraps the pool summary as a
// structured Result so every output format of the sweep path works for single
// points too.
func runPoint(seed uint64, mode string, size, clients, requests int, tspec experiments.TraceSpec) (*experiments.Result, error) {
	start := time.Now()
	pr, err := experiments.RunFig11PointTraced(seed, mode, size, clients, requests, tspec)
	if err != nil {
		return nil, err
	}
	res := &experiments.Result{
		ID:      "httpbench",
		Title:   fmt.Sprintf("HTTP benchmark point — mode=%s size=%dKB clients=%d", mode, size>>10, clients),
		Seed:    seed,
		Elapsed: time.Since(start),
	}
	table := experiments.NewTable(fmt.Sprintf("%d closed-loop clients, %d requests", clients, requests),
		"metric", "value")
	table.AddRow("completed", fmt.Sprintf("%d", pr.Completed))
	table.AddRow("failed", fmt.Sprintf("%d", pr.Failed))
	table.AddRow("requests/sec", fmt.Sprintf("%.1f", pr.RequestsPerSec))
	table.AddRow("mean latency", pr.MeanLatency.String())
	table.AddRow("p95 latency", pr.P95Latency.String())
	table.AddRow("bytes received", fmt.Sprintf("%d", pr.BytesReceived))
	res.AddTable(table)
	res.AddSeries(experiments.Series{Name: "requests/sec", Unit: "req/s", Y: []float64{pr.RequestsPerSec}})
	return res, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
