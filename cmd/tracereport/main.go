// Command tracereport summarises flight-recorder output: given one or more
// `*-events.jsonl` files (or directories containing them, as written by the
// -trace-dir flag of mptcpbench / httpbench / mboxprobe), it renders the
// event tally by kind, per-subflow cwnd timelines, watchdog stall episodes
// with cause attribution, and the RTO drain-tail breakdown.
//
// Usage:
//
//	tracereport traces/                       # every *-events.jsonl inside
//	tracereport traces/fleet-chaos-events.jsonl
//	tracereport -format json traces/          # machine-readable summary
//	tracereport -require-events traces/       # exit 1 if any file is empty (CI)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"mptcpgo/internal/probe"
)

func main() {
	format := flag.String("format", "text", "output format: text | json")
	width := flag.Int("width", 64, "cwnd timeline width in columns")
	top := flag.Int("top", 8, "maximum subflow timelines to render (busiest first)")
	noTimeline := flag.Bool("no-timeline", false, "skip the per-subflow cwnd timelines")
	requireEvents := flag.Bool("require-events", false, "exit with status 1 if any input file holds zero events")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracereport [flags] <events.jsonl or trace dir>...")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *format != "text" && *format != "json" {
		fail(fmt.Errorf("unknown output format %q (want text or json)", *format))
	}

	files, err := collectFiles(flag.Args())
	if err != nil {
		fail(err)
	}
	if len(files) == 0 {
		fail(fmt.Errorf("no *-events.jsonl files found under %s", strings.Join(flag.Args(), ", ")))
	}

	empty := 0
	if *format == "json" {
		reports := make([]fileReport, 0, len(files))
		for _, path := range files {
			r, err := buildReport(path)
			if err != nil {
				fail(err)
			}
			if r.Events == 0 {
				empty++
			}
			reports = append(reports, r)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fail(err)
		}
	} else {
		for i, path := range files {
			if i > 0 {
				fmt.Println()
			}
			n, err := report(path, *width, *top, !*noTimeline)
			if err != nil {
				fail(err)
			}
			if n == 0 {
				empty++
			}
		}
	}
	if *requireEvents && empty > 0 {
		fmt.Fprintf(os.Stderr, "tracereport: %d of %d event files are empty\n", empty, len(files))
		os.Exit(1)
	}
}

// fileReport is the -format json summary of one events file: the same kind
// tally, stall attribution and drain-tail breakdown the text report renders,
// minus the timelines (which are a terminal visualisation, not data).
type fileReport struct {
	File          string            `json:"file"`
	Events        int               `json:"events"`
	Members       int               `json:"members"`
	FirstNs       int64             `json:"first_ns"`
	LastNs        int64             `json:"last_ns"`
	Kinds         map[string]uint64 `json:"kinds,omitempty"`
	StallEpisodes int               `json:"stall_episodes"`
	Stalls        []stallReport     `json:"stalls,omitempty"`
	DrainTailNs   int64             `json:"drain_tail_ns"`
	DrainTails    []tailReport      `json:"drain_tails,omitempty"`
}

type stallReport struct {
	AtNs       int64  `json:"at_ns"`
	Member     int32  `json:"member"`
	EntryBytes int64  `json:"entry_bytes"`
	Cause      string `json:"cause"`
}

type tailReport struct {
	Member    int32 `json:"member"`
	Conn      int32 `json:"conn"`
	Subflow   int32 `json:"subflow"`
	Count     int   `json:"count"`
	StartNs   int64 `json:"start_ns"`
	LastNs    int64 `json:"last_ns"`
	LastRTONs int64 `json:"last_rto_ns"`
	TailNs    int64 `json:"tail_ns"`
}

// buildReport parses one events file into its machine-readable summary.
func buildReport(path string) (fileReport, error) {
	r := fileReport{File: filepath.Base(path)}
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	events, err := probe.ParseJSONL(data)
	if err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	r.Events = len(events)
	if len(events) == 0 {
		return r, nil
	}
	first, last := events[0].At, events[0].At
	memberSet := map[int32]bool{}
	for _, e := range events {
		if e.At < first {
			first = e.At
		}
		if e.At > last {
			last = e.At
		}
		memberSet[e.Member] = true
	}
	r.Members = len(memberSet)
	r.FirstNs, r.LastNs = int64(first), int64(last)

	r.Kinds = map[string]uint64{}
	for k, n := range probe.CountKinds(events) {
		if n > 0 {
			r.Kinds[probe.Kind(k).String()] = n
		}
	}

	r.StallEpisodes = probe.StallEpisodes(events)
	for i, e := range events {
		if e.Kind != probe.KindStall {
			continue
		}
		r.Stalls = append(r.Stalls, stallReport{
			AtNs: int64(e.At), Member: e.Member, EntryBytes: e.A,
			Cause: stallCause(events, i),
		})
	}

	r.DrainTailNs = int64(probe.DrainTail(events))
	tails := probe.DrainTails(events)
	sort.SliceStable(tails, func(i, j int) bool { return tails[i].Tail() > tails[j].Tail() })
	for _, t := range tails {
		r.DrainTails = append(r.DrainTails, tailReport{
			Member: t.Member, Conn: t.Conn, Subflow: t.Subflow, Count: t.Count,
			StartNs: int64(t.Start), LastNs: int64(t.Last),
			LastRTONs: int64(t.LastRTO), TailNs: int64(t.Tail()),
		})
	}
	return r, nil
}

// collectFiles expands each argument: a directory yields every
// *-events.jsonl inside (sorted by name), a file is taken as-is.
func collectFiles(args []string) ([]string, error) {
	var files []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(arg, "*-events.jsonl"))
		if err != nil {
			return nil, err
		}
		sort.Strings(matches)
		files = append(files, matches...)
	}
	return files, nil
}

func report(path string, width, top int, timeline bool) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	events, err := probe.ParseJSONL(data)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}

	fmt.Printf("== %s ==\n", filepath.Base(path))
	if len(events) == 0 {
		fmt.Println("no events")
		return 0, nil
	}
	first, last := events[0].At, events[0].At
	memberSet := map[int32]bool{}
	for _, e := range events {
		if e.At < first {
			first = e.At
		}
		if e.At > last {
			last = e.At
		}
		memberSet[e.Member] = true
	}
	fmt.Printf("%d events, %d members, %s .. %s\n\n",
		len(events), len(memberSet), fmtT(first), fmtT(last))

	reportKinds(events)
	reportStalls(events)
	reportDrainTail(events)
	if timeline {
		reportTimelines(events, width, top)
	}
	return len(events), nil
}

func reportKinds(events []probe.Event) {
	counts := probe.CountKinds(events)
	fmt.Println("events by kind:")
	for k, n := range counts {
		if n > 0 {
			fmt.Printf("  %-14s %d\n", probe.Kind(k).String(), n)
		}
	}
	fmt.Println()
}

// reportStalls lists watchdog stall-entry events and attributes each to the
// most recent preceding fault, RTO or subflow death on the same member.
func reportStalls(events []probe.Event) {
	n := probe.StallEpisodes(events)
	fmt.Printf("stall episodes: %d\n", n)
	for i, e := range events {
		if e.Kind != probe.KindStall {
			continue
		}
		fmt.Printf("  t=%s member=%d entry-bytes=%d cause: %s\n", fmtT(e.At), e.Member, e.A, stallCause(events, i))
	}
	fmt.Println()
}

// stallCause attributes the stall-entry event at index i to the most recent
// preceding fault, RTO, subflow death or REMOVE_ADDR on the same member
// within the lookback window. Shared by the text and JSON reports so both
// attribute identically.
func stallCause(events []probe.Event, i int) string {
	const lookback = 10 * time.Second
	e := events[i]
	for j := i - 1; j >= 0; j-- {
		p := events[j]
		if p.Member != e.Member || e.At-p.At > lookback {
			// Events are time-ordered per member, so once the window is
			// exceeded for this member nothing earlier can qualify.
			if p.Member == e.Member {
				break
			}
			continue
		}
		switch p.Kind {
		case probe.KindFaultAction:
			return fmt.Sprintf("fault %s path=%d at %s (-%s)",
				probe.FaultName(p.A), p.B, fmtT(p.At), fmtT(e.At-p.At))
		case probe.KindRTO:
			return fmt.Sprintf("rto x%d (backed-off %s) on conn=%d sf=%d at %s (-%s)",
				p.A, time.Duration(p.B), p.Conn, p.Subflow, fmtT(p.At), fmtT(e.At-p.At))
		case probe.KindSubflowFailed:
			return fmt.Sprintf("subflow death conn=%d sf=%d at %s (-%s)",
				p.Conn, p.Subflow, fmtT(p.At), fmtT(e.At-p.At))
		case probe.KindAddrRemoved:
			return fmt.Sprintf("REMOVE_ADDR conn=%d at %s (-%s)",
				p.Conn, fmtT(p.At), fmtT(e.At-p.At))
		}
	}
	return "no prior fault/RTO on this member within 10s"
}

func reportDrainTail(events []probe.Event) {
	tails := probe.DrainTails(events)
	fmt.Printf("rto drain tail: %s (max over %d subflows with RTOs)\n",
		fmtT(probe.DrainTail(events)), len(tails))
	// Worst tails first; the breakdown shows where the completion time went.
	sort.SliceStable(tails, func(i, j int) bool { return tails[i].Tail() > tails[j].Tail() })
	shown := len(tails)
	if shown > 10 {
		shown = 10
	}
	for _, t := range tails[:shown] {
		fmt.Printf("  member=%d conn=%d sf=%d: %d consecutive RTOs %s..%s, last backoff %s -> tail %s\n",
			t.Member, t.Conn, t.Subflow, t.Count, fmtT(t.Start), fmtT(t.Last), fmtT(t.LastRTO), fmtT(t.Tail()))
	}
	if shown < len(tails) {
		fmt.Printf("  ... %d more subflows\n", len(tails)-shown)
	}
	fmt.Println()
}

// sfKey identifies one subflow across the event stream.
type sfKey struct {
	member, conn, subflow int32
}

// reportTimelines renders per-subflow cwnd timelines from the congestion-
// control transition events (cc_* events carry A=cwnd at the transition).
func reportTimelines(events []probe.Event, width, top int) {
	type point struct {
		at   time.Duration
		cwnd int64
	}
	series := map[sfKey][]point{}
	var first, last time.Duration
	first = -1
	for _, e := range events {
		switch e.Kind {
		case probe.KindCCSlowStart, probe.KindCCAvoidance, probe.KindCCRecovery:
		default:
			continue
		}
		k := sfKey{e.Member, e.Conn, e.Subflow}
		series[k] = append(series[k], point{e.At, e.A})
		if first < 0 || e.At < first {
			first = e.At
		}
		if e.At > last {
			last = e.At
		}
	}
	if len(series) == 0 {
		fmt.Println("cwnd timelines: no cc events recorded")
		return
	}
	keys := make([]sfKey, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	// Busiest subflows first; ties broken by identity for stable output.
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if len(series[a]) != len(series[b]) {
			return len(series[a]) > len(series[b])
		}
		if a.member != b.member {
			return a.member < b.member
		}
		if a.conn != b.conn {
			return a.conn < b.conn
		}
		return a.subflow < b.subflow
	})
	if top > 0 && len(keys) > top {
		fmt.Printf("cwnd timelines (%d busiest of %d subflows, from cc transition events):\n", top, len(keys))
		keys = keys[:top]
	} else {
		fmt.Printf("cwnd timelines (%d subflows, from cc transition events):\n", len(keys))
	}

	span := last - first
	if span <= 0 {
		span = 1
	}
	levels := []byte(" .:-=+*#%@")
	for _, k := range keys {
		pts := series[k]
		// Bucket by time; each column shows the max cwnd seen in its slice.
		cols := make([]int64, width)
		var peak int64
		for _, p := range pts {
			c := int(int64(p.at-first) * int64(width-1) / int64(span))
			if p.cwnd > cols[c] {
				cols[c] = p.cwnd
			}
			if p.cwnd > peak {
				peak = p.cwnd
			}
		}
		if peak == 0 {
			peak = 1
		}
		// Carry the last seen value forward through empty columns so the
		// line reads as a timeline, not a scatter.
		var prev int64
		line := make([]byte, width)
		for i, v := range cols {
			if v == 0 {
				v = prev
			}
			prev = v
			line[i] = levels[int(v*int64(len(levels)-1)/peak)]
		}
		fmt.Printf("  member=%-3d conn=%-3d sf=%d |%s| peak %d B (%d transitions)\n",
			k.member, k.conn, k.subflow, line, peak, len(pts))
	}
	fmt.Printf("  scale: '%c' = 0 .. '%c' = per-line peak cwnd; x spans %s .. %s\n",
		levels[0], levels[len(levels)-1], fmtT(first), fmtT(last))
}

// fmtT renders a sim time compactly (ms below 10s, seconds above).
func fmtT(d time.Duration) string {
	if d < 10*time.Second {
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	}
	return fmt.Sprintf("%.2fs", d.Seconds())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
