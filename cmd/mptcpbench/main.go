// Command mptcpbench regenerates the paper's evaluation tables and figures,
// and runs the sharded fleet scenarios that go beyond the paper's scale.
//
// Usage:
//
//	mptcpbench -list
//	mptcpbench -run fig4
//	mptcpbench -run all -quick
//	mptcpbench -run fig3 -quick -format json -out BENCH_fig3.json
//	mptcpbench -scenario list
//	mptcpbench -scenario fleet-http -clients 1000 -workers 8
//	mptcpbench -scenario fleet-openloop -rate 400 -duration 5s -sizedist webmix
//	mptcpbench -scenario fleet-corelink -shared-link core:100mbps:100ms -rate 800
//	mptcpbench -scenario fleet-cdn -clients 256 -shared-link egress:200mbps
//	mptcpbench -scenario incast -quick -format json
//	mptcpbench -scenario fleet-chaos -faults flap500 -adversary rst
//
// Each experiment produces the same rows/series the corresponding figure in
// the paper reports, as aligned text (default), JSON or CSV; EXPERIMENTS.md
// records a captured run next to the paper's numbers, and CI archives the
// quick-run JSON as BENCH_*.json trajectory points.
//
// The -scenario families run on the internal/fleet sharded engine: the
// workload is partitioned into shards (each shard its own simulator plus
// server replica), shards execute in parallel across -workers goroutines and
// the merged output is byte-identical at any worker count for a fixed -seed
// and -shards.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mptcpgo/internal/capacity"
	"mptcpgo/internal/experiments"
	"mptcpgo/internal/faults"
	"mptcpgo/internal/fleet"
	"mptcpgo/internal/middlebox"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/telemetry"
	"mptcpgo/internal/workload"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	run := flag.String("run", "", "experiment id to run (or 'all')")
	scenario := flag.String("scenario", "", "fleet scenario to run ('list' enumerates them)")
	quick := flag.Bool("quick", false, "run a reduced sweep that finishes in seconds")
	seed := flag.Uint64("seed", 42, "base RNG seed (runs are deterministic per seed; 0 is a legal seed)")
	format := flag.String("format", "text", "output format: text | json | csv")
	out := flag.String("out", "", "write output to this file instead of stdout")
	paperEra := flag.Bool("paper-era-cpu", false, "use the 2012-class host CPU cost model instead of calibrating on this machine")
	clients := flag.Int("clients", 0, "fleet scenario size: clients, senders or pairs (0 = scenario default)")
	shards := flag.Int("shards", 0, "fleet shard count (0 = one shard per 64 members)")
	workers := flag.Int("workers", 0, "parallel shard workers (0 = GOMAXPROCS; never changes the output)")
	pcapDir := flag.String("pcap-dir", "", "capture wire traffic into this directory: one classic pcap per fleet shard (-scenario) or per middlebox-matrix case (-run mbox); capture never changes results")
	traceDir := flag.String("trace-dir", "", "flight recorder: write <scenario>-trace.json and <scenario>-events.jsonl into this directory (off by default; capture never changes results)")
	probeInterval := flag.Duration("probe-interval", 0, "flight recorder: per-subflow time-series sampling cadence in simulated time (0 = events only; needs -trace-dir)")
	rate := flag.Float64("rate", 0, "fleet-openloop: fleet-wide mean arrival rate in flows/s (0 = scenario default)")
	duration := flag.Duration("duration", 0, "fleet-openloop: arrival window of simulated time (0 = scenario default)")
	sizeDist := flag.String("sizedist", "webmix", "fleet-openloop: flow-size distribution: fixed:<bytes> | lognormal:<mu>,<sigma> | pareto:<alpha>,<lo>,<hi> | webmix")
	arrival := flag.String("arrival", "poisson", "fleet-openloop: arrival process: poisson | fixed | onoff[:on_ms,off_ms]")
	faultSpec := flag.String("faults", "", "fleet-chaos: fault schedule — a preset name ("+strings.Join(faults.PresetNames(), ", ")+") or grammar like 'flap:path=1,period=1s,down=250ms' (see internal/faults)")
	adversary := flag.String("adversary", "", "fleet-chaos: adversarial middlebox preset: "+strings.Join(middlebox.AdversaryPresetNames(), " | "))
	sharedLink := flag.String("shared-link", "", "coupled scenarios: the shared bottleneck as [name:]rate[:epoch], e.g. 100mbps, core:1gbps:50ms (fleet-corelink, fleet-cdn, fleet-http)")
	progress := flag.Bool("progress", false, "fleet scenarios: print a live status line to stderr every second (telemetry never changes results)")
	progressInterval := flag.Duration("progress-interval", time.Second, "cadence of -progress status lines")
	metricsAddr := flag.String("metrics-addr", "", "fleet scenarios: serve Prometheus /metrics and expvar /debug/vars on this address during the run, e.g. 127.0.0.1:9090")
	metricsLinger := flag.Duration("metrics-linger", 0, "keep the -metrics-addr endpoint up this long after the run finishes, for scrapers that poll")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile taken at exit to this file (go tool pprof)")
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fail(err)
	}
	defer stopProfiles()

	switch *format {
	case "text", "json", "csv":
	default:
		fail(fmt.Errorf("unknown output format %q (want text, json or csv)", *format))
	}

	if *scenario == "list" {
		listScenarios()
		return
	}
	if *scenario != "" {
		// -scenario selects a fleet run; combining it with flags it cannot
		// honour would silently produce output for different options than
		// requested.
		if *run != "" {
			fail(fmt.Errorf("-scenario and -run are mutually exclusive"))
		}
		if *paperEra {
			fail(fmt.Errorf("-paper-era-cpu does not apply to fleet scenarios"))
		}
		// The telemetry plane rides beside the deterministic core: it feeds
		// -progress, -metrics-addr and the runinfo sidecar, and attaching it
		// never changes the merged result (TestTelemetryChangesNothing). It is
		// built whenever anything can observe it.
		var plane *telemetry.Plane
		if *progress || *metricsAddr != "" || *out != "" || *traceDir != "" {
			plane = telemetry.New(*scenario)
		}
		info := telemetry.CollectRunInfo(*scenario, *seed, *quick)
		flag.Visit(func(f *flag.Flag) { info.SetFlag(f.Name, f.Value.String()) })
		o := scenarioOptions{
			seed: *seed, members: *clients, shards: *shards, workers: *workers,
			quick: *quick, pcapDir: *pcapDir,
			trace: experiments.TraceSpec{Dir: *traceDir, ProbeInterval: *probeInterval},
			rate:  *rate, window: *duration, sizeDist: *sizeDist, arrival: *arrival,
			faults: *faultSpec, adversary: *adversary,
			telem: plane,
		}
		if *traceDir != "" {
			o.trace.RunInfo = info
		}
		if *sharedLink != "" {
			l, err := capacity.ParseSharedLink(*sharedLink)
			if err != nil {
				fail(err)
			}
			o.shared = &l
		}
		var srv *telemetry.Server
		if *metricsAddr != "" {
			s, err := telemetry.Serve(*metricsAddr, plane)
			if err != nil {
				fail(err)
			}
			srv = s
			fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (Prometheus text) and /debug/vars (expvar)\n", srv.Addr())
		}
		prog := (*telemetry.Progress)(nil)
		if *progress {
			prog = telemetry.StartProgress(os.Stderr, plane, *progressInterval)
		}
		res, elapsed, err := runScenario(*scenario, o)
		prog.Stop()
		if err != nil {
			fail(err)
		}
		// The merged result is byte-comparable across runs and worker counts,
		// so wall-clock goes to stderr rather than into the encoded output.
		fmt.Fprintf(os.Stderr, "%s: %v wall-clock\n", res.ID, elapsed.Round(time.Millisecond))
		encodeSpan := plane.StartSpan("encode")
		writeResults(*out, *format, []*experiments.Result{res})
		encodeSpan.End()
		info.Finish(plane, elapsed)
		if *out != "" {
			// Provenance sidecar next to the encoded output: config plus the
			// machine-dependent wall-clock/phase/latency summary. Named
			// <out-minus-ext>-runinfo.json so BENCH freshness gates (which
			// compare the deterministic output file) never see it.
			side := strings.TrimSuffix(*out, filepath.Ext(*out)) + "-runinfo.json"
			if err := info.WriteFile(side); err != nil {
				fail(err)
			}
		}
		if srv != nil {
			if *metricsLinger > 0 {
				fmt.Fprintf(os.Stderr, "metrics: lingering %v for scrapers\n", *metricsLinger)
				time.Sleep(*metricsLinger)
			}
			srv.Close()
		}
		return
	}

	if *progress || *metricsAddr != "" {
		fail(fmt.Errorf("-progress and -metrics-addr instrument fleet scenarios; use them with -scenario"))
	}

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, id := range experiments.IDs() {
			e, _ := experiments.Get(id)
			fmt.Printf("  %-10s %s\n", id, e.Title)
		}
		listScenarios()
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> (or -run all) to execute one")
		}
		return
	}

	opts := []experiments.Option{experiments.WithSeed(*seed)}
	if *quick {
		opts = append(opts, experiments.WithQuick())
	}
	if *paperEra {
		opts = append(opts, experiments.WithPaperEraCPU())
	}
	if *pcapDir != "" {
		opts = append(opts, experiments.WithPcapDir(*pcapDir))
	}
	if *traceDir != "" {
		opts = append(opts, experiments.WithTrace(*traceDir, *probeInterval))
	}

	ids := []string{*run}
	if strings.EqualFold(*run, "all") {
		ids = experiments.IDs()
	}
	info := telemetry.CollectRunInfo(*run, *seed, *quick)
	flag.Visit(func(f *flag.Flag) { info.SetFlag(f.Name, f.Value.String()) })
	start := time.Now()
	results := make([]*experiments.Result, 0, len(ids))
	for _, id := range ids {
		res, err := experiments.Run(id, opts...)
		if err != nil {
			fail(err)
		}
		results = append(results, res)
	}
	elapsed := time.Since(start)
	writeResults(*out, *format, results)
	if *out != "" {
		info.Finish(nil, elapsed)
		side := strings.TrimSuffix(*out, filepath.Ext(*out)) + "-runinfo.json"
		if err := info.WriteFile(side); err != nil {
			fail(err)
		}
	}
}

// scenarioOptions carries the CLI sizing for one fleet scenario run.
type scenarioOptions struct {
	seed            uint64
	members         int
	shards, workers int
	quick           bool
	pcapDir         string
	trace           experiments.TraceSpec
	// telem is the run's telemetry plane (nil = detached); scenarios that
	// support instrumentation pass it into their fleet spec.
	telem *telemetry.Plane

	// open-loop scenarios (fleet-openloop, fleet-corelink) only.
	rate     float64
	window   time.Duration
	sizeDist string
	arrival  string

	// fleet-chaos only.
	faults    string
	adversary string

	// coupled scenarios only: the -shared-link bottleneck, nil when unset.
	shared *capacity.SharedLink
}

// scenarioDef registers one fleet scenario: its name, a one-line description
// for '-scenario list', and the runner that applies the CLI sizing.
type scenarioDef struct {
	name     string
	describe string
	run      func(o scenarioOptions) (*experiments.Result, error)
}

// scenarios is the ordered registry behind -scenario; runScenario and
// '-scenario list' both walk it, so a scenario cannot be runnable but
// unlisted or vice versa.
var scenarios = []scenarioDef{
	{"fleet-http", "1000+ closed-loop clients against sharded server replicas (-shared-link couples them)", runHTTPScenario},
	{"fleet-openloop", "open-loop arrivals (-rate/-arrival) with drawn flow sizes (-sizedist)", runOpenLoopScenario},
	{"fleet-corelink", "open-loop fleet whose downloads jointly transit one shared core link (-shared-link)", runCorelinkScenario},
	{"fleet-cdn", "CDN flash crowd: every client fetches one object through a shared origin egress", runCDNScenario},
	{"incast", "synchronized many-to-one fan-in over the N-host graph", runIncastScenario},
	{"mixed", "MPTCP foreground vs plain-TCP background traffic", runMixedScenario},
	{"fleet-chaos", "integrity-checked uploads under fault schedules (-faults) and adversarial middleboxes (-adversary)", runChaosScenario},
	{"trace-overhead", "flight-recorder cost probe: one open-loop run traced and one untraced, results proven identical", runTraceOverheadScenario},
	{"sched-equivalence", "scheduler pin: wheel vs heap firing-order checksums over deterministic churn workloads", runSchedScenario},
}

// listScenarios prints the scenario registry, one line per scenario.
func listScenarios() {
	fmt.Println("available fleet scenarios (-scenario):")
	for _, s := range scenarios {
		fmt.Printf("  %-14s %s\n", s.name, s.describe)
	}
}

// runScenario dispatches one fleet scenario with CLI sizing applied.
func runScenario(name string, o scenarioOptions) (*experiments.Result, time.Duration, error) {
	for _, s := range scenarios {
		if s.name != name {
			continue
		}
		start := time.Now()
		res, err := s.run(o)
		return res, time.Since(start), err
	}
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.name
	}
	return nil, 0, fmt.Errorf("unknown scenario %q (want %s, or 'list')", name, strings.Join(names, ", "))
}

func runHTTPScenario(o scenarioOptions) (*experiments.Result, error) {
	n, requests, size := 1000, 2, 32<<10
	if o.quick {
		n, requests, size = 64, 1, 16<<10
	}
	if o.members > 0 {
		n = o.members
	}
	spec := fleet.DefaultHTTPSpec(o.seed, n, requests, size)
	spec.Shards, spec.Workers, spec.Quick, spec.PcapDir = o.shards, o.workers, o.quick, o.pcapDir
	spec.Shared = o.shared
	spec.Trace = o.trace
	spec.Telemetry = o.telem
	return fleet.RunHTTP(spec)
}

// openLoopSpecFrom resolves the open-loop flags into an OpenLoopSpec; shared
// between fleet-openloop and fleet-corelink.
func openLoopSpecFrom(o scenarioOptions) (fleet.OpenLoopSpec, error) {
	hosts, rate, window := 256, 400.0, 5*time.Second
	if o.quick {
		hosts, rate, window = 32, 60.0, 2*time.Second
	}
	if o.members > 0 {
		hosts = o.members
	}
	if o.rate > 0 {
		rate = o.rate
	}
	if o.window > 0 {
		window = o.window
	}
	arrival, err := workload.ParseArrival(o.arrival, rate)
	if err != nil {
		return fleet.OpenLoopSpec{}, err
	}
	sizes, err := workload.ParseSizeDist(o.sizeDist)
	if err != nil {
		return fleet.OpenLoopSpec{}, err
	}
	return fleet.OpenLoopSpec{
		Seed: o.seed, Hosts: hosts, Arrival: arrival, Sizes: sizes, Window: window,
		Shards: o.shards, Workers: o.workers, Quick: o.quick, PcapDir: o.pcapDir,
		Trace: o.trace, Telemetry: o.telem,
	}, nil
}

func runOpenLoopScenario(o scenarioOptions) (*experiments.Result, error) {
	if o.shared != nil {
		return nil, fmt.Errorf("fleet-openloop shards are uncoupled; use -scenario fleet-corelink for a shared bottleneck")
	}
	spec, err := openLoopSpecFrom(o)
	if err != nil {
		return nil, err
	}
	return fleet.RunOpenLoop(spec)
}

func runCorelinkScenario(o scenarioOptions) (*experiments.Result, error) {
	spec, err := openLoopSpecFrom(o)
	if err != nil {
		return nil, err
	}
	core := capacity.SharedLink{Name: capacity.DefaultName, RateBps: netem.Mbps(100)}
	if o.quick {
		core.RateBps = netem.Mbps(10)
	}
	if o.shared != nil {
		core = *o.shared
	}
	return fleet.RunCorelink(fleet.CorelinkSpec{OpenLoopSpec: spec, Shared: core})
}

func runCDNScenario(o scenarioOptions) (*experiments.Result, error) {
	if o.trace.Enabled() {
		return nil, fmt.Errorf("fleet-cdn does not support -trace-dir (flight recording covers fleet-http, fleet-openloop, fleet-corelink and fleet-chaos)")
	}
	n, size := 256, 1<<20
	if o.quick {
		n, size = 32, 256<<10
	}
	if o.members > 0 {
		n = o.members
	}
	spec := fleet.CDNSpec{
		Seed: o.seed, Clients: n, ObjectSize: size,
		Shards: o.shards, Workers: o.workers, Quick: o.quick, PcapDir: o.pcapDir,
	}
	if o.quick {
		spec.Shared.RateBps = netem.Mbps(50)
	}
	if o.shared != nil {
		spec.Shared = *o.shared
	}
	return fleet.RunCDN(spec)
}

func runIncastScenario(o scenarioOptions) (*experiments.Result, error) {
	if o.trace.Enabled() {
		return nil, fmt.Errorf("incast does not support -trace-dir (flight recording covers fleet-http, fleet-openloop, fleet-corelink and fleet-chaos)")
	}
	n, block := 256, 256<<10
	if o.quick {
		n, block = 32, 128<<10
	}
	if o.members > 0 {
		n = o.members
	}
	return fleet.RunIncast(fleet.IncastSpec{
		Seed: o.seed, Senders: n, BlockSize: block,
		Shards: o.shards, Workers: o.workers, Quick: o.quick, PcapDir: o.pcapDir,
	})
}

func runMixedScenario(o scenarioOptions) (*experiments.Result, error) {
	if o.trace.Enabled() {
		return nil, fmt.Errorf("mixed does not support -trace-dir (flight recording covers fleet-http, fleet-openloop, fleet-corelink and fleet-chaos)")
	}
	n, dur := 32, 5*time.Second
	if o.quick {
		n, dur = 8, 2*time.Second
	}
	if o.members > 0 {
		n = o.members
	}
	return fleet.RunMixed(fleet.MixedSpec{
		Seed: o.seed, Pairs: n, Duration: dur,
		Shards: o.shards, Workers: o.workers, Quick: o.quick, PcapDir: o.pcapDir,
	})
}

func runChaosScenario(o scenarioOptions) (*experiments.Result, error) {
	n := 32
	if o.quick {
		n = 8
	}
	if o.members > 0 {
		n = o.members
	}
	spec, err := faults.Parse(o.faults)
	if err != nil {
		return nil, err
	}
	return fleet.RunChaos(fleet.ChaosSpec{
		Seed: o.seed, Members: n, Faults: spec, Adversary: o.adversary,
		Shards: o.shards, Workers: o.workers, Quick: o.quick, PcapDir: o.pcapDir,
		Trace: o.trace, Telemetry: o.telem,
	})
}

// writeResults encodes results to the -out file or stdout.
func writeResults(out, format string, results []*experiments.Result) {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := experiments.WriteResults(w, format, results); err != nil {
		fail(err)
	}
}

// startProfiles arms the -cpuprofile/-memprofile collectors and returns the
// function that finalizes both; main defers it so any run (experiment or
// fleet scenario) can be profiled without code edits. Error exits skip the
// finalizer, which only loses the profile of a failed run.
func startProfiles(cpu, mem string) (func(), error) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
		}
	}, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
