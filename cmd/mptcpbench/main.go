// Command mptcpbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	mptcpbench -list
//	mptcpbench -run fig4
//	mptcpbench -run all -quick
//	mptcpbench -run fig3 -quick -format json -out BENCH_fig3.json
//
// Each experiment produces the same rows/series the corresponding figure in
// the paper reports, as aligned text (default), JSON or CSV; EXPERIMENTS.md
// records a captured run next to the paper's numbers, and CI archives the
// quick-run JSON as BENCH_*.json trajectory points.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mptcpgo/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	run := flag.String("run", "", "experiment id to run (or 'all')")
	quick := flag.Bool("quick", false, "run a reduced sweep that finishes in seconds")
	seed := flag.Uint64("seed", 42, "base RNG seed (runs are deterministic per seed; 0 is a legal seed)")
	format := flag.String("format", "text", "output format: text | json | csv")
	out := flag.String("out", "", "write output to this file instead of stdout")
	paperEra := flag.Bool("paper-era-cpu", false, "use the 2012-class host CPU cost model instead of calibrating on this machine")
	flag.Parse()

	switch *format {
	case "text", "json", "csv":
	default:
		fail(fmt.Errorf("unknown output format %q (want text, json or csv)", *format))
	}

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, id := range experiments.IDs() {
			e, _ := experiments.Get(id)
			fmt.Printf("  %-10s %s\n", id, e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> (or -run all) to execute one")
		}
		return
	}

	opts := []experiments.Option{experiments.WithSeed(*seed)}
	if *quick {
		opts = append(opts, experiments.WithQuick())
	}
	if *paperEra {
		opts = append(opts, experiments.WithPaperEraCPU())
	}

	ids := []string{*run}
	if strings.EqualFold(*run, "all") {
		ids = experiments.IDs()
	}
	results := make([]*experiments.Result, 0, len(ids))
	for _, id := range ids {
		res, err := experiments.Run(id, opts...)
		if err != nil {
			fail(err)
		}
		results = append(results, res)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := experiments.WriteResults(w, *format, results); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
