// Command mptcpbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	mptcpbench -list
//	mptcpbench -run fig4
//	mptcpbench -run all -quick
//
// Each experiment prints the same rows/series the corresponding figure in the
// paper reports; EXPERIMENTS.md records a captured run next to the paper's
// numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mptcpgo/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	run := flag.String("run", "", "experiment id to run (or 'all')")
	quick := flag.Bool("quick", false, "run a reduced sweep that finishes in seconds")
	seed := flag.Uint64("seed", 42, "base RNG seed (runs are deterministic per seed)")
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, id := range experiments.IDs() {
			e, _ := experiments.Get(id)
			fmt.Printf("  %-10s %s\n", id, e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> (or -run all) to execute one")
		}
		return
	}

	opt := experiments.Options{Quick: *quick, Seed: *seed}
	var err error
	if strings.EqualFold(*run, "all") {
		err = experiments.RunAll(os.Stdout, opt)
	} else {
		err = experiments.RunAndPrint(os.Stdout, *run, opt)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
