package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mptcpgo/internal/experiments"
	"mptcpgo/internal/fleet"
	"mptcpgo/internal/probe"
	"mptcpgo/internal/workload"
)

// runTraceOverheadScenario runs the same open-loop workload twice — flight
// recorder off, then on — and reports the deterministic cost profile: scenario
// counters (which must be byte-identical), the event/sample volume the
// recorder retained, and the two runs' wall-clock ratio (stderr only, so the
// encoded result stays byte-comparable across machines). CI commits its quick
// JSON as bench/BENCH_trace.json under the freshness gate.
func runTraceOverheadScenario(o scenarioOptions) (*experiments.Result, error) {
	hosts, rate, window := 64, 150.0, 2*time.Second
	if o.quick {
		hosts, rate, window = 16, 80.0, 1*time.Second
	}
	if o.members > 0 {
		hosts = o.members
	}
	if o.rate > 0 {
		rate = o.rate
	}
	if o.window > 0 {
		window = o.window
	}
	base := fleet.DefaultOpenLoopSpec(o.seed, hosts, rate, window)
	base.Sizes = workload.FixedSize(16 << 10)
	base.Shards, base.Workers, base.Quick = o.shards, o.workers, o.quick

	startOff := time.Now()
	off, err := fleet.RunOpenLoop(base)
	if err != nil {
		return nil, err
	}
	wallOff := time.Since(startOff)

	// The traced run needs a directory; an ephemeral one keeps the scenario
	// self-contained unless the caller asked for the files via -trace-dir.
	dir := o.trace.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "trace-overhead")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	interval := o.trace.ProbeInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	traced := base
	traced.Trace = experiments.TraceSpec{Dir: dir, ProbeInterval: interval}
	startOn := time.Now()
	on, err := fleet.RunOpenLoop(traced)
	if err != nil {
		return nil, err
	}
	wallOn := time.Since(startOn)

	offJSON, _ := json.Marshal(off)
	onJSON, _ := json.Marshal(on)
	identical := bytes.Equal(offJSON, onJSON)

	events, err := probe.ParseJSONL(mustRead(filepath.Join(dir, "fleet-openloop-events.jsonl")))
	if err != nil {
		return nil, fmt.Errorf("trace-overhead: %w", err)
	}
	kinds := probe.CountKinds(events)
	var flowDone uint64
	if int(probe.KindFlowDone) < len(kinds) {
		flowDone = kinds[probe.KindFlowDone]
	}

	allRow := off.Tables[0].Rows[len(off.Tables[0].Rows)-1]
	res := &experiments.Result{
		ID:    "trace-overhead",
		Title: fmt.Sprintf("flight-recorder overhead: %d hosts, %.0f flows/s, %v window, %v sampling", hosts, rate, window, interval),
		Seed:  o.seed, Quick: o.quick,
	}
	table := experiments.NewTable("traced vs untraced open-loop run (scenario output must not change)",
		"metric", "value")
	table.AddRow("results identical", fmt.Sprintf("%v", identical))
	table.AddRow("offered flows", allRow[2])
	table.AddRow("completed flows", allRow[3])
	table.AddRow("trace events", fmt.Sprintf("%d", len(events)))
	table.AddRow("flow_done events", fmt.Sprintf("%d", flowDone))
	table.AddNote("the flight recorder must be invisible: the traced run's merged result is byte-compared against the untraced run's")
	if !identical {
		table.AddNote("TRACE PERTURBATION: the traced run produced a different merged result")
	}
	res.AddTable(table)
	fmt.Fprintf(os.Stderr, "trace-overhead: untraced %v, traced %v wall-clock\n",
		wallOff.Round(time.Millisecond), wallOn.Round(time.Millisecond))
	return res, nil
}

func mustRead(path string) []byte {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	return b
}
