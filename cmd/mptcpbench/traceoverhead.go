package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mptcpgo/internal/experiments"
	"mptcpgo/internal/fleet"
	"mptcpgo/internal/probe"
	"mptcpgo/internal/telemetry"
	"mptcpgo/internal/workload"
)

// telemetryOverheadBudget is the wall-clock cost ceiling for an attached
// telemetry plane, asserted by the trace-overhead scenario (and thus by CI).
const telemetryOverheadBudget = 0.03

// telemetryOverheadFloor guards the assertion against meaningless ratios:
// below this baseline wall-clock the workload is too small for a stable
// percentage and the check is reported but not enforced.
const telemetryOverheadFloor = 200 * time.Millisecond

// runTraceOverheadScenario runs the same open-loop workload three ways —
// plain, flight recorder on, telemetry plane attached — and reports the
// deterministic cost profile: scenario counters (which must be byte-identical
// across all three), the event/sample volume the recorder retained, and the
// wall-clock ratios (stderr only, so the encoded result stays byte-comparable
// across machines). The telemetry overhead is measured as the min over three
// paired runs — noise only ever inflates wall-clock, so the minimum ratio is
// the robust estimate — and enforced against telemetryOverheadBudget when the
// baseline clears the floor. CI commits its quick JSON as
// bench/BENCH_trace.json under the freshness gate.
func runTraceOverheadScenario(o scenarioOptions) (*experiments.Result, error) {
	hosts, rate, window := 64, 150.0, 2*time.Second
	if o.quick {
		hosts, rate, window = 16, 80.0, 1*time.Second
	}
	if o.members > 0 {
		hosts = o.members
	}
	if o.rate > 0 {
		rate = o.rate
	}
	if o.window > 0 {
		window = o.window
	}
	base := fleet.DefaultOpenLoopSpec(o.seed, hosts, rate, window)
	base.Sizes = workload.FixedSize(16 << 10)
	base.Shards, base.Workers, base.Quick = o.shards, o.workers, o.quick

	// Three paired (plain, telemetry-attached) runs: the first pair's plain
	// result doubles as the identity baseline, and the minimum on/off ratio
	// across pairs is the telemetry overhead estimate.
	const pairs = 3
	var off, telem *experiments.Result
	var wallOff time.Duration
	minRatio := 0.0
	minBase := time.Duration(0)
	for i := 0; i < pairs; i++ {
		startOff := time.Now()
		offRun, err := fleet.RunOpenLoop(base)
		if err != nil {
			return nil, err
		}
		dOff := time.Since(startOff)

		instrumented := base
		instrumented.Telemetry = telemetry.New("trace-overhead")
		startOn := time.Now()
		telemRun, err := fleet.RunOpenLoop(instrumented)
		if err != nil {
			return nil, err
		}
		dOn := time.Since(startOn)

		if i == 0 {
			off, telem, wallOff = offRun, telemRun, dOff
		}
		r := float64(dOn) / float64(dOff)
		if i == 0 || r < minRatio {
			minRatio = r
		}
		if i == 0 || dOff < minBase {
			minBase = dOff
		}
	}

	// The traced run needs a directory; an ephemeral one keeps the scenario
	// self-contained unless the caller asked for the files via -trace-dir.
	dir := o.trace.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "trace-overhead")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	interval := o.trace.ProbeInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	traced := base
	traced.Trace = experiments.TraceSpec{Dir: dir, ProbeInterval: interval}
	startOn := time.Now()
	on, err := fleet.RunOpenLoop(traced)
	if err != nil {
		return nil, err
	}
	wallOn := time.Since(startOn)

	offJSON, _ := json.Marshal(off)
	onJSON, _ := json.Marshal(on)
	telemJSON, _ := json.Marshal(telem)
	identical := bytes.Equal(offJSON, onJSON)
	telemIdentical := bytes.Equal(offJSON, telemJSON)

	events, err := probe.ParseJSONL(mustRead(filepath.Join(dir, "fleet-openloop-events.jsonl")))
	if err != nil {
		return nil, fmt.Errorf("trace-overhead: %w", err)
	}
	kinds := probe.CountKinds(events)
	var flowDone uint64
	if int(probe.KindFlowDone) < len(kinds) {
		flowDone = kinds[probe.KindFlowDone]
	}

	allRow := off.Tables[0].Rows[len(off.Tables[0].Rows)-1]
	res := &experiments.Result{
		ID:    "trace-overhead",
		Title: fmt.Sprintf("flight-recorder overhead: %d hosts, %.0f flows/s, %v window, %v sampling", hosts, rate, window, interval),
		Seed:  o.seed, Quick: o.quick,
	}
	table := experiments.NewTable("traced/instrumented vs plain open-loop run (scenario output must not change)",
		"metric", "value")
	table.AddRow("results identical", fmt.Sprintf("%v", identical))
	table.AddRow("telemetry identical", fmt.Sprintf("%v", telemIdentical))
	table.AddRow("offered flows", allRow[2])
	table.AddRow("completed flows", allRow[3])
	table.AddRow("trace events", fmt.Sprintf("%d", len(events)))
	table.AddRow("flow_done events", fmt.Sprintf("%d", flowDone))
	table.AddNote("observers must be invisible: the traced and telemetry-attached runs' merged results are byte-compared against the plain run's")
	if !identical {
		table.AddNote("TRACE PERTURBATION: the traced run produced a different merged result")
	}
	if !telemIdentical {
		table.AddNote("TELEMETRY PERTURBATION: the instrumented run produced a different merged result")
	}
	res.AddTable(table)
	overhead := minRatio - 1
	fmt.Fprintf(os.Stderr, "trace-overhead: plain %v, traced %v wall-clock; telemetry overhead %+.1f%% (min of %d pairs, budget %.0f%%)\n",
		wallOff.Round(time.Millisecond), wallOn.Round(time.Millisecond),
		overhead*100, pairs, telemetryOverheadBudget*100)
	if minBase >= telemetryOverheadFloor && overhead > telemetryOverheadBudget {
		return nil, fmt.Errorf("trace-overhead: telemetry overhead %.1f%% exceeds the %.0f%% budget (baseline %v)",
			overhead*100, telemetryOverheadBudget*100, minBase.Round(time.Millisecond))
	}
	return res, nil
}

func mustRead(path string) []byte {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	return b
}
