package main

import (
	"fmt"
	"hash/fnv"
	"os"
	"time"

	"mptcpgo/internal/experiments"
	"mptcpgo/internal/sim"
)

// runSchedScenario is the scheduler-equivalence pin behind
// '-scenario sched-equivalence': it replays deterministic timer-churn,
// schedule/cancel and reserved-seq workloads on both scheduler
// implementations (timing wheel and binary heap) and reports a checksum of
// each firing order. The checksums are pure functions of the workload — no
// wall-clock, no map iteration — so the quick JSON is byte-stable and CI
// commits it as bench/BENCH_sched.json under the freshness gate: any future
// scheduler change that reorders events flips a checksum and fails the diff.
// Wheel-vs-heap wall-clock goes to stderr only.
func runSchedScenario(o scenarioOptions) (*experiments.Result, error) {
	ops := 200_000
	if o.quick {
		ops = 20_000
	}
	if o.members > 0 {
		ops = o.members
	}

	res := &experiments.Result{
		ID:    "sched-equivalence",
		Title: fmt.Sprintf("scheduler equivalence: wheel vs heap over %d-op deterministic workloads", ops),
		Seed:  o.seed, Quick: o.quick,
	}
	table := experiments.NewTable("firing-order checksums (wheel must equal heap)",
		"workload", "events", "finalTime", "checksum", "identical")
	allIdentical := true
	for _, w := range schedWorkloads {
		startW := time.Now()
		wheelSum, wheelEvents, wheelEnd := w.run(sim.SchedulerWheel, o.seed, ops)
		wallWheel := time.Since(startW)
		startH := time.Now()
		heapSum, heapEvents, heapEnd := w.run(sim.SchedulerHeap, o.seed, ops)
		wallHeap := time.Since(startH)
		identical := wheelSum == heapSum && wheelEvents == heapEvents && wheelEnd == heapEnd
		allIdentical = allIdentical && identical
		table.AddRow(w.name,
			fmt.Sprintf("%d", wheelEvents),
			fmt.Sprintf("%v", wheelEnd),
			fmt.Sprintf("%016x", wheelSum),
			fmt.Sprintf("%v", identical))
		fmt.Fprintf(os.Stderr, "sched-equivalence: %-16s wheel %v, heap %v wall-clock\n",
			w.name, wallWheel.Round(time.Microsecond), wallHeap.Round(time.Microsecond))
	}
	table.AddNote("checksum folds every (eventID, firingTime) pair in execution order; both schedulers must produce the same stream")
	if !allIdentical {
		table.AddNote("SCHEDULER DIVERGENCE: the wheel fired events in a different order than the heap reference")
	}
	res.AddTable(table)
	if !allIdentical {
		return res, fmt.Errorf("sched-equivalence: wheel and heap schedulers diverged")
	}
	return res, nil
}

// schedWorkloads are the deterministic op streams the scenario replays. Each
// returns (checksum over the firing order, events fired, final clock).
var schedWorkloads = []struct {
	name string
	run  func(kind sim.SchedulerKind, seed uint64, ops int) (uint64, uint64, time.Duration)
}{
	{"timer-storm", schedTimerStorm},
	{"schedule-cancel", schedScheduleCancel},
	{"reserved-seq", schedReservedSeq},
}

// schedHash folds one (id, at) firing into an FNV-1a accumulator.
func schedHash(h uint64, id int64, at time.Duration) uint64 {
	f := fnv.New64a()
	var buf [24]byte
	for i, v := range [3]uint64{h, uint64(id), uint64(at)} {
		for j := 0; j < 8; j++ {
			buf[i*8+j] = byte(v >> (8 * j))
		}
	}
	f.Write(buf[:])
	return f.Sum64()
}

// schedTimerStorm re-arms a population of timers with RTO-like pseudo-random
// delays; every fire re-arms, so the wheel's in-place Reset path dominates.
func schedTimerStorm(kind sim.SchedulerKind, seed uint64, ops int) (uint64, uint64, time.Duration) {
	s := sim.NewWithScheduler(seed, kind)
	rng := sim.NewRNG(sim.DeriveSeed(seed, 1))
	var sum uint64
	var fired uint64
	const timers = 256
	tms := make([]*sim.Timer, timers)
	rearms := ops
	for i := range tms {
		id := int64(i)
		tms[i] = s.NewTimer(func() {
			fired++
			sum = schedHash(sum, id, s.Now())
			if rearms > 0 {
				rearms--
				tms[id].Reset(time.Duration(1+rng.Intn(400)) * time.Millisecond)
			}
		})
		tms[i].Reset(time.Duration(1+rng.Intn(400)) * time.Millisecond)
	}
	// A churn layer on top: re-arm pending timers without letting them fire,
	// like ACK clocking does to the RTO.
	for i := 0; i < ops; i++ {
		tms[rng.Intn(timers)].Reset(time.Duration(1+rng.Intn(400)) * time.Millisecond)
		if i%8 == 0 {
			s.Step()
		}
	}
	if err := s.Run(); err != nil {
		panic(err)
	}
	return sum, fired, s.Now()
}

// schedScheduleCancel mixes one-shot schedules across every wheel level
// (sub-tick to beyond the overflow horizon) with cancellations and stretches
// of stepping.
func schedScheduleCancel(kind sim.SchedulerKind, seed uint64, ops int) (uint64, uint64, time.Duration) {
	s := sim.NewWithScheduler(seed, kind)
	rng := sim.NewRNG(sim.DeriveSeed(seed, 2))
	delays := []time.Duration{
		0, 1, 16*time.Microsecond + 383*time.Nanosecond, 17 * time.Microsecond,
		time.Millisecond, 64 * time.Millisecond, 4 * time.Second, 5 * time.Minute, 5 * time.Hour,
	}
	var sum uint64
	var fired uint64
	var pending []*sim.Event
	nextID := int64(0)
	for i := 0; i < ops; i++ {
		switch rng.Intn(4) {
		case 0, 1:
			id := nextID
			nextID++
			pending = append(pending, s.Schedule(delays[rng.Intn(len(delays))], func() {
				fired++
				sum = schedHash(sum, id, s.Now())
			}))
		case 2:
			if len(pending) > 0 {
				s.Cancel(pending[rng.Intn(len(pending))])
			}
		case 3:
			s.Step()
		}
		if len(pending) > 4096 {
			pending = pending[2048:]
		}
	}
	// Drain what remains, bounded so the far-future tail does not dominate.
	if err := s.RunUntil(s.Now() + 10*time.Second); err != nil {
		panic(err)
	}
	return sum, fired, s.Now()
}

// schedReservedSeq exercises the ReserveSeq/ScheduleArgsAtSeq pair the burst
// link uses: seqs are reserved ahead and attached to events scheduled later,
// interleaved with ordinary schedules at the same instants.
func schedReservedSeq(kind sim.SchedulerKind, seed uint64, ops int) (uint64, uint64, time.Duration) {
	s := sim.NewWithScheduler(seed, kind)
	rng := sim.NewRNG(sim.DeriveSeed(seed, 3))
	var sum uint64
	var fired uint64
	note := func(a, _ any) {
		fired++
		sum = schedHash(sum, int64(a.(int)), s.Now())
	}
	id := 0
	for i := 0; i < ops; i++ {
		at := s.Now() + time.Duration(rng.Intn(2000))*time.Microsecond
		seq := s.ReserveSeq()
		myID := id
		id += 2
		// The plain schedule consumes a later seq but targets the same instant:
		// firing order between the two is decided purely by seq.
		s.Schedule(at-s.Now(), func() {
			fired++
			sum = schedHash(sum, int64(myID+1), s.Now())
		})
		s.ScheduleArgsAtSeq(at, seq, note, myID, nil)
		if i%4 == 0 {
			s.Step()
		}
	}
	if err := s.Run(); err != nil {
		panic(err)
	}
	return sum, fired, s.Now()
}
