package mptcpgo

import (
	"strings"
	"testing"
)

// TestChaosFacade runs a small chaos scenario through the public builder and
// checks the error paths: bad fault specs and unknown adversary presets are
// reported by Run, not swallowed.
func TestChaosFacade(t *testing.T) {
	res, err := NewChaos(3).
		Members(2).
		TransferBytes(64 << 10).
		Faults("flap").
		Adversary("rst").
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "fleet-chaos" || len(res.Tables) == 0 {
		t.Fatalf("unexpected result: id=%q tables=%d", res.ID, len(res.Tables))
	}
	row := res.Tables[0].Rows[len(res.Tables[0].Rows)-1]
	if row[0] != "all" || row[4] != "0" || row[5] != "0" {
		t.Fatalf("chaos invariant violated: %v", row)
	}

	if _, err := NewChaos(1).Faults("flap:bogus=1").Run(); err == nil {
		t.Fatal("Run accepted a bad fault spec")
	}
	if _, err := NewChaos(1).Adversary("nope").Run(); err == nil ||
		!strings.Contains(err.Error(), "unknown adversary") {
		t.Fatalf("Run accepted an unknown adversary: %v", err)
	}
	if c := NewChaos(1).Members(0); c.err == nil {
		t.Fatal("Members(0) accepted")
	}
}
