// Package mptcpgo is a library-level reproduction of "How Hard Can It Be?
// Designing and Implementing a Deployable Multipath TCP" (NSDI 2012): a full
// Multipath TCP implementation (MP_CAPABLE/MP_JOIN handshakes, data sequence
// mappings with checksums, explicit DATA_ACKs, shared receive buffer,
// fallback to regular TCP, and the paper's sender-side mechanisms) running
// over a deterministic discrete-event network emulator, together with the
// experiment harnesses that regenerate every figure of the paper's
// evaluation.
//
// The package is the public facade over the internal packages (netem, tcp,
// core, experiments), split across four files:
//
//   - topology.go — the composable Topology builder: named hosts joined by
//     (possibly asymmetric) links and middlebox chains, N clients × M
//     servers, materialised into a Network with one MPTCP stack per host.
//   - conn.go — net-style connections: Dial(host, "server:80", opts...) and
//     the Stream wrapper that makes connections ordinary
//     io.ReadWriteClosers.
//   - results.go — structured experiment access: Run returns a typed Result
//     with Text/JSON/CSV encoders.
//   - mptcp.go (this file) — configurations plus the original two-host
//     NewSimulation facade, kept as a thin compatibility wrapper over the
//     builder.
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// system inventory and the facade layering.
package mptcpgo

import (
	"fmt"
	"time"

	"mptcpgo/internal/core"
)

// PathSpec describes one bidirectional path between the client and the
// server of a two-host simulation (compatibility form of Link).
type PathSpec struct {
	// Name labels the path in traces ("wifi", "3g", ...).
	Name string
	// RateMbps is the link rate in megabits per second (0 = unlimited).
	RateMbps float64
	// RTT is the base round-trip time of the path.
	RTT time.Duration
	// QueueBytes is the bottleneck buffer in bytes (0 = unlimited). Deep
	// queues reproduce cellular bufferbloat.
	QueueBytes int
	// LossRate is the random loss probability per packet.
	LossRate float64
}

// toLink converts the symmetric path description to a Link.
func (p PathSpec) toLink() Link {
	lc := LinkConfig{
		RateMbps:   p.RateMbps,
		Delay:      p.RTT / 2,
		QueueBytes: p.QueueBytes,
		LossRate:   p.LossRate,
	}
	return Link{Name: p.Name, AtoB: lc, BtoA: lc}
}

// WiFiPath returns the paper's emulated WiFi path (8 Mbps, 20 ms RTT, 80 ms
// of buffering).
func WiFiPath() PathSpec {
	return PathSpec{Name: "wifi", RateMbps: 8, RTT: 20 * time.Millisecond, QueueBytes: 80 << 10}
}

// ThreeGPath returns the paper's emulated 3G path (2 Mbps, 150 ms RTT, two
// seconds of buffering).
func ThreeGPath() PathSpec {
	return PathSpec{Name: "3g", RateMbps: 2, RTT: 150 * time.Millisecond, QueueBytes: 500 << 10}
}

// GigabitPath returns a 1 Gbps datacenter-style path.
func GigabitPath(name string) PathSpec {
	return PathSpec{Name: name, RateMbps: 1000, RTT: 200 * time.Microsecond, QueueBytes: 512 << 10}
}

// Config selects the connection behaviour. The zero value is not valid; use
// DefaultConfig, RegularMPTCPConfig or TCPConfig as a starting point.
type Config = core.Config

// DefaultConfig returns MPTCP with every mechanism from the paper enabled
// (the "MPTCP+M1,2" configuration plus autotuning and DSS checksums).
func DefaultConfig() Config { return core.DefaultConfig() }

// RegularMPTCPConfig returns MPTCP with the sender-side mechanisms disabled
// ("regular MPTCP" in Figure 4).
func RegularMPTCPConfig() Config { return core.RegularMPTCPConfig() }

// TCPConfig returns single-path TCP (the baseline in every experiment).
func TCPConfig() Config { return core.TCPOnlyConfig() }

// Conn is an established (or establishing) connection: a byte stream striped
// across one or more subflows.
type Conn = core.Connection

// Listener accepts connections on the server host.
type Listener = core.Listener

// Simulation is the original two-host facade: a client and a server
// connected by one or more symmetric paths. It is a thin compatibility
// wrapper over the Topology builder — the embedded Network carries the
// general API (Dial by host name, streams, link control), while the methods
// below keep the historical positional signatures.
type Simulation struct {
	*Network
}

// NewSimulation builds a client/server topology with one path per spec.
func NewSimulation(seed uint64, paths ...PathSpec) *Simulation {
	if len(paths) == 0 {
		paths = []PathSpec{WiFiPath(), ThreeGPath()}
	}
	t := NewTopology(seed)
	for _, p := range paths {
		t.Connect("client", "server", p.toLink())
	}
	n, err := t.Build()
	if err != nil {
		// Unreachable: the generated topology is structurally valid.
		panic(err)
	}
	return &Simulation{Network: n}
}

// Listen installs a server listener on the given port; accept is invoked for
// every new connection before any data arrives.
func (s *Simulation) Listen(port uint16, cfg Config, accept func(*Conn)) (*Listener, error) {
	return s.Network.Listen("server", port, cfg, accept)
}

// Dial opens a connection from the client's i-th interface to the server's
// address on the same path index.
func (s *Simulation) Dial(ifaceIndex int, port uint16, cfg Config) (*Conn, error) {
	if ifaceIndex < 0 {
		return nil, fmt.Errorf("mptcpgo: interface index %d out of range", ifaceIndex)
	}
	return s.Network.Dial("client", fmt.Sprintf("server:%d", port),
		WithConfig(cfg), WithInterface(ifaceIndex))
}

// ClientManager exposes the client-side MPTCP stack for advanced use.
func (s *Simulation) ClientManager() *core.Manager { return s.Manager("client") }

// ServerManager exposes the server-side MPTCP stack for advanced use.
func (s *Simulation) ServerManager() *core.Manager { return s.Manager("server") }
