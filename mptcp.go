// Package mptcpgo is a library-level reproduction of "How Hard Can It Be?
// Designing and Implementing a Deployable Multipath TCP" (NSDI 2012): a full
// Multipath TCP implementation (MP_CAPABLE/MP_JOIN handshakes, data sequence
// mappings with checksums, explicit DATA_ACKs, shared receive buffer,
// fallback to regular TCP, and the paper's sender-side mechanisms) running
// over a deterministic discrete-event network emulator, together with the
// experiment harnesses that regenerate every figure of the paper's
// evaluation.
//
// The package is the public facade: it wires together the internal packages
// (netem, tcp, core, experiments) into a small API for building emulated
// multipath networks, opening MPTCP or TCP connections over them and running
// the paper's scenarios. See the examples/ directory for runnable programs
// and DESIGN.md for the system inventory.
package mptcpgo

import (
	"fmt"
	"io"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/experiments"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/sim"
)

// PathSpec describes one bidirectional path between the client and the
// server of a simulation.
type PathSpec struct {
	// Name labels the path in traces ("wifi", "3g", ...).
	Name string
	// RateMbps is the link rate in megabits per second (0 = unlimited).
	RateMbps float64
	// RTT is the base round-trip time of the path.
	RTT time.Duration
	// QueueBytes is the bottleneck buffer in bytes (0 = unlimited). Deep
	// queues reproduce cellular bufferbloat.
	QueueBytes int
	// LossRate is the random loss probability per packet.
	LossRate float64
}

func (p PathSpec) toInternal() netem.PathSpec {
	lc := netem.LinkConfig{
		RateBps:    int64(p.RateMbps * 1e6),
		Delay:      p.RTT / 2,
		QueueBytes: p.QueueBytes,
		LossRate:   p.LossRate,
	}
	return netem.PathSpec{Name: p.Name, Config: netem.PathConfig{AB: lc, BA: lc}}
}

// WiFiPath returns the paper's emulated WiFi path (8 Mbps, 20 ms RTT, 80 ms
// of buffering).
func WiFiPath() PathSpec {
	return PathSpec{Name: "wifi", RateMbps: 8, RTT: 20 * time.Millisecond, QueueBytes: 80 << 10}
}

// ThreeGPath returns the paper's emulated 3G path (2 Mbps, 150 ms RTT, two
// seconds of buffering).
func ThreeGPath() PathSpec {
	return PathSpec{Name: "3g", RateMbps: 2, RTT: 150 * time.Millisecond, QueueBytes: 500 << 10}
}

// GigabitPath returns a 1 Gbps datacenter-style path.
func GigabitPath(name string) PathSpec {
	return PathSpec{Name: name, RateMbps: 1000, RTT: 200 * time.Microsecond, QueueBytes: 512 << 10}
}

// Config selects the connection behaviour. The zero value is not valid; use
// DefaultConfig, RegularMPTCPConfig or TCPConfig as a starting point.
type Config = core.Config

// DefaultConfig returns MPTCP with every mechanism from the paper enabled
// (the "MPTCP+M1,2" configuration plus autotuning and DSS checksums).
func DefaultConfig() Config { return core.DefaultConfig() }

// RegularMPTCPConfig returns MPTCP with the sender-side mechanisms disabled
// ("regular MPTCP" in Figure 4).
func RegularMPTCPConfig() Config { return core.RegularMPTCPConfig() }

// TCPConfig returns single-path TCP (the baseline in every experiment).
func TCPConfig() Config { return core.TCPOnlyConfig() }

// Conn is an established (or establishing) connection: a byte stream striped
// across one or more subflows.
type Conn = core.Connection

// Listener accepts connections on the server host.
type Listener = core.Listener

// Simulation is a client and a server connected by one or more paths, with
// an MPTCP stack on each side, driven by a deterministic discrete-event
// clock.
type Simulation struct {
	sim    *sim.Simulator
	net    *netem.Network
	client *core.Manager
	server *core.Manager
}

// NewSimulation builds a client/server topology with one path per spec.
func NewSimulation(seed uint64, paths ...PathSpec) *Simulation {
	if len(paths) == 0 {
		paths = []PathSpec{WiFiPath(), ThreeGPath()}
	}
	specs := make([]netem.PathSpec, len(paths))
	for i, p := range paths {
		specs[i] = p.toInternal()
	}
	s := sim.New(seed)
	n := netem.Build(s, specs...)
	return &Simulation{
		sim:    s,
		net:    n,
		client: core.NewManager(n.Client),
		server: core.NewManager(n.Server),
	}
}

// Now returns the current simulated time.
func (s *Simulation) Now() time.Duration { return s.sim.Now() }

// Run advances the simulation by d.
func (s *Simulation) Run(d time.Duration) error { return s.sim.RunFor(d) }

// RunUntil advances the simulation to the absolute time t.
func (s *Simulation) RunUntil(t time.Duration) error { return s.sim.RunUntil(t) }

// Schedule runs fn after delay d of simulated time.
func (s *Simulation) Schedule(d time.Duration, fn func()) { s.sim.Schedule(d, fn) }

// Listen installs a server listener on the given port; accept is invoked for
// every new connection before any data arrives.
func (s *Simulation) Listen(port uint16, cfg Config, accept func(*Conn)) (*Listener, error) {
	return s.server.Listen(port, cfg, accept)
}

// Dial opens a connection from the client's i-th interface to the server's
// address on the same path index.
func (s *Simulation) Dial(ifaceIndex int, port uint16, cfg Config) (*Conn, error) {
	ifaces := s.net.Client.Interfaces()
	if ifaceIndex < 0 || ifaceIndex >= len(ifaces) {
		return nil, fmt.Errorf("mptcpgo: interface index %d out of range (%d interfaces)", ifaceIndex, len(ifaces))
	}
	remote := packet.Endpoint{Addr: s.net.ServerAddr(ifaceIndex), Port: port}
	return s.client.Dial(ifaces[ifaceIndex], remote, cfg)
}

// SetPathDown fails (or restores) the i-th path; segments on a failed path
// are silently dropped, modelling mobility or radio loss.
func (s *Simulation) SetPathDown(i int, down bool) error {
	if i < 0 || i >= len(s.net.Paths) {
		return fmt.Errorf("mptcpgo: path index %d out of range", i)
	}
	s.net.Path(i).SetDown(down)
	return nil
}

// ClientManager exposes the client-side MPTCP stack for advanced use.
func (s *Simulation) ClientManager() *core.Manager { return s.client }

// ServerManager exposes the server-side MPTCP stack for advanced use.
func (s *Simulation) ServerManager() *core.Manager { return s.server }

// Internal returns the underlying emulated network for advanced topologies
// (middlebox chains, link reconfiguration).
func (s *Simulation) Internal() *netem.Network { return s.net }

// ---------------------------------------------------------------------------
// Experiment access
// ---------------------------------------------------------------------------

// ExperimentIDs lists the available paper experiments (fig3..fig11, mbox,
// rationale).
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment runs one of the paper's experiments and writes its tables to
// w. Set quick to true for a reduced sweep.
func RunExperiment(w io.Writer, id string, quick bool, seed uint64) error {
	return experiments.RunAndPrint(w, id, experiments.Options{Quick: quick, Seed: seed})
}
