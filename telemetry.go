package mptcpgo

import (
	"io"
	"time"

	"mptcpgo/internal/telemetry"
)

// Telemetry is the run-observability facade: one metrics plane (counter/gauge
// registry, wall-clock phase profiler, per-shard progress tracker, merged
// latency histogram) that a Fleet, OpenLoop or Chaos run feeds while it
// executes. Attaching telemetry NEVER changes a scenario's merged result —
// every number it exposes is either read from atomic snapshots beside the
// deterministic core or derived from the wall clock, and nothing flows back.
//
//	t := mptcpgo.NewTelemetry("upload-fleet")
//	defer t.Close()
//	t.Progress(os.Stderr, time.Second)
//	res, err := mptcpgo.NewChaos(42).Members(64).Telemetry(t).Run()
type Telemetry struct {
	plane *telemetry.Plane
	prog  *telemetry.Progress
	srv   *telemetry.Server
}

// NewTelemetry creates a telemetry plane; label tags progress lines and the
// Prometheus exposition.
func NewTelemetry(label string) *Telemetry {
	return &Telemetry{plane: telemetry.New(label)}
}

// Progress starts printing a live status line (sim vs wall time, event and
// segment rates, flow and shard completion, straggler lag) to w at the given
// cadence (0 = 1s) until Close.
func (t *Telemetry) Progress(w io.Writer, interval time.Duration) *Telemetry {
	if t.prog == nil {
		t.prog = telemetry.StartProgress(w, t.plane, interval)
	}
	return t
}

// ServeMetrics starts an HTTP endpoint on addr (e.g. "127.0.0.1:0") serving
// Prometheus text on /metrics and expvar JSON on /debug/vars, and returns the
// bound address. The server runs until Close.
func (t *Telemetry) ServeMetrics(addr string) (string, error) {
	s, err := telemetry.Serve(addr, t.plane)
	if err != nil {
		return "", err
	}
	t.srv = s
	return s.Addr(), nil
}

// WritePrometheus renders a one-shot snapshot of the full exposition —
// registry, per-shard tracker, phase profile, latency quantiles — in
// Prometheus text format.
func (t *Telemetry) WritePrometheus(w io.Writer) {
	t.plane.WritePrometheus(w)
}

// LatencyQuantile returns the merged latency histogram's p-th percentile in
// milliseconds (0 when no run has completed yet). Quantiles come from
// fixed-boundary log-scale buckets, so they are identical at any worker or
// shard count.
func (t *Telemetry) LatencyQuantile(p float64) float64 {
	return t.plane.Latency().Quantile(p)
}

// Close stops the progress printer and metrics server, if started. Safe on a
// nil receiver.
func (t *Telemetry) Close() {
	if t == nil {
		return
	}
	t.prog.Stop()
	t.prog = nil
	if t.srv != nil {
		t.srv.Close()
		t.srv = nil
	}
}

// planeOf unwraps the internal plane (nil-safe) for the builders.
func planeOf(t *Telemetry) *telemetry.Plane {
	if t == nil {
		return nil
	}
	return t.plane
}
