package mptcpgo

import (
	"testing"
	"time"

	"mptcpgo/internal/buffer"
	"mptcpgo/internal/core"
	"mptcpgo/internal/experiments"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/pool"
	"mptcpgo/internal/probe"
	"mptcpgo/internal/sim"
	"mptcpgo/internal/telemetry"
)

// Allocation-regression guards: the pooled hot paths introduced for the
// Figure 3 / §4.3 performance work must stay allocation-free. These tests
// fail loudly if a change reintroduces per-segment allocation.
//
// testing.AllocsPerRun averages over many runs, so a single GC-induced pool
// miss does not flake the guard; a systematic regression (one alloc per
// cycle) pushes the average to ≥1 and fails.

// TestPooledPayloadCycleNoAllocs guards pool.Bytes/pool.Copy/pool.Recycle.
func TestPooledPayloadCycleNoAllocs(t *testing.T) {
	src := make([]byte, 1460)
	for i := 0; i < 8; i++ {
		pool.Recycle(pool.Bytes(1460)) // warm the class
	}
	avg := testing.AllocsPerRun(500, func() {
		b := pool.Copy(src)
		pool.Recycle(b)
	})
	if avg >= 1 {
		t.Fatalf("pooled payload copy/recycle cycle allocates %.2f allocs/op; want 0", avg)
	}
}

// TestPooledSegmentCycleNoAllocs guards the segment build/release cycle —
// the per-hop cost of every emulated packet.
func TestPooledSegmentCycleNoAllocs(t *testing.T) {
	payload := make([]byte, 1460)
	for i := 0; i < 8; i++ {
		seg := packet.NewSegment()
		seg.AttachPayload(pool.Copy(payload))
		seg.Release() // warm segment and payload pools
	}
	avg := testing.AllocsPerRun(500, func() {
		seg := packet.NewSegment()
		seg.Src = packet.Endpoint{Addr: packet.MakeAddr(10, 0, 0, 1), Port: 40000}
		seg.Dst = packet.Endpoint{Addr: packet.MakeAddr(10, 0, 0, 2), Port: 80}
		seg.Flags = packet.FlagACK | packet.FlagPSH
		seg.AttachPayload(pool.Copy(payload))
		seg.Release()
	})
	if avg >= 1 {
		t.Fatalf("pooled segment cycle allocates %.2f allocs/op; want 0", avg)
	}
}

// TestOfoQueueSteadyStateNoAllocs guards the free-listed out-of-order
// queues: once the node/batch free lists and the PopContiguous scratch slice
// are warm, a reorder-then-drain cycle (two subflows, one gap, one fill) must
// not allocate in any of the four §4.3 algorithms — neither for payload
// buffers (pooled since PR 1) nor for the listNode/treeNode/batchNode structs
// and the result slice.
func TestOfoQueueSteadyStateNoAllocs(t *testing.T) {
	payload := make([]byte, 1460)
	for _, alg := range buffer.Algorithms() {
		q := buffer.NewOfoQueue(alg)
		var next uint64
		cycle := func() {
			// Subflow 1's segment arrives early (creating the gap), subflow
			// 0's fills it; the drain returns both.
			q.Insert(buffer.Item{Seq: next + 1460, Data: payload, Subflow: 1})
			q.Insert(buffer.Item{Seq: next, Data: payload, Subflow: 0})
			for _, it := range q.PopContiguous(next) {
				next = it.End()
				pool.Recycle(it.Data)
			}
			if q.Len() != 0 {
				t.Fatalf("%s: queue not drained (%d items left)", q.Name(), q.Len())
			}
		}
		for i := 0; i < 16; i++ {
			cycle() // warm the free lists and the scratch slice
		}
		avg := testing.AllocsPerRun(300, cycle)
		if avg >= 1 {
			t.Fatalf("%s OFO steady-state cycle allocates %.2f allocs/op; want 0", q.Name(), avg)
		}
	}
}

// TestChecksumNoAllocs guards the word-at-a-time checksum paths (Figure 3's
// hot loop): neither the plain Internet checksum nor the DSS checksum with
// its stack pseudo-header may allocate.
func TestChecksumNoAllocs(t *testing.T) {
	buf := make([]byte, 1460)
	var sink uint16
	avg := testing.AllocsPerRun(500, func() {
		sink ^= packet.Checksum(buf)
		sink ^= packet.DSSChecksum(1234, 5678, 1460, buf)
	})
	_ = sink
	if avg != 0 {
		t.Fatalf("checksum paths allocate %.2f allocs/op; want 0", avg)
	}
}

// TestChecksumMatchesReference cross-checks the optimized word-at-a-time
// checksum against the definitional byte-at-a-time sum on assorted lengths
// and alignment-hostile sizes.
func TestChecksumMatchesReference(t *testing.T) {
	reference := func(sum uint32, data []byte) uint32 {
		i, n := 0, len(data)
		for ; i+1 < n; i += 2 {
			sum += uint32(data[i])<<8 | uint32(data[i+1])
		}
		if i < n {
			sum += uint32(data[i]) << 8
		}
		return sum
	}
	fold := packet.FoldChecksum
	for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100, 536, 1459, 1460, 8960} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i*131 + n)
		}
		want := fold(reference(0, data))
		got := fold(packet.PartialChecksum(0, data))
		if got != want {
			t.Fatalf("len=%d: checksum %#04x, reference %#04x", n, got, want)
		}
		// Composed partial sums (pseudo-header + payload) must agree too.
		want = fold(reference(reference(0, data[:n/2*2]), data[n/2*2:]))
		got = fold(packet.PartialChecksum(packet.PartialChecksum(0, data[:n/2*2]), data[n/2*2:]))
		if got != want {
			t.Fatalf("len=%d: composed checksum %#04x, reference %#04x", n, got, want)
		}
	}
}

// sendPathCycleAllocs measures the steady-state allocation cost of one
// write→deliver→read cycle over a symmetric 100 Mbps path. When traced is
// true a flight recorder is attached to the client stack first (events only —
// no sampler — so the cycle exercises the Emit/Count hot path, not the
// time-series machinery). When telem is true each cycle also performs one
// telemetry publish — the shard-cell atomic stores plus one latency histogram
// observation — mirroring what an attached plane costs the fleet step loop.
func sendPathCycleAllocs(t *testing.T, traced, telem bool) float64 {
	t.Helper()
	s := sim.New(7)
	net := netem.Build(s, netem.Symmetric("p", netem.Mbps(100), time.Millisecond, 0, 0))
	cliMgr := core.NewManager(net.Client)
	srvMgr := core.NewManager(net.Server)
	if traced {
		cliMgr.SetProbe(probe.NewRecorder(s, 0, 1, probe.Config{}), 0)
	}

	cfg := core.DefaultConfig()
	cfg.SendBufBytes = 256 << 10
	cfg.RecvBufBytes = 256 << 10

	var serverConn *core.Connection
	if _, err := srvMgr.Listen(80, cfg, func(c *core.Connection) { serverConn = c }); err != nil {
		t.Fatal(err)
	}
	iface := net.Client.Interfaces()[0]
	conn, err := cliMgr.Dial(iface, packet.Endpoint{Addr: net.ServerAddr(0), Port: 80}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000 && (serverConn == nil || !conn.Established()); i++ {
		if !s.Step() {
			break
		}
	}
	if serverConn == nil || !conn.Established() {
		t.Fatal("connection did not establish")
	}

	var cell *telemetry.ShardCell
	var hist *telemetry.Histogram
	if telem {
		plane := telemetry.New("alloc-guard")
		cell = plane.Track.Cell(0, 1)
		hist = telemetry.NewLatencyHistogram()
		hist.Observe(1) // touch min/max once so Observe runs its full path
	}

	payload := make([]byte, 1460)
	readBuf := make([]byte, 4096)
	cycle := func() {
		if conn.Write(payload) != len(payload) {
			t.Fatal("write rejected in steady state")
		}
		deadline := s.Now() + time.Second
		for serverConn.ReadableBytes() < len(payload) && s.Now() < deadline {
			if !s.Step() {
				break
			}
		}
		for serverConn.ReadableBytes() > 0 {
			if serverConn.ReadInto(readBuf) == 0 {
				break
			}
		}
		if cell != nil {
			cell.SimNowNs.Store(int64(s.Now()))
			cell.Events.Store(s.Processed)
			cell.Segments.Add(1)
			hist.Observe(float64(s.Now()) / float64(time.Millisecond))
		}
	}
	for i := 0; i < 64; i++ {
		cycle() // reach steady state: free lists, pools and queues warm
	}
	return testing.AllocsPerRun(400, cycle)
}

// TestSendPathSteadyStateAllocs guards the chunk + DSS recycling on the
// full MPTCP send path: once a connection reaches steady state, a
// write→deliver→read cycle must not allocate per segment. Every moving part
// is recycled — chunk structs and their DSS options (per-endpoint free
// lists), outgoing segments and payload buffers (pools), outgoing options
// (per-segment arenas), events (simulator free list) — so the average
// allocation count per cycle is pinned near zero. The small budget absorbs
// sync.Pool refills after GC cycles; before chunk/DSS recycling this cycle
// cost dozens of allocations.
//
// With no probe attached, every flight-recorder hook reduces to one
// nil-receiver (or nil-config) branch, so tracing-disabled stays under the
// same budget it had before the instrumentation existed.
func TestSendPathSteadyStateAllocs(t *testing.T) {
	avg := sendPathCycleAllocs(t, false, false)
	if avg >= 4 {
		t.Fatalf("steady-state send cycle allocates %.2f allocs/op; want < 4", avg)
	}
}

// TestSendPathTracedSteadyStateAllocs pins the flight recorder's enabled-path
// budget: with a recorder attached, every emission lands in a preallocated
// per-member ring and counter set, so the traced steady-state cycle must meet
// the same < 4 allocs/op budget as the untraced one.
func TestSendPathTracedSteadyStateAllocs(t *testing.T) {
	avg := sendPathCycleAllocs(t, true, false)
	if avg >= 4 {
		t.Fatalf("traced steady-state send cycle allocates %.2f allocs/op; want < 4 (recorder storage is preallocated)", avg)
	}
}

// TestSendPathTelemetrySteadyStateAllocs pins the telemetry plane's hot-path
// budget: a shard-cell publish is a handful of atomic stores and a histogram
// observation is a binary search plus an atomic-free bucket increment, so the
// instrumented cycle must meet the same < 4 allocs/op budget as the bare one.
func TestSendPathTelemetrySteadyStateAllocs(t *testing.T) {
	avg := sendPathCycleAllocs(t, false, true)
	if avg >= 4 {
		t.Fatalf("telemetry steady-state send cycle allocates %.2f allocs/op; want < 4 (cells and buckets are preallocated)", avg)
	}
}

// TestBulkTransferAllocBudget pins the end-to-end allocation footprint of
// the short WiFi+3G bulk transfer that BenchmarkBulkTransferAllocs measures.
// The hot-path work (PR 1: pools and send-queue slicing; this PR: chunk/DSS
// recycling, per-segment option arenas, capacity-preserving queues) brought
// it from ~268k to ~59.8k to ~3.2k allocs/op; the budget holds the new
// steady state with headroom for GC-induced pool refills.
func TestBulkTransferAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("bulk transfer budget is not measured in -short mode")
	}
	cfg := core.DefaultConfig()
	cfg.SendBufBytes = 256 << 10
	cfg.RecvBufBytes = 256 << 10
	run := func() {
		if _, err := experiments.RunBulk(experiments.BulkOptions{
			Seed:     1,
			Specs:    netem.WiFi3GSpec(),
			Client:   cfg,
			Server:   cfg,
			Duration: 3 * time.Second,
			Warmup:   1 * time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(3, run)
	const budget = 8000
	if avg > budget {
		t.Fatalf("bulk transfer allocates %.0f allocs/run; budget %d (pre-recycling figure was ~59.8k)", avg, budget)
	}
}
