package mptcpgo

import (
	"testing"

	"mptcpgo/internal/buffer"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/pool"
)

// Allocation-regression guards: the pooled hot paths introduced for the
// Figure 3 / §4.3 performance work must stay allocation-free. These tests
// fail loudly if a change reintroduces per-segment allocation.
//
// testing.AllocsPerRun averages over many runs, so a single GC-induced pool
// miss does not flake the guard; a systematic regression (one alloc per
// cycle) pushes the average to ≥1 and fails.

// TestPooledPayloadCycleNoAllocs guards pool.Bytes/pool.Copy/pool.Recycle.
func TestPooledPayloadCycleNoAllocs(t *testing.T) {
	src := make([]byte, 1460)
	for i := 0; i < 8; i++ {
		pool.Recycle(pool.Bytes(1460)) // warm the class
	}
	avg := testing.AllocsPerRun(500, func() {
		b := pool.Copy(src)
		pool.Recycle(b)
	})
	if avg >= 1 {
		t.Fatalf("pooled payload copy/recycle cycle allocates %.2f allocs/op; want 0", avg)
	}
}

// TestPooledSegmentCycleNoAllocs guards the segment build/release cycle —
// the per-hop cost of every emulated packet.
func TestPooledSegmentCycleNoAllocs(t *testing.T) {
	payload := make([]byte, 1460)
	for i := 0; i < 8; i++ {
		seg := packet.NewSegment()
		seg.AttachPayload(pool.Copy(payload))
		seg.Release() // warm segment and payload pools
	}
	avg := testing.AllocsPerRun(500, func() {
		seg := packet.NewSegment()
		seg.Src = packet.Endpoint{Addr: packet.MakeAddr(10, 0, 0, 1), Port: 40000}
		seg.Dst = packet.Endpoint{Addr: packet.MakeAddr(10, 0, 0, 2), Port: 80}
		seg.Flags = packet.FlagACK | packet.FlagPSH
		seg.AttachPayload(pool.Copy(payload))
		seg.Release()
	})
	if avg >= 1 {
		t.Fatalf("pooled segment cycle allocates %.2f allocs/op; want 0", avg)
	}
}

// TestOfoQueueSteadyStateNoAllocs guards the free-listed out-of-order
// queues: once the node/batch free lists and the PopContiguous scratch slice
// are warm, a reorder-then-drain cycle (two subflows, one gap, one fill) must
// not allocate in any of the four §4.3 algorithms — neither for payload
// buffers (pooled since PR 1) nor for the listNode/treeNode/batchNode structs
// and the result slice.
func TestOfoQueueSteadyStateNoAllocs(t *testing.T) {
	payload := make([]byte, 1460)
	for _, alg := range buffer.Algorithms() {
		q := buffer.NewOfoQueue(alg)
		var next uint64
		cycle := func() {
			// Subflow 1's segment arrives early (creating the gap), subflow
			// 0's fills it; the drain returns both.
			q.Insert(buffer.Item{Seq: next + 1460, Data: payload, Subflow: 1})
			q.Insert(buffer.Item{Seq: next, Data: payload, Subflow: 0})
			for _, it := range q.PopContiguous(next) {
				next = it.End()
				pool.Recycle(it.Data)
			}
			if q.Len() != 0 {
				t.Fatalf("%s: queue not drained (%d items left)", q.Name(), q.Len())
			}
		}
		for i := 0; i < 16; i++ {
			cycle() // warm the free lists and the scratch slice
		}
		avg := testing.AllocsPerRun(300, cycle)
		if avg >= 1 {
			t.Fatalf("%s OFO steady-state cycle allocates %.2f allocs/op; want 0", q.Name(), avg)
		}
	}
}

// TestChecksumNoAllocs guards the word-at-a-time checksum paths (Figure 3's
// hot loop): neither the plain Internet checksum nor the DSS checksum with
// its stack pseudo-header may allocate.
func TestChecksumNoAllocs(t *testing.T) {
	buf := make([]byte, 1460)
	var sink uint16
	avg := testing.AllocsPerRun(500, func() {
		sink ^= packet.Checksum(buf)
		sink ^= packet.DSSChecksum(1234, 5678, 1460, buf)
	})
	_ = sink
	if avg != 0 {
		t.Fatalf("checksum paths allocate %.2f allocs/op; want 0", avg)
	}
}

// TestChecksumMatchesReference cross-checks the optimized word-at-a-time
// checksum against the definitional byte-at-a-time sum on assorted lengths
// and alignment-hostile sizes.
func TestChecksumMatchesReference(t *testing.T) {
	reference := func(sum uint32, data []byte) uint32 {
		i, n := 0, len(data)
		for ; i+1 < n; i += 2 {
			sum += uint32(data[i])<<8 | uint32(data[i+1])
		}
		if i < n {
			sum += uint32(data[i]) << 8
		}
		return sum
	}
	fold := packet.FoldChecksum
	for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100, 536, 1459, 1460, 8960} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i*131 + n)
		}
		want := fold(reference(0, data))
		got := fold(packet.PartialChecksum(0, data))
		if got != want {
			t.Fatalf("len=%d: checksum %#04x, reference %#04x", n, got, want)
		}
		// Composed partial sums (pseudo-header + payload) must agree too.
		want = fold(reference(reference(0, data[:n/2*2]), data[n/2*2:]))
		got = fold(packet.PartialChecksum(packet.PartialChecksum(0, data[:n/2*2]), data[n/2*2:]))
		if got != want {
			t.Fatalf("len=%d: composed checksum %#04x, reference %#04x", n, got, want)
		}
	}
}
