// middlebox demonstrates the deployability half of the paper: MPTCP
// connections crossing NATs, sequence-number rewriters, option-stripping
// firewalls, resegmenting NICs and payload-modifying ALGs either keep their
// multipath operation, fall back to regular TCP, or reset the affected
// subflow — but the application's byte stream is delivered correctly in
// every case.
package main

import (
	"fmt"
	"log"
	"time"

	mptcp "mptcpgo"
	"mptcpgo/internal/middlebox"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
)

func run(name string, install func(n *netem.Network)) {
	sim := mptcp.NewSimulation(11, mptcp.WiFiPath(), mptcp.ThreeGPath())
	if install != nil {
		install(sim.Internal())
	}

	cfg := mptcp.DefaultConfig()
	cfg.SendBufBytes = 256 << 10
	cfg.RecvBufBytes = 256 << 10

	const total = 2 << 20
	received := 0
	_, err := sim.Listen(80, cfg, func(c *mptcp.Conn) {
		c.OnReadable = func() {
			for {
				data := c.Read(64 << 10)
				if len(data) == 0 {
					break
				}
				received += len(data)
			}
			if c.EOF() {
				c.Close()
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	conn, err := sim.Dial(0, 80, cfg)
	if err != nil {
		log.Fatal(err)
	}
	payload := make([]byte, 32<<10)
	sent := 0
	pump := func() {
		for sent < total {
			n := len(payload)
			if total-sent < n {
				n = total - sent
			}
			w := conn.Write(payload[:n])
			if w == 0 {
				return
			}
			sent += w
		}
		conn.Close()
	}
	conn.OnEstablished = pump
	conn.OnWritable = pump

	if err := sim.Run(60 * time.Second); err != nil {
		log.Fatal(err)
	}
	status := "delivered"
	if received < total {
		status = fmt.Sprintf("INCOMPLETE (%d of %d bytes)", received, total)
	}
	fmt.Printf("  %-34s %-28s multipath=%v subflows-opened=%d\n", name, status, conn.MPTCPActive(), conn.Stats().SubflowsOpened)
}

func main() {
	fmt.Println("2 MB transfer over WiFi + 3G through various middleboxes:")

	run("clean paths", nil)
	run("NAT on the WiFi path", func(n *netem.Network) {
		n.Path(0).AddBox(middlebox.NewNAT(packet.MakeAddr(100, 64, 9, 1), true))
	})
	run("sequence-number rewriting firewall", func(n *netem.Network) {
		n.Path(0).AddBox(middlebox.NewSeqRewriter(0))
	})
	run("firewall strips MPTCP from SYNs", func(n *netem.Network) {
		n.Path(0).AddBox(middlebox.NewOptionStripper(true))
		n.Path(1).AddBox(middlebox.NewOptionStripper(true))
	})
	run("TSO-style resegmentation (536B)", func(n *netem.Network) {
		n.Path(0).AddBox(middlebox.NewSplitter(536))
	})
	run("payload-modifying ALG", func(n *netem.Network) {
		n.Path(0).AddBox(middlebox.NewPayloadCorrupter(300))
	})
}
