// middlebox demonstrates the deployability half of the paper: MPTCP
// connections crossing NATs, sequence-number rewriters, option-stripping
// firewalls, resegmenting NICs and payload-modifying ALGs either keep their
// multipath operation, fall back to regular TCP, or reset the affected
// subflow — but the application's byte stream is delivered correctly in
// every case. Middlebox chains are attached per link directly in the
// topology builder.
package main

import (
	"fmt"
	"log"
	"time"

	mptcp "mptcpgo"
	"mptcpgo/internal/middlebox"
	"mptcpgo/internal/packet"
)

func run(name string, wifiBoxes, threeGBoxes []mptcp.Box) {
	net, err := mptcp.NewTopology(11).
		Connect("client", "server", mptcp.WiFiLink(), wifiBoxes...).
		Connect("client", "server", mptcp.ThreeGLink(), threeGBoxes...).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	cfg := mptcp.DefaultConfig()
	cfg.SendBufBytes = 256 << 10
	cfg.RecvBufBytes = 256 << 10

	const total = 2 << 20
	received := 0
	_, err = net.Listen("server", 80, cfg, func(c *mptcp.Conn) {
		c.OnReadable = func() {
			for {
				data := c.Read(64 << 10)
				if len(data) == 0 {
					break
				}
				received += len(data)
			}
			if c.EOF() {
				c.Close()
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	conn, err := net.Dial("client", "server:80", mptcp.WithConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}
	payload := make([]byte, 32<<10)
	sent := 0
	pump := func() {
		for sent < total {
			n := len(payload)
			if total-sent < n {
				n = total - sent
			}
			w := conn.Write(payload[:n])
			if w == 0 {
				return
			}
			sent += w
		}
		conn.Close()
	}
	conn.OnEstablished = pump
	conn.OnWritable = pump

	if err := net.Run(60 * time.Second); err != nil {
		log.Fatal(err)
	}
	status := "delivered"
	if received < total {
		status = fmt.Sprintf("INCOMPLETE (%d of %d bytes)", received, total)
	}
	fmt.Printf("  %-34s %-28s multipath=%v subflows-opened=%d\n", name, status, conn.MPTCPActive(), conn.Stats().SubflowsOpened)
}

func main() {
	fmt.Println("2 MB transfer over WiFi + 3G through various middleboxes:")

	run("clean paths", nil, nil)
	run("NAT on the WiFi path",
		[]mptcp.Box{middlebox.NewNAT(packet.MakeAddr(100, 64, 9, 1), true)}, nil)
	run("sequence-number rewriting firewall",
		[]mptcp.Box{middlebox.NewSeqRewriter(0)}, nil)
	run("firewall strips MPTCP from SYNs",
		[]mptcp.Box{middlebox.NewOptionStripper(true)},
		[]mptcp.Box{middlebox.NewOptionStripper(true)})
	run("TSO-style resegmentation (536B)",
		[]mptcp.Box{middlebox.NewSplitter(536)}, nil)
	run("payload-modifying ALG",
		[]mptcp.Box{middlebox.NewPayloadCorrupter(300)}, nil)
}
