// manyclients exercises the N-host topology builder: 32 clients, each on
// its own access link with heterogeneous rate/RTT/buffering, dial one
// server concurrently and stream data for a few simulated seconds. The
// whole fan-in is one loop over hosts — no facade forking — and because the
// emulator is a deterministic discrete-event machine, the aggregate goodput
// is bit-identical across runs at the same seed: the program builds and
// runs the topology twice and fails loudly if the two runs disagree.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	mptcp "mptcpgo"
)

// accessLink derives a deterministic heterogeneous access link for client i:
// rates from 2 to 9.5 Mbps, RTTs from 10 to 190 ms, and a queue sized to
// roughly 250 ms of buffering.
func accessLink(i int) mptcp.Link {
	rate := 2.0 + 0.5*float64(i%16)
	rtt := time.Duration(10+20*(i%10)) * time.Millisecond
	queue := int(rate * 1e6 / 8 * 0.250)
	return mptcp.SymmetricLink(fmt.Sprintf("access%d", i), rate, rtt, queue)
}

// run builds the star topology, runs the workload for the given simulated
// time and returns the total bytes the server received.
func run(seed uint64, clients int, duration time.Duration) (int, error) {
	topo := mptcp.NewTopology(seed).AddHost("server")
	names := make([]string, clients)
	for i := 0; i < clients; i++ {
		names[i] = fmt.Sprintf("client%d", i)
		topo.Connect(names[i], "server", accessLink(i))
	}
	net, err := topo.Build()
	if err != nil {
		return 0, err
	}

	cfg := mptcp.DefaultConfig()
	cfg.SendBufBytes = 128 << 10
	cfg.RecvBufBytes = 128 << 10
	// One access link per client: nothing useful to advertise back.
	cfg.AdvertiseAddresses = false

	received := 0
	if _, err := net.Listen("server", 80, cfg, func(c *mptcp.Conn) {
		c.OnReadable = func() {
			for {
				data := c.Read(64 << 10)
				if len(data) == 0 {
					break
				}
				received += len(data)
			}
		}
	}); err != nil {
		return 0, err
	}

	payload := make([]byte, 16<<10)
	for _, name := range names {
		conn, err := net.Dial(name, "server:80", mptcp.WithConfig(cfg))
		if err != nil {
			return 0, err
		}
		pump := func() {
			for conn.Write(payload) > 0 {
			}
		}
		conn.OnEstablished = pump
		conn.OnWritable = pump
	}

	if err := net.Run(duration); err != nil {
		return 0, err
	}
	return received, nil
}

func main() {
	clients := flag.Int("clients", 32, "number of client hosts")
	seed := flag.Uint64("seed", 17, "RNG seed")
	seconds := flag.Int("seconds", 10, "simulated run length")
	flag.Parse()

	duration := time.Duration(*seconds) * time.Second
	first, err := run(*seed, *clients, duration)
	if err != nil {
		log.Fatal(err)
	}
	second, err := run(*seed, *clients, duration)
	if err != nil {
		log.Fatal(err)
	}

	goodput := float64(first) * 8 / duration.Seconds() / 1e6
	fmt.Printf("%d clients -> 1 server over heterogeneous access links, %v simulated\n",
		*clients, duration)
	fmt.Printf("  aggregate delivered: %d bytes (%.2f Mbps)\n", first, goodput)
	if first != second {
		fmt.Fprintf(os.Stderr, "NON-DETERMINISTIC: run 1 delivered %d bytes, run 2 delivered %d\n", first, second)
		os.Exit(1)
	}
	fmt.Printf("  determinism check:   second run delivered the same %d bytes\n", second)
}
