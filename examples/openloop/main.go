// openloop exercises the open-loop workload engine through the public
// facade: a fleet-wide Poisson process injects flows with bounded-Pareto
// sizes across arrival hosts on heterogeneous access links, at an offered
// rate deliberately past the fleet's capacity so the overload regime
// (latency tail, drops) is visible in the report. The merged result is
// deterministic: the program runs the workload twice at different worker
// counts and fails loudly if the merged JSON differs by a byte.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	mptcp "mptcpgo"
)

func build(seed uint64, hosts int, rate float64, workers int) *mptcp.OpenLoop {
	return mptcp.NewOpenLoop(seed).
		Hosts(hosts).
		Rate(rate).
		SizeDist("pareto:1.2,4096,1048576").
		Window(3 * time.Second).
		FlowDeadline(4 * time.Second).
		Shards(4). // several shards so the 1-vs-4-worker check exercises the merge
		Workers(workers)
}

func runJSON(seed uint64, hosts int, rate float64, workers int) (*mptcp.Result, []byte, error) {
	res, err := build(seed, hosts, rate, workers).Run()
	if err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	if err := res.JSON(&buf); err != nil {
		return nil, nil, err
	}
	return res, buf.Bytes(), nil
}

func main() {
	hosts := flag.Int("hosts", 48, "arrival hosts")
	rate := flag.Float64("rate", 600, "fleet-wide Poisson arrival rate, flows/s")
	seed := flag.Uint64("seed", 23, "root RNG seed")
	flag.Parse()

	_, first, err := runJSON(*seed, *hosts, *rate, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, second, err := runJSON(*seed, *hosts, *rate, 4)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		fmt.Fprintln(os.Stderr, "NON-DETERMINISTIC: merged results differ between 1 and 4 workers")
		os.Exit(1)
	}

	if err := res.Text(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("determinism check: merged JSON byte-identical at 1 and 4 workers (%d bytes)\n", len(first))
}
