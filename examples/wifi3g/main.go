// wifi3g reproduces the paper's motivating phone scenario interactively: a
// bulk download over WiFi + 3G with a configurable receive buffer, comparing
// "regular MPTCP" with MPTCP plus the paper's opportunistic-retransmission
// and penalization mechanisms, and single-path TCP over either radio. It
// also demonstrates a mid-transfer WiFi failure: the connection survives on
// the 3G subflow.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	mptcp "mptcpgo"
)

func run(name string, cfg mptcp.Config, iface int, bufKB int, failWiFi bool) {
	cfg.SendBufBytes = bufKB << 10
	cfg.RecvBufBytes = bufKB << 10

	net, err := mptcp.NewTopology(7).
		Connect("phone", "server", mptcp.WiFiLink()).
		Connect("phone", "server", mptcp.ThreeGLink()).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	received := 0
	_, err = net.Listen("server", 80, cfg, func(c *mptcp.Conn) {
		c.OnReadable = func() {
			for {
				data := c.Read(64 << 10)
				if len(data) == 0 {
					break
				}
				received += len(data)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	conn, err := net.Dial("phone", "server:80", mptcp.WithConfig(cfg), mptcp.WithInterface(iface))
	if err != nil {
		log.Fatal(err)
	}
	payload := make([]byte, 32<<10)
	pump := func() {
		for conn.Write(payload) > 0 {
		}
	}
	conn.OnEstablished = pump
	conn.OnWritable = pump

	if failWiFi {
		net.Schedule(10*time.Second, func() { _ = net.SetLinkDown("wifi", true) })
	}

	const warmup = 5 * time.Second
	const duration = 25 * time.Second
	if err := net.RunUntil(warmup); err != nil {
		log.Fatal(err)
	}
	start := received
	if err := net.RunUntil(duration); err != nil {
		log.Fatal(err)
	}
	rate := float64(received-start) * 8 / (duration - warmup).Seconds() / 1e6
	extra := ""
	if failWiFi {
		extra = " (WiFi failed at t=10s)"
	}
	fmt.Printf("  %-28s buffer %4d KB: %6.2f Mbps, subflows=%d, mptcp=%v%s\n",
		name, bufKB, rate, len(conn.Subflows()), conn.MPTCPActive(), extra)
}

func main() {
	bufKB := flag.Int("buf", 200, "send/receive buffer in KB")
	flag.Parse()

	fmt.Printf("WiFi (8 Mbps, 20ms) + 3G (2 Mbps, 150ms, bufferbloated) — buffer %d KB\n", *bufKB)

	tcp := mptcp.TCPConfig()
	run("TCP over WiFi", tcp, 0, *bufKB, false)
	run("TCP over 3G", tcp, 1, *bufKB, false)
	run("regular MPTCP", mptcp.RegularMPTCPConfig(), 0, *bufKB, false)
	run("MPTCP + M1,2 (paper)", mptcp.DefaultConfig(), 0, *bufKB, false)
	run("MPTCP + M1,2, WiFi dies", mptcp.DefaultConfig(), 0, *bufKB, true)
}
