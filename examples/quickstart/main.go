// Quickstart: open an MPTCP connection over an emulated WiFi + 3G phone,
// transfer one megabyte and print what happened — which paths were used,
// whether multipath was negotiated, and the achieved goodput.
package main

import (
	"fmt"
	"log"
	"time"

	mptcp "mptcpgo"
)

func main() {
	// A phone with a WiFi interface (8 Mbps) and a 3G interface (2 Mbps),
	// talking to a dual-homed server.
	sim := mptcp.NewSimulation(1, mptcp.WiFiPath(), mptcp.ThreeGPath())

	const total = 1 << 20

	// Server: read everything, close when the peer is done.
	received := 0
	var done time.Duration
	_, err := sim.Listen(80, mptcp.DefaultConfig(), func(c *mptcp.Conn) {
		c.OnReadable = func() {
			for {
				data := c.Read(64 << 10)
				if len(data) == 0 {
					break
				}
				received += len(data)
			}
			if received >= total && done == 0 {
				done = sim.Now()
			}
			if c.EOF() {
				c.Close()
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// Client: an unmodified "application" writing a byte stream.
	conn, err := sim.Dial(0, 80, mptcp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	payload := make([]byte, 32<<10)
	sent := 0
	pump := func() {
		for sent < total {
			n := len(payload)
			if total-sent < n {
				n = total - sent
			}
			w := conn.Write(payload[:n])
			if w == 0 {
				return
			}
			sent += w
		}
		conn.Close()
	}
	conn.OnEstablished = pump
	conn.OnWritable = pump

	if err := sim.Run(30 * time.Second); err != nil {
		log.Fatal(err)
	}

	fmt.Println("quickstart: 1 MB transfer over WiFi + 3G")
	fmt.Printf("  multipath negotiated: %v\n", conn.MPTCPActive())
	fmt.Printf("  subflows opened:      %d\n", conn.Stats().SubflowsOpened)
	fmt.Printf("  bytes delivered:      %d\n", received)
	if done > 0 {
		fmt.Printf("  completed at:         %v (%.2f Mbps)\n", done, float64(total)*8/done.Seconds()/1e6)
	}
	fmt.Printf("  connection closed:    %v (err=%v)\n", conn.Closed(), conn.Err())
}
