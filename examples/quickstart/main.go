// Quickstart: build an emulated WiFi + 3G phone with the topology builder,
// open an MPTCP connection as an ordinary io.ReadWriteCloser, transfer one
// megabyte and print what happened — which paths were used, whether
// multipath was negotiated, and the achieved goodput.
package main

import (
	"fmt"
	"log"
	"time"

	mptcp "mptcpgo"
)

func main() {
	// A phone with a WiFi interface (8 Mbps) and a 3G interface (2 Mbps),
	// talking to a dual-homed server.
	net, err := mptcp.NewTopology(1).
		Connect("phone", "server", mptcp.WiFiLink()).
		Connect("phone", "server", mptcp.ThreeGLink()).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	const total = 1 << 20

	// Server: read everything, close when the peer is done.
	received := 0
	var done time.Duration
	_, err = net.Listen("server", 80, mptcp.DefaultConfig(), func(c *mptcp.Conn) {
		c.OnReadable = func() {
			for {
				data := c.Read(64 << 10)
				if len(data) == 0 {
					break
				}
				received += len(data)
			}
			if received >= total && done == 0 {
				done = net.Now()
			}
			if c.EOF() {
				c.Close()
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// Client: an unmodified "application" writing to a standard byte
	// stream. Stream drives the deterministic simulation under the hood, so
	// plain blocking-style code works unchanged.
	stream, err := net.DialStream("phone", "server:80")
	if err != nil {
		log.Fatal(err)
	}
	payload := make([]byte, 32<<10)
	for sent := 0; sent < total; sent += len(payload) {
		if _, err := stream.Write(payload); err != nil {
			log.Fatal(err)
		}
	}
	if err := stream.Close(); err != nil {
		log.Fatal(err)
	}

	// Let the close handshake finish.
	if err := net.Run(30 * time.Second); err != nil {
		log.Fatal(err)
	}

	conn := stream.Conn()
	fmt.Println("quickstart: 1 MB transfer over WiFi + 3G")
	fmt.Printf("  multipath negotiated: %v\n", conn.MPTCPActive())
	fmt.Printf("  subflows opened:      %d\n", conn.Stats().SubflowsOpened)
	fmt.Printf("  bytes delivered:      %d\n", received)
	if done > 0 {
		fmt.Printf("  completed at:         %v (%.2f Mbps)\n", done, float64(total)*8/done.Seconds()/1e6)
	}
	fmt.Printf("  connection closed:    %v (err=%v)\n", conn.Closed(), conn.Err())
}
