// datacenter runs the dual-gigabit HTTP scenario of Figure 11: closed-loop
// clients fetching fixed-size objects from a server over regular TCP on one
// link, TCP over two bonded links, and MPTCP over both links, printing the
// requests/second each transport sustains.
package main

import (
	"flag"
	"fmt"
	"log"

	"mptcpgo/internal/experiments"
)

func main() {
	clients := flag.Int("clients", 40, "concurrent closed-loop clients")
	requests := flag.Int("requests", 400, "requests per configuration")
	sizeKB := flag.Int("size", 150, "object size in KB")
	flag.Parse()

	fmt.Printf("HTTP over two 1 Gbps links: %d clients, %d requests, %d KB objects\n",
		*clients, *requests, *sizeKB)

	for _, mode := range []string{"tcp", "bonding", "mptcp"} {
		res, err := experiments.RunFig11Point(99, mode, *sizeKB<<10, *clients, *requests)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %8.0f req/s   mean latency %8v   p95 %8v   (%d completed, %d failed)\n",
			mode, res.RequestsPerSec, res.MeanLatency, res.P95Latency, res.Completed, res.Failed)
	}
	fmt.Println("\nexpected shape (paper Fig. 11): MPTCP ~doubles single-link TCP for large objects;")
	fmt.Println("bonding is competitive for small objects, MPTCP pulls ahead as objects grow")
}
