// fleet exercises the sharded fleet engine through the public facade: two
// client groups — MPTCP phones on heterogeneous access links and a plain-TCP
// control group on gigabit links — hammer sharded server replicas with
// closed-loop requests. The merged result is deterministic: the program runs
// the fleet twice at different worker counts and fails loudly if the merged
// JSON differs by a byte.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	mptcp "mptcpgo"
)

// build declares the fleet: `clients` MPTCP clients on the stock
// heterogeneous access mix plus a quarter as many TCP-only clients on
// symmetric gigabit links.
func build(seed uint64, clients, workers int) *mptcp.Fleet {
	return mptcp.NewFleet(seed).
		Group(mptcp.ClientGroup{
			Name:         "phone",
			Clients:      clients,
			Requests:     2,
			TransferSize: 32 << 10,
		}).
		Group(mptcp.ClientGroup{
			Name:    "wired",
			Clients: clients / 4,
			Link: func(i int) mptcp.Link {
				return mptcp.SymmetricLink(fmt.Sprintf("wired%d", i), 1000, 2*time.Millisecond, 256<<10)
			},
			Requests:     4,
			TransferSize: 128 << 10,
			TCPOnly:      true,
		}).
		Workers(workers)
}

func runJSON(seed uint64, clients, workers int) (*mptcp.Result, []byte, error) {
	res, err := build(seed, clients, workers).Run()
	if err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	if err := res.JSON(&buf); err != nil {
		return nil, nil, err
	}
	return res, buf.Bytes(), nil
}

func main() {
	clients := flag.Int("clients", 256, "MPTCP clients (plus clients/4 TCP-only)")
	seed := flag.Uint64("seed", 17, "root RNG seed")
	flag.Parse()

	_, first, err := runJSON(*seed, *clients, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, second, err := runJSON(*seed, *clients, 4)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		fmt.Fprintln(os.Stderr, "NON-DETERMINISTIC: merged results differ between 1 and 4 workers")
		os.Exit(1)
	}

	// The two runs merged to the same bytes, so either result can render the
	// report.
	if err := res.Text(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("determinism check: merged JSON byte-identical at 1 and 4 workers (%d bytes)\n", len(first))
}
