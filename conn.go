package mptcpgo

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
)

// DialOption customises a Dial call; see WithConfig, WithInterface and
// WithTCPOnly.
type DialOption func(*dialOptions)

type dialOptions struct {
	cfg   Config
	iface int // index into the dialing host's interfaces; -1 = first route
}

// WithConfig selects the connection configuration (default DefaultConfig:
// MPTCP with every paper mechanism enabled).
func WithConfig(cfg Config) DialOption {
	return func(o *dialOptions) { o.cfg = cfg }
}

// WithInterface pins the initial subflow to the dialing host's i-th
// interface (attachment order, as reported by Interfaces on the internal
// host). By default the first interface with a path to the target host is
// used.
func WithInterface(i int) DialOption {
	return func(o *dialOptions) { o.iface = i }
}

// WithTCPOnly is shorthand for WithConfig(TCPConfig()): a single-path TCP
// connection.
func WithTCPOnly() DialOption {
	return func(o *dialOptions) { o.cfg = TCPConfig() }
}

// Dial opens a connection from the named host to target, a "host:port"
// address such as "server:8080". The initial subflow leaves through the
// first interface routed toward the target (override with WithInterface);
// MPTCP then opens additional subflows over the remaining paths between the
// two hosts as usual.
func (n *Network) Dial(host, target string, opts ...DialOption) (*Conn, error) {
	mgr := n.managers[host]
	if mgr == nil {
		return nil, fmt.Errorf("mptcpgo: unknown host %q", host)
	}
	targetName, port, err := splitTarget(target)
	if err != nil {
		return nil, err
	}
	targetHost := n.net.Host(targetName)
	if targetHost == nil {
		return nil, fmt.Errorf("mptcpgo: dial %q: unknown host %q", target, targetName)
	}
	do := applyDialOptions(opts)
	ifc, err := pickInterface(mgr.Host(), targetHost, do.iface)
	if err != nil {
		return nil, err
	}
	remote := ifc.Path().Peer(ifc)
	return mgr.Dial(ifc, packet.Endpoint{Addr: remote.Addr(), Port: port}, do.cfg)
}

// DialStream is Dial followed by NewStream: it returns the connection
// wrapped as an io.ReadWriteCloser whose calls drive the simulation.
func (n *Network) DialStream(host, target string, opts ...DialOption) (*Stream, error) {
	c, err := n.Dial(host, target, opts...)
	if err != nil {
		return nil, err
	}
	return n.NewStream(c), nil
}

func applyDialOptions(opts []DialOption) dialOptions {
	do := dialOptions{cfg: DefaultConfig(), iface: -1}
	for _, opt := range opts {
		opt(&do)
	}
	return do
}

// pickInterface resolves the egress interface for a dial from host toward
// target; index pins a specific interface (WithInterface), negative means
// the first interface with a path to the target.
func pickInterface(host, target *netem.Host, index int) (*netem.Interface, error) {
	ifaces := host.Interfaces()
	if index >= 0 {
		if index >= len(ifaces) {
			return nil, fmt.Errorf("mptcpgo: interface index %d out of range (%d interfaces)", index, len(ifaces))
		}
		ifc := ifaces[index]
		if !reaches(ifc, target) {
			return nil, fmt.Errorf("mptcpgo: interface %d of host %q has no path to host %q", index, host.Name(), target.Name())
		}
		return ifc, nil
	}
	for _, ifc := range ifaces {
		if reaches(ifc, target) {
			return ifc, nil
		}
	}
	return nil, fmt.Errorf("mptcpgo: host %q has no path to host %q", host.Name(), target.Name())
}

// reaches reports whether the interface's path terminates at target.
func reaches(ifc *netem.Interface, target *netem.Host) bool {
	p := ifc.Path()
	if p == nil {
		return false
	}
	peer := p.Peer(ifc)
	return peer != nil && peer.Host() == target
}

// splitTarget parses a "host:port" dial target.
func splitTarget(target string) (host string, port uint16, err error) {
	i := strings.LastIndexByte(target, ':')
	if i < 0 {
		return "", 0, fmt.Errorf("mptcpgo: dial target %q is not host:port", target)
	}
	host = target[:i]
	if host == "" {
		return "", 0, fmt.Errorf("mptcpgo: dial target %q has an empty host", target)
	}
	p, perr := strconv.ParseUint(target[i+1:], 10, 16)
	if perr != nil {
		return "", 0, fmt.Errorf("mptcpgo: dial target %q has an invalid port: %v", target, perr)
	}
	return host, uint16(p), nil
}

// ---------------------------------------------------------------------------
// Stream: standard-library-shaped byte stream over a Conn
// ---------------------------------------------------------------------------

// ErrStreamStalled is returned by Stream operations that cannot make
// progress because the simulation has run out of events: nothing is
// scheduled that could ever deliver (or drain) more bytes.
var ErrStreamStalled = errors.New("mptcpgo: stream stalled: simulation has no pending events")

// Stream wraps a Conn as an io.ReadWriteCloser. The underlying connection
// API is callback-driven and never blocks; Stream recovers the familiar
// blocking semantics by stepping the deterministic simulator until the
// operation can make progress, so ordinary Go code — io.Copy, bufio,
// encoding/json — runs unchanged against emulated connections.
//
// Stream methods drive the simulation and are therefore meant for
// "top-level" use (test bodies, example mains). Inside simulation callbacks
// such as OnReadable, use the non-blocking Conn methods instead.
type Stream struct {
	conn *Conn
	sim  interface{ Step() bool }
}

// Compile-time contract: Stream is a standard byte stream.
var _ io.ReadWriteCloser = (*Stream)(nil)

// NewStream wraps an established (or establishing) connection of this
// network.
func (n *Network) NewStream(c *Conn) *Stream {
	return &Stream{conn: c, sim: n.sim}
}

// Conn returns the wrapped connection.
func (s *Stream) Conn() *Conn { return s.conn }

// Read fills p with the next in-order bytes of the connection's data
// stream, stepping the simulation while no data is available. It returns
// io.EOF once the peer's DATA_FIN (or clean close) has been consumed, and
// the connection's terminal error if it failed.
func (s *Stream) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	for {
		if s.conn.ReadableBytes() > 0 {
			return s.conn.ReadInto(p), nil
		}
		if s.conn.EOF() {
			return 0, io.EOF
		}
		if s.conn.Closed() {
			if err := s.conn.Err(); err != nil {
				return 0, err
			}
			return 0, io.EOF
		}
		if !s.sim.Step() {
			return 0, ErrStreamStalled
		}
	}
}

// Write queues p on the connection, stepping the simulation whenever the
// send buffer is full. It returns a short count only with an error.
func (s *Stream) Write(p []byte) (int, error) {
	total := 0
	for total < len(p) {
		if s.conn.Closed() {
			err := s.conn.Err()
			if err == nil {
				err = io.ErrClosedPipe
			}
			return total, err
		}
		if s.conn.WriteClosed() {
			return total, io.ErrClosedPipe
		}
		n := s.conn.Write(p[total:])
		total += n
		if n == 0 && total < len(p) {
			if !s.sim.Step() {
				return total, ErrStreamStalled
			}
		}
	}
	return total, nil
}

// Close closes the sending direction: a DATA_FIN is queued once all written
// data has been mapped to subflows. It does not drive the simulation; run
// the network (or keep reading) to complete the close handshake.
func (s *Stream) Close() error {
	s.conn.Close()
	return nil
}
