package mptcpgo

import (
	"fmt"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/sim"
)

// LinkConfig describes one direction of a link between two hosts.
type LinkConfig struct {
	// RateMbps is the link rate in megabits per second (0 = unlimited).
	RateMbps float64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// QueueBytes is the drop-tail buffer in front of the link (0 =
	// unlimited). Deep queues reproduce cellular bufferbloat.
	QueueBytes int
	// LossRate is the random loss probability per packet.
	LossRate float64
}

func (c LinkConfig) toInternal() netem.LinkConfig {
	return netem.LinkConfig{
		RateBps:    int64(c.RateMbps * 1e6),
		Delay:      c.Delay,
		QueueBytes: c.QueueBytes,
		LossRate:   c.LossRate,
	}
}

// Link describes one bidirectional path between two hosts. The two
// directions may be configured independently (asymmetric access links); when
// BtoA is the zero value, AtoB is mirrored.
type Link struct {
	// Name labels the link in traces ("wifi", "3g", ...).
	Name string
	// AtoB configures the direction from the first host named in Connect to
	// the second; BtoA the reverse.
	AtoB LinkConfig
	BtoA LinkConfig
}

// toPathConfig lowers the link's two directions to the internal path
// configuration (BtoA mirrored from AtoB when zero); Topology.Build and the
// Fleet resolver share it.
func (l Link) toPathConfig() netem.PathConfig {
	return netem.PathConfig{AB: l.AtoB.toInternal(), BA: l.BtoA.toInternal()}
}

// SymmetricLink returns a link with identical directions: the given rate,
// one-way delay of rtt/2 and queue size.
func SymmetricLink(name string, rateMbps float64, rtt time.Duration, queueBytes int) Link {
	lc := LinkConfig{RateMbps: rateMbps, Delay: rtt / 2, QueueBytes: queueBytes}
	return Link{Name: name, AtoB: lc, BtoA: lc}
}

// WiFiLink returns the paper's emulated WiFi access link (8 Mbps, 20 ms RTT,
// 80 ms of buffering).
func WiFiLink() Link { return WiFiPath().toLink() }

// ThreeGLink returns the paper's emulated 3G link (2 Mbps, 150 ms RTT, two
// seconds of buffering).
func ThreeGLink() Link { return ThreeGPath().toLink() }

// GigabitLink returns a 1 Gbps datacenter-style link.
func GigabitLink(name string) Link { return GigabitPath(name).toLink() }

// Box is an on-path middlebox element (NAT, option stripper, resegmenter,
// ...); implementations live in internal/middlebox and are re-exported
// through Internal() topologies or attached with Topology.Connect.
type Box = netem.Box

// Topology declaratively describes an emulated network: named hosts joined
// by point-to-point links with optional middlebox chains. Any number of
// hosts is supported — one client and one server, a 100-client incast, or a
// middlebox gauntlet — and Build turns the description into a runnable
// Network. Methods return the Topology so declarations chain; errors are
// accumulated and reported by Build.
type Topology struct {
	seed    uint64
	hosts   []string
	hostSet map[string]bool
	links   []topoLink
	err     error
}

type topoLink struct {
	a, b  string
	link  Link
	boxes []Box
}

// NewTopology starts an empty topology whose simulation will use the given
// RNG seed.
func NewTopology(seed uint64) *Topology {
	return &Topology{seed: seed, hostSet: make(map[string]bool)}
}

// AddHost declares a host. Hosts referenced by Connect are declared
// implicitly; AddHost exists for hosts that (initially) have no links and to
// pin declaration order.
func (t *Topology) AddHost(name string) *Topology {
	if name == "" {
		t.fail(fmt.Errorf("mptcpgo: empty host name"))
		return t
	}
	if !t.hostSet[name] {
		t.hostSet[name] = true
		t.hosts = append(t.hosts, name)
	}
	return t
}

// Connect joins two hosts with a bidirectional link, optionally threading
// the traffic through a chain of middleboxes (applied in order for a-to-b
// traffic, reverse order for b-to-a). Undeclared host names are added
// implicitly.
func (t *Topology) Connect(a, b string, link Link, boxes ...Box) *Topology {
	t.AddHost(a).AddHost(b)
	if a == b {
		t.fail(fmt.Errorf("mptcpgo: link %q connects host %q to itself", link.Name, a))
		return t
	}
	t.links = append(t.links, topoLink{a: a, b: b, link: link, boxes: boxes})
	return t
}

func (t *Topology) fail(err error) {
	if t.err == nil {
		t.err = err
	}
}

// Build materialises the topology: one emulated host (with an MPTCP stack)
// per declared name, one path per link. The i-th link uses the
// 10.x.y.0/24 subnet derived from its index, with the Connect first-argument
// side at .1.
func (t *Topology) Build() (*Network, error) {
	if t.err != nil {
		return nil, t.err
	}
	spec := netem.GraphSpec{Hosts: t.hosts}
	for _, l := range t.links {
		spec.Links = append(spec.Links, netem.LinkSpec{
			Name:   l.link.Name,
			A:      l.a,
			B:      l.b,
			Config: l.link.toPathConfig(),
			Boxes:  l.boxes,
		})
	}
	s := sim.New(t.seed)
	n, err := netem.BuildGraph(s, spec)
	if err != nil {
		return nil, err
	}
	net := &Network{sim: s, net: n, managers: make(map[string]*core.Manager, len(n.Hosts))}
	// Per-host stack construction: every host gets its own Manager, so a
	// 100-client workload is one loop over hosts rather than a facade fork.
	for _, h := range n.Hosts {
		net.managers[h.Name()] = core.NewManager(h)
	}
	return net, nil
}

// Network is a built topology: emulated hosts, their MPTCP stacks and the
// paths between them, driven by a deterministic discrete-event clock.
type Network struct {
	sim      *sim.Simulator
	net      *netem.Network
	managers map[string]*core.Manager
}

// Now returns the current simulated time.
func (n *Network) Now() time.Duration { return n.sim.Now() }

// Run advances the simulation by d.
func (n *Network) Run(d time.Duration) error { return n.sim.RunFor(d) }

// RunUntil advances the simulation to the absolute time t.
func (n *Network) RunUntil(t time.Duration) error { return n.sim.RunUntil(t) }

// Schedule runs fn after delay d of simulated time.
func (n *Network) Schedule(d time.Duration, fn func()) { n.sim.Schedule(d, fn) }

// Hosts returns the host names in declaration order.
func (n *Network) Hosts() []string { return n.net.HostNames() }

// Manager returns the MPTCP stack of the named host, or nil.
func (n *Network) Manager(host string) *core.Manager { return n.managers[host] }

// Listen installs a listener on the named host's port; accept is invoked for
// every new connection before any data arrives.
func (n *Network) Listen(host string, port uint16, cfg Config, accept func(*Conn)) (*Listener, error) {
	mgr := n.managers[host]
	if mgr == nil {
		return nil, fmt.Errorf("mptcpgo: unknown host %q", host)
	}
	return mgr.Listen(port, cfg, accept)
}

// SetPathDown fails (or restores) the i-th path; segments on a failed path
// are silently dropped, modelling mobility or radio loss.
func (n *Network) SetPathDown(i int, down bool) error {
	if i < 0 || i >= len(n.net.Paths) {
		return fmt.Errorf("mptcpgo: path index %d out of range", i)
	}
	n.net.Path(i).SetDown(down)
	return nil
}

// SetLinkDown fails (or restores) the named link.
func (n *Network) SetLinkDown(name string, down bool) error {
	p := n.net.PathByName(name)
	if p == nil {
		return fmt.Errorf("mptcpgo: unknown link %q", name)
	}
	p.SetDown(down)
	return nil
}

// Internal returns the underlying emulated network for advanced use
// (middlebox chains, link reconfiguration, per-host CPU models).
func (n *Network) Internal() *netem.Network { return n.net }
