package mptcpgo

import (
	"math"
	"strings"
	"testing"
)

// TestOpenLoopRateKeepsFamily pins the builder contract: Rate re-parameterizes
// the arrival family chosen by Arrival instead of silently switching to
// Poisson.
func TestOpenLoopRateKeepsFamily(t *testing.T) {
	o := NewOpenLoop(1).Arrival("onoff:100,900", 50).Rate(80)
	if o.err != nil {
		t.Fatal(o.err)
	}
	if name := o.spec.Arrival.Name(); !strings.HasPrefix(name, "onoff") {
		t.Fatalf("Rate switched the arrival family to %s", name)
	}
	if got := o.spec.Arrival.Rate(); math.Abs(got-80) > 1e-9 {
		t.Fatalf("Rate(80) set mean rate %g", got)
	}

	// Without a prior Arrival call, Rate selects Poisson.
	p := NewOpenLoop(1).Rate(40)
	if name := p.spec.Arrival.Name(); !strings.HasPrefix(name, "poisson") {
		t.Fatalf("default Rate family is %s, want poisson", name)
	}

	// A bad spec is reported by Run, not swallowed.
	if _, err := NewOpenLoop(1).SizeDist("nope").Run(); err == nil {
		t.Fatal("Run accepted a bad size-dist spec")
	}
}
