package mptcpgo

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestTelemetryFacade drives the public observability surface end to end:
// progress lines into a buffer, a live /metrics endpoint, the latency
// quantile accessor, and the sample-cap knob — all attached to one open-loop
// run through the builder.
func TestTelemetryFacade(t *testing.T) {
	tele := NewTelemetry("facade")
	defer tele.Close()
	var buf bytes.Buffer
	tele.Progress(&buf, 5*time.Millisecond)
	addr, err := tele.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	res, err := NewOpenLoop(7).
		Hosts(8).
		Rate(60).
		Window(time.Second).
		Shards(2).
		Telemetry(tele).
		LatencySampleCap(4).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(res.Tables) == 0 {
		t.Fatal("run produced no tables")
	}

	if q := tele.LatencyQuantile(99); q <= 0 {
		t.Fatalf("latency p99 = %g, want > 0 after a completed run", q)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	page, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fleet_shards 2", "fleet_latency_ms", "phase_wall_seconds_total"} {
		if !strings.Contains(string(page), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, page)
		}
	}

	var prom bytes.Buffer
	tele.WritePrometheus(&prom)
	if !strings.Contains(prom.String(), "fleet_events_total") {
		t.Fatalf("WritePrometheus snapshot missing fleet totals:\n%s", prom.String())
	}

	tele.Close() // stops the progress loop and flushes its final line
	if !strings.Contains(buf.String(), "progress[facade]:") {
		t.Fatalf("no progress line reached the writer: %q", buf.String())
	}
	if !strings.Contains(buf.String(), "shards 2/2 done") {
		t.Fatalf("final progress line does not show completion: %q", buf.String())
	}
}
