package mptcpgo

import (
	"bytes"
	"io"
	"testing"
)

// The API contract of the redesign: connections compose with the entire Go
// ecosystem.
var _ io.ReadWriteCloser = (*Stream)(nil)

// buildEchoPair returns a network with a server that writes total bytes of a
// known pattern to every accepted connection and then closes its sending
// side.
func buildDownloadNet(t *testing.T, total int) *Network {
	t.Helper()
	net, err := NewTopology(5).
		Connect("client", "server", WiFiLink()).
		Connect("client", "server", ThreeGLink()).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Listen("server", 80, DefaultConfig(), func(c *Conn) {
		sent := 0
		pump := func() {
			for sent < total {
				n := 32 << 10
				if total-sent < n {
					n = total - sent
				}
				w := c.Write(pattern(sent, n))
				if w == 0 {
					return
				}
				sent += w
			}
			c.Close()
		}
		c.OnEstablished = pump
		c.OnWritable = pump
	}); err != nil {
		t.Fatal(err)
	}
	return net
}

// pattern returns n deterministic bytes of the stream starting at offset.
func pattern(offset, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte((offset + i) * 131)
	}
	return out
}

// TestStreamReadUntilEOF checks the io.Reader contract end to end: short
// reads return whatever is in order, the byte sequence is intact, and after
// the peer's DATA_FIN drains the stream reports io.EOF — repeatedly.
func TestStreamReadUntilEOF(t *testing.T) {
	const total = 256 << 10
	net := buildDownloadNet(t, total)

	stream, err := net.DialStream("client", "server:80")
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	buf := make([]byte, 3000) // deliberately not segment-aligned
	for {
		n, err := stream.Read(buf)
		if n > 0 {
			if n > len(buf) {
				t.Fatalf("Read returned n=%d > len(p)=%d", n, len(buf))
			}
			got.Write(buf[:n])
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Read failed after %d bytes: %v", got.Len(), err)
		}
	}
	if got.Len() != total {
		t.Fatalf("read %d bytes, want %d", got.Len(), total)
	}
	if !bytes.Equal(got.Bytes(), pattern(0, total)) {
		t.Fatal("stream bytes do not match the written pattern")
	}
	// io.EOF must be sticky.
	for i := 0; i < 3; i++ {
		if n, err := stream.Read(buf); n != 0 || err != io.EOF {
			t.Fatalf("post-EOF Read returned (%d, %v), want (0, io.EOF)", n, err)
		}
	}
	// Zero-length reads never block and never error.
	if n, err := stream.Read(nil); n != 0 || err != nil {
		t.Fatalf("zero-length Read returned (%d, %v)", n, err)
	}
}

// TestStreamWriteAfterClose pins the writer half of the contract: Close
// queues the DATA_FIN and further Writes fail with io.ErrClosedPipe.
func TestStreamWriteAfterClose(t *testing.T) {
	net, err := NewTopology(6).Connect("client", "server", WiFiLink()).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Listen("server", 80, DefaultConfig(), func(c *Conn) {
		c.OnReadable = func() {
			for len(c.Read(64<<10)) > 0 {
			}
			if c.EOF() {
				c.Close()
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	stream, err := net.DialStream("client", "server:80")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Write(make([]byte, 100<<10)); err != nil {
		t.Fatalf("Write failed: %v", err)
	}
	if err := stream.Close(); err != nil {
		t.Fatalf("Close failed: %v", err)
	}
	if _, err := stream.Write([]byte("more")); err != io.ErrClosedPipe {
		t.Fatalf("Write after Close returned %v, want io.ErrClosedPipe", err)
	}
}

// TestStreamStalls checks that a stream blocked forever reports
// ErrStreamStalled instead of spinning: once the simulation runs out of
// events nothing can ever deliver more bytes.
func TestStreamStalls(t *testing.T) {
	net, err := NewTopology(8).Connect("client", "server", WiFiLink()).Build()
	if err != nil {
		t.Fatal(err)
	}
	// A server that accepts but never writes and never closes.
	if _, err := net.Listen("server", 80, DefaultConfig(), nil); err != nil {
		t.Fatal(err)
	}
	stream, err := net.DialStream("client", "server:80")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := stream.Read(make([]byte, 16)); err != ErrStreamStalled {
		t.Fatalf("Read on an idle connection returned (%d, %v), want ErrStreamStalled", n, err)
	}
}
