package mptcpgo

import (
	"fmt"
	"time"

	"mptcpgo/internal/experiments"
	"mptcpgo/internal/faults"
	"mptcpgo/internal/fleet"
	"mptcpgo/internal/middlebox"
)

// Chaos is the builder for the fleet-chaos scenario: dual-homed clients
// upload byte streams that the server verifies exact-once and in-order while
// a deterministic fault schedule batters the paths and an optional
// adversarial middlebox preset sits on them. A member passes by completing
// with an intact hash — over multipath or after a clean fallback to regular
// TCP — and fails by stalling, corrupting the stream or dying; a per-member
// watchdog converts silent hangs into diagnosed failures.
//
//	res, err := mptcpgo.NewChaos(42).
//		Members(64).
//		Faults("flap500").
//		Adversary("rst").
//		Run()
//
// Results are byte-identical at any worker count for a fixed seed, member
// count and shard count: fault jitter and payload patterns derive from
// (seed, member index) alone.
type Chaos struct {
	spec fleet.ChaosSpec
	err  error
}

// NewChaos starts a chaos scenario with the given root seed: 32 members,
// 384 KiB uploads, no faults, no adversary. Override with the setters.
func NewChaos(seed uint64) *Chaos {
	return &Chaos{spec: fleet.ChaosSpec{Seed: seed, Members: 32}}
}

// Members sets the number of dual-homed client hosts.
func (c *Chaos) Members(n int) *Chaos {
	if n <= 0 {
		c.fail(fmt.Errorf("mptcpgo: chaos fleet needs at least one member, got %d", n))
		return c
	}
	c.spec.Members = n
	return c
}

// TransferBytes sets each member's upload size.
func (c *Chaos) TransferBytes(n int) *Chaos { c.spec.TransferBytes = n; return c }

// Faults sets the fault schedule: a preset name ("flap", "flap500", "loss",
// "squeeze", "ifdown", "ifchurn", "none") or the internal/faults grammar,
// e.g. "flap:path=1,period=1s,down=250ms;loss:path=all,rate=0.2,dur=2s".
func (c *Chaos) Faults(spec string) *Chaos {
	sp, err := faults.Parse(spec)
	if err != nil {
		c.fail(err)
		return c
	}
	c.spec.Faults = sp
	return c
}

// Adversary installs an adversarial middlebox preset on every member's
// paths: "none", "strip-syn", "dpi", "dpi-mid", "rst" or "police".
func (c *Chaos) Adversary(name string) *Chaos {
	if _, _, ok := middlebox.AdversaryPreset(name); !ok {
		c.fail(fmt.Errorf("mptcpgo: unknown adversary preset %q (have %v)", name, middlebox.AdversaryPresetNames()))
		return c
	}
	c.spec.Adversary = name
	return c
}

// WatchdogInterval sets the stall-detection sampling period.
func (c *Chaos) WatchdogInterval(d time.Duration) *Chaos { c.spec.WatchdogInterval = d; return c }

// Deadline caps each shard's simulated time.
func (c *Chaos) Deadline(d time.Duration) *Chaos { c.spec.Deadline = d; return c }

// Shards fixes the shard count (part of the scenario, like Fleet.Shards).
func (c *Chaos) Shards(n int) *Chaos { c.spec.Shards = n; return c }

// Workers bounds parallel shard execution; never changes the merged result.
func (c *Chaos) Workers(n int) *Chaos { c.spec.Workers = n; return c }

// PcapDir captures each shard's wire traffic into the directory.
func (c *Chaos) PcapDir(dir string) *Chaos { c.spec.PcapDir = dir; return c }

// Trace attaches the flight recorder: typed protocol events (and, when
// probeInterval > 0, per-subflow time series at that sim-time cadence) are
// written as fleet-chaos-trace.json and fleet-chaos-events.jsonl into dir.
// Capture never changes the scenario's results.
func (c *Chaos) Trace(dir string, probeInterval time.Duration) *Chaos {
	c.spec.Trace = experiments.TraceSpec{Dir: dir, ProbeInterval: probeInterval}
	return c
}

// Telemetry attaches a metrics plane to the run: live per-shard progress and
// phase profiling flow into it while the fleet executes. Attachment never
// changes the merged result.
func (c *Chaos) Telemetry(t *Telemetry) *Chaos {
	c.spec.Telemetry = planeOf(t)
	return c
}

// Label overrides the result title.
func (c *Chaos) Label(s string) *Chaos { c.spec.Label = s; return c }

func (c *Chaos) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// Run executes the chaos scenario and returns the merged result.
func (c *Chaos) Run() (*Result, error) {
	if c.err != nil {
		return nil, c.err
	}
	return fleet.RunChaos(c.spec)
}
