package mptcpgo

import (
	"fmt"
	"testing"
	"time"
)

// TestDialErrorPaths pins the facade's error behaviour: unknown hosts, bad
// targets and out-of-range interface indices must fail cleanly instead of
// panicking or silently mis-routing.
func TestDialErrorPaths(t *testing.T) {
	net, err := NewTopology(1).
		Connect("client", "server", WiFiLink()).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		dial func() error
	}{
		{"unknown dialing host", func() error { _, err := net.Dial("nope", "server:80"); return err }},
		{"unknown target host", func() error { _, err := net.Dial("client", "nope:80"); return err }},
		{"missing port", func() error { _, err := net.Dial("client", "server"); return err }},
		{"empty target host", func() error { _, err := net.Dial("client", ":80"); return err }},
		{"bad port", func() error { _, err := net.Dial("client", "server:99999"); return err }},
		{"interface out of range", func() error { _, err := net.Dial("client", "server:80", WithInterface(7)); return err }},
		{"target has no path from interface", func() error { _, err := net.Dial("server", "client:80", WithInterface(1)); return err }},
	}
	for _, tc := range cases {
		if err := tc.dial(); err == nil {
			t.Errorf("%s: Dial unexpectedly succeeded", tc.name)
		}
	}
	// The server can dial the client over their shared path.
	if _, err := net.Dial("server", "client:9", WithTCPOnly()); err != nil {
		t.Errorf("reverse dial over a shared path failed: %v", err)
	}
}

func TestLegacySimulationErrorPaths(t *testing.T) {
	s := NewSimulation(2, WiFiPath())
	if _, err := s.Dial(1, 80, DefaultConfig()); err == nil {
		t.Error("Dial with out-of-range interface index must fail")
	}
	if _, err := s.Dial(-1, 80, DefaultConfig()); err == nil {
		t.Error("Dial with negative interface index must fail")
	}
	if err := s.SetPathDown(1, true); err == nil {
		t.Error("SetPathDown with out-of-range path index must fail")
	}
	if err := s.SetPathDown(-1, true); err == nil {
		t.Error("SetPathDown with negative path index must fail")
	}
	if err := s.SetPathDown(0, true); err != nil {
		t.Errorf("SetPathDown(0) failed: %v", err)
	}
	if err := s.SetLinkDown("wifi", false); err != nil {
		t.Errorf("SetLinkDown(wifi) failed: %v", err)
	}
	if err := s.SetLinkDown("nope", true); err == nil {
		t.Error("SetLinkDown with unknown link name must fail")
	}
	if _, err := s.Network.Listen("nope", 80, DefaultConfig(), nil); err == nil {
		t.Error("Listen on unknown host must fail")
	}
}

func TestTopologyBuildErrors(t *testing.T) {
	if _, err := NewTopology(1).Connect("a", "a", WiFiLink()).Build(); err == nil {
		t.Error("self-link must fail Build")
	}
	if _, err := NewTopology(1).AddHost("").Build(); err == nil {
		t.Error("empty host name must fail Build")
	}
	// A host with no links is legal; dialing from it is not.
	net, err := NewTopology(1).AddHost("lonely").AddHost("server").Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Dial("lonely", "server:80"); err == nil {
		t.Error("dial from an unconnected host must fail")
	}
}

// runManyClients builds a star of n clients with heterogeneous access links
// around one server and returns the bytes the server received after the
// given simulated duration.
func runManyClients(t *testing.T, seed uint64, n int, duration time.Duration) int {
	t.Helper()
	topo := NewTopology(seed).AddHost("server")
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("client%d", i)
		rate := 2.0 + 0.5*float64(i%16)
		rtt := time.Duration(10+20*(i%10)) * time.Millisecond
		topo.Connect(name, "server", SymmetricLink(fmt.Sprintf("access%d", i), rate, rtt, 64<<10))
	}
	net, err := topo.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SendBufBytes = 64 << 10
	cfg.RecvBufBytes = 64 << 10
	cfg.AdvertiseAddresses = false

	received := 0
	if _, err := net.Listen("server", 80, cfg, func(c *Conn) {
		c.OnReadable = func() {
			for len(c.Read(64<<10)) > 0 {
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 16<<10)
	for i := 0; i < n; i++ {
		conn, err := net.Dial(fmt.Sprintf("client%d", i), "server:80", WithConfig(cfg))
		if err != nil {
			t.Fatal(err)
		}
		pump := func() {
			for conn.Write(payload) > 0 {
			}
		}
		conn.OnEstablished = pump
		conn.OnWritable = pump
	}
	if err := net.Run(duration); err != nil {
		t.Fatal(err)
	}
	for _, c := range net.Manager("server").Connections() {
		received += int(c.Stats().BytesDelivered)
	}
	return received
}

// TestManyClientTopologyDeterministic drives 32 clients into one server
// through the builder API (the acceptance topology for this redesign) and
// checks the aggregate is reproducible for a fixed seed. CI runs this test
// under -race.
func TestManyClientTopologyDeterministic(t *testing.T) {
	const clients = 32
	first := runManyClients(t, 23, clients, 2*time.Second)
	if first == 0 {
		t.Fatal("no data delivered across the 32-client topology")
	}
	second := runManyClients(t, 23, clients, 2*time.Second)
	if first != second {
		t.Fatalf("aggregate not deterministic: run1=%d bytes, run2=%d bytes", first, second)
	}
}
