package mptcpgo

import (
	"fmt"
	"time"

	"mptcpgo/internal/capacity"
	"mptcpgo/internal/experiments"
	"mptcpgo/internal/fleet"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/workload"
)

// sharedBottleneck carries a builder's SharedBottleneck declaration until Run
// resolves it into a capacity.SharedLink.
type sharedBottleneck struct {
	name     string
	rateMbps float64
	weight   func(i int) float64
}

func (s *sharedBottleneck) link() capacity.SharedLink {
	return capacity.SharedLink{Name: s.name, RateBps: netem.Mbps(s.rateMbps)}
}

// ClientGroup declares a homogeneous group of closed-loop HTTP clients in a
// Fleet: how many, what access link each gets, and what each requests. A
// fleet concatenates its groups, so the global client index passed to Link
// runs across group boundaries.
type ClientGroup struct {
	// Name labels the group's access links in traces (default "access").
	Name string
	// Clients is the number of clients in the group (>= 1).
	Clients int
	// Link derives the access link for the global client index i; nil selects
	// the stock heterogeneous mix (2–9.5 Mbps, 10–190 ms RTT, 250 ms of
	// buffering).
	Link func(i int) Link
	// Requests is each client's closed-loop request budget (default 1).
	Requests int
	// TransferSize is the response size each request asks for (default 64 KB).
	TransferSize int
	// TCPOnly runs the group over single-path TCP instead of MPTCP.
	TCPOnly bool
	// Config overrides the connection configuration (nil = DefaultConfig
	// without address advertisement, or TCPConfig for TCPOnly groups).
	Config *Config
}

// Fleet is the sharded many-connection scenario builder: a topology template
// (per-client access links), one or more client groups, and a Run that
// partitions the clients into shards — each shard a private simulator with
// its own server replica — runs the shards in parallel and merges the
// per-shard results deterministically. The merged Result is byte-identical
// at any worker count for a fixed seed and shard count.
type Fleet struct {
	seed     uint64
	groups   []ClientGroup
	shards   int
	workers  int
	deadline time.Duration
	label    string
	server   *Config
	shared   *sharedBottleneck
	trace    experiments.TraceSpec
	telem    *Telemetry
	capLat   int
	err      error
}

// NewFleet starts an empty fleet whose shard seeds derive from the given
// root seed.
func NewFleet(seed uint64) *Fleet {
	return &Fleet{seed: seed}
}

// Group appends a client group. Declarations chain; errors are accumulated
// and reported by Run.
func (f *Fleet) Group(g ClientGroup) *Fleet {
	if g.Clients <= 0 {
		f.fail(fmt.Errorf("mptcpgo: fleet group %q has %d clients", g.Name, g.Clients))
		return f
	}
	f.groups = append(f.groups, g)
	return f
}

// Shards fixes the shard count. The shard count is part of the scenario — it
// decides how many clients share one server replica — so changing it changes
// the workload; the default is one shard per 64 clients.
func (f *Fleet) Shards(n int) *Fleet { f.shards = n; return f }

// Workers bounds how many shards run in parallel (default GOMAXPROCS). The
// worker count never changes the merged result.
func (f *Fleet) Workers(n int) *Fleet { f.workers = n; return f }

// Deadline caps each shard's simulated time (default 10 minutes).
func (f *Fleet) Deadline(d time.Duration) *Fleet { f.deadline = d; return f }

// Label overrides the result title.
func (f *Fleet) Label(s string) *Fleet { f.label = s; return f }

// ServerConfig overrides the listener configuration of every server replica.
func (f *Fleet) ServerConfig(cfg Config) *Fleet { f.server = &cfg; return f }

// Trace attaches the flight recorder: typed protocol events (and, when
// probeInterval > 0, per-subflow time series at that sim-time cadence) are
// written as fleet-http-trace.json and fleet-http-events.jsonl into dir.
// Capture never changes the scenario's results.
func (f *Fleet) Trace(dir string, probeInterval time.Duration) *Fleet {
	f.trace = experiments.TraceSpec{Dir: dir, ProbeInterval: probeInterval}
	return f
}

// Telemetry attaches a metrics plane to the run: live per-shard progress,
// phase profiling and the merged latency histogram flow into it while the
// fleet executes. Attachment never changes the merged result.
func (f *Fleet) Telemetry(t *Telemetry) *Fleet { f.telem = t; return f }

// LatencySampleCap bounds how many raw latency samples each client pool
// retains (0 = unlimited, today's behavior). Once a pool hits the cap, its
// latency table switches from exact order statistics to the log-scale
// histogram — quantiles stay within the histogram's ~10% bucket resolution
// while merge memory stops growing with the flow count.
func (f *Fleet) LatencySampleCap(n int) *Fleet { f.capLat = n; return f }

// SharedBottleneck couples every client's download direction to one named
// fleet-global resource of the given rate: the shards run in lock-stepped
// epoch windows and a deterministic max-min allocator divides the rate among
// them each window, so the fleet's aggregate goodput saturates at rateMbps no
// matter how the clients are sharded. weight gives client i's allocation
// weight (nil = equal); a shard's weight is the sum of its clients'.
func (f *Fleet) SharedBottleneck(name string, rateMbps float64, weight func(i int) float64) *Fleet {
	if rateMbps <= 0 {
		f.fail(fmt.Errorf("mptcpgo: shared bottleneck %q needs a positive rate, got %g Mbps", name, rateMbps))
		return f
	}
	f.shared = &sharedBottleneck{name: name, rateMbps: rateMbps, weight: weight}
	return f
}

func (f *Fleet) fail(err error) {
	if f.err == nil {
		f.err = err
	}
}

// Run resolves the groups into per-client specs, executes the sharded
// workload and returns the merged result.
func (f *Fleet) Run() (*Result, error) {
	if f.err != nil {
		return nil, f.err
	}
	if len(f.groups) == 0 {
		return nil, fmt.Errorf("mptcpgo: fleet has no client groups")
	}
	spec := fleet.HTTPSpec{
		Seed:             f.seed,
		Shards:           f.shards,
		Workers:          f.workers,
		Deadline:         f.deadline,
		Label:            f.label,
		Server:           f.server,
		Trace:            f.trace,
		Telemetry:        planeOf(f.telem),
		LatencySampleCap: f.capLat,
	}
	if f.shared != nil {
		l := f.shared.link()
		spec.Shared = &l
		spec.Weight = f.shared.weight
	}
	i := 0
	for _, g := range f.groups {
		cfg := connConfigFor(g)
		for j := 0; j < g.Clients; j++ {
			c := fleet.HTTPClient{
				Requests:     g.Requests,
				TransferSize: g.TransferSize,
				Conn:         cfg,
			}
			if g.Link != nil {
				c.Link = g.Link(i).toPathConfig()
			} else {
				c.Link = fleet.DefaultAccessLink(i)
			}
			if g.Name != "" {
				c.LinkName = fmt.Sprintf("%s%d", g.Name, i)
			}
			spec.Clients = append(spec.Clients, c)
			i++
		}
	}
	return fleet.RunHTTP(spec)
}

// OpenLoop is the open-loop counterpart of Fleet: instead of a fixed
// closed-loop client population, a fleet-wide arrival process (Poisson by
// default) injects flows across the arrival hosts at a configured rate, each
// flow fetches a size drawn from a distribution, and flows that outlive the
// flow deadline are dropped. Because arrivals never wait for completions the
// offered load is a free parameter — rates past capacity produce measurable
// overload (latency tails, drops) instead of a self-limiting slowdown. The
// merged Result is byte-identical at any worker count for a fixed seed,
// host count and shard count.
type OpenLoop struct {
	spec fleet.OpenLoopSpec
	// arrivalSpec remembers the last process family chosen via Arrival, so
	// Rate can re-parameterize it instead of silently switching families.
	arrivalSpec string
	shared      *sharedBottleneck
	err         error
}

// NewOpenLoop starts an open-loop scenario with the given root seed: 64
// arrival hosts on the stock heterogeneous access mix, Poisson arrivals at
// 100 flows/s fleet-wide, web-mix sizes, a 5 s arrival window and a 10 s
// flow deadline. Override with the chained setters.
func NewOpenLoop(seed uint64) *OpenLoop {
	return &OpenLoop{spec: fleet.OpenLoopSpec{Seed: seed, Hosts: 64}}
}

// Hosts sets the number of arrival hosts (each on its own access link).
func (o *OpenLoop) Hosts(n int) *OpenLoop {
	if n <= 0 {
		o.fail(fmt.Errorf("mptcpgo: open-loop fleet needs at least one host, got %d", n))
		return o
	}
	o.spec.Hosts = n
	return o
}

// Rate sets the fleet-wide mean arrival rate in flows per second, keeping
// the current process family (Poisson unless Arrival chose another).
func (o *OpenLoop) Rate(perSec float64) *OpenLoop {
	spec := o.arrivalSpec
	if spec == "" {
		spec = "poisson"
	}
	return o.Arrival(spec, perSec)
}

// Arrival selects the arrival process by spec — "poisson", "fixed" or
// "onoff[:on_ms,off_ms]" — with the given fleet-wide mean rate in flows/s.
func (o *OpenLoop) Arrival(spec string, perSec float64) *OpenLoop {
	p, err := workload.ParseArrival(spec, perSec)
	if err != nil {
		o.fail(err)
		return o
	}
	o.arrivalSpec = spec
	o.spec.Arrival = p
	return o
}

// SizeDist selects the flow-size distribution by spec: "fixed:<bytes>",
// "lognormal:<mu>,<sigma>", "pareto:<alpha>,<lo>,<hi>" or "webmix".
func (o *OpenLoop) SizeDist(spec string) *OpenLoop {
	d, err := workload.ParseSizeDist(spec)
	if err != nil {
		o.fail(err)
		return o
	}
	o.spec.Sizes = d
	return o
}

// Window sets the arrival window (how long the process injects flows).
func (o *OpenLoop) Window(d time.Duration) *OpenLoop { o.spec.Window = d; return o }

// FlowDeadline sets the per-flow drop deadline; flows that have not
// completed this long after arrival are aborted and counted as dropped.
func (o *OpenLoop) FlowDeadline(d time.Duration) *OpenLoop { o.spec.FlowDeadline = d; return o }

// Link overrides the access link template for arrival host i.
func (o *OpenLoop) Link(f func(i int) Link) *OpenLoop {
	o.spec.Link = func(i int) netem.PathConfig { return f(i).toPathConfig() }
	return o
}

// Shards fixes the shard count (part of the scenario, like Fleet.Shards).
func (o *OpenLoop) Shards(n int) *OpenLoop { o.spec.Shards = n; return o }

// Workers bounds parallel shard execution; never changes the merged result.
func (o *OpenLoop) Workers(n int) *OpenLoop { o.spec.Workers = n; return o }

// Label overrides the result title.
func (o *OpenLoop) Label(s string) *OpenLoop { o.spec.Label = s; return o }

// Trace attaches the flight recorder: typed protocol events (and, when
// probeInterval > 0, per-subflow time series at that sim-time cadence) are
// written as fleet-openloop-trace.json and fleet-openloop-events.jsonl
// (fleet-corelink-* with a SharedBottleneck) into dir. Capture never changes
// the scenario's results.
func (o *OpenLoop) Trace(dir string, probeInterval time.Duration) *OpenLoop {
	o.spec.Trace = experiments.TraceSpec{Dir: dir, ProbeInterval: probeInterval}
	return o
}

// Telemetry attaches a metrics plane to the run: live per-shard progress,
// phase profiling and the merged latency histogram flow into it while the
// fleet executes. Attachment never changes the merged result.
func (o *OpenLoop) Telemetry(t *Telemetry) *OpenLoop {
	o.spec.Telemetry = planeOf(t)
	return o
}

// LatencySampleCap bounds how many raw latency samples each arrival pool
// retains (0 = unlimited, today's behavior). Capped pools report quantiles
// from the log-scale histogram instead of exact order statistics.
func (o *OpenLoop) LatencySampleCap(n int) *OpenLoop {
	o.spec.LatencySampleCap = n
	return o
}

// SharedBottleneck couples every arrival host's download direction to one
// named fleet-global resource of the given rate (the fleet-corelink
// scenario): the shards run in lock-stepped epoch windows and a deterministic
// max-min allocator divides the rate among them each window, so offered load
// past rateMbps produces a global goodput knee instead of per-shard ones.
// weight gives host i's allocation weight (nil = equal).
func (o *OpenLoop) SharedBottleneck(name string, rateMbps float64, weight func(i int) float64) *OpenLoop {
	if rateMbps <= 0 {
		o.fail(fmt.Errorf("mptcpgo: shared bottleneck %q needs a positive rate, got %g Mbps", name, rateMbps))
		return o
	}
	o.shared = &sharedBottleneck{name: name, rateMbps: rateMbps, weight: weight}
	return o
}

func (o *OpenLoop) fail(err error) {
	if o.err == nil {
		o.err = err
	}
}

// Run executes the sharded open-loop workload and returns the merged result.
func (o *OpenLoop) Run() (*Result, error) {
	if o.err != nil {
		return nil, o.err
	}
	if o.shared != nil {
		return fleet.RunCorelink(fleet.CorelinkSpec{
			OpenLoopSpec: o.spec,
			Shared:       o.shared.link(),
			Weight:       o.shared.weight,
		})
	}
	return fleet.RunOpenLoop(o.spec)
}

// connConfigFor resolves a group's connection configuration.
func connConfigFor(g ClientGroup) Config {
	if g.Config != nil {
		return *g.Config
	}
	var cfg Config
	if g.TCPOnly {
		cfg = TCPConfig()
	} else {
		cfg = DefaultConfig()
	}
	// Star topologies give each client one access link; advertising the
	// server's other addresses would only open duplicate subflows over it.
	cfg.AdvertiseAddresses = false
	cfg.SendBufBytes = 128 << 10
	cfg.RecvBufBytes = 128 << 10
	return cfg
}
