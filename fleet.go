package mptcpgo

import (
	"fmt"
	"time"

	"mptcpgo/internal/fleet"
)

// ClientGroup declares a homogeneous group of closed-loop HTTP clients in a
// Fleet: how many, what access link each gets, and what each requests. A
// fleet concatenates its groups, so the global client index passed to Link
// runs across group boundaries.
type ClientGroup struct {
	// Name labels the group's access links in traces (default "access").
	Name string
	// Clients is the number of clients in the group (>= 1).
	Clients int
	// Link derives the access link for the global client index i; nil selects
	// the stock heterogeneous mix (2–9.5 Mbps, 10–190 ms RTT, 250 ms of
	// buffering).
	Link func(i int) Link
	// Requests is each client's closed-loop request budget (default 1).
	Requests int
	// TransferSize is the response size each request asks for (default 64 KB).
	TransferSize int
	// TCPOnly runs the group over single-path TCP instead of MPTCP.
	TCPOnly bool
	// Config overrides the connection configuration (nil = DefaultConfig
	// without address advertisement, or TCPConfig for TCPOnly groups).
	Config *Config
}

// Fleet is the sharded many-connection scenario builder: a topology template
// (per-client access links), one or more client groups, and a Run that
// partitions the clients into shards — each shard a private simulator with
// its own server replica — runs the shards in parallel and merges the
// per-shard results deterministically. The merged Result is byte-identical
// at any worker count for a fixed seed and shard count.
type Fleet struct {
	seed     uint64
	groups   []ClientGroup
	shards   int
	workers  int
	deadline time.Duration
	label    string
	server   *Config
	err      error
}

// NewFleet starts an empty fleet whose shard seeds derive from the given
// root seed.
func NewFleet(seed uint64) *Fleet {
	return &Fleet{seed: seed}
}

// Group appends a client group. Declarations chain; errors are accumulated
// and reported by Run.
func (f *Fleet) Group(g ClientGroup) *Fleet {
	if g.Clients <= 0 {
		f.fail(fmt.Errorf("mptcpgo: fleet group %q has %d clients", g.Name, g.Clients))
		return f
	}
	f.groups = append(f.groups, g)
	return f
}

// Shards fixes the shard count. The shard count is part of the scenario — it
// decides how many clients share one server replica — so changing it changes
// the workload; the default is one shard per 64 clients.
func (f *Fleet) Shards(n int) *Fleet { f.shards = n; return f }

// Workers bounds how many shards run in parallel (default GOMAXPROCS). The
// worker count never changes the merged result.
func (f *Fleet) Workers(n int) *Fleet { f.workers = n; return f }

// Deadline caps each shard's simulated time (default 10 minutes).
func (f *Fleet) Deadline(d time.Duration) *Fleet { f.deadline = d; return f }

// Label overrides the result title.
func (f *Fleet) Label(s string) *Fleet { f.label = s; return f }

// ServerConfig overrides the listener configuration of every server replica.
func (f *Fleet) ServerConfig(cfg Config) *Fleet { f.server = &cfg; return f }

func (f *Fleet) fail(err error) {
	if f.err == nil {
		f.err = err
	}
}

// Run resolves the groups into per-client specs, executes the sharded
// workload and returns the merged result.
func (f *Fleet) Run() (*Result, error) {
	if f.err != nil {
		return nil, f.err
	}
	if len(f.groups) == 0 {
		return nil, fmt.Errorf("mptcpgo: fleet has no client groups")
	}
	spec := fleet.HTTPSpec{
		Seed:     f.seed,
		Shards:   f.shards,
		Workers:  f.workers,
		Deadline: f.deadline,
		Label:    f.label,
		Server:   f.server,
	}
	i := 0
	for _, g := range f.groups {
		cfg := connConfigFor(g)
		for j := 0; j < g.Clients; j++ {
			c := fleet.HTTPClient{
				Requests:     g.Requests,
				TransferSize: g.TransferSize,
				Conn:         cfg,
			}
			if g.Link != nil {
				c.Link = g.Link(i).toPathConfig()
			} else {
				c.Link = fleet.DefaultAccessLink(i)
			}
			if g.Name != "" {
				c.LinkName = fmt.Sprintf("%s%d", g.Name, i)
			}
			spec.Clients = append(spec.Clients, c)
			i++
		}
	}
	return fleet.RunHTTP(spec)
}

// connConfigFor resolves a group's connection configuration.
func connConfigFor(g ClientGroup) Config {
	if g.Config != nil {
		return *g.Config
	}
	var cfg Config
	if g.TCPOnly {
		cfg = TCPConfig()
	} else {
		cfg = DefaultConfig()
	}
	// Star topologies give each client one access link; advertising the
	// server's other addresses would only open duplicate subflows over it.
	cfg.AdvertiseAddresses = false
	cfg.SendBufBytes = 128 << 10
	cfg.RecvBufBytes = 128 << 10
	return cfg
}
