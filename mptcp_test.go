package mptcpgo

import (
	"testing"
	"time"
)

// TestFacadeTransfer exercises the public API end to end: build a WiFi+3G
// simulation, transfer data over MPTCP, fail the WiFi path mid-transfer and
// verify the connection survives on the remaining subflow.
func TestFacadeTransfer(t *testing.T) {
	s := NewSimulation(3, WiFiPath(), ThreeGPath())

	const total = 3 << 20
	received := 0
	_, err := s.Listen(80, DefaultConfig(), func(c *Conn) {
		c.OnReadable = func() {
			for {
				data := c.Read(64 << 10)
				if len(data) == 0 {
					break
				}
				received += len(data)
			}
			if c.EOF() {
				c.Close()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := s.Dial(0, 80, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 32<<10)
	sent := 0
	pump := func() {
		for sent < total {
			n := len(payload)
			if total-sent < n {
				n = total - sent
			}
			w := conn.Write(payload[:n])
			if w == 0 {
				return
			}
			sent += w
		}
		conn.Close()
	}
	conn.OnEstablished = pump
	conn.OnWritable = pump

	// Kill the WiFi path halfway through; the 3G subflow must carry the rest.
	s.Schedule(3*time.Second, func() { _ = s.SetPathDown(0, true) })

	if err := s.Run(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	if received != total {
		t.Fatalf("received %d of %d bytes after WiFi failure", received, total)
	}
	if !conn.MPTCPActive() && conn.Err() != nil {
		t.Fatalf("connection ended with error: %v", conn.Err())
	}
}

func TestFacadeTCPOnly(t *testing.T) {
	s := NewSimulation(4, GigabitPath("a"))
	received := 0
	_, err := s.Listen(80, TCPConfig(), func(c *Conn) {
		c.OnReadable = func() {
			for len(c.Read(64<<10)) > 0 {
			}
			received = int(c.Stats().BytesDelivered)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := s.Dial(0, 80, TCPConfig())
	if err != nil {
		t.Fatal(err)
	}
	conn.OnEstablished = func() { conn.Write(make([]byte, 100<<10)) }
	if err := s.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if conn.MPTCPActive() {
		t.Fatal("TCPConfig must not negotiate MPTCP")
	}
	if received == 0 {
		t.Fatal("no data delivered")
	}
}

func TestExperimentRegistryExposed(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 13 {
		t.Fatalf("expected at least 13 experiments, got %d: %v", len(ids), ids)
	}
}
