package mptcpgo

import (
	"testing"
	"time"
)

// TestFourSubflowTopology covers the ROADMAP ">3 subflow topologies" item: a
// phone with four interfaces, each on its own link to a four-homed server,
// must establish one subflow per reachable interface — the initial subflow
// plus three MP_JOINs — and complete a transfer striped across all four.
func TestFourSubflowTopology(t *testing.T) {
	const links = 4
	topo := NewTopology(11)
	for i := 0; i < links; i++ {
		topo.Connect("phone", "server",
			SymmetricLink("", 20, 40*time.Millisecond, 64<<10))
	}
	net, err := topo.Build()
	if err != nil {
		t.Fatal(err)
	}

	received := 0
	if _, err := net.Listen("server", 80, DefaultConfig(), func(c *Conn) {
		c.OnReadable = func() {
			for {
				data := c.Read(64 << 10)
				if len(data) == 0 {
					break
				}
				received += len(data)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}

	stream, err := net.DialStream("phone", "server:80")
	if err != nil {
		t.Fatal(err)
	}
	const total = 2 << 20
	if _, err := stream.Write(make([]byte, total)); err != nil {
		t.Fatal(err)
	}
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}
	// Drain whatever is still in flight after the blocking writes returned.
	if err := net.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	conn := stream.Conn()
	if !conn.MPTCPActive() {
		t.Fatal("connection fell back to single-path TCP")
	}
	if got := len(conn.Subflows()); got != links {
		t.Fatalf("connection opened %d subflows, want %d (one per interface)", got, links)
	}
	if received != total {
		t.Fatalf("server received %d bytes, want %d", received, total)
	}

	// All four subflows must actually carry data: with equal links the
	// scheduler stripes across every established subflow, so an idle one
	// means openAdditionalSubflows left an interface behind.
	for i, sf := range conn.Subflows() {
		st := sf.Endpoint().Stats()
		if st.BytesSent == 0 {
			t.Errorf("subflow %d sent no data", i)
		}
	}
}
