package pool

import "testing"

func TestBytesLengthAndClass(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{1, 256}, {256, 256}, {257, 2048}, {1460, 2048},
		{2048, 2048}, {8960, 16384}, {65536, 65536},
	}
	for _, c := range cases {
		b := Bytes(c.n)
		if len(b) != c.n {
			t.Fatalf("Bytes(%d): len=%d", c.n, len(b))
		}
		if cap(b) != c.wantCap {
			t.Fatalf("Bytes(%d): cap=%d want %d", c.n, cap(b), c.wantCap)
		}
		Recycle(b)
	}
}

func TestOversizeBypassesPool(t *testing.T) {
	b := Bytes(1 << 20)
	if len(b) != 1<<20 {
		t.Fatalf("len=%d", len(b))
	}
	before := Stats().Puts
	Recycle(b) // must be dropped, not pooled
	if Stats().Puts != before {
		t.Fatal("oversize buffer was pooled")
	}
}

func TestRecycleReuse(t *testing.T) {
	b := Bytes(1460)
	b[0], b[1459] = 0xaa, 0xbb
	Recycle(b)
	c := Bytes(1000) // same 2048 class as the recycled buffer
	if cap(c) != cap(b) {
		t.Fatalf("expected class reuse, cap=%d", cap(c))
	}
}

func TestRecycleDropsResliced(t *testing.T) {
	b := Bytes(1460)
	before := Stats().Puts
	Recycle(b[5:]) // front-trimmed: capacity no longer matches the class
	if Stats().Puts != before {
		t.Fatal("front-trimmed slice was pooled")
	}
	Recycle(b[:10]) // tail-trimmed: capacity still matches, safe to pool
	if Stats().Puts != before+1 {
		t.Fatal("tail-trimmed slice was not pooled")
	}
}

func TestCopy(t *testing.T) {
	src := []byte{1, 2, 3, 4, 5}
	dst := Copy(src)
	if string(dst) != string(src) {
		t.Fatalf("copy mismatch: %v", dst)
	}
	src[0] = 99
	if dst[0] == 99 {
		t.Fatal("Copy aliases its argument")
	}
	Recycle(dst)
}

func TestSteadyStateNoAllocs(t *testing.T) {
	// Warm the class.
	for i := 0; i < 8; i++ {
		Recycle(Bytes(1460))
	}
	avg := testing.AllocsPerRun(1000, func() {
		b := Bytes(1460)
		Recycle(b)
	})
	if avg > 0 {
		t.Fatalf("Bytes/Recycle cycle allocates %.2f allocs/op; want 0", avg)
	}
}
