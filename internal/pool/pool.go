// Package pool provides size-classed, concurrency-safe byte-buffer recycling
// for the per-segment hot path. The emulator moves every payload byte through
// several hops (send queue → wire segment → reassembly queue → receive
// queue); without recycling, each hop costs a garbage-collected allocation
// per segment, which dominates the CPU profile of the figure benchmarks.
//
// Ownership discipline: a buffer obtained from Bytes (or Copy) is owned by
// exactly one component at a time. The owner either passes ownership on
// (e.g. by attaching the buffer to a packet.Segment) or returns it with
// Recycle once the contents have been consumed. Recycling a buffer that is
// still referenced elsewhere corrupts data; when in doubt, drop the buffer
// and let the garbage collector take it — Recycle silently ignores any slice
// whose capacity does not exactly match a size class, so re-sliced buffers
// are always safe to "recycle".
//
// Buffer contents are undefined on Get; callers must overwrite the bytes
// they use. This keeps the pool free of zeroing cost and, because every user
// copies exact lengths, keeps simulation results independent of pool state.
package pool

import "sync/atomic"

// Size classes. 2048 covers the standard Ethernet MSS (1460), 16384 covers
// jumbo frames (8960), 65536 covers coalesced segments and application reads.
var classSizes = [...]int{256, 2048, 16384, 65536}

// perClassCap bounds how many free buffers each class retains; beyond it,
// recycled buffers are dropped to the garbage collector. 4096 × 2 KiB ≈ 8 MiB
// for the MSS class, enough for the deepest bufferbloat scenarios in the
// paper (2 s × 2 Mbps 3G queues) across several concurrent sweep points.
const perClassCap = 4096

// class is a lock-free free list backed by a buffered channel: sends and
// receives never block (full/empty fall through to drop/allocate) and never
// allocate, which keeps the steady-state hot path at zero allocs/op.
type class struct {
	size int
	free chan []byte
}

var classes [len(classSizes)]class

func init() {
	for i, size := range classSizes {
		classes[i] = class{size: size, free: make(chan []byte, perClassCap)}
	}
}

// Counters reports pool activity; tests use it to verify that hot paths stay
// on the recycled path.
type Counters struct {
	// Gets counts Bytes/Copy calls served by the pool (any class).
	Gets uint64
	// Misses counts Bytes/Copy calls that had to allocate.
	Misses uint64
	// Puts counts buffers accepted back by Recycle.
	Puts uint64
	// Drops counts Recycle calls that discarded the buffer (wrong capacity
	// or full class).
	Drops uint64
}

var gets, misses, puts, drops atomic.Uint64

// Stats returns a snapshot of the pool counters.
func Stats() Counters {
	return Counters{
		Gets:   gets.Load(),
		Misses: misses.Load(),
		Puts:   puts.Load(),
		Drops:  drops.Load(),
	}
}

// classFor returns the smallest class that fits n, or nil if n exceeds the
// largest class.
func classFor(n int) *class {
	for i := range classes {
		if n <= classes[i].size {
			return &classes[i]
		}
	}
	return nil
}

// Bytes returns a buffer of length n with undefined contents. Buffers larger
// than the largest size class are plainly allocated (and later ignored by
// Recycle).
func Bytes(n int) []byte {
	c := classFor(n)
	if c == nil {
		misses.Add(1)
		return make([]byte, n)
	}
	select {
	case b := <-c.free:
		gets.Add(1)
		return b[:n]
	default:
		misses.Add(1)
		return make([]byte, n, c.size)
	}
}

// Copy returns a pool-owned copy of p.
func Copy(p []byte) []byte {
	b := Bytes(len(p))
	copy(b, p)
	return b
}

// Recycle returns a buffer previously obtained from Bytes or Copy to its
// class. Slices whose capacity does not exactly match a class — including
// anything re-sliced from the front — are silently dropped, so callers never
// need to track whether a buffer is still "whole".
func Recycle(b []byte) {
	c := classFor(cap(b))
	if c == nil || cap(b) != c.size {
		drops.Add(1)
		return
	}
	select {
	case c.free <- b[:c.size]:
		puts.Add(1)
	default:
		drops.Add(1)
	}
}
