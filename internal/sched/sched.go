// Package sched provides the packet schedulers that decide which subflow the
// next chunk of connection-level data is sent on. The default policy is the
// one the paper's implementation uses: "MPTCP will send a new packet on the
// lowest delay link that has space in its congestion window" (§4.2).
package sched

import "time"

// Candidate is one subflow from the scheduler's point of view.
type Candidate interface {
	// SRTT returns the subflow's smoothed round-trip time estimate.
	SRTT() time.Duration
	// SendSpace returns how many bytes the subflow could transmit right now
	// (congestion-window allowance minus in-flight data).
	SendSpace() int
	// Usable reports whether the subflow is established and not failed.
	Usable() bool
	// Backup reports whether the subflow was negotiated as a backup path
	// (MP_JOIN B-flag); backup subflows are only used when no regular
	// subflow is usable.
	Backup() bool
}

// Scheduler selects the subflow for the next transmission.
type Scheduler interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Pick returns the index into candidates of the subflow to use for a
	// chunk of the given size, or -1 if no subflow can send now.
	Pick(candidates []Candidate, size int) int
}

// usable filters candidates by usability and minimum space, preferring
// non-backup subflows.
func usable(candidates []Candidate, size int) []int {
	var regular, backup []int
	for i, c := range candidates {
		if !c.Usable() || c.SendSpace() < size {
			continue
		}
		if c.Backup() {
			backup = append(backup, i)
		} else {
			regular = append(regular, i)
		}
	}
	if len(regular) > 0 {
		return regular
	}
	return backup
}

// LowestRTT is the default scheduler: among subflows with congestion-window
// space, pick the one with the smallest smoothed RTT.
type LowestRTT struct{}

// Name implements Scheduler.
func (LowestRTT) Name() string { return "lowest-rtt" }

// Pick implements Scheduler.
func (LowestRTT) Pick(candidates []Candidate, size int) int {
	best := -1
	var bestRTT time.Duration
	for _, i := range usable(candidates, size) {
		rtt := candidates[i].SRTT()
		if best == -1 || rtt < bestRTT {
			best, bestRTT = i, rtt
		}
	}
	return best
}

// RoundRobin rotates through usable subflows regardless of RTT; it is the
// ablation baseline resembling per-packet link bonding.
type RoundRobin struct {
	next int
}

// Name implements Scheduler.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Scheduler.
func (r *RoundRobin) Pick(candidates []Candidate, size int) int {
	ok := usable(candidates, size)
	if len(ok) == 0 {
		return -1
	}
	idx := ok[r.next%len(ok)]
	r.next++
	return idx
}

// HighestSpace picks the subflow with the most congestion-window headroom;
// useful as an ablation that ignores latency entirely.
type HighestSpace struct{}

// Name implements Scheduler.
func (HighestSpace) Name() string { return "highest-space" }

// Pick implements Scheduler.
func (HighestSpace) Pick(candidates []Candidate, size int) int {
	best, bestSpace := -1, -1
	for _, i := range usable(candidates, size) {
		if sp := candidates[i].SendSpace(); sp > bestSpace {
			best, bestSpace = i, sp
		}
	}
	return best
}

// New constructs a scheduler by name ("lowest-rtt", "round-robin",
// "highest-space"); unknown names return the default LowestRTT.
func New(name string) Scheduler {
	switch name {
	case "round-robin":
		return &RoundRobin{}
	case "highest-space":
		return HighestSpace{}
	default:
		return LowestRTT{}
	}
}
