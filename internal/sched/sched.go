// Package sched provides the packet schedulers that decide which subflow the
// next chunk of connection-level data is sent on. The default policy is the
// one the paper's implementation uses: "MPTCP will send a new packet on the
// lowest delay link that has space in its congestion window" (§4.2).
package sched

import "time"

// Candidate is one subflow from the scheduler's point of view.
type Candidate interface {
	// SRTT returns the subflow's smoothed round-trip time estimate.
	SRTT() time.Duration
	// SendSpace returns how many bytes the subflow could transmit right now
	// (congestion-window allowance minus in-flight data).
	SendSpace() int
	// Usable reports whether the subflow is established and not failed.
	Usable() bool
	// Backup reports whether the subflow was negotiated as a backup path
	// (MP_JOIN B-flag); backup subflows are only used when no regular
	// subflow is usable.
	Backup() bool
}

// Scheduler selects the subflow for the next transmission.
type Scheduler interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Pick returns the index into candidates of the subflow to use for a
	// chunk of the given size, or -1 if no subflow can send now.
	Pick(candidates []Candidate, size int) int
}

// usable filters candidates by usability and minimum space into scratch
// (reused between calls by stateful schedulers), preferring non-backup
// subflows.
func usable(scratch []int, candidates []Candidate, size int) []int {
	regular := scratch[:0]
	backups := 0
	for i, c := range candidates {
		if !c.Usable() || c.SendSpace() < size {
			continue
		}
		if c.Backup() {
			backups++
		} else {
			regular = append(regular, i)
		}
	}
	if len(regular) > 0 || backups == 0 {
		return regular
	}
	backup := scratch[:0]
	for i, c := range candidates {
		if c.Usable() && c.SendSpace() >= size && c.Backup() {
			backup = append(backup, i)
		}
	}
	return backup
}

// pickByScore returns the index of the usable candidate with enough space
// and the lowest score, preferring non-backup subflows; ties go to the
// earliest index. It is allocation-free (callers pass non-capturing score
// functions) — the scheduler runs once per transmitted chunk.
func pickByScore(candidates []Candidate, size int, score func(Candidate) int64) int {
	best, bestBackup := -1, -1
	var bestS, bestBackupS int64
	for i, c := range candidates {
		if !c.Usable() || c.SendSpace() < size {
			continue
		}
		s := score(c)
		if c.Backup() {
			if bestBackup == -1 || s < bestBackupS {
				bestBackup, bestBackupS = i, s
			}
		} else if best == -1 || s < bestS {
			best, bestS = i, s
		}
	}
	if best != -1 {
		return best
	}
	return bestBackup
}

// LowestRTT is the default scheduler: among subflows with congestion-window
// space, pick the one with the smallest smoothed RTT.
type LowestRTT struct{}

// Name implements Scheduler.
func (LowestRTT) Name() string { return "lowest-rtt" }

// Pick implements Scheduler.
func (LowestRTT) Pick(candidates []Candidate, size int) int {
	return pickByScore(candidates, size, func(c Candidate) int64 { return int64(c.SRTT()) })
}

// RoundRobin rotates through usable subflows regardless of RTT; it is the
// ablation baseline resembling per-packet link bonding.
type RoundRobin struct {
	next    int
	scratch []int
}

// Name implements Scheduler.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Scheduler.
func (r *RoundRobin) Pick(candidates []Candidate, size int) int {
	ok := usable(r.scratch, candidates, size)
	r.scratch = ok[:0]
	if len(ok) == 0 {
		return -1
	}
	idx := ok[r.next%len(ok)]
	r.next++
	return idx
}

// HighestSpace picks the subflow with the most congestion-window headroom;
// useful as an ablation that ignores latency entirely.
type HighestSpace struct{}

// Name implements Scheduler.
func (HighestSpace) Name() string { return "highest-space" }

// Pick implements Scheduler.
func (HighestSpace) Pick(candidates []Candidate, size int) int {
	return pickByScore(candidates, size, func(c Candidate) int64 { return -int64(c.SendSpace()) })
}

// New constructs a scheduler by name ("lowest-rtt", "round-robin",
// "highest-space"); unknown names return the default LowestRTT.
func New(name string) Scheduler {
	switch name {
	case "round-robin":
		return &RoundRobin{}
	case "highest-space":
		return HighestSpace{}
	default:
		return LowestRTT{}
	}
}
