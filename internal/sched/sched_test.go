package sched

import (
	"testing"
	"time"
)

type fakeCandidate struct {
	srtt   time.Duration
	space  int
	usable bool
	backup bool
}

func (f fakeCandidate) SRTT() time.Duration { return f.srtt }
func (f fakeCandidate) SendSpace() int      { return f.space }
func (f fakeCandidate) Usable() bool        { return f.usable }
func (f fakeCandidate) Backup() bool        { return f.backup }

func TestLowestRTTPicksFastestWithSpace(t *testing.T) {
	s := LowestRTT{}
	cands := []Candidate{
		fakeCandidate{srtt: 10 * time.Millisecond, space: 0, usable: true},     // fast but full
		fakeCandidate{srtt: 200 * time.Millisecond, space: 5000, usable: true}, // slow
		fakeCandidate{srtt: 50 * time.Millisecond, space: 5000, usable: true},  // should win
	}
	if got := s.Pick(cands, 1460); got != 2 {
		t.Fatalf("Pick = %d, want 2", got)
	}
}

func TestLowestRTTNoCandidate(t *testing.T) {
	s := LowestRTT{}
	cands := []Candidate{
		fakeCandidate{srtt: 10 * time.Millisecond, space: 100, usable: true},
		fakeCandidate{srtt: 20 * time.Millisecond, space: 0, usable: false},
	}
	if got := s.Pick(cands, 1460); got != -1 {
		t.Fatalf("expected no pick, got %d", got)
	}
}

func TestBackupOnlyUsedWhenNoRegular(t *testing.T) {
	s := LowestRTT{}
	cands := []Candidate{
		fakeCandidate{srtt: 5 * time.Millisecond, space: 5000, usable: true, backup: true},
		fakeCandidate{srtt: 100 * time.Millisecond, space: 5000, usable: true},
	}
	if got := s.Pick(cands, 1000); got != 1 {
		t.Fatalf("regular subflow must be preferred over backup, got %d", got)
	}
	cands[1] = fakeCandidate{usable: false}
	if got := s.Pick(cands, 1000); got != 0 {
		t.Fatalf("backup must be used when no regular subflow is usable, got %d", got)
	}
}

func TestRoundRobinRotates(t *testing.T) {
	s := &RoundRobin{}
	cands := []Candidate{
		fakeCandidate{space: 5000, usable: true},
		fakeCandidate{space: 5000, usable: true},
	}
	first := s.Pick(cands, 100)
	second := s.Pick(cands, 100)
	if first == second {
		t.Fatalf("round robin did not rotate: %d then %d", first, second)
	}
}

func TestHighestSpace(t *testing.T) {
	s := HighestSpace{}
	cands := []Candidate{
		fakeCandidate{space: 1000, usable: true},
		fakeCandidate{space: 9000, usable: true},
		fakeCandidate{space: 4000, usable: true},
	}
	if got := s.Pick(cands, 100); got != 1 {
		t.Fatalf("Pick = %d, want 1", got)
	}
}

func TestNewByName(t *testing.T) {
	if New("round-robin").Name() != "round-robin" {
		t.Fatal("factory ignored round-robin")
	}
	if New("highest-space").Name() != "highest-space" {
		t.Fatal("factory ignored highest-space")
	}
	if New("unknown").Name() != "lowest-rtt" {
		t.Fatal("unknown names must fall back to lowest-rtt")
	}
}
