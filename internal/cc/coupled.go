package cc

import "time"

// CoupledGroup links the congestion controllers of all subflows of one MPTCP
// connection, implementing the Linked Increases Algorithm (LIA) from
// "Design, implementation and evaluation of congestion control for Multipath
// TCP" (NSDI'11), which the paper relies on for load balancing across paths.
//
// Each subflow's window increases per ACK by
//
//	min( alpha * acked * MSS / cwnd_total , acked * MSS / cwnd_i )
//
// where alpha = cwnd_total * max_i(cwnd_i / rtt_i^2) / (sum_i cwnd_i/rtt_i)^2.
// Decrease behaviour is standard TCP (per-subflow halving).
type CoupledGroup struct {
	members []*Coupled
}

// NewCoupledGroup creates an empty group.
func NewCoupledGroup() *CoupledGroup { return &CoupledGroup{} }

// NewController creates a controller for one subflow and adds it to the
// group.
func (g *CoupledGroup) NewController(cfg Config) *Coupled {
	cfg = cfg.withDefaults()
	c := &Coupled{
		cfg:      cfg,
		group:    g,
		cwnd:     cfg.MSS * cfg.InitialCwndSegments,
		ssthresh: maxSsthresh,
		srtt:     100 * time.Millisecond,
	}
	g.members = append(g.members, c)
	return c
}

// Remove detaches a subflow's controller from the group (subflow closed).
func (g *CoupledGroup) Remove(c *Coupled) {
	for i, m := range g.members {
		if m == c {
			g.members = append(g.members[:i], g.members[i+1:]...)
			return
		}
	}
}

// TotalCwnd returns the sum of all member congestion windows in bytes.
func (g *CoupledGroup) TotalCwnd() int {
	total := 0
	for _, m := range g.members {
		total += m.cwnd
	}
	return total
}

// Alpha returns the group's current LIA aggressiveness parameter, for
// observability probes. It is recomputed on demand from live subflow state
// (the same computation every coupled increase uses), so sampling it never
// perturbs the controllers.
func (g *CoupledGroup) Alpha() float64 { return g.alpha() }

// alpha computes the LIA aggressiveness parameter.
func (g *CoupledGroup) alpha() float64 {
	total := float64(g.TotalCwnd())
	if total <= 0 {
		return 1
	}
	var maxTerm float64
	var sumTerm float64
	for _, m := range g.members {
		rtt := m.srtt.Seconds()
		if rtt <= 0 {
			rtt = 0.001
		}
		cw := float64(m.cwnd)
		if t := cw / (rtt * rtt); t > maxTerm {
			maxTerm = t
		}
		sumTerm += cw / rtt
	}
	if sumTerm <= 0 {
		return 1
	}
	return total * maxTerm / (sumTerm * sumTerm)
}

// Coupled is the per-subflow controller participating in a CoupledGroup.
type Coupled struct {
	cfg   Config
	group *CoupledGroup

	cwnd     int
	ssthresh int
	cap      int

	srtt         time.Duration
	caBytesAcked float64
}

// Name implements Controller.
func (c *Coupled) Name() string { return "coupled-lia" }

// Cwnd implements Controller.
func (c *Coupled) Cwnd() int { return c.cwnd }

// Ssthresh implements Controller.
func (c *Coupled) Ssthresh() int { return c.ssthresh }

// InSlowStart implements Controller.
func (c *Coupled) InSlowStart() bool { return c.cwnd < c.ssthresh }

// Alpha returns the coupling group's current LIA alpha (see
// CoupledGroup.Alpha).
func (c *Coupled) Alpha() float64 { return c.group.alpha() }

// SRTT returns the smoothed RTT the controller is using for the coupling
// computation.
func (c *Coupled) SRTT() time.Duration { return c.srtt }

// OnAck implements Controller.
func (c *Coupled) OnAck(acked int, rtt time.Duration) {
	if rtt > 0 {
		if c.srtt == 0 {
			c.srtt = rtt
		} else {
			c.srtt = (7*c.srtt + rtt) / 8
		}
	}
	if acked <= 0 {
		return
	}
	if c.InSlowStart() {
		// Slow start remains uncoupled, as in the Linux MPTCP implementation.
		c.cwnd += acked
	} else {
		alpha := c.group.alpha()
		total := float64(c.group.TotalCwnd())
		if total <= 0 {
			total = float64(c.cwnd)
		}
		coupled := alpha * float64(acked) * float64(c.cfg.MSS) / total
		uncoupled := float64(acked) * float64(c.cfg.MSS) / float64(c.cwnd)
		inc := coupled
		if uncoupled < inc {
			inc = uncoupled
		}
		c.caBytesAcked += inc
		if c.caBytesAcked >= 1 {
			c.cwnd += int(c.caBytesAcked)
			c.caBytesAcked -= float64(int(c.caBytesAcked))
		}
	}
	c.cwnd = clampCwnd(c.cwnd, c.cfg.MSS, c.cfg.MinCwndSegments, c.cap)
}

// OnFastRetransmit implements Controller.
func (c *Coupled) OnFastRetransmit() {
	c.ssthresh = maxInt(c.cwnd/2, 2*c.cfg.MSS)
	c.cwnd = clampCwnd(c.ssthresh, c.cfg.MSS, c.cfg.MinCwndSegments, c.cap)
	c.caBytesAcked = 0
}

// OnTimeout implements Controller.
func (c *Coupled) OnTimeout() {
	c.ssthresh = maxInt(c.cwnd/2, 2*c.cfg.MSS)
	c.cwnd = clampCwnd(c.cfg.MSS, c.cfg.MSS, 1, c.cap)
	c.caBytesAcked = 0
}

// OnRecoveryExit implements Controller.
func (c *Coupled) OnRecoveryExit() {
	c.cwnd = clampCwnd(c.ssthresh, c.cfg.MSS, c.cfg.MinCwndSegments, c.cap)
}

// ForceReduce implements Controller (Mechanism 2: penalizing slow subflows).
func (c *Coupled) ForceReduce() {
	c.cwnd = clampCwnd(c.cwnd/2, c.cfg.MSS, c.cfg.MinCwndSegments, c.cap)
	c.ssthresh = c.cwnd
	c.caBytesAcked = 0
}

// SetCwndCap implements Controller (Mechanism 4: cwnd capping).
func (c *Coupled) SetCwndCap(capBytes int) {
	c.cap = capBytes
	c.cwnd = clampCwnd(c.cwnd, c.cfg.MSS, c.cfg.MinCwndSegments, c.cap)
}
