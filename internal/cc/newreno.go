package cc

import "time"

// NewReno is the standard TCP NewReno congestion controller: slow start,
// congestion avoidance with one MSS per RTT, multiplicative decrease on fast
// retransmit and a reset to the restart window on timeout.
type NewReno struct {
	cfg      Config
	cwnd     int
	ssthresh int
	cap      int

	// caBytesAcked accumulates acknowledged bytes during congestion
	// avoidance so that cwnd grows by one MSS per cwnd bytes acknowledged.
	caBytesAcked int
}

// NewNewReno returns a NewReno controller.
func NewNewReno(cfg Config) *NewReno {
	cfg = cfg.withDefaults()
	return &NewReno{
		cfg:      cfg,
		cwnd:     cfg.MSS * cfg.InitialCwndSegments,
		ssthresh: maxSsthresh,
	}
}

// Name implements Controller.
func (c *NewReno) Name() string { return "newreno" }

// Cwnd implements Controller.
func (c *NewReno) Cwnd() int { return c.cwnd }

// Ssthresh implements Controller.
func (c *NewReno) Ssthresh() int { return c.ssthresh }

// InSlowStart implements Controller.
func (c *NewReno) InSlowStart() bool { return c.cwnd < c.ssthresh }

// OnAck implements Controller.
func (c *NewReno) OnAck(acked int, _ time.Duration) {
	if acked <= 0 {
		return
	}
	if c.InSlowStart() {
		c.cwnd += acked
	} else {
		c.caBytesAcked += acked
		if c.caBytesAcked >= c.cwnd {
			c.caBytesAcked -= c.cwnd
			c.cwnd += c.cfg.MSS
		}
	}
	c.cwnd = clampCwnd(c.cwnd, c.cfg.MSS, c.cfg.MinCwndSegments, c.cap)
}

// OnFastRetransmit implements Controller.
func (c *NewReno) OnFastRetransmit() {
	c.ssthresh = maxInt(c.cwnd/2, 2*c.cfg.MSS)
	c.cwnd = clampCwnd(c.ssthresh, c.cfg.MSS, c.cfg.MinCwndSegments, c.cap)
	c.caBytesAcked = 0
}

// OnTimeout implements Controller.
func (c *NewReno) OnTimeout() {
	c.ssthresh = maxInt(c.cwnd/2, 2*c.cfg.MSS)
	c.cwnd = clampCwnd(c.cfg.MSS, c.cfg.MSS, 1, c.cap)
	c.caBytesAcked = 0
}

// OnRecoveryExit implements Controller.
func (c *NewReno) OnRecoveryExit() {
	c.cwnd = clampCwnd(c.ssthresh, c.cfg.MSS, c.cfg.MinCwndSegments, c.cap)
}

// ForceReduce implements Controller (Mechanism 2).
func (c *NewReno) ForceReduce() {
	c.cwnd = clampCwnd(c.cwnd/2, c.cfg.MSS, c.cfg.MinCwndSegments, c.cap)
	c.ssthresh = c.cwnd
	c.caBytesAcked = 0
}

// SetCwndCap implements Controller (Mechanism 4).
func (c *NewReno) SetCwndCap(capBytes int) {
	c.cap = capBytes
	c.cwnd = clampCwnd(c.cwnd, c.cfg.MSS, c.cfg.MinCwndSegments, c.cap)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
