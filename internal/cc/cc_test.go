package cc

import (
	"testing"
	"time"
)

func TestNewRenoSlowStartAndCA(t *testing.T) {
	c := NewNewReno(Config{MSS: 1000, InitialCwndSegments: 2})
	if c.Cwnd() != 2000 {
		t.Fatalf("initial cwnd = %d", c.Cwnd())
	}
	if !c.InSlowStart() {
		t.Fatal("should start in slow start")
	}
	// Slow start: cwnd grows by the acknowledged amount.
	c.OnAck(2000, 10*time.Millisecond)
	if c.Cwnd() != 4000 {
		t.Fatalf("slow-start growth wrong: %d", c.Cwnd())
	}
	c.OnFastRetransmit()
	if c.Cwnd() != 2000 || c.Ssthresh() != 2000 {
		t.Fatalf("after fast retransmit cwnd=%d ssthresh=%d", c.Cwnd(), c.Ssthresh())
	}
	if c.InSlowStart() {
		t.Fatal("should be in congestion avoidance after loss")
	}
	// Congestion avoidance: one MSS per cwnd of acked data.
	acked := 0
	before := c.Cwnd()
	for acked < before {
		c.OnAck(1000, 10*time.Millisecond)
		acked += 1000
	}
	if c.Cwnd() != before+1000 {
		t.Fatalf("CA growth: got %d want %d", c.Cwnd(), before+1000)
	}
}

func TestNewRenoTimeoutAndFloor(t *testing.T) {
	c := NewNewReno(Config{MSS: 1000})
	c.OnTimeout()
	if c.Cwnd() != 1000 {
		t.Fatalf("cwnd after timeout = %d, want 1 MSS", c.Cwnd())
	}
	c.ForceReduce()
	c.ForceReduce()
	if c.Cwnd() < 2000 {
		// ForceReduce floors at MinCwndSegments (2).
		t.Fatalf("ForceReduce must not go below 2 MSS, got %d", c.Cwnd())
	}
}

func TestNewRenoCap(t *testing.T) {
	c := NewNewReno(Config{MSS: 1000, InitialCwndSegments: 10})
	c.SetCwndCap(5000)
	if c.Cwnd() != 5000 {
		t.Fatalf("cap not applied: %d", c.Cwnd())
	}
	c.OnAck(5000, time.Millisecond)
	if c.Cwnd() > 5000 {
		t.Fatalf("cwnd grew past the cap: %d", c.Cwnd())
	}
	c.SetCwndCap(0)
	c.OnAck(5000, time.Millisecond)
	if c.Cwnd() <= 5000 {
		t.Fatal("removing the cap must allow growth again")
	}
}

func TestCoupledGroupAlphaAndIncrease(t *testing.T) {
	g := NewCoupledGroup()
	a := g.NewController(Config{MSS: 1000, InitialCwndSegments: 10})
	b := g.NewController(Config{MSS: 1000, InitialCwndSegments: 10})
	if g.TotalCwnd() != 20000 {
		t.Fatalf("total cwnd = %d", g.TotalCwnd())
	}
	// Leave slow start.
	a.OnFastRetransmit()
	b.OnFastRetransmit()

	// Feed RTT samples: subflow a is fast, subflow b is slow.
	a.OnAck(1000, 10*time.Millisecond)
	b.OnAck(1000, 500*time.Millisecond)

	beforeA, beforeB := a.Cwnd(), b.Cwnd()
	for i := 0; i < 100; i++ {
		a.OnAck(1000, 10*time.Millisecond)
		b.OnAck(1000, 500*time.Millisecond)
	}
	growthA := a.Cwnd() - beforeA
	growthB := b.Cwnd() - beforeB
	// The coupled increase is capped by the uncoupled (per-subflow) increase,
	// so neither grows faster than standard TCP would, and the aggregate
	// increase is bounded.
	if growthA <= 0 {
		t.Fatal("fast subflow should still grow")
	}
	uncoupledBound := 100 * 1000 * 1000 / beforeA // acked*MSS/cwnd per ack, summed
	if growthA > uncoupledBound+1000 {
		t.Fatalf("coupled growth (%d) exceeds the uncoupled bound (%d)", growthA, uncoupledBound)
	}
	_ = growthB

	// Removing a member shrinks the group.
	g.Remove(b)
	if g.TotalCwnd() != a.Cwnd() {
		t.Fatal("Remove did not detach the controller")
	}
}

func TestCoupledReductionsAndCap(t *testing.T) {
	g := NewCoupledGroup()
	c := g.NewController(Config{MSS: 1000})
	c.OnAck(20000, 50*time.Millisecond)
	before := c.Cwnd()
	c.ForceReduce()
	if c.Cwnd() >= before || c.Ssthresh() != c.Cwnd() {
		t.Fatalf("ForceReduce: cwnd=%d ssthresh=%d before=%d", c.Cwnd(), c.Ssthresh(), before)
	}
	c.OnTimeout()
	if c.Cwnd() != 1000 {
		t.Fatalf("timeout should reset cwnd to 1 MSS, got %d", c.Cwnd())
	}
	c.SetCwndCap(3000)
	for i := 0; i < 50; i++ {
		c.OnAck(3000, 50*time.Millisecond)
	}
	if c.Cwnd() > 3000 {
		t.Fatalf("cap violated: %d", c.Cwnd())
	}
}
