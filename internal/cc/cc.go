// Package cc implements the congestion controllers used by the stack: TCP
// NewReno for single-path TCP and for decoupled (ablation) MPTCP subflows,
// and the coupled "Linked Increases" algorithm (LIA, Wischik et al.,
// NSDI'11) referenced by the paper for MPTCP subflows.
//
// Controllers are expressed in bytes, not packets, matching the Linux
// implementation the paper builds on.
package cc

import "time"

// Controller is the per-flow (or per-subflow) congestion control interface
// consumed by the TCP endpoint.
type Controller interface {
	// Name identifies the algorithm for traces and experiment output.
	Name() string

	// Cwnd returns the current congestion window in bytes.
	Cwnd() int
	// Ssthresh returns the slow-start threshold in bytes.
	Ssthresh() int
	// InSlowStart reports whether the controller is in slow start.
	InSlowStart() bool

	// OnAck is called for every ACK that advances the cumulative
	// acknowledgement point by acked bytes; rtt is the latest RTT sample (or
	// zero when unavailable).
	OnAck(acked int, rtt time.Duration)
	// OnFastRetransmit is called when entering fast-recovery (triple
	// duplicate ACK).
	OnFastRetransmit()
	// OnTimeout is called on a retransmission timeout.
	OnTimeout()
	// OnRecoveryExit is called when fast recovery ends.
	OnRecoveryExit()

	// ForceReduce halves the congestion window and sets ssthresh to the
	// reduced value. It implements Mechanism 2 (penalizing slow subflows,
	// §4.2) and therefore must be callable from outside the loss-recovery
	// machinery.
	ForceReduce()

	// SetCwndCap installs an upper bound on cwnd in bytes (0 removes the
	// cap). Used by Mechanism 4 (§4.2) to limit buffer bloat on paths with
	// excessive network buffering.
	SetCwndCap(capBytes int)
}

// Config carries the parameters shared by all controllers.
type Config struct {
	// MSS is the maximum segment size in bytes.
	MSS int
	// InitialCwnd is the initial congestion window in segments (default 10,
	// per modern Linux).
	InitialCwndSegments int
	// MinCwndSegments is the floor applied after any reduction (default 2).
	MinCwndSegments int
}

func (c Config) withDefaults() Config {
	if c.MSS <= 0 {
		c.MSS = 1460
	}
	if c.InitialCwndSegments <= 0 {
		c.InitialCwndSegments = 10
	}
	if c.MinCwndSegments <= 0 {
		c.MinCwndSegments = 2
	}
	return c
}

const maxSsthresh = 1 << 30

// clampCwnd applies the floor, the cap and a sanity ceiling.
func clampCwnd(cwnd, mss, minSegments, cap int) int {
	if min := mss * minSegments; cwnd < min {
		cwnd = min
	}
	if cap > 0 && cwnd > cap {
		cwnd = cap
	}
	if cwnd > maxSsthresh {
		cwnd = maxSsthresh
	}
	return cwnd
}
