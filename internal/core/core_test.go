package core

import (
	"testing"
	"time"

	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/sim"
)

// harness bundles a built network with MPTCP managers on both hosts.
type harness struct {
	net     *netem.Network
	cliMgr  *Manager
	srvMgr  *Manager
	t       *testing.T
	serverC *Connection
	clientC *Connection
}

func newHarness(t *testing.T, seed uint64, specs []netem.PathSpec) *harness {
	t.Helper()
	s := sim.New(seed)
	n := netem.Build(s, specs...)
	return &harness{
		net:    n,
		cliMgr: NewManager(n.Client),
		srvMgr: NewManager(n.Server),
		t:      t,
	}
}

// transferResult summarises a bulk transfer.
type transferResult struct {
	received    int
	finishedAt  time.Duration
	markAt      time.Duration
	clientConn  *Connection
	serverConn  *Connection
	sawEOF      bool
	clientError error
}

// runBulkTransfer sends total bytes client->server using the given configs
// and runs the simulation until deadline.
func (h *harness) runBulkTransfer(clientCfg, serverCfg Config, total int, deadline time.Duration) transferResult {
	return h.runBulkTransferMarked(clientCfg, serverCfg, total, deadline, 0)
}

// runBulkTransferMarked additionally records the time at which markBytes had
// been received, so tests can compute steady-state rates that exclude the
// slow-start transient.
func (h *harness) runBulkTransferMarked(clientCfg, serverCfg Config, total int, deadline time.Duration, markBytes int) transferResult {
	h.t.Helper()
	res := transferResult{}

	_, err := h.srvMgr.Listen(80, serverCfg, func(c *Connection) {
		res.serverConn = c
		h.serverC = c
		c.OnReadable = func() {
			for {
				data := c.Read(64 << 10)
				if len(data) == 0 {
					break
				}
				res.received += len(data)
			}
			if markBytes > 0 && res.received >= markBytes && res.markAt == 0 {
				res.markAt = h.net.Sim.Now()
			}
			if res.received >= total && res.finishedAt == 0 {
				res.finishedAt = h.net.Sim.Now()
			}
			if c.EOF() {
				res.sawEOF = true
				c.Close()
			}
		}
	})
	if err != nil {
		h.t.Fatalf("listen: %v", err)
	}

	conn, err := h.cliMgr.Dial(h.net.Client.Interfaces()[0],
		packet.Endpoint{Addr: h.net.ServerAddr(0), Port: 80}, clientCfg)
	if err != nil {
		h.t.Fatalf("dial: %v", err)
	}
	res.clientConn = conn
	h.clientC = conn

	payload := make([]byte, 32<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	sent := 0
	pump := func() {
		for sent < total {
			n := minInt(len(payload), total-sent)
			w := conn.Write(payload[:n])
			if w == 0 {
				return
			}
			sent += w
		}
		if sent >= total {
			conn.Close()
		}
	}
	conn.OnEstablished = pump
	conn.OnWritable = pump
	conn.OnClosed = func(err error) { res.clientError = err }

	if err := h.net.Sim.RunUntil(deadline); err != nil {
		h.t.Fatalf("sim: %v", err)
	}
	return res
}

func wifi3GConfig(total int) (Config, Config) {
	cli := DefaultConfig()
	cli.SendBufBytes = 512 << 10
	cli.RecvBufBytes = 512 << 10
	srv := cli
	return cli, srv
}

func TestMPTCPNegotiationAndTransferTwoPaths(t *testing.T) {
	h := newHarness(t, 1, netem.WiFi3GSpec())
	cli, srv := wifi3GConfig(0)
	total := 2 << 20
	res := h.runBulkTransfer(cli, srv, total, 60*time.Second)

	if res.received < total {
		t.Fatalf("received %d of %d bytes", res.received, total)
	}
	if !res.clientConn.MPTCPActive() {
		t.Fatal("client did not negotiate MPTCP")
	}
	if res.serverConn == nil || !res.serverConn.MPTCPActive() {
		t.Fatal("server did not negotiate MPTCP")
	}
	if got := res.clientConn.Stats().SubflowsOpened; got < 2 {
		t.Fatalf("client opened %d subflows, want at least 2", got)
	}
}

func TestMPTCPUsesBothPaths(t *testing.T) {
	// Over WiFi (8 Mbps) + 3G (2 Mbps), MPTCP with large buffers should at
	// least match what TCP over the best single path (8 Mbps WiFi) achieves
	// once past the slow-start / penalization transient, and must never
	// exceed the physical aggregate.
	h := newHarness(t, 2, netem.WiFi3GSpec())
	cli := DefaultConfig()
	cli.SendBufBytes = 1 << 20
	cli.RecvBufBytes = 1 << 20
	srv := cli
	total := 24 << 20
	res := h.runBulkTransferMarked(cli, srv, total, 120*time.Second, total/4)
	if res.received < total {
		t.Fatalf("received %d of %d bytes", res.received, total)
	}
	if res.finishedAt == 0 || res.markAt == 0 {
		t.Fatal("transfer did not complete")
	}
	// Steady-state rate over the last three quarters of the transfer.
	steadyBytes := float64(total - total/4)
	steadyRate := steadyBytes * 8 / (res.finishedAt - res.markAt).Seconds() / 1e6
	if steadyRate < 7.8 {
		t.Fatalf("MPTCP steady-state throughput %.2f Mbps is below TCP on the best path (8 Mbps)", steadyRate)
	}
	if steadyRate > 10.5 {
		t.Fatalf("MPTCP steady-state throughput %.2f Mbps exceeds the physical aggregate (10 Mbps)", steadyRate)
	}
}

func TestGracefulCloseMPTCP(t *testing.T) {
	h := newHarness(t, 3, netem.WiFi3GSpec())
	cli, srv := wifi3GConfig(0)
	total := 256 << 10
	res := h.runBulkTransfer(cli, srv, total, 60*time.Second)
	if res.received < total {
		t.Fatalf("received %d of %d bytes", res.received, total)
	}
	if !res.sawEOF {
		t.Fatal("server never observed EOF (DATA_FIN)")
	}
	if !res.clientConn.Closed() {
		t.Fatalf("client connection not closed (err=%v)", res.clientConn.Err())
	}
	if res.clientConn.Err() != nil {
		t.Fatalf("client closed with error: %v", res.clientConn.Err())
	}
	if res.serverConn == nil || !res.serverConn.Closed() {
		t.Fatal("server connection not closed")
	}
}

func TestFallbackWhenSYNOptionStripped(t *testing.T) {
	h := newHarness(t, 4, netem.WiFi3GSpec())
	// Strip MPTCP options from SYNs on the primary path.
	h.net.Path(0).AddBox(&stripBox{synOnly: true})

	cli, srv := wifi3GConfig(0)
	total := 256 << 10
	res := h.runBulkTransfer(cli, srv, total, 60*time.Second)
	if res.received < total {
		t.Fatalf("received %d of %d bytes after fallback", res.received, total)
	}
	if res.clientConn.MPTCPActive() {
		t.Fatal("client should have fallen back to regular TCP")
	}
	if res.serverConn != nil && res.serverConn.MPTCPActive() {
		t.Fatal("server should not consider MPTCP active")
	}
}

func TestFallbackWhenDataOptionsStripped(t *testing.T) {
	h := newHarness(t, 5, netem.WiFi3GSpec())
	// Strip MPTCP options from every non-SYN segment: MPTCP negotiates on
	// the handshake but must drop to regular TCP when the first data packet
	// arrives without options (§3.1).
	h.net.Path(0).AddBox(&stripBox{synOnly: false, skipSYN: true})
	// Prevent the second subflow from carrying the transfer instead.
	cli, srv := wifi3GConfig(0)
	cli.MaxSubflows = 1
	total := 128 << 10
	res := h.runBulkTransfer(cli, srv, total, 120*time.Second)
	if res.received < total {
		t.Fatalf("received %d of %d bytes after mid-stream fallback", res.received, total)
	}
	if res.serverConn == nil || !res.serverConn.Fallback() {
		t.Fatal("server should have fallen back to regular TCP")
	}
}

// stripBox removes MPTCP options, optionally only from SYNs or only from
// non-SYN segments.
type stripBox struct {
	synOnly bool
	skipSYN bool
	removed int
}

func (b *stripBox) Name() string { return "test-strip" }

func (b *stripBox) Process(_ netem.BoxContext, _ netem.Direction, seg *packet.Segment) []*packet.Segment {
	isSYN := seg.Flags.Has(packet.FlagSYN)
	if b.synOnly && !isSYN {
		return []*packet.Segment{seg}
	}
	if b.skipSYN && isSYN {
		return []*packet.Segment{seg}
	}
	b.removed += seg.RemoveOptions(func(o packet.Option) bool { return o.Kind() == packet.OptMPTCP })
	return []*packet.Segment{seg}
}
