package core

import (
	"time"

	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/probe"
	"mptcpgo/internal/tcp"
)

// Manager is the per-host MPTCP stack: it owns the token table used to
// demultiplex MP_JOINs and to guarantee token uniqueness, and it creates
// client connections and listeners.
type Manager struct {
	host   *netem.Host
	tokens *TokenTable
	conns  []*Connection

	// probeRec, when non-nil, records flight-recorder events for this
	// host's connections under global member index probeMember. Connection
	// IDs are assigned per manager in dial order (nextConnID), which is
	// deterministic per member and independent of shard layout.
	probeRec    *probe.Recorder
	probeMember int
	nextConnID  int32
}

// NewManager creates the MPTCP stack for a host.
func NewManager(host *netem.Host) *Manager {
	return &Manager{host: host, tokens: NewTokenTable()}
}

// Host returns the underlying host.
func (m *Manager) Host() *netem.Host { return m.host }

// SetProbe attaches a flight recorder: every connection dialed afterwards
// records events and samples under the given global member index. A nil
// recorder (the default) keeps all instrumentation dormant.
func (m *Manager) SetProbe(rec *probe.Recorder, member int) {
	m.probeRec = rec
	m.probeMember = member
}

// Probe returns the attached flight recorder (nil when tracing is off) and
// the member index it records under.
func (m *Manager) Probe() (*probe.Recorder, int) { return m.probeRec, m.probeMember }

// Tokens exposes the token table (experiments measuring connection-setup
// latency populate it directly).
func (m *Manager) Tokens() *TokenTable { return m.tokens }

// Connections returns the currently tracked connections.
func (m *Manager) Connections() []*Connection { return m.conns }

// RemoveLocalInterface withdraws an interface from every tracked connection
// (mid-session interface loss, §3.4): affected subflows are failed, their data
// reinjected, and REMOVE_ADDR sent to peers over surviving subflows. The
// fault-injection layer drives this to emulate mobility churn.
func (m *Manager) RemoveLocalInterface(ifc *netem.Interface) {
	conns := append([]*Connection(nil), m.conns...)
	for _, c := range conns {
		c.RemoveLocalInterface(ifc)
	}
}

// RestoreLocalInterface reacts to an interface returning: clients re-open
// subflows across it, servers re-advertise its address.
func (m *Manager) RestoreLocalInterface(ifc *netem.Interface) {
	conns := append([]*Connection(nil), m.conns...)
	for _, c := range conns {
		c.RestoreLocalInterface(ifc)
	}
}

// Dial opens a new (MPTCP or plain TCP) connection from the given local
// interface toward the remote endpoint.
func (m *Manager) Dial(iface *netem.Interface, remote packet.Endpoint, cfg Config) (*Connection, error) {
	c := newConnection(m, cfg, true)
	c.dialCfg.remote = remote
	c.dialCfg.port = remote.Port
	if c.cfg.EnableMPTCP {
		key, token := m.tokens.GenerateUniqueKey(m.host.Sim().RNG())
		c.localKey = key
		c.localToken = token
		c.localIDSN = key.IDSN()
		m.tokens.Insert(token, c)
	}
	s := c.newSubflow(RoleInitial, true)
	scfg := c.cfg.subflowConfig(true)
	scfg.CongestionControl = c.cfg.controllerFactory(c.ccGroup, c.cfg.EnableMPTCP)
	if c.probe != nil {
		scfg.Probe = s
	}
	ep, err := tcp.Dial(iface, remote, scfg, s)
	if err != nil {
		return nil, err
	}
	s.ep = ep
	c.usedRemote[remote] = true
	m.conns = append(m.conns, c)
	return c, nil
}

func (m *Manager) removeConnection(c *Connection) {
	if c.localToken != 0 {
		m.tokens.Remove(c.localToken)
	}
	for i, other := range m.conns {
		if other == c {
			m.conns = append(m.conns[:i], m.conns[i+1:]...)
			return
		}
	}
}

// AcceptCallback is invoked for every new connection a Listener accepts,
// before any data arrives, so the application can install its callbacks.
type AcceptCallback func(*Connection)

// Listener accepts MPTCP (and plain TCP) connections on one port.
type Listener struct {
	mgr      *Manager
	cfg      Config
	port     uint16
	tl       *tcp.Listener
	acceptCb AcceptCallback

	// pending carries the subflow created in HooksFactory to the AcceptFunc
	// that runs immediately afterwards for the same SYN.
	pending *Subflow
	// pendingNew marks whether the pending subflow's connection is new (so
	// the application callback fires exactly once per connection).
	pendingNew bool

	// SetupDurations records the wall-clock time spent processing each
	// received SYN (key generation, token-uniqueness check, HMAC
	// validation); the connection-setup-latency experiment (Figure 10) reads
	// these.
	SetupDurations []time.Duration

	accepted []*Connection
}

// Listen installs an MPTCP listener on the manager's host.
func (m *Manager) Listen(port uint16, cfg Config, acceptCb AcceptCallback) (*Listener, error) {
	cfg = cfg.withDefaults()
	l := &Listener{mgr: m, cfg: cfg, port: port, acceptCb: acceptCb}
	tl, err := tcp.Listen(m.host, port, cfg.subflowConfig(true), l.onAccept)
	if err != nil {
		return nil, err
	}
	tl.HooksFactory = l.hooksForSYN
	l.tl = tl
	return l, nil
}

// Port returns the listening port.
func (l *Listener) Port() uint16 { return l.port }

// Accepted returns the connections accepted so far.
func (l *Listener) Accepted() []*Connection { return l.accepted }

// Close removes the listener.
func (l *Listener) Close() { l.tl.Close() }

// hooksForSYN inspects a SYN and builds the subflow (and, for MP_CAPABLE,
// the connection) it belongs to. Returning ok=false rejects the SYN.
func (l *Listener) hooksForSYN(syn *packet.Segment) (tcp.Hooks, bool) {
	start := time.Now()
	defer func() { l.SetupDurations = append(l.SetupDurations, time.Since(start)) }()

	l.pending = nil
	l.pendingNew = false

	if join, ok := syn.MPTCPOption(packet.SubMPJoin).(*packet.MPJoinOption); ok && join != nil {
		conn := l.mgr.tokens.Lookup(join.ReceiverToken)
		if conn == nil || conn.closed || !conn.MPTCPActive() {
			return nil, false // unknown token: refuse the subflow
		}
		s := conn.newSubflow(RoleJoin, false)
		s.addrID = join.AddrID
		s.backup = join.Backup
		s.remoteNonce = join.SenderNonce
		s.localNonce = l.mgr.host.Sim().RNG().Uint32()
		l.pending = s
		l.pendingNew = false
		return s, true
	}

	cfg := l.cfg
	c := newConnection(l.mgr, cfg, false)
	c.dialCfg.port = l.port

	if cap, ok := syn.MPTCPOption(packet.SubMPCapable).(*packet.MPCapableOption); ok && cap != nil && cfg.EnableMPTCP {
		// MP_CAPABLE handshake: record the client's key, generate our own
		// and verify its token is unique among established connections
		// (§5.2 — this is the cost Figure 10 measures).
		c.remoteKey = Key(cap.SenderKey)
		c.remoteToken = c.remoteKey.Token()
		c.remoteIDSN = c.remoteKey.IDSN()
		if cap.ChecksumRequired {
			c.cfg.UseDSSChecksum = true
		}
		key, token := l.mgr.tokens.GenerateUniqueKey(l.mgr.host.Sim().RNG())
		c.localKey = key
		c.localToken = token
		c.localIDSN = key.IDSN()
		l.mgr.tokens.Insert(token, c)
		c.mptcpActive = true
	} else {
		// Plain TCP client (or MPTCP disabled): accept as a fallback
		// connection.
		c.mptcpActive = false
	}

	s := c.newSubflow(RoleInitial, false)
	l.mgr.conns = append(l.mgr.conns, c)
	l.pending = s
	l.pendingNew = true
	return s, true
}

// onAccept wires the created endpoint into the pending subflow and hands new
// connections to the application.
func (l *Listener) onAccept(ep *tcp.Endpoint, syn *packet.Segment) {
	s := l.pending
	if s == nil {
		return
	}
	l.pending = nil
	s.ep = ep
	conn := s.conn
	// Replace the default controller with the connection's (coupled) one;
	// no data has been exchanged yet, so this is safe.
	if conn.MPTCPActive() {
		factory := conn.cfg.controllerFactory(conn.ccGroup, true)
		ep.SetController(factory(ep.ControllerConfig()))
	}
	// Servers advertise their additional addresses so clients behind NATs
	// can open subflows toward them (§3.2).
	if conn.cfg.AdvertiseAddresses && conn.MPTCPActive() && s.role == RoleInitial {
		s.addAddrRepeats = 3
	}
	if l.pendingNew {
		l.accepted = append(l.accepted, conn)
		if l.acceptCb != nil {
			l.acceptCb(conn)
		}
	}
}
