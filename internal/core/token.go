package core

import "mptcpgo/internal/sim"

// TokenTable stores the tokens of established MPTCP connections on a host so
// that (a) newly generated keys can be verified to hash to a unique token, as
// §5.2 of the paper requires, and (b) MP_JOIN SYNs can be demultiplexed to
// the connection they belong to.
//
// The table deliberately mirrors the structure of the kernel implementation
// the paper measures: a small fixed-size bucket array with chained entries,
// so the cost of the uniqueness check grows with the number of established
// connections (the effect visible in Figure 10 for 100 and 1000
// connections).
type TokenTable struct {
	buckets [][]tokenEntry
	count   int
}

type tokenEntry struct {
	token uint32
	conn  *Connection
}

// tokenBuckets matches the small static hash the early kernel implementation
// used.
const tokenBuckets = 32

// NewTokenTable returns an empty table.
func NewTokenTable() *TokenTable {
	return &TokenTable{buckets: make([][]tokenEntry, tokenBuckets)}
}

// Len returns the number of stored tokens.
func (t *TokenTable) Len() int { return t.count }

func (t *TokenTable) bucket(token uint32) int { return int(token % tokenBuckets) }

// Contains reports whether the token is already in use. The scan walks the
// whole chain, which is what makes key generation slower on busy servers.
func (t *TokenTable) Contains(token uint32) bool {
	for _, e := range t.buckets[t.bucket(token)] {
		if e.token == token {
			return true
		}
	}
	return false
}

// Insert adds a token. It returns false if the token already exists.
func (t *TokenTable) Insert(token uint32, conn *Connection) bool {
	if t.Contains(token) {
		return false
	}
	b := t.bucket(token)
	t.buckets[b] = append(t.buckets[b], tokenEntry{token: token, conn: conn})
	t.count++
	return true
}

// Lookup returns the connection registered under token, or nil.
func (t *TokenTable) Lookup(token uint32) *Connection {
	for _, e := range t.buckets[t.bucket(token)] {
		if e.token == token {
			return e.conn
		}
	}
	return nil
}

// Remove deletes a token.
func (t *TokenTable) Remove(token uint32) {
	b := t.bucket(token)
	chain := t.buckets[b]
	for i, e := range chain {
		if e.token == token {
			t.buckets[b] = append(chain[:i], chain[i+1:]...)
			t.count--
			return
		}
	}
}

// GenerateUniqueKey draws keys until one hashes to a token not already in the
// table, exactly the procedure whose latency Figure 10 measures. It returns
// the key and its token without inserting it.
func (t *TokenTable) GenerateUniqueKey(rng *sim.RNG) (Key, uint32) {
	for {
		key := GenerateKey(rng)
		token := key.Token()
		if !t.Contains(token) {
			return key, token
		}
	}
}
