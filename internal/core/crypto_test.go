package core

import (
	"testing"

	"mptcpgo/internal/sim"
)

func TestTokenAndIDSNDeterministic(t *testing.T) {
	k := Key(0x0102030405060708)
	if k.Token() != Key(0x0102030405060708).Token() {
		t.Fatal("token must be a pure function of the key")
	}
	if k.IDSN() == 0 && k.Token() == 0 {
		t.Fatal("derivations should not be trivially zero")
	}
	if Key(1).Token() == Key(2).Token() {
		t.Fatal("distinct keys should produce distinct tokens (SHA-1)")
	}
}

func TestJoinHMACSymmetryAndValidation(t *testing.T) {
	clientKey, serverKey := Key(111), Key(222)
	clientNonce, serverNonce := uint32(0xaaaa), uint32(0xbbbb)

	// The HMAC the server sends must be verifiable by the client computing
	// with the arguments swapped the same way.
	serverMAC := joinHMAC(serverKey, clientKey, serverNonce, clientNonce)
	clientExpectation := joinHMAC(serverKey, clientKey, serverNonce, clientNonce)
	if !hmacEqual(serverMAC, clientExpectation) {
		t.Fatal("identical computation must produce identical MACs")
	}
	// Any change in keys or nonces must change the MAC (blind spoofing fails).
	if hmacEqual(serverMAC, joinHMAC(serverKey, Key(333), serverNonce, clientNonce)) {
		t.Fatal("MAC must depend on both keys")
	}
	if hmacEqual(serverMAC, joinHMAC(serverKey, clientKey, serverNonce, clientNonce+1)) {
		t.Fatal("MAC must depend on the nonces")
	}
	if len(truncatedHMAC(serverMAC, 8)) != 8 {
		t.Fatal("truncation length wrong")
	}
}

func TestTokenTable(t *testing.T) {
	table := NewTokenTable()
	rng := sim.NewRNG(3)
	conn := &Connection{}
	key, token := table.GenerateUniqueKey(rng)
	_ = key
	if !table.Insert(token, conn) {
		t.Fatal("first insert must succeed")
	}
	if table.Insert(token, conn) {
		t.Fatal("duplicate insert must fail")
	}
	if table.Lookup(token) != conn {
		t.Fatal("lookup must return the registered connection")
	}
	if table.Len() != 1 {
		t.Fatalf("Len = %d", table.Len())
	}
	table.Remove(token)
	if table.Lookup(token) != nil || table.Len() != 0 {
		t.Fatal("remove did not clean up")
	}
}

func TestGenerateUniqueKeyAvoidsCollisions(t *testing.T) {
	table := NewTokenTable()
	rng := sim.NewRNG(4)
	seen := make(map[uint32]bool)
	for i := 0; i < 500; i++ {
		_, token := table.GenerateUniqueKey(rng)
		if seen[token] {
			t.Fatal("GenerateUniqueKey returned a token already in the table")
		}
		seen[token] = true
		table.Insert(token, nil)
	}
	if table.Len() != 500 {
		t.Fatalf("table should hold 500 tokens, has %d", table.Len())
	}
}
