package core

import (
	"mptcpgo/internal/buffer"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/pool"
)

// onSubflowData maps in-order subflow payload into the connection-level data
// sequence space using the received DSS mappings, verifying checksums where
// possible, and feeds the shared reassembly queue.
func (c *Connection) onSubflowData(s *Subflow, relSeq uint32, data []byte) {
	if c.closed || len(data) == 0 {
		return
	}
	if c.Fallback() {
		c.insertData(s, c.fallbackDataSeq(s, uint64(relSeq)), data)
		return
	}
	for len(data) > 0 {
		m, ok := s.findRxMapping(relSeq)
		if !ok {
			next, found := s.nextRxMappingAfter(relSeq)
			if !found {
				c.handleUnmappedData(s, relSeq, data)
				return
			}
			// Bytes without a mapping (a coalescing middlebox merged
			// segments and dropped one of the DSS options, §3.3.5): they are
			// acknowledged at the subflow level but not at the data level,
			// so the peer's connection-level retransmission recovers them.
			skip := int(next - relSeq)
			if skip >= len(data) {
				c.stats.UnmappedBytes += uint64(len(data))
				return
			}
			c.stats.UnmappedBytes += uint64(skip)
			data = data[skip:]
			relSeq += uint32(skip)
			continue
		}
		n := int(m.end() - relSeq)
		if n > len(data) {
			n = len(data)
		}
		chunk := data[:n]
		dataSeq := m.dataSeq + uint64(relSeq-m.subflowOffset)

		// The DSS checksum can only be verified when the mapping's bytes are
		// available in one piece (the common case: one mapping per segment).
		// A length change by a content-modifying middlebox also surfaces
		// here as a mapping/payload mismatch.
		if m.hasChecksum && relSeq == m.subflowOffset && n == m.length {
			wireSeq := c.remoteIDSN + 1 + packet.DataSeq(m.dataSeq)
			want := packet.DSSChecksum(wireSeq, m.subflowOffset, uint16(m.length), chunk)
			if want != m.checksum {
				s.csumFailures++
				c.stats.ChecksumFailures++
				c.onChecksumFailure(s)
				return
			}
		}

		c.insertData(s, dataSeq, chunk)
		data = data[n:]
		relSeq += uint32(n)
	}
	s.gcRxMappings(relSeq)
}

// fallbackDataSeq converts a subflow-relative offset into a data sequence
// number using the implicit mapping anchored when the connection fell back.
func (c *Connection) fallbackDataSeq(s *Subflow, relSeq uint64) uint64 {
	if relSeq < s.fallbackRxBase {
		return c.dataRcvNxt
	}
	return s.fallbackRxAnchor + (relSeq - s.fallbackRxBase)
}

// handleUnmappedData reacts to payload for which no mapping is (yet) known.
// If the subflow has never delivered a mapping and it is the connection's
// only subflow, the path is stripping DSS options entirely and the
// connection falls back to regular TCP (infinite mapping). Otherwise the
// bytes are simply not placed at the data level: they are acknowledged at the
// subflow level but not DATA_ACKed, so the sender's connection-level
// retransmission recovers them (§3.3.5 — this is what a coalescing middlebox
// that discarded one of the mappings causes).
func (c *Connection) handleUnmappedData(s *Subflow, relSeq uint32, data []byte) {
	if len(s.rxMappings) == 0 && len(c.subflows) <= 1 && c.dataRcvNxt == 0 {
		c.enterFallback("data received without a mapping", s)
		c.insertData(s, c.fallbackDataSeq(s, uint64(relSeq)), data)
		return
	}
	c.stats.UnmappedBytes += uint64(len(data))
}

// onChecksumFailure implements the §3.3.6 procedure: reset the subflow if
// others remain, otherwise fall back to regular TCP for the rest of the
// connection (signalling MP_FAIL to the peer).
func (c *Connection) onChecksumFailure(s *Subflow) {
	if len(c.usableSubflows()) > 1 {
		s.failSubflow("dss checksum failure")
		return
	}
	s.sendMPFail = true
	c.enterFallback("dss checksum failure on the only subflow", s)
	// Push the MP_FAIL out immediately.
	s.ep.SendAck()
}

// insertData places a chunk of connection-level data at dataSeq: in-order
// data goes straight to the receive queue, anything else to the shared
// out-of-order queue (§4.3).
func (c *Connection) insertData(s *Subflow, dataSeq uint64, data []byte) {
	end := dataSeq + uint64(len(data))
	if end <= c.dataRcvNxt {
		return // duplicate (e.g. opportunistic retransmission arriving late)
	}
	if dataSeq < c.dataRcvNxt {
		skip := c.dataRcvNxt - dataSeq
		data = data[skip:]
		dataSeq = c.dataRcvNxt
	}
	if dataSeq == c.dataRcvNxt {
		c.rcvBuf.Append(data)
		c.dataRcvNxt += uint64(len(data))
		for _, it := range c.ofo.PopContiguous(c.dataRcvNxt) {
			c.rcvBuf.Append(it.Data)
			c.dataRcvNxt = it.End()
			if n := c.ofoBySubflow[it.Subflow]; n > 0 {
				c.ofoBySubflow[it.Subflow] = maxInt(0, n-len(it.Data))
			}
			pool.Recycle(it.Data)
		}
		c.maybeConsumeRemoteDataFin()
		if c.OnReadable != nil {
			c.OnReadable()
		}
		return
	}
	c.ofo.Insert(buffer.Item{Seq: dataSeq, Data: data, Subflow: s.id})
	c.ofoBySubflow[s.id] += len(data)
}

// onRemoteDataFIN records the peer's DATA_FIN (the end of its data stream).
func (c *Connection) onRemoteDataFIN(finSeq uint64) {
	if c.remoteDataFin {
		return
	}
	c.remoteDataFin = true
	c.remoteDataFinSeq = finSeq
	c.maybeConsumeRemoteDataFin()
}

// maybeConsumeRemoteDataFin delivers EOF once every byte before the DATA_FIN
// has been received, and acknowledges the DATA_FIN.
func (c *Connection) maybeConsumeRemoteDataFin() {
	if !c.remoteDataFin || c.eofConsumed {
		return
	}
	if c.dataRcvNxt < c.remoteDataFinSeq {
		return
	}
	c.eofConsumed = true
	if !c.Fallback() {
		// The DATA_FIN occupies one data sequence number; acknowledge it.
		c.dataRcvNxt = c.remoteDataFinSeq + 1
		for _, s := range c.usableSubflows() {
			s.ep.SendAck()
			break
		}
	}
	if c.OnReadable != nil {
		c.OnReadable()
	}
	c.checkDone()
}

// sendWindowUpdate advertises the (grown) shared receive window on every
// usable subflow so a sender stalled against connection-level flow control
// resumes promptly.
func (c *Connection) sendWindowUpdate() {
	for _, s := range c.usableSubflows() {
		s.ep.ForceWindowUpdate()
	}
}
