package core

import (
	"fmt"
	"testing"
	"time"

	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
)

// TestDebugStall is a diagnostic harness kept skipped in normal runs; enable
// it with -run TestDebugStall -v when investigating transfer stalls.
func TestDebugStall(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic test")
	}
	h := newHarness(t, 2, netem.WiFi3GSpec())
	cli := DefaultConfig()
	cli.SendBufBytes = 1 << 20
	cli.RecvBufBytes = 1 << 20
	srv := cli
	total := 40 << 20

	received := 0
	var serverConn *Connection
	_, err := h.srvMgr.Listen(80, srv, func(c *Connection) {
		serverConn = c
		c.OnReadable = func() {
			for {
				data := c.Read(64 << 10)
				if len(data) == 0 {
					break
				}
				received += len(data)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := h.cliMgr.Dial(h.net.Client.Interfaces()[0], packet.Endpoint{Addr: h.net.ServerAddr(0), Port: 80}, cli)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 32<<10)
	sent := 0
	pump := func() {
		for sent < total {
			w := conn.Write(payload[:minInt(len(payload), total-sent)])
			if w == 0 {
				return
			}
			sent += w
		}
	}
	conn.OnEstablished = pump
	conn.OnWritable = pump

	for i := 1; i <= 12; i++ {
		if err := h.net.Sim.RunUntil(time.Duration(i) * 5 * time.Second); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("t=%v sent=%d received=%d dataUna=%d dataNxt=%d rwndLimit=%d sndBuf=%d inflight=%d effSndBuf=%d\n",
			h.net.Sim.Now(), sent, received, conn.dataUna, conn.dataNxt, conn.rwndLimit, conn.sndBuf.Len(), len(conn.inflight), conn.effectiveSendBuffer())
		for _, s := range conn.subflows {
			fmt.Printf("  client subflow %d state=%v cwnd=%d inflight=%d srtt=%v sendSpace=%d queued=%d peerWnd=%d established=%v failed=%v\n",
				s.id, s.ep.State(), s.ep.Cwnd(), s.ep.BytesInFlight(), s.ep.SRTT(), s.ep.SendSpace(), s.ep.QueuedBytes(), s.ep.PeerWindow(), s.established, s.failed)
		}
		if serverConn != nil {
			fmt.Printf("  server dataRcvNxt=%d rcvBuf=%d ofo=%d window=%d subflows=%d\n",
				serverConn.dataRcvNxt, serverConn.rcvBuf.Len(), serverConn.ofo.Bytes(), serverConn.receiveWindowWouldBe(), len(serverConn.subflows))
			for _, s := range serverConn.subflows {
				fmt.Printf("  server subflow %d state=%v rcvqueued=%d mappings=%d\n", s.id, s.ep.State(), s.ep.ReceiveQueuedBytes(), len(s.rxMappings))
			}
		}
		if received >= total {
			break
		}
	}
}
