package core

import (
	"errors"
	"fmt"
	"time"

	"mptcpgo/internal/buffer"
	"mptcpgo/internal/cc"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/probe"
	"mptcpgo/internal/sched"
	"mptcpgo/internal/sim"
	"mptcpgo/internal/tcp"
)

// Connection-level errors.
var (
	ErrAllSubflowsFailed = errors.New("mptcp: all subflows failed")
	ErrAborted           = errors.New("mptcp: connection aborted")
)

// ConnStats aggregates connection-level counters.
type ConnStats struct {
	BytesWritten     uint64
	BytesDelivered   uint64
	MappingsSent     uint64
	Reinjections     uint64
	OpportunisticRtx uint64
	Penalizations    uint64
	ChecksumFailures uint64
	UnmappedBytes    uint64
	Fallbacks        uint64
	SubflowsOpened   int
	ConnLevelRtx     uint64
}

// txMapping is one in-flight data sequence mapping (sent, not yet DATA_ACKed).
type txMapping struct {
	dataSeq      uint64
	length       int
	subflow      *Subflow
	sentAt       time.Duration
	lastReinject time.Duration
	reinjections int
	// sfOffsetEnd is the subflow-relative offset just past the mapping's
	// bytes on its original subflow; comparing it with the subflow's
	// cumulative acknowledgement detects data that was acknowledged at the
	// subflow level but never placed at the data level (a middlebox dropped
	// the mapping, §3.3.5).
	sfOffsetEnd uint64
}

func (m *txMapping) end() uint64 { return m.dataSeq + uint64(m.length) }

// Connection is one MPTCP connection: a byte stream striped over one or more
// TCP subflows, with connection-level sequence numbers, acknowledgements and
// flow control.
type Connection struct {
	mgr *Manager
	cfg Config
	sim *sim.Simulator

	isClient bool

	localKey    Key
	remoteKey   Key
	localToken  uint32
	remoteToken uint32
	localIDSN   packet.DataSeq
	remoteIDSN  packet.DataSeq

	// mptcpActive is true once MP_CAPABLE has been (apparently) negotiated;
	// fallback is true when the connection dropped to regular TCP semantics
	// (stripped options, checksum failure on the last subflow, ...).
	mptcpActive bool
	fallback    bool

	established bool
	closed      bool
	err         error

	ccGroup   *cc.CoupledGroup
	scheduler sched.Scheduler

	// Flight-recorder identity, copied from the manager at creation. probe
	// is nil when tracing is off; every emission site goes through the
	// nil-safe recorder methods.
	probe  *probe.Recorder
	member int
	connID int32

	subflows      []*Subflow
	nextSubflowID int

	// Scratch slices reused by the per-chunk scheduling hot path (see
	// usableSubflows and schedulerCandidates).
	usableScratch []*Subflow
	subsScratch   []*Subflow
	candScratch   []sched.Candidate
	// remoteAddrs are addresses learned through ADD_ADDR.
	remoteAddrs []packet.Endpoint
	// usedRemote tracks remote endpoints already used by a subflow.
	usedRemote map[packet.Endpoint]bool

	dialCfg struct {
		remote packet.Endpoint
		port   uint16
	}

	// ---- data-level send state (relative sequence numbers, 0-based) ----
	autotunedSndBuf int
	sndBuf          *buffer.ByteQueue
	dataUna         uint64
	dataNxt         uint64
	rwndLimit       uint64
	inflight        []*txMapping
	// mappingFree recycles txMapping structs popped by cumulative DATA_ACKs
	// (one mapping is created per transmitted chunk).
	mappingFree   []*txMapping
	dataFinQueued bool
	dataFinSent   bool
	dataFinAcked  bool
	dataFinSeq    uint64
	connRtx       *sim.Timer
	pumping       bool

	// ---- data-level receive state ----
	rcvBuf           *buffer.ByteQueue
	ofo              buffer.OfoQueue
	ofoBySubflow     map[int]int
	dataRcvNxt       uint64
	remoteDataFin    bool
	remoteDataFinSeq uint64
	eofConsumed      bool
	lastAdvertised   int

	stats ConnStats

	// Application callbacks (all optional).
	OnReadable           func()
	OnWritable           func()
	OnEstablished        func()
	OnClosed             func(error)
	OnSubflowEstablished func(*Subflow)
	OnFallback           func(reason string)
}

// newConnection builds the common parts of client and server connections.
func newConnection(mgr *Manager, cfg Config, isClient bool) *Connection {
	cfg = cfg.withDefaults()
	c := &Connection{
		mgr:          mgr,
		cfg:          cfg,
		sim:          mgr.host.Sim(),
		isClient:     isClient,
		scheduler:    sched.New(cfg.Scheduler),
		ccGroup:      cc.NewCoupledGroup(),
		sndBuf:       buffer.NewByteQueue(0),
		rcvBuf:       buffer.NewByteQueue(0),
		ofo:          buffer.NewOfoQueue(cfg.OfoAlgorithm),
		ofoBySubflow: make(map[int]int),
		usedRemote:   make(map[packet.Endpoint]bool),
		rwndLimit:    64 << 10,
	}
	if isClient && mgr.probeRec != nil {
		c.probe = mgr.probeRec
		c.member = mgr.probeMember
		c.connID = mgr.nextConnID
		mgr.nextConnID++
	}
	c.connRtx = c.sim.NewTimer(c.onConnRetransmitTimeout)
	return c
}

// ---------------------------------------------------------------------------
// Public accessors
// ---------------------------------------------------------------------------

// MPTCPActive reports whether multipath operation was negotiated and is still
// in use.
func (c *Connection) MPTCPActive() bool { return c.mptcpActive && !c.fallback }

// Fallback reports whether the connection fell back to regular TCP.
func (c *Connection) Fallback() bool { return c.fallback || !c.mptcpActive }

// Established reports whether the connection can carry data.
func (c *Connection) Established() bool { return c.established && !c.closed }

// Closed reports whether the connection has fully terminated.
func (c *Connection) Closed() bool { return c.closed }

// Err returns the terminal error, if any.
func (c *Connection) Err() error { return c.err }

// Subflows returns the connection's current subflows.
func (c *Connection) Subflows() []*Subflow { return c.subflows }

// LocalToken returns the connection's local token.
func (c *Connection) LocalToken() uint32 { return c.localToken }

// ReassemblySteps returns the cumulative number of search steps performed by
// the connection-level out-of-order queue; Figure 8 uses it (together with
// the micro-benchmarks in bench_test.go) as the receiver CPU-cost proxy.
func (c *Connection) ReassemblySteps() uint64 { return c.ofo.Steps() }

// OfoAlgorithmName returns the reassembly algorithm in use.
func (c *Connection) OfoAlgorithmName() string { return c.ofo.Name() }

// Stats returns a copy of the connection counters.
func (c *Connection) Stats() ConnStats { return c.stats }

// Config returns the connection configuration.
func (c *Connection) Config() Config { return c.cfg }

// SenderMemory returns the bytes currently held in the connection-level send
// queue (written but not yet DATA_ACKed) — the sender-side memory metric of
// Figure 5.
func (c *Connection) SenderMemory() int { return c.sndBuf.Len() }

// ReceiverMemory returns the bytes held in the connection-level receive and
// reassembly queues plus the subflow-level out-of-order queues — the
// receiver-side memory metric of Figure 5.
func (c *Connection) ReceiverMemory() int {
	n := c.rcvBuf.Len() + c.ofo.Bytes()
	for _, s := range c.subflows {
		n += s.ep.ReceiveQueuedBytes()
	}
	return n
}

// ---------------------------------------------------------------------------
// Application byte-stream API
// ---------------------------------------------------------------------------

// Write queues application data and returns the number of bytes accepted
// (bounded by the connection-level send buffer). It never blocks.
func (c *Connection) Write(data []byte) int {
	if c.closed || c.err != nil || c.dataFinQueued {
		return 0
	}
	space := c.sendBufferSpace()
	if space <= 0 {
		return 0
	}
	if len(data) > space {
		data = data[:space]
	}
	c.sndBuf.Append(data)
	c.stats.BytesWritten += uint64(len(data))
	c.pump()
	return len(data)
}

// sendBufferSpace returns the free space in the connection-level send buffer,
// honouring Mechanism 3's autotuned limit.
func (c *Connection) sendBufferSpace() int {
	return c.effectiveSendBuffer() - c.sndBuf.Len()
}

// effectiveSendBuffer implements Mechanism 3 (buffer autotuning): the send
// buffer grows toward 2·Σxᵢ·RTTmax but never beyond the configured maximum.
// Like the kernel's autotuning it only ever grows (shrinking it below the
// data already in flight would starve the connection into a smaller and
// smaller window).
func (c *Connection) effectiveSendBuffer() int {
	if !c.cfg.AutoTuneBuffers || c.Fallback() {
		return c.cfg.SendBufBytes
	}
	var rate float64 // bytes per second
	var rttMax time.Duration
	usable := 0
	for _, s := range c.subflows {
		if !s.Usable() {
			continue
		}
		usable++
		rtt := s.ep.SRTT()
		if rtt <= 0 {
			rtt = time.Millisecond
		}
		rate += float64(s.ep.Cwnd()) / rtt.Seconds()
		if rtt > rttMax {
			rttMax = rtt
		}
	}
	want := 128 << 10
	if usable > 0 && rttMax > 0 {
		if f := int(2 * rate * rttMax.Seconds()); f > want {
			want = f
		}
	}
	if want > c.autotunedSndBuf {
		c.autotunedSndBuf = want
	}
	return minInt(c.autotunedSndBuf, c.cfg.SendBufBytes)
}

// receiveWindow returns the connection-level receive window advertised on
// every subflow: the free space in the shared receive buffer (§3.3.1). The
// shared pool holds unread in-order data, connection-level out-of-order data
// and subflow-level out-of-order segments (whose data sequence numbers are
// not yet known), so all three count against the window.
func (c *Connection) receiveWindow() int {
	win := c.cfg.RecvBufBytes - c.receiveBufferUsed()
	if win < 0 {
		win = 0
	}
	c.lastAdvertised = win
	return win
}

func (c *Connection) receiveBufferUsed() int {
	used := c.rcvBuf.Len() + c.ofo.Bytes()
	for _, s := range c.subflows {
		if s.ep != nil {
			used += s.ep.ReceiveQueuedBytes()
		}
	}
	return used
}

// Read removes and returns up to max bytes of in-order connection-level data.
func (c *Connection) Read(max int) []byte {
	n := minInt(max, c.rcvBuf.Len())
	if n <= 0 {
		return nil
	}
	out := make([]byte, n)
	c.ReadInto(out)
	return out
}

// ReadInto copies up to len(p) bytes of in-order connection-level data into
// p, consuming them, and returns the number of bytes copied. Unlike Read it
// does not allocate (mptcpgo.Stream reads through it).
func (c *Connection) ReadInto(p []byte) int {
	if len(p) == 0 || c.rcvBuf.Len() == 0 {
		return 0
	}
	before := c.receiveWindowWouldBe()
	head := c.rcvBuf.HeadOffset()
	n := copy(p, c.rcvBuf.Peek(head, len(p)))
	c.rcvBuf.TrimTo(head + uint64(n))
	c.stats.BytesDelivered += uint64(n)
	// Window update: if reading freed a meaningful amount of the shared
	// buffer, tell the peer so a stalled sender can resume.
	after := c.receiveWindowWouldBe()
	if (before < c.mssEstimate() && after >= c.mssEstimate()) || after-before >= c.cfg.RecvBufBytes/4 {
		c.sendWindowUpdate()
	}
	return n
}

func (c *Connection) receiveWindowWouldBe() int {
	win := c.cfg.RecvBufBytes - c.receiveBufferUsed()
	if win < 0 {
		win = 0
	}
	return win
}

// ReadableBytes returns the number of bytes Read would return immediately.
func (c *Connection) ReadableBytes() int { return c.rcvBuf.Len() }

// EOF reports whether the peer has signalled the end of the data stream
// (DATA_FIN) and all data has been read.
func (c *Connection) EOF() bool { return c.eofConsumed && c.rcvBuf.Len() == 0 }

// WriteClosed reports whether the sending direction has been closed (Close
// was called and a DATA_FIN is queued or sent); further Writes return 0.
func (c *Connection) WriteClosed() bool { return c.dataFinQueued }

// Close closes the sending direction: a DATA_FIN is sent once all written
// data has been mapped to subflows (§3.4).
func (c *Connection) Close() {
	if c.closed || c.dataFinQueued {
		return
	}
	c.dataFinQueued = true
	c.pump()
}

// Abort terminates the connection immediately: every subflow is reset.
func (c *Connection) Abort() {
	if c.closed {
		return
	}
	for _, s := range c.subflows {
		s.ep.SendReset()
	}
	c.finish(ErrAborted)
}

func (c *Connection) abortFromPeer() {
	if c.closed {
		return
	}
	for _, s := range c.subflows {
		s.ep.SendReset()
	}
	c.finish(ErrReset)
}

// ErrReset mirrors the subflow-level reset error at the connection level.
var ErrReset = errors.New("mptcp: connection reset by peer")

// ---------------------------------------------------------------------------
// Sequence number translation
// ---------------------------------------------------------------------------

// wireDataSeq converts a relative (0-based) data sequence number of our own
// stream to the on-the-wire 64-bit value.
func (c *Connection) wireDataSeq(rel uint64) packet.DataSeq {
	return c.localIDSN + 1 + packet.DataSeq(rel)
}

// wireDataAck converts the connection-level cumulative receive point to the
// wire DATA_ACK value (it acknowledges the peer's stream).
func (c *Connection) wireDataAck() packet.DataSeq {
	return c.remoteIDSN + 1 + packet.DataSeq(c.dataRcvNxt)
}

// relDataSeqFromRemoteWire converts a wire data sequence number of the peer's
// stream to a relative offset.
func (c *Connection) relDataSeqFromRemoteWire(w packet.DataSeq) uint64 {
	return uint64(w - c.remoteIDSN - 1)
}

// relDataSeqFromLocalWire converts a wire DATA_ACK (which refers to our
// stream) to a relative offset.
func (c *Connection) relDataSeqFromLocalWire(w packet.DataSeq) uint64 {
	return uint64(w - c.localIDSN - 1)
}

// mssEstimate returns a representative MSS across subflows.
func (c *Connection) mssEstimate() int {
	for _, s := range c.subflows {
		if s.Usable() {
			return s.ep.EffectiveMSS()
		}
	}
	return 1460
}

// ---------------------------------------------------------------------------
// Subflow lifecycle
// ---------------------------------------------------------------------------

// newSubflow allocates the Subflow wrapper (the tcp.Endpoint is attached by
// the caller).
func (c *Connection) newSubflow(role SubflowRole, client bool) *Subflow {
	s := &Subflow{
		conn:    c,
		id:      c.nextSubflowID,
		addrID:  uint8(c.nextSubflowID),
		role:    role,
		client:  client,
		started: c.sim.Now(),
	}
	c.nextSubflowID++
	c.subflows = append(c.subflows, s)
	c.stats.SubflowsOpened++
	if c.probe != nil && client {
		c.probe.Emit(c.member, probe.KindSubflowSYN, c.connID, int32(s.id), int64(s.addrID), joinFlag(role))
	}
	return s
}

// joinFlag encodes the subflow role for event payloads.
func joinFlag(role SubflowRole) int64 {
	if role == RoleJoin {
		return 1
	}
	return 0
}

// onSubflowEstablished runs when a subflow completes its TCP handshake.
func (c *Connection) onSubflowEstablished(s *Subflow) {
	if c.closed {
		return
	}
	if c.probe != nil {
		c.probe.Emit(c.member, probe.KindSubflowEstablished, c.connID, int32(s.id), int64(s.addrID), joinFlag(s.role))
		c.watchSubflow(s)
	}
	if s.role == RoleInitial && !c.established {
		c.established = true
		if c.OnEstablished != nil {
			c.OnEstablished()
		}
		// Open additional subflows shortly after the first one settles.
		if c.isClient && c.MPTCPActive() {
			delay := c.cfg.AddSubflowDelay
			c.sim.Schedule(delay, c.openAdditionalSubflows)
		}
	}
	if s.role == RoleJoin && c.OnSubflowEstablished != nil {
		c.OnSubflowEstablished(s)
	}
	if s.role == RoleJoin && !c.isClient {
		// Joined subflows on the server side become immediately usable for
		// sending once validated (mpConfirmed set in OnSegmentReceived).
		s.established = true
	}
	c.pump()
}

// openAdditionalSubflows creates subflows for the local interfaces not yet in
// use, pairing each with the peer address advertised for it (or the address
// at the same index when the peer is simply multihomed). When
// SubflowsPerInterface is larger than one, several subflows (distinct source
// ports) are opened per interface.
func (c *Connection) openAdditionalSubflows() {
	if c.closed || !c.MPTCPActive() || !c.isClient {
		return
	}
	max := c.cfg.MaxSubflows
	perIface := c.cfg.SubflowsPerInterface
	if perIface < 1 {
		perIface = 1
	}
	ifaces := c.mgr.host.Interfaces()
	// Candidate remote endpoints: the one we dialed plus any advertised.
	remotes := append([]packet.Endpoint{c.dialCfg.remote}, c.remoteAddrs...)
	idx := 0
	for _, ifc := range ifaces {
		if !ifc.Attached() {
			continue
		}
		// In multi-host topologies an interface may face a different peer
		// entirely (another client, a different server); only interfaces
		// whose path terminates at the connection's peer can carry subflows.
		if !c.ifaceReachesPeer(ifc, remotes) {
			continue
		}
		have := c.subflowCountOnInterface(ifc)
		// Prefer the remote address with the same "index" as this interface
		// (pairwise paths); fall back to the dialed address.
		remote := c.dialCfg.remote
		if idx < len(remotes) {
			remote = remotes[idx]
		}
		if c.usedRemote[remote] && have == 0 && len(remotes) > idx+1 {
			remote = remotes[idx+1]
		}
		for have < perIface {
			if max > 0 && len(c.subflows) >= max {
				return
			}
			c.dialJoinSubflow(ifc, remote)
			have++
		}
		idx++
	}
}

// ifaceReachesPeer reports whether the interface's path terminates at a host
// owning one of the connection's candidate remote addresses. Two-host
// topologies always pass (every client interface faces the server), so the
// historical pairing heuristic above is unchanged there.
func (c *Connection) ifaceReachesPeer(ifc *netem.Interface, remotes []packet.Endpoint) bool {
	p := ifc.Path()
	if p == nil {
		return false
	}
	far := p.Peer(ifc)
	if far == nil {
		return false
	}
	farHost := far.Host()
	for _, r := range remotes {
		if farHost.InterfaceByAddr(r.Addr) != nil {
			return true
		}
	}
	return false
}

// subflowCountOnInterface counts subflows bound to the interface.
func (c *Connection) subflowCountOnInterface(ifc *netem.Interface) int {
	n := 0
	for _, s := range c.subflows {
		if s.ep != nil && s.ep.Interface() == ifc {
			n++
		}
	}
	return n
}

// subflowOnInterface reports whether a subflow already uses the interface.
func (c *Connection) subflowOnInterface(ifc *netem.Interface) bool {
	for _, s := range c.subflows {
		if s.ep != nil && s.ep.Interface() == ifc {
			return true
		}
	}
	return false
}

// watchSubflow registers the subflow with the flight recorder's time-series
// sampler. The closure reads live endpoint state on each tick and emits a
// quantized coupled-alpha transition event when the group's alpha moves; it
// deregisters itself (with one final sample) once the subflow is gone.
func (c *Connection) watchSubflow(s *Subflow) {
	lastAlpha := int64(-1)
	c.probe.Watch(c.member, c.connID, int32(s.id), func(out *probe.Sample) bool {
		ep := s.ep
		if ep == nil {
			return false
		}
		ctrl := ep.Controller()
		out.Cwnd = int64(ctrl.Cwnd())
		out.Ssthresh = int64(ctrl.Ssthresh())
		out.SRTT = ep.SRTT()
		out.RTO = ep.RTO()
		out.Inflight = int64(ep.BytesInFlight())
		out.SentBytes = int64(s.bytesSent)
		out.ReinjBytes = int64(s.reinjBytes)
		if coupled, ok := ctrl.(*cc.Coupled); ok {
			out.Alpha = coupled.Alpha()
			if q := int64(out.Alpha * 1000); q != lastAlpha {
				lastAlpha = q
				c.probe.Emit(c.member, probe.KindCCAlpha, c.connID, int32(s.id), q, int64(c.ccGroup.TotalCwnd()))
			}
		}
		return !s.failed && ep.State() != tcp.StateClosed
	})
}

// dialJoinSubflow opens an MP_JOIN subflow from the given interface.
func (c *Connection) dialJoinSubflow(ifc *netem.Interface, remote packet.Endpoint) {
	s := c.newSubflow(RoleJoin, true)
	s.localNonce = c.sim.RNG().Uint32()
	cfg := c.cfg.subflowConfig(true)
	cfg.CongestionControl = c.cfg.controllerFactory(c.ccGroup, true)
	if c.probe != nil {
		cfg.Probe = s
	}
	ep, err := tcp.Dial(ifc, remote, cfg, s)
	if err != nil {
		c.removeSubflow(s)
		return
	}
	s.ep = ep
	c.usedRemote[remote] = true
}

// onSubflowFailed handles a subflow that was reset by MPTCP itself (HMAC or
// checksum failure, lost options).
func (c *Connection) onSubflowFailed(s *Subflow, reason string) {
	if c.probe != nil {
		var inflight int64
		if s.ep != nil {
			inflight = int64(s.ep.BytesInFlight())
		}
		c.probe.Emit(c.member, probe.KindSubflowFailed, c.connID, int32(s.id), 0, inflight)
		c.probe.Count(c.member, probe.CtrSubflowDeaths, 1)
	}
	c.reinjectSubflowData(s)
	c.removeSubflow(s)
	if len(c.usableSubflows()) == 0 && !c.closed {
		if !c.fallback {
			c.finish(fmt.Errorf("%w: last failure: %s", ErrAllSubflowsFailed, reason))
		}
	}
	c.pump()
}

// onSubflowClosed handles the underlying endpoint reaching CLOSED.
func (c *Connection) onSubflowClosed(s *Subflow, err error) {
	s.failed = true
	if c.closed {
		return
	}
	if c.probe != nil {
		if err != nil {
			// Unexpected death (retransmission-limit teardown, reset): part
			// of the failure taxonomy, A=1 distinguishes it from an MPTCP
			// option-level failure.
			var inflight int64
			if s.ep != nil {
				inflight = int64(s.ep.BytesInFlight())
			}
			c.probe.Emit(c.member, probe.KindSubflowFailed, c.connID, int32(s.id), 1, inflight)
			c.probe.Count(c.member, probe.CtrSubflowDeaths, 1)
		} else {
			c.probe.Emit(c.member, probe.KindSubflowClosed, c.connID, int32(s.id), 0, 0)
		}
	}
	if err != nil {
		// Unexpected subflow death: make sure its unacknowledged data gets
		// retransmitted elsewhere.
		c.reinjectSubflowData(s)
	}
	remaining := 0
	for _, other := range c.subflows {
		if other != s && !other.failed {
			remaining++
		}
	}
	if remaining == 0 {
		c.maybeFinishAfterLastSubflow(err)
		return
	}
	c.removeSubflow(s)
	c.pump()
}

// maybeFinishAfterLastSubflow decides the terminal state once no subflows
// remain.
func (c *Connection) maybeFinishAfterLastSubflow(err error) {
	cleanSend := !c.dataFinQueued || c.dataFinAcked || (c.Fallback() && c.sndBuf.Len() == 0)
	cleanRecv := c.eofConsumed || !c.remoteDataFin || c.Fallback()
	if err == nil && cleanSend && cleanRecv {
		c.finish(nil)
		return
	}
	if err == nil {
		err = ErrAllSubflowsFailed
	}
	c.finish(err)
}

func (c *Connection) removeSubflow(s *Subflow) {
	for i, other := range c.subflows {
		if other == s {
			c.subflows = append(c.subflows[:i], c.subflows[i+1:]...)
			break
		}
	}
	if coupled, ok := s.ep.Controller().(*cc.Coupled); ok && coupled != nil {
		c.ccGroup.Remove(coupled)
	}
}

// usableSubflows returns the usable subflows in a scratch slice reused
// between calls: it runs several times per transmitted chunk, so it must not
// allocate. Callers may iterate the result but must not retain it across
// another usableSubflows call (schedulerCandidates keeps its own scratch for
// exactly that reason).
func (c *Connection) usableSubflows() []*Subflow {
	out := c.usableScratch[:0]
	for _, s := range c.subflows {
		if s.Usable() {
			out = append(out, s)
		}
	}
	c.usableScratch = out
	return out
}

// ---------------------------------------------------------------------------
// Address advertisement (§3.2) and mobility (§3.4)
// ---------------------------------------------------------------------------

// addrAdvertisements lists the ADD_ADDR options this host should send: one
// per additional local interface.
func (c *Connection) addrAdvertisements() []packet.AddAddrOption {
	var out []packet.AddAddrOption
	ifaces := c.mgr.host.Interfaces()
	for i, ifc := range ifaces {
		if i == 0 || !ifc.Attached() {
			continue // the primary address is already known to the peer
		}
		out = append(out, packet.AddAddrOption{
			AddrID: uint8(i),
			Addr:   ifc.Addr(),
			Port:   c.dialCfg.port,
		})
	}
	return out
}

// onRemoteAddressAdvertised records an ADD_ADDR from the peer and, on the
// client, considers opening a subflow toward it.
func (c *Connection) onRemoteAddressAdvertised(opt packet.AddAddrOption) {
	ep := packet.Endpoint{Addr: opt.Addr, Port: opt.Port}
	if ep.Port == 0 {
		ep.Port = c.dialCfg.remote.Port
	}
	for _, known := range c.remoteAddrs {
		if known == ep {
			return
		}
	}
	c.remoteAddrs = append(c.remoteAddrs, ep)
	if c.isClient && c.MPTCPActive() && c.established {
		c.sim.Schedule(time.Millisecond, c.openAdditionalSubflows)
	}
}

// onRemoteAddressRemoved closes subflows using a withdrawn address.
func (c *Connection) onRemoteAddressRemoved(opt packet.RemoveAddrOption) {
	for _, id := range opt.AddrIDs {
		for _, s := range c.subflows {
			if s.addrID == id && !s.failed {
				s.failed = true
				s.ep.SendReset()
				c.reinjectSubflowData(s)
			}
		}
	}
	c.pump()
}

// RemoveLocalInterface withdraws a local interface from the connection
// (mid-session interface loss, §3.4): every subflow bound to it is failed and
// its un-DATA-ACKed data reinjected onto surviving subflows, and a
// REMOVE_ADDR withdrawing the dead subflows' address IDs is queued on the
// survivors — the peer must learn of the loss through a working path because
// the dead one may swallow our RSTs.
func (c *Connection) RemoveLocalInterface(ifc *netem.Interface) {
	if c.closed {
		return
	}
	var victims []*Subflow
	for _, s := range c.subflows {
		if s.ep != nil && s.ep.Interface() == ifc && !s.failed {
			victims = append(victims, s)
		}
	}
	if len(victims) == 0 {
		return
	}
	removed := make([]uint8, 0, len(victims))
	for _, s := range victims {
		removed = append(removed, s.addrID)
		s.failed = true
		s.ep.SendReset()
		c.reinjectSubflowData(s)
		if c.probe != nil {
			c.probe.Emit(c.member, probe.KindAddrRemoved, c.connID, int32(s.id), int64(s.addrID), 0)
		}
	}
	if c.MPTCPActive() {
		for _, s := range c.usableSubflows() {
			s.pendingRemoveAddr = append(s.pendingRemoveAddr[:0], removed...)
			s.removeAddrRepeats = 3
			s.ep.ForceWindowUpdate()
		}
	}
	c.pump()
}

// RestoreLocalInterface reacts to an interface coming back (§3.4): the client
// re-opens subflows over it; the server re-arms its ADD_ADDR advertisements so
// the peer learns the address is usable again.
func (c *Connection) RestoreLocalInterface(ifc *netem.Interface) {
	if c.closed || !c.MPTCPActive() || !c.established {
		return
	}
	if c.probe != nil {
		c.probe.Emit(c.member, probe.KindAddrRestored, c.connID, -1, 0, 0)
	}
	if c.isClient {
		c.sim.Schedule(time.Millisecond, c.openAdditionalSubflows)
		return
	}
	if c.cfg.AdvertiseAddresses {
		for _, s := range c.usableSubflows() {
			if s.role == RoleInitial {
				s.addAddrRepeats = 3
				s.ep.ForceWindowUpdate()
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Fallback and termination
// ---------------------------------------------------------------------------

// enterFallback drops the connection to regular TCP semantics on its (single)
// remaining subflow (§3.3.6, §7).
func (c *Connection) enterFallback(reason string, keep *Subflow) {
	if c.fallback {
		return
	}
	c.fallback = true
	c.stats.Fallbacks++
	if c.probe != nil {
		var keepID int32 = -1
		if keep != nil {
			keepID = int32(keep.id)
		}
		c.probe.Emit(c.member, probe.KindFallback, c.connID, keepID, 0, 0)
		c.probe.Count(c.member, probe.CtrFallbacks, 1)
	}
	// Terminate every other subflow; the surviving one carries the rest of
	// the connection as plain TCP.
	for _, s := range c.subflows {
		if s != keep && !s.failed {
			s.failed = true
			s.ep.SendReset()
		}
	}
	if keep != nil {
		c.subflows = []*Subflow{keep}
	}
	// From the fallback point onward incoming bytes map implicitly onto the
	// data stream; anchor the implicit mapping at the current delivery
	// point.
	if keep != nil && keep.ep != nil {
		keep.fallbackRxBase = uint64(keep.ep.RelativeRcvNxt())
		keep.fallbackRxAnchor = c.dataRcvNxt
		keep.fallbackTxBase = keep.ep.QueuedPayloadBytes()
		keep.fallbackTxAnchor = c.dataNxt
	}
	if c.OnFallback != nil {
		c.OnFallback(reason)
	}
	c.pump()
}

// finish terminates the connection and releases resources.
func (c *Connection) finish(err error) {
	if c.closed {
		return
	}
	c.closed = true
	c.err = err
	c.connRtx.Stop()
	c.mgr.removeConnection(c)
	if c.OnClosed != nil {
		cb := c.OnClosed
		c.OnClosed = nil
		cb(err)
	}
}

// checkDone closes the subflows once both directions have completed and
// finishes the connection when every subflow is gone.
func (c *Connection) checkDone() {
	if c.closed {
		return
	}
	if c.Fallback() {
		// In fallback mode teardown follows the plain TCP FIN exchange on
		// the single subflow; nothing extra to do here.
		return
	}
	// Both directions are done: our DATA_FIN has been acknowledged and the
	// peer's DATA_FIN has been consumed. Close the subflows gracefully; the
	// connection finishes once the last one reaches CLOSED.
	if c.dataFinAcked && c.eofConsumed {
		for _, s := range c.subflows {
			if !s.failed && s.ep != nil && s.ep.State() != tcp.StateClosed {
				s.ep.Close()
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
