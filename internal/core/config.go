package core

import (
	"time"

	"mptcpgo/internal/buffer"
	"mptcpgo/internal/cc"
	"mptcpgo/internal/tcp"
)

// Config controls an MPTCP connection (and, through SubflowTemplate, its
// subflows). The zero value gives a working configuration with every
// mechanism from the paper enabled.
type Config struct {
	// EnableMPTCP requests MP_CAPABLE on the initial handshake. When false
	// the connection is plain single-path TCP (the baseline in every
	// experiment).
	EnableMPTCP bool

	// SubflowTemplate is the base configuration applied to every subflow
	// endpoint. Buffer fields are overridden by the connection-level buffer
	// configuration below.
	SubflowTemplate tcp.Config

	// SendBufBytes and RecvBufBytes bound the connection-level send queue
	// and the shared receive buffer (the "Rcv/Snd-Buffer size" swept in
	// Figures 4, 5, 6 and 9).
	SendBufBytes int
	RecvBufBytes int

	// Mechanisms from §4.2. The paper's "MPTCP+M1,2" corresponds to
	// OpportunisticRetransmit + PenalizeSlowSubflows; "regular MPTCP" has
	// all four disabled.
	OpportunisticRetransmit bool // Mechanism 1
	PenalizeSlowSubflows    bool // Mechanism 2
	AutoTuneBuffers         bool // Mechanism 3
	CwndCapping             bool // Mechanism 4

	// UseDSSChecksum protects mappings against content-modifying
	// middleboxes (§3.3.6). Disabling it models the datacenter configuration
	// of Figure 3.
	UseDSSChecksum bool

	// CoupledCC uses the linked-increases controller across subflows;
	// disabling it runs independent NewReno per subflow (ablation).
	CoupledCC bool

	// Scheduler selects the packet scheduler ("lowest-rtt", "round-robin",
	// "highest-space").
	Scheduler string

	// OfoAlgorithm selects the connection-level out-of-order reassembly
	// algorithm (§4.3, Figure 8).
	OfoAlgorithm buffer.Algorithm

	// MaxSubflows bounds how many subflows the connection opens (including
	// the initial one). Zero means "one per address pair".
	MaxSubflows int

	// SubflowsPerInterface opens several subflows per local interface
	// (distinct source ports). The receive-algorithm experiment (Figure 8)
	// uses 2 and 8 subflows over two physical links. Zero means one.
	SubflowsPerInterface int

	// PerSubflowReceiveWindow is an ablation of the §3.3.1 design
	// discussion: instead of sharing one receive buffer across subflows,
	// each subflow advertises its own slice of the buffer. This is the
	// "straightforward inheritance of TCP's receive window semantics" that
	// the paper shows can deadlock when a subflow fails silently.
	PerSubflowReceiveWindow bool

	// AdvertiseAddresses makes the server announce its additional addresses
	// with ADD_ADDR so a client behind a NAT can open subflows toward them
	// (§3.2).
	AdvertiseAddresses bool

	// AddSubflowDelay is how long after the connection is established the
	// client waits before opening additional subflows (the implementation
	// waits for the handshake to settle first).
	AddSubflowDelay time.Duration

	// ConnRetransmitInterval is the connection-level retransmission timer of
	// §3.3.5: if a mapping is not DATA_ACKed within this interval it is
	// reinjected on another subflow. Zero derives it from subflow RTOs.
	ConnRetransmitInterval time.Duration
}

// DefaultConfig returns the configuration used by the paper's "MPTCP+M1,2"
// setup with autotuning, checksums and the coupled controller enabled.
func DefaultConfig() Config {
	return Config{
		EnableMPTCP:             true,
		SendBufBytes:            512 << 10,
		RecvBufBytes:            512 << 10,
		OpportunisticRetransmit: true,
		PenalizeSlowSubflows:    true,
		AutoTuneBuffers:         true,
		CwndCapping:             false,
		UseDSSChecksum:          true,
		CoupledCC:               true,
		Scheduler:               "lowest-rtt",
		OfoAlgorithm:            buffer.AlgAllShortcuts,
		AdvertiseAddresses:      true,
	}
}

// RegularMPTCPConfig returns "regular MPTCP" as evaluated in Figure 4(a):
// none of the four sender-side mechanisms enabled.
func RegularMPTCPConfig() Config {
	cfg := DefaultConfig()
	cfg.OpportunisticRetransmit = false
	cfg.PenalizeSlowSubflows = false
	cfg.AutoTuneBuffers = false
	cfg.CwndCapping = false
	return cfg
}

// TCPOnlyConfig returns a configuration that never negotiates MPTCP; the
// connection behaves as single-path TCP on the dialing interface.
func TCPOnlyConfig() Config {
	cfg := DefaultConfig()
	cfg.EnableMPTCP = false
	return cfg
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.SendBufBytes <= 0 {
		c.SendBufBytes = 512 << 10
	}
	if c.RecvBufBytes <= 0 {
		c.RecvBufBytes = 512 << 10
	}
	if c.Scheduler == "" {
		c.Scheduler = "lowest-rtt"
	}
	if c.AddSubflowDelay <= 0 {
		c.AddSubflowDelay = 50 * time.Millisecond
	}
	return c
}

// subflowConfig derives the tcp.Config for one subflow of a connection. The
// connection layer always manages payload and flow control through the
// hooks, whether or not MPTCP ends up being negotiated (fallback connections
// simply use an implicit one-to-one mapping), so the endpoint is always
// configured for hook-managed operation.
func (c Config) subflowConfig(bool) tcp.Config {
	sc := c.SubflowTemplate
	// Subflow buffers are bounded by the connection-level buffers: the
	// subflow-level limits must never be the bottleneck for MPTCP, and for
	// plain TCP they are exactly the configured connection buffers.
	sc.SendBufBytes = c.SendBufBytes
	sc.RecvBufBytes = c.RecvBufBytes
	// With the per-subflow-window ablation the subflow endpoint itself
	// enforces the peer's advertised window, exactly like plain TCP would.
	sc.ConnectionLevelWindow = !c.PerSubflowReceiveWindow
	sc.PayloadToHooksOnly = true
	// The congestion-controller factory for MPTCP subflows is installed by
	// the connection because the coupled controller needs the shared group.
	sc.AutoTuneBuffers = false
	return sc
}

// controllerFactory builds the congestion-controller factory for a subflow.
func (c Config) controllerFactory(group *cc.CoupledGroup, mptcpActive bool) func(cc.Config) cc.Controller {
	if c.CoupledCC && mptcpActive && group != nil {
		return func(cfg cc.Config) cc.Controller { return group.NewController(cfg) }
	}
	return func(cfg cc.Config) cc.Controller { return cc.NewNewReno(cfg) }
}
