// Package core implements Multipath TCP as described in the paper: the
// MP_CAPABLE/MP_JOIN handshakes with keys, tokens and HMAC validation, data
// sequence mappings with optional checksums, explicit data-level
// acknowledgements and DATA_FIN, the shared connection-level receive buffer
// with the four reassembly algorithms, fallback to regular TCP, and the four
// sender-side mechanisms of §4.2 (opportunistic retransmission, penalizing
// slow subflows, buffer autotuning and congestion-window capping).
//
// The package builds on internal/tcp (one Endpoint per subflow) and presents
// a byte-stream API equivalent to the TCP one, so unmodified "applications"
// (the example programs, the HTTP workload generator) work over either.
package core

import (
	"crypto/hmac"
	"crypto/sha1"
	"encoding/binary"

	"mptcpgo/internal/packet"
	"mptcpgo/internal/sim"
)

// Key is the 64-bit key exchanged in MP_CAPABLE (§3.2); it authenticates the
// addition of new subflows for the lifetime of the connection.
type Key uint64

// GenerateKey draws a new random key.
func GenerateKey(rng *sim.RNG) Key { return Key(rng.Uint64()) }

// keyBytes returns the key in network byte order.
func (k Key) bytes() []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(k))
	return b[:]
}

// Token derives the 32-bit connection identifier from a key: the most
// significant 32 bits of the SHA-1 hash of the key, as in RFC 6824. MP_JOIN
// SYNs carry the receiver's token so the passive opener can locate the
// connection the new subflow belongs to.
func (k Key) Token() uint32 {
	sum := sha1.Sum(k.bytes())
	return binary.BigEndian.Uint32(sum[0:4])
}

// IDSN derives the initial data sequence number from a key: the least
// significant 64 bits of the SHA-1 hash of the key.
func (k Key) IDSN() packet.DataSeq {
	sum := sha1.Sum(k.bytes())
	return packet.DataSeq(binary.BigEndian.Uint64(sum[12:20]))
}

// joinHMAC computes the MP_JOIN authentication code: HMAC-SHA1 keyed with
// the concatenation of the two 64-bit keys over the two 32-bit nonces.
func joinHMAC(keyLocal, keyRemote Key, nonceLocal, nonceRemote uint32) []byte {
	mac := hmac.New(sha1.New, append(keyLocal.bytes(), keyRemote.bytes()...))
	var msg [8]byte
	binary.BigEndian.PutUint32(msg[0:4], nonceLocal)
	binary.BigEndian.PutUint32(msg[4:8], nonceRemote)
	mac.Write(msg[:])
	return mac.Sum(nil)
}

// truncatedHMAC returns the first n bytes of an HMAC value.
func truncatedHMAC(h []byte, n int) []byte {
	if len(h) < n {
		return h
	}
	return h[:n]
}

// hmacEqual compares two MACs in constant time semantics (length-checked).
func hmacEqual(a, b []byte) bool {
	return hmac.Equal(a, b)
}
