package core

import (
	"time"

	"mptcpgo/internal/buffer"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/probe"
	"mptcpgo/internal/sched"
)

// pump is the sender engine: it maps application data onto subflows according
// to the scheduler, enforces connection-level flow control and triggers the
// sender-side mechanisms of §4.2 when the connection is receive-window
// limited.
func (c *Connection) pump() {
	if c.pumping || c.closed || !c.established || c.err != nil {
		return
	}
	c.pumping = true
	defer func() { c.pumping = false }()

	if c.cfg.CwndCapping {
		c.applyCwndCapping()
	}

	if c.Fallback() {
		c.pumpFallback()
		return
	}

	c.recoverDroppedMappings()

	for {
		avail := int64(c.sndBuf.TailOffset()) - int64(c.dataNxt)
		if avail <= 0 {
			break
		}
		fcSpace := int64(c.rwndLimit) - int64(c.dataNxt)
		if fcSpace <= 0 {
			// Receive-window limited: this is where opportunistic
			// retransmission (M1) and penalization (M2) act.
			c.onReceiveWindowLimited()
			break
		}
		mss := c.mssEstimate()
		want := int(avail)
		if int64(want) > fcSpace {
			want = int(fcSpace)
		}
		if want > mss {
			want = mss
		}
		// Avoid connection-level silly-window syndrome: while data is in
		// flight, wait until a full-MSS chunk can be sent rather than
		// dribbling tiny mappings (the only exception is the final tail of
		// the stream).
		if want < mss && int(avail) >= mss && len(c.inflight) > 0 {
			if fcSpace <= int64(mss) {
				c.onReceiveWindowLimited()
			}
			break
		}
		cands, subs := c.schedulerCandidates()
		idx := c.scheduler.Pick(cands, want)
		if idx < 0 {
			break
		}
		sf := subs[idx]
		size := want
		if m := sf.ep.EffectiveMSS(); size > m {
			size = m
		}
		if sp := sf.ep.SendSpace(); size > sp {
			size = sp
		}
		if size <= 0 {
			break
		}
		data := c.sndBuf.Peek(c.dataNxt, size)
		if len(data) == 0 {
			break
		}
		if !c.sendMapping(sf, c.dataNxt, data, nil) {
			break
		}
		c.dataNxt += uint64(len(data))
	}

	c.maybeSendDataFin()
}

// schedulerCandidates builds the scheduler's view of the current subflows in
// scratch slices owned by the connection. The result is valid until the next
// schedulerCandidates call; it is kept separate from the usableSubflows
// scratch because sendMapping (called between Pick and the next rebuild)
// re-enters usableSubflows via the retransmission-timer arming.
func (c *Connection) schedulerCandidates() ([]sched.Candidate, []*Subflow) {
	subs := c.subsScratch[:0]
	cands := c.candScratch[:0]
	for _, s := range c.subflows {
		if s.Usable() {
			subs = append(subs, s)
			cands = append(cands, s)
		}
	}
	c.subsScratch, c.candScratch = subs, cands
	return cands, subs
}

// sendMapping transmits one chunk of connection-level data on a subflow with
// its data sequence mapping. When reinject is non-nil this is a
// retransmission of an existing mapping on a different subflow.
func (c *Connection) sendMapping(sf *Subflow, dataSeq uint64, data []byte, reinject *txMapping) bool {
	offset := uint32(sf.ep.QueuedPayloadBytes())
	// The DSS option comes from (and returns to) the subflow endpoint's free
	// list: ownership transfers with SendChunkWithOpt and the endpoint
	// recycles it once the mapping's bytes are fully acknowledged.
	dss := sf.ep.NewDSSOption()
	dss.HasDataACK = true
	dss.DataACK = c.wireDataAck()
	dss.HasMapping = true
	dss.DataSeq = c.wireDataSeq(dataSeq)
	dss.SubflowOffset = offset
	dss.Length = uint16(len(data))
	if c.cfg.UseDSSChecksum {
		dss.HasChecksum = true
		dss.Checksum = packet.DSSChecksum(dss.DataSeq, offset, dss.Length, data)
	}
	if !sf.ep.SendChunkWithOpt(data, dss) {
		return false
	}
	sf.chunksSent++
	sf.bytesSent += uint64(len(data))
	c.stats.MappingsSent++
	now := c.sim.Now()
	if reinject == nil {
		var m *txMapping
		if n := len(c.mappingFree); n > 0 {
			m = c.mappingFree[n-1]
			c.mappingFree = c.mappingFree[:n-1]
		} else {
			m = &txMapping{}
		}
		*m = txMapping{
			dataSeq:     dataSeq,
			length:      len(data),
			subflow:     sf,
			sentAt:      now,
			sfOffsetEnd: uint64(offset) + uint64(len(data)),
		}
		c.inflight = append(c.inflight, m)
	} else {
		reinject.lastReinject = now
		reinject.reinjections++
		sf.reinjectsSent++
		sf.reinjBytes += uint64(len(data))
		c.stats.Reinjections++
		if c.probe != nil {
			c.probe.Emit(c.member, probe.KindReinjection, c.connID, int32(sf.id), int64(len(data)), int64(reinject.reinjections))
			c.probe.Count(c.member, probe.CtrReinjections, 1)
		}
	}
	c.armConnRtx()
	return true
}

// pumpFallback sends queued data as plain TCP on the single surviving
// subflow.
func (c *Connection) pumpFallback() {
	sf := c.fallbackSubflow()
	if sf == nil || !sf.ep.IsEstablished() {
		return
	}
	for {
		avail := int64(c.sndBuf.TailOffset()) - int64(c.dataNxt)
		if avail <= 0 {
			break
		}
		fcSpace := int64(c.rwndLimit) - int64(c.dataNxt)
		if fcSpace <= 0 {
			break
		}
		size := int(avail)
		if int64(size) > fcSpace {
			size = int(fcSpace)
		}
		if m := sf.ep.EffectiveMSS(); size > m {
			size = m
		}
		if sp := sf.ep.SendSpace(); size > sp {
			size = sp
		}
		if size <= 0 {
			break
		}
		data := c.sndBuf.Peek(c.dataNxt, size)
		if len(data) == 0 || !sf.ep.SendChunk(data, nil) {
			break
		}
		c.dataNxt += uint64(len(data))
	}
	// In fallback mode the connection close is the plain subflow FIN.
	if c.dataFinQueued && !c.dataFinSent && c.dataNxt == c.sndBuf.TailOffset() {
		c.dataFinSent = true
		c.dataFinSeq = c.dataNxt
		sf.ep.Close()
	}
}

// fallbackSubflow returns the subflow carrying a fallen-back connection.
func (c *Connection) fallbackSubflow() *Subflow {
	for _, s := range c.subflows {
		if !s.failed {
			return s
		}
	}
	return nil
}

// onReceiveWindowLimited implements Mechanisms 1 and 2: when the shared
// receive window is full, opportunistically retransmit the mapping at the
// trailing edge of the window on a subflow that has congestion-window space,
// and penalize the subflow responsible for holding the window up.
func (c *Connection) onReceiveWindowLimited() {
	if len(c.inflight) == 0 {
		return
	}
	if !c.cfg.OpportunisticRetransmit && !c.cfg.PenalizeSlowSubflows {
		return
	}
	m := c.inflight[0]
	now := c.sim.Now()

	var fast *Subflow
	if c.cfg.OpportunisticRetransmit {
		cands, subs := c.schedulerCandidates()
		if idx := c.scheduler.Pick(cands, m.length); idx >= 0 {
			fast = subs[idx]
		}
		if fast != nil && fast != m.subflow {
			// Rate-limit reinjection of the same mapping to roughly once per
			// RTT of the fast path.
			if m.lastReinject == 0 || now-m.lastReinject >= fast.ep.SRTT() {
				data := c.sndBuf.Peek(m.dataSeq, m.length)
				if len(data) == m.length {
					if c.sendMapping(fast, m.dataSeq, data, m) {
						c.stats.OpportunisticRtx++
					}
				}
			}
		}
	}

	if c.cfg.PenalizeSlowSubflows {
		slow := m.subflow
		if slow != nil && slow.Usable() && slow != fast {
			if slow.lastPenalized == 0 || now-slow.lastPenalized >= slow.ep.SRTT() {
				slow.ep.Controller().ForceReduce()
				slow.lastPenalized = now
				c.stats.Penalizations++
			}
		}
	}
}

// applyCwndCapping implements Mechanism 4: when a subflow's smoothed RTT
// exceeds twice its base RTT, the path's queue holds more than a
// bandwidth-delay product of data; cap the congestion window near the BDP so
// memory is not wasted filling network buffers.
func (c *Connection) applyCwndCapping() {
	for _, s := range c.subflows {
		if !s.Usable() {
			continue
		}
		srtt := s.ep.SRTT()
		base := s.ep.BaseRTT()
		if base <= 0 || srtt <= 0 {
			continue
		}
		if srtt > 2*base {
			// Estimated BDP: (cwnd / srtt) * baseRTT; allow twice that.
			bdp := int(float64(s.ep.Cwnd()) * base.Seconds() / srtt.Seconds())
			cap := maxInt(2*s.ep.EffectiveMSS(), 2*bdp)
			s.ep.Controller().SetCwndCap(cap)
		} else {
			s.ep.Controller().SetCwndCap(0)
		}
	}
}

// maybeSendDataFin emits the DATA_FIN once all written data has been mapped
// (§3.4).
func (c *Connection) maybeSendDataFin() {
	if !c.dataFinQueued || c.dataFinSent || c.Fallback() {
		return
	}
	if c.dataNxt != c.sndBuf.TailOffset() {
		return
	}
	c.dataFinSeq = c.dataNxt
	c.dataNxt++
	c.dataFinSent = true
	// Carry the DATA_FIN on a pure ACK on every usable subflow; the
	// connection-level retransmission timer repeats it if lost.
	for _, s := range c.usableSubflows() {
		s.ep.SendAck()
	}
	c.armConnRtx()
}

// onDataAck processes a data-level cumulative acknowledgement (explicit
// DATA_ACK, or the subflow ACK standing in for it in fallback mode) together
// with the receive window carried on the same segment.
func (c *Connection) onDataAck(from *Subflow, relAck uint64, windowBytes int) {
	if c.closed {
		return
	}
	if c.Fallback() && from != nil {
		// Translate the subflow-level acknowledgement into the data stream.
		if relAck >= from.fallbackTxBase {
			relAck = from.fallbackTxAnchor + (relAck - from.fallbackTxBase)
		} else {
			relAck = c.dataUna
		}
	}
	if relAck > c.dataNxt {
		relAck = c.dataNxt
	}
	if c.cfg.PerSubflowReceiveWindow && c.MPTCPActive() {
		// With per-subflow windows (ablation) the subflow endpoints enforce
		// flow control themselves; the connection level only needs a loose
		// aggregate bound.
		windowBytes = c.cfg.RecvBufBytes
	}
	if limit := relAck + uint64(windowBytes); limit > c.rwndLimit {
		c.rwndLimit = limit
	}
	if relAck > c.dataUna {
		c.dataUna = relAck
		c.sndBuf.TrimTo(minUint64(c.dataUna, c.sndBuf.TailOffset()))
		freed := 0
		for freed < len(c.inflight) && c.inflight[freed].end() <= c.dataUna {
			c.mappingFree = append(c.mappingFree, c.inflight[freed])
			freed++
		}
		if freed > 0 {
			// Compact once for the batch so the slice's capacity is reused
			// instead of leaking off the front (re-slicing would cost one
			// allocation per mapping at steady state, per-pop compaction a
			// quadratic copy on large cumulative ACKs).
			c.inflight = buffer.CompactPrefix(c.inflight, freed)
		}
		if c.dataFinSent && !c.dataFinAcked && c.dataUna >= c.dataFinSeq+1 {
			c.dataFinAcked = true
			c.checkDone()
		}
		if len(c.inflight) == 0 && (!c.dataFinSent || c.dataFinAcked) {
			c.connRtx.Stop()
		} else {
			c.connRtx.Reset(c.connRtxInterval())
		}
		if c.OnWritable != nil && c.sendBufferSpace() > 0 && !c.dataFinQueued {
			c.OnWritable()
		}
	}
	c.pump()
}

// ---------------------------------------------------------------------------
// Connection-level retransmission (§3.3.5)
// ---------------------------------------------------------------------------

func (c *Connection) connRtxInterval() time.Duration {
	if c.cfg.ConnRetransmitInterval > 0 {
		return c.cfg.ConnRetransmitInterval
	}
	interval := 200 * time.Millisecond
	for _, s := range c.usableSubflows() {
		if rto := s.ep.RTO(); rto > interval {
			interval = rto
		}
	}
	return 2 * interval
}

func (c *Connection) armConnRtx() {
	if c.connRtx.Pending() {
		return
	}
	if len(c.inflight) == 0 && (!c.dataFinSent || c.dataFinAcked) {
		return
	}
	c.connRtx.Reset(c.connRtxInterval())
}

// onConnRetransmitTimeout reinjects the first un-DATA-ACKed mapping on the
// best available subflow: the sender frees connection-level memory only on
// DATA_ACK, so data whose DATA_ACK never arrives (failed subflow, dropped
// mapping) must eventually be retransmitted at the connection level.
func (c *Connection) onConnRetransmitTimeout() {
	if c.closed || c.Fallback() {
		return
	}
	if len(c.inflight) == 0 && (!c.dataFinSent || c.dataFinAcked) {
		return
	}
	if len(c.inflight) > 0 {
		m := c.inflight[0]
		cands, subs := c.schedulerCandidates()
		if idx := c.scheduler.Pick(cands, m.length); idx >= 0 {
			sf := subs[idx]
			data := c.sndBuf.Peek(m.dataSeq, m.length)
			if len(data) == m.length && c.sendMapping(sf, m.dataSeq, data, m) {
				c.stats.ConnLevelRtx++
			}
		}
	} else if c.dataFinSent && !c.dataFinAcked {
		for _, s := range c.usableSubflows() {
			s.ep.SendAck()
			break
		}
	}
	c.connRtx.Reset(c.connRtxInterval())
}

// recoverDroppedMappings reinjects mappings whose bytes have been
// acknowledged at the subflow level but not at the data level for more than a
// round-trip time: the receiver got the bytes but could not place them in the
// data stream, which happens when a middlebox coalesced segments and dropped
// one of the data sequence mappings (§3.3.5). Without this, such data would
// only be repaired by the (much slower) connection-level timeout.
func (c *Connection) recoverDroppedMappings() {
	if len(c.inflight) == 0 {
		return
	}
	// Only the mapping at the trailing edge of the window can be judged:
	// if its bytes have been acknowledged at the subflow level but the
	// data-level cumulative ACK has not moved past it for several round
	// trips, the receiver has the bytes but could not place them.
	m := c.inflight[0]
	sf := m.subflow
	if sf == nil || sf.ep == nil {
		return
	}
	if !sf.failed && uint64(sf.ep.RelativeSndUna()) < m.sfOffsetEnd {
		return // not yet subflow-acked; normal in-flight data
	}
	now := c.sim.Now()
	wait := 3 * sf.ep.SRTT()
	if wait < 30*time.Millisecond {
		wait = 30 * time.Millisecond
	}
	if now-m.sentAt < wait || (m.lastReinject != 0 && now-m.lastReinject < wait) {
		return
	}
	cands, subs := c.schedulerCandidates()
	idx := c.scheduler.Pick(cands, m.length)
	if idx < 0 {
		return
	}
	data := c.sndBuf.Peek(m.dataSeq, m.length)
	if len(data) == m.length {
		c.sendMapping(subs[idx], m.dataSeq, data, m)
	}
}

// reinjectSubflowData requeues the un-DATA-ACKed mappings that were sent on a
// failed subflow so they are retransmitted elsewhere promptly.
func (c *Connection) reinjectSubflowData(failed *Subflow) {
	if c.Fallback() {
		return
	}
	for _, m := range c.inflight {
		if m.subflow != failed {
			continue
		}
		cands, subs := c.schedulerCandidates()
		idx := c.scheduler.Pick(cands, m.length)
		if idx < 0 {
			// No subflow can take it right now; the connection-level
			// retransmission timer will retry.
			c.armConnRtx()
			continue
		}
		sf := subs[idx]
		if sf == failed {
			continue
		}
		data := c.sndBuf.Peek(m.dataSeq, m.length)
		if len(data) == m.length {
			c.sendMapping(sf, m.dataSeq, data, m)
		}
	}
}

func minUint64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
