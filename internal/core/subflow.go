package core

import (
	"time"

	"mptcpgo/internal/packet"
	"mptcpgo/internal/probe"
	"mptcpgo/internal/tcp"
)

// SubflowRole distinguishes the first subflow (MP_CAPABLE handshake) from
// additional subflows (MP_JOIN handshake).
type SubflowRole int

// Subflow roles.
const (
	RoleInitial SubflowRole = iota
	RoleJoin
)

// rxMapping is one data sequence mapping received on a subflow: it maps the
// subflow-relative byte range [SubflowOffset, SubflowOffset+Length) to the
// connection-level range starting at DataSeq (relative to the peer's IDSN).
type rxMapping struct {
	subflowOffset uint32
	dataSeq       uint64
	length        int
	hasChecksum   bool
	checksum      uint16
}

func (m rxMapping) end() uint32 { return m.subflowOffset + uint32(m.length) }

// Subflow is one TCP subflow of an MPTCP connection. It implements tcp.Hooks
// to attach MPTCP options to outgoing segments and to interpret them on
// arriving ones.
type Subflow struct {
	conn *Connection
	ep   *tcp.Endpoint

	id      int
	addrID  uint8
	role    SubflowRole
	client  bool
	backup  bool
	started time.Duration

	established bool
	failed      bool

	// Handshake state.
	localNonce  uint32
	remoteNonce uint32
	// mpConfirmed records that the peer has demonstrably received our
	// MP_CAPABLE/MP_JOIN third-ACK state, so the "repeat the option on data
	// until acknowledged" rule (§3.1) can stop.
	mpConfirmed bool
	// sawMPTCPAfterHandshake is used by the server-side fallback rule: if
	// the first non-SYN segment carries no MPTCP option, the path strips
	// options and the connection must drop to regular TCP.
	sawNonSYNSegment bool

	// Receiver-side mappings, kept sorted by subflow offset.
	rxMappings []rxMapping

	// addAddrRepeats counts how many more outgoing segments should carry the
	// ADD_ADDR advertisements (sent a few times for robustness).
	addAddrRepeats int

	// pendingRemoveAddr holds address IDs withdrawn by the local host
	// (interface removal, §3.4 mobility); removeAddrRepeats counts how many
	// more outgoing segments should carry the REMOVE_ADDR option — like
	// ADD_ADDR it is repeated a few times because it rides on a best-effort
	// segment.
	pendingRemoveAddr []uint8
	removeAddrRepeats int

	// lastPenalized rate-limits Mechanism 2 to once per subflow RTT.
	lastPenalized time.Duration

	// sendMPFail requests that the next outgoing segment carry an MP_FAIL
	// option (checksum-failure fallback signalling).
	sendMPFail bool

	// Fallback anchors: once the connection drops to regular TCP, subflow
	// byte offsets map implicitly onto the data stream relative to these
	// anchor points.
	fallbackRxBase   uint64
	fallbackRxAnchor uint64
	fallbackTxBase   uint64
	fallbackTxAnchor uint64

	// Stats.
	chunksSent    uint64
	bytesSent     uint64
	reinjectsSent uint64
	reinjBytes    uint64
	csumFailures  uint64
	unmappedBytes uint64
}

// Endpoint returns the underlying TCP endpoint.
func (s *Subflow) Endpoint() *tcp.Endpoint { return s.ep }

// ID returns the subflow's connection-local identifier.
func (s *Subflow) ID() int { return s.id }

// Role returns whether this is the initial or a joined subflow.
func (s *Subflow) Role() SubflowRole { return s.role }

// Established reports whether the subflow handshake completed.
func (s *Subflow) Established() bool { return s.established && !s.failed }

// ---------------------------------------------------------------------------
// sched.Candidate
// ---------------------------------------------------------------------------

// SRTT implements sched.Candidate.
func (s *Subflow) SRTT() time.Duration { return s.ep.SRTT() }

// SendSpace implements sched.Candidate.
func (s *Subflow) SendSpace() int { return s.ep.SendSpace() }

// Usable implements sched.Candidate.
func (s *Subflow) Usable() bool { return s.Established() && s.ep.IsEstablished() }

// Backup implements sched.Candidate.
func (s *Subflow) Backup() bool { return s.backup }

// ---------------------------------------------------------------------------
// tcp.Hooks: outgoing segments
// ---------------------------------------------------------------------------

// OnSegmentSent implements tcp.Hooks.
func (s *Subflow) OnSegmentSent(e *tcp.Endpoint, seg *packet.Segment, retransmission bool) {
	c := s.conn
	if c.probe != nil {
		c.probe.Count(c.member, probe.CtrSegments, 1)
		c.probe.Count(c.member, probe.CtrSegBytes, uint64(seg.WireLen()))
	}
	isSYN := seg.Flags.Has(packet.FlagSYN)

	if isSYN {
		s.addHandshakeOptions(seg, retransmission)
		return
	}
	if s.sendMPFail {
		s.sendMPFail = false
		seg.Options = append(seg.Options, &packet.MPFailOption{DataSeq: c.wireDataAck()})
	}
	if !c.mptcpActive || c.fallback {
		return
	}

	// Repeat MP_CAPABLE (with both keys) on the third ACK and on data until
	// we know the peer received it (§3.1). The repeated option is large
	// (20 bytes), so segments carrying it shed the timestamp option and the
	// DATA_ACK to stay within the 40-byte option space.
	handshakeRepeat := false
	if s.role == RoleInitial && s.client && !s.mpConfirmed {
		if seg.MPTCPOption(packet.SubMPCapable) == nil {
			seg.Options = append(seg.Options, &packet.MPCapableOption{
				Version:          0,
				ChecksumRequired: c.cfg.UseDSSChecksum,
				SenderKey:        uint64(c.localKey),
				ReceiverKey:      uint64(c.remoteKey),
				HasReceiverKey:   true,
			})
		}
		handshakeRepeat = true
	}

	// Third ACK of an MP_JOIN handshake carries the full-length HMAC; it is
	// only attached to segments without payload (it does not fit next to a
	// mapping) — the handshake's own third ACK is such a segment.
	if s.role == RoleJoin && s.client && !s.mpConfirmed && len(seg.Payload) == 0 {
		if seg.MPTCPOption(packet.SubMPJoin) == nil {
			mac := joinHMAC(c.localKey, c.remoteKey, s.localNonce, s.remoteNonce)
			seg.Options = append(seg.Options, &packet.MPJoinOption{
				Phase:      packet.JoinACK,
				AddrID:     s.addrID,
				SenderHMAC: mac,
			})
		}
		handshakeRepeat = true
	}

	// Every segment carries the current data-level cumulative ACK; if a DSS
	// option is already attached (a data chunk with its mapping), fold the
	// DATA_ACK into it, otherwise append a pure DATA_ACK DSS.
	if dss, ok := seg.MPTCPOption(packet.SubDSS).(*packet.DSSOption); ok && dss != nil {
		if !handshakeRepeat {
			dss.HasDataACK = true
			dss.DataACK = c.wireDataAck()
		} else {
			// The 20-byte MP_CAPABLE repeat does not fit next to a mapping
			// AND a DATA_ACK (48 > 40 option bytes). Shed the DATA_ACK — the
			// mapping must survive — bringing the option set to exactly the
			// 40-byte TCP option space; the first segment after the repeat
			// stops re-carries the cumulative DATA_ACK.
			dss.HasDataACK = false
		}
		s.maybeAttachDataFIN(dss)
	} else if !handshakeRepeat {
		dss := seg.AppendDSS()
		dss.HasDataACK = true
		dss.DataACK = c.wireDataAck()
		s.maybeAttachDataFIN(dss)
	}
	if handshakeRepeat {
		seg.RemoveOptions(func(o packet.Option) bool { return o.Kind() == packet.OptTimestamps })
	}

	// Withdraw removed local addresses for a few segments (§3.4).
	if s.removeAddrRepeats > 0 && len(s.pendingRemoveAddr) > 0 {
		ids := make([]uint8, len(s.pendingRemoveAddr))
		copy(ids, s.pendingRemoveAddr)
		seg.Options = append(seg.Options, &packet.RemoveAddrOption{AddrIDs: ids})
		s.removeAddrRepeats--
		if s.removeAddrRepeats == 0 {
			s.pendingRemoveAddr = nil
		}
	}

	// Advertise additional server addresses for a few segments (§3.2).
	if s.addAddrRepeats > 0 {
		for _, adv := range c.addrAdvertisements() {
			opt := adv
			seg.Options = append(seg.Options, &opt)
		}
		s.addAddrRepeats--
	}

	// If the option set no longer fits, drop the ADD_ADDRs first, then give
	// up on everything but the DSS (defensive; should not happen with our
	// option sizes).
	if !packet.FitsOptionSpace(seg.Options) {
		seg.RemoveOptions(func(o packet.Option) bool { return o.Subtype() == packet.SubAddAddr })
	}
}

// maybeAttachDataFIN marks the DSS with the DATA_FIN signal while the
// connection-level FIN is outstanding (§3.4).
func (s *Subflow) maybeAttachDataFIN(dss *packet.DSSOption) {
	c := s.conn
	if !c.dataFinSent || c.dataFinAcked {
		return
	}
	if dss.HasMapping && dss.Length > 0 {
		// Only a mapping that ends exactly at the end of the data stream may
		// carry the DATA_FIN flag; flagging an arbitrary (e.g. retransmitted)
		// mapping would tell the receiver the stream ends early.
		end := c.relDataSeqFromLocalWire(dss.DataSeq) + uint64(dss.Length)
		if end == c.dataFinSeq {
			dss.DataFIN = true
		}
		return
	}
	// A pure DATA_FIN carries a zero-length mapping pointing at the final
	// data sequence number so the receiver learns where the data stream ends
	// even if it arrives before the last data.
	dss.DataFIN = true
	dss.HasMapping = true
	dss.DataSeq = c.wireDataSeq(c.dataFinSeq)
	dss.SubflowOffset = 0
	dss.Length = 0
}

// addHandshakeOptions attaches MP_CAPABLE / MP_JOIN to SYN and SYN/ACK
// segments.
func (s *Subflow) addHandshakeOptions(seg *packet.Segment, retransmission bool) {
	c := s.conn
	if !c.cfg.EnableMPTCP || c.fallback {
		return
	}
	// Per §3.1, a retransmitted SYN omits MP_CAPABLE so the connection can
	// proceed as regular TCP if a middlebox silently eats SYNs with new
	// options.
	if retransmission && s.client && s.role == RoleInitial {
		return
	}
	switch s.role {
	case RoleInitial:
		if !c.mptcpActive && !s.client {
			return
		}
		seg.Options = append(seg.Options, &packet.MPCapableOption{
			Version:          0,
			ChecksumRequired: c.cfg.UseDSSChecksum,
			SenderKey:        uint64(c.localKey),
		})
	case RoleJoin:
		if s.client {
			seg.Options = append(seg.Options, &packet.MPJoinOption{
				Phase:         packet.JoinSYN,
				AddrID:        s.addrID,
				Backup:        s.backup,
				ReceiverToken: c.remoteToken,
				SenderNonce:   s.localNonce,
			})
		} else {
			mac := joinHMAC(c.localKey, c.remoteKey, s.localNonce, s.remoteNonce)
			seg.Options = append(seg.Options, &packet.MPJoinOption{
				Phase:       packet.JoinSYNACK,
				AddrID:      s.addrID,
				Backup:      s.backup,
				SenderHMAC:  truncatedHMAC(mac, 8),
				SenderNonce: s.localNonce,
			})
		}
	}
}

// ---------------------------------------------------------------------------
// tcp.Hooks: incoming segments
// ---------------------------------------------------------------------------

// OnSegmentReceived implements tcp.Hooks.
func (s *Subflow) OnSegmentReceived(e *tcp.Endpoint, seg *packet.Segment) {
	c := s.conn
	isSYN := seg.Flags.Has(packet.FlagSYN)

	if isSYN {
		s.handleHandshakeOptions(seg)
		return
	}

	// Server-side robustness rule (§3.1): if MPTCP was negotiated on the
	// handshake but the first non-SYN segment from the client arrives
	// without any MPTCP option, a middlebox is stripping options from data
	// packets; drop to regular TCP. The rule applies only to the passive
	// opener — the active opener may legitimately receive option-less
	// segments (e.g. ACKs generated by an on-path proxy).
	if !s.sawNonSYNSegment {
		s.sawNonSYNSegment = true
		if !s.client && c.mptcpActive && s.role == RoleInitial && !seg.HasMPTCP() {
			c.enterFallback("mptcp options stripped after handshake", s)
		}
	}

	// Track the peer's data-level window even in fallback mode, where the
	// subflow acknowledgement stands in for the DATA_ACK.
	windowBytes := int(seg.Window)
	if !isSYN {
		windowBytes <<= uint(e.PeerWindowScale())
	}

	if !c.mptcpActive || c.fallback {
		relAck := uint64(e.RelativeSndUna())
		if seg.Flags.Has(packet.FlagACK) {
			// RelativeSndUna is pre-ACK-processing; derive from the segment.
			relAck = s.relativeAck(seg)
		}
		c.onDataAck(s, relAck, windowBytes)
	}

	for _, o := range seg.Options {
		if o.Kind() != packet.OptMPTCP {
			continue
		}
		switch opt := o.(type) {
		case *packet.MPCapableOption:
			// Third ACK (or data) repeating both keys confirms the client
			// received our SYN/ACK key.
			if !s.client && opt.HasReceiverKey {
				s.mpConfirmed = true
			}
		case *packet.MPJoinOption:
			if opt.Phase == packet.JoinACK && !s.client {
				expected := joinHMAC(c.remoteKey, c.localKey, s.remoteNonce, s.localNonce)
				if !hmacEqual(opt.SenderHMAC, expected) {
					s.failSubflow("mp_join hmac validation failed")
					return
				}
				s.mpConfirmed = true
				s.established = true
			}
		case *packet.DSSOption:
			s.mpConfirmed = true
			s.handleDSS(opt, windowBytes)
		case *packet.AddAddrOption:
			c.onRemoteAddressAdvertised(*opt)
		case *packet.RemoveAddrOption:
			c.onRemoteAddressRemoved(*opt)
		case *packet.MPPrioOption:
			s.backup = opt.Backup
		case *packet.MPFailOption:
			c.enterFallback("peer signalled MP_FAIL (checksum failure)", s)
		case *packet.FastcloseOption:
			c.abortFromPeer()
		}
	}
}

// relativeAck converts the segment's cumulative acknowledgement into an
// offset from the first payload byte we sent on this subflow.
func (s *Subflow) relativeAck(seg *packet.Segment) uint64 {
	d := seg.Ack.DiffFrom(s.ep.ISS().Add(1))
	if d < 0 {
		return 0
	}
	return uint64(d)
}

// handleDSS records a received data sequence signal.
func (s *Subflow) handleDSS(opt *packet.DSSOption, windowBytes int) {
	c := s.conn
	if opt.HasDataACK {
		c.onDataAck(s, c.relDataSeqFromLocalWire(opt.DataACK), windowBytes)
	}
	if opt.HasMapping && opt.Length > 0 {
		m := rxMapping{
			subflowOffset: opt.SubflowOffset,
			dataSeq:       c.relDataSeqFromRemoteWire(opt.DataSeq),
			length:        int(opt.Length),
			hasChecksum:   opt.HasChecksum,
			checksum:      opt.Checksum,
		}
		s.insertRxMapping(m)
	}
	if opt.DataFIN {
		finSeq := c.relDataSeqFromRemoteWire(opt.DataSeq)
		if opt.HasMapping && opt.Length > 0 {
			finSeq += uint64(opt.Length)
		}
		c.onRemoteDataFIN(finSeq)
	}
}

// insertRxMapping stores a mapping, ignoring exact duplicates (TSO-style
// splitters copy the same option onto several segments).
func (s *Subflow) insertRxMapping(m rxMapping) {
	for i := range s.rxMappings {
		if s.rxMappings[i].subflowOffset == m.subflowOffset && s.rxMappings[i].length == m.length {
			return
		}
	}
	s.rxMappings = append(s.rxMappings, m)
	// Keep sorted by subflow offset; mappings mostly arrive in order so the
	// insertion sort step is short.
	for i := len(s.rxMappings) - 1; i > 0; i-- {
		if s.rxMappings[i-1].subflowOffset <= s.rxMappings[i].subflowOffset {
			break
		}
		s.rxMappings[i-1], s.rxMappings[i] = s.rxMappings[i], s.rxMappings[i-1]
	}
}

// findRxMapping returns the mapping covering the given subflow offset.
func (s *Subflow) findRxMapping(offset uint32) (rxMapping, bool) {
	for _, m := range s.rxMappings {
		if offset >= m.subflowOffset && offset < m.end() {
			return m, true
		}
	}
	return rxMapping{}, false
}

// nextRxMappingAfter returns the lowest mapping offset greater than the given
// offset, used to skip unmapped bytes (coalescing middleboxes).
func (s *Subflow) nextRxMappingAfter(offset uint32) (uint32, bool) {
	best := uint32(0)
	found := false
	for _, m := range s.rxMappings {
		if m.subflowOffset > offset && (!found || m.subflowOffset < best) {
			best = m.subflowOffset
			found = true
		}
	}
	return best, found
}

// gcRxMappings discards mappings whose subflow bytes have been fully
// delivered.
func (s *Subflow) gcRxMappings(deliveredUpTo uint32) {
	kept := s.rxMappings[:0]
	for _, m := range s.rxMappings {
		if m.end() > deliveredUpTo {
			kept = append(kept, m)
		}
	}
	s.rxMappings = kept
}

// handleHandshakeOptions processes options on SYN and SYN/ACK segments.
func (s *Subflow) handleHandshakeOptions(seg *packet.Segment) {
	c := s.conn
	isSYNACK := seg.Flags.Has(packet.FlagACK)
	switch s.role {
	case RoleInitial:
		if s.client && isSYNACK {
			opt, _ := seg.MPTCPOption(packet.SubMPCapable).(*packet.MPCapableOption)
			if opt == nil {
				// SYN/ACK without MP_CAPABLE: either the server does not
				// support MPTCP or a middlebox stripped the option; fall
				// back to regular TCP (§3.1).
				c.mptcpActive = false
				c.enterFallback("no MP_CAPABLE in SYN/ACK", s)
				return
			}
			c.remoteKey = Key(opt.SenderKey)
			c.remoteToken = c.remoteKey.Token()
			c.remoteIDSN = c.remoteKey.IDSN()
			c.mptcpActive = true
			if opt.ChecksumRequired {
				c.cfg.UseDSSChecksum = true
			}
		}
	case RoleJoin:
		if s.client && isSYNACK {
			opt, _ := seg.MPTCPOption(packet.SubMPJoin).(*packet.MPJoinOption)
			if opt == nil {
				s.failSubflow("no MP_JOIN in SYN/ACK")
				return
			}
			s.remoteNonce = opt.SenderNonce
			expected := truncatedHMAC(joinHMAC(c.remoteKey, c.localKey, s.remoteNonce, s.localNonce), 8)
			if !hmacEqual(opt.SenderHMAC, expected) {
				s.failSubflow("mp_join hmac validation failed (SYN/ACK)")
				return
			}
			s.established = true
		}
	}
}

// failSubflow resets a subflow that failed MPTCP validation or lost its
// MPTCP options mid-stream; the connection continues on other subflows.
func (s *Subflow) failSubflow(reason string) {
	if s.failed {
		return
	}
	s.failed = true
	s.ep.SendReset()
	s.conn.onSubflowFailed(s, reason)
}

// ---------------------------------------------------------------------------
// tcp.Hooks: delivery, state, window
// ---------------------------------------------------------------------------

// OnDataDelivered implements tcp.Hooks: in-order subflow payload is mapped
// into the connection-level sequence space.
func (s *Subflow) OnDataDelivered(e *tcp.Endpoint, relSeq uint32, data []byte) {
	s.conn.onSubflowData(s, relSeq, data)
}

// OnStateChange implements tcp.Hooks.
func (s *Subflow) OnStateChange(e *tcp.Endpoint, old, new tcp.State) {
	c := s.conn
	switch new {
	case tcp.StateEstablished:
		s.established = true
		c.onSubflowEstablished(s)
	case tcp.StateCloseWait:
		// Peer sent a subflow FIN: in fallback mode that is the end of the
		// data stream. RelativeRcvNxt already counts the FIN's own sequence
		// number, so the data stream ends one byte earlier.
		if c.Fallback() {
			rel := uint64(e.RelativeRcvNxt())
			if rel > 0 {
				rel--
			}
			c.onRemoteDataFIN(c.fallbackDataSeq(s, rel))
		}
	case tcp.StateClosed:
		c.onSubflowClosed(s, e.Err())
	}
}

// OnSendSpaceAvailable implements tcp.Hooks.
func (s *Subflow) OnSendSpaceAvailable(e *tcp.Endpoint) {
	s.conn.pump()
}

// AdvertiseWindow implements tcp.Hooks: subflows advertise the shared
// connection-level receive window (§3.3.1). With the PerSubflowReceiveWindow
// ablation, each subflow instead advertises its own slice of the buffer
// (inheriting TCP's per-flow window semantics), which is the design the
// paper rejects because it deadlocks when a subflow fails silently.
func (s *Subflow) AdvertiseWindow(e *tcp.Endpoint) (int, bool) {
	c := s.conn
	if c.cfg.PerSubflowReceiveWindow && c.MPTCPActive() {
		share := c.cfg.RecvBufBytes / maxInt(1, len(c.subflows))
		used := e.ReceiveQueuedBytes() + c.ofoBySubflow[s.id]
		win := share - used
		if win < 0 {
			win = 0
		}
		return win, true
	}
	if !c.mptcpActive && !c.fallback {
		return 0, false
	}
	return c.receiveWindow(), true
}

// ---------------------------------------------------------------------------
// tcp.ProbeSink: endpoint telemetry forwarded to the flight recorder
// ---------------------------------------------------------------------------
//
// These are only ever invoked when the connection has a recorder attached
// (the endpoint's Probe config field is set iff c.probe != nil), so they
// forward unconditionally.

// OnEndpointRTO implements tcp.ProbeSink.
func (s *Subflow) OnEndpointRTO(e *tcp.Endpoint, backoff int, rto time.Duration) {
	c := s.conn
	c.probe.Emit(c.member, probe.KindRTO, c.connID, int32(s.id), int64(backoff), int64(rto))
	c.probe.Count(c.member, probe.CtrRTOs, 1)
}

// OnEndpointFastRetransmit implements tcp.ProbeSink.
func (s *Subflow) OnEndpointFastRetransmit(e *tcp.Endpoint) {
	c := s.conn
	c.probe.Emit(c.member, probe.KindFastRetransmit, c.connID, int32(s.id), 0, 0)
	c.probe.Count(c.member, probe.CtrFastRtx, 1)
}

// OnEndpointCCState implements tcp.ProbeSink.
func (s *Subflow) OnEndpointCCState(e *tcp.Endpoint, state tcp.CCState) {
	c := s.conn
	var k probe.Kind
	switch state {
	case tcp.CCSlowStart:
		k = probe.KindCCSlowStart
	case tcp.CCRecovery:
		k = probe.KindCCRecovery
	default:
		k = probe.KindCCAvoidance
	}
	c.probe.Emit(c.member, k, c.connID, int32(s.id), int64(e.Cwnd()), int64(e.Controller().Ssthresh()))
}
