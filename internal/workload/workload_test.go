package workload

import (
	"math"
	"testing"
	"time"

	"mptcpgo/internal/sim"
)

// meanGap draws n gaps from a fresh stream of p and returns their mean.
func meanGap(p ArrivalProcess, seed uint64, n int) time.Duration {
	rng := sim.NewRNG(seed)
	stream := p.Thin(1) // independent copy with fresh phase state
	var total time.Duration
	for i := 0; i < n; i++ {
		total += stream.Next(rng)
	}
	return total / time.Duration(n)
}

// TestPoissonMeanRate pins the satellite requirement: under a fixed seed the
// Poisson inter-arrival mean matches the configured rate within tolerance.
func TestPoissonMeanRate(t *testing.T) {
	for _, rate := range []float64{10, 200, 5000} {
		got := meanGap(Poisson(rate), 42, 50000).Seconds()
		want := 1 / rate
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("poisson(%g): mean gap %.6fs, want %.6fs ±2%%", rate, got, want)
		}
	}
}

// TestFixedRateIsExact checks the degenerate process needs no RNG and is
// perfectly spaced.
func TestFixedRateIsExact(t *testing.T) {
	p := FixedRate(50)
	if gap := p.Next(nil); gap != 20*time.Millisecond {
		t.Fatalf("fixed(50/s) gap = %v, want 20ms", gap)
	}
}

// TestOnOffMeanRate checks the duty-cycled long-run rate: peak scaled by
// on/(on+off).
func TestOnOffMeanRate(t *testing.T) {
	p := OnOff(400, 250*time.Millisecond, 750*time.Millisecond)
	if want := 100.0; math.Abs(p.Rate()-want) > 1e-9 {
		t.Fatalf("onoff Rate() = %g, want %g", p.Rate(), want)
	}
	got := meanGap(p, 42, 200000).Seconds()
	want := 1 / p.Rate()
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("onoff mean gap %.6fs, want %.6fs ±5%%", got, want)
	}
}

// TestThinScalesRate checks the determinism-by-thinning contract: a thinned
// stream carries exactly the fraction of the rate, and two streams with the
// same seed draw identical schedules regardless of when they were thinned.
func TestThinScalesRate(t *testing.T) {
	root := Poisson(1000)
	th := root.Thin(0.25)
	if got := th.Rate(); math.Abs(got-250) > 1e-9 {
		t.Fatalf("thinned rate %g, want 250", got)
	}
	a, b := root.Thin(0.1), root.Thin(0.1)
	rngA, rngB := sim.NewRNG(99), sim.NewRNG(99)
	for i := 0; i < 1000; i++ {
		if ga, gb := a.Next(rngA), b.Next(rngB); ga != gb {
			t.Fatalf("draw %d: thinned streams diverge (%v vs %v)", i, ga, gb)
		}
	}
}

// TestSizeDistMeans checks every distribution's sample mean against its
// declared Mean under a fixed seed.
func TestSizeDistMeans(t *testing.T) {
	dists := []struct {
		d   SizeDist
		tol float64
	}{
		{FixedSize(32 << 10), 0},
		{Lognormal(10, 1, 0), 0.03},
		{BoundedPareto(1.2, 4<<10, 1<<20), 0.05},
		{WebMix(), 0.05},
	}
	for _, tc := range dists {
		rng := sim.NewRNG(42)
		const n = 200000
		var total float64
		for i := 0; i < n; i++ {
			s := tc.d.Sample(rng)
			if s < 1 {
				t.Fatalf("%s: sample %d < 1 byte", tc.d.Name(), s)
			}
			total += float64(s)
		}
		got, want := total/n, tc.d.Mean()
		if tc.tol == 0 {
			if got != want {
				t.Errorf("%s: mean %.1f, want exactly %.1f", tc.d.Name(), got, want)
			}
			continue
		}
		if math.Abs(got-want)/want > tc.tol {
			t.Errorf("%s: sample mean %.1f vs declared %.1f (tol %.0f%%)", tc.d.Name(), got, want, tc.tol*100)
		}
	}
}

// TestBoundedParetoRange checks draws stay in [lo, hi] and actually use the
// tail (heavy-tailed: some draws far above the mean).
func TestBoundedParetoRange(t *testing.T) {
	d := BoundedPareto(1.2, 4<<10, 1<<20)
	rng := sim.NewRNG(3)
	sawTail := false
	for i := 0; i < 100000; i++ {
		s := d.Sample(rng)
		if s < 4<<10 || s > 1<<20 {
			t.Fatalf("pareto draw %d outside [4KB, 1MB]", s)
		}
		if s > 512<<10 {
			sawTail = true
		}
	}
	if !sawTail {
		t.Error("pareto never drew from the tail above 512KB in 100k samples")
	}
}

// TestParseRoundTrips covers the CLI parsers, including rejection of
// malformed specs.
func TestParseRoundTrips(t *testing.T) {
	for _, spec := range []string{"webmix", "fixed:32768", "lognormal:10,1.5", "pareto:1.2,4096,1048576"} {
		if _, err := ParseSizeDist(spec); err != nil {
			t.Errorf("ParseSizeDist(%q): %v", spec, err)
		}
	}
	for _, spec := range []string{"fixed:-1", "fixed:x", "lognormal:1", "pareto:0,1,2", "pareto:1.2,10,5", "nope"} {
		if _, err := ParseSizeDist(spec); err == nil {
			t.Errorf("ParseSizeDist(%q) accepted a bad spec", spec)
		}
	}
	for _, spec := range []string{"poisson", "fixed", "onoff", "onoff:100,900"} {
		p, err := ParseArrival(spec, 50)
		if err != nil {
			t.Errorf("ParseArrival(%q): %v", spec, err)
			continue
		}
		if math.Abs(p.Rate()-50) > 1e-9 {
			t.Errorf("ParseArrival(%q) rate %g, want 50", spec, p.Rate())
		}
	}
	if _, err := ParseArrival("warp", 50); err == nil {
		t.Error("ParseArrival accepted an unknown process")
	}
	if _, err := ParseArrival("poisson", 0); err == nil {
		t.Error("ParseArrival accepted rate 0")
	}
}
