package workload

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"mptcpgo/internal/sim"
)

// SizeDist draws per-flow transfer sizes in bytes. Implementations are
// stateless, so one value may serve any number of streams; every draw comes
// from the caller's RNG.
type SizeDist interface {
	// Name identifies the distribution and its parameters for result
	// metadata ("pareto(1.20, 4.0KB..1.0MB)").
	Name() string
	// Sample draws one flow size (always >= 1 byte).
	Sample(rng *sim.RNG) int
	// Mean returns the distribution's expected size in bytes, used for
	// offered-load accounting (offered bits/s = rate * Mean * 8).
	Mean() float64
}

// FixedSize returns a degenerate distribution: every flow transfers exactly
// n bytes.
func FixedSize(n int) SizeDist {
	if n <= 0 {
		n = 64 << 10
	}
	return fixedSize(n)
}

type fixedSize int

func (d fixedSize) Name() string        { return fmt.Sprintf("fixed(%s)", fmtSize(float64(d))) }
func (d fixedSize) Sample(*sim.RNG) int { return int(d) }
func (d fixedSize) Mean() float64       { return float64(d) }

// Lognormal returns a lognormal size distribution: ln(size) ~ N(mu, sigma²),
// the classic fit for web-object bodies. Samples are clamped to [1, cap]
// (cap <= 0 means 64 MB) so one extreme draw cannot dominate a run.
func Lognormal(mu, sigma float64, capBytes int) SizeDist {
	if capBytes <= 0 {
		capBytes = 64 << 20
	}
	return &lognormal{mu: mu, sigma: sigma, cap: capBytes}
}

type lognormal struct {
	mu, sigma float64
	cap       int
}

func (d *lognormal) Name() string {
	return fmt.Sprintf("lognormal(mu=%.2f, sigma=%.2f)", d.mu, d.sigma)
}

func (d *lognormal) Sample(rng *sim.RNG) int {
	// Box-Muller with a fixed two draws per sample keeps the RNG consumption
	// schedule independent of the values drawn.
	u1, u2 := rng.Float64(), rng.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return clampSize(math.Exp(d.mu+d.sigma*z), d.cap)
}

func (d *lognormal) Mean() float64 {
	m := math.Exp(d.mu + d.sigma*d.sigma/2)
	if c := float64(d.cap); m > c {
		return c
	}
	return m
}

// BoundedPareto returns a heavy-tailed bounded-Pareto distribution on
// [lo, hi] with shape alpha — the canonical model for flow sizes where most
// flows are mice and a few elephants carry most of the bytes (alpha in
// (1, 2) gives finite mean, very high variance).
func BoundedPareto(alpha float64, lo, hi int) SizeDist {
	if alpha <= 0 {
		alpha = 1.2
	}
	if lo <= 0 {
		lo = 4 << 10
	}
	if hi <= lo {
		hi = lo * 256
	}
	d := &boundedPareto{alpha: alpha, lo: float64(lo), hi: float64(hi)}
	d.la = math.Pow(d.lo, alpha)
	d.ha = math.Pow(d.hi, alpha)
	d.invAlpha = 1 / alpha
	return d
}

type boundedPareto struct {
	alpha, lo, hi float64
	// la, ha and invAlpha are lo^alpha, hi^alpha and 1/alpha, precomputed so
	// Sample's inverse-CDF costs one Pow instead of three.
	la, ha, invAlpha float64
}

func (d *boundedPareto) Name() string {
	return fmt.Sprintf("pareto(%.2f, %s..%s)", d.alpha, fmtSize(d.lo), fmtSize(d.hi))
}

func (d *boundedPareto) Sample(rng *sim.RNG) int {
	u := rng.Float64()
	// Inverse CDF of the bounded Pareto.
	x := math.Pow(-(u*d.ha-u*d.la-d.ha)/(d.ha*d.la), -d.invAlpha)
	return clampSize(x, int(d.hi))
}

func (d *boundedPareto) Mean() float64 {
	a, l, h := d.alpha, d.lo, d.hi
	if a == 1 {
		return h * l / (h - l) * math.Log(h/l)
	}
	la := math.Pow(l, a)
	return la / (1 - math.Pow(l/h, a)) * a / (a - 1) *
		(1/math.Pow(l, a-1) - 1/math.Pow(h, a-1))
}

// webMixEntry is one bucket of the empirical web-mix table.
type webMixEntry struct {
	weight float64
	size   int
}

// webMixTable is an empirical web-page object mix: mostly small objects
// (markup, icons, scripts), a band of images, and a thin tail of large
// downloads. Weights sum to 1.
var webMixTable = []webMixEntry{
	{0.40, 2 << 10},
	{0.24, 8 << 10},
	{0.20, 32 << 10},
	{0.10, 128 << 10},
	{0.05, 512 << 10},
	{0.01, 4 << 20},
}

// WebMix returns the empirical web-object mix: a discrete table whose mean
// is ~64 KB but whose top bucket (1% at 4 MB) carries a third of the bytes.
func WebMix() SizeDist { return webMix{} }

type webMix struct{}

func (webMix) Name() string { return "webmix" }

func (webMix) Sample(rng *sim.RNG) int {
	u := rng.Float64()
	for _, e := range webMixTable {
		if u < e.weight {
			return e.size
		}
		u -= e.weight
	}
	return webMixTable[len(webMixTable)-1].size
}

func (webMix) Mean() float64 {
	var m float64
	for _, e := range webMixTable {
		m += e.weight * float64(e.size)
	}
	return m
}

// ParseSizeDist builds a distribution from its CLI spec:
//
//	fixed:<bytes> | lognormal:<mu>,<sigma> | pareto:<alpha>,<lo>,<hi> | webmix
func ParseSizeDist(spec string) (SizeDist, error) {
	kind, args, _ := strings.Cut(spec, ":")
	switch kind {
	case "webmix", "":
		return WebMix(), nil
	case "fixed":
		n, err := strconv.Atoi(args)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("workload: fixed size dist wants a positive byte count, got %q", args)
		}
		return FixedSize(n), nil
	case "lognormal":
		parts := strings.Split(args, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("workload: lognormal wants mu,sigma, got %q", args)
		}
		mu, err1 := strconv.ParseFloat(parts[0], 64)
		sigma, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil || sigma < 0 {
			return nil, fmt.Errorf("workload: bad lognormal parameters %q", args)
		}
		return Lognormal(mu, sigma, 0), nil
	case "pareto":
		parts := strings.Split(args, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("workload: pareto wants alpha,lo,hi, got %q", args)
		}
		alpha, err1 := strconv.ParseFloat(parts[0], 64)
		lo, err2 := strconv.Atoi(parts[1])
		hi, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil || alpha <= 0 || lo <= 0 || hi <= lo {
			return nil, fmt.Errorf("workload: bad pareto parameters %q", args)
		}
		return BoundedPareto(alpha, lo, hi), nil
	}
	return nil, fmt.Errorf("workload: unknown size distribution %q (want fixed:<bytes>, lognormal:<mu>,<sigma>, pareto:<alpha>,<lo>,<hi> or webmix)", kind)
}

// clampSize rounds a continuous sample to a whole byte count in [1, cap].
func clampSize(x float64, cap int) int {
	if !(x >= 1) { // NaN-safe
		return 1
	}
	if cap > 0 && x > float64(cap) {
		return cap
	}
	return int(x)
}

// fmtSize renders a byte count compactly for Name strings.
func fmtSize(b float64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", b/(1<<10))
	}
	return fmt.Sprintf("%.0fB", b)
}
