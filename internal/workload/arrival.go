// Package workload is the deterministic traffic-generation layer: arrival
// processes decide *when* flows start, size distributions decide *how much*
// each flow transfers. Everything draws from an explicit sim.RNG handed in by
// the caller, so a workload is a pure function of (process parameters, seed)
// — the property the fleet engine's byte-identical merge relies on.
//
// Open-loop semantics: unlike the closed-loop pools (a fixed client
// population where the next request waits for the previous one), an arrival
// process keeps injecting flows at its configured rate no matter how far the
// system has fallen behind. That is what makes overload observable: offered
// load is set by the process, not by the system's completion rate.
//
// Determinism by thinning: a fleet-wide process is never sampled centrally.
// Each arrival point (client host) owns an independent thinned copy —
// Thin(1/N) — driven by an RNG derived from the root seed and the point's
// global index via sim.DeriveSeed. The union of the thinned streams carries
// the root rate, and no stream depends on how points are partitioned into
// shards or scheduled across workers.
package workload

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"mptcpgo/internal/sim"
)

// ArrivalProcess generates successive inter-arrival gaps for one stream of
// flows. Implementations may be stateful (on/off burst phases), so a process
// value must not be shared between streams — Thin returns an independent
// copy even at fraction 1.
type ArrivalProcess interface {
	// Name identifies the process family and its parameters for result
	// metadata ("poisson(200.0/s)").
	Name() string
	// Next draws the gap until the next arrival using the stream's RNG.
	Next(rng *sim.RNG) time.Duration
	// Rate returns the long-run mean arrival rate in flows per second.
	Rate() float64
	// Thin returns an independent process carrying fraction f (0 < f <= 1]
	// of this process's offered rate, with fresh phase state. Sharded
	// drivers use it to split a fleet-wide process across arrival points.
	Thin(f float64) ArrivalProcess
}

// FixedRate returns a deterministic constant-gap process: exactly rate
// arrivals per second, evenly spaced. The RNG is not consumed.
func FixedRate(rate float64) ArrivalProcess {
	return &fixedRate{rate: positiveRate(rate)}
}

type fixedRate struct {
	rate float64
}

func (p *fixedRate) Name() string  { return fmt.Sprintf("fixed(%.1f/s)", p.rate) }
func (p *fixedRate) Rate() float64 { return p.rate }
func (p *fixedRate) Next(*sim.RNG) time.Duration {
	return time.Duration(float64(time.Second) / p.rate)
}
func (p *fixedRate) Thin(f float64) ArrivalProcess {
	return &fixedRate{rate: p.rate * thinFraction(f)}
}

// Poisson returns a memoryless process with exponentially distributed gaps:
// the open-loop arrival model of independent users (mean rate arrivals per
// second).
func Poisson(rate float64) ArrivalProcess {
	return &poisson{rate: positiveRate(rate)}
}

type poisson struct {
	rate float64
}

func (p *poisson) Name() string  { return fmt.Sprintf("poisson(%.1f/s)", p.rate) }
func (p *poisson) Rate() float64 { return p.rate }
func (p *poisson) Next(rng *sim.RNG) time.Duration {
	return time.Duration(rng.Exp(float64(time.Second) / p.rate))
}
func (p *poisson) Thin(f float64) ArrivalProcess {
	return &poisson{rate: p.rate * thinFraction(f)}
}

// OnOff returns a bursty two-phase process: during an on-phase (mean duration
// on) arrivals are Poisson at peak flows per second; off-phases (mean
// duration off) are silent. Phase durations are exponential, so the long-run
// rate is peak * on/(on+off). It models flash crowds and periodic batch
// traffic that a plain Poisson process smooths away.
func OnOff(peak float64, on, off time.Duration) ArrivalProcess {
	if on <= 0 {
		on = 500 * time.Millisecond
	}
	if off <= 0 {
		off = 500 * time.Millisecond
	}
	return &onOff{peak: positiveRate(peak), on: on, off: off}
}

type onOff struct {
	peak     float64
	on, off  time.Duration
	burstRem time.Duration // remaining budget of the current on-phase
}

func (p *onOff) Name() string {
	return fmt.Sprintf("onoff(%.1f/s peak, %v on, %v off)", p.peak, p.on, p.off)
}

func (p *onOff) Rate() float64 {
	return p.peak * float64(p.on) / float64(p.on+p.off)
}

func (p *onOff) Next(rng *sim.RNG) time.Duration {
	gap := time.Duration(rng.Exp(float64(time.Second) / p.peak))
	var silent time.Duration
	// Consume on-phase budget; whenever it runs out before the next arrival,
	// insert a silent off-phase and start a fresh burst.
	for gap > p.burstRem {
		gap -= p.burstRem
		silent += p.burstRem
		silent += time.Duration(rng.Exp(float64(p.off)))
		p.burstRem = time.Duration(rng.Exp(float64(p.on)))
	}
	p.burstRem -= gap
	return silent + gap
}

func (p *onOff) Thin(f float64) ArrivalProcess {
	// Thinning scales the burst intensity, not the phase cadence: every
	// thinned stream still bursts on the same on/off time scales.
	return &onOff{peak: p.peak * thinFraction(f), on: p.on, off: p.off}
}

// ParseArrival builds a process from its CLI spec:
//
//	poisson | fixed | onoff | onoff:<on_ms>,<off_ms>
//
// rate is the process's long-run mean in flows per second (for onoff the
// peak is chosen so the duty cycle averages to rate).
func ParseArrival(spec string, rate float64) (ArrivalProcess, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("workload: arrival rate %g must be positive", rate)
	}
	kind, args, _ := strings.Cut(spec, ":")
	switch kind {
	case "", "poisson":
		return Poisson(rate), nil
	case "fixed":
		return FixedRate(rate), nil
	case "onoff":
		on, off := 500*time.Millisecond, 500*time.Millisecond
		if args != "" {
			parts := strings.Split(args, ",")
			if len(parts) != 2 {
				return nil, fmt.Errorf("workload: onoff wants on_ms,off_ms, got %q", args)
			}
			onMs, err1 := strconv.ParseFloat(parts[0], 64)
			offMs, err2 := strconv.ParseFloat(parts[1], 64)
			if err1 != nil || err2 != nil || onMs <= 0 || offMs <= 0 {
				return nil, fmt.Errorf("workload: bad onoff phases %q", args)
			}
			on = time.Duration(onMs * float64(time.Millisecond))
			off = time.Duration(offMs * float64(time.Millisecond))
		}
		// Scale the burst intensity so the duty-cycled mean equals rate.
		peak := rate * float64(on+off) / float64(on)
		return OnOff(peak, on, off), nil
	}
	return nil, fmt.Errorf("workload: unknown arrival process %q (want poisson, fixed or onoff[:on_ms,off_ms])", kind)
}

func positiveRate(rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("workload: non-positive arrival rate %g", rate))
	}
	return rate
}

func thinFraction(f float64) float64 {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("workload: thinning fraction %g outside (0, 1]", f))
	}
	return f
}
