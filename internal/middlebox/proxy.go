package middlebox

import (
	"bytes"

	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
)

// ProactiveACKer models a transparent performance-enhancing proxy that
// acknowledges data on behalf of the receiver as it passes. The study found
// that 26–33% of paths have boxes that will not correctly pass ACKs for data
// they have not seen; proactive ACKing is also the behaviour that makes
// payload-encoded DATA_ACKs unsafe (§3.3.3) because the proxy treats them as
// ordinary payload.
//
// Like a real performance-enhancing proxy, the element takes responsibility
// for the data it acknowledges: it keeps a copy of acked segments and
// retransmits them when the real receiver's duplicate ACKs reveal a hole
// (otherwise end-to-end recovery would be impossible, since the sender
// believes the data was delivered).
type ProactiveACKer struct {
	// Acked counts proxy-generated acknowledgements.
	Acked int
	// Retransmitted counts proxy-driven retransmissions.
	Retransmitted int
	// ackState tracks the highest sequence acked per flow.
	ackState map[packet.FourTuple]packet.SeqNum
	// buffered holds copies of acked payload segments per flow, keyed by
	// their starting sequence number.
	buffered map[packet.FourTuple]map[packet.SeqNum]*packet.Segment
	// dupCounts tracks repeated receiver ACK values (hole indication).
	dupCounts map[packet.FourTuple]map[packet.SeqNum]int
}

// NewProactiveACKer creates the element.
func NewProactiveACKer() *ProactiveACKer {
	return &ProactiveACKer{
		ackState:  make(map[packet.FourTuple]packet.SeqNum),
		buffered:  make(map[packet.FourTuple]map[packet.SeqNum]*packet.Segment),
		dupCounts: make(map[packet.FourTuple]map[packet.SeqNum]int),
	}
}

// Name implements netem.Box.
func (p *ProactiveACKer) Name() string { return "proactive-ack" }

// Process implements netem.Box.
func (p *ProactiveACKer) Process(ctx netem.BoxContext, dir netem.Direction, seg *packet.Segment) []*packet.Segment {
	if len(seg.Payload) > 0 && !seg.Flags.Has(packet.FlagSYN) && !seg.Flags.Has(packet.FlagRST) {
		key := seg.Tuple()
		end := seg.EndSeq()
		if p.buffered[key] == nil {
			p.buffered[key] = make(map[packet.SeqNum]*packet.Segment)
		}
		p.buffered[key][seg.Seq] = seg.Clone()
		// Acknowledge only data that is contiguous from the proxy's point of
		// view: a proxy never acknowledges segments it has not seen, so a
		// loss upstream of the proxy leaves normal end-to-end recovery in
		// charge.
		prev, seen := p.ackState[key]
		if !seen {
			p.ackState[key] = end
		} else if seg.Seq.LessThanEq(prev) && prev.LessThan(end) {
			p.ackState[key] = end
		}
		if cur := p.ackState[key]; !seen || prev.LessThan(cur) {
			// Proxy-generated ACKs go through the segment pool like any other
			// traffic so their lifecycle matches endpoint segments.
			ack := packet.NewSegment()
			ack.Src, ack.Dst = seg.Dst, seg.Src
			ack.Seq, ack.Ack = seg.Ack, cur
			ack.Flags = packet.FlagACK
			ack.Window = 65535
			p.Acked++
			ctx.Inject(dir.Reverse(), ack)
		}
		return forward(seg)
	}

	// Reverse-direction ACKs from the real receiver: use them to garbage
	// collect the proxy buffer and to detect holes that need a proxy
	// retransmission.
	if seg.Flags.Has(packet.FlagACK) && len(seg.Payload) == 0 {
		flow := seg.Tuple().Reverse() // the data-carrying flow this ACK refers to
		if buf := p.buffered[flow]; buf != nil {
			for start, held := range buf {
				if held.EndSeq().LessThanEq(seg.Ack) {
					delete(buf, start)
				}
			}
			if p.dupCounts[flow] == nil {
				p.dupCounts[flow] = make(map[packet.SeqNum]int)
			}
			p.dupCounts[flow][seg.Ack]++
			if p.dupCounts[flow][seg.Ack] == 3 {
				if held, ok := buf[seg.Ack]; ok {
					p.Retransmitted++
					p.dupCounts[flow][seg.Ack] = 0
					ctx.Inject(dir.Reverse(), held.Clone())
				}
			}
		}
	}
	return forward(seg)
}

// PayloadRewriter models an application-level gateway (e.g. a NAT's FTP
// helper) that rewrites payload content and adjusts subsequent sequence and
// acknowledgement numbers so the end systems see a consistent stream
// (§3.3.6). When the replacement has a different length than the original,
// every later segment's sequence number shifts — which silently corrupts any
// subflow-byte-to-data-sequence mapping and is detectable only via the DSS
// checksum.
type PayloadRewriter struct {
	// Old is the byte pattern to replace in AtoB payloads.
	Old []byte
	// New is the replacement.
	New []byte
	// Rewritten counts segments whose payload was modified.
	Rewritten int

	// shift tracks the cumulative sequence shift applied per flow.
	shift map[packet.FourTuple]int32
}

// NewPayloadRewriter replaces old with new in client-to-server payloads.
func NewPayloadRewriter(old, new string) *PayloadRewriter {
	return &PayloadRewriter{
		Old:   []byte(old),
		New:   []byte(new),
		shift: make(map[packet.FourTuple]int32),
	}
}

// Name implements netem.Box.
func (p *PayloadRewriter) Name() string { return "payload-rewrite" }

// Process implements netem.Box.
func (p *PayloadRewriter) Process(_ netem.BoxContext, dir netem.Direction, seg *packet.Segment) []*packet.Segment {
	if dir == netem.AtoB {
		key := seg.Tuple()
		shift := p.shift[key]
		// Apply the accumulated shift from earlier rewrites so the stream
		// stays consistent end to end.
		seg.Seq = seg.Seq.Add(uint32(shift))
		if len(seg.Payload) > 0 && len(p.Old) > 0 && bytes.Contains(seg.Payload, p.Old) {
			before := len(seg.Payload)
			seg.Payload = bytes.ReplaceAll(seg.Payload, p.Old, p.New)
			p.Rewritten++
			p.shift[key] = shift + int32(len(seg.Payload)-before)
		}
		return forward(seg)
	}
	// Fix up acknowledgements on the return path so the sender's view of its
	// own (unmodified) stream remains consistent.
	key := seg.Tuple().Reverse()
	if shift := p.shift[key]; shift != 0 && seg.Flags.Has(packet.FlagACK) {
		seg.Ack = seg.Ack.Add(uint32(-shift))
	}
	return forward(seg)
}

// PayloadCorrupter flips bytes in matching payloads without any sequence
// fix-up, modelling in-path corruption or a "smart" device altering content.
// The DSS checksum must catch this.
type PayloadCorrupter struct {
	// EveryN corrupts one segment out of every N data segments (N >= 1).
	EveryN int
	count  int
	// Corrupted counts modified segments.
	Corrupted int
}

// NewPayloadCorrupter corrupts every n-th data segment.
func NewPayloadCorrupter(n int) *PayloadCorrupter {
	if n < 1 {
		n = 1
	}
	return &PayloadCorrupter{EveryN: n}
}

// Name implements netem.Box.
func (p *PayloadCorrupter) Name() string { return "payload-corrupt" }

// Process implements netem.Box.
func (p *PayloadCorrupter) Process(_ netem.BoxContext, _ netem.Direction, seg *packet.Segment) []*packet.Segment {
	if len(seg.Payload) == 0 {
		return forward(seg)
	}
	p.count++
	if p.count%p.EveryN == 0 {
		seg.Payload[0] ^= 0xff
		p.Corrupted++
	}
	return forward(seg)
}
