package middlebox

import (
	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
)

// NAT rewrites the client-side address (and optionally port) of traffic
// crossing the path, as a home gateway or carrier-grade NAT would. The paper
// notes that NATs are why the classical five-tuple cannot identify an MPTCP
// connection (§3.2) and why the server cannot usually open subflows toward
// the client.
type NAT struct {
	// PublicAddr is the address the client appears as on the server side.
	PublicAddr packet.Addr
	// RewritePorts, when true, also translates source ports.
	RewritePorts bool
	// nextPort allocates translated ports.
	nextPort uint16
	// forwardMap maps original (addr, port) to translated port and back.
	portOut map[packet.Endpoint]uint16
	portIn  map[uint16]packet.Endpoint
	// addrIn maps a translated flow back to the original client address when
	// ports are not rewritten.
	addrIn map[uint16]packet.Addr
}

// NewNAT creates a NAT presenting clients as publicAddr.
func NewNAT(publicAddr packet.Addr, rewritePorts bool) *NAT {
	return &NAT{
		PublicAddr:   publicAddr,
		RewritePorts: rewritePorts,
		nextPort:     20000,
		portOut:      make(map[packet.Endpoint]uint16),
		portIn:       make(map[uint16]packet.Endpoint),
		addrIn:       make(map[uint16]packet.Addr),
	}
}

// Name implements netem.Box.
func (n *NAT) Name() string { return "nat" }

// Process implements netem.Box.
func (n *NAT) Process(_ netem.BoxContext, dir netem.Direction, seg *packet.Segment) []*packet.Segment {
	if dir == netem.AtoB {
		orig := seg.Src
		port := orig.Port
		if n.RewritePorts {
			p, ok := n.portOut[orig]
			if !ok {
				n.nextPort++
				p = n.nextPort
				n.portOut[orig] = p
				n.portIn[p] = orig
			}
			port = p
		} else {
			n.addrIn[orig.Port] = orig.Addr
		}
		seg.Src = packet.Endpoint{Addr: n.PublicAddr, Port: port}
		return forward(seg)
	}
	// Reverse direction: translate the destination back to the client.
	dst := seg.Dst
	if n.RewritePorts {
		if orig, ok := n.portIn[dst.Port]; ok {
			seg.Dst = orig
		}
	} else if addr, ok := n.addrIn[dst.Port]; ok {
		seg.Dst = packet.Endpoint{Addr: addr, Port: dst.Port}
	}
	return forward(seg)
}
