package middlebox

import (
	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
)

// SeqRewriter adds a fixed offset to the sequence numbers of client-to-server
// traffic (and fixes up the acknowledgements flowing back), modelling the
// firewalls the measurement study found on 10% of paths that "improve" TCP
// initial sequence number randomization (§3.3). MPTCP's data sequence
// mappings are expressed as offsets from the subflow ISN precisely so that
// this rewriting is harmless.
type SeqRewriter struct {
	// Offset is added to AtoB sequence numbers; BtoA acknowledgements are
	// shifted back by the same amount. A per-flow random offset is chosen
	// when Offset is zero.
	Offset uint32
	// perFlow remembers the offset applied to each flow.
	perFlow map[packet.FourTuple]uint32
	seed    uint32
}

// NewSeqRewriter builds a sequence rewriter. A zero offset means "random per
// flow".
func NewSeqRewriter(offset uint32) *SeqRewriter {
	return &SeqRewriter{Offset: offset, perFlow: make(map[packet.FourTuple]uint32), seed: 0x5eed1234}
}

// Name implements netem.Box.
func (r *SeqRewriter) Name() string { return "seq-rewrite" }

func (r *SeqRewriter) offsetFor(t packet.FourTuple) uint32 {
	if off, ok := r.perFlow[t]; ok {
		return off
	}
	off := r.Offset
	if off == 0 {
		r.seed = r.seed*1664525 + 1013904223
		off = r.seed | 1
	}
	r.perFlow[t] = off
	return off
}

// Process implements netem.Box.
func (r *SeqRewriter) Process(_ netem.BoxContext, dir netem.Direction, seg *packet.Segment) []*packet.Segment {
	if dir == netem.AtoB {
		off := r.offsetFor(seg.Tuple())
		seg.Seq = seg.Seq.Add(off)
		return forward(seg)
	}
	// Reverse direction: the ACK field refers to the rewritten client
	// sequence space; shift it back so the client sees consistent numbers.
	off := r.offsetFor(seg.Tuple().Reverse())
	if off != 0 && seg.Flags.Has(packet.FlagACK) {
		seg.Ack = seg.Ack.Add(^off + 1) // subtract offset modulo 2^32
	}
	return forward(seg)
}

// OptionStripper removes TCP options, modelling the 6–14% of paths in the
// measurement study that strip unknown options from SYNs (and the smaller set
// that strip them from all segments).
type OptionStripper struct {
	// SYNOnly limits stripping to SYN segments (the common case observed in
	// the study; data-segment stripping without SYN stripping was never
	// observed).
	SYNOnly bool
	// Kinds restricts stripping to the listed option kinds; empty means all
	// unknown/new options (MPTCP).
	Kinds []packet.OptionKind
	// Subtypes restricts stripping to specific MPTCP subtypes; empty means
	// every MPTCP option.
	Subtypes []packet.MPTCPSubtype
	// Removed counts stripped options.
	Removed int
}

// NewOptionStripper removes all MPTCP options, from SYNs only when synOnly is
// true.
func NewOptionStripper(synOnly bool) *OptionStripper {
	return &OptionStripper{SYNOnly: synOnly, Kinds: []packet.OptionKind{packet.OptMPTCP}}
}

// Name implements netem.Box.
func (o *OptionStripper) Name() string { return "option-strip" }

func (o *OptionStripper) matches(opt packet.Option) bool {
	kindMatch := len(o.Kinds) == 0
	for _, k := range o.Kinds {
		if opt.Kind() == k {
			kindMatch = true
			break
		}
	}
	if !kindMatch {
		return false
	}
	if len(o.Subtypes) == 0 {
		return true
	}
	for _, s := range o.Subtypes {
		if opt.Subtype() == s {
			return true
		}
	}
	return false
}

// Process implements netem.Box.
func (o *OptionStripper) Process(_ netem.BoxContext, _ netem.Direction, seg *packet.Segment) []*packet.Segment {
	if o.SYNOnly && !seg.Flags.Has(packet.FlagSYN) {
		return forward(seg)
	}
	o.Removed += seg.RemoveOptions(o.matches)
	return forward(seg)
}
