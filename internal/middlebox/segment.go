package middlebox

import (
	"time"

	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/pool"
)

// Splitter resegments large payloads into MSS-sized pieces, copying the TCP
// options onto every resulting segment — exactly what the paper observed all
// twelve tested TSO NICs doing (§3.3.4). Because the DSS mapping describes an
// explicit (offset, length) range rather than "this segment", duplicated
// mappings remain correct.
type Splitter struct {
	// MSS is the maximum payload size of emitted segments.
	MSS int
	// Split counts how many segments were split.
	Split int
}

// NewSplitter creates a splitter with the given MSS.
func NewSplitter(mss int) *Splitter { return &Splitter{MSS: mss} }

// Name implements netem.Box.
func (s *Splitter) Name() string { return "split" }

// Process implements netem.Box.
func (s *Splitter) Process(_ netem.BoxContext, _ netem.Direction, seg *packet.Segment) []*packet.Segment {
	if s.MSS <= 0 || len(seg.Payload) <= s.MSS {
		return forward(seg)
	}
	s.Split++
	var out []*packet.Segment
	payload := seg.Payload
	seq := seg.Seq
	for off := 0; off < len(payload); off += s.MSS {
		end := off + s.MSS
		if end > len(payload) {
			end = len(payload)
		}
		part := seg.CloneHeader()
		part.AttachPayload(pool.Copy(payload[off:end]))
		part.Seq = seq.Add(uint32(off))
		// Only the last fragment keeps FIN/PSH semantics.
		if end != len(payload) {
			part.Flags &^= packet.FlagFIN | packet.FlagPSH
		}
		out = append(out, part)
	}
	seg.Release() // fully replaced by its fragments
	return out
}

// Coalescer merges consecutive same-flow data segments into larger ones, as a
// traffic normalizer or proxy may do. TCP option space means only the first
// segment's options survive on the merged segment; the paper (§3.3.5) relies
// on the receiver acknowledging only the mapped bytes at the data level so
// the sender retransmits the bytes whose mapping was lost.
type Coalescer struct {
	// MaxBytes caps the coalesced payload size.
	MaxBytes int
	// Hold is the maximum number of segments merged into one.
	Hold int

	pending map[packet.FourTuple]*packet.Segment
	held    map[packet.FourTuple]int
	// Coalesced counts merge operations performed.
	Coalesced int
}

// NewCoalescer creates a coalescer that merges up to hold consecutive
// segments (but never beyond maxBytes of payload).
func NewCoalescer(hold, maxBytes int) *Coalescer {
	if hold < 2 {
		hold = 2
	}
	if maxBytes <= 0 {
		maxBytes = 64 << 10
	}
	return &Coalescer{
		MaxBytes: maxBytes,
		Hold:     hold,
		pending:  make(map[packet.FourTuple]*packet.Segment),
		held:     make(map[packet.FourTuple]int),
	}
}

// Name implements netem.Box.
func (c *Coalescer) Name() string { return "coalesce" }

// Process implements netem.Box.
func (c *Coalescer) Process(ctx netem.BoxContext, dir netem.Direction, seg *packet.Segment) []*packet.Segment {
	// Control segments flush any pending data for the flow and pass through.
	key := seg.Tuple()
	if len(seg.Payload) == 0 || seg.Flags.Has(packet.FlagSYN) || seg.Flags.Has(packet.FlagFIN) || seg.Flags.Has(packet.FlagRST) {
		return c.flushAnd(key, seg)
	}
	held, ok := c.pending[key]
	if !ok {
		c.pending[key] = seg.Clone()
		seg.Release() // the held clone takes over
		c.held[key] = 1
		// A normalizer does not hold data indefinitely: flush the pending
		// segment after a short delay if nothing merges with it.
		ctx.Sim().Schedule(2*time.Millisecond, func() {
			if still, ok := c.pending[key]; ok && still != nil {
				delete(c.pending, key)
				delete(c.held, key)
				ctx.Inject(dir, still)
			}
		})
		return nil
	}
	// Only coalesce strictly consecutive in-sequence data; anything else is
	// flushed in order.
	if held.EndSeq() != seg.Seq || len(held.Payload)+len(seg.Payload) > c.MaxBytes {
		return c.flushAnd(key, seg)
	}
	held.Payload = append(held.Payload, seg.Payload...)
	// The merged segment keeps only the held segment's options: option
	// space cannot hold two full DSS mappings.
	seg.Release() // its bytes have been merged into the held segment
	c.held[key]++
	c.Coalesced++
	if c.held[key] >= c.Hold {
		return c.flushAnd(key, nil)
	}
	return nil
}

// flushAnd emits any pending segment for key followed by seg (which may be
// nil, or may itself become the new pending segment when it carried data).
func (c *Coalescer) flushAnd(key packet.FourTuple, seg *packet.Segment) []*packet.Segment {
	var out []*packet.Segment
	if held, ok := c.pending[key]; ok {
		delete(c.pending, key)
		delete(c.held, key)
		out = append(out, held)
	}
	if seg != nil {
		out = append(out, seg)
	}
	return out
}

// HoleBlocker refuses to forward data that does not start exactly at the next
// expected sequence number, modelling the 5–11% of paths in the measurement
// study that do not pass data after a hole in the sequence space (§3.3).
type HoleBlocker struct {
	next    map[packet.FourTuple]packet.SeqNum
	Blocked int
}

// NewHoleBlocker creates the element.
func NewHoleBlocker() *HoleBlocker {
	return &HoleBlocker{next: make(map[packet.FourTuple]packet.SeqNum)}
}

// Name implements netem.Box.
func (h *HoleBlocker) Name() string { return "hole-block" }

// Process implements netem.Box.
func (h *HoleBlocker) Process(_ netem.BoxContext, _ netem.Direction, seg *packet.Segment) []*packet.Segment {
	key := seg.Tuple()
	if seg.Flags.Has(packet.FlagSYN) {
		h.next[key] = seg.EndSeq()
		return forward(seg)
	}
	expected, ok := h.next[key]
	if !ok {
		h.next[key] = seg.EndSeq()
		return forward(seg)
	}
	if len(seg.Payload) > 0 && expected.LessThan(seg.Seq) {
		h.Blocked++
		seg.Release()
		return nil
	}
	if expected.LessThan(seg.EndSeq()) {
		h.next[key] = seg.EndSeq()
	}
	return forward(seg)
}
