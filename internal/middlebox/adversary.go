package middlebox

import (
	"time"

	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
)

// This file models actively hostile middleboxes — the far end of the §3
// spectrum. The boxes in rewrite.go and nat.go misunderstand MPTCP; the ones
// here are out to get it: DPI engines that strip its options wholesale,
// censorship-style RST injectors that terminate classified flows, and traffic
// policers that silently discard everything above a contracted rate. The
// protocol requirement they exercise is the paper's central robustness claim:
// under every one of them an MPTCP connection must either keep running
// (possibly on a subset of its paths) or degrade to a working regular TCP
// connection — never hang, never corrupt the byte stream.

// AdversaryPreset builds fresh adversarial middlebox chains for a two-path
// host, keyed by a short name usable from the CLI and experiment grids. It
// returns the chains for the primary and secondary path (fresh instances —
// the boxes are stateful, so presets must never be shared between members).
//
//	none      — clean paths
//	strip-syn — MPTCP options stripped from SYNs on both paths: the
//	            connection must fall back cleanly at the handshake
//	dpi       — DPI strips every MPTCP option on both paths from t=0
//	            (handshake fallback with continued censorship)
//	dpi-mid   — DPI activates mid-stream on the secondary path only: the
//	            connection must survive on the primary
//	rst       — RST injector kills MP_JOIN subflows on the secondary path
//	police    — token-bucket policer throttles the secondary path
func AdversaryPreset(name string) (primary, secondary []netem.Box, ok bool) {
	switch name {
	case "", "none":
		return nil, nil, true
	case "strip-syn":
		return []netem.Box{NewOptionStripper(true)}, []netem.Box{NewOptionStripper(true)}, true
	case "dpi":
		return []netem.Box{NewDPI(0)}, []netem.Box{NewDPI(0)}, true
	case "dpi-mid":
		return nil, []netem.Box{NewDPI(1500 * time.Millisecond)}, true
	case "rst":
		return nil, []netem.Box{NewRSTInjector(2)}, true
	case "police":
		return nil, []netem.Box{NewPolicer(1_500_000, 32<<10)}, true
	}
	return nil, nil, false
}

// AdversaryPresetNames lists the preset names in grid order.
func AdversaryPresetNames() []string {
	return []string{"none", "strip-syn", "dpi", "dpi-mid", "rst", "police"}
}

// DPI is a stateful deep-packet-inspection box that classifies flows carrying
// MPTCP options and strips those options from every segment, in both
// directions. With ActivateAt zero it censors from the first SYN, so the
// connection never negotiates MPTCP and falls back cleanly at the handshake
// ("no MP_CAPABLE in SYN/ACK"). A later ActivateAt lets the handshake
// succeed and then starts stripping mid-stream — the harder case, which the
// passive opener detects via the first-option-less-segment rule and which
// otherwise degenerates into unmapped data handled by connection-level
// retransmission.
type DPI struct {
	// ActivateAt is the simulation time at which stripping begins; before it
	// the box only observes (classification continues throughout).
	ActivateAt time.Duration
	// Stripped counts removed options; Flows counts classified flows.
	Stripped int
	Flows    int

	seen map[packet.FourTuple]bool
}

// NewDPI builds a DPI stripper that starts censoring at activateAt.
func NewDPI(activateAt time.Duration) *DPI {
	return &DPI{ActivateAt: activateAt, seen: make(map[packet.FourTuple]bool)}
}

// Name implements netem.Box.
func (d *DPI) Name() string { return "dpi-strip" }

// canonicalTuple normalizes a segment's four-tuple so both directions of a
// flow share one classification entry.
func canonicalTuple(dir netem.Direction, seg *packet.Segment) packet.FourTuple {
	t := seg.Tuple()
	if dir == netem.BtoA {
		t = t.Reverse()
	}
	return t
}

// Process implements netem.Box.
func (d *DPI) Process(ctx netem.BoxContext, dir netem.Direction, seg *packet.Segment) []*packet.Segment {
	if seg.HasMPTCP() {
		t := canonicalTuple(dir, seg)
		if !d.seen[t] {
			d.seen[t] = true
			d.Flows++
		}
	}
	if ctx.Now() < d.ActivateAt {
		return forward(seg)
	}
	d.Stripped += seg.RemoveOptions(func(o packet.Option) bool { return o.Kind() == packet.OptMPTCP })
	return forward(seg)
}

// RSTInjector terminates flows matching a classifier by forging RST segments
// toward both endpoints, then blackholes the flow — the observed behaviour of
// censorship middleware and of some "flow-aware" security appliances. The
// default classifier matches MP_JOIN handshakes, so joined subflows are
// killed while the initial subflow survives: the connection must continue on
// the remaining path with the dead subflow's data reinjected.
type RSTInjector struct {
	// Match classifies segments; a flow is condemned when one of its segments
	// matches. Nil matches any segment carrying an MP_JOIN option.
	Match func(seg *packet.Segment) bool
	// After lets this many matching segments through per flow before the
	// kill, so e.g. the handshake can complete before the axe falls.
	After int
	// Injected counts forged RSTs; Killed counts condemned flows.
	Injected int
	Killed   int

	flows map[packet.FourTuple]int // matching segments seen; -1 = killed
}

// NewRSTInjector builds an injector that kills MP_JOIN subflows after
// letting `after` matching segments through.
func NewRSTInjector(after int) *RSTInjector {
	return &RSTInjector{After: after, flows: make(map[packet.FourTuple]int)}
}

// Name implements netem.Box.
func (r *RSTInjector) Name() string { return "rst-inject" }

func (r *RSTInjector) matches(seg *packet.Segment) bool {
	if r.Match != nil {
		return r.Match(seg)
	}
	join, ok := seg.MPTCPOption(packet.SubMPJoin).(*packet.MPJoinOption)
	return ok && join != nil
}

// Process implements netem.Box.
func (r *RSTInjector) Process(ctx netem.BoxContext, dir netem.Direction, seg *packet.Segment) []*packet.Segment {
	// Never interfere with RSTs — including the ones this box injected,
	// which re-traverse the chain.
	if seg.Flags.Has(packet.FlagRST) {
		return forward(seg)
	}
	t := canonicalTuple(dir, seg)
	n, tracked := r.flows[t]
	if n == -1 {
		// Condemned flow: blackhole everything that is not a RST.
		seg.Release()
		return nil
	}
	if !tracked && !r.matches(seg) {
		return forward(seg)
	}
	if n < r.After {
		r.flows[t] = n + 1
		return forward(seg)
	}
	r.flows[t] = -1
	r.Killed++

	// Forge a RST toward the receiver (riding the segment's own coordinates,
	// so it lands exactly at the receive point)...
	fwd := packet.NewSegment()
	fwd.Src, fwd.Dst = seg.Src, seg.Dst
	fwd.Seq, fwd.Ack = seg.Seq, seg.Ack
	fwd.Flags = packet.FlagRST | packet.FlagACK
	ctx.Inject(dir, fwd)
	// ...and one back toward the sender, built the way an endpoint answers an
	// unmatched segment.
	rev := packet.NewSegment()
	rev.Src, rev.Dst = seg.Dst, seg.Src
	rev.Seq, rev.Ack = seg.Ack, seg.EndSeq()
	rev.Flags = packet.FlagRST | packet.FlagACK
	ctx.Inject(dir.Reverse(), rev)
	r.Injected += 2

	seg.Release()
	return nil
}

// Policer is a token-bucket traffic policer: segments above the contracted
// rate are dropped outright (policing, not shaping — no queueing, no
// back-pressure signal). Each direction has its own bucket. Refill is
// computed from simulation-clock deltas, so the drop pattern is deterministic
// for a given traffic trace.
type Policer struct {
	// RateBps is the contracted rate in bits per second; BurstBytes is the
	// bucket depth (defaults to 16 KiB when zero).
	RateBps    int64
	BurstBytes int
	// Dropped counts policed segments; DroppedBytes their wire bytes.
	Dropped      int
	DroppedBytes int

	buckets [2]tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Duration
	primed bool
}

// NewPolicer builds a policer with the given rate and burst.
func NewPolicer(rateBps int64, burstBytes int) *Policer {
	if burstBytes <= 0 {
		burstBytes = 16 << 10
	}
	return &Policer{RateBps: rateBps, BurstBytes: burstBytes}
}

// Name implements netem.Box.
func (p *Policer) Name() string { return "policer" }

// Process implements netem.Box.
func (p *Policer) Process(ctx netem.BoxContext, dir netem.Direction, seg *packet.Segment) []*packet.Segment {
	b := &p.buckets[dir]
	now := ctx.Now()
	if !b.primed {
		b.primed = true
		b.tokens = float64(p.BurstBytes)
		b.last = now
	}
	b.tokens += (now - b.last).Seconds() * float64(p.RateBps) / 8
	if b.tokens > float64(p.BurstBytes) {
		b.tokens = float64(p.BurstBytes)
	}
	b.last = now

	cost := float64(len(seg.Payload) + 20 + packet.OptionsWireLen(seg.Options) + netem.WireOverheadBytes)
	if cost <= b.tokens {
		b.tokens -= cost
		return forward(seg)
	}
	p.Dropped++
	p.DroppedBytes += int(cost)
	seg.Release()
	return nil
}
