package middlebox

import (
	"testing"
	"time"

	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/sim"
)

type nopCtx struct{ s *sim.Simulator }

func (c nopCtx) Now() time.Duration                              { return c.s.Now() }
func (c nopCtx) Sim() *sim.Simulator                             { return c.s }
func (c nopCtx) Inject(dir netem.Direction, seg *packet.Segment) {}

// collectCtx records injected segments.
type collectCtx struct {
	s        *sim.Simulator
	injected []*packet.Segment
}

func (c *collectCtx) Now() time.Duration  { return c.s.Now() }
func (c *collectCtx) Sim() *sim.Simulator { return c.s }
func (c *collectCtx) Inject(dir netem.Direction, seg *packet.Segment) {
	c.injected = append(c.injected, seg)
}

func dataSeg(seq packet.SeqNum, payload string) *packet.Segment {
	return &packet.Segment{
		Src:     packet.Endpoint{Addr: packet.MakeAddr(10, 0, 0, 1), Port: 1000},
		Dst:     packet.Endpoint{Addr: packet.MakeAddr(10, 0, 0, 2), Port: 80},
		Seq:     seq,
		Ack:     1,
		Flags:   packet.FlagACK | packet.FlagPSH,
		Payload: []byte(payload),
		Options: []packet.Option{&packet.DSSOption{HasMapping: true, DataSeq: 1, SubflowOffset: uint32(seq), Length: uint16(len(payload))}},
	}
}

func TestNATRewritesAndRestores(t *testing.T) {
	n := NewNAT(packet.MakeAddr(100, 64, 0, 1), true)
	ctx := nopCtx{s: sim.New(1)}
	seg := dataSeg(1, "x")
	orig := seg.Src
	out := n.Process(ctx, netem.AtoB, seg)
	if len(out) != 1 || out[0].Src.Addr != packet.MakeAddr(100, 64, 0, 1) {
		t.Fatal("NAT did not rewrite the source address")
	}
	reply := &packet.Segment{Src: out[0].Dst, Dst: out[0].Src, Flags: packet.FlagACK}
	back := n.Process(ctx, netem.BtoA, reply)
	if back[0].Dst != orig {
		t.Fatalf("reverse translation wrong: got %v want %v", back[0].Dst, orig)
	}
}

func TestSeqRewriterConsistency(t *testing.T) {
	r := NewSeqRewriter(1000)
	ctx := nopCtx{s: sim.New(1)}
	seg := dataSeg(500, "abc")
	out := r.Process(ctx, netem.AtoB, seg)
	if out[0].Seq != 1500 {
		t.Fatalf("forward seq = %d, want 1500", out[0].Seq)
	}
	// An ACK coming back for the rewritten space must be shifted back.
	ack := &packet.Segment{Src: seg.Dst, Dst: seg.Src, Flags: packet.FlagACK, Ack: 1503}
	back := r.Process(ctx, netem.BtoA, ack)
	if back[0].Ack != 503 {
		t.Fatalf("reverse ack = %d, want 503", back[0].Ack)
	}
}

func TestOptionStripperSYNOnly(t *testing.T) {
	s := NewOptionStripper(true)
	ctx := nopCtx{s: sim.New(1)}
	syn := &packet.Segment{Flags: packet.FlagSYN, Options: []packet.Option{&packet.MPCapableOption{SenderKey: 5}, &packet.MSSOption{MSS: 1460}}}
	s.Process(ctx, netem.AtoB, syn)
	if syn.HasMPTCP() {
		t.Fatal("MPTCP option should be stripped from the SYN")
	}
	if syn.FindOption(packet.OptMSS) == nil {
		t.Fatal("non-MPTCP options must be preserved")
	}
	data := dataSeg(1, "x")
	s.Process(ctx, netem.AtoB, data)
	if !data.HasMPTCP() {
		t.Fatal("SYN-only stripper must not touch data segments")
	}
}

func TestSplitterCopiesOptions(t *testing.T) {
	sp := NewSplitter(4)
	ctx := nopCtx{s: sim.New(1)}
	seg := dataSeg(100, "abcdefghij")
	out := sp.Process(ctx, netem.AtoB, seg)
	if len(out) != 3 {
		t.Fatalf("expected 3 fragments, got %d", len(out))
	}
	total := 0
	for i, frag := range out {
		total += len(frag.Payload)
		if frag.MPTCPOption(packet.SubDSS) == nil {
			t.Fatalf("fragment %d lost the DSS option (TSO copies options)", i)
		}
		if frag.Seq != packet.SeqNum(100+i*4) {
			t.Fatalf("fragment %d has seq %d", i, frag.Seq)
		}
	}
	if total != 10 {
		t.Fatalf("fragments carry %d bytes, want 10", total)
	}
}

func TestCoalescerMergesAndKeepsOneOptionSet(t *testing.T) {
	s := sim.New(1)
	c := NewCoalescer(2, 1<<20)
	ctx := &collectCtx{s: s}
	a := dataSeg(0, "aaaa")
	b := dataSeg(4, "bbbb")
	wantOpts := len(a.Options) // the coalescer consumes (releases) a and b
	out := c.Process(ctx, netem.AtoB, a)
	if len(out) != 0 {
		t.Fatal("first segment should be held")
	}
	out = c.Process(ctx, netem.AtoB, b)
	if len(out) != 1 {
		t.Fatalf("expected one merged segment, got %d", len(out))
	}
	if string(out[0].Payload) != "aaaabbbb" {
		t.Fatalf("merged payload = %q", out[0].Payload)
	}
	if len(out[0].Options) != wantOpts {
		t.Fatal("merged segment should keep only the first segment's options")
	}
	// A held segment with no follow-up must eventually be flushed by the
	// timer so data is never stuck at the middlebox.
	c2 := NewCoalescer(2, 1<<20)
	ctx2 := &collectCtx{s: s}
	c2.Process(ctx2, netem.AtoB, dataSeg(0, "zzzz"))
	_ = s.RunFor(10 * time.Millisecond)
	if len(ctx2.injected) != 1 {
		t.Fatalf("held segment was not flushed, injected=%d", len(ctx2.injected))
	}
}

func TestProactiveACKerContiguityAndRetransmit(t *testing.T) {
	s := sim.New(1)
	p := NewProactiveACKer()
	ctx := &collectCtx{s: s}
	p.Process(ctx, netem.AtoB, dataSeg(0, "aaaa"))
	if len(ctx.injected) != 1 || ctx.injected[0].Ack != 4 {
		t.Fatalf("expected a proxy ACK for 4, got %+v", ctx.injected)
	}
	// A gap: segment at 8 while 4..8 is missing must NOT be acked.
	p.Process(ctx, netem.AtoB, dataSeg(8, "cccc"))
	if len(ctx.injected) != 1 {
		t.Fatal("proxy must not acknowledge past a hole")
	}
	// Receiver duplicate ACKs for 4 (three of them) trigger a proxy
	// retransmission of the buffered segment starting at 4 — once it exists.
	p.Process(ctx, netem.AtoB, dataSeg(4, "bbbb"))
	recvAck := &packet.Segment{Src: dataSeg(0, "").Dst, Dst: dataSeg(0, "").Src, Flags: packet.FlagACK, Ack: 4}
	for i := 0; i < 3; i++ {
		p.Process(ctx, netem.BtoA, recvAck.Clone())
	}
	if p.Retransmitted != 1 {
		t.Fatalf("expected one proxy retransmission, got %d", p.Retransmitted)
	}
}

func TestPayloadRewriterAdjustsLaterSequences(t *testing.T) {
	r := NewPayloadRewriter("cat", "tiger")
	ctx := nopCtx{s: sim.New(1)}
	first := dataSeg(0, "the cat sat")
	out := r.Process(ctx, netem.AtoB, first)
	if string(out[0].Payload) != "the tiger sat" {
		t.Fatalf("payload not rewritten: %q", out[0].Payload)
	}
	// Later segments are shifted by the length difference (+2).
	second := dataSeg(11, "again")
	out = r.Process(ctx, netem.AtoB, second)
	if out[0].Seq != 13 {
		t.Fatalf("later segment seq = %d, want 13", out[0].Seq)
	}
}

func TestPayloadCorrupterAndHoleBlocker(t *testing.T) {
	ctx := nopCtx{s: sim.New(1)}
	pc := NewPayloadCorrupter(1)
	seg := dataSeg(0, "abcd")
	pc.Process(ctx, netem.AtoB, seg)
	if seg.Payload[0] == 'a' {
		t.Fatal("corrupter did not modify the payload")
	}

	hb := NewHoleBlocker()
	syn := &packet.Segment{Flags: packet.FlagSYN, Seq: 99, Src: seg.Src, Dst: seg.Dst}
	hb.Process(ctx, netem.AtoB, syn)
	inOrder := dataSeg(100, "abcd")
	if out := hb.Process(ctx, netem.AtoB, inOrder); len(out) != 1 {
		t.Fatal("in-order data must pass")
	}
	afterHole := dataSeg(200, "zzzz")
	if out := hb.Process(ctx, netem.AtoB, afterHole); len(out) != 0 {
		t.Fatal("data after a hole must be blocked")
	}
	if hb.Blocked != 1 {
		t.Fatalf("blocked count = %d", hb.Blocked)
	}
}

func TestTapAndDropper(t *testing.T) {
	ctx := nopCtx{s: sim.New(1)}
	tap := NewTap()
	tap.Process(ctx, netem.AtoB, dataSeg(0, "x"))
	tap.Process(ctx, netem.BtoA, dataSeg(1, "y"))
	if tap.Count(netem.AtoB) != 1 || tap.Count(netem.BtoA) != 1 {
		t.Fatal("tap miscounted")
	}
	d := NewDropper(1, func(dir netem.Direction, seg *packet.Segment) bool { return len(seg.Payload) > 0 })
	if out := d.Process(ctx, netem.AtoB, dataSeg(0, "x")); len(out) != 0 {
		t.Fatal("first matching segment should be dropped")
	}
	if out := d.Process(ctx, netem.AtoB, dataSeg(1, "y")); len(out) != 1 {
		t.Fatal("drop budget exhausted; segment should pass")
	}
}

func TestReserializerRoundTripsSegments(t *testing.T) {
	r := NewReserializer()
	ctx := nopCtx{s: sim.New(1)}
	seg := &packet.Segment{
		Src:    packet.Endpoint{Addr: packet.MakeAddr(10, 0, 0, 1), Port: 40001},
		Dst:    packet.Endpoint{Addr: packet.MakeAddr(10, 0, 1, 2), Port: 80},
		Seq:    7777,
		Ack:    8888,
		Flags:  packet.FlagACK | packet.FlagPSH,
		Window: 4321,
		Options: []packet.Option{
			&packet.TimestampsOption{Val: 11, Echo: 22},
			&packet.DSSOption{HasDataACK: true, DataACK: 99, HasMapping: true, DataSeq: 1234, SubflowOffset: 55, Length: 5, HasChecksum: true, Checksum: 0xfeed},
		},
		Payload: []byte("hello"),
		SentAt:  123 * time.Millisecond,
		Ordinal: 42,
	}
	want := seg.Clone() // keep an independent copy for comparison
	out := r.Process(ctx, netem.AtoB, seg)
	if len(out) != 1 {
		t.Fatalf("reserializer forwarded %d segments; want 1", len(out))
	}
	got := out[0]
	if r.Errors != 0 || r.Reserialized != 1 {
		t.Fatalf("errors=%d reserialized=%d", r.Errors, r.Reserialized)
	}
	if got.Src != want.Src || got.Dst != want.Dst || got.Seq != want.Seq ||
		got.Ack != want.Ack || got.Flags != want.Flags || got.Window != want.Window {
		t.Fatalf("header changed across the wire: got %v want %v", got, want)
	}
	if got.SentAt != want.SentAt || got.Ordinal != want.Ordinal {
		t.Fatal("simulator metadata not carried across the codec round trip")
	}
	if string(got.Payload) != string(want.Payload) {
		t.Fatalf("payload changed: %q", got.Payload)
	}
	if len(got.Options) != len(want.Options) {
		t.Fatalf("option count changed: got %d want %d", len(got.Options), len(want.Options))
	}
	for i := range want.Options {
		if got.Options[i].String() != want.Options[i].String() {
			t.Fatalf("option %d changed: got %v want %v", i, got.Options[i], want.Options[i])
		}
	}
	got.Release()
	want.Release()
}
