// Package middlebox implements models of the middlebox behaviours that shaped
// the MPTCP design (§3, §4.1 of the paper), mirroring the Click elements the
// authors used to validate their implementation:
//
//   - NAT (address/port rewriting)
//   - TCP initial sequence number rewriting
//   - TCP option removal (from SYNs only, or from all segments)
//   - Segment splitting (TSO-like, options copied onto every fragment)
//   - Segment coalescing (traffic normalizer, only one option set survives)
//   - Pro-active ACKing (transparent proxy)
//   - Payload modification (application-level gateway, with sequence fix-up)
//   - Hole blocking (proxies that refuse to forward data after a gap)
//
// Elements implement netem.Box and are composed onto a netem.Path.
package middlebox

import (
	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
)

// forward is a helper returning a single-segment result.
func forward(seg *packet.Segment) []*packet.Segment { return []*packet.Segment{seg} }

// Tap is a transparent element that records every segment it sees; tests and
// the middlebox probe tool use it to observe on-path traffic.
type Tap struct {
	// Seen holds clones of every forwarded segment, per direction.
	Seen map[netem.Direction][]*packet.Segment
	// Filter, if set, restricts recording to segments it returns true for.
	Filter func(*packet.Segment) bool
}

// NewTap creates an empty tap.
func NewTap() *Tap {
	return &Tap{Seen: map[netem.Direction][]*packet.Segment{}}
}

// Name implements netem.Box.
func (t *Tap) Name() string { return "tap" }

// Process implements netem.Box.
func (t *Tap) Process(_ netem.BoxContext, dir netem.Direction, seg *packet.Segment) []*packet.Segment {
	if t.Filter == nil || t.Filter(seg) {
		t.Seen[dir] = append(t.Seen[dir], seg.Clone())
	}
	return forward(seg)
}

// Count returns the number of recorded segments in a direction.
func (t *Tap) Count(dir netem.Direction) int { return len(t.Seen[dir]) }

// Dropper drops segments matching a predicate (used to model path failures
// and targeted losses in tests).
type Dropper struct {
	// Match selects the segments to drop.
	Match func(dir netem.Direction, seg *packet.Segment) bool
	// Remaining, when positive, limits how many segments are dropped; -1
	// means unlimited.
	Remaining int
	// Dropped counts segments removed so far.
	Dropped int
}

// NewDropper drops up to n segments matching match (n < 0 for unlimited).
func NewDropper(n int, match func(dir netem.Direction, seg *packet.Segment) bool) *Dropper {
	return &Dropper{Match: match, Remaining: n}
}

// Name implements netem.Box.
func (d *Dropper) Name() string { return "dropper" }

// Process implements netem.Box.
func (d *Dropper) Process(_ netem.BoxContext, dir netem.Direction, seg *packet.Segment) []*packet.Segment {
	if d.Match != nil && d.Match(dir, seg) && (d.Remaining < 0 || d.Remaining > 0) {
		if d.Remaining > 0 {
			d.Remaining--
		}
		d.Dropped++
		seg.Release()
		return nil
	}
	return forward(seg)
}
