package middlebox

import (
	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/pool"
)

// Reserializer models a middlebox that reconstructs every packet from its
// wire representation — the behaviour of any proxy, normalizer or DPI engine
// that terminates the raw packet and re-emits it. Each segment is serialized
// through the unified wire codec (packet.Encode) and parsed back
// (packet.Decode), so anything the in-memory representation carries that the
// RFC 793/6824 wire format cannot express is stripped here, exactly as it
// would be on a real path. Running the middlebox matrix with a Reserializer
// on-path is the proof that the emulator's in-memory segments and their wire
// form cannot diverge.
//
// Simulator bookkeeping that lives outside the wire format (SentAt, Ordinal)
// is carried across explicitly, the same way a real box preserves timing by
// forwarding promptly.
type Reserializer struct {
	// Reserialized counts segments that made the round trip.
	Reserialized int
	// Errors counts segments the codec rejected; they are forwarded
	// unmodified rather than dropped. The emulated stacks emit only
	// wire-expressible segments, so any nonzero count indicates an
	// emulator bug.
	Errors int
}

// NewReserializer creates the element.
func NewReserializer() *Reserializer { return &Reserializer{} }

// Name implements netem.Box.
func (r *Reserializer) Name() string { return "reserialize" }

// Process implements netem.Box.
func (r *Reserializer) Process(_ netem.BoxContext, _ netem.Direction, seg *packet.Segment) []*packet.Segment {
	wire, err := packet.Encode(seg)
	if err != nil {
		r.Errors++
		return forward(seg)
	}
	out, err := packet.Decode(seg.Src.Addr, seg.Dst.Addr, wire)
	if err != nil {
		packet.ReleaseWire(wire)
		r.Errors++
		return forward(seg)
	}
	// The decoded segment borrows its payload from the wire buffer; give it
	// a pool-owned copy so the wire buffer can be recycled immediately.
	if len(out.Payload) > 0 {
		out.AttachPayload(pool.Copy(out.Payload))
	}
	out.SentAt, out.Ordinal = seg.SentAt, seg.Ordinal
	packet.ReleaseWire(wire)
	seg.Release()
	r.Reserialized++
	return forward(out)
}
