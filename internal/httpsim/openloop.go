package httpsim

import (
	"encoding/binary"
	"fmt"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/probe"
	"mptcpgo/internal/sim"
	"mptcpgo/internal/telemetry"
	"mptcpgo/internal/trace"
	"mptcpgo/internal/workload"
)

// OpenLoopConfig configures an open-loop client pool: flows are spawned by an
// arrival process, fetch a size drawn from a distribution, and depart. The
// arrival schedule never waits for completions, so the pool can offer more
// load than the network can carry — the overload regimes a closed-loop pool
// structurally cannot reach.
type OpenLoopConfig struct {
	// Arrival generates the inter-arrival gaps. The pool owns the process
	// (stateful families keep phase state per pool); hand each pool its own
	// Thin() copy.
	Arrival workload.ArrivalProcess
	// Sizes draws each flow's transfer size.
	Sizes workload.SizeDist
	// Rng drives the arrival and size draws. It must be dedicated to this
	// pool (derived via sim.DeriveSeed from the scenario's root seed), never
	// the simulator's protocol RNG — sharing would entangle the offered
	// schedule with packet-level randomness.
	Rng *sim.RNG
	// Window is the arrival window: flows arrive in [start, start+Window).
	Window time.Duration
	// FlowDeadline aborts a flow that has not completed this long after its
	// arrival (0 = never). Dropping instead of waiting keeps overloaded runs
	// bounded and makes the drop count itself a measurement.
	FlowDeadline time.Duration
	// MaxInFlight sheds arrivals while this many flows are in flight
	// (0 = unlimited). Shed flows still count as offered load.
	MaxInFlight int

	// ServerAddr and ServerPort identify the server.
	ServerAddr packet.Addr
	ServerPort uint16
	// Conn is the connection configuration used for every flow.
	Conn core.Config
	// Iface is the client interface to dial from.
	Iface *netem.Interface
	// OnDone, if set, fires once when the arrival window has closed and
	// every arrived flow has settled (completed, failed, shed or dropped).
	OnDone func()
	// SampleCap bounds raw latency-sample retention. Zero keeps every sample
	// (exact percentiles, today's behavior); a positive cap stops appending
	// raw samples once reached, after which Result's latency statistics come
	// from the pool's log-scale histogram instead.
	SampleCap int
}

// OpenLoopResult summarises one pool's run.
type OpenLoopResult struct {
	// Offered counts every arrival the process generated (including shed
	// ones); OfferedBytes sums their drawn sizes.
	Offered      int
	OfferedBytes uint64
	// Completed flows received their full response; BytesReceived sums the
	// bytes they got.
	Completed     int
	BytesReceived uint64
	// Dropped flows hit FlowDeadline, Shed flows were refused at
	// MaxInFlight, Failed flows could not dial or were reset.
	Dropped int
	Shed    int
	Failed  int
	// Unfinished flows were still in flight when the result was taken (only
	// non-zero when the simulation deadline cut the run short).
	Unfinished int
	// PeakInFlight is the high-water mark of concurrently active flows.
	PeakInFlight int
	// Window is the configured arrival window; Elapsed stretches from the
	// pool's start to the last settled flow (>= Window under load).
	Window  time.Duration
	Elapsed time.Duration
	// OfferedMbps is the load the arrival process injected over the window;
	// GoodputMbps is what completed flows actually received over Elapsed.
	OfferedMbps float64
	GoodputMbps float64
	MeanLatency time.Duration
	P50Latency  time.Duration
	P99Latency  time.Duration
}

// OpenLoopPool drives open-loop flows against an HTTP-like server.
type OpenLoopPool struct {
	cfg     OpenLoopConfig
	mgr     *core.Manager
	sim     *sim.Simulator
	started time.Duration

	offered      int
	offeredBytes uint64
	completed    int
	bytes        uint64
	dropped      int
	shed         int
	failed       int
	inFlight     int
	peakInFlight int
	arrivalsDone bool
	settledAt    time.Duration
	doneFired    bool
	latency      *trace.Sampler
	hist         *telemetry.Histogram
	capped       bool

	// rec/member mirror the manager's flight recorder at pool construction
	// (nil recorder = no tracing); flow settlements emit KindFlowDone.
	rec    *probe.Recorder
	member int

	// scratch is the shared response-drain buffer: flows only count received
	// bytes, so the read loop consumes into it without allocating. Its size
	// matches the old per-call Read cap — read granularity feeds the
	// receive-window-update heuristic, so it must not change.
	scratch []byte
}

// NewOpenLoopPool creates a pool bound to the client's manager.
func NewOpenLoopPool(mgr *core.Manager, cfg OpenLoopConfig) (*OpenLoopPool, error) {
	if cfg.Arrival == nil || cfg.Sizes == nil || cfg.Rng == nil {
		return nil, fmt.Errorf("httpsim: open-loop pool needs Arrival, Sizes and Rng")
	}
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("httpsim: open-loop pool needs a positive arrival window")
	}
	if cfg.ServerPort == 0 {
		cfg.ServerPort = 80
	}
	if cfg.Iface == nil {
		if ifaces := mgr.Host().Interfaces(); len(ifaces) > 0 {
			cfg.Iface = ifaces[0]
		} else {
			return nil, fmt.Errorf("httpsim: client host has no interfaces")
		}
	}
	p := &OpenLoopPool{
		cfg:     cfg,
		mgr:     mgr,
		sim:     mgr.Host().Sim(),
		latency: trace.NewSampler(),
		hist:    telemetry.NewLatencyHistogram(),
		scratch: make([]byte, 64<<10),
	}
	p.rec, p.member = mgr.Probe()
	return p, nil
}

// flowDone outcome codes carried in KindFlowDone's A payload.
const (
	flowFailed  = 0
	flowOK      = 1
	flowDropped = 2
)

// Start begins generating arrivals at the current simulation time.
func (p *OpenLoopPool) Start() {
	p.started = p.sim.Now()
	p.settledAt = p.started
	p.scheduleNextArrival()
}

// scheduleNextArrival draws the next gap; arrivals at or past the window end
// close the stream instead of firing.
func (p *OpenLoopPool) scheduleNextArrival() {
	gap := p.cfg.Arrival.Next(p.cfg.Rng)
	at := p.sim.Now() + gap
	if at >= p.started+p.cfg.Window {
		p.arrivalsDone = true
		p.checkDone()
		return
	}
	p.sim.ScheduleAt(at, p.arrive)
}

// arrive spawns one flow and schedules the next arrival. The flow is started
// (or shed) before the next gap is drawn: scheduleNextArrival may discover
// the window is over and declare arrivals done, and that check must already
// see this arrival in flight or the pool would settle without it. The RNG
// draw order (size, then gap) is fixed either way.
func (p *OpenLoopPool) arrive() {
	size := p.cfg.Sizes.Sample(p.cfg.Rng)
	p.offered++
	p.offeredBytes += uint64(size)

	if p.cfg.MaxInFlight > 0 && p.inFlight >= p.cfg.MaxInFlight {
		p.shed++
		p.settle()
	} else {
		p.startFlow(size)
	}
	p.scheduleNextArrival()
}

// startFlow dials, requests size bytes, and accounts the flow's departure.
func (p *OpenLoopPool) startFlow(size int) {
	start := p.sim.Now()
	conn, err := p.mgr.Dial(p.cfg.Iface, packet.Endpoint{Addr: p.cfg.ServerAddr, Port: p.cfg.ServerPort}, p.cfg.Conn)
	if err != nil {
		p.failed++
		p.rec.Emit(p.member, probe.KindFlowDone, -1, -1, flowFailed, 0)
		p.settle()
		return
	}
	p.inFlight++
	if p.inFlight > p.peakInFlight {
		p.peakInFlight = p.inFlight
	}

	received := 0
	settled := false
	var deadline *sim.Event
	finish := func(ok bool) {
		if settled {
			return
		}
		settled = true
		p.sim.Cancel(deadline)
		p.inFlight--
		if ok {
			p.completed++
			p.bytes += uint64(received)
			p.recordLatency(float64(p.sim.Now()-start) / float64(time.Millisecond))
			p.rec.Emit(p.member, probe.KindFlowDone, -1, -1, flowOK, int64(received))
		} else {
			p.failed++
			p.rec.Emit(p.member, probe.KindFlowDone, -1, -1, flowFailed, int64(received))
		}
		p.settle()
	}
	if p.cfg.FlowDeadline > 0 {
		deadline = p.sim.Schedule(p.cfg.FlowDeadline, func() {
			if settled {
				return
			}
			settled = true
			p.inFlight--
			p.dropped++
			p.rec.Emit(p.member, probe.KindFlowDone, -1, -1, flowDropped, int64(received))
			// Abort, not Close: a flow only reaches its deadline because it
			// has stalled (e.g. a subflow died mid-fetch), and a graceful
			// DATA_FIN would strand the wedged connection retransmitting long
			// after the pool wrote the flow off. Resetting every subflow
			// reclaims both endpoints immediately.
			conn.Abort()
			p.settle()
		})
	}

	conn.OnEstablished = func() {
		req := make([]byte, requestSize)
		binary.BigEndian.PutUint32(req[0:4], uint32(size))
		conn.Write(req)
	}
	conn.OnReadable = func() {
		for {
			n := conn.ReadInto(p.scratch)
			if n == 0 {
				break
			}
			received += n
		}
		if conn.EOF() {
			conn.Close()
			finish(received >= size)
		}
	}
	conn.OnClosed = func(err error) {
		finish(err == nil && received >= size)
	}
}

// settle records the departure time and fires OnDone once the window has
// closed and no flows remain in flight.
func (p *OpenLoopPool) settle() {
	p.settledAt = p.sim.Now()
	p.checkDone()
}

func (p *OpenLoopPool) checkDone() {
	if p.doneFired || !p.arrivalsDone || p.inFlight > 0 {
		return
	}
	p.doneFired = true
	if p.cfg.OnDone != nil {
		p.cfg.OnDone()
	}
}

// recordLatency feeds one flow-completion latency (milliseconds) into the
// histogram (always) and the raw sampler (until SampleCap, if set).
func (p *OpenLoopPool) recordLatency(ms float64) {
	p.hist.Observe(ms)
	if p.cfg.SampleCap > 0 && p.latency.Len() >= p.cfg.SampleCap {
		p.capped = true
		return
	}
	p.latency.Record(ms, p.sim.Now())
}

// Done reports whether the arrival window has closed and every flow settled.
func (p *OpenLoopPool) Done() bool { return p.doneFired }

// LatencyHist returns the pool's log-scale latency histogram. Always
// populated, whether or not raw samples are capped.
func (p *OpenLoopPool) LatencyHist() *telemetry.Histogram { return p.hist }

// Capped reports whether raw latency samples were dropped due to SampleCap.
func (p *OpenLoopPool) Capped() bool { return p.capped }

// Progress returns live workload counters (settled flows, offered arrivals).
// Safe only on the pool's own shard goroutine.
func (p *OpenLoopPool) Progress() (done, offered int) {
	return p.completed + p.dropped + p.shed + p.failed, p.offered
}

// LatencySamples returns the per-flow completion latencies in milliseconds,
// in completion order. The slice is owned by the pool.
func (p *OpenLoopPool) LatencySamples() []float64 { return p.latency.Samples() }

// Result returns the pool summary as of the current simulation time.
func (p *OpenLoopPool) Result() OpenLoopResult {
	res := OpenLoopResult{
		Offered:       p.offered,
		OfferedBytes:  p.offeredBytes,
		Completed:     p.completed,
		BytesReceived: p.bytes,
		Dropped:       p.dropped,
		Shed:          p.shed,
		Failed:        p.failed,
		Unfinished:    p.inFlight,
		PeakInFlight:  p.peakInFlight,
		Window:        p.cfg.Window,
		Elapsed:       p.settledAt - p.started,
	}
	if p.cfg.Window > 0 {
		res.OfferedMbps = float64(p.offeredBytes) * 8 / p.cfg.Window.Seconds() / 1e6
	}
	if res.Elapsed > 0 {
		res.GoodputMbps = float64(p.bytes) * 8 / res.Elapsed.Seconds() / 1e6
	}
	switch {
	case p.capped:
		// Raw samples were truncated at SampleCap: report from the histogram,
		// which saw every observation.
		res.MeanLatency = time.Duration(p.hist.Mean() * float64(time.Millisecond))
		res.P50Latency = time.Duration(p.hist.Quantile(50) * float64(time.Millisecond))
		res.P99Latency = time.Duration(p.hist.Quantile(99) * float64(time.Millisecond))
	case p.latency.Len() > 0:
		res.MeanLatency = time.Duration(p.latency.Mean() * float64(time.Millisecond))
		res.P50Latency = time.Duration(p.latency.Percentile(50) * float64(time.Millisecond))
		res.P99Latency = time.Duration(p.latency.Percentile(99) * float64(time.Millisecond))
	}
	return res
}
