package httpsim

import (
	"testing"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/sim"
	"mptcpgo/internal/workload"
)

// runOpenLoop builds a two-host topology with one bottleneck path and runs
// an open-loop pool to settlement.
func runOpenLoop(t *testing.T, cfg OpenLoopConfig, pathMbps float64) (OpenLoopResult, *OpenLoopPool) {
	t.Helper()
	s := sim.New(5)
	n := netem.Build(s, netem.Symmetric("bn", netem.Mbps(pathMbps), 5*time.Millisecond,
		int(netem.Mbps(pathMbps)/8/10), 0))
	conn := core.TCPOnlyConfig()
	if _, err := StartServer(core.NewManager(n.Server), ServerConfig{Port: 80, Conn: conn}); err != nil {
		t.Fatal(err)
	}
	cfg.ServerAddr = n.ServerAddr(0)
	cfg.ServerPort = 80
	cfg.Conn = conn
	cfg.Iface = n.Client.Interfaces()[0]
	pool, err := NewOpenLoopPool(core.NewManager(n.Client), cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool.Start()
	deadline := cfg.Window + cfg.FlowDeadline + 10*time.Second
	for !pool.Done() && s.Now() < deadline && s.Step() {
	}
	return pool.Result(), pool
}

// TestOpenLoopUnderload: with offered load well under capacity every flow
// completes, nothing is dropped or shed, and the accounting adds up.
func TestOpenLoopUnderload(t *testing.T) {
	res, pool := runOpenLoop(t, OpenLoopConfig{
		Arrival:      workload.Poisson(20),
		Sizes:        workload.FixedSize(8 << 10),
		Rng:          sim.NewRNG(sim.DeriveSeed(5, 1)),
		Window:       3 * time.Second,
		FlowDeadline: 5 * time.Second,
	}, 10)
	if !pool.Done() {
		t.Fatal("pool never settled")
	}
	if res.Offered == 0 {
		t.Fatal("no arrivals generated")
	}
	if res.Completed != res.Offered || res.Dropped != 0 || res.Shed != 0 || res.Failed != 0 || res.Unfinished != 0 {
		t.Fatalf("underloaded pool lost flows: %+v", res)
	}
	if res.BytesReceived != uint64(res.Completed*8<<10) {
		t.Fatalf("received %d bytes for %d flows of 8KB", res.BytesReceived, res.Completed)
	}
	if res.OfferedMbps <= 0 || res.GoodputMbps <= 0 || res.P99Latency <= 0 {
		t.Fatalf("missing load/latency accounting: %+v", res)
	}
	if got := len(pool.LatencySamples()); got != res.Completed {
		t.Fatalf("%d latency samples for %d completions", got, res.Completed)
	}
}

// TestOpenLoopDeadlineDrops: a pool offered far more than the link carries
// must shed the excess via the flow deadline and still settle (no flow left
// in flight), with every arrival accounted exactly once.
func TestOpenLoopDeadlineDrops(t *testing.T) {
	res, pool := runOpenLoop(t, OpenLoopConfig{
		Arrival:      workload.Poisson(200),
		Sizes:        workload.FixedSize(64 << 10),
		Rng:          sim.NewRNG(sim.DeriveSeed(5, 2)),
		Window:       2 * time.Second,
		FlowDeadline: time.Second,
	}, 2) // 200/s × 64KB ≈ 100 Mbps offered on a 2 Mbps link
	if !pool.Done() {
		t.Fatal("overloaded pool never settled — drop-on-deadline is the anti-deadlock guarantee")
	}
	if res.Dropped == 0 {
		t.Fatal("gross overload produced no deadline drops")
	}
	if got := res.Completed + res.Dropped + res.Shed + res.Failed; got != res.Offered {
		t.Fatalf("accounting leak: completed+dropped+shed+failed = %d, offered = %d", got, res.Offered)
	}
	if res.PeakInFlight == 0 {
		t.Fatal("peak in-flight never recorded")
	}
}

// TestOpenLoopDeadlineAbortsWedgedFlows: when the path goes permanently dark
// mid-fetch, deadline-expired flows must be aborted (subflows reset), not
// gracefully closed — a DATA_FIN on a black-holed connection would strand the
// client retransmitting with backoff for minutes of simulated time after the
// pool has written the flow off. The regression check is that the client
// manager holds no connections once the pool settles. (The server side cannot
// be reclaimed the same way: the abort RSTs die on the dead path, so its
// connections legitimately retransmit into the black hole until their own
// MaxRTORetries teardown — the drain below checks that tail is bounded.)
func TestOpenLoopDeadlineAbortsWedgedFlows(t *testing.T) {
	s := sim.New(5)
	n := netem.Build(s, netem.Symmetric("bn", netem.Mbps(4), 5*time.Millisecond, 64<<10, 0))
	srvConn := core.TCPOnlyConfig()
	srvConn.SubflowTemplate.MaxRTORetries = 3
	srvConn.SubflowTemplate.MaxRTO = 2 * time.Second
	if _, err := StartServer(core.NewManager(n.Server), ServerConfig{Port: 80, Conn: srvConn}); err != nil {
		t.Fatal(err)
	}
	cliMgr := core.NewManager(n.Client)
	pool, err := NewOpenLoopPool(cliMgr, OpenLoopConfig{
		Arrival:      workload.Poisson(40),
		Sizes:        workload.FixedSize(256 << 10),
		Rng:          sim.NewRNG(sim.DeriveSeed(5, 4)),
		Window:       time.Second,
		FlowDeadline: 2 * time.Second,
		ServerAddr:   n.ServerAddr(0),
		ServerPort:   80,
		Conn:         core.TCPOnlyConfig(),
		Iface:        n.Client.Interfaces()[0],
	})
	if err != nil {
		t.Fatal(err)
	}
	pool.Start()
	s.ScheduleAt(300*time.Millisecond, func() { n.Path(0).SetDown(true) })
	for !pool.Done() && s.Now() < 60*time.Second && s.Step() {
	}
	res := pool.Result()
	if !pool.Done() {
		t.Fatalf("pool never settled after the path died: %+v", res)
	}
	if res.Dropped == 0 {
		t.Fatalf("dead path produced no deadline drops: %+v", res)
	}
	if live := len(cliMgr.Connections()); live != 0 {
		t.Fatalf("%d client connections still open at settlement — dropped flows were not aborted", live)
	}
	settled := s.Now()
	// Server-side teardown: 3 retries at RTOs capped to 2s give up within a
	// few seconds; a lingering drain here means teardown timers leaked.
	for s.Step() {
	}
	if s.Now() > settled+30*time.Second {
		t.Fatalf("events lingered %v past settlement — black-holed server connections never tore down", s.Now()-settled)
	}
}

// TestOpenLoopInFlightCap: with MaxInFlight=1 the pool sheds concurrent
// arrivals instead of dialing them, and shed flows still count as offered.
func TestOpenLoopInFlightCap(t *testing.T) {
	res, _ := runOpenLoop(t, OpenLoopConfig{
		Arrival:      workload.Poisson(100),
		Sizes:        workload.FixedSize(32 << 10),
		Rng:          sim.NewRNG(sim.DeriveSeed(5, 3)),
		Window:       2 * time.Second,
		FlowDeadline: 2 * time.Second,
		MaxInFlight:  1,
	}, 2)
	if res.Shed == 0 {
		t.Fatal("in-flight cap of 1 under 100 arrivals/s shed nothing")
	}
	if res.PeakInFlight > 1 {
		t.Fatalf("peak in-flight %d exceeds the cap of 1", res.PeakInFlight)
	}
	if got := res.Completed + res.Dropped + res.Shed + res.Failed; got != res.Offered {
		t.Fatalf("accounting leak: %d settled vs %d offered", got, res.Offered)
	}
}
