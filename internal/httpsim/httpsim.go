// Package httpsim models the apachebench workload of Figure 11: a pool of
// closed-loop clients that each open a connection, send a small request,
// read a fixed-size response, close the connection and immediately issue the
// next request. The server answers every request with the configured
// transfer size.
//
// Both client and server run over the core package's connection API, so the
// same workload can be driven over MPTCP, over plain TCP (EnableMPTCP=false)
// and over TCP on a bonded link, which are exactly the three configurations
// the figure compares.
package httpsim

import (
	"encoding/binary"
	"fmt"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/sim"
	"mptcpgo/internal/telemetry"
	"mptcpgo/internal/trace"
)

// requestSize is the size of the client's request message: a fixed header
// carrying the desired response length.
const requestSize = 128

// ServerConfig configures the HTTP-like server.
type ServerConfig struct {
	Port uint16
	Conn core.Config
}

// Server answers requests with the requested number of bytes.
type Server struct {
	listener *core.Listener
	// scratch is the shared request-read buffer: reads are consumed into it
	// and appended to the per-connection request buffer, so the read loop
	// does not allocate per call (the server runs on a single-threaded
	// simulator, so one buffer serves all connections).
	scratch []byte
	// chunk is the shared all-zero response body slab. Write copies it into
	// the send queue, and no handler ever mutates it, so one slab serves
	// every connection instead of a 32 KiB allocation per accepted flow.
	chunk []byte
	// Served counts completed responses.
	Served uint64
}

// StartServer installs the server on the given manager.
func StartServer(mgr *core.Manager, cfg ServerConfig) (*Server, error) {
	if cfg.Port == 0 {
		cfg.Port = 80
	}
	s := &Server{scratch: make([]byte, 4096), chunk: make([]byte, 32<<10)}
	l, err := mgr.Listen(cfg.Port, cfg.Conn, func(c *core.Connection) {
		s.handle(c)
	})
	if err != nil {
		return nil, err
	}
	s.listener = l
	return s, nil
}

func (s *Server) handle(c *core.Connection) {
	var reqBuf []byte
	responding := false
	var remaining int

	var pumpResponse func()
	pumpResponse = func() {
		for remaining > 0 {
			n := len(s.chunk)
			if n > remaining {
				n = remaining
			}
			w := c.Write(s.chunk[:n])
			if w == 0 {
				return
			}
			remaining -= w
		}
		if remaining == 0 && responding {
			responding = false
			s.Served++
			c.Close()
		}
	}

	c.OnReadable = func() {
		for {
			n := c.ReadInto(s.scratch)
			if n == 0 {
				break
			}
			reqBuf = append(reqBuf, s.scratch[:n]...)
		}
		if !responding && len(reqBuf) >= requestSize {
			size := int(binary.BigEndian.Uint32(reqBuf[0:4]))
			reqBuf = reqBuf[requestSize:]
			responding = true
			remaining = size
			pumpResponse()
		}
	}
	c.OnWritable = pumpResponse
}

// ClientPoolConfig configures the closed-loop client pool.
type ClientPoolConfig struct {
	// Clients is the number of concurrent closed-loop clients
	// (apachebench -c).
	Clients int
	// TotalRequests stops the benchmark after this many completed requests
	// (apachebench -n). Zero means run until the deadline.
	TotalRequests int
	// TransferSize is the response size requested from the server.
	TransferSize int
	// ServerAddr and ServerPort identify the server.
	ServerAddr packet.Addr
	ServerPort uint16
	// Conn is the connection configuration used for every request.
	Conn core.Config
	// Iface is the client interface to dial from.
	Iface *netem.Interface
	// OnDone, if set, is invoked exactly once when TotalRequests have
	// completed (or failed). Sharded drivers use it to stop stepping the
	// shard's simulator as soon as its last pool finishes.
	OnDone func()
	// SampleCap bounds raw latency-sample retention. Zero keeps every sample
	// (exact percentiles, today's behavior); a positive cap stops appending
	// raw samples once reached, after which Result's latency statistics come
	// from the pool's log-scale histogram instead.
	SampleCap int
}

// PoolResult summarises a benchmark run.
type PoolResult struct {
	Completed      int
	Failed         int
	Duration       time.Duration
	RequestsPerSec float64
	MeanLatency    time.Duration
	P95Latency     time.Duration
	BytesReceived  uint64
}

// ClientPool drives the closed-loop clients.
type ClientPool struct {
	cfg     ClientPoolConfig
	mgr     *core.Manager
	sim     *sim.Simulator
	started time.Duration

	completed int
	failed    int
	bytes     uint64
	latency   *trace.Sampler
	hist      *telemetry.Histogram
	capped    bool
	stopped   bool
	// finishedAt records when the TotalRequests-th request completed, so
	// Result measures the actual benchmark window rather than however far the
	// caller happened to run the simulator afterwards.
	finishedAt time.Duration
	doneFired  bool

	// scratch is the shared response-drain buffer: clients only count
	// received bytes, so the read loop consumes into it without allocating.
	// Its size matches the old per-call Read cap — read granularity feeds
	// the receive-window-update heuristic, so it must not change.
	scratch []byte
}

// NewClientPool creates a pool bound to the client's manager.
func NewClientPool(mgr *core.Manager, cfg ClientPoolConfig) (*ClientPool, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.TransferSize <= 0 {
		cfg.TransferSize = 64 << 10
	}
	if cfg.ServerPort == 0 {
		cfg.ServerPort = 80
	}
	if cfg.Iface == nil {
		if ifaces := mgr.Host().Interfaces(); len(ifaces) > 0 {
			cfg.Iface = ifaces[0]
		} else {
			return nil, fmt.Errorf("httpsim: client host has no interfaces")
		}
	}
	return &ClientPool{
		cfg:     cfg,
		mgr:     mgr,
		sim:     mgr.Host().Sim(),
		latency: trace.NewSampler(),
		hist:    telemetry.NewLatencyHistogram(),
		scratch: make([]byte, 64<<10),
	}, nil
}

// Start launches all clients at the current simulation time.
func (p *ClientPool) Start() {
	p.started = p.sim.Now()
	for i := 0; i < p.cfg.Clients; i++ {
		// Stagger client start slightly so the initial handshakes do not all
		// collide in one burst.
		delay := time.Duration(i) * 100 * time.Microsecond
		p.sim.Schedule(delay, p.issueRequest)
	}
}

// Stop prevents new requests from being issued.
func (p *ClientPool) Stop() { p.stopped = true }

// issueRequest opens a connection, sends one request and reads the response.
func (p *ClientPool) issueRequest() {
	if p.stopped || (p.cfg.TotalRequests > 0 && p.completed+p.failed >= p.cfg.TotalRequests) {
		return
	}
	start := p.sim.Now()
	conn, err := p.mgr.Dial(p.cfg.Iface, packet.Endpoint{Addr: p.cfg.ServerAddr, Port: p.cfg.ServerPort}, p.cfg.Conn)
	if err != nil {
		p.failed++
		p.noteProgress() // a dial failure can be the budget-exhausting event
		// Stay closed-loop like finish() does, but back off a little: a
		// synchronous dial failure rescheduled at delay 0 would spin the
		// event queue without advancing simulated time.
		p.sim.Schedule(time.Millisecond, p.issueRequest)
		return
	}

	received := 0
	done := false
	finish := func(ok bool) {
		if done {
			return
		}
		done = true
		if p.doneFired {
			// The request budget was reached while this request was still in
			// flight: it falls outside the measurement window and is not
			// counted, so Completed never exceeds TotalRequests and the
			// (count, window) pair stays consistent.
			return
		}
		if ok {
			p.completed++
			p.bytes += uint64(received)
			p.recordLatency(float64(p.sim.Now()-start) / float64(time.Millisecond))
		} else {
			p.failed++
		}
		p.noteProgress()
		// Closed loop: immediately issue the next request.
		p.sim.Schedule(0, p.issueRequest)
	}

	conn.OnEstablished = func() {
		req := make([]byte, requestSize)
		binary.BigEndian.PutUint32(req[0:4], uint32(p.cfg.TransferSize))
		conn.Write(req)
	}
	conn.OnReadable = func() {
		for {
			n := conn.ReadInto(p.scratch)
			if n == 0 {
				break
			}
			received += n
		}
		if conn.EOF() {
			conn.Close()
			finish(received >= p.cfg.TransferSize)
		}
	}
	conn.OnClosed = func(err error) {
		finish(err == nil && received >= p.cfg.TransferSize)
	}
}

// noteProgress records the completion time of the final request and fires
// the OnDone hook once the configured request budget is exhausted.
func (p *ClientPool) noteProgress() {
	if p.cfg.TotalRequests <= 0 || p.completed+p.failed < p.cfg.TotalRequests || p.doneFired {
		return
	}
	p.doneFired = true
	p.finishedAt = p.sim.Now()
	if p.cfg.OnDone != nil {
		p.cfg.OnDone()
	}
}

// recordLatency feeds one completed-request latency (milliseconds) into the
// histogram (always) and the raw sampler (until SampleCap, if set).
func (p *ClientPool) recordLatency(ms float64) {
	p.hist.Observe(ms)
	if p.cfg.SampleCap > 0 && p.latency.Len() >= p.cfg.SampleCap {
		p.capped = true
		return
	}
	p.latency.Record(ms, p.sim.Now())
}

// Done reports whether the pool has exhausted its TotalRequests budget (always
// false for deadline-bounded pools with TotalRequests == 0).
func (p *ClientPool) Done() bool { return p.doneFired }

// LatencyHist returns the pool's log-scale latency histogram. Always
// populated, whether or not raw samples are capped.
func (p *ClientPool) LatencyHist() *telemetry.Histogram { return p.hist }

// Capped reports whether raw latency samples were dropped due to SampleCap;
// when true, exact-order-statistic percentiles are unavailable and callers
// must use the histogram.
func (p *ClientPool) Capped() bool { return p.capped }

// Progress returns live workload counters (completed+failed, offered). Safe
// only on the pool's own shard goroutine; telemetry publication copies the
// values into atomic cells for cross-goroutine readers.
func (p *ClientPool) Progress() (done, offered int) {
	return p.completed + p.failed, p.cfg.TotalRequests
}

// LatencySamples returns the per-request latencies in milliseconds, in
// completion order. The slice is owned by the pool; callers that outlive it
// must copy.
func (p *ClientPool) LatencySamples() []float64 { return p.latency.Samples() }

// Result returns the benchmark summary as of the current simulation time. For
// pools with a TotalRequests budget that has been reached, the measurement
// window ends when the final request completed, not at the (possibly much
// later) time the simulator stopped.
func (p *ClientPool) Result() PoolResult {
	end := p.sim.Now()
	if p.doneFired {
		end = p.finishedAt
	}
	dur := end - p.started
	res := PoolResult{
		Completed:     p.completed,
		Failed:        p.failed,
		Duration:      dur,
		BytesReceived: p.bytes,
	}
	if dur > 0 {
		res.RequestsPerSec = float64(p.completed) / dur.Seconds()
	}
	switch {
	case p.capped:
		// Raw samples were truncated at SampleCap: report from the histogram,
		// which saw every observation.
		res.MeanLatency = time.Duration(p.hist.Mean() * float64(time.Millisecond))
		res.P95Latency = time.Duration(p.hist.Quantile(95) * float64(time.Millisecond))
	case p.latency.Len() > 0:
		res.MeanLatency = time.Duration(p.latency.Mean() * float64(time.Millisecond))
		res.P95Latency = time.Duration(p.latency.Percentile(95) * float64(time.Millisecond))
	}
	return res
}
