package httpsim

import (
	"testing"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/sim"
)

func runPool(t *testing.T, cfg core.Config, clients, requests, size int) PoolResult {
	t.Helper()
	s := sim.New(5)
	n := netem.Build(s, netem.DualGigabitSpec()...)
	cliMgr := core.NewManager(n.Client)
	srvMgr := core.NewManager(n.Server)

	srv, err := StartServer(srvMgr, ServerConfig{Port: 80, Conn: cfg})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewClientPool(cliMgr, ClientPoolConfig{
		Clients:       clients,
		TotalRequests: requests,
		TransferSize:  size,
		ServerAddr:    n.ServerAddr(0),
		ServerPort:    80,
		Conn:          cfg,
		Iface:         n.Client.Interfaces()[0],
	})
	if err != nil {
		t.Fatal(err)
	}
	pool.Start()
	if err := s.RunUntil(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if srv.Served == 0 {
		t.Fatal("server served nothing")
	}
	return pool.Result()
}

func TestClosedLoopTCP(t *testing.T) {
	cfg := core.TCPOnlyConfig()
	res := runPool(t, cfg, 4, 40, 32<<10)
	if res.Completed < 40 {
		t.Fatalf("completed %d of 40 requests (failed %d)", res.Completed, res.Failed)
	}
	if res.RequestsPerSec <= 0 || res.MeanLatency <= 0 {
		t.Fatalf("missing rate/latency: %+v", res)
	}
	if res.BytesReceived < uint64(40*32<<10) {
		t.Fatalf("bytes received %d too small", res.BytesReceived)
	}
}

func TestClosedLoopMPTCP(t *testing.T) {
	cfg := core.DefaultConfig()
	res := runPool(t, cfg, 4, 30, 64<<10)
	if res.Completed < 30 {
		t.Fatalf("completed %d of 30 requests (failed %d)", res.Completed, res.Failed)
	}
}
