package fleet

import (
	"fmt"
	"os"
	"path/filepath"

	"mptcpgo/internal/trace"
)

// Per-shard pcap export. Every shard owns its network outright, so wire
// capture shards the same way the workload does: one classic pcap file per
// shard, named <scenario>-shard<NNN>.pcap, containing every segment any of
// the shard's links accepted (both directions), stamped with the shard's
// simulated time. Capture taps only observe — they write through the unified
// wire codec and never touch the segment — so enabling capture cannot change
// a scenario's merged result.

// CaptureTo taps every link of the shard's materialized network into w.
// Must be called after Materialize and before the shard starts stepping.
func (sh *Shard) CaptureTo(w *trace.PcapWriter) {
	trace.CapturePaths(w, sh.Sim.Now, sh.Net.Paths...)
}

// StartCapture opens the shard's capture file under dir and taps the
// shard's links into it. It returns a close function that flushes and
// closes the file (a no-op when dir is empty). Scenario shard runners call
// it right after Materialize.
func (sh *Shard) StartCapture(dir, scenario string) (func() error, error) {
	if dir == "" {
		return func() error { return nil }, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: shard %d capture: %w", sh.Index, err)
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-shard%03d.pcap", scenario, sh.Index))
	w, err := trace.NewPcapFile(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: shard %d capture: %w", sh.Index, err)
	}
	sh.Capture = w
	sh.CaptureTo(w)
	return w.Close, nil // idempotent: safe to defer and error-check explicitly
}
