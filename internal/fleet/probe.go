package fleet

import (
	"mptcpgo/internal/experiments"
	"mptcpgo/internal/probe"
)

// Per-shard flight recording. Like pcap capture, the recorder shards with the
// workload: each shard owns one probe.Recorder covering its global member
// range [Lo, Hi). The recorder runs entirely inside the shard's private
// simulator, so events and samples are stamped with shard sim-time and the
// merged stream (shard-index order, members ascending within a shard) is
// byte-identical at any worker count. Recording must never perturb results:
// the recorder's own timer events are self-counted (TimerEvents) so scenarios
// can subtract them from Sim.Processed, and all emission sites are nil-guarded
// so a scenario without a recorder takes zero extra work.

// StartProbe builds the shard's recorder from a trace spec and returns it
// (nil when the spec is disabled). Scenario shard runners call it right after
// Materialize and wire the recorder into the shard's managers and injectors.
func (sh *Shard) StartProbe(spec experiments.TraceSpec) *probe.Recorder {
	if !spec.Enabled() {
		return nil
	}
	sh.Probe = probe.NewRecorder(sh.Sim, sh.Lo, sh.Members(), spec.ProbeConfig())
	return sh.Probe
}

// probeEvents returns Sim.Processed minus the recorder's own sampler firings,
// so the "events" column a scenario reports is identical with and without the
// flight recorder attached.
func (sh *Shard) probeEvents() uint64 {
	return sh.Sim.Processed - sh.Probe.TimerEvents()
}
