package fleet

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"mptcpgo/internal/experiments"
	"mptcpgo/internal/telemetry"
)

// TestTelemetryChangesNothing is the telemetry plane's core contract (the
// same one the flight recorder honours): attaching a full plane — registry,
// profiler, per-shard tracker cells, latency histogram — must leave every
// scenario's merged result byte-identical to a detached run. All telemetry
// writes go to atomic side-channel cells and all reads are passive.
func TestTelemetryChangesNothing(t *testing.T) {
	cases := []struct {
		name string
		run  func(p *telemetry.Plane) (*experiments.Result, error)
	}{
		{"chaos", func(p *telemetry.Plane) (*experiments.Result, error) {
			spec := testChaosTraceSpec(2, 3)
			spec.Telemetry = p
			return RunChaos(spec)
		}},
		{"openloop", func(p *telemetry.Plane) (*experiments.Result, error) {
			spec := testOpenLoopSpec(2, 60)
			spec.Telemetry = p
			return RunOpenLoop(spec)
		}},
		{"corelink", func(p *telemetry.Plane) (*experiments.Result, error) {
			spec := testCorelinkSpec(2, 60, 30)
			spec.Telemetry = p
			return RunCorelink(spec)
		}},
		{"http", func(p *telemetry.Plane) (*experiments.Result, error) {
			spec := testHTTPSpec(2)
			spec.Telemetry = p
			return RunHTTP(spec)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			off, err := tc.run(nil)
			if err != nil {
				t.Fatalf("detached: %v", err)
			}
			plane := telemetry.New(tc.name)
			on, err := tc.run(plane)
			if err != nil {
				t.Fatalf("instrumented: %v", err)
			}
			jOff, jOn := encodeJSON(t, off), encodeJSON(t, on)
			if !bytes.Equal(jOff, jOn) {
				t.Fatalf("telemetry perturbed the merged result:\n--- off ---\n%s\n--- on ---\n%s", jOff, jOn)
			}
			// The plane must actually have observed the run, not just stayed
			// out of the way.
			snap := plane.Track.Snapshot()
			if snap.Shards == 0 || snap.ShardsDone != snap.Shards {
				t.Fatalf("tracker saw %d/%d shards done, want all attached and done", snap.ShardsDone, snap.Shards)
			}
			if snap.Events == 0 || snap.Segments == 0 {
				t.Fatalf("tracker recorded no activity: %+v", snap)
			}
			phases := map[string]bool{}
			for _, ph := range plane.Prof.Snapshot() {
				phases[ph.Path] = true
			}
			for _, want := range []string{"build-graph", "shard-step", "merge"} {
				if tc.name == "corelink" && want == "shard-step" {
					// Coupled shards are stepped by the epoch loop, not
					// StepUntil; the barrier span covers them instead.
					want = "epoch-barrier"
				}
				if !phases[want] {
					t.Fatalf("profiler missing %q span; recorded %v", want, phases)
				}
			}
			if tc.name == "corelink" && !phases["allocate"] {
				t.Fatalf("coupled run recorded no allocate span; recorded %v", phases)
			}
		})
	}
}

// latencyQuantileBits runs the open-loop workload with an attached plane and
// returns the exact bit patterns of the merged latency histogram's quantiles.
func latencyQuantileBits(t *testing.T, workers, shards int) [3]uint64 {
	t.Helper()
	spec := testOpenLoopSpec(workers, 60)
	spec.Shards = shards
	plane := telemetry.New("quantiles")
	spec.Telemetry = plane
	if _, err := RunOpenLoop(spec); err != nil {
		t.Fatal(err)
	}
	h := plane.Latency()
	if h.Count() == 0 {
		t.Fatal("run populated no latency histogram")
	}
	return [3]uint64{
		math.Float64bits(h.Quantile(50)),
		math.Float64bits(h.Quantile(95)),
		math.Float64bits(h.Quantile(99)),
	}
}

// TestTelemetryQuantilesWorkerInvariant pins the histogram path of the fleet
// latency pipeline: because quantiles are a pure function of integer bucket
// counts against fixed boundaries, and shard histograms merge in shard-index
// order, the reported quantiles are bit-identical at any worker count and any
// GOMAXPROCS.
func TestTelemetryQuantilesWorkerInvariant(t *testing.T) {
	base := latencyQuantileBits(t, 1, 3)
	if got := latencyQuantileBits(t, 4, 3); got != base {
		t.Fatalf("worker count changed latency quantiles: w1=%v w4=%v", base, got)
	}
	prev := runtime.GOMAXPROCS(4)
	got := latencyQuantileBits(t, 4, 3)
	runtime.GOMAXPROCS(prev)
	if got != base {
		t.Fatalf("GOMAXPROCS changed latency quantiles: base=%v gomaxprocs4=%v", base, got)
	}
}

// allRow finds the aggregate "all" row of the table whose columns include the
// latency percentiles, and returns cell lookup by column name.
func allRow(t *testing.T, res *experiments.Result) map[string]string {
	t.Helper()
	for _, table := range res.Tables {
		cols := table.Columns
		hasP99 := false
		for _, c := range cols {
			if c == "p99 ms" {
				hasP99 = true
			}
		}
		if !hasP99 {
			continue
		}
		for _, row := range table.Rows {
			if len(row) > 0 && row[0] == "all" {
				m := map[string]string{}
				for i, c := range cols {
					if i < len(row) {
						m[c] = row[i]
					}
				}
				return m
			}
		}
	}
	t.Fatal("no aggregate row with latency percentiles found")
	return nil
}

// TestOpenLoopLatencySampleCap exercises the capped-retention path: with a
// tiny per-pool sample cap the pools stop retaining raw samples and the
// scenario's percentiles come from the log-scale histogram instead of exact
// order statistics. Counts must not move at all; the latency columns may only
// move within the histogram's bucket resolution.
func TestOpenLoopLatencySampleCap(t *testing.T) {
	exact, err := RunOpenLoop(testOpenLoopSpec(2, 60))
	if err != nil {
		t.Fatal(err)
	}
	capped := testOpenLoopSpec(2, 60)
	capped.LatencySampleCap = 4
	approx, err := RunOpenLoop(capped)
	if err != nil {
		t.Fatal(err)
	}
	er, ar := allRow(t, exact), allRow(t, approx)
	for _, col := range []string{"offered", "done", "dropped", "shed", "failed"} {
		if er[col] != ar[col] {
			t.Fatalf("sample cap changed %q: exact=%s capped=%s", col, er[col], ar[col])
		}
	}
	res := telemetry.NewLatencyHistogram().RelativeResolution()
	for _, col := range []string{"p50 ms", "p99 ms"} {
		ev, err1 := strconv.ParseFloat(er[col], 64)
		av, err2 := strconv.ParseFloat(ar[col], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable latency cells %q: %q vs %q", col, er[col], ar[col])
		}
		if ev <= 0 || av <= 0 {
			t.Fatalf("%q not positive: exact=%g capped=%g", col, ev, av)
		}
		// Two bucket widths of slack: the capped value is a bucket
		// representative, the exact one an order statistic.
		if diff := math.Abs(av-ev) / ev; diff > 2*res+0.01 {
			t.Fatalf("%q drifted %.1f%% under the cap (resolution %.1f%%): exact=%g capped=%g",
				col, diff*100, res*100, ev, av)
		}
	}
}

// parsePromText asserts every non-comment line of a Prometheus text page is
// `name[{labels}] value` with a parseable float, and returns the metric names.
func parsePromText(t *testing.T, page string) map[string]bool {
	t.Helper()
	names := map[string]bool{}
	for _, line := range strings.Split(page, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		names[name] = true
	}
	return names
}

// TestMetricsEndpointDuringRun serves /metrics from a background goroutine
// while a fleet run executes and scrapes it concurrently: every scrape must
// be well-formed Prometheus text (the exposition reads only atomic
// snapshots), and the post-run scrape must carry the fleet totals.
func TestMetricsEndpointDuringRun(t *testing.T) {
	plane := telemetry.New("live")
	srv, err := telemetry.Serve("127.0.0.1:0", plane)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	url := fmt.Sprintf("http://%s/metrics", srv.Addr())

	scrape := func() string {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("scrape: %v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("scrape body: %v", err)
		}
		return string(body)
	}

	done := make(chan error, 1)
	go func() {
		spec := testOpenLoopSpec(2, 60)
		spec.Telemetry = plane
		_, err := RunOpenLoop(spec)
		done <- err
	}()
	scrapes := 0
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			final := scrape()
			names := parsePromText(t, final)
			for _, want := range []string{"fleet_shards", "fleet_events_total", "fleet_segments_total",
				"fleet_shard_step_lag_seconds", "fleet_latency_ms", "phase_wall_seconds_total"} {
				if !names[want] {
					t.Fatalf("final scrape missing %s:\n%s", want, final)
				}
			}
			if scrapes == 0 {
				t.Log("run finished before any concurrent scrape landed (fine on slow machines)")
			}
			return
		default:
			parsePromText(t, scrape())
			scrapes++
		}
	}
}
