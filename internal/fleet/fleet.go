// Package fleet is the sharded scenario engine for thousand-connection
// workloads: it partitions a many-member workload (closed-loop HTTP clients,
// incast senders, MPTCP/TCP traffic pairs) into independent shards, runs the
// shards in parallel across a worker pool, and merges the per-shard results
// deterministically.
//
// Each shard owns a private sim.Simulator, its own netem graph (built from an
// immutable spec slice) and one core.Manager per shard host; shards share
// nothing mutable — only the spec they were derived from and the
// concurrency-safe buffer pools. A shard's RNG seed is derived from the root
// seed and the shard index alone (sim.DeriveSeed), and merging walks shards
// in index order, so the merged output is byte-identical at any worker count.
// The shard count, by contrast, is part of the scenario: it decides how the
// workload is partitioned (how many clients share one server replica), the
// same way the machine count does in a real fleet.
package fleet

import (
	"fmt"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/experiments"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/probe"
	"mptcpgo/internal/sim"
	"mptcpgo/internal/telemetry"
	"mptcpgo/internal/trace"
)

// DefaultMembersPerShard sizes the default partition: one shard per 64
// workload members, which keeps per-shard simulations small enough to
// overlap well while leaving each server replica a meaningful concurrent
// load.
const DefaultMembersPerShard = 64

// DefaultDeadline bounds a shard's simulated time when the workload has a
// completion condition (all requests served, all blocks transferred).
const DefaultDeadline = 10 * time.Minute

// Shard is the per-shard execution context handed to a scenario's shard
// function: the global member range the shard owns, its derived seed, and —
// after Materialize — the shard-private simulator, network and MPTCP stacks.
type Shard struct {
	// Index and Count identify the shard within the fleet.
	Index, Count int
	// Seed is the shard's RNG seed, derived from the root seed and Index.
	Seed uint64
	// Lo and Hi delimit the global member indices [Lo, Hi) this shard owns.
	Lo, Hi int

	// Sim, Net and Managers are the shard-private runtime, populated by
	// Materialize. Nothing in them is shared with other shards.
	Sim      *sim.Simulator
	Net      *netem.Network
	Managers map[string]*core.Manager

	// Capture is the shard's pcap writer when StartCapture opened one;
	// scenarios check its EncodeErrors after the run — the stacks emit only
	// wire-expressible segments, so any skipped record is an emulator bug.
	Capture *trace.PcapWriter

	// Probe is the shard's flight recorder when StartProbe opened one (nil
	// otherwise; see probe.go). Its member range is the shard's [Lo, Hi).
	Probe *probe.Recorder

	// Telem is the shard's telemetry publication cell when a telemetry plane
	// is attached (nil otherwise). The step loop stores atomic snapshots into
	// it; progress/exposition goroutines only load — telemetry never feeds
	// back into the simulation.
	Telem *telemetry.ShardCell
	// Prof is the attached plane's phase profiler (shared across shards;
	// Profiler is concurrency-safe). Nil when telemetry is detached.
	Prof *telemetry.Profiler
	// flows reports live workload progress (done, offered) for the shard;
	// set by scenario shard functions via AttachTelemetry.
	flows func() (done, offered int64)
}

// Members returns the number of workload members the shard owns.
func (sh *Shard) Members() int { return sh.Hi - sh.Lo }

// Materialize builds the shard's private runtime from a graph spec: a fresh
// simulator seeded with the shard seed, the emulated network, and one MPTCP
// stack per host.
func (sh *Shard) Materialize(spec netem.GraphSpec) error {
	sh.Sim = sim.New(sh.Seed)
	n, err := netem.BuildGraph(sh.Sim, spec)
	if err != nil {
		return fmt.Errorf("fleet: shard %d: %w", sh.Index, err)
	}
	sh.Net = n
	sh.Managers = make(map[string]*core.Manager, len(n.Hosts))
	for _, h := range n.Hosts {
		sh.Managers[h.Name()] = core.NewManager(h)
	}
	return nil
}

// Manager returns the MPTCP stack of the named shard host, or nil.
func (sh *Shard) Manager(host string) *core.Manager { return sh.Managers[host] }

// SegmentsSent totals the wire segments serialized by every directional link
// of the shard's network — the per-shard numerator of the fleet-wide
// segments-per-second rate that BenchmarkFleetSegmentRate reports.
func (sh *Shard) SegmentsSent() uint64 {
	if sh.Net == nil {
		return 0
	}
	var n uint64
	for _, p := range sh.Net.Paths {
		n += p.LinkAB().Stats().SentPackets + p.LinkBA().Stats().SentPackets
	}
	return n
}

// AttachTelemetry wires the shard to a telemetry plane: allocates its
// publication cell and remembers the live flow-progress closure (called on
// the shard goroutine only). A nil plane is a no-op, keeping the untelemetered
// step loop exactly as it was.
func (sh *Shard) AttachTelemetry(p *telemetry.Plane, flows func() (done, offered int64)) {
	if p == nil {
		return
	}
	sh.Telem = p.Track.Cell(sh.Index, sh.Count)
	sh.Prof = p.Prof
	sh.flows = flows
	sh.publishTelemetry()
}

// publishTelemetry stores the shard's current counters into its atomic cell.
// Runs on the shard goroutine; the reads (Sim.Now, link stats, flow
// counters) are all plain field reads on shard-private state.
func (sh *Shard) publishTelemetry() {
	c := sh.Telem
	if c == nil {
		return
	}
	c.SimNowNs.Store(int64(sh.Sim.Now()))
	c.Events.Store(sh.Sim.Processed)
	c.Segments.Store(sh.SegmentsSent())
	if sh.flows != nil {
		done, offered := sh.flows()
		c.FlowsDone.Store(done)
		c.FlowsOffered.Store(offered)
	}
}

// FinishTelemetry marks the shard collected and publishes its final counters.
func (sh *Shard) FinishTelemetry() {
	if sh.Telem == nil {
		return
	}
	sh.publishTelemetry()
	sh.Telem.Done.Store(true)
}

// telemetryStride is how many simulator events the step loop processes
// between telemetry publications: rare enough to keep the hot loop free of
// atomic-store overhead, frequent enough for second-granularity progress.
const telemetryStride = 2048

// StepUntil steps the shard's simulator until done reports true, the event
// queue drains, or the simulated deadline passes — whichever comes first.
// Scenario shard functions use it with a completion counter so a shard stops
// the moment its last member finishes instead of idling to the deadline.
func (sh *Shard) StepUntil(deadline time.Duration, done func() bool) {
	s := sh.Sim
	if sh.Telem == nil {
		for !done() && s.Now() < deadline && s.Step() {
		}
	} else {
		span := sh.Prof.Start("shard-step")
		n := 0
		for !done() && s.Now() < deadline && s.Step() {
			n++
			if n&(telemetryStride-1) == 0 {
				sh.publishTelemetry()
			}
		}
		span.End()
	}
	// Bring lazily-settled counters (virtual link dequeues) up to the exact
	// stop point before the caller reads Sim.Processed or link stats.
	s.Settle()
	sh.publishTelemetry()
}

// plan normalizes a (members, shards) request: shards defaults to one per
// DefaultMembersPerShard members and is clamped to [1, members].
func plan(members, shards int) (int, error) {
	if members <= 0 {
		return 0, fmt.Errorf("fleet: workload has no members")
	}
	if shards <= 0 {
		shards = (members + DefaultMembersPerShard - 1) / DefaultMembersPerShard
	}
	if shards > members {
		shards = members
	}
	return shards, nil
}

// MakeShards partitions members workload items into count contiguous shards
// (balanced: the first members%count shards hold one extra item) and derives
// each shard's seed from the root seed. count <= 0 selects the default
// partition. The descriptors depend only on (root, members, count).
func MakeShards(root uint64, members, count int) ([]Shard, error) {
	count, err := plan(members, count)
	if err != nil {
		return nil, err
	}
	shards := make([]Shard, count)
	base, extra := members/count, members%count
	lo := 0
	for i := range shards {
		n := base
		if i < extra {
			n++
		}
		shards[i] = Shard{
			Index: i,
			Count: count,
			Seed:  sim.DeriveSeed(root, uint64(i)),
			Lo:    lo,
			Hi:    lo + n,
		}
		lo += n
	}
	return shards, nil
}

// Run partitions members items across shards (0 = default partition), runs fn
// for every shard on up to workers goroutines (0 = GOMAXPROCS) and returns the
// per-shard outputs in shard-index order. fn must treat everything outside its
// Shard as immutable; under that contract the outputs — and anything merged
// from them in shard order — are identical at any worker count.
func Run[T any](root uint64, members, shards, workers int, fn func(sh *Shard) (T, error)) ([]T, error) {
	descs, err := MakeShards(root, members, shards)
	if err != nil {
		return nil, err
	}
	return experiments.SweepWorkers(len(descs), workers, func(i int) (T, error) {
		return fn(&descs[i])
	})
}
