package fleet

import (
	"fmt"

	"mptcpgo/internal/experiments"
	"mptcpgo/internal/faults"
	"mptcpgo/internal/middlebox"
)

// The adversarial experiment grid crosses every adversarial-middlebox preset
// with every fault-schedule preset and runs a small fleet-chaos cell at each
// point. The table it produces is the robustness counterpart of the mbox
// matrix: where mbox asks "does MPTCP traverse this box", this grid asks
// "does the §2 deployability requirement survive the box AND an unreliable
// network at the same time" — every cell must end with each member either
// completing intact over multipath or falling back to a working regular TCP
// connection, never stalling, corrupting or dying.
//
// Registered with the experiments registry (the fleet package already
// depends on experiments, so registration lives here to keep the dependency
// one-way); run it with `mptcpbench -run adversarial`.

func init() {
	experiments.Register(experiments.Experiment{
		ID:    "adversarial",
		Title: "Adversarial middlebox × fault-schedule grid (§2, §3 robustness)",
		Run:   runAdversarial,
	})
}

// advExpectation states, per adversary preset, what a passing cell looks
// like; it is printed alongside the measured outcome like mbox's expected
// column.
func advExpectation(adv string) string {
	switch adv {
	case "", "none":
		return "multipath completes"
	case "strip-syn", "dpi":
		return "clean fallback at the handshake"
	case "dpi-mid":
		return "survives on the primary path"
	case "rst":
		return "joins killed; survives on the initial subflow"
	case "police":
		return "throttled secondary; completes"
	}
	return ""
}

func runAdversarial(opt experiments.Options) (*experiments.Result, error) {
	members := 2
	transfer := 192 << 10
	if opt.Quick {
		transfer = 64 << 10
	}

	type cell struct{ adv, fault string }
	var cells []cell
	for _, adv := range middlebox.AdversaryPresetNames() {
		for _, fault := range faults.PresetNames() {
			cells = append(cells, cell{adv, fault})
		}
	}

	type advOut struct {
		merge chaosMerge
	}
	outs, err := experiments.Sweep(len(cells), func(i int) (advOut, error) {
		c := cells[i]
		pcapDir := ""
		if opt.PcapDir != "" {
			pcapDir = opt.PcapDir
		}
		_, merge, err := runChaos(ChaosSpec{
			Seed:          opt.Seed + uint64(i)*101,
			Members:       members,
			TransferBytes: transfer,
			Faults:        faults.MustParse(c.fault),
			Adversary:     c.adv,
			Quick:         opt.Quick,
			PcapDir:       pcapDir,
			CaptureName:   fmt.Sprintf("adversarial-%02d", i),
			Label:         fmt.Sprintf("adversarial[%02d]: adversary=%s faults=%s", i, c.adv, c.fault),
		})
		if err != nil {
			return advOut{}, fmt.Errorf("adversarial case %d (adversary=%s faults=%s): %w", i, c.adv, c.fault, err)
		}
		return advOut{merge: merge}, nil
	})
	if err != nil {
		return nil, err
	}

	table := experiments.NewTable(
		fmt.Sprintf("adversary × fault grid, %d members per cell, %d KiB uploads", members, transfer>>10),
		"case", "adversary", "faults", "ok", "fallback", "stalled", "failed", "intact", "reasons", "verdict", "expected")
	violations := 0
	for i, c := range cells {
		m := outs[i].merge
		verdict := "pass"
		if m.stalled > 0 || m.failed > 0 || m.intact != m.members || m.encodeErrors > 0 {
			verdict = "VIOLATION"
			violations++
		}
		table.AddRow(fmt.Sprintf("%02d", i), c.adv, c.fault,
			fmt.Sprintf("%d", m.ok), fmt.Sprintf("%d", m.fallback),
			fmt.Sprintf("%d", m.stalled), fmt.Sprintf("%d", m.failed),
			fmt.Sprintf("%d/%d", m.intact, m.members),
			m.reasonSummary(), verdict, advExpectation(c.adv))
	}
	table.AddNote("invariant: every cell must show stalled=0, failed=0 and intact=members — each member completes its verified upload over multipath or falls back to working regular TCP")
	table.AddNote("cells: %d (%d adversary presets × %d fault presets); violations: %d",
		len(cells), len(middlebox.AdversaryPresetNames()), len(faults.PresetNames()), violations)

	res := &experiments.Result{}
	res.AddTable(table)
	if violations > 0 {
		return res, fmt.Errorf("adversarial: %d of %d grid cells violated the robustness invariant", violations, len(cells))
	}
	return res, nil
}
