package fleet

import (
	"fmt"
	"time"

	"mptcpgo/internal/capacity"
	"mptcpgo/internal/core"
	"mptcpgo/internal/experiments"
	"mptcpgo/internal/httpsim"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/trace"
)

// CDNSpec describes the fleet-cdn scenario: a CDN-egress incast. Every
// client fetches one object at t=0 — a flash crowd — and while each client
// has its own access link, every download direction transits the origin's
// shared egress port. The shards' server replicas model one logical origin,
// so the egress rate is a fleet-global resource: the aggregate download rate
// saturates at the shared rate and the completion-time tail stretches with
// the crowd size, regardless of how the clients are sharded.
type CDNSpec struct {
	// Seed is the root RNG seed.
	Seed uint64
	// Clients is the flash-crowd size.
	Clients int
	// ObjectSize is the bytes each client fetches (default 1 MB).
	ObjectSize int
	// Shards partitions the clients (0 = default partition); Workers bounds
	// parallel shard execution (0 = GOMAXPROCS; never changes the output).
	Shards, Workers int
	// Shared is the egress port every download transits (zero value =
	// "egress" at 200 Mbps, 100 ms epochs).
	Shared capacity.SharedLink
	// Weight gives client i's allocation weight on the egress (nil = equal).
	Weight func(i int) float64
	// Access configures each client's access link; zero selects a symmetric
	// 50 Mbps link with 10 ms one-way delay and 128 KB of buffering — fast
	// enough that the egress, not the access, is the bottleneck.
	Access netem.PathConfig
	// Conn is the client connection configuration (nil = MPTCP without
	// address advertisement, 128 KB buffers); Server configures the
	// replicas' listeners.
	Conn, Server *core.Config
	// Deadline caps each shard's simulated time (default 60 s — a flash
	// crowd that has not drained by then is reported as failed, not hung).
	Deadline time.Duration
	// Label overrides the result title; Quick is recorded in the metadata.
	Label string
	Quick bool
	// PcapDir, when non-empty, captures every shard's wire traffic into
	// <PcapDir>/fleet-cdn-shard<NNN>.pcap.
	PcapDir string
}

func (s CDNSpec) withDefaults() CDNSpec {
	if s.ObjectSize <= 0 {
		s.ObjectSize = 1 << 20
	}
	if s.Shared.RateBps == 0 {
		s.Shared.RateBps = netem.Mbps(200)
	}
	if s.Shared.Name == "" {
		s.Shared.Name = "egress"
	}
	if s.Shared.Epoch == 0 {
		s.Shared.Epoch = capacity.DefaultEpoch
	}
	if s.Access == (netem.PathConfig{}) {
		s.Access = netem.SymmetricPath(netem.Mbps(50), 10*time.Millisecond, 128<<10, 0)
	}
	if s.Conn == nil {
		conn := core.DefaultConfig()
		conn.AdvertiseAddresses = false
		conn.SendBufBytes = 128 << 10
		conn.RecvBufBytes = 128 << 10
		s.Conn = &conn
	}
	if s.Server == nil {
		srv := core.DefaultConfig()
		srv.AdvertiseAddresses = false
		s.Server = &srv
	}
	if s.Deadline <= 0 {
		s.Deadline = 60 * time.Second
	}
	return s
}

// cdnState is one shard's live flash crowd.
type cdnState struct {
	graph        netem.GraphSpec
	pools        []*httpsim.ClientPool
	remaining    int
	closeCapture func() error
}

// cdnShardOut is one shard's contribution: per-client completion times in
// client order, plus totals.
type cdnShardOut struct {
	clients     int
	finished    int
	failed      int
	bytes       uint64
	completions []float64
	events      uint64
}

// cdnScenario adapts the flash crowd to the epoch-coupled runner.
type cdnScenario struct {
	spec *CDNSpec
	c    *capacity.Coupler
}

func (cs *cdnScenario) Setup(sh *Shard) (*cdnState, *capacity.Meter, error) {
	spec := cs.spec
	g := netem.GraphSpec{}
	g.AddHost("server")
	for gi := sh.Lo; gi < sh.Hi; gi++ {
		g.AddLink(netem.LinkSpec{
			Name: fmt.Sprintf("access%d", gi),
			A:    clientHostName(gi), B: "server", Config: spec.Access,
			// Downloads flow server (B) to client (A): that direction shares
			// the origin's egress port.
			SharedBA: spec.Shared.Name,
		})
	}
	if err := sh.Materialize(g); err != nil {
		return nil, nil, err
	}
	closeCapture, err := sh.StartCapture(spec.PcapDir, "fleet-cdn")
	if err != nil {
		return nil, nil, err
	}
	st := &cdnState{graph: g, remaining: sh.Members(), closeCapture: closeCapture}

	if _, err := httpsim.StartServer(sh.Manager("server"), httpsim.ServerConfig{Port: 80, Conn: *spec.Server}); err != nil {
		return nil, nil, err
	}
	for gi := sh.Lo; gi < sh.Hi; gi++ {
		mgr := sh.Manager(clientHostName(gi))
		iface := mgr.Host().Interfaces()[0]
		pool, err := httpsim.NewClientPool(mgr, httpsim.ClientPoolConfig{
			Clients:       1,
			TotalRequests: 1,
			TransferSize:  spec.ObjectSize,
			ServerAddr:    iface.Path().Peer(iface).Addr(),
			ServerPort:    80,
			Conn:          *spec.Conn,
			Iface:         iface,
			OnDone:        func() { st.remaining-- },
		})
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: shard %d client %d: %w", sh.Index, gi, err)
		}
		st.pools = append(st.pools, pool)
		// Flash crowd: every client dials at t=0; the shared egress, not a
		// staggered start, decides who finishes when.
		sh.Sim.Schedule(0, pool.Start)
	}

	var weightOf func(i int) float64
	if spec.Weight != nil {
		lo := sh.Lo
		weightOf = func(i int) float64 { return spec.Weight(lo + i) }
	}
	m, err := capacity.NewMeter(cs.c, sh.Net, g, weightOf)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: shard %d: %w", sh.Index, err)
	}
	return st, m, nil
}

func (cs *cdnScenario) Done(_ *Shard, st *cdnState) bool { return st.remaining == 0 }

func (cs *cdnScenario) Collect(sh *Shard, st *cdnState) (cdnShardOut, error) {
	out := cdnShardOut{clients: sh.Members(), events: sh.Sim.Processed}
	for _, p := range st.pools {
		r := p.Result()
		out.finished += r.Completed
		out.failed += r.Failed
		out.bytes += r.BytesReceived
		out.completions = append(out.completions, p.LatencySamples()...)
	}
	if err := st.closeCapture(); err != nil {
		return cdnShardOut{}, err
	}
	return out, nil
}

// RunCDN executes the fleet-cdn scenario and returns the merged result,
// byte-identical at any worker count for a fixed spec.
func RunCDN(spec CDNSpec) (*experiments.Result, error) {
	spec = spec.withDefaults()
	if spec.Clients <= 0 {
		return nil, fmt.Errorf("fleet: cdn workload has no clients")
	}
	if err := spec.Shared.Validate(); err != nil {
		return nil, err
	}

	var coupler *capacity.Coupler
	scn := &cdnScenario{spec: &spec}
	outs, err := RunCoupled[*cdnState, cdnShardOut](
		spec.Seed, spec.Clients, spec.Shards, spec.Workers, spec.Deadline,
		func(descs []Shard) (*capacity.Coupler, error) {
			c, err := capacity.NewCoupler([]capacity.SharedLink{spec.Shared}, memberWeights(descs, spec.Weight))
			if err != nil {
				return nil, err
			}
			coupler = c
			scn.c = c
			return c, nil
		}, scn)
	if err != nil {
		return nil, err
	}

	title := spec.Label
	if title == "" {
		title = fmt.Sprintf("CDN flash crowd through shared egress %s (%s)",
			spec.Shared.Name, capacity.FormatRate(spec.Shared.RateBps))
	}
	res := &experiments.Result{ID: "fleet-cdn", Title: title, Seed: spec.Seed, Quick: spec.Quick}

	table := experiments.NewTable(
		fmt.Sprintf("%d clients × %sMB objects across %d shards, shared %s",
			spec.Clients, fmtMB(uint64(spec.ObjectSize)), len(outs), spec.Shared),
		"shard", "clients", "finished", "failed", "MB", "slowest ms", "p95 ms", "goodput Mbps", "events")
	var all cdnShardOut
	var allCompletions []float64
	slowest := make([]float64, len(outs))
	goodput := make([]float64, len(outs))
	for i, out := range outs {
		slowest[i] = trace.Max(out.completions)
		goodput[i] = shardGoodputMbps(out.bytes, slowest[i])
		table.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%d", out.clients),
			fmt.Sprintf("%d", out.finished), fmt.Sprintf("%d", out.failed),
			fmtMB(out.bytes), fmt.Sprintf("%.2f", slowest[i]),
			fmt.Sprintf("%.2f", trace.Percentile(out.completions, 95)),
			fmt.Sprintf("%.1f", goodput[i]), fmt.Sprintf("%d", out.events))
		all.finished += out.finished
		all.failed += out.failed
		all.bytes += out.bytes
		all.events += out.events
		allCompletions = append(allCompletions, out.completions...)
	}
	worst := trace.Max(allCompletions)
	table.AddRow("all", fmt.Sprintf("%d", spec.Clients),
		fmt.Sprintf("%d", all.finished), fmt.Sprintf("%d", all.failed),
		fmtMB(all.bytes), fmt.Sprintf("%.2f", worst),
		fmt.Sprintf("%.2f", trace.Percentile(allCompletions, 95)),
		fmt.Sprintf("%.1f", shardGoodputMbps(all.bytes, worst)), fmt.Sprintf("%d", all.events))
	table.AddNote("flash crowd: every client dials at t=0 and every download transits shared egress %q — fleet goodput divides total bytes by the slowest completion and saturates at the egress rate",
		spec.Shared.Name)
	res.AddTable(table)
	res.AddSeries(ShardSeries("slowest completion", "ms", slowest))
	res.AddSeries(ShardSeries("goodput", "Mbps", goodput))
	addCapacityReport(res, coupler)
	return res, nil
}
