package fleet

import (
	"fmt"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/experiments"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/trace"
)

// IncastSpec describes the incast/fan-in scenario: many synchronized senders
// each push one fixed-size block to a single aggregator over the N-host star
// graph, the barrier-synchronized partition/aggregate pattern of datacenter
// storage and MapReduce shuffles. Shards partition the senders; each shard
// owns an aggregator replica.
type IncastSpec struct {
	// Seed is the root RNG seed.
	Seed uint64
	// Senders is the total number of senders.
	Senders int
	// BlockSize is the bytes each sender transfers (default 256 KB).
	BlockSize int
	// Shards partitions the senders (0 = default partition); Workers bounds
	// parallel shard execution (0 = GOMAXPROCS).
	Shards, Workers int
	// Link configures each sender's access link to the aggregator; zero
	// selects a gigabit link with a shallow 64 KB queue.
	Link netem.PathConfig
	// Conn is the sender connection configuration; nil selects single-path
	// TCP (one link per sender, so multipath adds nothing).
	Conn *core.Config
	// Deadline caps each shard's simulated time (default DefaultDeadline).
	Deadline time.Duration
	// Label overrides the result title; Quick is recorded in the metadata.
	Label string
	Quick bool
	// PcapDir, when non-empty, captures every shard's wire traffic into
	// <PcapDir>/incast-shard<NNN>.pcap.
	PcapDir string
}

func (s IncastSpec) withDefaults() IncastSpec {
	if s.BlockSize <= 0 {
		s.BlockSize = 256 << 10
	}
	if s.Link == (netem.PathConfig{}) {
		s.Link = netem.SymmetricPath(netem.Gbps(1), 100*time.Microsecond, 64<<10, 0)
	}
	if s.Conn == nil {
		conn := core.TCPOnlyConfig()
		conn.SendBufBytes = 256 << 10
		conn.RecvBufBytes = 256 << 10
		s.Conn = &conn
	}
	if s.Deadline <= 0 {
		s.Deadline = DefaultDeadline
	}
	return s
}

// incastShardOut is one shard's contribution: per-sender completion times (ms,
// sender order), received bytes and the shard's event count.
type incastShardOut struct {
	senders     int
	finished    int
	failed      int
	bytes       uint64
	completions []float64
	events      uint64
}

// RunIncast executes the incast scenario and returns the merged result.
func RunIncast(spec IncastSpec) (*experiments.Result, error) {
	spec = spec.withDefaults()
	outs, err := Run(spec.Seed, spec.Senders, spec.Shards, spec.Workers, func(sh *Shard) (incastShardOut, error) {
		return runIncastShard(&spec, sh)
	})
	if err != nil {
		return nil, err
	}

	title := spec.Label
	if title == "" {
		title = "synchronized fan-in to one aggregator"
	}
	res := &experiments.Result{ID: "incast", Title: title, Seed: spec.Seed, Quick: spec.Quick}

	table := experiments.NewTable(
		fmt.Sprintf("%d senders × %s blocks across %d shards", spec.Senders, fmtMB(uint64(spec.BlockSize))+"MB", len(outs)),
		"shard", "senders", "finished", "failed", "MB", "slowest ms", "p95 ms", "goodput Mbps", "events")
	var all incastShardOut
	var allCompletions []float64
	slowest := make([]float64, len(outs))
	goodput := make([]float64, len(outs))
	for i, out := range outs {
		slowest[i] = trace.Max(out.completions)
		goodput[i] = shardGoodputMbps(out.bytes, slowest[i])
		table.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%d", out.senders),
			fmt.Sprintf("%d", out.finished), fmt.Sprintf("%d", out.failed),
			fmtMB(out.bytes), fmt.Sprintf("%.2f", slowest[i]),
			fmt.Sprintf("%.2f", trace.Percentile(out.completions, 95)),
			fmt.Sprintf("%.1f", goodput[i]), fmt.Sprintf("%d", out.events))
		all.finished += out.finished
		all.failed += out.failed
		all.bytes += out.bytes
		all.events += out.events
		allCompletions = append(allCompletions, out.completions...)
	}
	worst := trace.Max(allCompletions)
	table.AddRow("all", fmt.Sprintf("%d", spec.Senders),
		fmt.Sprintf("%d", all.finished), fmt.Sprintf("%d", all.failed),
		fmtMB(all.bytes), fmt.Sprintf("%.2f", worst),
		fmt.Sprintf("%.2f", trace.Percentile(allCompletions, 95)),
		fmt.Sprintf("%.1f", shardGoodputMbps(all.bytes, worst)), fmt.Sprintf("%d", all.events))
	table.AddNote("completion time is per-sender block transfer time; fleet goodput divides total bytes by the slowest completion (the fan-in barrier)")
	res.AddTable(table)
	res.AddSeries(ShardSeries("slowest completion", "ms", slowest))
	res.AddSeries(ShardSeries("aggregate goodput", "Mbps", goodput))
	return res, nil
}

// shardGoodputMbps is bytes transferred over the barrier window in Mbps.
func shardGoodputMbps(bytes uint64, slowestMs float64) float64 {
	if slowestMs <= 0 {
		return 0
	}
	return float64(bytes) * 8 / (slowestMs / 1e3) / 1e6
}

func senderHostName(i int) string { return fmt.Sprintf("s%05d", i) }

// runIncastShard builds one aggregator replica plus the shard's senders and
// runs the synchronized fan-in to completion.
func runIncastShard(spec *IncastSpec, sh *Shard) (incastShardOut, error) {
	g := netem.GraphSpec{}
	g.AddHost("agg")
	for gi := sh.Lo; gi < sh.Hi; gi++ {
		g.AddLink(netem.LinkSpec{
			Name: fmt.Sprintf("fanin%d", gi),
			A:    senderHostName(gi), B: "agg", Config: spec.Link,
		})
	}
	if err := sh.Materialize(g); err != nil {
		return incastShardOut{}, err
	}
	closeCapture, err := sh.StartCapture(spec.PcapDir, "incast")
	if err != nil {
		return incastShardOut{}, err
	}
	defer closeCapture()

	out := incastShardOut{senders: sh.Members()}
	remaining := sh.Members()

	// The aggregator drains every connection; a sender's block counts as
	// complete the moment its last byte is delivered in order (the metric
	// incast cares about — not the later close handshake).
	aggCfg := *spec.Conn
	aggCfg.EnableMPTCP = true // accept MPTCP and plain-TCP senders alike
	if _, err := sh.Manager("agg").Listen(80, aggCfg, func(c *core.Connection) {
		received := 0
		completed := false
		c.OnReadable = func() {
			for {
				data := c.Read(64 << 10)
				if len(data) == 0 {
					break
				}
				received += len(data)
				out.bytes += uint64(len(data))
			}
			if !completed && received >= spec.BlockSize {
				completed = true
				out.finished++
				out.completions = append(out.completions, float64(sh.Sim.Now())/float64(time.Millisecond))
				remaining--
			}
			if c.EOF() {
				c.Close()
			}
		}
	}); err != nil {
		return incastShardOut{}, err
	}
	payload := make([]byte, 32<<10)
	for gi := sh.Lo; gi < sh.Hi; gi++ {
		mgr := sh.Manager(senderHostName(gi))
		iface := mgr.Host().Interfaces()[0]
		conn, err := mgr.Dial(iface, packet.Endpoint{Addr: iface.Path().Peer(iface).Addr(), Port: 80}, *spec.Conn)
		if err != nil {
			return incastShardOut{}, fmt.Errorf("fleet: shard %d sender %d: %w", sh.Index, gi, err)
		}
		written := 0
		pump := func() {
			for written < spec.BlockSize {
				n := len(payload)
				if n > spec.BlockSize-written {
					n = spec.BlockSize - written
				}
				w := conn.Write(payload[:n])
				if w == 0 {
					return
				}
				written += w
			}
			conn.Close() // block fully queued: end the stream (DATA_FIN/FIN)
		}
		conn.OnEstablished = pump
		conn.OnWritable = pump
	}

	// All senders start at t=0: the fan-in is barrier-synchronized, which is
	// exactly what makes incast hard.
	sh.StepUntil(spec.Deadline, func() bool { return remaining == 0 })
	out.failed = out.senders - out.finished // blocks still incomplete at the deadline
	out.events = sh.Sim.Processed
	if err := closeCapture(); err != nil {
		return incastShardOut{}, err
	}
	return out, nil
}
