package fleet

import (
	"fmt"
	"time"

	"mptcpgo/internal/experiments"
	"mptcpgo/internal/httpsim"
	"mptcpgo/internal/telemetry"
	"mptcpgo/internal/trace"
)

// PoolMerge folds httpsim.PoolResults (and their latency traces) into one
// aggregate. Merging is deterministic as long as Add is called in a stable
// order — the engine always merges pools in member order within a shard and
// shards in index order.
type PoolMerge struct {
	Completed int
	Failed    int
	Bytes     uint64
	// Duration is the longest member window; with shards running concurrently
	// in the emulated fleet, the slowest member bounds the fleet wall-clock.
	Duration time.Duration
	// Samples holds the merged per-request latencies (milliseconds) in merge
	// order.
	Samples []float64
	// Hist is the merged log-scale latency histogram (always populated when
	// the pools carry one); Capped marks that at least one pool dropped raw
	// samples at its SampleCap, in which case latency statistics must come
	// from Hist.
	Hist   *telemetry.Histogram
	Capped bool
}

// Add folds one pool result and its latency samples into the aggregate.
// Callers fold pools in member order within a shard and shards in index
// order, which keeps the histogram merge (and hence Sum) deterministic.
func (m *PoolMerge) Add(r httpsim.PoolResult, samples []float64, hist *telemetry.Histogram, capped bool) {
	m.Completed += r.Completed
	m.Failed += r.Failed
	m.Bytes += r.BytesReceived
	if r.Duration > m.Duration {
		m.Duration = r.Duration
	}
	m.Samples = append(m.Samples, samples...)
	m.mergeHist(hist)
	m.Capped = m.Capped || capped
}

// Merge folds another aggregate (typically one shard's) into this one,
// preserving the raw samples so fleet-level percentiles weight requests, not
// shards.
func (m *PoolMerge) Merge(other PoolMerge) {
	m.Completed += other.Completed
	m.Failed += other.Failed
	m.Bytes += other.Bytes
	if other.Duration > m.Duration {
		m.Duration = other.Duration
	}
	m.Samples = append(m.Samples, other.Samples...)
	m.mergeHist(other.Hist)
	m.Capped = m.Capped || other.Capped
}

func (m *PoolMerge) mergeHist(h *telemetry.Histogram) {
	if h.Count() == 0 {
		return
	}
	if m.Hist == nil {
		m.Hist = telemetry.NewLatencyHistogram()
	}
	if err := m.Hist.Merge(h); err != nil {
		// All pool histograms share one constructor; a mismatch is a bug.
		panic(err)
	}
}

// Percentile returns the merged latency percentile in milliseconds: the exact
// order statistic from the raw samples when retention was unlimited, the
// histogram quantile once any pool was capped.
func (m *PoolMerge) Percentile(p float64) float64 {
	if m.Capped {
		return m.Hist.Quantile(p)
	}
	return trace.Percentile(m.Samples, p)
}

// MeanLatencyMs returns the merged mean latency in milliseconds under the
// same raw-vs-histogram dispatch as Percentile.
func (m *PoolMerge) MeanLatencyMs() float64 {
	if m.Capped {
		return m.Hist.Mean()
	}
	return trace.Mean(m.Samples)
}

// Result renders the aggregate as a PoolResult: counts and bytes are sums,
// the rate uses the merged window, and the latency statistics are recomputed
// from the merged samples (not averaged from per-shard statistics, which
// would weight shards instead of requests).
func (m *PoolMerge) Result() httpsim.PoolResult {
	res := httpsim.PoolResult{
		Completed:     m.Completed,
		Failed:        m.Failed,
		Duration:      m.Duration,
		BytesReceived: m.Bytes,
	}
	if m.Duration > 0 {
		res.RequestsPerSec = float64(m.Completed) / m.Duration.Seconds()
	}
	if m.Capped || len(m.Samples) > 0 {
		res.MeanLatency = time.Duration(m.MeanLatencyMs() * float64(time.Millisecond))
		res.P95Latency = time.Duration(m.Percentile(95) * float64(time.Millisecond))
	}
	return res
}

// ShardSeries builds a numeric series indexed by shard: X is the shard index,
// Y the per-shard value in shard order.
func ShardSeries(name, unit string, y []float64) experiments.Series {
	x := make([]float64, len(y))
	for i := range x {
		x[i] = float64(i)
	}
	return experiments.Series{Name: name, Unit: unit, XLabel: "shard", X: x, Y: y}
}

// fmtMs renders a duration as milliseconds with fixed precision, for table
// cells that must stay byte-stable across runs.
func fmtMs(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// fmtMB renders a byte count as megabytes with fixed precision.
func fmtMB(n uint64) string {
	return fmt.Sprintf("%.2f", float64(n)/(1<<20))
}
