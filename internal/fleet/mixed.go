package fleet

import (
	"fmt"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/experiments"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/trace"
)

// MixedSpec describes the mixed-traffic scenario: a fleet of client/server
// pairs, each running one foreground MPTCP bulk flow over a WiFi+3G pair of
// links while plain-TCP background flows compete on the WiFi link — the
// "does MPTCP coexist with background TCP" question at fleet scale. Shards
// partition the pairs.
type MixedSpec struct {
	// Seed is the root RNG seed.
	Seed uint64
	// Pairs is the total number of client/server pairs.
	Pairs int
	// Background is the number of plain-TCP background flows per pair
	// (default 2), all competing on the WiFi link.
	Background int
	// Duration is the simulated run length (default 5s); Warmup is excluded
	// from goodput measurement (default Duration/5).
	Duration, Warmup time.Duration
	// Shards partitions the pairs (0 = default partition); Workers bounds
	// parallel shard execution (0 = GOMAXPROCS).
	Shards, Workers int
	// Label overrides the result title; Quick is recorded in the metadata.
	Label string
	Quick bool
	// PcapDir, when non-empty, captures every shard's wire traffic into
	// <PcapDir>/mixed-shard<NNN>.pcap.
	PcapDir string
}

func (s MixedSpec) withDefaults() MixedSpec {
	if s.Background <= 0 {
		s.Background = 2
	}
	if s.Duration <= 0 {
		s.Duration = 5 * time.Second
	}
	if s.Warmup <= 0 || s.Warmup >= s.Duration {
		s.Warmup = s.Duration / 5
	}
	return s
}

// mixedShardOut carries one shard's per-pair goodputs (pair order).
type mixedShardOut struct {
	pairs  int
	fgMbps []float64 // foreground MPTCP goodput per pair
	bgMbps []float64 // aggregate background TCP goodput per pair
	events uint64
}

// RunMixed executes the mixed-traffic scenario and returns the merged result.
func RunMixed(spec MixedSpec) (*experiments.Result, error) {
	spec = spec.withDefaults()
	outs, err := Run(spec.Seed, spec.Pairs, spec.Shards, spec.Workers, func(sh *Shard) (mixedShardOut, error) {
		return runMixedShard(&spec, sh)
	})
	if err != nil {
		return nil, err
	}

	title := spec.Label
	if title == "" {
		title = "MPTCP foreground vs plain-TCP background traffic"
	}
	res := &experiments.Result{ID: "mixed", Title: title, Seed: spec.Seed, Quick: spec.Quick}

	table := experiments.NewTable(
		fmt.Sprintf("%d WiFi+3G pairs, %d background TCP flows each, across %d shards",
			spec.Pairs, spec.Background, len(outs)),
		"shard", "pairs", "fg Mbps (mean)", "bg Mbps (mean)", "fg share %", "events")
	var allFg, allBg []float64
	var events uint64
	fgSeries := make([]float64, len(outs))
	bgSeries := make([]float64, len(outs))
	for i, out := range outs {
		fgSeries[i] = trace.Mean(out.fgMbps)
		bgSeries[i] = trace.Mean(out.bgMbps)
		table.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%d", out.pairs),
			fmt.Sprintf("%.2f", fgSeries[i]), fmt.Sprintf("%.2f", bgSeries[i]),
			fmt.Sprintf("%.1f", shareP(fgSeries[i], bgSeries[i])),
			fmt.Sprintf("%d", out.events))
		allFg = append(allFg, out.fgMbps...)
		allBg = append(allBg, out.bgMbps...)
		events += out.events
	}
	fgMean, bgMean := trace.Mean(allFg), trace.Mean(allBg)
	table.AddRow("all", fmt.Sprintf("%d", spec.Pairs),
		fmt.Sprintf("%.2f", fgMean), fmt.Sprintf("%.2f", bgMean),
		fmt.Sprintf("%.1f", shareP(fgMean, bgMean)), fmt.Sprintf("%d", events))
	table.AddNote("fg = one MPTCP bulk flow over WiFi+3G; bg = aggregate of the plain-TCP flows sharing the WiFi link; the coupled controller should leave the background flows their fair share of WiFi while the foreground adds 3G capacity")
	res.AddTable(table)
	res.AddSeries(ShardSeries("foreground goodput", "Mbps", fgSeries))
	res.AddSeries(ShardSeries("background goodput", "Mbps", bgSeries))
	return res, nil
}

func shareP(fg, bg float64) float64 {
	if fg+bg <= 0 {
		return 0
	}
	return 100 * fg / (fg + bg)
}

// runMixedShard builds the shard's client/server pairs — each pair its own
// WiFi+3G island inside the shard simulator — and measures per-pair goodput
// over the post-warmup window.
func runMixedShard(spec *MixedSpec, sh *Shard) (mixedShardOut, error) {
	g := netem.GraphSpec{}
	wifi := netem.WiFi3GSpec()[0].Config
	threeG := netem.WiFi3GSpec()[1].Config
	for gi := sh.Lo; gi < sh.Hi; gi++ {
		cli, srv := fmt.Sprintf("cli%05d", gi), fmt.Sprintf("srv%05d", gi)
		g.AddLink(netem.LinkSpec{Name: fmt.Sprintf("wifi%d", gi), A: cli, B: srv, Config: wifi})
		g.AddLink(netem.LinkSpec{Name: fmt.Sprintf("3g%d", gi), A: cli, B: srv, Config: threeG})
	}
	if err := sh.Materialize(g); err != nil {
		return mixedShardOut{}, err
	}
	closeCapture, err := sh.StartCapture(spec.PcapDir, "mixed")
	if err != nil {
		return mixedShardOut{}, err
	}
	defer closeCapture()

	n := sh.Members()
	out := mixedShardOut{pairs: n, fgMbps: make([]float64, n), bgMbps: make([]float64, n)}
	fgBytes := make([]uint64, n)
	bgBytes := make([]uint64, n)

	fgCfg := core.DefaultConfig()
	fgCfg.SendBufBytes = 256 << 10
	fgCfg.RecvBufBytes = 256 << 10
	bgCfg := core.TCPOnlyConfig()
	bgCfg.SendBufBytes = 128 << 10
	bgCfg.RecvBufBytes = 128 << 10

	payload := make([]byte, 16<<10)
	for gi := sh.Lo; gi < sh.Hi; gi++ {
		rel := gi - sh.Lo
		cliMgr := sh.Manager(fmt.Sprintf("cli%05d", gi))
		srvMgr := sh.Manager(fmt.Sprintf("srv%05d", gi))
		wifiIface := cliMgr.Host().Interfaces()[0]
		remote := packet.Endpoint{Addr: wifiIface.Path().Peer(wifiIface).Addr(), Port: 80}

		counter := func(dst *uint64) core.AcceptCallback {
			return func(c *core.Connection) {
				c.OnReadable = func() {
					for {
						data := c.Read(64 << 10)
						if len(data) == 0 {
							break
						}
						*dst += uint64(len(data))
					}
				}
			}
		}
		if _, err := srvMgr.Listen(80, fgCfg, counter(&fgBytes[rel])); err != nil {
			return mixedShardOut{}, err
		}
		if _, err := srvMgr.Listen(81, bgCfg, counter(&bgBytes[rel])); err != nil {
			return mixedShardOut{}, err
		}

		dialBulk := func(cfg core.Config, port uint16) error {
			conn, err := cliMgr.Dial(wifiIface, packet.Endpoint{Addr: remote.Addr, Port: port}, cfg)
			if err != nil {
				return err
			}
			pump := func() {
				for conn.Write(payload) > 0 {
				}
			}
			conn.OnEstablished = pump
			conn.OnWritable = pump
			return nil
		}
		if err := dialBulk(fgCfg, 80); err != nil {
			return mixedShardOut{}, fmt.Errorf("fleet: shard %d pair %d: %w", sh.Index, gi, err)
		}
		for b := 0; b < spec.Background; b++ {
			if err := dialBulk(bgCfg, 81); err != nil {
				return mixedShardOut{}, fmt.Errorf("fleet: shard %d pair %d bg %d: %w", sh.Index, gi, b, err)
			}
		}
	}

	// Snapshot at warmup, measure until Duration.
	fgBase := make([]uint64, n)
	bgBase := make([]uint64, n)
	sh.Sim.Schedule(spec.Warmup, func() {
		copy(fgBase, fgBytes)
		copy(bgBase, bgBytes)
	})
	if err := sh.Sim.RunUntil(spec.Duration); err != nil {
		return mixedShardOut{}, err
	}

	window := (spec.Duration - spec.Warmup).Seconds()
	for i := 0; i < n; i++ {
		out.fgMbps[i] = float64(fgBytes[i]-fgBase[i]) * 8 / window / 1e6
		out.bgMbps[i] = float64(bgBytes[i]-bgBase[i]) * 8 / window / 1e6
	}
	out.events = sh.Sim.Processed
	if err := closeCapture(); err != nil {
		return mixedShardOut{}, err
	}
	return out, nil
}
