package fleet

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"mptcpgo/internal/experiments"
	"mptcpgo/internal/faults"
	"mptcpgo/internal/probe"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files under testdata/")

func testTraceSpec(dir string) experiments.TraceSpec {
	return experiments.TraceSpec{Dir: dir, ProbeInterval: 50 * time.Millisecond}
}

// testChaosTraceSpec is the chaos workload the trace tests share: time-driven
// faults (flap500) only, so member behaviour derives from (seed, member
// index) alone and the recorded streams are comparable across shard layouts.
func testChaosTraceSpec(workers, shards int) ChaosSpec {
	return ChaosSpec{
		Seed:          23,
		Members:       6,
		Shards:        shards,
		Workers:       workers,
		TransferBytes: 64 << 10,
		Faults:        faults.MustParse("flap500"),
		Quick:         true,
	}
}

func readTraceFile(t *testing.T, dir, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatalf("trace output missing: %v", err)
	}
	if len(data) == 0 {
		t.Fatalf("trace output %s is empty", name)
	}
	return data
}

// TestTraceChangesNothing is the flight recorder's core contract: attaching
// it — events, counters and the time-series sampler — must leave every
// scenario's merged result byte-identical to an untraced run. The sampler's
// own timer firings are subtracted from the reported event totals and all
// probe reads are passive, so the JSON the CLI ships cannot tell whether the
// recorder was on.
func TestTraceChangesNothing(t *testing.T) {
	cases := []struct {
		name string
		run  func(tr experiments.TraceSpec) (*experiments.Result, error)
	}{
		{"chaos", func(tr experiments.TraceSpec) (*experiments.Result, error) {
			spec := testChaosTraceSpec(2, 3)
			spec.Trace = tr
			return RunChaos(spec)
		}},
		{"openloop", func(tr experiments.TraceSpec) (*experiments.Result, error) {
			spec := testOpenLoopSpec(2, 60)
			spec.Trace = tr
			return RunOpenLoop(spec)
		}},
		{"corelink", func(tr experiments.TraceSpec) (*experiments.Result, error) {
			spec := testCorelinkSpec(2, 60, 30)
			spec.Trace = tr
			return RunCorelink(spec)
		}},
		{"http", func(tr experiments.TraceSpec) (*experiments.Result, error) {
			spec := testHTTPSpec(2)
			spec.Trace = tr
			return RunHTTP(spec)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			off, err := tc.run(experiments.TraceSpec{})
			if err != nil {
				t.Fatalf("untraced: %v", err)
			}
			dir := t.TempDir()
			on, err := tc.run(testTraceSpec(dir))
			if err != nil {
				t.Fatalf("traced: %v", err)
			}
			jOff, jOn := encodeJSON(t, off), encodeJSON(t, on)
			if !bytes.Equal(jOff, jOn) {
				t.Fatalf("tracing perturbed the merged result:\n--- off ---\n%s\n--- on ---\n%s", jOff, jOn)
			}
			files, err := filepath.Glob(filepath.Join(dir, "*-events.jsonl"))
			if err != nil || len(files) != 1 {
				t.Fatalf("expected one events file, got %v (%v)", files, err)
			}
			events, err := probe.ParseJSONL(readTraceFile(t, dir, filepath.Base(files[0])))
			if err != nil {
				t.Fatal(err)
			}
			if len(events) == 0 {
				t.Fatal("traced run recorded no events")
			}
		})
	}
}

// TestTraceWorkerInvariance extends the worker-count contract to the trace
// files themselves: both the JSONL event stream and the trace.json summary
// must be byte-identical whether shards run sequentially under GOMAXPROCS=1
// or in parallel under GOMAXPROCS=4. Corelink additionally covers the
// epoch-allocation events recorded from the allocator goroutine.
func TestTraceWorkerInvariance(t *testing.T) {
	runs := []struct {
		name string
		base string // trace file basename prefix
		run  func(workers int, dir string) error
	}{
		{"chaos", "fleet-chaos", func(workers int, dir string) error {
			spec := testChaosTraceSpec(workers, 3)
			spec.Trace = testTraceSpec(dir)
			_, err := RunChaos(spec)
			return err
		}},
		{"corelink", "fleet-corelink", func(workers int, dir string) error {
			spec := testCorelinkSpec(workers, 60, 30)
			spec.Trace = testTraceSpec(dir)
			_, err := RunCorelink(spec)
			return err
		}},
	}
	for _, rc := range runs {
		rc := rc
		t.Run(rc.name, func(t *testing.T) {
			dir1, dir4 := t.TempDir(), t.TempDir()
			prev := runtime.GOMAXPROCS(1)
			err1 := rc.run(1, dir1)
			runtime.GOMAXPROCS(4)
			err4 := rc.run(4, dir4)
			runtime.GOMAXPROCS(prev)
			if err1 != nil {
				t.Fatalf("workers=1: %v", err1)
			}
			if err4 != nil {
				t.Fatalf("workers=4: %v", err4)
			}
			for _, name := range []string{rc.base + "-events.jsonl", rc.base + "-trace.json"} {
				b1 := readTraceFile(t, dir1, name)
				b4 := readTraceFile(t, dir4, name)
				if !bytes.Equal(b1, b4) {
					t.Errorf("%s differs between 1 and 4 workers", name)
				}
			}
		})
	}
}

// TestTraceShardCountInvariance re-partitions the same chaos members across
// 1, 2 and 4 shards and asserts the trace files do not move: events record
// only relative protocol quantities (never wire sequence numbers or keys,
// which come from the shard-shared RNG), and the flap500 fault schedule is
// time-driven, so a member's recorded stream is a function of (seed, member
// index) alone.
func TestTraceShardCountInvariance(t *testing.T) {
	var events, summary []byte
	for _, shards := range []int{1, 2, 4} {
		dir := t.TempDir()
		spec := testChaosTraceSpec(2, shards)
		spec.Trace = testTraceSpec(dir)
		if _, err := RunChaos(spec); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		ev := readTraceFile(t, dir, "fleet-chaos-events.jsonl")
		sm := readTraceFile(t, dir, "fleet-chaos-trace.json")
		if events == nil {
			events, summary = ev, sm
			continue
		}
		if !bytes.Equal(ev, events) {
			t.Errorf("shards=%d: events.jsonl differs from shards=1", shards)
		}
		if !bytes.Equal(sm, summary) {
			t.Errorf("shards=%d: trace.json differs from shards=1", shards)
		}
	}
}

// TestTraceGolden pins the head of the chaos event stream against a golden
// snippet: the JSONL wire format, kind names, payload conventions and event
// ordering are all load-bearing for external consumers (tracereport, CI).
// Regenerate with `go test ./internal/fleet/ -run TestTraceGolden -update`.
func TestTraceGolden(t *testing.T) {
	const goldenLines = 60
	dir := t.TempDir()
	spec := ChaosSpec{
		Seed:          7,
		Members:       2,
		TransferBytes: 48 << 10,
		Faults:        faults.MustParse("flap500"),
		Quick:         true,
		Trace:         testTraceSpec(dir),
	}
	if _, err := RunChaos(spec); err != nil {
		t.Fatal(err)
	}
	full := readTraceFile(t, dir, "fleet-chaos-events.jsonl")
	lines := bytes.SplitAfter(full, []byte{'\n'})
	if len(lines) > goldenLines {
		lines = lines[:goldenLines]
	}
	got := bytes.Join(lines, nil)

	goldenPath := filepath.Join("testdata", "chaos-events.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d lines)", goldenPath, len(lines))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden trace snippet drifted (run with -update if intentional):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestTraceDrainTailQuantified instruments the ROADMAP's RTO drain-tail
// observation: under a bursty-loss schedule the last useful delivery is
// followed by a run of exponentially backed-off retransmission timeouts, and
// the flight recorder must both capture the RTO events and let DrainTail
// quantify how long completion trailed because of them.
func TestTraceDrainTailQuantified(t *testing.T) {
	dir := t.TempDir()
	spec := ChaosSpec{
		Seed:          31,
		Members:       4,
		TransferBytes: 64 << 10,
		// Deep loss: 50% on both paths kills enough retransmissions that
		// recovery has to fall through fast retransmit into RTO backoff.
		Faults: faults.MustParse("loss:path=all,rate=0.5,at=200ms,dur=3s"),
		Quick:  true,
		Trace:  testTraceSpec(dir),
	}
	if _, err := RunChaos(spec); err != nil {
		t.Fatal(err)
	}
	events, err := probe.ParseJSONL(readTraceFile(t, dir, "fleet-chaos-events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	kinds := probe.CountKinds(events)
	if kinds[probe.KindRTO] == 0 {
		t.Fatal("loss schedule produced no RTO events in the trace")
	}
	tail := probe.DrainTail(events)
	if tail <= 0 {
		t.Fatalf("RTO events recorded but drain tail is %v", tail)
	}
	tails := probe.DrainTails(events)
	if len(tails) == 0 {
		t.Fatal("DrainTails returned no runs despite RTO events")
	}
	var worst probe.TailRun
	for _, r := range tails {
		if r.Tail() > worst.Tail() {
			worst = r
		}
	}
	if worst.LastRTO <= 0 || worst.Count <= 0 {
		t.Fatalf("worst tail run is malformed: %+v", worst)
	}
	t.Logf("drain tail %v across %d subflows with RTOs (worst: member=%d %d consecutive RTOs, final backoff %v)",
		tail, len(tails), worst.Member, worst.Count, worst.LastRTO)
	if tail < 100*time.Millisecond {
		t.Errorf("drain tail %v implausibly small for a bursty-loss run (expect at least one full min-RTO)", tail)
	}
}
