package fleet

import (
	"fmt"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/experiments"
	"mptcpgo/internal/httpsim"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/trace"
)

// HTTPClient is the resolved spec of one closed-loop client in an HTTP
// fleet: its access link, its request budget and its connection
// configuration. Specs are immutable once RunHTTP starts; shards read them
// concurrently.
type HTTPClient struct {
	// LinkName labels the client's access link in traces; defaults to
	// "access<i>".
	LinkName string
	// Link configures the client's access link (both directions mirrored when
	// BA is zero).
	Link netem.PathConfig
	// Requests is the client's closed-loop request budget (>= 1).
	Requests int
	// TransferSize is the response size the client requests.
	TransferSize int
	// Conn is the client's connection configuration.
	Conn core.Config
}

// HTTPSpec describes a fleet-http run: a pool of closed-loop clients, each on
// its own access link to a server, partitioned into shards that each own a
// server replica plus the shard's client hosts.
type HTTPSpec struct {
	// Seed is the root RNG seed; every shard derives its own seed from it.
	Seed uint64
	// Shards partitions the clients (0 = one shard per DefaultMembersPerShard
	// clients). The shard count is part of the scenario; the worker count is
	// not.
	Shards int
	// Workers bounds the parallel shard executions (0 = GOMAXPROCS).
	Workers int
	// Deadline caps each shard's simulated time (default DefaultDeadline).
	Deadline time.Duration
	// Clients lists the resolved per-client specs; the global client index is
	// the position in this slice.
	Clients []HTTPClient
	// Server is the listener configuration of every server replica (nil =
	// MPTCP-enabled default without address advertisement).
	Server *core.Config
	// Label overrides the result title.
	Label string
	// Quick is recorded in the result metadata.
	Quick bool
	// PcapDir, when non-empty, captures every shard's wire traffic into
	// <PcapDir>/fleet-http-shard<NNN>.pcap (classic pcap, raw IPv4).
	// Capture never changes the merged result.
	PcapDir string
}

// DefaultAccessLink derives the deterministic heterogeneous access link used
// by the stock fleet-http workload for global client index i: rates from 2 to
// 9.5 Mbps, RTTs from 10 to 190 ms, and ~250 ms of buffering — the
// manyclients example's link mix.
func DefaultAccessLink(i int) netem.PathConfig {
	rate := netem.Mbps(2 + 0.5*float64(i%16))
	return netem.SymmetricPath(rate,
		time.Duration(5+10*(i%10))*time.Millisecond,
		int(float64(rate)/8*0.250), 0)
}

// DefaultHTTPSpec builds the stock fleet-http workload: clients closed-loop
// clients on heterogeneous access links, requests MPTCP requests each for
// size-byte responses.
func DefaultHTTPSpec(seed uint64, clients, requests, size int) HTTPSpec {
	conn := core.DefaultConfig()
	// One access link per client: nothing useful for the server to advertise
	// back, and per-client buffers can stay modest.
	conn.AdvertiseAddresses = false
	conn.SendBufBytes = 128 << 10
	conn.RecvBufBytes = 128 << 10
	specs := make([]HTTPClient, clients)
	for i := range specs {
		specs[i] = HTTPClient{
			Link:         DefaultAccessLink(i),
			Requests:     requests,
			TransferSize: size,
			Conn:         conn,
		}
	}
	return HTTPSpec{Seed: seed, Clients: specs}
}

func (s HTTPSpec) withDefaults() HTTPSpec {
	if s.Deadline <= 0 {
		s.Deadline = DefaultDeadline
	}
	if s.Server == nil {
		srv := core.DefaultConfig()
		srv.AdvertiseAddresses = false
		s.Server = &srv
	}
	for i := range s.Clients {
		c := &s.Clients[i]
		if c.Requests <= 0 {
			c.Requests = 1
		}
		if c.TransferSize <= 0 {
			c.TransferSize = 64 << 10
		}
	}
	return s
}

// httpShardOut is one shard's contribution to the merged result.
type httpShardOut struct {
	clients int
	merge   PoolMerge
	events  uint64
}

// clientHostName names the global client i's host; zero-padding keeps names
// aligned in traces regardless of fleet size.
func clientHostName(i int) string { return fmt.Sprintf("c%05d", i) }

// RunHTTP executes the fleet-http scenario and returns the merged result.
// The merged output is byte-identical at any worker count for a fixed
// (seed, clients, shards).
func RunHTTP(spec HTTPSpec) (*experiments.Result, error) {
	spec = spec.withDefaults()
	outs, err := Run(spec.Seed, len(spec.Clients), spec.Shards, spec.Workers, func(sh *Shard) (httpShardOut, error) {
		return runHTTPShard(&spec, sh)
	})
	if err != nil {
		return nil, err
	}

	title := spec.Label
	if title == "" {
		title = "sharded closed-loop HTTP server workload"
	}
	res := &experiments.Result{ID: "fleet-http", Title: title, Seed: spec.Seed, Quick: spec.Quick}

	table := experiments.NewTable(
		fmt.Sprintf("%d closed-loop clients across %d shards", len(spec.Clients), len(outs)),
		"shard", "clients", "completed", "failed", "req/s", "mean ms", "p95 ms", "MB", "events")
	var total PoolMerge
	var totalEvents uint64
	rps := make([]float64, len(outs))
	p95 := make([]float64, len(outs))
	for i, out := range outs {
		r := out.merge.Result()
		rps[i] = r.RequestsPerSec
		p95[i] = trace.Percentile(out.merge.Samples, 95)
		table.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%d", out.clients),
			fmt.Sprintf("%d", r.Completed), fmt.Sprintf("%d", r.Failed),
			fmt.Sprintf("%.1f", r.RequestsPerSec), fmtMs(r.MeanLatency), fmtMs(r.P95Latency),
			fmtMB(r.BytesReceived), fmt.Sprintf("%d", out.events))
		total.Merge(out.merge)
		totalEvents += out.events
	}
	tr := total.Result()
	table.AddRow("all", fmt.Sprintf("%d", len(spec.Clients)),
		fmt.Sprintf("%d", tr.Completed), fmt.Sprintf("%d", tr.Failed),
		fmt.Sprintf("%.1f", tr.RequestsPerSec), fmtMs(tr.MeanLatency), fmtMs(tr.P95Latency),
		fmtMB(tr.BytesReceived), fmt.Sprintf("%d", totalEvents))
	res.AddTable(table)
	res.AddSeries(ShardSeries("req/s", "req/s", rps))
	res.AddSeries(ShardSeries("latency p95", "ms", p95))
	return res, nil
}

// runHTTPShard builds and runs one shard: a server replica plus the shard's
// client hosts, one single-client closed-loop pool per client host.
func runHTTPShard(spec *HTTPSpec, sh *Shard) (httpShardOut, error) {
	g := netem.GraphSpec{}
	g.AddHost("server")
	for gi := sh.Lo; gi < sh.Hi; gi++ {
		c := &spec.Clients[gi]
		name := c.LinkName
		if name == "" {
			name = fmt.Sprintf("access%d", gi)
		}
		g.AddLink(netem.LinkSpec{Name: name, A: clientHostName(gi), B: "server", Config: c.Link})
	}
	if err := sh.Materialize(g); err != nil {
		return httpShardOut{}, err
	}
	closeCapture, err := sh.StartCapture(spec.PcapDir, "fleet-http")
	if err != nil {
		return httpShardOut{}, err
	}
	defer closeCapture()

	if _, err := httpsim.StartServer(sh.Manager("server"), httpsim.ServerConfig{Port: 80, Conn: *spec.Server}); err != nil {
		return httpShardOut{}, err
	}

	remaining := sh.Members()
	pools := make([]*httpsim.ClientPool, 0, sh.Members())
	for gi := sh.Lo; gi < sh.Hi; gi++ {
		c := &spec.Clients[gi]
		mgr := sh.Manager(clientHostName(gi))
		iface := mgr.Host().Interfaces()[0]
		pool, err := httpsim.NewClientPool(mgr, httpsim.ClientPoolConfig{
			Clients:       1,
			TotalRequests: c.Requests,
			TransferSize:  c.TransferSize,
			ServerAddr:    iface.Path().Peer(iface).Addr(),
			ServerPort:    80,
			Conn:          c.Conn,
			Iface:         iface,
			OnDone:        func() { remaining-- },
		})
		if err != nil {
			return httpShardOut{}, fmt.Errorf("fleet: shard %d client %d: %w", sh.Index, gi, err)
		}
		pools = append(pools, pool)
		// Stagger starts by global index so the fleet-wide handshake herd is
		// spread out the same way regardless of the partition.
		sh.Sim.Schedule(time.Duration(gi%97)*127*time.Microsecond, pool.Start)
	}

	sh.StepUntil(spec.Deadline, func() bool { return remaining == 0 })

	out := httpShardOut{clients: sh.Members(), events: sh.Sim.Processed}
	for _, p := range pools {
		out.merge.Add(p.Result(), p.LatencySamples())
	}
	if err := closeCapture(); err != nil {
		return httpShardOut{}, err
	}
	return out, nil
}
