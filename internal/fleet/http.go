package fleet

import (
	"fmt"
	"time"

	"mptcpgo/internal/capacity"
	"mptcpgo/internal/core"
	"mptcpgo/internal/experiments"
	"mptcpgo/internal/httpsim"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/probe"
	"mptcpgo/internal/telemetry"
)

// HTTPClient is the resolved spec of one closed-loop client in an HTTP
// fleet: its access link, its request budget and its connection
// configuration. Specs are immutable once RunHTTP starts; shards read them
// concurrently.
type HTTPClient struct {
	// LinkName labels the client's access link in traces; defaults to
	// "access<i>".
	LinkName string
	// Link configures the client's access link (both directions mirrored when
	// BA is zero).
	Link netem.PathConfig
	// Requests is the client's closed-loop request budget (>= 1).
	Requests int
	// TransferSize is the response size the client requests.
	TransferSize int
	// Conn is the client's connection configuration.
	Conn core.Config
}

// HTTPSpec describes a fleet-http run: a pool of closed-loop clients, each on
// its own access link to a server, partitioned into shards that each own a
// server replica plus the shard's client hosts.
type HTTPSpec struct {
	// Seed is the root RNG seed; every shard derives its own seed from it.
	Seed uint64
	// Shards partitions the clients (0 = one shard per DefaultMembersPerShard
	// clients). The shard count is part of the scenario; the worker count is
	// not.
	Shards int
	// Workers bounds the parallel shard executions (0 = GOMAXPROCS).
	Workers int
	// Deadline caps each shard's simulated time (default DefaultDeadline).
	Deadline time.Duration
	// Clients lists the resolved per-client specs; the global client index is
	// the position in this slice.
	Clients []HTTPClient
	// Server is the listener configuration of every server replica (nil =
	// MPTCP-enabled default without address advertisement).
	Server *core.Config
	// Label overrides the result title.
	Label string
	// Quick is recorded in the result metadata.
	Quick bool
	// PcapDir, when non-empty, captures every shard's wire traffic into
	// <PcapDir>/fleet-http-shard<NNN>.pcap (classic pcap, raw IPv4).
	// Capture never changes the merged result.
	PcapDir string
	// Shared, when non-nil, couples every client's download direction to the
	// named shared bottleneck: the shards run in lock-stepped epoch windows
	// and jointly respect its rate. Nil keeps the shards free-running.
	Shared *capacity.SharedLink
	// Weight gives client i's allocation weight on the shared bottleneck
	// (nil = equal weights); ignored when Shared is nil.
	Weight func(i int) float64
	// Trace enables the flight recorder (events + counters + samples written
	// to Trace.Dir). Never changes the scenario's own result.
	Trace experiments.TraceSpec
	// Telemetry, when non-nil, attaches the run to a telemetry plane: live
	// shard progress cells, phase-profiler spans and the merged latency
	// histogram. Attaching never changes the merged result.
	Telemetry *telemetry.Plane
	// LatencySampleCap bounds per-pool raw latency-sample retention (0 =
	// unlimited, today's exact behavior). When capped, merged latency
	// statistics come from the log-scale histograms instead of raw samples —
	// within histogram bucket resolution of the exact order statistics.
	LatencySampleCap int
}

// DefaultAccessLink derives the deterministic heterogeneous access link used
// by the stock fleet-http workload for global client index i: rates from 2 to
// 9.5 Mbps, RTTs from 10 to 190 ms, and ~250 ms of buffering — the
// manyclients example's link mix.
func DefaultAccessLink(i int) netem.PathConfig {
	rate := netem.Mbps(2 + 0.5*float64(i%16))
	return netem.SymmetricPath(rate,
		time.Duration(5+10*(i%10))*time.Millisecond,
		int(float64(rate)/8*0.250), 0)
}

// DefaultHTTPSpec builds the stock fleet-http workload: clients closed-loop
// clients on heterogeneous access links, requests MPTCP requests each for
// size-byte responses.
func DefaultHTTPSpec(seed uint64, clients, requests, size int) HTTPSpec {
	conn := core.DefaultConfig()
	// One access link per client: nothing useful for the server to advertise
	// back, and per-client buffers can stay modest.
	conn.AdvertiseAddresses = false
	conn.SendBufBytes = 128 << 10
	conn.RecvBufBytes = 128 << 10
	specs := make([]HTTPClient, clients)
	for i := range specs {
		specs[i] = HTTPClient{
			Link:         DefaultAccessLink(i),
			Requests:     requests,
			TransferSize: size,
			Conn:         conn,
		}
	}
	return HTTPSpec{Seed: seed, Clients: specs}
}

func (s HTTPSpec) withDefaults() HTTPSpec {
	if s.Deadline <= 0 {
		s.Deadline = DefaultDeadline
	}
	if s.Server == nil {
		srv := core.DefaultConfig()
		srv.AdvertiseAddresses = false
		s.Server = &srv
	}
	for i := range s.Clients {
		c := &s.Clients[i]
		if c.Requests <= 0 {
			c.Requests = 1
		}
		if c.TransferSize <= 0 {
			c.TransferSize = 64 << 10
		}
	}
	if s.Shared != nil {
		shared := *s.Shared
		if shared.Name == "" {
			shared.Name = capacity.DefaultName
		}
		if shared.Epoch == 0 {
			shared.Epoch = capacity.DefaultEpoch
		}
		s.Shared = &shared
	}
	return s
}

// httpShardOut is one shard's contribution to the merged result.
type httpShardOut struct {
	clients int
	merge   PoolMerge
	events  uint64
	rec     *probe.Recorder
}

// clientHostName names the global client i's host; zero-padding keeps names
// aligned in traces regardless of fleet size.
func clientHostName(i int) string { return fmt.Sprintf("c%05d", i) }

// RunHTTP executes the fleet-http scenario and returns the merged result.
// The merged output is byte-identical at any worker count for a fixed
// (seed, clients, shards).
func RunHTTP(spec HTTPSpec) (*experiments.Result, error) {
	spec = spec.withDefaults()
	var outs []httpShardOut
	var coupler *capacity.Coupler
	var err error
	if spec.Shared != nil {
		if err := spec.Shared.Validate(); err != nil {
			return nil, err
		}
		scn := &httpCoupledScenario{spec: &spec}
		outs, err = RunCoupled[*httpState, httpShardOut](
			spec.Seed, len(spec.Clients), spec.Shards, spec.Workers, spec.Deadline,
			func(descs []Shard) (*capacity.Coupler, error) {
				c, err := capacity.NewCoupler([]capacity.SharedLink{*spec.Shared}, memberWeights(descs, spec.Weight))
				if err != nil {
					return nil, err
				}
				if spec.Telemetry != nil {
					c.Attach(spec.Telemetry.Reg, spec.Telemetry.Prof)
				}
				coupler = c
				scn.c = c
				return c, nil
			}, scn)
	} else {
		outs, err = Run(spec.Seed, len(spec.Clients), spec.Shards, spec.Workers, func(sh *Shard) (httpShardOut, error) {
			return runHTTPShard(&spec, sh)
		})
	}
	if err != nil {
		return nil, err
	}

	title := spec.Label
	if title == "" {
		title = "sharded closed-loop HTTP server workload"
		if spec.Shared != nil {
			title = fmt.Sprintf("sharded closed-loop HTTP through shared %s (%s)",
				spec.Shared.Name, capacity.FormatRate(spec.Shared.RateBps))
		}
	}
	res := &experiments.Result{ID: "fleet-http", Title: title, Seed: spec.Seed, Quick: spec.Quick}

	table := experiments.NewTable(
		fmt.Sprintf("%d closed-loop clients across %d shards", len(spec.Clients), len(outs)),
		"shard", "clients", "completed", "failed", "req/s", "mean ms", "p95 ms", "MB", "events")
	mergeSpan := spec.Telemetry.StartSpan("merge")
	var total PoolMerge
	var totalEvents uint64
	rps := make([]float64, len(outs))
	p95 := make([]float64, len(outs))
	for i, out := range outs {
		r := out.merge.Result()
		rps[i] = r.RequestsPerSec
		p95[i] = out.merge.Percentile(95)
		table.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%d", out.clients),
			fmt.Sprintf("%d", r.Completed), fmt.Sprintf("%d", r.Failed),
			fmt.Sprintf("%.1f", r.RequestsPerSec), fmtMs(r.MeanLatency), fmtMs(r.P95Latency),
			fmtMB(r.BytesReceived), fmt.Sprintf("%d", out.events))
		total.Merge(out.merge)
		totalEvents += out.events
	}
	tr := total.Result()
	table.AddRow("all", fmt.Sprintf("%d", len(spec.Clients)),
		fmt.Sprintf("%d", tr.Completed), fmt.Sprintf("%d", tr.Failed),
		fmt.Sprintf("%.1f", tr.RequestsPerSec), fmtMs(tr.MeanLatency), fmtMs(tr.P95Latency),
		fmtMB(tr.BytesReceived), fmt.Sprintf("%d", totalEvents))
	res.AddTable(table)
	res.AddSeries(ShardSeries("req/s", "req/s", rps))
	res.AddSeries(ShardSeries("latency p95", "ms", p95))
	if coupler != nil {
		addCapacityReport(res, coupler)
	}
	mergeSpan.End()
	spec.Telemetry.SetLatency(total.Hist)
	if spec.Trace.Enabled() {
		recs := make([]*probe.Recorder, len(outs))
		for i, out := range outs {
			recs[i] = out.rec
		}
		trr := experiments.BuildTraceResult("fleet-http-trace", title+" (flight recorder)", spec.Seed, spec.Quick, recs)
		if err := experiments.WriteTraceFiles(spec.Trace, "fleet-http", trr, experiments.MergedEvents(recs)); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// httpState is one shard's live closed-loop workload between the build and
// collect halves of a run.
type httpState struct {
	graph        netem.GraphSpec
	pools        []*httpsim.ClientPool
	remaining    int
	closeCapture func() error
}

func (st *httpState) done() bool { return st.remaining == 0 }

// buildHTTPShard materializes one shard without running it: a server replica
// plus the shard's client hosts, one single-client closed-loop pool per
// client host. tag, when non-nil, edits each client's link spec (by global
// client index) before the graph is built — the hook the coupled runner uses
// to mark shared directions.
func buildHTTPShard(spec *HTTPSpec, sh *Shard, tag func(gi int, l *netem.LinkSpec)) (*httpState, error) {
	buildSpan := spec.Telemetry.StartSpan("build-graph")
	defer buildSpan.End()
	g := netem.GraphSpec{}
	g.AddHost("server")
	for gi := sh.Lo; gi < sh.Hi; gi++ {
		c := &spec.Clients[gi]
		name := c.LinkName
		if name == "" {
			name = fmt.Sprintf("access%d", gi)
		}
		l := netem.LinkSpec{Name: name, A: clientHostName(gi), B: "server", Config: c.Link}
		if tag != nil {
			tag(gi, &l)
		}
		g.AddLink(l)
	}
	if err := sh.Materialize(g); err != nil {
		return nil, err
	}
	closeCapture, err := sh.StartCapture(spec.PcapDir, "fleet-http")
	if err != nil {
		return nil, err
	}
	rec := sh.StartProbe(spec.Trace)
	st := &httpState{graph: g, remaining: sh.Members(), closeCapture: closeCapture}

	if _, err := httpsim.StartServer(sh.Manager("server"), httpsim.ServerConfig{Port: 80, Conn: *spec.Server}); err != nil {
		return nil, err
	}

	for gi := sh.Lo; gi < sh.Hi; gi++ {
		c := &spec.Clients[gi]
		mgr := sh.Manager(clientHostName(gi))
		mgr.SetProbe(rec, gi)
		iface := mgr.Host().Interfaces()[0]
		pool, err := httpsim.NewClientPool(mgr, httpsim.ClientPoolConfig{
			Clients:       1,
			TotalRequests: c.Requests,
			TransferSize:  c.TransferSize,
			ServerAddr:    iface.Path().Peer(iface).Addr(),
			ServerPort:    80,
			Conn:          c.Conn,
			Iface:         iface,
			OnDone:        func() { st.remaining-- },
			SampleCap:     spec.LatencySampleCap,
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %d client %d: %w", sh.Index, gi, err)
		}
		st.pools = append(st.pools, pool)
		// Stagger starts by global index so the fleet-wide handshake herd is
		// spread out the same way regardless of the partition.
		sh.Sim.Schedule(time.Duration(gi%97)*127*time.Microsecond, pool.Start)
	}
	sh.AttachTelemetry(spec.Telemetry, func() (int64, int64) {
		var done, offered int64
		for _, p := range st.pools {
			d, o := p.Progress()
			done += int64(d)
			offered += int64(o)
		}
		return done, offered
	})
	rec.StartSampler(st.done)
	return st, nil
}

// collect finalizes one shard and returns its merge contribution.
func (st *httpState) collect(sh *Shard) (httpShardOut, error) {
	out := httpShardOut{clients: sh.Members(), events: sh.probeEvents(), rec: sh.Probe}
	for _, p := range st.pools {
		out.merge.Add(p.Result(), p.LatencySamples(), p.LatencyHist(), p.Capped())
	}
	if err := st.closeCapture(); err != nil {
		return httpShardOut{}, err
	}
	sh.FinishTelemetry()
	return out, nil
}

// runHTTPShard builds and free-runs one shard to completion or deadline.
func runHTTPShard(spec *HTTPSpec, sh *Shard) (httpShardOut, error) {
	st, err := buildHTTPShard(spec, sh, nil)
	if err != nil {
		return httpShardOut{}, err
	}
	sh.StepUntil(spec.Deadline, st.done)
	return st.collect(sh)
}

// httpCoupledScenario adapts the closed-loop workload to the epoch-coupled
// runner: the same graphs and pools, but every client's download direction is
// tagged with the shared bottleneck and the shards step in epoch windows.
type httpCoupledScenario struct {
	spec *HTTPSpec
	c    *capacity.Coupler
}

func (cs *httpCoupledScenario) Setup(sh *Shard) (*httpState, *capacity.Meter, error) {
	// Responses flow server (B) to client (A); that direction transits the
	// shared bottleneck.
	st, err := buildHTTPShard(cs.spec, sh, func(gi int, l *netem.LinkSpec) {
		l.SharedBA = cs.spec.Shared.Name
	})
	if err != nil {
		return nil, nil, err
	}
	var weightOf func(i int) float64
	if cs.spec.Weight != nil {
		lo := sh.Lo
		weightOf = func(i int) float64 { return cs.spec.Weight(lo + i) }
	}
	m, err := capacity.NewMeter(cs.c, sh.Net, st.graph, weightOf)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: shard %d: %w", sh.Index, err)
	}
	return st, m, nil
}

func (cs *httpCoupledScenario) Done(_ *Shard, st *httpState) bool { return st.done() }

func (cs *httpCoupledScenario) Collect(sh *Shard, st *httpState) (httpShardOut, error) {
	return st.collect(sh)
}
