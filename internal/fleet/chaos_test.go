package fleet

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mptcpgo/internal/faults"
	"mptcpgo/internal/middlebox"
	"mptcpgo/internal/trace"
)

func chaosRow(t *testing.T, spec ChaosSpec) []string {
	t.Helper()
	res, err := RunChaos(spec)
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	table := res.Tables[0]
	row := table.Rows[len(table.Rows)-1] // the "all" row
	if row[0] != "all" {
		t.Fatalf("expected trailing all row, got %v", row)
	}
	return row
}

// column indices in the chaos table.
const (
	colMembers = 1
	colOK      = 2
	colFB      = 3
	colStalled = 4
	colStallEp = 5
	colFailed  = 6
	colIntact  = 7
	colIfdown  = 11
	colIfup    = 12
)

func TestChaosBaseline(t *testing.T) {
	row := chaosRow(t, ChaosSpec{
		Seed:          7,
		Members:       4,
		TransferBytes: 96 << 10,
		Quick:         true,
	})
	if row[colOK] != "4" || row[colStalled] != "0" || row[colFailed] != "0" || row[colIntact] != "4" {
		t.Fatalf("baseline members should all complete intact: %v", row)
	}
}

// TestChaosMatrix runs every adversary preset against every fault preset and
// asserts the chaos invariant: each member either completes intact (ok or
// fallback) — never stalls, never fails, never corrupts the stream.
func TestChaosMatrix(t *testing.T) {
	for _, adv := range middlebox.AdversaryPresetNames() {
		for _, fault := range faults.PresetNames() {
			adv, fault := adv, fault
			t.Run(adv+"/"+fault, func(t *testing.T) {
				t.Parallel()
				row := chaosRow(t, ChaosSpec{
					Seed:          11,
					Members:       2,
					TransferBytes: 64 << 10,
					Faults:        faults.MustParse(fault),
					Adversary:     adv,
					Quick:         true,
				})
				if row[colStalled] != "0" || row[colFailed] != "0" {
					t.Errorf("adversary=%s faults=%s: stalls/failures in %v", adv, fault, row)
				}
				if row[colIntact] != row[colMembers] {
					t.Errorf("adversary=%s faults=%s: stream corruption: %v", adv, fault, row)
				}
				// Handshake strippers must produce clean fallbacks, not deaths.
				if adv == "strip-syn" || adv == "dpi" {
					if row[colFB] != row[colMembers] {
						t.Errorf("adversary=%s should drive every member to fallback: %v", adv, row)
					}
				}
			})
		}
	}
}

// TestChaosWorkerDeterminism asserts the merged result is byte-identical at
// 1 and 4 workers: schedules and payloads depend only on (seed, member index).
func TestChaosWorkerDeterminism(t *testing.T) {
	spec := ChaosSpec{
		Seed:          23,
		Members:       6,
		Shards:        3,
		TransferBytes: 64 << 10,
		Faults:        faults.MustParse("flap500"),
		Adversary:     "rst",
		Quick:         true,
	}
	spec.Workers = 1
	r1, err := RunChaos(spec)
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	spec.Workers = 4
	r4, err := RunChaos(spec)
	if err != nil {
		t.Fatalf("workers=4: %v", err)
	}
	b1, _ := json.Marshal(r1)
	b4, _ := json.Marshal(r4)
	if string(b1) != string(b4) {
		t.Fatalf("results differ across worker counts:\n1: %s\n4: %s", b1, b4)
	}
}

// TestChaosIfdownSendsRemoveAddr checks the mobility pipeline end to end: an
// interface removal mid-transfer must reinject the dead subflow's data, the
// transfer must complete intact, and the restoration must be able to re-open
// a subflow.
func TestChaosIfdownSendsRemoveAddr(t *testing.T) {
	row := chaosRow(t, ChaosSpec{
		Seed:          5,
		Members:       2,
		TransferBytes: 2 << 20,
		Faults:        faults.MustParse("ifchurn"),
		Quick:         true,
		Deadline:      60 * time.Second,
	})
	if row[colOK] != "2" || row[colIntact] != "2" {
		t.Fatalf("ifchurn transfer should survive intact: %v", row)
	}
	if row[colIfdown] == "0" || row[colIfup] == "0" {
		t.Fatalf("ifchurn should have removed and restored interfaces: %v", row)
	}
}

// TestChaosCaptureWireClean runs a captured chaos transfer and proves the
// wire invariant: the pcap contains every segment (zero codec rejections —
// surfaced as a WIRE VIOLATION note) and no segment carries more than the
// 40-byte TCP option space.
func TestChaosCaptureWireClean(t *testing.T) {
	dir := t.TempDir()
	res, err := RunChaos(ChaosSpec{
		Seed:          13,
		Members:       2,
		TransferBytes: 96 << 10,
		Faults:        faults.MustParse("flap"),
		Quick:         true,
		PcapDir:       dir,
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	for _, note := range res.Tables[0].Notes {
		if strings.Contains(note, "WIRE VIOLATION") {
			t.Fatalf("capture dropped segments: %s", note)
		}
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.pcap"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no capture files in %s (err=%v)", dir, err)
	}
	records := 0
	for _, f := range files {
		recs, err := trace.ReadPcapFile(f)
		if err != nil {
			t.Fatalf("ReadPcapFile(%s): %v", f, err)
		}
		for _, rec := range recs {
			_, _, tcp, err := rec.TCP()
			if err != nil {
				t.Fatalf("%s: bad record: %v", f, err)
			}
			if optBytes := int(tcp[12]>>4)*4 - 20; optBytes < 0 || optBytes > 40 {
				t.Fatalf("%s: segment with %d option bytes", f, optBytes)
			}
			records++
		}
	}
	if records == 0 {
		t.Fatal("capture files contain no records")
	}
}

func TestChaosUnknownAdversary(t *testing.T) {
	_, err := RunChaos(ChaosSpec{Seed: 1, Members: 1, Adversary: "nope"})
	if err == nil || !strings.Contains(err.Error(), "unknown adversary") {
		t.Fatalf("expected unknown-adversary error, got %v", err)
	}
}
