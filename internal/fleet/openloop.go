package fleet

import (
	"fmt"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/experiments"
	"mptcpgo/internal/httpsim"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/probe"
	"mptcpgo/internal/sim"
	"mptcpgo/internal/telemetry"
	"mptcpgo/internal/trace"
	"mptcpgo/internal/workload"
)

// openLoopStream offsets the DeriveSeed stream indices used for per-host
// workload RNGs, keeping them disjoint from the shard-seed stream space
// (shard seeds use stream = shard index).
const openLoopStream = 0x0517_0000

// OpenLoopSpec describes the fleet-openloop scenario: an open-loop HTTP
// workload where a fleet-wide arrival process injects flows across Hosts
// client hosts (each on its own access link to a sharded server replica),
// every flow fetches a size drawn from Sizes, and flows that outlive
// FlowDeadline are dropped. Because arrivals never wait for completions, the
// offered load is a free parameter — rates past the fleet's capacity produce
// measurable overload (rising latency tails, drops, unfinished flows)
// instead of the closed-loop pools' self-limiting slowdown.
//
// Determinism by thinning: the root Arrival process is split host-by-host —
// host i draws from Arrival.Thin(1/Hosts) using an RNG derived from
// (Seed, openLoopStream+i) — so the offered schedule depends only on the
// spec, never on the shard partition or worker scheduling.
type OpenLoopSpec struct {
	// Seed is the root RNG seed; shard seeds and per-host workload streams
	// both derive from it.
	Seed uint64
	// Hosts is the number of client hosts (arrival points).
	Hosts int
	// Shards partitions the hosts (0 = default partition); Workers bounds
	// parallel shard execution (0 = GOMAXPROCS; never changes the output).
	Shards, Workers int
	// Arrival is the fleet-wide arrival process (nil = Poisson at 100/s).
	Arrival workload.ArrivalProcess
	// Sizes draws per-flow transfer sizes (nil = the empirical web mix).
	Sizes workload.SizeDist
	// Window is the arrival window (default 5s of simulated time).
	Window time.Duration
	// FlowDeadline drops flows that have not completed this long after
	// arrival (default 10s; <0 disables dropping).
	FlowDeadline time.Duration
	// MaxInFlightPerHost sheds arrivals beyond this many concurrent flows on
	// one host (0 = unlimited).
	MaxInFlightPerHost int
	// Link derives host i's access link (nil = DefaultAccessLink).
	Link func(i int) netem.PathConfig
	// Conn is the per-flow connection configuration (nil = the fleet-http
	// default: MPTCP without address advertisement, 128 KB buffers).
	Conn *core.Config
	// Server is the listener configuration of every server replica.
	Server *core.Config
	// Deadline caps each shard's simulated time (default Window +
	// FlowDeadline + 5s — past that point every flow has settled).
	Deadline time.Duration
	// Label overrides the result title; Quick is recorded in the metadata.
	Label string
	Quick bool
	// PcapDir, when non-empty, captures every shard's wire traffic into
	// <PcapDir>/fleet-openloop-shard<NNN>.pcap.
	PcapDir string
	// Trace enables the flight recorder (events + counters + samples written
	// to Trace.Dir). Never changes the scenario's own result.
	Trace experiments.TraceSpec
	// Telemetry, when non-nil, attaches the run to a telemetry plane (live
	// shard cells, phase spans, merged latency histogram). Attaching never
	// changes the merged result.
	Telemetry *telemetry.Plane
	// LatencySampleCap bounds per-pool raw latency-sample retention (0 =
	// unlimited, today's exact behavior); capped runs report latency from the
	// log-scale histograms.
	LatencySampleCap int
}

// DefaultOpenLoopSpec builds the stock fleet-openloop workload: hosts client
// hosts on the heterogeneous access mix, Poisson arrivals at rate flows/s
// fleet-wide, web-mix flow sizes.
func DefaultOpenLoopSpec(seed uint64, hosts int, rate float64, window time.Duration) OpenLoopSpec {
	return OpenLoopSpec{
		Seed:    seed,
		Hosts:   hosts,
		Arrival: workload.Poisson(rate),
		Sizes:   workload.WebMix(),
		Window:  window,
	}
}

func (s OpenLoopSpec) withDefaults() OpenLoopSpec {
	if s.Arrival == nil {
		s.Arrival = workload.Poisson(100)
	}
	if s.Sizes == nil {
		s.Sizes = workload.WebMix()
	}
	if s.Window <= 0 {
		s.Window = 5 * time.Second
	}
	if s.FlowDeadline == 0 {
		s.FlowDeadline = 10 * time.Second
	}
	if s.FlowDeadline < 0 {
		s.FlowDeadline = 0
	}
	if s.Deadline <= 0 {
		s.Deadline = s.Window + s.FlowDeadline + 5*time.Second
		if s.FlowDeadline == 0 {
			s.Deadline = DefaultDeadline
		}
	}
	if s.Conn == nil {
		conn := core.DefaultConfig()
		conn.AdvertiseAddresses = false
		conn.SendBufBytes = 128 << 10
		conn.RecvBufBytes = 128 << 10
		s.Conn = &conn
	}
	if s.Server == nil {
		srv := core.DefaultConfig()
		srv.AdvertiseAddresses = false
		s.Server = &srv
	}
	return s
}

// openLoopMerge folds httpsim.OpenLoopResults deterministically (host order
// within a shard, shard order across the fleet), keeping raw latency samples
// so fleet percentiles weight flows, not shards.
type openLoopMerge struct {
	offered      int
	offeredBytes uint64
	completed    int
	bytes        uint64
	dropped      int
	shed         int
	failed       int
	unfinished   int
	window       time.Duration
	elapsed      time.Duration
	samples      []float64
	// hist is the merged log-scale latency histogram; capped marks that at
	// least one pool dropped raw samples at its SampleCap, in which case
	// latency statistics come from hist.
	hist   *telemetry.Histogram
	capped bool
}

func (m *openLoopMerge) add(r httpsim.OpenLoopResult, samples []float64, hist *telemetry.Histogram, capped bool) {
	m.offered += r.Offered
	m.offeredBytes += r.OfferedBytes
	m.completed += r.Completed
	m.bytes += r.BytesReceived
	m.dropped += r.Dropped
	m.shed += r.Shed
	m.failed += r.Failed
	m.unfinished += r.Unfinished
	if r.Window > m.window {
		m.window = r.Window
	}
	if r.Elapsed > m.elapsed {
		m.elapsed = r.Elapsed
	}
	m.samples = append(m.samples, samples...)
	m.mergeHist(hist)
	m.capped = m.capped || capped
}

func (m *openLoopMerge) merge(other openLoopMerge) {
	m.offered += other.offered
	m.offeredBytes += other.offeredBytes
	m.completed += other.completed
	m.bytes += other.bytes
	m.dropped += other.dropped
	m.shed += other.shed
	m.failed += other.failed
	m.unfinished += other.unfinished
	if other.window > m.window {
		m.window = other.window
	}
	if other.elapsed > m.elapsed {
		m.elapsed = other.elapsed
	}
	m.samples = append(m.samples, other.samples...)
	m.mergeHist(other.hist)
	m.capped = m.capped || other.capped
}

func (m *openLoopMerge) mergeHist(h *telemetry.Histogram) {
	if h.Count() == 0 {
		return
	}
	if m.hist == nil {
		m.hist = telemetry.NewLatencyHistogram()
	}
	if err := m.hist.Merge(h); err != nil {
		// All pool histograms share one constructor; a mismatch is a bug.
		panic(err)
	}
}

// percentile dispatches between exact raw-sample order statistics (default)
// and histogram quantiles (once any pool capped raw retention).
func (m *openLoopMerge) percentile(p float64) float64 {
	if m.capped {
		return m.hist.Quantile(p)
	}
	return trace.Percentile(m.samples, p)
}

// offeredMbps is the injected load over the arrival window.
func (m *openLoopMerge) offeredMbps() float64 {
	if m.window <= 0 {
		return 0
	}
	return float64(m.offeredBytes) * 8 / m.window.Seconds() / 1e6
}

// goodputMbps is the delivered load over the slowest member's window (the
// fleet-level elapsed time).
func (m *openLoopMerge) goodputMbps() float64 {
	if m.elapsed <= 0 {
		return 0
	}
	return float64(m.bytes) * 8 / m.elapsed.Seconds() / 1e6
}

// openLoopShardOut is one shard's contribution to the merged result.
type openLoopShardOut struct {
	hosts  int
	merge  openLoopMerge
	events uint64
	rec    *probe.Recorder
	// segments counts the wire segments every link of the shard serialized —
	// the numerator of the BenchmarkFleetSegmentRate headline metric. It is
	// accounted but deliberately kept out of the rendered tables so the
	// merged output stays byte-identical to earlier releases.
	segments uint64
}

// RunOpenLoop executes the fleet-openloop scenario and returns the merged
// result, byte-identical at any worker count for a fixed spec.
func RunOpenLoop(spec OpenLoopSpec) (*experiments.Result, error) {
	spec = spec.withDefaults()
	if spec.Hosts <= 0 {
		return nil, fmt.Errorf("fleet: open-loop workload has no hosts")
	}
	outs, err := Run(spec.Seed, spec.Hosts, spec.Shards, spec.Workers, func(sh *Shard) (openLoopShardOut, error) {
		return runOpenLoopShard(&spec, sh)
	})
	if err != nil {
		return nil, err
	}

	title := spec.Label
	if title == "" {
		title = fmt.Sprintf("open-loop HTTP workload: %s arrivals, %s sizes",
			spec.Arrival.Name(), spec.Sizes.Name())
	}
	res := &experiments.Result{ID: "fleet-openloop", Title: title, Seed: spec.Seed, Quick: spec.Quick}

	table := experiments.NewTable(
		fmt.Sprintf("%d arrival hosts across %d shards, %v window", spec.Hosts, len(outs), spec.Window),
		"shard", "hosts", "offered", "done", "dropped", "shed", "failed", "open",
		"offered Mbps", "goodput Mbps", "p50 ms", "p99 ms", "events")
	mergeSpan := spec.Telemetry.StartSpan("merge")
	var total openLoopMerge
	var totalEvents uint64
	goodput := make([]float64, len(outs))
	p99 := make([]float64, len(outs))
	for i, out := range outs {
		goodput[i] = out.merge.goodputMbps()
		p99[i] = out.merge.percentile(99)
		table.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%d", out.hosts),
			fmt.Sprintf("%d", out.merge.offered), fmt.Sprintf("%d", out.merge.completed),
			fmt.Sprintf("%d", out.merge.dropped), fmt.Sprintf("%d", out.merge.shed),
			fmt.Sprintf("%d", out.merge.failed), fmt.Sprintf("%d", out.merge.unfinished),
			fmt.Sprintf("%.2f", out.merge.offeredMbps()), fmt.Sprintf("%.2f", goodput[i]),
			fmt.Sprintf("%.2f", out.merge.percentile(50)),
			fmt.Sprintf("%.2f", p99[i]), fmt.Sprintf("%d", out.events))
		total.merge(out.merge)
		totalEvents += out.events
	}
	table.AddRow("all", fmt.Sprintf("%d", spec.Hosts),
		fmt.Sprintf("%d", total.offered), fmt.Sprintf("%d", total.completed),
		fmt.Sprintf("%d", total.dropped), fmt.Sprintf("%d", total.shed),
		fmt.Sprintf("%d", total.failed), fmt.Sprintf("%d", total.unfinished),
		fmt.Sprintf("%.2f", total.offeredMbps()), fmt.Sprintf("%.2f", total.goodputMbps()),
		fmt.Sprintf("%.2f", total.percentile(50)),
		fmt.Sprintf("%.2f", total.percentile(99)), fmt.Sprintf("%d", totalEvents))
	table.AddNote("open-loop: arrivals are injected by the process regardless of completions; dropped = hit the %v flow deadline, shed = refused at the in-flight cap, open = still in flight at the simulation deadline", spec.FlowDeadline)
	res.AddTable(table)
	res.AddSeries(ShardSeries("goodput", "Mbps", goodput))
	res.AddSeries(ShardSeries("latency p99", "ms", p99))
	mergeSpan.End()
	spec.Telemetry.SetLatency(total.hist)
	if spec.Trace.Enabled() {
		recs := make([]*probe.Recorder, len(outs))
		for i, out := range outs {
			recs[i] = out.rec
		}
		tr := experiments.BuildTraceResult("fleet-openloop-trace", title+" (flight recorder)", spec.Seed, spec.Quick, recs)
		if err := experiments.WriteTraceFiles(spec.Trace, "fleet-openloop", tr, experiments.MergedEvents(recs)); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// openLoopState is one shard's live open-loop workload: the spec the shard
// was built from (tags and all), its pools and its settlement counter. The
// free-running fleet-openloop scenario and the epoch-coupled fleet-corelink
// scenario share it — only how the simulator is advanced differs.
type openLoopState struct {
	graph        netem.GraphSpec
	pools        []*httpsim.OpenLoopPool
	remaining    int
	closeCapture func() error
}

// done reports whether every one of the shard's flows has settled.
func (st *openLoopState) done() bool { return st.remaining == 0 }

// buildOpenLoopShard materializes one shard — a server replica plus the
// shard's client hosts, one open-loop pool per host drawing from its thinned
// arrival stream — without running it. tag, when non-nil, may edit each
// access link's spec before it is added (the corelink scenario uses it to
// mark shared-bottleneck membership).
func buildOpenLoopShard(spec *OpenLoopSpec, sh *Shard, scenario string, tag func(gi int, l *netem.LinkSpec)) (*openLoopState, error) {
	buildSpan := spec.Telemetry.StartSpan("build-graph")
	defer buildSpan.End()
	g := netem.GraphSpec{}
	g.AddHost("server")
	for gi := sh.Lo; gi < sh.Hi; gi++ {
		link := DefaultAccessLink(gi)
		if spec.Link != nil {
			link = spec.Link(gi)
		}
		ls := netem.LinkSpec{
			Name: fmt.Sprintf("access%d", gi),
			A:    clientHostName(gi), B: "server", Config: link,
		}
		if tag != nil {
			tag(gi, &ls)
		}
		g.AddLink(ls)
	}
	if err := sh.Materialize(g); err != nil {
		return nil, err
	}
	closeCapture, err := sh.StartCapture(spec.PcapDir, scenario)
	if err != nil {
		return nil, err
	}
	rec := sh.StartProbe(spec.Trace)
	st := &openLoopState{graph: g, remaining: sh.Members(), closeCapture: closeCapture}

	if _, err := httpsim.StartServer(sh.Manager("server"), httpsim.ServerConfig{Port: 80, Conn: *spec.Server}); err != nil {
		return nil, err
	}

	fraction := 1 / float64(spec.Hosts)
	for gi := sh.Lo; gi < sh.Hi; gi++ {
		mgr := sh.Manager(clientHostName(gi))
		mgr.SetProbe(rec, gi)
		iface := mgr.Host().Interfaces()[0]
		pool, err := httpsim.NewOpenLoopPool(mgr, httpsim.OpenLoopConfig{
			Arrival:      spec.Arrival.Thin(fraction),
			Sizes:        spec.Sizes,
			Rng:          sim.NewRNG(sim.DeriveSeed(spec.Seed, openLoopStream+uint64(gi))),
			Window:       spec.Window,
			FlowDeadline: spec.FlowDeadline,
			MaxInFlight:  spec.MaxInFlightPerHost,
			ServerAddr:   iface.Path().Peer(iface).Addr(),
			ServerPort:   80,
			Conn:         *spec.Conn,
			Iface:        iface,
			OnDone:       func() { st.remaining-- },
			SampleCap:    spec.LatencySampleCap,
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %d host %d: %w", sh.Index, gi, err)
		}
		st.pools = append(st.pools, pool)
		// All pools start at t=0: the arrival processes themselves spread the
		// load (their first gaps differ per host stream).
		sh.Sim.Schedule(0, pool.Start)
	}
	sh.AttachTelemetry(spec.Telemetry, func() (int64, int64) {
		var done, offered int64
		for _, p := range st.pools {
			d, o := p.Progress()
			done += int64(d)
			offered += int64(o)
		}
		return done, offered
	})
	rec.StartSampler(st.done)
	return st, nil
}

// collect finalizes the shard after its last step: fold the pool results in
// host order, count serialized segments and close the capture.
func (st *openLoopState) collect(sh *Shard) (openLoopShardOut, error) {
	out := openLoopShardOut{hosts: sh.Members(), events: sh.probeEvents(), segments: sh.SegmentsSent(), rec: sh.Probe}
	for _, p := range st.pools {
		out.merge.add(p.Result(), p.LatencySamples(), p.LatencyHist(), p.Capped())
	}
	if sh.Probe != nil {
		// Fold each host's access-link wire drops into its counter registry.
		for gi := sh.Lo; gi < sh.Hi; gi++ {
			pa := sh.Net.Paths[gi-sh.Lo]
			sa, sb := pa.LinkAB().Stats(), pa.LinkBA().Stats()
			sh.Probe.Count(gi, probe.CtrDrops, sa.DroppedQueue+sa.DroppedRandom+sb.DroppedQueue+sb.DroppedRandom)
		}
	}
	if err := st.closeCapture(); err != nil {
		return openLoopShardOut{}, err
	}
	sh.FinishTelemetry()
	return out, nil
}

// runOpenLoopShard builds and free-runs one shard to settlement or deadline.
func runOpenLoopShard(spec *OpenLoopSpec, sh *Shard) (openLoopShardOut, error) {
	st, err := buildOpenLoopShard(spec, sh, "fleet-openloop", nil)
	if err != nil {
		return openLoopShardOut{}, err
	}
	defer st.closeCapture()
	sh.StepUntil(spec.Deadline, st.done)
	return st.collect(sh)
}
