package fleet

import (
	"fmt"
	"time"

	"mptcpgo/internal/capacity"
	"mptcpgo/internal/experiments"
)

// CoupledScenario is the contract an epoch-coupled scenario implements for
// RunCoupled. Unlike the run-to-completion fleet scenarios, a coupled shard
// is built once and then stepped in lock-stepped epoch windows so the
// capacity layer can exchange demand and admitted rates at every boundary.
type CoupledScenario[S any, T any] interface {
	// Setup materializes one shard (graph, servers, workload) without running
	// it, and returns the shard state plus the shard's capacity meter.
	Setup(sh *Shard) (S, *capacity.Meter, error)
	// Done reports whether the shard's workload has fully settled; once every
	// shard is done the epoch loop stops early.
	Done(sh *Shard, st S) bool
	// Collect finalizes one shard after the last epoch and returns its merge
	// contribution.
	Collect(sh *Shard, st S) (T, error)
}

// RunCoupled is the epoch-stepped counterpart of Run: it partitions members
// into shards exactly like Run, but instead of letting every shard free-run
// to its deadline it drives all shards through lock-stepped epoch windows of
// the coupler's length. Per window each shard (on the worker pool) applies
// its admitted rates, simulates exactly one epoch of virtual time, and
// reports the bytes its tagged links offered; at the barrier the coupler's
// deterministic allocator computes the next window's admitted rates.
//
// Worker-count invariance is preserved by construction: the barrier orders
// every Report before the Allocate that reads it, Report writes only
// shard-indexed slots, and the allocator iterates shards in index order — so
// the allocation sequence, and therefore every shard's simulation, depends
// only on (epoch, shard index, offered bytes), never on how shard steps
// interleave across workers.
func RunCoupled[S any, T any](root uint64, members, shards, workers int, deadline time.Duration,
	mkCoupler func(descs []Shard) (*capacity.Coupler, error),
	scn CoupledScenario[S, T]) ([]T, error) {

	descs, err := MakeShards(root, members, shards)
	if err != nil {
		return nil, err
	}
	n := len(descs)
	c, err := mkCoupler(descs)
	if err != nil {
		return nil, err
	}
	if c.Shards() != n {
		return nil, fmt.Errorf("fleet: coupler built for %d shards, partition has %d", c.Shards(), n)
	}
	if deadline <= 0 {
		deadline = DefaultDeadline
	}

	states := make([]S, n)
	meters := make([]*capacity.Meter, n)
	if _, err := experiments.SweepWorkers(n, workers, func(i int) (struct{}, error) {
		st, m, err := scn.Setup(&descs[i])
		if err != nil {
			return struct{}{}, err
		}
		if m == nil {
			return struct{}{}, fmt.Errorf("fleet: shard %d setup returned no capacity meter", i)
		}
		states[i], meters[i] = st, m
		return struct{}{}, nil
	}); err != nil {
		return nil, err
	}

	// All shards share one plane, so any shard's profiler handle works for
	// the fleet-level barrier span (nil when telemetry is detached).
	prof := descs[0].Prof

	epoch := c.Epoch()
	allocs := c.Initial()
	for boundary := epoch; ; boundary += epoch {
		if boundary > deadline {
			boundary = deadline
		}
		end := boundary
		barrier := prof.Start("epoch-barrier")
		if _, err := experiments.SweepWorkers(n, workers, func(i int) (struct{}, error) {
			sh := &descs[i]
			var wall time.Time
			if sh.Telem != nil {
				wall = time.Now()
			}
			meters[i].Apply(allocs[sh.Index])
			if err := sh.Sim.RunUntil(end); err != nil {
				return struct{}{}, fmt.Errorf("fleet: shard %d: %w", sh.Index, err)
			}
			offered, sent := meters[i].Collect()
			c.Report(sh.Index, offered, sent)
			if sh.Telem != nil {
				// Per-shard wall cost of this epoch window: the straggler gauge
				// behind the barrier.
				sh.Telem.EpochWallNs.Store(int64(time.Since(wall)))
				sh.publishTelemetry()
			}
			return struct{}{}, nil
		}); err != nil {
			return nil, err
		}
		barrier.End()
		// Barrier passed: every shard's Report for this window happened
		// before this Allocate (worker-pool join), so the allocation is a
		// pure function of the ledger.
		allocs = c.Allocate()
		if boundary >= deadline {
			break
		}
		settled := true
		for i := range descs {
			if !scn.Done(&descs[i], states[i]) {
				settled = false
				break
			}
		}
		if settled {
			break
		}
	}

	return experiments.SweepWorkers(n, workers, func(i int) (T, error) {
		return scn.Collect(&descs[i], states[i])
	})
}
