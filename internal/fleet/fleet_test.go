package fleet

import (
	"bytes"
	"fmt"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"mptcpgo/internal/experiments"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/trace"
)

// encodeJSON renders a result the way the CLI's -format json does, so the
// byte-identity assertions cover exactly what ships.
func encodeJSON(t *testing.T, res *experiments.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testHTTPSpec(workers int) HTTPSpec {
	spec := DefaultHTTPSpec(42, 48, 2, 8<<10)
	spec.Shards = 4
	spec.Workers = workers
	return spec
}

// TestMakeShards pins the partition: balanced contiguous ranges, per-shard
// seeds derived from the root alone, clamping of oversized shard counts.
func TestMakeShards(t *testing.T) {
	shards, err := MakeShards(7, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantLo := []int{0, 4, 7}
	wantHi := []int{4, 7, 10}
	for i, sh := range shards {
		if sh.Lo != wantLo[i] || sh.Hi != wantHi[i] {
			t.Fatalf("shard %d owns [%d,%d), want [%d,%d)", i, sh.Lo, sh.Hi, wantLo[i], wantHi[i])
		}
		if sh.Index != i || sh.Count != 3 {
			t.Fatalf("shard %d has Index=%d Count=%d", i, sh.Index, sh.Count)
		}
	}
	if shards[0].Seed == shards[1].Seed || shards[1].Seed == shards[2].Seed {
		t.Fatalf("shard seeds collide: %v", []uint64{shards[0].Seed, shards[1].Seed, shards[2].Seed})
	}

	again, err := MakeShards(7, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if again[i].Seed != shards[i].Seed {
			t.Fatalf("shard %d seed not reproducible", i)
		}
	}

	clamped, err := MakeShards(7, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(clamped) != 3 {
		t.Fatalf("shard count not clamped to members: got %d", len(clamped))
	}
	if _, err := MakeShards(7, 0, 1); err == nil {
		t.Fatal("MakeShards accepted an empty workload")
	}
}

// TestFleetHTTPWorkerInvariance is the engine's core contract: the merged
// JSON is byte-identical whether shards run sequentially under GOMAXPROCS=1
// or in parallel under GOMAXPROCS=4.
func TestFleetHTTPWorkerInvariance(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	res1, err1 := RunHTTP(testHTTPSpec(1))
	runtime.GOMAXPROCS(4)
	res4, err4 := RunHTTP(testHTTPSpec(4))
	runtime.GOMAXPROCS(prev)
	if err1 != nil {
		t.Fatal(err1)
	}
	if err4 != nil {
		t.Fatal(err4)
	}
	j1, j4 := encodeJSON(t, res1), encodeJSON(t, res4)
	if !bytes.Equal(j1, j4) {
		t.Fatalf("merged JSON differs between 1 worker (GOMAXPROCS=1) and 4 workers (GOMAXPROCS=4):\n--- w1 ---\n%s\n--- w4 ---\n%s", j1, j4)
	}
}

// TestFleetHTTPShardCountDeterminism runs the same workload at several shard
// counts: each count must be run-to-run deterministic, and because every
// client carries its request budget with it, the fleet-wide completion count
// is invariant across partitions.
func TestFleetHTTPShardCountDeterminism(t *testing.T) {
	wantCompleted := 48 * 2
	for _, shards := range []int{1, 2, 5} {
		spec := testHTTPSpec(2)
		spec.Shards = shards
		first, err := RunHTTP(spec)
		if err != nil {
			t.Fatal(err)
		}
		second, err := RunHTTP(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeJSON(t, first), encodeJSON(t, second)) {
			t.Fatalf("shards=%d: two runs at the same seed differ", shards)
		}
		// The "all" row is the last one; completed is column 2.
		table := first.Tables[0]
		last := table.Rows[len(table.Rows)-1]
		if got := last[2]; got != "96" {
			t.Fatalf("shards=%d: fleet completed %s requests, want %d", shards, got, wantCompleted)
		}
	}
}

// TestFleetIncastDeterminism covers the incast scenario: parallel and
// sequential runs merge to the same bytes.
func TestFleetIncastDeterminism(t *testing.T) {
	spec := IncastSpec{Seed: 7, Senders: 24, BlockSize: 64 << 10, Shards: 3}
	seq := spec
	seq.Workers = 1
	par := spec
	par.Workers = 4
	r1, err := RunIncast(seq)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunIncast(par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeJSON(t, r1), encodeJSON(t, r2)) {
		t.Fatal("incast merged JSON differs between 1 and 4 workers")
	}
}

// TestFleetMixedDeterminism covers the mixed scenario at a small size (it is
// the most event-heavy of the three).
func TestFleetMixedDeterminism(t *testing.T) {
	spec := MixedSpec{Seed: 7, Pairs: 4, Shards: 2, Duration: time.Second}
	seq := spec
	seq.Workers = 1
	par := spec
	par.Workers = 4
	r1, err := RunMixed(seq)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunMixed(par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeJSON(t, r1), encodeJSON(t, r2)) {
		t.Fatal("mixed merged JSON differs between 1 and 4 workers")
	}
}

// TestFleetHTTPCompletes sanity-checks the workload itself: every request
// completes, nothing fails, latency statistics are populated.
func TestFleetHTTPCompletes(t *testing.T) {
	res, err := RunHTTP(testHTTPSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	table := res.Tables[0]
	if len(table.Rows) != 5 { // 4 shards + the "all" row
		t.Fatalf("got %d rows, want 5", len(table.Rows))
	}
	all := table.Rows[len(table.Rows)-1]
	if all[2] != "96" || all[3] != "0" {
		t.Fatalf("fleet row completed/failed = %s/%s, want 96/0", all[2], all[3])
	}
	if len(res.Series) != 2 || len(res.Series[0].Y) != 4 {
		t.Fatalf("expected 2 series with 4 shard points, got %+v", res.Series)
	}
}

// TestFleetPcapCapture runs a small fleet-http workload with per-shard
// capture enabled and checks that (a) enabling capture does not change the
// merged result, (b) every shard produced a capture file, and (c) each file
// is a valid classic pcap whose records decode back to TCP segments.
func TestFleetPcapCapture(t *testing.T) {
	const clients, shards = 8, 2
	base := DefaultHTTPSpec(42, clients, 1, 8<<10)
	base.Shards = shards
	plain, err := RunHTTP(base)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	captured := DefaultHTTPSpec(42, clients, 1, 8<<10)
	captured.Shards = shards
	captured.PcapDir = dir
	withCap, err := RunHTTP(captured)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := encodeJSON(t, plain), encodeJSON(t, withCap); !bytes.Equal(a, b) {
		t.Fatalf("enabling pcap capture changed the merged result:\n%s\nvs\n%s", a, b)
	}

	for i := 0; i < shards; i++ {
		path := filepath.Join(dir, fmt.Sprintf("fleet-http-shard%03d.pcap", i))
		recs, err := trace.ReadPcapFile(path)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if len(recs) == 0 {
			t.Fatalf("shard %d capture is empty", i)
		}
		var last time.Duration
		for j, rec := range recs {
			if rec.Ts < last {
				t.Fatalf("shard %d record %d: timestamps not monotonic", i, j)
			}
			last = rec.Ts
			src, dst, tcp, err := rec.TCP()
			if err != nil {
				t.Fatalf("shard %d record %d: %v", i, j, err)
			}
			seg, err := packet.Decode(src, dst, tcp)
			if err != nil {
				t.Fatalf("shard %d record %d: decode: %v", i, j, err)
			}
			if !packet.VerifyTCPChecksum(seg.Src, seg.Dst, tcp) {
				t.Fatalf("shard %d record %d: bad TCP checksum", i, j)
			}
			seg.Release()
		}
	}
}
