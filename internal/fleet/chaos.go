package fleet

import (
	"fmt"
	"sort"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/experiments"
	"mptcpgo/internal/faults"
	"mptcpgo/internal/middlebox"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/probe"
	"mptcpgo/internal/sim"
	"mptcpgo/internal/telemetry"
)

// chaosStream offsets the DeriveSeed stream indices used for per-member
// payload patterns, disjoint from the shard-seed stream space (raw shard
// indices), the open-loop workload space (0x0517_0000) and the fault-jitter
// space (faults.SeedStream).
const chaosStream = 0x0C4A_0000

// ChaosSpec describes the fleet-chaos scenario: Members dual-homed client
// hosts, each with two access paths to a sharded server replica, each
// uploading a patterned byte stream that the server verifies byte-for-byte
// (exact-once, in-order — see faults.Checker) while a deterministic fault
// schedule batters the paths and an optional adversarial middlebox preset
// sits on them. Every member runs under a progress watchdog: a silent stall
// is recorded, dumped and aborted instead of idling to the deadline.
//
// The invariant the scenario checks is the paper's robustness claim: under
// every fault×adversary combination each member must either complete with an
// intact hash (surviving on the remaining subflows) or fall back to regular
// TCP with a taxonomized reason — corruption, duplication and silent hangs
// are failures.
type ChaosSpec struct {
	// Seed is the root RNG seed; shard seeds, fault jitter and payload
	// patterns all derive from it.
	Seed uint64
	// Members is the number of dual-homed client hosts.
	Members int
	// Shards partitions the members (0 = default); Workers bounds parallel
	// shard execution (0 = GOMAXPROCS; never changes the output).
	Shards, Workers int
	// TransferBytes is each member's upload size (default 384 KiB).
	TransferBytes int
	// Faults is the fault schedule applied independently to every member's
	// two paths (jitter streams derived per member). See faults.Parse.
	Faults faults.Spec
	// Adversary names a middlebox.AdversaryPreset installed on every
	// member's paths ("" = none).
	Adversary string
	// WatchdogInterval is the stall-detection sampling period (default 2s).
	WatchdogInterval time.Duration
	// Deadline caps each shard's simulated time (default 45s).
	Deadline time.Duration
	// Conn configures member connections (nil = MPTCP, no address
	// advertisement, 4 RTO retries per subflow so dead paths fail fast).
	Conn *core.Config
	// Server configures the server replicas (nil = same hardening).
	Server *core.Config
	// Label overrides the result title; Quick is recorded in the metadata.
	Label string
	Quick bool
	// PcapDir, when non-empty, captures every shard's wire traffic into
	// <PcapDir>/<CaptureName>-shard<NNN>.pcap (fallback handshakes included).
	PcapDir string
	// CaptureName overrides the capture file prefix (default "fleet-chaos");
	// the adversarial grid uses it for per-case file names.
	CaptureName string
	// Trace enables the flight recorder: typed events, per-member counters
	// and per-subflow samples written to <Trace.Dir>/<CaptureName>-trace.json
	// and -events.jsonl. Never changes the scenario's own result.
	Trace experiments.TraceSpec
	// Telemetry, when non-nil, attaches the run to a telemetry plane (live
	// shard cells, phase spans). Attaching never changes the merged result.
	Telemetry *telemetry.Plane
}

func (s ChaosSpec) withDefaults() ChaosSpec {
	if s.TransferBytes <= 0 {
		s.TransferBytes = 384 << 10
	}
	if s.WatchdogInterval <= 0 {
		s.WatchdogInterval = 2 * time.Second
	}
	if s.Deadline <= 0 {
		s.Deadline = 45 * time.Second
	}
	if s.Conn == nil {
		conn := chaosConnConfig()
		s.Conn = &conn
	}
	if s.Server == nil {
		srv := chaosConnConfig()
		s.Server = &srv
	}
	if s.CaptureName == "" {
		s.CaptureName = "fleet-chaos"
	}
	return s
}

// chaosConnConfig is the hardened default: regular MPTCP with subflows that
// declare a path dead after 4 consecutive RTOs (instead of TCP's patient 10)
// so reinjection onto survivors happens within seconds of an outage.
func chaosConnConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.AdvertiseAddresses = false
	cfg.SendBufBytes = 128 << 10
	cfg.RecvBufBytes = 128 << 10
	cfg.SubflowTemplate.MaxRTORetries = 4
	return cfg
}

// chaosOutcome taxonomizes one member's fate.
const (
	outcomeOK       = "ok"       // completed intact, multipath to the end
	outcomeFallback = "fallback" // completed intact after TCP fallback
	outcomeStalled  = "stalled"  // watchdog abort: silent loss of progress
	outcomeFailed   = "failed"   // connection error or integrity violation
)

// chaosMember is the per-member harness state.
type chaosMember struct {
	spec    *ChaosSpec
	gi      int
	checker *faults.Checker
	client  *core.Connection
	server  *core.Connection
	buf     []byte

	sent           uint64
	serverEOF      bool
	clientClosed   bool
	serverClosed   bool
	clientErr      error
	fallbackReason string
	stalled        bool
	stallDump      string
	done           bool
	outcome        string
	watchdog       *faults.Watchdog
	injector       *faults.Injector
	onDone         func()
}

func (m *chaosMember) total() uint64 { return uint64(m.spec.TransferBytes) }

// pump writes patterned payload until the transfer is fully queued, then
// closes the sending direction (DATA_FIN).
func (m *chaosMember) pump() {
	if m.done || m.client == nil || m.client.Closed() {
		return
	}
	for m.sent < m.total() {
		n := len(m.buf)
		if rem := m.total() - m.sent; rem < uint64(n) {
			n = int(rem)
		}
		m.checker.Fill(m.buf[:n], m.sent)
		w := m.client.Write(m.buf[:n])
		if w == 0 {
			return
		}
		m.sent += uint64(w)
	}
	m.client.Close()
}

// drain consumes server-side data into the integrity checker.
func (m *chaosMember) drain() {
	if m.server == nil {
		return
	}
	for {
		n := m.server.ReadInto(m.buf)
		if n == 0 {
			break
		}
		m.checker.Feed(m.buf[:n])
	}
	if m.server.EOF() {
		m.serverEOF = true
	}
	m.maybeFinish()
}

// onStall is the watchdog callback: record a diagnostic dump and abort both
// ends so the member fails fast instead of idling to the shard deadline.
func (m *chaosMember) onStall(at time.Duration, progress uint64) {
	if m.done || m.stalled {
		return
	}
	m.stalled = true
	m.stallDump = fmt.Sprintf("member %d stalled at t=%v after %d bytes\nclient: %sserver: %s",
		m.gi, at, progress, faults.DumpConnection(m.client), faults.DumpConnection(m.server))
	if m.client != nil && !m.client.Closed() {
		m.client.Abort()
	}
	if m.server != nil && !m.server.Closed() {
		m.server.Abort()
	}
	m.maybeFinish()
}

func (m *chaosMember) maybeFinish() {
	if m.done {
		return
	}
	success := m.serverEOF && m.checker.Complete()
	dead := m.clientClosed && (m.server == nil || m.serverClosed || m.serverEOF)
	if !success && !dead && !m.stalled {
		return
	}
	if m.stalled && !(m.clientClosed || m.client == nil) {
		// Wait for the aborts to propagate so counters settle.
		return
	}
	m.done = true
	m.watchdog.Stop()
	switch {
	case m.stalled:
		m.outcome = outcomeStalled
	case success && m.fallbackReason == "":
		m.outcome = outcomeOK
	case success:
		m.outcome = outcomeFallback
	default:
		m.outcome = outcomeFailed
	}
	m.onDone()
}

// chaosMerge accumulates member outcomes deterministically (member order
// within a shard, shard order across the fleet).
type chaosMerge struct {
	members      int
	ok           int
	fallback     int
	stalled      int
	stallEps     int
	failed       int
	intact       int
	bytes        uint64
	reinjections uint64
	connRtx      uint64
	flaps        int
	removals     int
	restores     int
	encodeErrors int
	reasons      map[string]int
	stallDumps   []string
}

func (m *chaosMerge) addReason(cat string) {
	if m.reasons == nil {
		m.reasons = make(map[string]int)
	}
	m.reasons[cat]++
}

func (m *chaosMerge) merge(o chaosMerge) {
	m.members += o.members
	m.ok += o.ok
	m.fallback += o.fallback
	m.stalled += o.stalled
	m.stallEps += o.stallEps
	m.failed += o.failed
	m.intact += o.intact
	m.bytes += o.bytes
	m.reinjections += o.reinjections
	m.connRtx += o.connRtx
	m.flaps += o.flaps
	m.removals += o.removals
	m.restores += o.restores
	m.encodeErrors += o.encodeErrors
	for k, v := range o.reasons {
		if m.reasons == nil {
			m.reasons = make(map[string]int)
		}
		m.reasons[k] += v
	}
	m.stallDumps = append(m.stallDumps, o.stallDumps...)
}

func (m *chaosMerge) reasonSummary() string {
	if len(m.reasons) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(m.reasons))
	for k := range m.reasons {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, m.reasons[k]))
	}
	return joinComma(parts)
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}

// chaosShardOut is one shard's contribution to the merged result.
type chaosShardOut struct {
	merge  chaosMerge
	events uint64
	rec    *probe.Recorder
}

// RunChaos executes the fleet-chaos scenario and returns the merged result,
// byte-identical at any worker count for a fixed spec.
func RunChaos(spec ChaosSpec) (*experiments.Result, error) {
	res, _, err := runChaos(spec)
	return res, err
}

// runChaos is RunChaos plus the merged outcome tally, which the adversarial
// experiment grid consumes directly instead of re-parsing the table.
func runChaos(spec ChaosSpec) (*experiments.Result, chaosMerge, error) {
	spec = spec.withDefaults()
	if spec.Members <= 0 {
		return nil, chaosMerge{}, fmt.Errorf("fleet: chaos workload has no members")
	}
	if _, _, ok := middlebox.AdversaryPreset(spec.Adversary); !ok {
		return nil, chaosMerge{}, fmt.Errorf("fleet: unknown adversary preset %q (have %v)",
			spec.Adversary, middlebox.AdversaryPresetNames())
	}
	outs, err := Run(spec.Seed, spec.Members, spec.Shards, spec.Workers, func(sh *Shard) (chaosShardOut, error) {
		return runChaosShard(&spec, sh)
	})
	if err != nil {
		return nil, chaosMerge{}, err
	}

	title := spec.Label
	if title == "" {
		adv := spec.Adversary
		if adv == "" {
			adv = "none"
		}
		fault := spec.Faults.String()
		if fault == "" {
			fault = "none"
		}
		title = fmt.Sprintf("chaos: %d members, faults=%s, adversary=%s", spec.Members, fault, adv)
	}
	res := &experiments.Result{ID: "fleet-chaos", Title: title, Seed: spec.Seed, Quick: spec.Quick}

	table := experiments.NewTable(
		fmt.Sprintf("%d members across %d shards, %d KiB each, watchdog %v",
			spec.Members, len(outs), spec.TransferBytes>>10, spec.WatchdogInterval),
		"shard", "members", "ok", "fallback", "stalled", "stallEp", "failed", "intact",
		"reinject", "connRtx", "flaps", "ifdown", "ifup", "reasons", "events")
	mergeSpan := spec.Telemetry.StartSpan("merge")
	var total chaosMerge
	var totalEvents uint64
	okSeries := make([]float64, len(outs))
	for i, out := range outs {
		okSeries[i] = float64(out.merge.ok + out.merge.fallback)
		table.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%d", out.merge.members),
			fmt.Sprintf("%d", out.merge.ok), fmt.Sprintf("%d", out.merge.fallback),
			fmt.Sprintf("%d", out.merge.stalled), fmt.Sprintf("%d", out.merge.stallEps),
			fmt.Sprintf("%d", out.merge.failed),
			fmt.Sprintf("%d", out.merge.intact),
			fmt.Sprintf("%d", out.merge.reinjections), fmt.Sprintf("%d", out.merge.connRtx),
			fmt.Sprintf("%d", out.merge.flaps), fmt.Sprintf("%d", out.merge.removals),
			fmt.Sprintf("%d", out.merge.restores),
			out.merge.reasonSummary(), fmt.Sprintf("%d", out.events))
		total.merge(out.merge)
		totalEvents += out.events
	}
	table.AddRow("all", fmt.Sprintf("%d", total.members),
		fmt.Sprintf("%d", total.ok), fmt.Sprintf("%d", total.fallback),
		fmt.Sprintf("%d", total.stalled), fmt.Sprintf("%d", total.stallEps),
		fmt.Sprintf("%d", total.failed),
		fmt.Sprintf("%d", total.intact),
		fmt.Sprintf("%d", total.reinjections), fmt.Sprintf("%d", total.connRtx),
		fmt.Sprintf("%d", total.flaps), fmt.Sprintf("%d", total.removals),
		fmt.Sprintf("%d", total.restores),
		total.reasonSummary(), fmt.Sprintf("%d", totalEvents))
	table.AddNote("invariant: every member must finish ok (intact hash, multipath), or fallback (intact hash, taxonomized reason); stalled = watchdog abort, failed = connection error or integrity violation")
	table.AddNote("stallEp counts distinct watchdog stall episodes (runs of no-progress intervals) across the shard's members")
	if !spec.Faults.Empty() {
		table.AddNote("fault schedule: %s (per-member jitter streams via DeriveSeed)", spec.Faults.String())
	}
	if total.encodeErrors > 0 {
		table.AddNote("WIRE VIOLATION: %d captured segments rejected by the codec (option set exceeds the 40-byte TCP option space)", total.encodeErrors)
	}
	res.AddTable(table)
	res.AddSeries(ShardSeries("completed members", "count", okSeries))
	for _, dump := range total.stallDumps {
		table.AddNote("%s", dump)
	}
	mergeSpan.End()
	if spec.Trace.Enabled() {
		recs := make([]*probe.Recorder, len(outs))
		for i, out := range outs {
			recs[i] = out.rec
		}
		tr := experiments.BuildTraceResult("fleet-chaos-trace", title+" (flight recorder)", spec.Seed, spec.Quick, recs)
		if err := experiments.WriteTraceFiles(spec.Trace, spec.CaptureName, tr, experiments.MergedEvents(recs)); err != nil {
			return nil, chaosMerge{}, err
		}
	}
	return res, total, nil
}

// runChaosShard builds one shard: a server replica plus the shard's members,
// each a dual-homed client with per-member fault injection and an integrity-
// checked upload.
func runChaosShard(spec *ChaosSpec, sh *Shard) (chaosShardOut, error) {
	buildSpan := spec.Telemetry.StartSpan("build-graph")
	g := netem.GraphSpec{}
	g.AddHost("server")
	pathIdx := make(map[int][2]int, sh.Members())
	for gi := sh.Lo; gi < sh.Hi; gi++ {
		primary, secondary, _ := middlebox.AdversaryPreset(spec.Adversary)
		ia := g.AddLink(netem.LinkSpec{
			Name: fmt.Sprintf("chaos%da", gi),
			A:    clientHostName(gi), B: "server",
			Config: DefaultAccessLink(2 * gi),
			Boxes:  primary,
		})
		ib := g.AddLink(netem.LinkSpec{
			Name: fmt.Sprintf("chaos%db", gi),
			A:    clientHostName(gi), B: "server",
			Config: DefaultAccessLink(2*gi + 1),
			Boxes:  secondary,
		})
		pathIdx[gi] = [2]int{ia, ib}
	}
	if err := sh.Materialize(g); err != nil {
		return chaosShardOut{}, err
	}
	closeCapture, err := sh.StartCapture(spec.PcapDir, spec.CaptureName)
	if err != nil {
		return chaosShardOut{}, err
	}
	defer closeCapture()
	rec := sh.StartProbe(spec.Trace)

	srvMgr := sh.Manager("server")
	remaining := sh.Members()
	members := make([]*chaosMember, 0, sh.Members())
	for gi := sh.Lo; gi < sh.Hi; gi++ {
		gi := gi
		mgr := sh.Manager(clientHostName(gi))
		mgr.SetProbe(rec, gi)
		m := &chaosMember{
			spec:    spec,
			gi:      gi,
			checker: faults.NewChecker(sim.DeriveSeed(spec.Seed, chaosStream+uint64(gi)), spec.TransferBytes),
			buf:     make([]byte, 32<<10),
			// Freeze the member's recording at its own completion time: the
			// shard keeps simulating for its slowest member, and post-done
			// fault/teardown events would otherwise depend on the partition.
			onDone: func() { remaining--; rec.Freeze(gi) },
		}
		members = append(members, m)

		port := uint16(8000 + gi - sh.Lo)
		if _, err := srvMgr.Listen(port, *spec.Server, func(conn *core.Connection) {
			m.server = conn
			conn.OnReadable = m.drain
			conn.OnFallback = func(reason string) {
				if m.fallbackReason == "" {
					m.fallbackReason = reason
				}
			}
			conn.OnClosed = func(error) {
				m.serverClosed = true
				m.drain()
				m.maybeFinish()
			}
		}); err != nil {
			return chaosShardOut{}, fmt.Errorf("fleet: shard %d member %d: %w", sh.Index, gi, err)
		}

		iface := mgr.Host().Interfaces()[0]
		serverAddr := iface.Path().Peer(iface).Addr()
		conn, err := mgr.Dial(iface, packet.Endpoint{Addr: serverAddr, Port: port}, *spec.Conn)
		if err != nil {
			return chaosShardOut{}, fmt.Errorf("fleet: shard %d member %d dial: %w", sh.Index, gi, err)
		}
		m.client = conn
		conn.OnEstablished = m.pump
		conn.OnWritable = m.pump
		conn.OnFallback = func(reason string) {
			if m.fallbackReason == "" {
				m.fallbackReason = reason
			}
		}
		conn.OnClosed = func(err error) {
			m.clientClosed = true
			m.clientErr = err
			m.maybeFinish()
		}

		// Per-member fault injection: the member's two paths, jitter stream
		// = global member index (identical across any shard partition).
		idx := pathIdx[gi]
		paths := []*netem.Path{sh.Net.Paths[idx[0]], sh.Net.Paths[idx[1]]}
		m.injector = faults.Apply(sh.Sim, spec.Faults, paths, mgr, spec.Seed, uint64(gi))
		m.injector.SetProbe(rec, gi)

		m.watchdog = faults.NewWatchdog(sh.Sim, spec.WatchdogInterval,
			func() uint64 { return m.checker.Received() + m.sent },
			func() bool { return m.done })
		m.watchdog.OnStall = m.onStall
		if rec != nil {
			m.watchdog.OnStall = func(at time.Duration, progress uint64) {
				rec.Emit(gi, probe.KindStall, 0, -1, int64(progress), 0)
				rec.Count(gi, probe.CtrStallEpisodes, 1)
				m.onStall(at, progress)
			}
		}
		m.watchdog.Start()
	}

	members64 := int64(sh.Members())
	sh.AttachTelemetry(spec.Telemetry, func() (int64, int64) {
		return members64 - int64(remaining), members64
	})
	buildSpan.End()
	rec.StartSampler(func() bool { return remaining == 0 })
	sh.StepUntil(spec.Deadline, func() bool { return remaining == 0 })

	out := chaosShardOut{events: sh.probeEvents(), rec: rec}
	out.merge.members = sh.Members()
	for _, m := range members {
		if !m.done {
			// Deadline expiry without watchdog abort (possible only when the
			// deadline undercuts the watchdog interval): count as stalled.
			m.stalled = true
			m.outcome = outcomeStalled
			if m.stallDump == "" {
				m.stallDump = fmt.Sprintf("member %d unfinished at shard deadline\nclient: %sserver: %s",
					m.gi, faults.DumpConnection(m.client), faults.DumpConnection(m.server))
			}
		}
		switch m.outcome {
		case outcomeOK:
			out.merge.ok++
		case outcomeFallback:
			out.merge.fallback++
			out.merge.addReason(faults.ClassifyFallback(m.fallbackReason))
		case outcomeStalled:
			out.merge.stalled++
			out.merge.stallDumps = append(out.merge.stallDumps, m.stallDump)
		default:
			out.merge.failed++
			if m.fallbackReason != "" {
				out.merge.addReason(faults.ClassifyFallback(m.fallbackReason))
			}
		}
		if m.checker.Intact() {
			out.merge.intact++
		}
		out.merge.bytes += m.checker.Received()
		if m.client != nil {
			st := m.client.Stats()
			out.merge.reinjections += st.Reinjections
			out.merge.connRtx += st.ConnLevelRtx
		}
		out.merge.flaps += m.injector.Flaps
		out.merge.removals += m.injector.Removals
		out.merge.restores += m.injector.Restores
		out.merge.stallEps += m.watchdog.Episodes
		if rec != nil {
			// Fold the member's wire drops (both paths, both directions) into
			// its counter registry at collect time.
			idx := pathIdx[m.gi]
			var drops uint64
			for _, pi := range idx {
				for _, l := range []*netem.Link{sh.Net.Paths[pi].LinkAB(), sh.Net.Paths[pi].LinkBA()} {
					st := l.Stats()
					drops += st.DroppedQueue + st.DroppedRandom
				}
			}
			rec.CountFinal(m.gi, probe.CtrDrops, drops)
		}
	}
	if err := closeCapture(); err != nil {
		return chaosShardOut{}, err
	}
	if sh.Capture != nil {
		out.merge.encodeErrors = sh.Capture.EncodeErrors
	}
	sh.FinishTelemetry()
	return out, nil
}
