package fleet

import (
	"fmt"
	"time"

	"mptcpgo/internal/capacity"
	"mptcpgo/internal/experiments"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/probe"
)

// CorelinkSpec describes the fleet-corelink scenario: the open-loop HTTP
// workload of fleet-openloop, but with every member's download direction
// transiting one named shared core link whose capacity all shards jointly
// respect. Without the coupling a "fleet-scale" overload is N disjoint
// per-shard overloads; with it, the goodput knee and the p99 collapse appear
// at the global offered load against the shared rate — overload becomes a
// system property.
type CorelinkSpec struct {
	OpenLoopSpec
	// Shared is the contended resource every member's server-to-client
	// direction transits (zero value = "core" at 100 Mbps, 100 ms epochs).
	Shared capacity.SharedLink
	// Weight gives member i's allocation weight on the shared link (nil =
	// equal weights). A shard's weight is the sum of its members'.
	Weight func(i int) float64
}

// DefaultCorelinkSpec builds the stock fleet-corelink workload: the
// fleet-openloop defaults plus a shared core link of the given rate.
func DefaultCorelinkSpec(seed uint64, hosts int, rate float64, window time.Duration, coreBps int64) CorelinkSpec {
	return CorelinkSpec{
		OpenLoopSpec: DefaultOpenLoopSpec(seed, hosts, rate, window),
		Shared:       capacity.SharedLink{Name: "core", RateBps: coreBps},
	}
}

func (s CorelinkSpec) withDefaults() CorelinkSpec {
	s.OpenLoopSpec = s.OpenLoopSpec.withDefaults()
	if s.Shared.RateBps == 0 {
		s.Shared.RateBps = netem.Mbps(100)
	}
	if s.Shared.Name == "" {
		s.Shared.Name = "core"
	}
	if s.Shared.Epoch == 0 {
		s.Shared.Epoch = capacity.DefaultEpoch
	}
	return s
}

// memberWeights sums the per-member weights of each shard in the partition —
// the coupler's per-shard allocation weights. Weights depend only on the
// global member indices, so they are invariant across worker counts and,
// summed, consistent across shard counts.
func memberWeights(descs []Shard, weight func(i int) float64) []float64 {
	ws := make([]float64, len(descs))
	for i, d := range descs {
		if weight == nil {
			ws[i] = float64(d.Members())
			continue
		}
		for gi := d.Lo; gi < d.Hi; gi++ {
			ws[i] += weight(gi)
		}
	}
	return ws
}

// corelinkScenario adapts the open-loop shard machinery to the epoch-coupled
// runner: same graphs and pools, but the download direction of every access
// link is tagged with the shared core resource and the shard is stepped in
// epoch windows instead of free-running.
type corelinkScenario struct {
	spec *CorelinkSpec
	c    *capacity.Coupler
	// recs[shard] is the shard's flight recorder (nil when tracing is off).
	// Written by Setup (each worker its own slot), read by the coupler's
	// OnEpoch hook on the allocator goroutine — the epoch barrier's
	// worker-pool join provides the happens-before edge.
	recs []*probe.Recorder
}

func (cs *corelinkScenario) Setup(sh *Shard) (*openLoopState, *capacity.Meter, error) {
	// Access links run client (A) to server (B); responses flow B->A, so the
	// download direction is the one transiting the shared core.
	st, err := buildOpenLoopShard(&cs.spec.OpenLoopSpec, sh, "fleet-corelink", func(gi int, l *netem.LinkSpec) {
		l.SharedBA = cs.spec.Shared.Name
	})
	if err != nil {
		return nil, nil, err
	}
	var weightOf func(i int) float64
	if cs.spec.Weight != nil {
		lo := sh.Lo
		weightOf = func(i int) float64 { return cs.spec.Weight(lo + i) }
	}
	m, err := capacity.NewMeter(cs.c, sh.Net, st.graph, weightOf)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: shard %d: %w", sh.Index, err)
	}
	cs.recs[sh.Index] = sh.Probe
	return st, m, nil
}

func (cs *corelinkScenario) Done(_ *Shard, st *openLoopState) bool { return st.done() }

func (cs *corelinkScenario) Collect(sh *Shard, st *openLoopState) (openLoopShardOut, error) {
	return st.collect(sh)
}

// RunCorelink executes the fleet-corelink scenario and returns the merged
// result, byte-identical at any worker count for a fixed spec.
func RunCorelink(spec CorelinkSpec) (*experiments.Result, error) {
	spec = spec.withDefaults()
	if spec.Hosts <= 0 {
		return nil, fmt.Errorf("fleet: corelink workload has no hosts")
	}
	if err := spec.Shared.Validate(); err != nil {
		return nil, err
	}

	var coupler *capacity.Coupler
	scn := &corelinkScenario{spec: &spec}
	outs, err := RunCoupled[*openLoopState, openLoopShardOut](
		spec.Seed, spec.Hosts, spec.Shards, spec.Workers, spec.Deadline,
		func(descs []Shard) (*capacity.Coupler, error) {
			c, err := capacity.NewCoupler([]capacity.SharedLink{spec.Shared}, memberWeights(descs, spec.Weight))
			if err != nil {
				return nil, err
			}
			if spec.Telemetry != nil {
				c.Attach(spec.Telemetry.Reg, spec.Telemetry.Prof)
			}
			coupler = c
			scn.c = c
			scn.recs = make([]*probe.Recorder, len(descs))
			if spec.Trace.Enabled() {
				// Epoch allocations are fleet-global; record them once, on the
				// first shard's recorder against its first member. They carry
				// shard-aggregate state, so they are part of the worker-count
				// byte-identity contract but not the shard-count one.
				c.OnEpoch = func(r capacity.EpochRecord) {
					rec := scn.recs[0]
					rec.Emit(rec.Lo(), probe.KindEpochAlloc, -1, int32(r.Link), int64(r.Epoch), int64(r.Bottlenecked))
					if r.Bottlenecked > 0 {
						rec.Count(rec.Lo(), probe.CtrEpochCongested, 1)
					}
				}
			}
			return c, nil
		}, scn)
	if err != nil {
		return nil, err
	}

	title := spec.Label
	if title == "" {
		title = fmt.Sprintf("open-loop fleet contending for shared link %s (%s)",
			spec.Shared.Name, capacity.FormatRate(spec.Shared.RateBps))
	}
	res := &experiments.Result{ID: "fleet-corelink", Title: title, Seed: spec.Seed, Quick: spec.Quick}

	table := experiments.NewTable(
		fmt.Sprintf("%d arrival hosts across %d shards, %v window, shared %s",
			spec.Hosts, len(outs), spec.Window, spec.Shared),
		"shard", "hosts", "offered", "done", "dropped", "shed", "failed", "open",
		"offered Mbps", "goodput Mbps", "p50 ms", "p99 ms", "events")
	mergeSpan := spec.Telemetry.StartSpan("merge")
	var total openLoopMerge
	var totalEvents uint64
	goodput := make([]float64, len(outs))
	p99 := make([]float64, len(outs))
	for i, out := range outs {
		goodput[i] = out.merge.goodputMbps()
		p99[i] = out.merge.percentile(99)
		table.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%d", out.hosts),
			fmt.Sprintf("%d", out.merge.offered), fmt.Sprintf("%d", out.merge.completed),
			fmt.Sprintf("%d", out.merge.dropped), fmt.Sprintf("%d", out.merge.shed),
			fmt.Sprintf("%d", out.merge.failed), fmt.Sprintf("%d", out.merge.unfinished),
			fmt.Sprintf("%.2f", out.merge.offeredMbps()), fmt.Sprintf("%.2f", goodput[i]),
			fmt.Sprintf("%.2f", out.merge.percentile(50)),
			fmt.Sprintf("%.2f", p99[i]), fmt.Sprintf("%d", out.events))
		total.merge(out.merge)
		totalEvents += out.events
	}
	table.AddRow("all", fmt.Sprintf("%d", spec.Hosts),
		fmt.Sprintf("%d", total.offered), fmt.Sprintf("%d", total.completed),
		fmt.Sprintf("%d", total.dropped), fmt.Sprintf("%d", total.shed),
		fmt.Sprintf("%d", total.failed), fmt.Sprintf("%d", total.unfinished),
		fmt.Sprintf("%.2f", total.offeredMbps()), fmt.Sprintf("%.2f", total.goodputMbps()),
		fmt.Sprintf("%.2f", total.percentile(50)),
		fmt.Sprintf("%.2f", total.percentile(99)), fmt.Sprintf("%d", totalEvents))
	table.AddNote("every download direction transits shared link %q: global goodput saturates at its %s no matter how the fleet is sharded — overload is a system property, not a per-shard one",
		spec.Shared.Name, capacity.FormatRate(spec.Shared.RateBps))
	res.AddTable(table)
	res.AddSeries(ShardSeries("goodput", "Mbps", goodput))
	res.AddSeries(ShardSeries("latency p99", "ms", p99))
	addCapacityReport(res, coupler)
	mergeSpan.End()
	spec.Telemetry.SetLatency(total.hist)
	if spec.Trace.Enabled() {
		recs := make([]*probe.Recorder, len(outs))
		for i, out := range outs {
			recs[i] = out.rec
		}
		tr := experiments.BuildTraceResult("fleet-corelink-trace", title+" (flight recorder)", spec.Seed, spec.Quick, recs)
		if err := experiments.WriteTraceFiles(spec.Trace, "fleet-corelink", tr, experiments.MergedEvents(recs)); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// addCapacityReport appends the coupler's per-epoch capacity trace to a
// result: one summary row per shared link plus offered/through series over
// epochs. The trace is part of the deterministic merge — it depends only on
// (epoch, shard index, offered bytes) — so it rides the same byte-identity
// contract as the scenario tables.
func addCapacityReport(res *experiments.Result, c *capacity.Coupler) {
	links := c.Links()
	epochSec := c.Epoch().Seconds()
	table := experiments.NewTable(
		fmt.Sprintf("shared-link capacity exchange: %d epoch windows of %v", c.Epochs(), c.Epoch()),
		"link", "rate Mbps", "epochs", "offered Mbps", "through Mbps", "util %", "congested")
	for j, l := range links {
		var offered, sent uint64
		congested := 0
		perEpochOffered := make([]float64, 0, c.Epochs())
		perEpochThrough := make([]float64, 0, c.Epochs())
		for _, rec := range c.Trace() {
			if rec.Link != j {
				continue
			}
			offered += rec.OfferedBytes
			sent += rec.SentBytes
			if rec.Bottlenecked > 0 {
				congested++
			}
			perEpochOffered = append(perEpochOffered, float64(rec.OfferedBytes)*8/epochSec/1e6)
			perEpochThrough = append(perEpochThrough, float64(rec.SentBytes)*8/epochSec/1e6)
		}
		n := len(perEpochOffered)
		if n == 0 {
			continue
		}
		span := float64(n) * epochSec
		offMbps := float64(offered) * 8 / span / 1e6
		thruMbps := float64(sent) * 8 / span / 1e6
		table.AddRow(l.Name, fmt.Sprintf("%.2f", float64(l.RateBps)/1e6),
			fmt.Sprintf("%d", n), fmt.Sprintf("%.2f", offMbps), fmt.Sprintf("%.2f", thruMbps),
			fmt.Sprintf("%.1f", thruMbps/(float64(l.RateBps)/1e6)*100),
			fmt.Sprintf("%d", congested))
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i)
		}
		res.AddSeries(experiments.Series{Name: l.Name + " offered", Unit: "Mbps", XLabel: "epoch", X: x, Y: perEpochOffered})
		res.AddSeries(experiments.Series{Name: l.Name + " through", Unit: "Mbps", XLabel: "epoch", X: x, Y: perEpochThrough})
	}
	table.AddNote("offered counts every byte presented to tagged directions (drops included: demand); through counts serialized bytes; congested counts epochs where at least one shard's demand exceeded its allocation")
	res.AddTable(table)
}
