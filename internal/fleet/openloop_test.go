package fleet

import (
	"bytes"
	"runtime"
	"strconv"
	"testing"
	"time"

	"mptcpgo/internal/workload"
)

// testOpenLoopSpec is a small fleet-openloop workload: 12 hosts, 4 shards,
// Poisson arrivals well within the access links' capacity.
func testOpenLoopSpec(workers int, rate float64) OpenLoopSpec {
	spec := DefaultOpenLoopSpec(42, 12, rate, 2*time.Second)
	spec.Shards = 4
	spec.Workers = workers
	spec.Sizes = workload.FixedSize(16 << 10)
	spec.FlowDeadline = 3 * time.Second
	return spec
}

// TestOpenLoopWorkerInvariance pins the open-loop engine to the same
// contract as fleet-http: the merged JSON is byte-identical whether shards
// run sequentially under GOMAXPROCS=1 or in parallel under GOMAXPROCS=4.
func TestOpenLoopWorkerInvariance(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	res1, err1 := RunOpenLoop(testOpenLoopSpec(1, 60))
	runtime.GOMAXPROCS(4)
	res4, err4 := RunOpenLoop(testOpenLoopSpec(4, 60))
	runtime.GOMAXPROCS(prev)
	if err1 != nil {
		t.Fatal(err1)
	}
	if err4 != nil {
		t.Fatal(err4)
	}
	j1, j4 := encodeJSON(t, res1), encodeJSON(t, res4)
	if !bytes.Equal(j1, j4) {
		t.Fatalf("merged JSON differs between 1 worker (GOMAXPROCS=1) and 4 workers (GOMAXPROCS=4):\n--- w1 ---\n%s\n--- w4 ---\n%s", j1, j4)
	}
}

// TestOpenLoopShardCountDeterminism checks that each shard count is
// run-to-run deterministic and that the offered schedule is invariant across
// partitions: per-host arrival streams derive from the root seed and the
// global host index, so re-partitioning moves flows between shards without
// creating or destroying any.
func TestOpenLoopShardCountDeterminism(t *testing.T) {
	offered := ""
	for _, shards := range []int{1, 3, 4} {
		spec := testOpenLoopSpec(2, 60)
		spec.Shards = shards
		first, err := RunOpenLoop(spec)
		if err != nil {
			t.Fatal(err)
		}
		second, err := RunOpenLoop(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeJSON(t, first), encodeJSON(t, second)) {
			t.Fatalf("shards=%d: two runs at the same seed differ", shards)
		}
		table := first.Tables[0]
		all := table.Rows[len(table.Rows)-1]
		if offered == "" {
			offered = all[2]
		} else if all[2] != offered {
			t.Fatalf("shards=%d: offered %s flows, want %s (arrival schedule must not depend on the partition)", shards, all[2], offered)
		}
	}
	if offered == "0" {
		t.Fatal("workload offered no flows at all")
	}
}

// TestOpenLoopOverloadObservable is the regime check that motivates the
// subsystem: pushing the offered rate far past capacity must saturate
// goodput and surface drops/queueing that a closed-loop pool cannot show.
func TestOpenLoopOverloadObservable(t *testing.T) {
	run := func(rate float64) (goodput, p99 float64, dropped, open int) {
		res, err := RunOpenLoop(testOpenLoopSpec(0, rate))
		if err != nil {
			t.Fatal(err)
		}
		table := res.Tables[0]
		all := table.Rows[len(table.Rows)-1]
		goodput = parseF(t, all[9])
		p99 = parseF(t, all[11])
		dropped = int(parseF(t, all[4]))
		open = int(parseF(t, all[7]))
		return
	}
	lightGoodput, lightP99, _, _ := run(40)
	heavyGoodput, heavyP99, heavyDropped, heavyOpen := run(2000)

	// 2000 flows/s × 16 KB ≈ 256 Mbps offered against ~69 Mbps of summed
	// access capacity: goodput must not scale with offered load (saturation).
	if heavyGoodput > lightGoodput*20 {
		t.Errorf("goodput scaled with offered load (%.2f -> %.2f Mbps): not saturating", lightGoodput, heavyGoodput)
	}
	if heavyP99 <= lightP99 {
		t.Errorf("p99 latency did not rise under overload (%.2f -> %.2f ms)", lightP99, heavyP99)
	}
	if heavyDropped+heavyOpen == 0 {
		t.Error("overload produced no dropped or unfinished flows")
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad table cell %q: %v", s, err)
	}
	return v
}
