package fleet

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"mptcpgo/internal/experiments"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/workload"
)

// coreBusyThrough averages the "core through" series over the back half of
// the arrival window (epochs 20..60 of 50ms): past the slow-start ramp,
// before the drain tail. This is the saturation signal — the flow-level
// goodput column is additionally depressed by deadline-killed flows (work
// the core served but that died anyway), which is congestion-collapse
// physics, not an allocation property.
func coreBusyThrough(res *experiments.Result) float64 {
	for _, s := range res.Series {
		if s.Name != "core through" {
			continue
		}
		lo, hi := 20, 60
		if hi > len(s.Y) {
			hi = len(s.Y)
		}
		if hi <= lo {
			return 0
		}
		var sum float64
		for _, v := range s.Y[lo:hi] {
			sum += v
		}
		return sum / float64(hi-lo)
	}
	return 0
}

// testCorelinkSpec is a small fleet-corelink workload: 12 hosts across 4
// shards all downloading through one shared core link. The 50ms epoch keeps
// the capacity exchange adapting well within the short test window.
func testCorelinkSpec(workers int, rate float64, coreMbps float64) CorelinkSpec {
	spec := DefaultCorelinkSpec(42, 12, rate, 3*time.Second, netem.Mbps(coreMbps))
	spec.Shards = 4
	spec.Workers = workers
	spec.Sizes = workload.FixedSize(16 << 10)
	spec.FlowDeadline = 3 * time.Second
	spec.Shared.Epoch = 50 * time.Millisecond
	return spec
}

// TestCorelinkWorkerInvariance pins the coupled engine to the fleet merge
// contract: the epoch barrier serializes every Report before the Allocate
// that reads it, so the merged JSON — scenario tables, capacity trace and
// all — is byte-identical whether shards run sequentially under GOMAXPROCS=1
// or in parallel under GOMAXPROCS=4.
func TestCorelinkWorkerInvariance(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	res1, err1 := RunCorelink(testCorelinkSpec(1, 60, 8))
	runtime.GOMAXPROCS(4)
	res4, err4 := RunCorelink(testCorelinkSpec(4, 60, 8))
	runtime.GOMAXPROCS(prev)
	if err1 != nil {
		t.Fatal(err1)
	}
	if err4 != nil {
		t.Fatal(err4)
	}
	j1, j4 := encodeJSON(t, res1), encodeJSON(t, res4)
	if !bytes.Equal(j1, j4) {
		t.Fatalf("merged JSON differs between 1 worker (GOMAXPROCS=1) and 4 workers (GOMAXPROCS=4):\n--- w1 ---\n%s\n--- w4 ---\n%s", j1, j4)
	}
}

// TestCorelinkShardCountDeterminism checks each shard count is run-to-run
// deterministic, that the offered schedule is invariant across partitions
// (arrivals derive from the root seed and the global host index), and that
// the shared-rate ceiling is a *global* property: under overload the core's
// busy-period throughput lands in the same saturation band whether the
// coupler sees 1, 2 or 4 shards — re-partitioning moves members between
// ledger slots without changing the resource they contend for.
func TestCorelinkShardCountDeterminism(t *testing.T) {
	const coreMbps = 8.0
	offered := ""
	for _, shards := range []int{1, 2, 4} {
		spec := testCorelinkSpec(2, 122, coreMbps)
		spec.Shards = shards
		first, err := RunCorelink(spec)
		if err != nil {
			t.Fatal(err)
		}
		second, err := RunCorelink(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeJSON(t, first), encodeJSON(t, second)) {
			t.Fatalf("shards=%d: two runs at the same seed differ", shards)
		}
		table := first.Tables[0]
		all := table.Rows[len(table.Rows)-1]
		if offered == "" {
			offered = all[2]
		} else if all[2] != offered {
			t.Fatalf("shards=%d: offered %s flows, want %s (arrival schedule must not depend on the partition)", shards, all[2], offered)
		}
		if through := coreBusyThrough(first); through < coreMbps*0.55 || through > coreMbps*1.25 {
			t.Errorf("shards=%d: busy-period through %.2f Mbps outside the [%.1f, %.1f] saturation band of the shared core",
				shards, through, coreMbps*0.55, coreMbps*1.25)
		}
	}
	if offered == "0" {
		t.Fatal("workload offered no flows at all")
	}
}

// TestCorelinkGlobalOverloadKnee is the acceptance check that motivates the
// subsystem: with every download transiting a shared core link, offering
// about twice the core's rate across 4 shards must saturate the merged
// goodput at the core rate — not at the (much larger) sum of per-shard
// access capacity — while the latency tail rises. Without the coupling the
// same workload is 4 disjoint underloaded shards and goodput would track
// offered load.
func TestCorelinkGlobalOverloadKnee(t *testing.T) {
	const coreMbps = 8.0
	run := func(rate float64) (offered, goodput, p99, through float64) {
		res, err := RunCorelink(testCorelinkSpec(0, rate, coreMbps))
		if err != nil {
			t.Fatal(err)
		}
		table := res.Tables[0]
		all := table.Rows[len(table.Rows)-1]
		return parseF(t, all[8]), parseF(t, all[9]), parseF(t, all[11]), coreBusyThrough(res)
	}
	// 16 KB flows: 20/s ≈ 2.6 Mbps offered (under the core), 122/s ≈ 16 Mbps
	// offered (2× the core, still well under the ~57 Mbps of summed access).
	_, lightGoodput, lightP99, _ := run(20)
	heavyOffered, heavyGoodput, heavyP99, heavyThrough := run(122)

	if heavyOffered < 1.5*coreMbps {
		t.Fatalf("overload run offered only %.2f Mbps, want >= %.2f (setup no longer oversubscribes the core)", heavyOffered, 1.5*coreMbps)
	}
	// Saturation: the busy-period core throughput pins at the shared rate
	// (small overshoot allowance for the meter's trickle floors) even though
	// the offered load is twice it and the summed access capacity is 7× it.
	if heavyThrough > coreMbps*1.25 {
		t.Errorf("busy-period through %.2f Mbps exceeds the %.1f Mbps shared core: coupling is not enforcing the bottleneck", heavyThrough, coreMbps)
	}
	if heavyThrough < coreMbps*0.55 {
		t.Errorf("busy-period through %.2f Mbps is far below the %.1f Mbps shared core: allocation is stranding capacity", heavyThrough, coreMbps)
	}
	// The knee: flow-level goodput must not track the 6× offered-load jump.
	if heavyGoodput > lightGoodput*3 {
		t.Errorf("goodput scaled with offered load (%.2f -> %.2f Mbps): no saturation knee", lightGoodput, heavyGoodput)
	}
	if heavyP99 <= lightP99 {
		t.Errorf("p99 latency did not rise under overload (%.2f -> %.2f ms)", lightP99, heavyP99)
	}
}
