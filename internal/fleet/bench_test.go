package fleet

import (
	"testing"
	"time"

	"mptcpgo/internal/telemetry"
	"mptcpgo/internal/workload"
)

// BenchmarkFleetSegmentRate measures the fleet engine's event-processing
// throughput in wire segments per simulated workload: one fleet-openloop run
// per iteration, reporting segments/sec of wall-clock time. The figure is the
// engine's capacity currency — every netem link transit is one segment — so
// regressions here surface scheduler, pool or codec slowdowns before any
// scenario-level timing does.
func BenchmarkFleetSegmentRate(b *testing.B) {
	benchmarkFleetSegmentRate(b, nil)
}

// BenchmarkFleetSegmentRateTelemetry is the same workload with a telemetry
// plane attached: the delta against BenchmarkFleetSegmentRate is the whole
// cost of the instrumentation (strided atomic publishes plus the per-flow
// histogram observation), which must stay within run-to-run noise.
func BenchmarkFleetSegmentRateTelemetry(b *testing.B) {
	benchmarkFleetSegmentRate(b, telemetry.New("bench"))
}

func benchmarkFleetSegmentRate(b *testing.B, plane *telemetry.Plane) {
	spec := DefaultOpenLoopSpec(42, 12, 200, 2*time.Second)
	spec.Shards = 4
	spec.Sizes = workload.FixedSize(16 << 10)
	spec.FlowDeadline = 3 * time.Second
	spec.Telemetry = plane

	spec = spec.withDefaults()
	var segments uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs, err := Run(spec.Seed, spec.Hosts, spec.Shards, spec.Workers, func(sh *Shard) (openLoopShardOut, error) {
			return runOpenLoopShard(&spec, sh)
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, out := range outs {
			segments += out.segments
		}
	}
	b.StopTimer()
	if segments == 0 {
		b.Fatal("benchmark workload serialized no segments")
	}
	b.ReportMetric(float64(segments)/b.Elapsed().Seconds(), "segments/sec")
}
