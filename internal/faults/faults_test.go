package faults

import (
	"strings"
	"testing"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/sim"
)

func TestParsePresetsAndRoundTrip(t *testing.T) {
	for _, name := range PresetNames() {
		sp, err := Parse(name)
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		if name == "none" {
			if !sp.Empty() {
				t.Fatalf("preset none parsed to %v", sp)
			}
			continue
		}
		// The canonical reserialization must parse back to the same spec.
		again, err := Parse(sp.String())
		if err != nil {
			t.Fatalf("preset %s: reparse %q: %v", name, sp.String(), err)
		}
		if again.String() != sp.String() {
			t.Fatalf("preset %s: round trip %q != %q", name, again.String(), sp.String())
		}
	}
}

func TestParseDefaultsAndClauses(t *testing.T) {
	sp := MustParse("flap;loss:rate=0.5")
	if len(sp.Faults) != 2 {
		t.Fatalf("got %d clauses", len(sp.Faults))
	}
	f := sp.Faults[0]
	if f.Kind != "flap" || f.Path != 1 || f.Period != time.Second || f.Down != 250*time.Millisecond || f.At != 500*time.Millisecond {
		t.Fatalf("flap defaults: %+v", f)
	}
	l := sp.Faults[1]
	if l.Path != -1 || l.Rate != 0.5 || l.Dur != 2*time.Second {
		t.Fatalf("loss defaults: %+v", l)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"explode",                // unknown kind
		"flap:period=1s,down=2s", // down must be shorter than period
		"loss:rate=1.5",          // rate out of range
		"squeeze:factor=2",       // factor must shrink
		"flap:bogus=1",           // unknown key
		"flap:path",              // malformed kv
		"down:at=notaduration",   // bad duration
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestCheckerCatchesCorruptionAndShortDelivery(t *testing.T) {
	k := NewChecker(7, 8)
	buf := make([]byte, 8)
	k.Fill(buf, 0)
	k.Feed(buf[:4])
	if !k.Intact() || k.Complete() {
		t.Fatalf("half-fed checker: intact=%v complete=%v", k.Intact(), k.Complete())
	}
	if err := k.Err(); err == nil || !strings.Contains(err.Error(), "short delivery") {
		t.Fatalf("short delivery not reported: %v", err)
	}
	buf[4] ^= 0xFF
	k.Feed(buf[4:])
	if k.Intact() || k.Complete() {
		t.Fatal("corruption not detected")
	}
	if err := k.Err(); err == nil || !strings.Contains(err.Error(), "corruption at offset 4") {
		t.Fatalf("wrong corruption report: %v", err)
	}

	ok := NewChecker(7, 8)
	ok.Fill(buf, 0)
	ok.Feed(buf)
	if !ok.Complete() || ok.Hash() != ExpectedHash(7, 8) {
		t.Fatalf("clean feed: complete=%v hash=%x want %x", ok.Complete(), ok.Hash(), ExpectedHash(7, 8))
	}
}

func TestWatchdogReportsStallEpisodes(t *testing.T) {
	s := sim.New(1)
	progress := uint64(0)
	episodes := 0
	w := NewWatchdog(s, time.Second, func() uint64 { return progress }, func() bool { return false })
	w.OnStall = func(time.Duration, uint64) { episodes++ }
	w.Start()
	// Advance progress for 3 ticks, stall for 3, recover, stall again.
	s.ScheduleAt(500*time.Millisecond, func() { progress = 1 })
	s.ScheduleAt(1500*time.Millisecond, func() { progress = 2 })
	s.ScheduleAt(2500*time.Millisecond, func() { progress = 3 })
	s.ScheduleAt(6500*time.Millisecond, func() { progress = 4 })
	if err := s.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	w.Stop()
	if episodes != 2 {
		t.Fatalf("stall episodes=%d, want 2 (one mid-run, one at the tail)", episodes)
	}
	if w.Stalls < 4 {
		t.Fatalf("stalled intervals=%d, want at least 4", w.Stalls)
	}
}

func TestClassifyFallback(t *testing.T) {
	cases := map[string]string{
		"no MP_CAPABLE in SYN/ACK":                  "handshake-strip",
		"mptcp options stripped after handshake":    "midstream-strip",
		"peer signalled MP_FAIL (checksum failure)": "mp-fail",
		"data checksum mismatch":                    "checksum",
		"data received without a mapping":           "unmapped-data",
		"something else entirely":                   "other",
	}
	for reason, want := range cases {
		if got := ClassifyFallback(reason); got != want {
			t.Errorf("ClassifyFallback(%q)=%q, want %q", reason, got, want)
		}
	}
}

// chaosNet builds a two-path client/server network with MPTCP managers.
func chaosNet(t *testing.T, seed uint64) (*netem.Network, *core.Manager, *core.Manager) {
	t.Helper()
	s := sim.New(seed)
	n := netem.Build(s, netem.WiFi3GSpec()...)
	return n, core.NewManager(n.Client), core.NewManager(n.Server)
}

// runCheckedTransfer uploads total patterned bytes client->server under the
// given fault schedule and returns the server-side checker, the injector and
// the client connection.
func runCheckedTransfer(t *testing.T, spec Spec, total int, deadline time.Duration) (*Checker, *Injector, *core.Connection) {
	t.Helper()
	n, cliMgr, srvMgr := chaosNet(t, 11)
	checker := NewChecker(99, total)

	_, err := srvMgr.Listen(80, core.DefaultConfig(), func(c *core.Connection) {
		c.OnReadable = func() {
			for {
				data := c.Read(64 << 10)
				if len(data) == 0 {
					break
				}
				checker.Feed(data)
			}
		}
	})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}

	cfg := core.DefaultConfig()
	cfg.SubflowTemplate.MaxRTORetries = 4
	conn, err := cliMgr.Dial(n.Client.Interfaces()[0], packet.Endpoint{Addr: n.ServerAddr(0), Port: 80}, cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	buf := make([]byte, 32<<10)
	sent := 0
	pump := func() {
		for sent < total {
			chunk := len(buf)
			if total-sent < chunk {
				chunk = total - sent
			}
			checker.Fill(buf[:chunk], uint64(sent))
			w := conn.Write(buf[:chunk])
			if w == 0 {
				return
			}
			sent += w
		}
		conn.Close()
	}
	conn.OnEstablished = pump
	conn.OnWritable = pump

	inj := Apply(n.Sim, spec, n.Paths, cliMgr, 42, 0)
	if err := n.Sim.RunUntil(deadline); err != nil {
		t.Fatalf("sim: %v", err)
	}
	return checker, inj, conn
}

// TestFlappingTransferCompletesIntact is the headline robustness check: a
// two-path transfer whose secondary path flaps every 500 ms must still
// deliver every byte exactly once, in order.
func TestFlappingTransferCompletesIntact(t *testing.T) {
	spec := MustParse("flap:path=1,period=500ms,down=150ms,at=250ms")
	checker, inj, _ := runCheckedTransfer(t, spec, 1500<<10, 60*time.Second)
	if inj.Flaps < 3 {
		t.Fatalf("flaps=%d, want several", inj.Flaps)
	}
	if !checker.Complete() {
		t.Fatalf("transfer not intact: %v", checker.Err())
	}
	if checker.Hash() != ExpectedHash(99, uint64(checker.Expected)) {
		t.Fatal("rolling hash mismatch")
	}
}

// TestInterfaceRemovalReinjectsOntoSurvivor removes the secondary interface
// permanently mid-transfer: the dead subflow's un-DATA-ACKed bytes must be
// reinjected onto the surviving path and the transfer must finish intact.
func TestInterfaceRemovalReinjectsOntoSurvivor(t *testing.T) {
	spec := MustParse("ifdown:path=1,at=400ms")
	checker, inj, conn := runCheckedTransfer(t, spec, 1<<20, 60*time.Second)
	if inj.Removals != 1 || inj.Restores != 0 {
		t.Fatalf("removals=%d restores=%d, want 1/0", inj.Removals, inj.Restores)
	}
	if !checker.Complete() {
		t.Fatalf("transfer not intact after interface loss: %v", checker.Err())
	}
	if conn.Stats().Reinjections == 0 {
		t.Fatal("no reinjections recorded for the dead subflow's data")
	}
	usable := 0
	for _, s := range conn.Subflows() {
		if s.Usable() {
			usable++
		}
	}
	if usable != 1 {
		t.Fatalf("usable subflows=%d after removal, want 1", usable)
	}
}
