// Package faults provides deterministic, simulation-clock-driven fault
// injection for the emulated network: link flaps, one-shot outages, loss
// bursts, rate squeezes and mid-session interface removal/addition (which
// drives the MPTCP REMOVE_ADDR/re-establishment machinery in internal/core).
//
// Schedules are described by a compact text grammar (Parse) so experiments
// and the mptcpbench CLI share one vocabulary, and are seeded through
// sim.DeriveSeed: a schedule's event times depend only on (root seed, stream
// index), never on shard partitioning or worker scheduling, so a sharded
// scenario under faults produces byte-identical results at any worker count.
//
// The grammar is a semicolon-separated list of clauses, each a fault kind
// with comma-separated key=value arguments:
//
//	flap:path=1,period=500ms,down=120ms,at=250ms[,until=10s][,jitter=50ms]
//	down:path=0,at=1s[,dur=2s]
//	loss:path=all,rate=0.3,at=500ms,dur=2s
//	squeeze:path=0,factor=0.1,at=500ms,dur=3s
//	ifdown:path=1,at=1s[,dur=3s]
//	churn:path=1,period=2s,down=700ms,at=1s[,until=20s]
//
// `path` selects a path by index within the target's path list (taken modulo
// the list length, so presets written for two-path hosts degrade sanely on
// one-path topologies); `all` targets every path. `flap`/`down` silently
// discard traffic (Path.SetDown); `loss`/`squeeze` reconfigure both
// directional links (netem.Link.SetConfig) and restore the original
// configuration when the burst ends; `ifdown`/`churn` additionally withdraw
// the host-side interface from the MPTCP stack (REMOVE_ADDR to the peer,
// reinjection of stranded data) and re-announce it on restoration.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/probe"
	"mptcpgo/internal/sim"
)

// SeedStream is the DeriveSeed stream-offset namespace for fault-schedule
// jitter. It is disjoint from the open-loop workload namespace (0x0517_0000)
// and from the raw shard indices used for shard seeds, so a fault schedule
// never consumes the same derived stream as a traffic generator.
const SeedStream = 0x0FA7_0000

// Fault is one parsed clause of a fault schedule.
type Fault struct {
	Kind   string        // flap | down | loss | squeeze | ifdown | churn
	Path   int           // target path index; -1 means every path
	At     time.Duration // first action time
	Period time.Duration // repeat interval (flap, churn)
	Down   time.Duration // outage length per cycle (flap, churn)
	Dur    time.Duration // burst/outage length (down, loss, squeeze, ifdown); 0 = permanent
	Until  time.Duration // stop repeating after this time; 0 = forever
	Rate   float64       // loss probability (loss)
	Factor float64       // rate multiplier (squeeze)
	Jitter time.Duration // uniform random addition to At, drawn per target
}

// Spec is a parsed fault schedule.
type Spec struct {
	Faults []Fault
}

// Empty reports whether the schedule contains no faults.
func (sp Spec) Empty() bool { return len(sp.Faults) == 0 }

// String reserializes the schedule in canonical clause order.
func (sp Spec) String() string {
	parts := make([]string, 0, len(sp.Faults))
	for _, f := range sp.Faults {
		var kv []string
		add := func(k, v string) { kv = append(kv, k+"="+v) }
		if f.Path == -1 {
			add("path", "all")
		} else {
			add("path", strconv.Itoa(f.Path))
		}
		add("at", f.At.String())
		if f.Period > 0 {
			add("period", f.Period.String())
		}
		if f.Down > 0 {
			add("down", f.Down.String())
		}
		if f.Dur > 0 {
			add("dur", f.Dur.String())
		}
		if f.Until > 0 {
			add("until", f.Until.String())
		}
		if f.Rate > 0 {
			add("rate", strconv.FormatFloat(f.Rate, 'g', -1, 64))
		}
		if f.Factor > 0 {
			add("factor", strconv.FormatFloat(f.Factor, 'g', -1, 64))
		}
		if f.Jitter > 0 {
			add("jitter", f.Jitter.String())
		}
		parts = append(parts, f.Kind+":"+strings.Join(kv, ","))
	}
	return strings.Join(parts, ";")
}

// Presets maps short names (usable anywhere a spec string is accepted) to
// canonical schedules; the adversarial experiment grid iterates over them.
var Presets = map[string]string{
	"none":    "",
	"flap":    "flap:path=1,period=1s,down=250ms,at=500ms",
	"flap500": "flap:path=1,period=500ms,down=120ms,at=250ms",
	"loss":    "loss:path=all,rate=0.2,at=500ms,dur=2s",
	"squeeze": "squeeze:path=0,factor=0.1,at=500ms,dur=3s",
	"ifdown":  "ifdown:path=1,at=1s,dur=3s",
	"ifchurn": "churn:path=1,period=2s,down=700ms,at=1s",
}

// PresetNames returns the preset names in sorted order.
func PresetNames() []string {
	names := make([]string, 0, len(Presets))
	for n := range Presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Parse parses a fault schedule. The input may be a preset name or a grammar
// string; an empty string yields an empty schedule.
func Parse(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	if p, ok := Presets[s]; ok {
		s = p
	}
	var sp Spec
	if s == "" {
		return sp, nil
	}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		f, err := parseClause(clause)
		if err != nil {
			return Spec{}, err
		}
		sp.Faults = append(sp.Faults, f)
	}
	return sp, nil
}

// MustParse parses a schedule and panics on error; for tests and presets.
func MustParse(s string) Spec {
	sp, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return sp
}

func parseClause(clause string) (Fault, error) {
	kind, args, _ := strings.Cut(clause, ":")
	kind = strings.TrimSpace(kind)
	f := Fault{Kind: kind, Path: -2} // -2 = unset, defaulted per kind below
	switch kind {
	case "flap", "down", "loss", "squeeze", "ifdown", "churn":
	default:
		return Fault{}, fmt.Errorf("faults: unknown fault kind %q", kind)
	}
	if args != "" {
		for _, kv := range strings.Split(args, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return Fault{}, fmt.Errorf("faults: malformed argument %q in %q", kv, clause)
			}
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			var err error
			switch key {
			case "path":
				if val == "all" {
					f.Path = -1
				} else {
					f.Path, err = strconv.Atoi(val)
				}
			case "at":
				f.At, err = time.ParseDuration(val)
			case "period":
				f.Period, err = time.ParseDuration(val)
			case "down":
				f.Down, err = time.ParseDuration(val)
			case "dur":
				f.Dur, err = time.ParseDuration(val)
			case "until":
				f.Until, err = time.ParseDuration(val)
			case "jitter":
				f.Jitter, err = time.ParseDuration(val)
			case "rate":
				f.Rate, err = strconv.ParseFloat(val, 64)
			case "factor":
				f.Factor, err = strconv.ParseFloat(val, 64)
			default:
				return Fault{}, fmt.Errorf("faults: unknown key %q in %q", key, clause)
			}
			if err != nil {
				return Fault{}, fmt.Errorf("faults: bad value for %s in %q: %v", key, clause, err)
			}
		}
	}
	// Per-kind defaults.
	if f.Path == -2 {
		if kind == "loss" || kind == "squeeze" {
			f.Path = -1
		} else {
			f.Path = 1
		}
	}
	if f.At == 0 {
		f.At = 500 * time.Millisecond
	}
	switch kind {
	case "flap", "churn":
		if f.Period <= 0 {
			f.Period = time.Second
		}
		if f.Down <= 0 {
			f.Down = 250 * time.Millisecond
		}
		if f.Down >= f.Period {
			return Fault{}, fmt.Errorf("faults: %s down=%v must be shorter than period=%v", kind, f.Down, f.Period)
		}
	case "loss":
		if f.Rate <= 0 {
			f.Rate = 0.3
		}
		if f.Rate > 1 {
			return Fault{}, fmt.Errorf("faults: loss rate %v out of range (0,1]", f.Rate)
		}
		if f.Dur <= 0 {
			f.Dur = 2 * time.Second
		}
	case "squeeze":
		if f.Factor <= 0 {
			f.Factor = 0.1
		}
		if f.Factor >= 1 {
			return Fault{}, fmt.Errorf("faults: squeeze factor %v must be below 1", f.Factor)
		}
		if f.Dur <= 0 {
			f.Dur = 2 * time.Second
		}
	}
	return f, nil
}

// Injector applies a schedule to one target (a set of paths plus, for
// interface faults, the host's MPTCP stack) and counts what it did.
type Injector struct {
	sim   *sim.Simulator
	rng   *sim.RNG
	paths []*netem.Path
	mgr   *core.Manager

	// Counters, exported for scenario result tables.
	Flaps      int // down/up cycles executed (flap)
	Outages    int // one-shot outages started (down)
	LossBursts int
	Squeezes   int
	Removals   int // interface withdrawals (ifdown, churn)
	Restores   int // interface restorations

	// Flight recorder, attached via SetProbe. Action closures read these at
	// fire time, so attaching after Apply (but before the simulation steps)
	// still captures every action.
	probe  *probe.Recorder
	member int
}

// SetProbe attaches a flight recorder: every fault action fired from now on
// is emitted as a KindFaultAction event under the given global member index.
func (in *Injector) SetProbe(rec *probe.Recorder, member int) {
	in.probe = rec
	in.member = member
}

// note records one fault action against the flight recorder (no-op when no
// probe is attached). B carries the index of the affected path.
func (in *Injector) note(code int64, p *netem.Path) {
	if in.probe == nil {
		return
	}
	pathIdx := int64(-1)
	for i, q := range in.paths {
		if q == p {
			pathIdx = int64(i)
			break
		}
	}
	in.probe.Emit(in.member, probe.KindFaultAction, -1, -1, code, pathIdx)
	in.probe.Count(in.member, probe.CtrFaultActions, 1)
}

// Apply schedules the spec's faults against the given paths. mgr may be nil
// when the spec contains no interface faults; it identifies the host whose
// interfaces `ifdown`/`churn` withdraw (the path end owned by mgr's host).
// seed/stream feed sim.DeriveSeed for jitter draws: pass the scenario root
// seed and a per-target stream index (e.g. the global member index) so
// schedules are independent per target yet identical across repartitions.
func Apply(s *sim.Simulator, spec Spec, paths []*netem.Path, mgr *core.Manager, seed, stream uint64) *Injector {
	in := &Injector{
		sim:   s,
		rng:   sim.NewRNG(sim.DeriveSeed(seed, SeedStream+stream)),
		paths: paths,
		mgr:   mgr,
	}
	for _, f := range spec.Faults {
		for _, p := range in.targets(f) {
			at := f.At
			if f.Jitter > 0 {
				at += time.Duration(in.rng.Float64() * float64(f.Jitter))
			}
			in.schedule(f, p, at)
		}
	}
	return in
}

// targets resolves a fault's path selector against the injector's path list.
func (in *Injector) targets(f Fault) []*netem.Path {
	if len(in.paths) == 0 {
		return nil
	}
	if f.Path == -1 {
		return in.paths
	}
	return in.paths[f.Path%len(in.paths) : f.Path%len(in.paths)+1]
}

func (in *Injector) schedule(f Fault, p *netem.Path, at time.Duration) {
	switch f.Kind {
	case "flap":
		in.scheduleCycle(f, p, at,
			func() { p.SetDown(true); in.Flaps++; in.note(probe.FaultLinkDown, p) },
			func() { p.SetDown(false); in.note(probe.FaultLinkUp, p) })
	case "churn":
		in.scheduleCycle(f, p, at,
			func() { in.removeIface(p) },
			func() { in.restoreIface(p) })
	case "down":
		in.sim.ScheduleAt(at, func() {
			p.SetDown(true)
			in.Outages++
			in.note(probe.FaultLinkDown, p)
			if f.Dur > 0 {
				in.sim.Schedule(f.Dur, func() { p.SetDown(false); in.note(probe.FaultLinkUp, p) })
			}
		})
	case "loss":
		in.sim.ScheduleAt(at, func() {
			in.LossBursts++
			in.note(probe.FaultLossOn, p)
			in.reconfigure(p, f.Dur, func(cfg netem.LinkConfig) netem.LinkConfig {
				cfg.LossRate = f.Rate
				return cfg
			}, func() { in.note(probe.FaultLossOff, p) })
		})
	case "squeeze":
		in.sim.ScheduleAt(at, func() {
			in.Squeezes++
			in.note(probe.FaultSqueeze, p)
			in.reconfigure(p, f.Dur, func(cfg netem.LinkConfig) netem.LinkConfig {
				if cfg.RateBps > 0 {
					return CapRate(cfg, int64(float64(cfg.RateBps)*f.Factor))
				}
				return cfg
			}, func() { in.note(probe.FaultRestoreRate, p) })
		})
	case "ifdown":
		in.sim.ScheduleAt(at, func() {
			in.removeIface(p)
			if f.Dur > 0 {
				in.sim.Schedule(f.Dur, func() { in.restoreIface(p) })
			}
		})
	}
}

// scheduleCycle runs down/up cycles starting at `at`, repeating every
// f.Period until f.Until (0 = forever).
func (in *Injector) scheduleCycle(f Fault, p *netem.Path, at time.Duration, down, up func()) {
	var cycle func()
	cycle = func() {
		down()
		in.sim.Schedule(f.Down, up)
		if f.Until > 0 && in.sim.Now()+f.Period > f.Until {
			return
		}
		in.sim.Schedule(f.Period, cycle)
	}
	in.sim.ScheduleAt(at, cycle)
}

// CapRate is the rate-squeeze transform: it returns cfg with RateBps reduced
// to bps (floored at 1 bps so the link never becomes infinitely fast), leaving
// delay, queue size and loss untouched. A zero or unlimited (RateBps == 0)
// configuration is capped outright. The squeeze fault clause and the
// capacity layer's epoch-boundary link-config swaps (internal/capacity) share
// it so both express "less rate, same path" identically.
func CapRate(cfg netem.LinkConfig, bps int64) netem.LinkConfig {
	if bps < 1 {
		bps = 1
	}
	if cfg.RateBps == 0 || bps < cfg.RateBps {
		cfg.RateBps = bps
	}
	return cfg
}

// reconfigure applies a transform to both directional links of a path and
// restores the pre-burst configuration after dur (0 = permanent). onRestore,
// when non-nil, runs inside the restore event — it must not schedule further
// events, so the event count is identical with or without it.
func (in *Injector) reconfigure(p *netem.Path, dur time.Duration, transform func(netem.LinkConfig) netem.LinkConfig, onRestore func()) {
	origAB, origBA := p.LinkAB().Config(), p.LinkBA().Config()
	p.LinkAB().SetConfig(transform(origAB))
	p.LinkBA().SetConfig(transform(origBA))
	if dur > 0 {
		in.sim.Schedule(dur, func() {
			p.LinkAB().SetConfig(origAB)
			p.LinkBA().SetConfig(origBA)
			if onRestore != nil {
				onRestore()
			}
		})
	}
}

// hostIface returns the end of the path owned by the injector's manager.
func (in *Injector) hostIface(p *netem.Path) *netem.Interface {
	if in.mgr == nil {
		return nil
	}
	if p.A().Host() == in.mgr.Host() {
		return p.A()
	}
	if p.B().Host() == in.mgr.Host() {
		return p.B()
	}
	return nil
}

// removeIface models the interface disappearing: the path goes dark AND the
// MPTCP stack is told, so it fails subflows, reinjects their data and sends
// REMOVE_ADDR over surviving paths.
func (in *Injector) removeIface(p *netem.Path) {
	p.SetDown(true)
	in.Removals++
	in.note(probe.FaultIfaceDown, p)
	if ifc := in.hostIface(p); ifc != nil {
		in.mgr.RemoveLocalInterface(ifc)
	}
}

func (in *Injector) restoreIface(p *netem.Path) {
	p.SetDown(false)
	in.Restores++
	in.note(probe.FaultIfaceUp, p)
	if ifc := in.hostIface(p); ifc != nil {
		in.mgr.RestoreLocalInterface(ifc)
	}
}
