package faults

import (
	"fmt"
	"strings"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/sim"
)

// End-to-end integrity invariants. Whatever the chaos layer does to the
// network, an MPTCP connection must deliver the application byte stream
// exactly once, in order — or die with an explicit error. The Checker
// verifies this byte-for-byte against a deterministic pattern (so duplicated,
// reordered or corrupted delivery is caught at the first bad byte, not just
// in an end-of-run hash comparison), and maintains a rolling FNV-1a hash as
// an independent cross-check. The Watchdog enforces the liveness half of the
// invariant: a connection that silently stops making progress is a bug, and
// it is reported with a diagnostic dump instead of idling until a scenario
// deadline expires.

// PatternByte returns the expected payload byte at stream offset off for a
// given stream seed (a splitmix64-style mix, so every offset and seed yields
// an effectively independent byte).
func PatternByte(seed, off uint64) byte {
	x := off + seed*0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xff51afd7ed558ccd
	return byte(x ^ (x >> 32))
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// ExpectedHash returns the FNV-1a hash of the first n pattern bytes; the
// receiver's rolling hash must equal it after a complete transfer.
func ExpectedHash(seed, n uint64) uint64 {
	h := uint64(fnvOffset)
	for i := uint64(0); i < n; i++ {
		h = (h ^ uint64(PatternByte(seed, i))) * fnvPrime
	}
	return h
}

// Checker verifies exact-once in-order delivery of a patterned byte stream.
type Checker struct {
	Seed     uint64
	Expected uint64 // total bytes the sender will transmit

	received uint64
	hash     uint64
	mismatch int64 // stream offset of the first wrong byte; -1 = none
}

// NewChecker builds a checker for a transfer of `expected` bytes generated
// from `seed`.
func NewChecker(seed uint64, expected int) *Checker {
	return &Checker{Seed: seed, Expected: uint64(expected), hash: fnvOffset, mismatch: -1}
}

// Fill writes the pattern for stream offsets [off, off+len(p)) into p; the
// sender uses it to generate the transfer without materializing it.
func (k *Checker) Fill(p []byte, off uint64) {
	for i := range p {
		p[i] = PatternByte(k.Seed, off+uint64(i))
	}
}

// Feed consumes received bytes in application order, verifying each against
// the pattern and folding it into the rolling hash.
func (k *Checker) Feed(p []byte) {
	for _, b := range p {
		if k.mismatch < 0 && b != PatternByte(k.Seed, k.received) {
			k.mismatch = int64(k.received)
		}
		k.hash = (k.hash ^ uint64(b)) * fnvPrime
		k.received++
	}
}

// Received returns the number of bytes consumed so far.
func (k *Checker) Received() uint64 { return k.received }

// Hash returns the rolling FNV-1a hash of the bytes consumed so far.
func (k *Checker) Hash() uint64 { return k.hash }

// Intact reports whether every byte so far matched the pattern.
func (k *Checker) Intact() bool { return k.mismatch < 0 }

// Complete reports whether the full transfer arrived intact.
func (k *Checker) Complete() bool { return k.mismatch < 0 && k.received == k.Expected }

// Err describes the first violated invariant, or nil.
func (k *Checker) Err() error {
	switch {
	case k.mismatch >= 0:
		return fmt.Errorf("faults: byte-stream corruption at offset %d (received %d/%d bytes)", k.mismatch, k.received, k.Expected)
	case k.received > k.Expected:
		return fmt.Errorf("faults: received %d bytes, expected only %d (duplicate delivery)", k.received, k.Expected)
	case k.received < k.Expected:
		return fmt.Errorf("faults: short delivery: %d/%d bytes", k.received, k.Expected)
	}
	return nil
}

// Watchdog turns silent stalls into explicit failures: every interval it
// samples a progress counter, and if the counter has not advanced while the
// transfer is unfinished it records a stall and (once per stall episode)
// invokes OnStall with a diagnostic.
type Watchdog struct {
	// OnStall is invoked on the transition into a stall episode. Optional.
	OnStall func(at time.Duration, progress uint64)
	// Stalls counts stalled intervals (not episodes).
	Stalls int
	// Episodes counts distinct stall episodes: runs of stalled intervals
	// separated by progress. One episode may span many stalled intervals.
	Episodes int

	sim      *sim.Simulator
	interval time.Duration
	progress func() uint64
	done     func() bool
	timer    *sim.Timer
	last     uint64
	inStall  bool
	started  bool
}

// NewWatchdog builds a watchdog sampling `progress` every `interval`; `done`
// reporting true disarms it. Call Start to arm.
func NewWatchdog(s *sim.Simulator, interval time.Duration, progress func() uint64, done func() bool) *Watchdog {
	w := &Watchdog{sim: s, interval: interval, progress: progress, done: done}
	w.timer = s.NewTimer(w.tick)
	return w
}

// Start arms the watchdog.
func (w *Watchdog) Start() {
	if w.started {
		return
	}
	w.started = true
	w.last = w.progress()
	w.timer.Reset(w.interval)
}

// Stop disarms the watchdog.
func (w *Watchdog) Stop() { w.timer.Stop() }

func (w *Watchdog) tick() {
	if w.done() {
		return
	}
	cur := w.progress()
	if cur == w.last {
		w.Stalls++
		if !w.inStall {
			w.inStall = true
			w.Episodes++
			if w.OnStall != nil {
				w.OnStall(w.sim.Now(), cur)
			}
		}
	} else {
		w.last = cur
		w.inStall = false
	}
	w.timer.Reset(w.interval)
}

// ClassifyFallback maps a Connection.OnFallback reason string onto the small
// taxonomy the chaos scenarios report on. The categories follow §3's failure
// modes: options stripped at the handshake vs. mid-stream, checksum-detected
// payload mangling, peer-signalled MP_FAIL, and mappings lost to coalescing.
func ClassifyFallback(reason string) string {
	switch {
	case strings.Contains(reason, "MP_FAIL"):
		return "mp-fail"
	case strings.Contains(reason, "no MP_CAPABLE"):
		return "handshake-strip"
	case strings.Contains(reason, "stripped after handshake"):
		return "midstream-strip"
	case strings.Contains(reason, "checksum"):
		return "checksum"
	case strings.Contains(reason, "without a mapping"):
		return "unmapped-data"
	default:
		return "other"
	}
}

// DumpConnection renders a one-connection diagnostic: connection flags,
// counters and per-subflow endpoint state. The watchdog attaches it to stall
// reports so a hang is debuggable from the test log alone.
func DumpConnection(c *core.Connection) string {
	if c == nil {
		return "<nil connection>"
	}
	var b strings.Builder
	st := c.Stats()
	fmt.Fprintf(&b, "conn established=%v mptcp=%v fallback=%v closed=%v err=%v\n",
		c.Established(), c.MPTCPActive(), c.Fallback(), c.Closed(), c.Err())
	fmt.Fprintf(&b, "  written=%d delivered=%d reinject=%d connRtx=%d unmapped=%d fallbacks=%d subflowsOpened=%d\n",
		st.BytesWritten, st.BytesDelivered, st.Reinjections, st.ConnLevelRtx, st.UnmappedBytes, st.Fallbacks, st.SubflowsOpened)
	for _, s := range c.Subflows() {
		ep := s.Endpoint()
		if ep == nil {
			fmt.Fprintf(&b, "  subflow %d: no endpoint\n", s.ID())
			continue
		}
		es := ep.Stats()
		fmt.Fprintf(&b, "  subflow %d role=%d state=%v usable=%v srtt=%v sent=%d rcvd=%d rtx=%d timeouts=%d\n",
			s.ID(), s.Role(), ep.State(), s.Usable(), ep.SRTT(), es.SegmentsSent, es.SegmentsReceived, es.Retransmissions, es.Timeouts)
	}
	return b.String()
}
