package sim

import (
	"math/bits"
	"time"
)

// Hierarchical timing wheel: the default scheduler behind Simulator.
//
// The motivation is the fleet hot path's event mix: RTO timers re-armed once
// per ACK, link serialization completions and probe ticks are all scheduled a
// short, bounded distance into the future and very frequently canceled or
// replaced before firing. A binary heap pays O(log n) sift work for every one
// of those operations and dominated the BenchmarkFleetSegmentRate profile;
// the wheel makes schedule and cancel O(1) amortized while firing events in
// exactly the same (At, seq) order as the heap (FuzzSchedulerEquivalence pins
// the two implementations against each other).
//
// Layout. Time is quantized into ticks of 2^wheelTickShift nanoseconds
// (16.384µs). The wheel has wheelLevels levels of wheelSlots slots each;
// level l slot s holds events whose tick agrees with the cursor in all 6-bit
// digits above l and has digit s at level l. Placement picks the highest
// digit in which the event's tick differs from the cursor, which guarantees
// the slot is strictly ahead of the cursor's position in the current window —
// slots never wrap into a future lap, so a per-level occupancy bitmap gives
// an exact "next occupied position" and the cursor can jump over empty
// regions instead of stepping tick by tick.
//
// Ordering. Events whose tick is at or behind the cursor live in a small
// "near" min-heap ordered by (At, seq): one tick spans many distinct firing
// times, so the heap restores sub-tick order. The invariant is
//
//	near:  tick(ev) <= curTick
//	wheel: tick(ev) >  curTick, placeable (top digits match curTick)
//	over:  tick(ev) differs from curTick in a digit >= wheelLevels
//
// which makes every near event strictly earlier than every wheel event (their
// tick ranges are disjoint), so popping the near minimum is globally correct.
//
// Advancing. When near drains, the cursor jumps to the smallest candidate
// among all levels' next occupied slots: for level 0 that position is an
// event tick, for higher levels it is the boundary where the slot must be
// cascaded (re-placed one level down relative to the new cursor). A cascaded
// event lands strictly below its old level, so each event cascades at most
// wheelLevels-1 times over its lifetime — O(1) amortized. Far-future events
// (differing in a digit above the top level, horizon 2^30 ticks ≈ 4.9h) wait
// in an overflow heap; when the wheel empties the cursor rebases onto the
// overflow minimum and refills.
const (
	wheelTickShift = 14 // 16.384µs per tick
	wheelLevelBits = 6
	wheelSlots     = 1 << wheelLevelBits
	wheelLevels    = 5
	// wheelSpanBits is the total digit width covered by the wheel; ticks
	// differing from the cursor at bit wheelSpanBits or above overflow.
	wheelSpanBits = wheelLevelBits * wheelLevels
)

type wheelSched struct {
	// curTick is the cursor: every slotted event's tick is strictly ahead of
	// it, every near event's tick is at or behind it.
	curTick int64

	near     eventQueue // due events, ordered by (At, seq)
	overflow eventQueue // beyond the wheel horizon, ordered by (At, seq)

	slots    [wheelLevels][wheelSlots][]*Event
	occupied [wheelLevels]uint64 // bit s set iff slots[l][s] is non-empty
	slotted  int                 // events currently in wheel slots
}

func newWheelSched() *wheelSched { return &wheelSched{} }

func wheelTick(at time.Duration) int64 { return int64(at) >> wheelTickShift }

// digitLevel returns the index of the highest 6-bit digit in which t and base
// differ. t must be strictly greater than base.
func digitLevel(t, base int64) int {
	return (63 - bits.LeadingZeros64(uint64(t^base))) / wheelLevelBits
}

func (w *wheelSched) insert(ev *Event) {
	t := wheelTick(ev.At)
	if t <= w.curTick {
		ev.where = locNear
		w.near.push(ev)
		return
	}
	w.place(ev, t)
}

// place files an event whose tick is strictly ahead of the cursor into a
// wheel slot, or into overflow when it is beyond the horizon.
func (w *wheelSched) place(ev *Event, t int64) {
	l := digitLevel(t, w.curTick)
	if l >= wheelLevels {
		ev.where = locOverflow
		w.overflow.push(ev)
		return
	}
	s := int((t >> (l * wheelLevelBits)) & (wheelSlots - 1))
	sl := w.slots[l][s]
	ev.where, ev.level, ev.slot, ev.index = locSlot, uint8(l), uint8(s), len(sl)
	w.slots[l][s] = append(sl, ev)
	w.occupied[l] |= 1 << s
	w.slotted++
}

func (w *wheelSched) remove(ev *Event) {
	switch ev.where {
	case locNear:
		w.near.removeAt(ev.index)
	case locOverflow:
		w.overflow.removeAt(ev.index)
	case locSlot:
		sl := w.slots[ev.level][ev.slot]
		last := len(sl) - 1
		if ev.index != last {
			moved := sl[last]
			sl[ev.index] = moved
			moved.index = ev.index
		}
		sl[last] = nil
		w.slots[ev.level][ev.slot] = sl[:last]
		if last == 0 {
			w.occupied[ev.level] &^= 1 << ev.slot
		}
		w.slotted--
	}
	ev.where = locNone
}

func (w *wheelSched) pop() *Event {
	if !w.advance() {
		return nil
	}
	ev := w.near.popMin()
	ev.where = locNone
	return ev
}

func (w *wheelSched) peek() *Event {
	if !w.advance() {
		return nil
	}
	return w.near[0]
}

func (w *wheelSched) size() int { return len(w.near) + len(w.overflow) + w.slotted }

// advance moves the cursor forward until the near heap is non-empty. It
// returns false when no events remain anywhere.
func (w *wheelSched) advance() bool {
	for len(w.near) == 0 {
		if w.slotted == 0 {
			if len(w.overflow) == 0 {
				return false
			}
			w.rebase()
			continue
		}
		cand := w.nextCandidate()
		w.curTick = cand
		// Entering cand crosses every level-l boundary with cand ≡ 0
		// (mod 64^l); cascade those slots highest-first so events settle
		// strictly downward relative to the new cursor.
		for l := wheelLevels - 1; l >= 1; l-- {
			if cand&((1<<(l*wheelLevelBits))-1) == 0 {
				w.cascade(l, int((cand>>(l*wheelLevelBits))&(wheelSlots-1)))
			}
		}
		if s := int(cand & (wheelSlots - 1)); w.occupied[0]&(1<<s) != 0 {
			w.dumpToNear(0, s)
		}
	}
	return true
}

// nextCandidate returns the smallest tick at which the wheel has work: a
// level-0 event tick, or a higher-level slot boundary requiring a cascade.
// Placement never wraps slots past the current window, so "next occupied
// position strictly after the cursor's digit" is exact at every level.
// Callable only while slotted > 0.
func (w *wheelSched) nextCandidate() int64 {
	best := int64(-1)
	for l := 0; l < wheelLevels; l++ {
		shift := uint(l * wheelLevelBits)
		pos := (w.curTick >> shift) & (wheelSlots - 1)
		ahead := w.occupied[l] &^ (2<<uint(pos) - 1)
		if ahead == 0 {
			continue
		}
		s := int64(bits.TrailingZeros64(ahead))
		base := w.curTick &^ (1<<(shift+wheelLevelBits) - 1)
		cand := base | s<<shift
		if best < 0 || cand < best {
			best = cand
		}
	}
	if best < 0 {
		panic("sim: wheel occupancy inconsistent")
	}
	return best
}

// cascade re-files every event in slots[l][s] relative to the new cursor.
// Each lands strictly below level l (its top digits now match the cursor), or
// in near when its tick equals the cursor.
func (w *wheelSched) cascade(l, s int) {
	if w.occupied[l]&(1<<s) == 0 {
		return
	}
	sl := w.slots[l][s]
	w.slots[l][s] = sl[:0]
	w.occupied[l] &^= 1 << s
	w.slotted -= len(sl)
	for i, ev := range sl {
		sl[i] = nil
		if t := wheelTick(ev.At); t <= w.curTick {
			ev.where = locNear
			w.near.push(ev)
		} else {
			w.place(ev, t)
		}
	}
}

// dumpToNear moves an entire slot into the near heap (used for level-0 slots,
// whose events are all due once the cursor reaches their tick).
func (w *wheelSched) dumpToNear(l, s int) {
	sl := w.slots[l][s]
	w.slots[l][s] = sl[:0]
	w.occupied[l] &^= 1 << s
	w.slotted -= len(sl)
	for i, ev := range sl {
		sl[i] = nil
		ev.where = locNear
		w.near.push(ev)
	}
}

// rebase jumps the cursor onto the overflow minimum when the wheel is empty
// and refills from overflow. Events sharing the minimum tick become near
// (tick == cursor); later ticks re-place normally. The overflow heap is
// (At, seq)-ordered and digitLevel is monotone in t for fixed base, so the
// refill can stop at the first event still beyond the new horizon.
func (w *wheelSched) rebase() {
	minT := wheelTick(w.overflow[0].At)
	w.curTick = minT
	for len(w.overflow) > 0 {
		t := wheelTick(w.overflow[0].At)
		if t > minT && digitLevel(t, minT) >= wheelLevels {
			break
		}
		ev := w.overflow.popMin()
		if t == minT {
			ev.where = locNear
			w.near.push(ev)
		} else {
			w.place(ev, t)
		}
	}
}
