package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	s.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	s.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("clock should end at the last event, got %v", s.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5*time.Millisecond, func() { order = append(order, i) })
	}
	_ = s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events must fire in scheduling order, got %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	ev := s.Schedule(time.Second, func() { fired = true })
	s.Cancel(ev)
	_ = s.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New(1)
	fired := 0
	s.Schedule(time.Second, func() { fired++ })
	s.Schedule(3*time.Second, func() { fired++ })
	if err := s.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fired != 1 || s.Now() != 2*time.Second {
		t.Fatalf("fired=%d now=%v", fired, s.Now())
	}
	if err := s.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fired != 2 || s.Now() != 4*time.Second {
		t.Fatalf("after RunFor: fired=%d now=%v", fired, s.Now())
	}
}

func TestTimerResetAndStop(t *testing.T) {
	s := New(1)
	count := 0
	timer := s.NewTimer(func() { count++ })
	timer.Reset(10 * time.Millisecond)
	timer.Reset(50 * time.Millisecond) // supersedes the first arming
	_ = s.RunUntil(20 * time.Millisecond)
	if count != 0 {
		t.Fatal("timer fired at the superseded time")
	}
	_ = s.RunUntil(60 * time.Millisecond)
	if count != 1 {
		t.Fatalf("timer should have fired exactly once, got %d", count)
	}
	timer.Reset(10 * time.Millisecond)
	timer.Stop()
	_ = s.RunUntil(time.Second)
	if count != 1 {
		t.Fatal("stopped timer fired")
	}
	if timer.Pending() {
		t.Fatal("stopped timer reports pending")
	}
}

func TestSchedulingInsideEvents(t *testing.T) {
	s := New(1)
	var times []time.Duration
	s.Schedule(time.Millisecond, func() {
		times = append(times, s.Now())
		s.Schedule(time.Millisecond, func() { times = append(times, s.Now()) })
	})
	_ = s.Run()
	if len(times) != 2 || times[1] != 2*time.Millisecond {
		t.Fatalf("nested scheduling broken: %v", times)
	}
}

func TestDeterministicRNG(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give the same sequence")
		}
	}
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		if n := r.Intn(10); n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %d", n)
		}
	}
	p := r.Perm(20)
	seen := make(map[int]bool)
	for _, v := range p {
		seen[v] = true
	}
	if len(seen) != 20 {
		t.Fatal("Perm must be a permutation")
	}
}

func TestMaxEventsGuard(t *testing.T) {
	s := New(1)
	s.MaxEvents = 100
	var loop func()
	loop = func() { s.Schedule(time.Millisecond, loop) }
	s.Schedule(time.Millisecond, loop)
	if err := s.RunUntil(time.Hour); err == nil {
		t.Fatal("expected MaxEvents to abort a runaway simulation")
	}
}
