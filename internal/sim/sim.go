// Package sim provides a deterministic discrete-event simulator used as the
// time base for the emulated network, the TCP endpoints and the MPTCP
// connection layer.
//
// All protocol code in this repository is written against sim.Clock rather
// than the wall clock, which makes experiments reproducible (a fixed RNG seed
// yields a bit-identical packet trace) and lets multi-minute transfers run in
// milliseconds of real time.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Event is a scheduled callback.
type Event struct {
	// At is the absolute simulation time at which the event fires.
	At time.Duration
	// Fn is invoked when the event fires. It must not block.
	Fn func()
	// fn2/a/b carry the argument-passing form (ScheduleArgsAt), which lets
	// per-packet callers schedule a shared top-level function with pointer
	// arguments instead of allocating a fresh closure per packet.
	fn2  func(a, b any)
	a, b any

	seq      uint64 // tie-breaker for deterministic ordering
	index    int    // heap index, -1 when not queued
	canceled bool
}

// Canceled reports whether the event has been canceled.
func (e *Event) Canceled() bool { return e == nil || e.canceled }

// eventQueue is a min-heap ordered by (At, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Simulator is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all endpoints attached to one Simulator run on its event
// loop.
type Simulator struct {
	now     time.Duration
	queue   eventQueue
	nextSeq uint64
	rng     *RNG

	// free recycles Event structs: the simulator allocates several events
	// per emulated segment (transmission, delivery, timers), so reusing them
	// removes the largest remaining per-segment allocation. The free list is
	// plain (the simulator is single-threaded) and events return to it when
	// they fire or are canceled — after either, callers must not retain the
	// *Event (Timer clears its reference on both paths).
	free []*Event

	// Processed counts events executed so far, useful for run-away detection
	// in tests.
	Processed uint64

	// MaxEvents aborts Run with an error when more than this many events have
	// been processed (0 means no limit).
	MaxEvents uint64
}

// New returns a simulator with its clock at zero and a deterministic RNG
// seeded with seed.
func New(seed uint64) *Simulator {
	return &Simulator{rng: NewRNG(seed)}
}

// Now returns the current simulation time.
func (s *Simulator) Now() time.Duration { return s.now }

// RNG returns the simulator's deterministic random number generator.
func (s *Simulator) RNG() *RNG { return s.rng }

// Schedule schedules fn to run after delay d (relative to Now). Negative
// delays are clamped to zero. The returned event can be canceled.
func (s *Simulator) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.ScheduleAt(s.now+d, fn)
}

// ScheduleAt schedules fn at absolute time at. Times in the past are clamped
// to the current time. The returned event is only valid until it fires or is
// canceled; retain a Timer, not an Event, for anything longer-lived.
func (s *Simulator) ScheduleAt(at time.Duration, fn func()) *Event {
	if fn == nil {
		panic("sim: ScheduleAt with nil fn")
	}
	if at < s.now {
		at = s.now
	}
	var ev *Event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free = s.free[:n-1]
		*ev = Event{At: at, Fn: fn, seq: s.nextSeq}
	} else {
		ev = &Event{At: at, Fn: fn, seq: s.nextSeq}
	}
	s.nextSeq++
	heap.Push(&s.queue, ev)
	return ev
}

// ScheduleArgsAt schedules fn(a, b) at absolute time at. Unlike ScheduleAt,
// the callback receives its context as arguments, so hot paths can pass a
// shared top-level function plus two pointers and avoid allocating a closure
// per call (pointers stored in an interface do not allocate).
func (s *Simulator) ScheduleArgsAt(at time.Duration, fn func(a, b any), a, b any) *Event {
	if fn == nil {
		panic("sim: ScheduleArgsAt with nil fn")
	}
	if at < s.now {
		at = s.now
	}
	var ev *Event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free = s.free[:n-1]
		*ev = Event{At: at, fn2: fn, a: a, b: b, seq: s.nextSeq}
	} else {
		ev = &Event{At: at, fn2: fn, a: a, b: b, seq: s.nextSeq}
	}
	s.nextSeq++
	heap.Push(&s.queue, ev)
	return ev
}

// Cancel removes a previously scheduled event. Canceling a nil, fired or
// already-canceled event is a no-op.
func (s *Simulator) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	heap.Remove(&s.queue, ev.index)
	ev.index = -1
	ev.Fn, ev.fn2, ev.a, ev.b = nil, nil, nil, nil
	s.free = append(s.free, ev)
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.queue) }

// step executes the earliest event. It returns false when the queue is empty.
func (s *Simulator) step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*Event)
	s.now = ev.At
	s.Processed++
	fn, fn2, a, b := ev.Fn, ev.fn2, ev.a, ev.b
	ev.Fn, ev.fn2, ev.a, ev.b = nil, nil, nil, nil
	ev.canceled = true // fired events behave as canceled for late Cancel calls
	s.free = append(s.free, ev)
	switch {
	case fn != nil:
		fn()
	case fn2 != nil:
		fn2(a, b)
	}
	return true
}

// Step executes the earliest pending event, advancing the clock to its
// firing time. It returns false when no events remain. Blocking adapters
// (mptcpgo.Stream) use it to drive the simulation just far enough to make
// progress.
func (s *Simulator) Step() bool { return s.step() }

// Run executes events until the queue drains. It returns an error if
// MaxEvents is exceeded.
func (s *Simulator) Run() error {
	for s.step() {
		if s.MaxEvents > 0 && s.Processed > s.MaxEvents {
			return fmt.Errorf("sim: exceeded MaxEvents=%d at t=%v", s.MaxEvents, s.now)
		}
	}
	return nil
}

// RunUntil executes events with firing times <= deadline. Events scheduled
// beyond the deadline remain queued; the clock is advanced to the deadline.
func (s *Simulator) RunUntil(deadline time.Duration) error {
	for len(s.queue) > 0 && s.queue[0].At <= deadline {
		if !s.step() {
			break
		}
		if s.MaxEvents > 0 && s.Processed > s.MaxEvents {
			return fmt.Errorf("sim: exceeded MaxEvents=%d at t=%v", s.MaxEvents, s.now)
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
	return nil
}

// RunFor runs the simulation for d beyond the current time.
func (s *Simulator) RunFor(d time.Duration) error { return s.RunUntil(s.now + d) }

// Timer is a restartable one-shot timer bound to a simulator, analogous to a
// kernel timer (e.g. the TCP retransmission timer).
type Timer struct {
	sim *Simulator
	ev  *Event
	fn  func()
	// fireFn caches the t.fire method value so Reset does not allocate a
	// fresh closure on every (re)arm — timers re-arm once per ACK.
	fireFn func()
}

// NewTimer creates a stopped timer that invokes fn when it expires.
func (s *Simulator) NewTimer(fn func()) *Timer {
	if fn == nil {
		panic("sim: NewTimer with nil fn")
	}
	t := &Timer{sim: s, fn: fn}
	t.fireFn = t.fire
	return t
}

// Reset (re)arms the timer to fire after d. Any previously pending expiry is
// canceled.
func (t *Timer) Reset(d time.Duration) {
	t.Stop()
	t.ev = t.sim.Schedule(d, t.fireFn)
}

// ResetIfStopped arms the timer only if it is not already pending.
func (t *Timer) ResetIfStopped(d time.Duration) {
	if !t.Pending() {
		t.Reset(d)
	}
}

func (t *Timer) fire() {
	t.ev = nil
	t.fn()
}

// Stop cancels a pending expiry. It is safe to call on a stopped timer.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.sim.Cancel(t.ev)
		t.ev = nil
	}
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.ev != nil && !t.ev.Canceled() }

// ExpiresAt returns the absolute expiry time, or a negative duration if the
// timer is stopped.
func (t *Timer) ExpiresAt() time.Duration {
	if !t.Pending() {
		return -1
	}
	return t.ev.At
}

// DeriveSeed deterministically derives an independent child seed from a root
// seed and a stream index (splitmix64 over root+stream). Sharded runs use it
// to give every worker simulator its own RNG stream: the derived seeds depend
// only on (root, stream), never on worker scheduling, so a sharded scenario
// produces identical results at any worker count.
func DeriveSeed(root, stream uint64) uint64 {
	z := root + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a small, fast deterministic PRNG (xorshift64*). It intentionally does
// not use math/rand so that traces remain stable across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a deterministic RNG. A zero seed is mapped to a fixed
// non-zero constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Uint32 returns the next pseudo-random 32-bit value.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Float64 returns a value uniformly distributed in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a value uniformly distributed in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(1-u)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
