// Package sim provides a deterministic discrete-event simulator used as the
// time base for the emulated network, the TCP endpoints and the MPTCP
// connection layer.
//
// All protocol code in this repository is written against sim.Clock rather
// than the wall clock, which makes experiments reproducible (a fixed RNG seed
// yields a bit-identical packet trace) and lets multi-minute transfers run in
// milliseconds of real time.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Event locations. An event lives in exactly one scheduler container at a
// time; locNone means "not queued" (fired, canceled, or on the free list).
const (
	locNone uint8 = iota
	locHeap
	locNear
	locSlot
	locOverflow
)

// Event is a scheduled callback.
type Event struct {
	// At is the absolute simulation time at which the event fires.
	At time.Duration
	// Fn is invoked when the event fires. It must not block.
	Fn func()
	// fn2/a/b carry the argument-passing form (ScheduleArgsAt), which lets
	// per-packet callers schedule a shared top-level function with pointer
	// arguments instead of allocating a fresh closure per packet.
	fn2  func(a, b any)
	a, b any

	seq      uint64 // tie-breaker for deterministic ordering
	index    int    // position in the containing heap or slot chain
	where    uint8  // which scheduler container holds the event
	level    uint8  // wheel level, valid when where == locSlot
	slot     uint8  // wheel slot, valid when where == locSlot
	canceled bool
}

// Canceled reports whether the event has been canceled.
func (e *Event) Canceled() bool { return e == nil || e.canceled }

// eventQueue is a min-heap ordered by (At, seq). The sift operations are
// hand-rolled rather than going through container/heap so the per-event hot
// path pays no interface dispatch or any-boxing; the algorithm is the
// standard binary heap, and since (At, seq) is a strict total order the pop
// sequence is identical to container/heap's regardless of internal layout.
type eventQueue []*Event

func (q eventQueue) less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q eventQueue) up(j int) {
	for j > 0 {
		i := (j - 1) / 2
		if !q.less(j, i) {
			break
		}
		q.swap(i, j)
		j = i
	}
}

func (q eventQueue) down(i0 int) bool {
	n := len(q)
	i := i0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && q.less(j2, j) {
			j = j2
		}
		if !q.less(j, i) {
			break
		}
		q.swap(i, j)
		i = j
	}
	return i > i0
}

func (q *eventQueue) push(ev *Event) {
	ev.index = len(*q)
	*q = append(*q, ev)
	(*q).up(ev.index)
}

// popMin removes and returns the (At, seq)-minimum. Callable only when the
// queue is non-empty.
func (q *eventQueue) popMin() *Event {
	old := *q
	n := len(old) - 1
	min := old[0]
	if n > 0 {
		old.swap(0, n)
	}
	old[n] = nil
	*q = old[:n]
	(*q).down(0)
	min.index = -1
	return min
}

// removeAt deletes the event at heap index i.
func (q *eventQueue) removeAt(i int) {
	old := *q
	n := len(old) - 1
	ev := old[i]
	if i != n {
		old.swap(i, n)
	}
	old[n] = nil
	*q = old[:n]
	if i != n {
		if !(*q).down(i) {
			(*q).up(i)
		}
	}
	ev.index = -1
}

// scheduler is the pending-event container behind the simulator. Both
// implementations (binary heap, hierarchical timing wheel) release events in
// exactly the same (At, seq) order, so swapping one for the other cannot
// change a trace; FuzzSchedulerEquivalence holds them to that contract.
type scheduler interface {
	insert(ev *Event) // enqueue; sets ev.where
	remove(ev *Event) // dequeue a pending event; clears ev.where
	pop() *Event      // extract the (At, seq)-minimum, nil when empty
	peek() *Event     // minimum without extracting, nil when empty
	size() int        // queued events
}

// heapSched is the classic binary-heap scheduler: O(log n) everywhere.
// It remains available (SchedulerHeap) as the differential-testing reference
// for the timing wheel.
type heapSched struct {
	q eventQueue
}

func (h *heapSched) insert(ev *Event) {
	ev.where = locHeap
	h.q.push(ev)
}

func (h *heapSched) remove(ev *Event) {
	h.q.removeAt(ev.index)
	ev.where = locNone
}

func (h *heapSched) pop() *Event {
	if len(h.q) == 0 {
		return nil
	}
	ev := h.q.popMin()
	ev.where = locNone
	return ev
}

func (h *heapSched) peek() *Event {
	if len(h.q) == 0 {
		return nil
	}
	return h.q[0]
}

func (h *heapSched) size() int { return len(h.q) }

// SchedulerKind selects the pending-event container for a Simulator.
type SchedulerKind uint8

const (
	// SchedulerWheel is the default: a hierarchical timing wheel with O(1)
	// schedule/cancel in the timer-dominated steady state (see wheel.go).
	SchedulerWheel SchedulerKind = iota
	// SchedulerHeap is the binary-heap reference implementation.
	SchedulerHeap
)

// Settler is a component that defers bookkeeping for elided (virtual) events
// and must be given a chance to catch up whenever simulation results are
// about to be observed. The (now, seq) pair is the exclusive upper bound of
// event execution so far: implementations must account for every virtual
// event strictly ordered before it, exactly as if the event had been queued.
type Settler interface {
	SettleAt(now time.Duration, seq uint64)
}

// Simulator is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all endpoints attached to one Simulator run on its event
// loop.
type Simulator struct {
	now     time.Duration
	sched   scheduler
	nextSeq uint64
	rng     *RNG

	// runningSeq is the seq of the event currently (or most recently)
	// executed. Together with now it defines the exact point the simulation
	// has reached in (At, seq) order, which is what lazy batchers compare
	// against when draining virtual events.
	runningSeq uint64

	settlers []Settler

	// free recycles Event structs: the simulator allocates several events
	// per emulated segment (transmission, delivery, timers), so reusing them
	// removes the largest remaining per-segment allocation. The free list is
	// plain (the simulator is single-threaded) and events return to it when
	// they fire or are canceled — after either, callers must not retain the
	// *Event (Timer clears its reference on both paths).
	free []*Event

	// Processed counts events executed so far, useful for run-away detection
	// in tests. Virtual events elided by batching layers (netem.Link's
	// dequeue completions) are credited here when they are drained, so the
	// total matches what the unbatched schedule would have reported.
	Processed uint64

	// MaxEvents aborts Run with an error when more than this many events have
	// been processed (0 means no limit).
	MaxEvents uint64
}

// New returns a simulator with its clock at zero and a deterministic RNG
// seeded with seed, using the timing-wheel scheduler.
func New(seed uint64) *Simulator {
	return NewWithScheduler(seed, SchedulerWheel)
}

// NewWithScheduler returns a simulator backed by the requested scheduler
// implementation. Both kinds fire events in identical (At, seq) order; the
// heap exists as a reference for differential tests and benchmarks.
func NewWithScheduler(seed uint64, kind SchedulerKind) *Simulator {
	s := &Simulator{rng: NewRNG(seed)}
	if kind == SchedulerHeap {
		s.sched = &heapSched{}
	} else {
		s.sched = newWheelSched()
	}
	return s
}

// Now returns the current simulation time.
func (s *Simulator) Now() time.Duration { return s.now }

// RNG returns the simulator's deterministic random number generator.
func (s *Simulator) RNG() *RNG { return s.rng }

// Schedule schedules fn to run after delay d (relative to Now). Negative
// delays are clamped to zero. The returned event can be canceled.
func (s *Simulator) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.ScheduleAt(s.now+d, fn)
}

// ScheduleAt schedules fn at absolute time at. Times in the past are clamped
// to the current time. The returned event is only valid until it fires or is
// canceled; retain a Timer, not an Event, for anything longer-lived.
func (s *Simulator) ScheduleAt(at time.Duration, fn func()) *Event {
	if fn == nil {
		panic("sim: ScheduleAt with nil fn")
	}
	if at < s.now {
		at = s.now
	}
	ev := s.newEvent()
	ev.At, ev.Fn, ev.seq = at, fn, s.nextSeq
	s.nextSeq++
	s.sched.insert(ev)
	return ev
}

// ScheduleArgsAt schedules fn(a, b) at absolute time at. Unlike ScheduleAt,
// the callback receives its context as arguments, so hot paths can pass a
// shared top-level function plus two pointers and avoid allocating a closure
// per call (pointers stored in an interface do not allocate).
func (s *Simulator) ScheduleArgsAt(at time.Duration, fn func(a, b any), a, b any) *Event {
	if fn == nil {
		panic("sim: ScheduleArgsAt with nil fn")
	}
	if at < s.now {
		at = s.now
	}
	ev := s.newEvent()
	ev.At, ev.fn2, ev.a, ev.b, ev.seq = at, fn, a, b, s.nextSeq
	s.nextSeq++
	s.sched.insert(ev)
	return ev
}

// ReserveSeq consumes and returns the next event sequence number without
// scheduling anything. Batching layers that elide per-packet events use it to
// keep the (At, seq) order of the remaining events exactly as if the elided
// ones had been queued: the reserved seq stands in for the virtual event and
// can later be attached to a real event via ScheduleArgsAtSeq.
func (s *Simulator) ReserveSeq() uint64 {
	v := s.nextSeq
	s.nextSeq++
	return v
}

// RunningSeq returns the sequence number of the event currently (or most
// recently) executed. Paired with Now it identifies the exact position in
// (At, seq) order the simulation has reached; lazy batchers compare their
// virtual events against it when draining.
func (s *Simulator) RunningSeq() uint64 { return s.runningSeq }

// ScheduleArgsAtSeq schedules fn(a, b) at absolute time at using a sequence
// number previously obtained from ReserveSeq. The caller must pass each
// reserved seq to at most one schedule call; replay-exact batching depends on
// the (at, seq) pair matching what the unbatched schedule would have used.
func (s *Simulator) ScheduleArgsAtSeq(at time.Duration, seq uint64, fn func(a, b any), a, b any) *Event {
	if fn == nil {
		panic("sim: ScheduleArgsAtSeq with nil fn")
	}
	if seq >= s.nextSeq {
		panic("sim: ScheduleArgsAtSeq with unreserved seq")
	}
	if at < s.now {
		at = s.now
	}
	ev := s.newEvent()
	ev.At, ev.fn2, ev.a, ev.b, ev.seq = at, fn, a, b, seq
	s.sched.insert(ev)
	return ev
}

func (s *Simulator) newEvent() *Event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free = s.free[:n-1]
		*ev = Event{}
		return ev
	}
	return &Event{}
}

// Cancel removes a previously scheduled event. Canceling a nil, fired or
// already-canceled event is a no-op.
func (s *Simulator) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.where == locNone {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	s.sched.remove(ev)
	ev.Fn, ev.fn2, ev.a, ev.b = nil, nil, nil, nil
	s.free = append(s.free, ev)
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return s.sched.size() }

// RegisterSettler adds a settle hook invoked whenever a run boundary is
// reached (Run/RunUntil return) or Settle is called explicitly. Hooks must be
// idempotent and must not schedule events.
func (s *Simulator) RegisterSettler(st Settler) {
	s.settlers = append(s.settlers, st)
}

// Settle brings all registered settle hooks up to date with the current
// execution point. Drivers that advance the simulator via Step (rather than
// Run/RunUntil) must call it before reading results that depend on event
// counts or queue occupancy.
func (s *Simulator) Settle() { s.settleAll(s.now, s.runningSeq) }

func (s *Simulator) settleAll(now time.Duration, seq uint64) {
	for _, st := range s.settlers {
		st.SettleAt(now, seq)
	}
}

// step executes the earliest event. It returns false when the queue is empty.
func (s *Simulator) step() bool {
	ev := s.sched.pop()
	if ev == nil {
		return false
	}
	s.now = ev.At
	s.runningSeq = ev.seq
	s.Processed++
	fn, fn2, a, b := ev.Fn, ev.fn2, ev.a, ev.b
	ev.Fn, ev.fn2, ev.a, ev.b = nil, nil, nil, nil
	ev.canceled = true // fired events behave as canceled for late Cancel calls
	s.free = append(s.free, ev)
	switch {
	case fn != nil:
		fn()
	case fn2 != nil:
		fn2(a, b)
	}
	return true
}

// Step executes the earliest pending event, advancing the clock to its
// firing time. It returns false when no events remain. Blocking adapters
// (mptcpgo.Stream) use it to drive the simulation just far enough to make
// progress.
func (s *Simulator) Step() bool { return s.step() }

// Run executes events until the queue drains. It returns an error if
// MaxEvents is exceeded.
func (s *Simulator) Run() error {
	for s.step() {
		if s.MaxEvents > 0 && s.Processed > s.MaxEvents {
			s.settleAll(s.now, s.runningSeq)
			return fmt.Errorf("sim: exceeded MaxEvents=%d at t=%v", s.MaxEvents, s.now)
		}
	}
	s.settleAll(s.now, ^uint64(0))
	return nil
}

// RunUntil executes events with firing times <= deadline. Events scheduled
// beyond the deadline remain queued; the clock is advanced to the deadline.
func (s *Simulator) RunUntil(deadline time.Duration) error {
	for {
		ev := s.sched.peek()
		if ev == nil || ev.At > deadline {
			break
		}
		s.step()
		if s.MaxEvents > 0 && s.Processed > s.MaxEvents {
			s.settleAll(s.now, s.runningSeq)
			return fmt.Errorf("sim: exceeded MaxEvents=%d at t=%v", s.MaxEvents, s.now)
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
	s.settleAll(s.now, ^uint64(0))
	return nil
}

// RunFor runs the simulation for d beyond the current time.
func (s *Simulator) RunFor(d time.Duration) error { return s.RunUntil(s.now + d) }

// Timer is a restartable one-shot timer bound to a simulator, analogous to a
// kernel timer (e.g. the TCP retransmission timer).
type Timer struct {
	sim *Simulator
	ev  *Event
	fn  func()
	// fireFn caches the t.fire method value so Reset does not allocate a
	// fresh closure on every (re)arm — timers re-arm once per ACK.
	fireFn func()
}

// NewTimer creates a stopped timer that invokes fn when it expires.
func (s *Simulator) NewTimer(fn func()) *Timer {
	if fn == nil {
		panic("sim: NewTimer with nil fn")
	}
	t := &Timer{sim: s, fn: fn}
	t.fireFn = t.fire
	return t
}

// Reset (re)arms the timer to fire after d. Any previously pending expiry is
// canceled. A pending timer re-arms in place: the event is unlinked, stamped
// with a fresh (At, seq) and reinserted, skipping the cancel/free/alloc round
// trip — with the wheel scheduler this is the O(1) per-ACK RTO path.
func (t *Timer) Reset(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := t.sim
	if ev := t.ev; ev != nil && !ev.canceled && ev.where != locNone {
		s.sched.remove(ev)
		ev.At = s.now + d
		ev.seq = s.nextSeq
		s.nextSeq++
		s.sched.insert(ev)
		return
	}
	t.ev = s.Schedule(d, t.fireFn)
}

// ResetIfStopped arms the timer only if it is not already pending.
func (t *Timer) ResetIfStopped(d time.Duration) {
	if !t.Pending() {
		t.Reset(d)
	}
}

func (t *Timer) fire() {
	t.ev = nil
	t.fn()
}

// Stop cancels a pending expiry. It is safe to call on a stopped timer.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.sim.Cancel(t.ev)
		t.ev = nil
	}
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.ev != nil && !t.ev.Canceled() }

// ExpiresAt returns the absolute expiry time, or a negative duration if the
// timer is stopped.
func (t *Timer) ExpiresAt() time.Duration {
	if !t.Pending() {
		return -1
	}
	return t.ev.At
}

// DeriveSeed deterministically derives an independent child seed from a root
// seed and a stream index (splitmix64 over root+stream). Sharded runs use it
// to give every worker simulator its own RNG stream: the derived seeds depend
// only on (root, stream), never on worker scheduling, so a sharded scenario
// produces identical results at any worker count.
func DeriveSeed(root, stream uint64) uint64 {
	z := root + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a small, fast deterministic PRNG (xorshift64*). It intentionally does
// not use math/rand so that traces remain stable across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a deterministic RNG. A zero seed is mapped to a fixed
// non-zero constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Uint32 returns the next pseudo-random 32-bit value.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Float64 returns a value uniformly distributed in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a value uniformly distributed in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(1-u)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
