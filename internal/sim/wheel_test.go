package sim

import (
	"testing"
	"time"
)

// tick returns the duration of n wheel ticks — the granularity at which the
// timing wheel files events into slots.
func tick(n int64) time.Duration { return time.Duration(n << wheelTickShift) }

func bothSchedulers(t *testing.T, name string, fn func(t *testing.T, kind SchedulerKind)) {
	t.Run(name+"/wheel", func(t *testing.T) { fn(t, SchedulerWheel) })
	t.Run(name+"/heap", func(t *testing.T) { fn(t, SchedulerHeap) })
}

// TestWheelSameTickTies pins sub-tick ordering: many events inside one wheel
// tick (and several at the exact same instant) must fire in (At, seq) order
// even though the wheel's slot granularity cannot distinguish them.
func TestWheelSameTickTies(t *testing.T) {
	bothSchedulers(t, "ties", func(t *testing.T, kind SchedulerKind) {
		s := NewWithScheduler(1, kind)
		base := tick(1000) + 3 // mid-tick origin
		var got []int
		// Three distinct instants inside one tick, each with two tied events.
		for i := 0; i < 3; i++ {
			for j := 0; j < 2; j++ {
				id := i*2 + j
				s.ScheduleAt(base+time.Duration(i), func() { got = append(got, id) })
			}
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		for i, id := range got {
			if id != i {
				t.Fatalf("firing order %v, want ascending schedule order", got)
			}
		}
	})
}

// TestWheelCancelAtHead cancels the earliest pending event — for the wheel
// that is the next slot the cursor would visit — and checks the remaining
// events still fire in order.
func TestWheelCancelAtHead(t *testing.T) {
	bothSchedulers(t, "cancel", func(t *testing.T, kind SchedulerKind) {
		s := NewWithScheduler(1, kind)
		var got []int
		head := s.Schedule(tick(1), func() { got = append(got, 0) })
		s.Schedule(tick(2), func() { got = append(got, 1) })
		s.Schedule(tick(2)+1, func() { got = append(got, 2) })
		s.Cancel(head)
		s.Cancel(head) // double-cancel is a no-op
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 || got[0] != 1 || got[1] != 2 {
			t.Fatalf("got %v, want [1 2]", got)
		}
	})
}

// TestWheelPastTimeClamping schedules behind the clock mid-run; the event must
// clamp to now and fire before anything later, like the heap always did.
func TestWheelPastTimeClamping(t *testing.T) {
	bothSchedulers(t, "clamp", func(t *testing.T, kind SchedulerKind) {
		s := NewWithScheduler(1, kind)
		var got []string
		s.Schedule(tick(100), func() {
			got = append(got, "trigger")
			s.ScheduleAt(s.Now()-tick(50), func() { got = append(got, "clamped") })
		})
		s.Schedule(tick(100)+1, func() { got = append(got, "later") })
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		want := []string{"trigger", "clamped", "later"}
		for i := range want {
			if i >= len(got) || got[i] != want[i] {
				t.Fatalf("got %v, want %v", got, want)
			}
		}
	})
}

// TestWheelCascadeBoundaries places events at, just before and just after
// every level's cascade boundary (64^l ticks) plus the overflow horizon, and
// checks they fire in time order with the clock matching each At exactly.
func TestWheelCascadeBoundaries(t *testing.T) {
	bothSchedulers(t, "cascade", func(t *testing.T, kind SchedulerKind) {
		s := NewWithScheduler(1, kind)
		var offsets []int64
		for l := 1; l <= wheelLevels; l++ {
			b := int64(1) << uint(l*wheelLevelBits)
			offsets = append(offsets, b-1, b, b+1)
		}
		var fired []time.Duration
		for _, off := range offsets {
			at := tick(off)
			s.ScheduleAt(at, func() {
				if s.Now() != at {
					t.Errorf("event for %v fired at %v", at, s.Now())
				}
				fired = append(fired, at)
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		if len(fired) != len(offsets) {
			t.Fatalf("fired %d events, want %d", len(fired), len(offsets))
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				t.Fatalf("out-of-order firing: %v after %v", fired[i], fired[i-1])
			}
		}
	})
}

// TestWheelOverflowRebase exercises the overflow heap: events beyond the
// 2^30-tick horizon (~4.9h) park in overflow, and once the wheel drains the
// cursor rebases onto them — including multiple rebase rounds and ties at the
// overflow minimum.
func TestWheelOverflowRebase(t *testing.T) {
	bothSchedulers(t, "overflow", func(t *testing.T, kind SchedulerKind) {
		s := NewWithScheduler(1, kind)
		horizon := tick(1 << wheelSpanBits)
		ats := []time.Duration{
			tick(5), // near-term wheel event
			horizon + tick(3),
			horizon + tick(3), // tie at the first rebase target
			horizon + tick(4),
			3*horizon + 7, // second rebase round, mid-tick instant
		}
		var got []time.Duration
		for _, at := range ats {
			at := at
			s.ScheduleAt(at, func() {
				if s.Now() != at {
					t.Errorf("event for %v fired at %v", at, s.Now())
				}
				got = append(got, at)
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ats) {
			t.Fatalf("fired %d events, want %d", len(got), len(ats))
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				t.Fatalf("out-of-order firing: %v after %v", got[i], got[i-1])
			}
		}
	})
}

// TestWheelRunUntilLeavesFutureEvents checks RunUntil's peek path: events past
// the deadline stay queued (wheel cursor does not run ahead) and fire on the
// next call.
func TestWheelRunUntilLeavesFutureEvents(t *testing.T) {
	bothSchedulers(t, "rununtil", func(t *testing.T, kind SchedulerKind) {
		s := NewWithScheduler(1, kind)
		var got []int
		s.ScheduleAt(tick(10), func() { got = append(got, 0) })
		s.ScheduleAt(tick(1<<wheelLevelBits), func() { got = append(got, 1) }) // next level
		if err := s.RunUntil(tick(20)); err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || s.Now() != tick(20) || s.Pending() != 1 {
			t.Fatalf("after RunUntil: got=%v now=%v pending=%d", got, s.Now(), s.Pending())
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 || got[1] != 1 {
			t.Fatalf("got %v, want [0 1]", got)
		}
	})
}

// TestWheelTimerResetChurn re-arms one timer through cascade boundaries and
// across fires, mimicking the RTO-per-ACK pattern the wheel is built for.
func TestWheelTimerResetChurn(t *testing.T) {
	bothSchedulers(t, "churn", func(t *testing.T, kind SchedulerKind) {
		s := NewWithScheduler(1, kind)
		fires := 0
		tm := s.NewTimer(func() { fires++ })
		delays := []time.Duration{tick(1), tick(100), tick(1 << wheelLevelBits), tick(1 << (2 * wheelLevelBits)), 5 * time.Millisecond}
		for _, d := range delays {
			tm.Reset(d) // each Reset replaces the previous arm
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		if fires != 1 {
			t.Fatalf("timer fired %d times, want 1 (only the last Reset counts)", fires)
		}
		if s.Now() != 5*time.Millisecond {
			t.Fatalf("fired at %v, want 5ms", s.Now())
		}
		tm.Reset(tick(2))
		tm.Stop()
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		if fires != 1 {
			t.Fatalf("stopped timer fired (fires=%d)", fires)
		}
	})
}

// TestTimerResetSteadyStateAllocs guards the acceptance criterion that wheel
// schedule/cancel is allocation-free in steady state: a Reset storm plus
// fire/re-arm cycles must not allocate once slot slices and the event free
// list are warm.
func TestTimerResetSteadyStateAllocs(t *testing.T) {
	s := New(1)
	fires := 0
	tm := s.NewTimer(func() { fires++ })
	rearm := func() {
		// Spread re-arms across levels like RTO backoff does.
		tm.Reset(tick(3))
		tm.Reset(tick(200))
		tm.Reset(tick(70))
		s.Step()
	}
	for i := 0; i < 64; i++ {
		rearm() // warm slot slices, free list and the near heap
	}
	if avg := testing.AllocsPerRun(200, rearm); avg != 0 {
		t.Fatalf("timer Reset churn allocates %.1f times per cycle, want 0", avg)
	}
	if fires == 0 {
		t.Fatal("churn loop never fired the timer")
	}
}

// schedOp is one action in a differential scheduler script; see runSchedScript.
type schedOp struct {
	kind  uint8 // 0 schedule, 1 cancel, 2 step, 3 runUntil, 4 timerReset, 5 timerStop, 6 reserveSchedule
	delay uint8 // index into schedDelays
	pick  uint8 // which pending event / timer the op targets
}

// schedDelays spans every interesting placement: sub-tick, same-tick, the
// cascade boundary of each level, and past the overflow horizon.
var schedDelays = []time.Duration{
	0, 1, tick(1) - 1, tick(1), tick(1) + 1,
	tick(1<<wheelLevelBits) - 1, tick(1 << wheelLevelBits), tick(1<<wheelLevelBits) + 1,
	tick(1 << (2 * wheelLevelBits)), tick(1 << (3 * wheelLevelBits)), tick(1 << (4 * wheelLevelBits)),
	tick(1 << wheelSpanBits), tick(1<<wheelSpanBits) + tick(3),
}

type firing struct {
	id int
	at time.Duration
}

// runSchedScript executes one op script on a fresh simulator with the given
// scheduler and returns the complete firing log. Both schedulers must produce
// identical logs for every script — that is the equivalence contract.
func runSchedScript(kind SchedulerKind, ops []schedOp) []firing {
	s := NewWithScheduler(7, kind)
	var log []firing
	var pending []*Event
	nextID := 0
	schedule := func(d time.Duration, viaReserve bool) {
		id := nextID
		nextID++
		at := s.Now() + d
		if viaReserve {
			seq := s.ReserveSeq()
			pending = append(pending, s.ScheduleArgsAtSeq(at, seq, func(a, _ any) {
				log = append(log, firing{a.(int), s.Now()})
			}, id, nil))
		} else {
			pending = append(pending, s.ScheduleAt(at, func() {
				log = append(log, firing{id, s.Now()})
			}))
		}
	}
	timerFires := 0
	tm := s.NewTimer(func() {
		log = append(log, firing{-1, s.Now()})
		timerFires++
	})
	for _, op := range ops {
		d := schedDelays[int(op.delay)%len(schedDelays)]
		switch op.kind % 7 {
		case 0:
			schedule(d, false)
		case 1:
			if len(pending) > 0 {
				s.Cancel(pending[int(op.pick)%len(pending)])
			}
		case 2:
			s.Step()
		case 3:
			if err := s.RunUntil(s.Now() + d); err != nil {
				panic(err)
			}
		case 4:
			tm.Reset(d)
		case 5:
			tm.Stop()
		case 6:
			schedule(d, true)
		}
	}
	if err := s.Run(); err != nil {
		panic(err)
	}
	log = append(log, firing{-2, s.Now()}) // final clock is part of the contract
	return log
}

func diffSchedLogs(t *testing.T, ops []schedOp) {
	t.Helper()
	h := runSchedScript(SchedulerHeap, ops)
	w := runSchedScript(SchedulerWheel, ops)
	if len(h) != len(w) {
		t.Fatalf("heap fired %d entries, wheel %d", len(h), len(w))
	}
	for i := range h {
		if h[i] != w[i] {
			t.Fatalf("divergence at entry %d: heap %+v, wheel %+v", i, h[i], w[i])
		}
	}
}

// TestSchedulerEquivalenceHandBuilt runs curated scripts over both schedulers:
// the edge cases the fuzzer would have to rediscover every run.
func TestSchedulerEquivalenceHandBuilt(t *testing.T) {
	scripts := map[string][]schedOp{
		"same-tick-ties": {
			{0, 3, 0}, {0, 3, 0}, {0, 4, 0}, {0, 2, 0}, {2, 0, 0},
		},
		"cancel-at-head": {
			{0, 1, 0}, {0, 3, 0}, {0, 5, 0}, {1, 0, 0}, {2, 0, 0}, {1, 0, 1},
		},
		"past-clamp-after-advance": {
			{0, 8, 0}, {3, 6, 0}, {0, 0, 0}, {0, 1, 0},
		},
		"cascade-walk": {
			{0, 5, 0}, {0, 6, 0}, {0, 7, 0}, {0, 8, 0}, {0, 9, 0}, {0, 10, 0},
			{3, 8, 0}, {0, 2, 0}, {1, 0, 2},
		},
		"overflow-rebase": {
			{0, 11, 0}, {0, 12, 0}, {0, 1, 0}, {2, 0, 0}, {0, 11, 0}, {1, 0, 1},
		},
		"timer-churn": {
			{4, 2, 0}, {4, 6, 0}, {2, 0, 0}, {4, 1, 0}, {5, 0, 0}, {4, 3, 0}, {3, 7, 0},
		},
		"reserved-seq-interleave": {
			{6, 2, 0}, {0, 2, 0}, {6, 2, 0}, {0, 3, 0}, {2, 0, 0}, {6, 1, 0},
		},
	}
	for name, ops := range scripts {
		t.Run(name, func(t *testing.T) { diffSchedLogs(t, ops) })
	}
}

// FuzzSchedulerEquivalence drives the heap and wheel schedulers with the same
// randomized schedule/cancel/step/Reset script and requires bit-identical
// firing logs. Any wheel bug that reorders, drops or double-fires an event
// shows up as a divergence from the heap reference.
func FuzzSchedulerEquivalence(f *testing.F) {
	f.Add([]byte{0, 3, 0, 0, 3, 1, 2, 0, 0})
	f.Add([]byte{0, 11, 0, 0, 12, 0, 2, 0, 0, 1, 0, 1})
	f.Add([]byte{4, 2, 0, 4, 6, 0, 2, 0, 0, 6, 1, 0, 3, 7, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 3*512 {
			data = data[:3*512] // bound script length, not coverage
		}
		ops := make([]schedOp, 0, len(data)/3)
		for i := 0; i+2 < len(data); i += 3 {
			ops = append(ops, schedOp{data[i], data[i+1], data[i+2]})
		}
		diffSchedLogs(t, ops)
	})
}

func benchScheduleCancel(b *testing.B, kind SchedulerKind) {
	s := NewWithScheduler(1, kind)
	fn := func() {}
	// A resident population gives the heap its realistic O(log n) depth and
	// the wheel a spread of occupied slots.
	const resident = 4096
	evs := make([]*Event, resident)
	for i := range evs {
		evs[i] = s.Schedule(time.Duration(i%librarySpread)*tick(1)+tick(2), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % resident
		s.Cancel(evs[j])
		evs[j] = s.Schedule(time.Duration(j%librarySpread)*tick(1)+tick(2), fn)
	}
}

// librarySpread spreads benchmark events over ~3 wheel levels.
const librarySpread = 3000

// BenchmarkScheduleCancel measures the schedule+cancel round trip that
// dominates timer-heavy steady state, wheel vs heap.
func BenchmarkScheduleCancel(b *testing.B) {
	b.Run("wheel", func(b *testing.B) { benchScheduleCancel(b, SchedulerWheel) })
	b.Run("heap", func(b *testing.B) { benchScheduleCancel(b, SchedulerHeap) })
}

func benchTimerChurn(b *testing.B, kind SchedulerKind) {
	s := NewWithScheduler(1, kind)
	// RTO-style storm: many armed timers, each ACK re-arms one ~200ms out
	// while the clock crawls forward through occasional fires.
	const timers = 1024
	tms := make([]*Timer, timers)
	for i := range tms {
		tms[i] = s.NewTimer(func() {})
		tms[i].Reset(200*time.Millisecond + time.Duration(i)*time.Microsecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tms[i%timers].Reset(200 * time.Millisecond)
		if i%64 == 0 {
			s.Step()
		}
	}
}

// BenchmarkTimerChurn measures the Reset-per-ACK pattern: re-arm an armed
// timer in place, wheel vs heap.
func BenchmarkTimerChurn(b *testing.B) {
	b.Run("wheel", func(b *testing.B) { benchTimerChurn(b, SchedulerWheel) })
	b.Run("heap", func(b *testing.B) { benchTimerChurn(b, SchedulerHeap) })
}
