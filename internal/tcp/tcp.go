// Package tcp implements a single-path TCP endpoint on top of the emulated
// network. It provides the substrate the paper's MPTCP implementation builds
// on: the three-way handshake, cumulative acknowledgements, retransmission
// timeout with Jacobson/Karels RTT estimation, fast retransmit and NewReno
// recovery, receive-window flow control with window scaling, connection
// teardown, and buffer management.
//
// The endpoint exposes a small set of hooks (Hooks) through which the MPTCP
// layer in internal/core attaches per-segment option processing, redirects
// in-order payload to the connection-level reassembly queue and substitutes
// the shared connection-level receive window for the per-subflow one. With
// the default no-op hooks the endpoint behaves as ordinary single-path TCP
// and serves as the baseline in every experiment.
package tcp

import (
	"time"

	"mptcpgo/internal/cc"
	"mptcpgo/internal/packet"
)

// State is the TCP connection state.
type State int

// TCP states (RFC 793).
const (
	StateClosed State = iota
	StateListen
	StateSynSent
	StateSynReceived
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateClosing
	StateLastAck
	StateTimeWait
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "CLOSED"
	case StateListen:
		return "LISTEN"
	case StateSynSent:
		return "SYN_SENT"
	case StateSynReceived:
		return "SYN_RCVD"
	case StateEstablished:
		return "ESTABLISHED"
	case StateFinWait1:
		return "FIN_WAIT_1"
	case StateFinWait2:
		return "FIN_WAIT_2"
	case StateCloseWait:
		return "CLOSE_WAIT"
	case StateClosing:
		return "CLOSING"
	case StateLastAck:
		return "LAST_ACK"
	case StateTimeWait:
		return "TIME_WAIT"
	default:
		return "UNKNOWN"
	}
}

// Config carries endpoint parameters. The zero value is usable; defaults are
// filled in by WithDefaults.
type Config struct {
	// MSS is the maximum segment size in bytes (default 1460).
	MSS int
	// SendBufBytes bounds the send queue (unsent plus unacknowledged data).
	SendBufBytes int
	// RecvBufBytes bounds the receive buffer; it also bounds the advertised
	// window.
	RecvBufBytes int
	// AutoTuneBuffers enables send/receive buffer autotuning: the effective
	// buffer grows with the congestion window up to the configured maximum.
	AutoTuneBuffers bool

	// WindowScale is the receive-window scale shift to advertise. A negative
	// value disables window scaling; zero selects an automatic shift large
	// enough to cover RecvBufBytes.
	WindowScale int

	// DelayedACK enables acknowledging every other segment (with a 40 ms
	// cap) instead of every segment.
	DelayedACK bool

	// DisableTimestamps turns off RFC 1323 timestamps. They are on by
	// default because the retransmission-ambiguity-free RTT samples they
	// provide are what keeps the RTO sane across loss bursts.
	DisableTimestamps bool

	// InitialRTO is the retransmission timeout before the first RTT sample.
	InitialRTO time.Duration
	// MinRTO and MaxRTO clamp the computed retransmission timeout.
	MinRTO time.Duration
	MaxRTO time.Duration

	// UserTimeout aborts the connection when data remains unacknowledged for
	// this long (zero disables).
	UserTimeout time.Duration

	// MaxRTORetries tears the connection down after this many consecutive
	// retransmission timeouts without an intervening ACK (default 10, the
	// historical tcp_retries2 value). MPTCP subflows lower it so a dead path
	// is declared failed quickly and its unacknowledged data reinjected onto
	// surviving subflows. Negative disables the limit.
	MaxRTORetries int

	// CongestionControl constructs the congestion controller; nil selects
	// NewReno.
	CongestionControl func(cc.Config) cc.Controller

	// ConnectionLevelWindow makes the endpoint ignore the peer's advertised
	// receive window when deciding how much to transmit: MPTCP subflows are
	// governed by the shared connection-level window instead (§3.3.1).
	ConnectionLevelWindow bool

	// PayloadToHooksOnly suppresses the endpoint's own application receive
	// queue: in-order payload is delivered exclusively through
	// Hooks.OnDataDelivered. MPTCP subflows set this because data is
	// buffered once, at the connection level.
	PayloadToHooksOnly bool

	// TimeWaitDuration is how long the endpoint lingers in TIME_WAIT.
	TimeWaitDuration time.Duration

	// Probe, when non-nil, receives loss-recovery and congestion-state
	// telemetry (see ProbeSink). It is set by the observability layer; nil
	// (the default) keeps every emission site a single branch.
	Probe ProbeSink
}

// CCState is the endpoint's coarse congestion phase, derived from the
// controller and the recovery machinery, for observability.
type CCState uint8

// Congestion phases.
const (
	CCSlowStart CCState = iota
	CCAvoidance
	CCRecovery
)

// String returns the phase name.
func (s CCState) String() string {
	switch s {
	case CCSlowStart:
		return "slowstart"
	case CCAvoidance:
		return "avoidance"
	case CCRecovery:
		return "recovery"
	default:
		return "unknown"
	}
}

// ProbeSink receives low-overhead endpoint telemetry when tracing is
// enabled. Implementations (the MPTCP subflow, which knows its connection
// and member identity) must be allocation-free: calls happen on the hot
// path, synchronously on the simulator goroutine.
type ProbeSink interface {
	// OnEndpointRTO reports a retransmission timeout: the consecutive
	// backoff count (1 for the first timeout of a run) and the resulting
	// backed-off RTO.
	OnEndpointRTO(e *Endpoint, backoff int, rto time.Duration)
	// OnEndpointFastRetransmit reports entry into fast retransmit.
	OnEndpointFastRetransmit(e *Endpoint)
	// OnEndpointCCState reports a congestion-phase transition.
	OnEndpointCCState(e *Endpoint, state CCState)
}

// WithDefaults returns the configuration with unset fields defaulted.
func (c Config) WithDefaults() Config {
	if c.MSS <= 0 {
		c.MSS = 1460
	}
	if c.SendBufBytes <= 0 {
		c.SendBufBytes = 256 << 10
	}
	if c.RecvBufBytes <= 0 {
		c.RecvBufBytes = 256 << 10
	}
	if c.WindowScale == 0 {
		shift := 0
		for (65535<<shift) < c.RecvBufBytes && shift < 14 {
			shift++
		}
		c.WindowScale = shift
	}
	if c.WindowScale < 0 {
		c.WindowScale = 0
	}
	if c.InitialRTO <= 0 {
		c.InitialRTO = 1 * time.Second
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 200 * time.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 60 * time.Second
	}
	if c.MaxRTORetries == 0 {
		c.MaxRTORetries = 10
	}
	if c.CongestionControl == nil {
		c.CongestionControl = func(cfg cc.Config) cc.Controller { return cc.NewNewReno(cfg) }
	}
	if c.TimeWaitDuration <= 0 {
		c.TimeWaitDuration = 2 * time.Second
	}
	return c
}

// Hooks is the extension interface the MPTCP layer implements for each
// subflow. All methods are called synchronously on the simulator goroutine.
type Hooks interface {
	// OnSegmentSent is invoked just before a segment is handed to the
	// interface; implementations append MPTCP options (DSS, DATA_ACK,
	// MP_CAPABLE echo, ADD_ADDR, ...). retransmission reports whether the
	// segment repeats previously sent sequence space.
	OnSegmentSent(e *Endpoint, seg *packet.Segment, retransmission bool)
	// OnSegmentReceived is invoked for every arriving segment before it is
	// processed, so mappings and data-level acknowledgements can be recorded
	// regardless of subflow-level ordering.
	OnSegmentReceived(e *Endpoint, seg *packet.Segment)
	// OnDataDelivered receives in-order subflow payload. relSeq is the
	// offset of data[0] from the peer's initial sequence number + 1, i.e.
	// the same coordinate space the DSS subflow offset uses.
	OnDataDelivered(e *Endpoint, relSeq uint32, data []byte)
	// OnStateChange reports endpoint state transitions.
	OnStateChange(e *Endpoint, old, new State)
	// OnSendSpaceAvailable is invoked whenever acknowledgements or window
	// updates may allow more data to be sent; the MPTCP scheduler uses it.
	OnSendSpaceAvailable(e *Endpoint)
	// AdvertiseWindow lets the hook substitute the connection-level receive
	// window (in bytes) for the subflow's own. ok=false keeps the
	// endpoint's computation.
	AdvertiseWindow(e *Endpoint) (win int, ok bool)
}

// NopHooks is the default no-op hook set used by plain TCP endpoints.
type NopHooks struct{}

// OnSegmentSent implements Hooks.
func (NopHooks) OnSegmentSent(*Endpoint, *packet.Segment, bool) {}

// OnSegmentReceived implements Hooks.
func (NopHooks) OnSegmentReceived(*Endpoint, *packet.Segment) {}

// OnDataDelivered implements Hooks.
func (NopHooks) OnDataDelivered(*Endpoint, uint32, []byte) {}

// OnStateChange implements Hooks.
func (NopHooks) OnStateChange(*Endpoint, State, State) {}

// OnSendSpaceAvailable implements Hooks.
func (NopHooks) OnSendSpaceAvailable(*Endpoint) {}

// AdvertiseWindow implements Hooks.
func (NopHooks) AdvertiseWindow(*Endpoint) (int, bool) { return 0, false }

// chunk is one send-queue entry: at most one MSS of payload plus the options
// that must accompany it on the wire (for MPTCP, its data sequence mapping).
// SYN and FIN are represented as flag-only chunks so that the retransmission
// machinery handles them uniformly.
//
// A chunk does not hold payload bytes itself: it references the half-open
// range [payOff, payOff+payLen) of the endpoint's send ByteQueue (sndBuf).
// The bytes live exactly once on the sender — retransmissions copy them out
// of the queue into a fresh pool-owned segment payload, instead of the old
// scheme of one deep copy per chunk plus one per (re)transmission.
type chunk struct {
	seq    packet.SeqNum
	payOff uint64 // absolute sndBuf offset of the chunk's first payload byte
	payLen int    // payload length in bytes
	opts   []packet.Option
	syn    bool
	fin    bool

	// ownsOpts marks the option objects in opts as owned by this chunk:
	// when the chunk's retransmission lifetime ends (fully acknowledged and
	// popped from the queues) the endpoint recycles them onto its free
	// lists. Chunks that borrow another chunk's options (the zero-window
	// probe split) leave it false so the owner frees them exactly once.
	// Outgoing segments never alias these objects — makeSegment copies every
	// option into the segment's own arena — so recycling here cannot corrupt
	// in-flight traffic.
	ownsOpts bool

	sentAt        time.Duration
	transmissions int

	// sacked marks the chunk as selectively acknowledged by the peer; it is
	// skipped during loss recovery and not retransmitted.
	sacked bool
	// rtxEpoch records the recovery episode in which the chunk was last
	// retransmitted, so each hole is repaired at most once per episode.
	rtxEpoch int
}

// seqLen returns the amount of sequence space the chunk occupies.
func (c *chunk) seqLen() uint32 {
	n := uint32(c.payLen)
	if c.syn {
		n++
	}
	if c.fin {
		n++
	}
	return n
}

func (c *chunk) endSeq() packet.SeqNum { return c.seq.Add(c.seqLen()) }

// Stats aggregates per-endpoint counters used by experiments and tests.
type Stats struct {
	SegmentsSent     uint64
	SegmentsReceived uint64
	BytesSent        uint64
	BytesReceived    uint64
	BytesDelivered   uint64
	Retransmissions  uint64
	Timeouts         uint64
	FastRetransmits  uint64
	DupAcksReceived  uint64
	PersistProbes    uint64
}
