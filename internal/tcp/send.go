package tcp

import (
	"time"

	"mptcpgo/internal/buffer"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/pool"
)

// makeSegment builds an outgoing segment with the current acknowledgement and
// advertised window. Options are deep-copied into the segment's own arena —
// an in-flight segment never aliases the chunk's retransmission state, which
// is what lets the endpoint recycle chunks and their DSS options the moment
// they are fully acknowledged.
func (e *Endpoint) makeSegment(flags packet.Flags, seq packet.SeqNum, payload []byte, opts []packet.Option) *packet.Segment {
	seg := packet.NewSegment()
	seg.Src = e.local
	seg.Dst = e.remote
	seg.Seq = seq
	seg.Flags = flags
	seg.Payload = payload
	for _, o := range opts {
		seg.AppendOptionCopy(o)
	}
	// Every segment carries an acknowledgement except the very first SYN of
	// an active open (no peer sequence is known yet).
	if e.state != StateSynSent || flags.Has(packet.FlagACK) {
		seg.Flags |= packet.FlagACK
		seg.Ack = e.rcvNxt
		if !flags.Has(packet.FlagSYN) {
			if blocks := e.sackBlocks(); len(blocks) > 0 {
				seg.AppendSACK(blocks)
			}
		}
	}
	// Timestamps provide retransmission-ambiguity-free RTT samples.
	if !e.cfg.DisableTimestamps && (flags.Has(packet.FlagSYN) || e.peerTSOK) {
		seg.AppendTimestamps(uint32(e.sim.Now()/time.Millisecond), e.tsRecent)
	}
	seg.Window = e.windowField(flags.Has(packet.FlagSYN))
	return seg
}

// windowField computes the value to place in the TCP window field, applying
// window scaling (except on SYN segments, which are never scaled).
func (e *Endpoint) windowField(isSYN bool) uint16 {
	win := e.advertisedWindowBytes()
	e.lastAdvertisedWnd = win
	if isSYN {
		if win > 65535 {
			win = 65535
		}
		return uint16(win)
	}
	shift := uint(e.rcvWndShift)
	scaled := win >> shift
	if scaled > 65535 {
		scaled = 65535
	}
	return uint16(scaled)
}

// advertisedWindowBytes returns the receive window to advertise: either the
// hook-provided connection-level window (MPTCP) or the free space in this
// endpoint's receive buffer.
func (e *Endpoint) advertisedWindowBytes() int {
	if win, ok := e.hooks.AdvertiseWindow(e); ok {
		if win < 0 {
			win = 0
		}
		return win
	}
	used := e.ReceiveQueuedBytes()
	win := e.rcvBufActual - used
	if win < 0 {
		win = 0
	}
	return win
}

// synOptions returns the options advertised on SYN and SYN/ACK segments.
func (e *Endpoint) synOptions() []packet.Option {
	opts := []packet.Option{
		&packet.MSSOption{MSS: uint16(e.cfg.MSS)},
		&packet.SACKPermittedOption{},
	}
	if e.cfg.WindowScale > 0 {
		opts = append(opts, &packet.WindowScaleOption{Shift: uint8(e.cfg.WindowScale)})
		e.rcvWndShift = uint8(e.cfg.WindowScale)
	}
	return opts
}

// processSYNOptions applies the peer's SYN/SYN-ACK options.
func (e *Endpoint) processSYNOptions(seg *packet.Segment) {
	e.peerWndShift = 0
	for _, o := range seg.Options {
		switch opt := o.(type) {
		case *packet.MSSOption:
			e.peerMSS = int(opt.MSS)
		case *packet.WindowScaleOption:
			shift := opt.Shift
			if shift > 14 {
				shift = 14
			}
			e.peerWndShift = shift
		case *packet.SACKPermittedOption:
			e.peerSackOK = true
		case *packet.TimestampsOption:
			e.peerTSOK = !e.cfg.DisableTimestamps
			e.tsRecent = opt.Val
		}
	}
}

// transmitChunk emits one chunk (first transmission or retransmission). The
// segment payload is copied out of the send queue into a pool-owned buffer —
// the one copy the "payload never shared" invariant requires, recycled when
// the segment reaches its sink.
func (e *Endpoint) transmitChunk(c *chunk, retransmission bool) {
	flags := packet.Flags(0)
	opts := c.opts
	if c.syn {
		flags |= packet.FlagSYN
		opts = append(e.synOptions(), c.opts...)
	}
	if c.fin {
		flags |= packet.FlagFIN
	}
	if c.payLen > 0 {
		flags |= packet.FlagPSH
	}
	seg := e.makeSegment(flags, c.seq, nil, opts)
	if c.payLen > 0 {
		buf := pool.Bytes(c.payLen)
		copy(buf, e.sndBuf.Peek(c.payOff, c.payLen))
		seg.AttachPayload(buf)
	}
	c.sentAt = e.sim.Now()
	c.transmissions++
	if retransmission {
		e.stats.Retransmissions++
	}
	e.sendSegment(seg, retransmission)
}

// sendSegment runs the hooks and hands the segment to the interface.
func (e *Endpoint) sendSegment(seg *packet.Segment, retransmission bool) {
	e.hooks.OnSegmentSent(e, seg, retransmission)
	// The hooks may have added MPTCP options; if the 40-byte option space is
	// now exceeded, shed SACK blocks first (they are advisory), then the
	// whole SACK option.
	for !packet.FitsOptionSpace(seg.Options) {
		sack, _ := seg.FindOption(packet.OptSACK).(*packet.SACKOption)
		if sack == nil {
			break
		}
		if len(sack.Blocks) > 1 {
			sack.Blocks = sack.Blocks[:len(sack.Blocks)-1]
			continue
		}
		seg.RemoveOptions(func(o packet.Option) bool { return o.Kind() == packet.OptSACK })
	}
	e.stats.SegmentsSent++
	e.stats.BytesSent += uint64(len(seg.Payload))
	e.cancelDelayedAckIfCovered(seg)
	e.iface.Send(seg)
}

// output transmits as much queued data as the congestion window (and, for
// plain TCP, the peer's receive window) allows.
func (e *Endpoint) output() {
	if e.state == StateSynSent || e.state == StateSynReceived {
		return // data flows once established; SYN already in flight
	}
	if !e.IsEstablished() && e.state != StateClosing && e.state != StateLastAck {
		return
	}
	popped := 0
	for popped < len(e.sendQueue) {
		c := e.sendQueue[popped]
		allowance := e.SendSpace()
		if c.payLen > 0 && allowance < c.payLen && e.BytesInFlight() > 0 {
			// Not enough room for the whole chunk; wait for ACKs (sending
			// partial chunks would complicate MPTCP mappings for no gain).
			break
		}
		if c.payLen > 0 && allowance <= 0 {
			break
		}
		// Zero-window deadlock protection for plain TCP: if nothing is in
		// flight and the peer window is closed, the persist timer takes over.
		if !e.cfg.ConnectionLevelWindow && c.payLen > 0 &&
			e.sndWnd-e.BytesInFlight() < c.payLen && e.BytesInFlight() == 0 {
			e.armPersist()
			break
		}
		popped++
		c.seq = e.sndNxt
		e.sndNxt = e.sndNxt.Add(c.seqLen())
		e.retransQ = append(e.retransQ, c)
		if c.fin {
			e.onFINSent()
		}
		e.transmitChunk(c, false)
		if e.firstUnackedSince == 0 {
			e.firstUnackedSince = e.sim.Now()
		}
	}
	if popped > 0 {
		// Compact once for the whole burst (per-pop compaction would make a
		// full-buffer drain quadratic in the window, like the ACK loop).
		e.sendQueue = buffer.CompactPrefix(e.sendQueue, popped)
	}
	if len(e.retransQ) > 0 {
		e.rtoTimer.ResetIfStopped(e.backedOffRTO())
	}
}

// onFINSent updates connection state when our FIN enters the network.
func (e *Endpoint) onFINSent() {
	switch e.state {
	case StateEstablished:
		e.setState(StateFinWait1)
	case StateCloseWait:
		e.setState(StateLastAck)
	}
}

// ---------------------------------------------------------------------------
// Acknowledgement processing
// ---------------------------------------------------------------------------

// processAck handles the ACK field of an incoming segment.
func (e *Endpoint) processAck(seg *packet.Segment) {
	if !seg.Flags.Has(packet.FlagACK) {
		return
	}
	ack := seg.Ack

	// Update the peer's advertised window (scaled except on SYN segments).
	wnd := int(seg.Window)
	if !seg.Flags.Has(packet.FlagSYN) {
		wnd <<= uint(e.peerWndShift)
	}
	windowGrew := wnd > e.sndWnd
	e.sndWnd = wnd

	if sack, ok := seg.FindOption(packet.OptSACK).(*packet.SACKOption); ok {
		e.processSack(sack)
	}

	// A timestamp echo on an ACK advancing the cumulative point gives a
	// retransmission-ambiguity-free RTT sample.
	var tsSample time.Duration
	if ts, ok := seg.FindOption(packet.OptTimestamps).(*packet.TimestampsOption); ok && ts.Echo != 0 && !e.cfg.DisableTimestamps {
		echoed := time.Duration(ts.Echo) * time.Millisecond
		if now := e.sim.Now(); now >= echoed {
			tsSample = now - echoed
		}
	}

	switch {
	case ack.LessThanEq(e.sndUna):
		// Duplicate or old ACK.
		if ack == e.sndUna && len(seg.Payload) == 0 && len(e.retransQ) > 0 && !windowGrew {
			e.stats.DupAcksReceived++
			e.dupAcks++
			e.onDupAck()
		}
	case ack.LessThanEq(e.sndNxt):
		e.onAckAdvance(ack, tsSample)
	default:
		// ACK for data we never sent; ignore (blind or corrupted).
		return
	}

	if windowGrew || ack == e.sndNxt {
		e.persistTimer.Stop()
	}
	if !e.cfg.ConnectionLevelWindow && e.sndWnd == 0 && len(e.sendQueue) > 0 {
		e.armPersist()
	}

	e.output()
	e.hooks.OnSendSpaceAvailable(e)
	e.maybeNotifyWritable()
}

// onAckAdvance handles an ACK that acknowledges new data. tsSample, when
// non-zero, is the RTT measured from the segment's timestamp echo.
func (e *Endpoint) onAckAdvance(ack packet.SeqNum, tsSample time.Duration) {
	ackedBytes := int(ack.DiffFrom(e.sndUna))
	e.sndUna = ack
	e.rtoBackoff = 0
	e.firstUnackedSince = 0

	rttSample := tsSample
	// Release fully acknowledged chunks. When timestamps are off, the RTT
	// sample is taken from the chunk at the leading edge of the
	// acknowledgement, and only if it was never retransmitted (Karn's
	// algorithm); sampling older chunks would inflate the estimate whenever
	// a cumulative ACK jumps across a repaired hole.
	freed := 0
	for freed < len(e.retransQ) {
		c := e.retransQ[freed]
		if c.endSeq().LessThanEq(ack) {
			if !e.peerTSOK {
				if c.transmissions == 1 {
					rttSample = e.sim.Now() - c.sentAt
				} else {
					rttSample = 0
				}
			}
			e.queuedBytes -= c.payLen
			e.sndBuf.TrimTo(c.payOff + uint64(c.payLen))
			// The chunk's retransmission lifetime is over: nothing else
			// references it (segments carry arena copies of its options), so
			// it and its DSS options go back to the free lists. Its queue
			// slot is cleared by the compaction below.
			e.freeChunk(c)
			freed++
			continue
		}
		// Partial chunk acknowledgement (middleboxes may resegment): trim.
		if c.seq.LessThan(ack) {
			trim := int(ack.DiffFrom(c.seq))
			if trim > c.payLen {
				trim = c.payLen
			}
			c.payOff += uint64(trim)
			c.payLen -= trim
			c.seq = ack
			e.queuedBytes -= trim
			e.sndBuf.TrimTo(c.payOff)
		}
		break
	}
	if freed > 0 {
		// Compact once for the whole batch (a cumulative ACK after a stall
		// can retire the entire queue); per-pop compaction would make this
		// loop quadratic in the window.
		e.retransQ = buffer.CompactPrefix(e.retransQ, freed)
	}

	if rttSample > 0 {
		e.sampleRTT(rttSample)
	}

	if e.inRecovery {
		if e.recoveryEnd.LessThanEq(ack) {
			e.inRecovery = false
			e.recoveryInfl = 0
			e.dupAcks = 0
			e.ctrl.OnRecoveryExit()
		} else {
			// Partial ACK: the first chunk is a hole the peer still misses;
			// repair it (even if it was already retransmitted this episode —
			// the partial ACK proves that copy did not arrive), then fill
			// the pipe with further hole repairs.
			if len(e.retransQ) > 0 && !e.retransQ[0].sacked {
				e.retransQ[0].rtxEpoch = e.recoveryEpoch
				e.transmitChunk(e.retransQ[0], true)
			}
			e.recoveryTransmit()
		}
	} else {
		e.dupAcks = 0
		e.ctrl.OnAck(ackedBytes, rttSample)
	}
	e.noteCCState()

	// Detect whether our FIN has been acknowledged.
	if e.finQueued && len(e.retransQ) == 0 && len(e.sendQueue) == 0 {
		switch e.state {
		case StateFinWait1:
			e.setState(StateFinWait2)
		case StateClosing:
			e.enterTimeWait()
		case StateLastAck:
			e.teardown(nil)
			return
		}
	}

	if len(e.retransQ) == 0 {
		e.rtoTimer.Stop()
	} else {
		e.rtoTimer.Reset(e.backedOffRTO())
	}
}

// onDupAck implements fast retransmit / fast recovery with SACK-based hole
// repair: every duplicate ACK lets the sender retransmit one more missing
// chunk, so a burst of losses within one window is repaired in roughly one
// round trip.
func (e *Endpoint) onDupAck() {
	if e.inRecovery {
		// Each duplicate ACK signals that a segment left the network; repair
		// further holes as the pipe estimate allows.
		e.recoveryTransmit()
		e.output()
		return
	}
	if e.dupAcks == 3 && len(e.retransQ) > 0 {
		e.stats.FastRetransmits++
		if e.cfg.Probe != nil {
			e.cfg.Probe.OnEndpointFastRetransmit(e)
		}
		e.inRecovery = true
		e.recoveryEnd = e.sndNxt
		e.recoveryInfl = 0
		e.recoveryEpoch++
		e.ctrl.OnFastRetransmit()
		if !e.retransmitNextHole() {
			e.transmitChunk(e.retransQ[0], true)
		}
		e.recoveryTransmit()
		e.rtoTimer.Reset(e.backedOffRTO())
		e.noteCCState()
	}
}

// noteCCState reports congestion-phase transitions through the probe. It is
// a no-op without an attached probe, so untraced endpoints pay one branch.
func (e *Endpoint) noteCCState() {
	if e.cfg.Probe == nil {
		return
	}
	st := CCSlowStart
	switch {
	case e.inRecovery:
		st = CCRecovery
	case !e.ctrl.InSlowStart():
		st = CCAvoidance
	}
	if st != e.ccState {
		e.ccState = st
		e.cfg.Probe.OnEndpointCCState(e, st)
	}
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

func (e *Endpoint) sampleRTT(sample time.Duration) {
	if e.baseRTT == 0 || sample < e.baseRTT {
		e.baseRTT = sample
	}
	if e.srtt == 0 {
		e.srtt = sample
		e.rttvar = sample / 2
	} else {
		diff := e.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		e.rttvar = (3*e.rttvar + diff) / 4
		e.srtt = (7*e.srtt + sample) / 8
	}
	rto := e.srtt + 4*e.rttvar
	if rto < e.cfg.MinRTO {
		rto = e.cfg.MinRTO
	}
	if rto > e.cfg.MaxRTO {
		rto = e.cfg.MaxRTO
	}
	e.rto = rto
}

func (e *Endpoint) backedOffRTO() time.Duration {
	rto := e.rto
	for i := 0; i < e.rtoBackoff; i++ {
		rto *= 2
		if rto >= e.cfg.MaxRTO {
			return e.cfg.MaxRTO
		}
	}
	return rto
}

func (e *Endpoint) armRTO() {
	e.rtoTimer.Reset(e.backedOffRTO())
}

// onRTO handles a retransmission timeout.
func (e *Endpoint) onRTO() {
	if len(e.retransQ) == 0 {
		return
	}
	if e.cfg.UserTimeout > 0 && e.firstUnackedSince > 0 &&
		e.sim.Now()-e.firstUnackedSince > e.cfg.UserTimeout {
		e.teardown(ErrTimeout)
		return
	}
	e.stats.Timeouts++
	e.rtoBackoff++
	if e.cfg.Probe != nil {
		// Reported before the retry-limit check so the fatal timeout that
		// kills a subflow is part of its recorded backoff run.
		e.cfg.Probe.OnEndpointRTO(e, e.rtoBackoff, e.backedOffRTO())
	}
	if e.cfg.MaxRTORetries > 0 && e.rtoBackoff > e.cfg.MaxRTORetries {
		e.teardown(ErrTimeout)
		return
	}
	e.inRecovery = false
	e.recoveryInfl = 0
	e.dupAcks = 0
	e.recoveryEpoch++
	// After a timeout the SACK scoreboard may be stale (the peer could have
	// discarded out-of-order data); start over.
	e.clearSackState()
	e.ctrl.OnTimeout()
	e.noteCCState()
	e.transmitChunk(e.retransQ[0], true)
	e.rtoTimer.Reset(e.backedOffRTO())
}

// armPersist schedules a zero-window probe.
func (e *Endpoint) armPersist() {
	if e.persistTimer.Pending() {
		return
	}
	e.persistTimer.Reset(maxDur(e.backedOffRTO(), 500*time.Millisecond))
}

// onPersist sends a zero-window probe: one byte of the next pending chunk.
func (e *Endpoint) onPersist() {
	if e.state == StateClosed || len(e.sendQueue) == 0 || e.sndWnd > 0 {
		return
	}
	e.stats.PersistProbes++
	c := e.sendQueue[0]
	if c.payLen > 1 {
		// Split off a one-byte probe chunk that carries the same options so
		// any attached MPTCP mapping still covers its byte range. The probe
		// borrows the owner's option objects (ownsOpts stays false): the
		// owning chunk outlives it in the queues, so the owner frees them.
		probe := e.newChunk()
		probe.payOff, probe.payLen = c.payOff, 1
		probe.opts = append(probe.opts[:0], c.opts...)
		c.payOff++
		c.payLen--
		probe.seq = e.sndNxt
		e.sndNxt = e.sndNxt.Add(1)
		e.retransQ = append(e.retransQ, probe)
		e.transmitChunk(probe, false)
	} else {
		e.sendQueue, _ = popChunk(e.sendQueue)
		c.seq = e.sndNxt
		e.sndNxt = e.sndNxt.Add(c.seqLen())
		e.retransQ = append(e.retransQ, c)
		e.transmitChunk(c, false)
	}
	e.rtoTimer.ResetIfStopped(e.backedOffRTO())
	e.persistTimer.Reset(2 * e.backedOffRTO())
}

func (e *Endpoint) maybeNotifyWritable() {
	if e.OnWritable != nil && e.SendBufferSpace() > 0 {
		e.OnWritable()
	}
}

// enterTimeWait schedules the final teardown after 2*MSL.
func (e *Endpoint) enterTimeWait() {
	e.setState(StateTimeWait)
	if e.timeWaitTimer == nil {
		e.timeWaitTimer = e.sim.NewTimer(func() { e.teardown(nil) })
	}
	e.timeWaitTimer.Reset(e.cfg.TimeWaitDuration)
}
