package tcp

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
)

// TestDebugTCPStall is a diagnostic; run with -run TestDebugTCPStall -v.
func TestDebugTCPStall(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic test")
	}
	n := testNet(t, netem.LinkConfig{RateBps: netem.Mbps(10), Delay: 10 * time.Millisecond, QueueBytes: 64 << 10})
	cfg := Config{}
	total := 500 << 10

	received := 0
	var srv *Endpoint
	_, err := Listen(n.Server, 80, cfg, func(ep *Endpoint, _ *packet.Segment) {
		srv = ep
		ep.OnReadable = func() {
			for len(ep.Read(64<<10)) > 0 {
				received = int(ep.Stats().BytesDelivered)
			}
			received = int(ep.Stats().BytesDelivered)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(n.Client.Interfaces()[0], packet.Endpoint{Addr: n.ServerAddr(0), Port: 80}, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sent := 0
	pump := func() {
		for sent < total {
			w := client.Write(bytes.Repeat([]byte{1}, minInt(32<<10, total-sent)))
			if w == 0 {
				break
			}
			sent += w
		}
	}
	client.OnEstablished = pump
	client.OnWritable = pump

	for i := 1; i <= 6; i++ {
		if err := n.Sim.RunUntil(time.Duration(i) * 2 * time.Second); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("t=%v sent=%d recv=%d | cli: state=%v una->nxt=%d cwnd=%d inflight=%d retransQ=%d sendQ=%d dupacks=%d recovery=%v rtoPending=%v rto=%v stats=%+v\n",
			n.Sim.Now(), sent, received, client.state, client.sndNxt.DiffFrom(client.sndUna), client.Cwnd(), client.BytesInFlight(), len(client.retransQ), len(client.sendQueue), client.dupAcks, client.inRecovery, client.rtoTimer.Pending(), client.backedOffRTO(), client.stats)
		if srv != nil {
			fmt.Printf("   srv: rcvNxt-irs=%d ofoLen=%d ofoBytes=%d sackRanges=%d unread=%d\n",
				srv.RelativeRcvNxt(), srv.recvOfo.Len(), srv.recvOfo.Bytes(), len(srv.sackRanges), srv.ReadableBytes())
		}
		if received >= total {
			break
		}
	}
}
