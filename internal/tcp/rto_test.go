package tcp

import (
	"bytes"
	"testing"
	"time"

	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/sim"
)

// rtoHarness establishes one connection over a fresh single-path network and
// keeps the client's send buffer full, so a path outage always leaves unacked
// data for the RTO machinery to chew on.
func rtoHarness(t *testing.T, cfg Config) (*netem.Network, *Endpoint) {
	t.Helper()
	s := sim.New(1)
	link := netem.LinkConfig{RateBps: netem.Mbps(10), Delay: 10 * time.Millisecond, QueueBytes: 64 << 10}
	n := netem.Build(s, netem.PathSpec{Name: "p0", Config: netem.PathConfig{AB: link, BA: link}})

	_, err := Listen(n.Server, 80, cfg, func(ep *Endpoint, _ *packet.Segment) {
		ep.OnReadable = func() {
			for len(ep.Read(64<<10)) > 0 {
			}
		}
	})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	client, err := Dial(n.Client.Interfaces()[0], packet.Endpoint{Addr: n.ServerAddr(0), Port: 80}, cfg, nil)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	pump := func() {
		for client.Write(bytes.Repeat([]byte{0xA5}, 8<<10)) > 0 {
		}
	}
	client.OnEstablished = pump
	client.OnWritable = pump
	return n, client
}

// TestMaxRTORetriesTearsDown pins the recovery-hardening contract: after
// MaxRTORetries consecutive timeouts without an intervening ACK the endpoint
// declares the path dead and tears down with ErrTimeout, instead of backing
// off forever on a black-holed link.
func TestMaxRTORetriesTearsDown(t *testing.T) {
	cfg := Config{MaxRTORetries: 3, MaxRTO: 4 * time.Second}
	n, client := rtoHarness(t, cfg)

	n.Sim.ScheduleAt(time.Second, func() { n.Path(0).SetDown(true) })
	if err := n.Sim.RunUntil(60 * time.Second); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if client.State() != StateClosed || client.Err() != ErrTimeout {
		t.Fatalf("state=%v err=%v, want closed with ErrTimeout", client.State(), client.Err())
	}
	// 3 retries tripped the limit; the 4th timeout tears down before
	// retransmitting, so the counter never runs past MaxRTORetries+1.
	if got := client.Stats().Timeouts; got < uint64(cfg.MaxRTORetries) || got > uint64(cfg.MaxRTORetries)+1 {
		t.Fatalf("timeouts=%d, want ~%d", got, cfg.MaxRTORetries)
	}
}

// TestRTOBackoffCapsAndResets checks the two safety properties of the
// exponential backoff: the effective RTO never exceeds MaxRTO however many
// timeouts accumulate, and the first genuine ACK after recovery resets the
// backoff to zero.
func TestRTOBackoffCapsAndResets(t *testing.T) {
	cfg := Config{MaxRTO: 3 * time.Second, MaxRTORetries: -1} // unlimited retries
	n, client := rtoHarness(t, cfg)

	n.Sim.ScheduleAt(time.Second, func() { n.Path(0).SetDown(true) })
	n.Sim.ScheduleAt(16*time.Second, func() { n.Path(0).SetDown(false) })

	maxSeen := time.Duration(0)
	probe := func() {}
	probe = func() {
		if rto := client.RTO(); rto > maxSeen {
			maxSeen = rto
		}
		if n.Sim.Now() < 15*time.Second {
			n.Sim.Schedule(500*time.Millisecond, probe)
		}
	}
	n.Sim.ScheduleAt(2*time.Second, probe)

	if err := n.Sim.RunUntil(30 * time.Second); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if client.Stats().Timeouts == 0 {
		t.Fatal("outage produced no RTOs")
	}
	if maxSeen > cfg.MaxRTO {
		t.Fatalf("backed-off RTO reached %v, cap is %v", maxSeen, cfg.MaxRTO)
	}
	if maxSeen < 2*time.Second {
		t.Fatalf("backoff never grew (max RTO seen %v)", maxSeen)
	}
	// The link is back and traffic flows again: the first ACK advance must
	// have cleared the backoff.
	if client.State() != StateEstablished {
		t.Fatalf("connection did not survive the outage: state=%v err=%v", client.State(), client.Err())
	}
	if client.rtoBackoff != 0 {
		t.Fatalf("rtoBackoff=%d after recovery, want 0", client.rtoBackoff)
	}
}
