package tcp

import (
	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
)

// AcceptFunc is invoked for every new passive-open endpoint right after the
// endpoint is created from a SYN but before the SYN/ACK leaves the host, so
// the callback can attach hooks (the MPTCP listener does) and application
// callbacks. The original SYN segment is provided for option inspection.
type AcceptFunc func(ep *Endpoint, syn *packet.Segment)

// Listener accepts incoming connections on one port of a host.
type Listener struct {
	host   *netem.Host
	port   uint16
	cfg    Config
	accept AcceptFunc

	// HooksFactory, when set, builds the hook set for each accepted
	// endpoint before the SYN is processed (MPTCP installs its listener
	// here). It may return nil hooks to accept the connection as plain TCP,
	// or ok=false to refuse the SYN with a RST (e.g. an MP_JOIN with an
	// invalid token).
	HooksFactory func(syn *packet.Segment) (h Hooks, ok bool)

	accepted []*Endpoint
}

// Listen installs a listener on the host.
func Listen(host *netem.Host, port uint16, cfg Config, accept AcceptFunc) (*Listener, error) {
	l := &Listener{host: host, port: port, cfg: cfg.WithDefaults(), accept: accept}
	if err := host.Listen(port, l); err != nil {
		return nil, err
	}
	return l, nil
}

// Port returns the listening port.
func (l *Listener) Port() uint16 { return l.port }

// Accepted returns all endpoints accepted so far.
func (l *Listener) Accepted() []*Endpoint { return l.accepted }

// Close removes the listener (established connections are unaffected).
func (l *Listener) Close() { l.host.Unlisten(l.port) }

// HandleSYN implements netem.ListenHandler.
func (l *Listener) HandleSYN(ingress *netem.Interface, syn *packet.Segment) {
	var hooks Hooks
	if l.HooksFactory != nil {
		h, ok := l.HooksFactory(syn)
		if !ok {
			rst := &packet.Segment{
				Src:   syn.Dst,
				Dst:   syn.Src,
				Seq:   0,
				Ack:   syn.EndSeq(),
				Flags: packet.FlagRST | packet.FlagACK,
			}
			ingress.Send(rst)
			return
		}
		hooks = h
	}
	ep, err := accept(ingress, syn, l.cfg, hooks)
	if err != nil {
		return
	}
	l.accepted = append(l.accepted, ep)
	if l.accept != nil {
		l.accept(ep, syn)
	}
}
