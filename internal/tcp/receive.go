package tcp

import (
	"time"

	"mptcpgo/internal/buffer"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/pool"
)

// HandleSegment implements netem.SegmentHandler; every segment addressed to
// this endpoint's four-tuple lands here.
func (e *Endpoint) HandleSegment(_ *netem.Interface, seg *packet.Segment) {
	if e.state == StateClosed {
		return
	}
	e.stats.SegmentsReceived++
	e.stats.BytesReceived += uint64(len(seg.Payload))

	switch e.state {
	case StateSynSent:
		e.handleSynSent(seg)
		return
	case StateSynReceived:
		e.handleSynReceived(seg)
		return
	}

	// RST processing: accept if the sequence number is within the window.
	if seg.Flags.Has(packet.FlagRST) {
		if e.sequenceAcceptable(seg) || seg.Seq == e.rcvNxt {
			e.teardown(ErrReset)
		}
		return
	}

	if ts, ok := seg.FindOption(packet.OptTimestamps).(*packet.TimestampsOption); ok && !e.cfg.DisableTimestamps {
		e.peerTSOK = true
		e.tsRecent = ts.Val
	}

	e.hooks.OnSegmentReceived(e, seg)
	e.processAck(seg)
	if e.state == StateClosed {
		return
	}
	e.processPayload(seg)
}

// handleSynSent processes the SYN/ACK of an active open.
func (e *Endpoint) handleSynSent(seg *packet.Segment) {
	if seg.Flags.Has(packet.FlagRST) {
		e.teardown(ErrReset)
		return
	}
	if !seg.Flags.Has(packet.FlagSYN) || !seg.Flags.Has(packet.FlagACK) {
		return
	}
	if seg.Ack != e.iss.Add(1) {
		// Acknowledgement doesn't cover our SYN; reset per RFC 793.
		rst := &packet.Segment{Src: e.local, Dst: e.remote, Seq: seg.Ack, Flags: packet.FlagRST}
		e.iface.Send(rst)
		return
	}
	e.processSYNOptions(seg)
	e.hooks.OnSegmentReceived(e, seg)
	e.irs = seg.Seq
	e.rcvNxt = seg.Seq.Add(1)
	e.sndUna = seg.Ack
	e.sndWnd = int(seg.Window)
	e.recvQueue = buffer.NewByteQueue(0)
	// Remove the SYN chunk from the retransmission queue and take an RTT
	// sample from the handshake.
	if len(e.retransQ) > 0 && e.retransQ[0].syn {
		var c *chunk
		e.retransQ, c = popChunk(e.retransQ)
		if c.transmissions == 1 {
			e.sampleRTT(e.sim.Now() - c.sentAt)
		}
		e.freeChunk(c)
	}
	e.rtoTimer.Stop()
	e.setState(StateEstablished)
	// Third ACK of the handshake (hooks add MP_CAPABLE with both keys).
	e.SendAck()
	e.output()
	e.hooks.OnSendSpaceAvailable(e)
	e.maybeNotifyWritable()
}

// handleSynReceived processes the final ACK of a passive open.
func (e *Endpoint) handleSynReceived(seg *packet.Segment) {
	if seg.Flags.Has(packet.FlagRST) {
		e.teardown(ErrReset)
		return
	}
	if seg.Flags.Has(packet.FlagSYN) {
		// Retransmitted SYN: retransmit our SYN/ACK.
		if len(e.retransQ) > 0 && e.retransQ[0].syn {
			e.transmitChunk(e.retransQ[0], true)
		}
		return
	}
	if !seg.Flags.Has(packet.FlagACK) || seg.Ack != e.iss.Add(1) {
		return
	}
	e.sndUna = seg.Ack
	e.sndWnd = int(seg.Window) << uint(e.peerWndShift)
	e.recvQueue = buffer.NewByteQueue(0)
	if len(e.retransQ) > 0 && e.retransQ[0].syn {
		var c *chunk
		e.retransQ, c = popChunk(e.retransQ)
		if c.transmissions == 1 {
			e.sampleRTT(e.sim.Now() - c.sentAt)
		}
		e.freeChunk(c)
	}
	e.rtoTimer.Stop()
	e.setState(StateEstablished)
	e.hooks.OnSegmentReceived(e, seg)
	// The third ACK may already carry data.
	if len(seg.Payload) > 0 || seg.Flags.Has(packet.FlagFIN) {
		e.processPayload(seg)
	}
	e.output()
	e.hooks.OnSendSpaceAvailable(e)
	e.maybeNotifyWritable()
}

// sequenceAcceptable implements the RFC 793 acceptability test, loosely.
func (e *Endpoint) sequenceAcceptable(seg *packet.Segment) bool {
	win := uint32(e.rcvBufActual)
	if win == 0 {
		return seg.Seq == e.rcvNxt
	}
	return seg.Seq.InRange(e.rcvNxt, e.rcvNxt.Add(win)) ||
		seg.EndSeq().InRange(e.rcvNxt.Add(1), e.rcvNxt.Add(win))
}

// processPayload reassembles in-order data, manages the out-of-order queue
// and acknowledges.
func (e *Endpoint) processPayload(seg *packet.Segment) {
	hasFin := seg.Flags.Has(packet.FlagFIN)
	if len(seg.Payload) == 0 && !hasFin {
		return
	}

	segSeq := seg.Seq
	payload := seg.Payload

	// Trim data we already have.
	if segSeq.LessThan(e.rcvNxt) {
		skip := int(e.rcvNxt.DiffFrom(segSeq))
		if skip >= len(payload) {
			if !hasFin || seg.EndSeq().LessThanEq(e.rcvNxt) {
				// Entirely old segment: re-ACK so the sender resynchronizes.
				e.scheduleAck(true)
				return
			}
			payload = nil
			segSeq = e.rcvNxt
		} else {
			payload = payload[skip:]
			segSeq = e.rcvNxt
		}
	}

	if segSeq == e.rcvNxt {
		// In-order: deliver directly.
		if len(payload) > 0 {
			e.deliver(segSeq, payload)
			e.rcvNxt = e.rcvNxt.Add(uint32(len(payload)))
		}
		// Drain anything now contiguous from the out-of-order queue; each
		// item's pool-owned buffer is recycled once its bytes have been
		// copied into the downstream queues.
		rel := uint64(uint32(e.rcvNxt.DiffFrom(e.irs.Add(1))))
		for _, it := range e.recvOfo.PopContiguous(rel) {
			e.deliver(e.rcvNxt, it.Data)
			e.rcvNxt = e.rcvNxt.Add(uint32(len(it.Data)))
			rel = it.End()
			pool.Recycle(it.Data)
		}
		e.pruneSackRanges()
		if hasFin {
			// The FIN occupies the sequence number just after the segment's
			// original payload; it is in sequence once everything before it
			// has been delivered.
			finSeq := seg.Seq.Add(uint32(len(seg.Payload)))
			if finSeq == e.rcvNxt {
				e.handleFIN()
			}
		}
		e.scheduleAck(hasFin || e.recvOfo.Len() > 0)
		if len(payload) > 0 || hasFin {
			e.notifyReadable()
		}
		return
	}

	// Out of order: queue it (at the subflow level the offset from the ISN is
	// used, which stays consistent across sequence-rewriting middleboxes
	// because both Seq and ISN are rewritten together).
	if len(payload) > 0 {
		rel := uint64(uint32(segSeq.DiffFrom(e.irs.Add(1))))
		// Insert copies the payload into a pool-owned buffer; the segment
		// keeps ownership of the slice passed in.
		e.recvOfo.Insert(buffer.Item{Seq: rel, Data: payload})
		e.recordSackRange(segSeq, segSeq.Add(uint32(len(payload))))
	}
	// Immediate duplicate ACK to trigger the peer's fast retransmit.
	e.scheduleAck(true)
}

// deliver hands in-order payload to the application buffer or, for MPTCP
// subflows, to the connection-level hook.
func (e *Endpoint) deliver(seq packet.SeqNum, data []byte) {
	e.stats.BytesDelivered += uint64(len(data))
	rel := uint32(seq.DiffFrom(e.irs.Add(1)))
	e.hooks.OnDataDelivered(e, rel, data)
	if e.recvQueue != nil && !e.cfg.PayloadToHooksOnly {
		e.recvQueue.Append(data)
	}
	e.maybeAutotuneRecvBuffer(len(data))
}

// maybeAutotuneRecvBuffer grows the receive buffer toward its configured
// maximum when the incoming rate suggests the current buffer limits
// throughput (a simplified dynamic right-sizing).
func (e *Endpoint) maybeAutotuneRecvBuffer(n int) {
	if !e.cfg.AutoTuneBuffers || e.rcvBufActual >= e.rcvBufMax {
		return
	}
	now := e.sim.Now()
	if e.rttWindowStart == 0 {
		e.rttWindowStart = now
	}
	e.rttDataCount += n
	rtt := e.SRTT()
	if rtt <= 0 {
		rtt = 100 * time.Millisecond
	}
	if now-e.rttWindowStart >= rtt {
		if 2*e.rttDataCount > e.rcvBufActual {
			e.rcvBufActual = minInt(e.rcvBufMax, maxInt(2*e.rttDataCount, e.rcvBufActual*2))
		}
		e.rttDataCount = 0
		e.rttWindowStart = now
	}
}

// handleFIN processes an in-sequence FIN from the peer.
func (e *Endpoint) handleFIN() {
	if e.finReceived {
		return
	}
	e.finReceived = true
	e.rcvNxt = e.rcvNxt.Add(1)
	switch e.state {
	case StateEstablished:
		e.setState(StateCloseWait)
	case StateFinWait1:
		// Our FIN is still unacknowledged: simultaneous close.
		e.setState(StateClosing)
	case StateFinWait2:
		e.enterTimeWait()
	}
	e.notifyReadable()
}

func (e *Endpoint) notifyReadable() {
	if e.OnReadable != nil {
		e.OnReadable()
	}
}

// ---------------------------------------------------------------------------
// Acknowledgement generation
// ---------------------------------------------------------------------------

// scheduleAck sends an ACK now or arms the delayed-ACK timer.
func (e *Endpoint) scheduleAck(immediate bool) {
	if !e.cfg.DelayedACK || immediate {
		e.cancelDelayedAck()
		e.SendAck()
		return
	}
	e.delackPending++
	if e.delackPending >= 2 {
		e.cancelDelayedAck()
		e.SendAck()
		return
	}
	if !e.delackTimer.Pending() {
		e.delackTimer.Reset(40 * time.Millisecond)
	}
}

func (e *Endpoint) flushDelayedAck() {
	if e.delackPending > 0 {
		e.delackPending = 0
		e.SendAck()
	}
}

func (e *Endpoint) cancelDelayedAck() {
	e.delackPending = 0
	e.delackTimer.Stop()
}

// cancelDelayedAckIfCovered clears the pending delayed ACK when an outgoing
// segment already carries the current acknowledgement.
func (e *Endpoint) cancelDelayedAckIfCovered(seg *packet.Segment) {
	if seg.Flags.Has(packet.FlagACK) && seg.Ack == e.rcvNxt {
		e.delackPending = 0
		e.delackTimer.Stop()
	}
}

// maybeSendWindowUpdate advertises newly freed receive buffer after the
// application reads, so a sender stalled on a closed window can resume
// (avoiding the flow-control deadlock discussed in §3.3.1).
func (e *Endpoint) maybeSendWindowUpdate() {
	if !e.IsEstablished() {
		return
	}
	current := e.advertisedWindowBytes()
	grown := current - e.lastAdvertisedWnd
	if grown >= e.EffectiveMSS() || (e.lastAdvertisedWnd == 0 && current > 0) ||
		(current >= e.rcvBufActual/4 && grown >= e.rcvBufActual/4) {
		e.SendAck()
	}
}

// ForceWindowUpdate sends an immediate window-update ACK; the MPTCP layer
// calls it when connection-level buffer space frees up.
func (e *Endpoint) ForceWindowUpdate() {
	if e.IsEstablished() {
		e.SendAck()
	}
}
