package tcp

import (
	"errors"
	"fmt"
	"time"

	"mptcpgo/internal/buffer"
	"mptcpgo/internal/cc"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/sim"
)

// Endpoint errors.
var (
	ErrClosed         = errors.New("tcp: endpoint closed")
	ErrReset          = errors.New("tcp: connection reset by peer")
	ErrTimeout        = errors.New("tcp: user timeout exceeded")
	ErrNotEstablished = errors.New("tcp: connection not established")
)

// Endpoint is one TCP connection endpoint (or one MPTCP subflow).
type Endpoint struct {
	sim   *sim.Simulator
	host  *netem.Host
	iface *netem.Interface

	local  packet.Endpoint
	remote packet.Endpoint

	cfg   Config
	hooks Hooks
	state State

	ctrl cc.Controller

	// ---- send state ----
	iss          packet.SeqNum
	sndUna       packet.SeqNum
	sndNxt       packet.SeqNum
	sndWnd       int // peer advertised window in bytes (already scaled)
	peerWndShift uint8
	peerMSS      int

	sendQueue          []*chunk // not yet transmitted
	retransQ           []*chunk // transmitted, not fully acknowledged
	queuedBytes        int      // payload bytes across both queues
	queuedPayloadTotal uint64   // cumulative payload bytes ever queued

	// chunkFree and dssFree recycle chunk structs and the DSS options
	// attached to them once their retransmission lifetime ends (fully
	// acknowledged, popped from the queues). Together with the send-queue
	// ByteQueue and the segment/payload pools this makes the steady-state
	// send path allocation-free.
	chunkFree []*chunk
	dssFree   []*packet.DSSOption

	// sndBuf holds the queued payload bytes exactly once; chunks reference
	// ranges of it (see chunk in tcp.go). Its head is trimmed as the
	// cumulative acknowledgement advances.
	sndBuf *buffer.ByteQueue

	dupAcks       int
	inRecovery    bool
	recoveryEnd   packet.SeqNum
	recoveryInfl  int // dup-ACK inflation in bytes
	recoveryEpoch int
	peerSackOK    bool
	peerTSOK      bool
	tsRecent      uint32 // peer's most recent timestamp value (to echo)

	rtoTimer          *sim.Timer
	persistTimer      *sim.Timer
	srtt              time.Duration
	rttvar            time.Duration
	baseRTT           time.Duration
	rto               time.Duration
	rtoBackoff        int
	firstUnackedSince time.Duration
	// ccState is the last congestion phase reported through cfg.Probe; only
	// maintained when a probe is attached (endpoints start in slow start).
	ccState CCState

	finQueued bool

	// ---- receive state ----
	irs               packet.SeqNum
	rcvNxt            packet.SeqNum
	rcvWndShift       uint8
	sackRanges        []packet.SACKBlock
	rcvBufMax         int
	rcvBufActual      int
	recvQueue         *buffer.ByteQueue // in-order data awaiting application Read
	recvOfo           buffer.OfoQueue   // out-of-order subflow segments
	finReceived       bool
	lastAdvertisedWnd int
	delackTimer       *sim.Timer
	delackPending     int

	timeWaitTimer *sim.Timer

	// autotuning bookkeeping
	rttDataCount   int
	rttWindowStart time.Duration

	stats Stats
	err   error

	// ---- application callbacks (plain TCP use) ----

	// OnReadable is invoked when new in-order data or EOF becomes available.
	OnReadable func()
	// OnWritable is invoked when send-buffer space frees up.
	OnWritable func()
	// OnEstablished is invoked when the connection reaches ESTABLISHED.
	OnEstablished func()
	// OnClosed is invoked when the endpoint fully closes; err is nil for a
	// graceful close.
	OnClosed func(err error)
}

// newEndpoint builds the shared parts of client and server endpoints.
func newEndpoint(iface *netem.Interface, local, remote packet.Endpoint, cfg Config, hooks Hooks) *Endpoint {
	cfg = cfg.WithDefaults()
	if hooks == nil {
		hooks = NopHooks{}
	}
	host := iface.Host()
	e := &Endpoint{
		sim:       host.Sim(),
		host:      host,
		iface:     iface,
		local:     local,
		remote:    remote,
		cfg:       cfg,
		hooks:     hooks,
		state:     StateClosed,
		peerMSS:   cfg.MSS,
		rcvBufMax: cfg.RecvBufBytes,
		rto:       cfg.InitialRTO,
		recvOfo:   buffer.NewOfoQueue(buffer.AlgRegular),
		sndBuf:    buffer.NewByteQueue(0),
		sndWnd:    cfg.MSS, // until the peer advertises
	}
	e.rcvBufActual = e.rcvBufMax
	if cfg.AutoTuneBuffers {
		e.rcvBufActual = minInt(e.rcvBufMax, 64<<10)
	}
	e.ctrl = cfg.CongestionControl(cc.Config{MSS: cfg.MSS})
	e.rtoTimer = e.sim.NewTimer(e.onRTO)
	e.persistTimer = e.sim.NewTimer(e.onPersist)
	e.delackTimer = e.sim.NewTimer(e.flushDelayedAck)
	return e
}

// Dial creates a client endpoint bound to iface and starts the three-way
// handshake toward remote. The hooks may be nil for plain TCP.
func Dial(iface *netem.Interface, remote packet.Endpoint, cfg Config, hooks Hooks) (*Endpoint, error) {
	host := iface.Host()
	local := packet.Endpoint{Addr: iface.Addr(), Port: host.AllocatePort()}
	return DialFrom(iface, local, remote, cfg, hooks)
}

// DialFrom is Dial with an explicit local endpoint (used when reopening a
// subflow from a specific port).
func DialFrom(iface *netem.Interface, local, remote packet.Endpoint, cfg Config, hooks Hooks) (*Endpoint, error) {
	e := newEndpoint(iface, local, remote, cfg, hooks)
	if err := e.host.Register(local, remote, e); err != nil {
		return nil, err
	}
	e.iss = packet.SeqNum(e.sim.RNG().Uint32())
	e.sndUna, e.sndNxt = e.iss, e.iss
	e.setState(StateSynSent)
	syn := e.newChunk()
	syn.seq, syn.syn = e.sndNxt, true
	e.sndNxt = e.sndNxt.Add(1)
	e.retransQ = append(e.retransQ, syn)
	e.transmitChunk(syn, false)
	e.armRTO()
	return e, nil
}

// accept creates a server-side endpoint from a received SYN; used by
// Listener.
func accept(iface *netem.Interface, syn *packet.Segment, cfg Config, hooks Hooks) (*Endpoint, error) {
	local := syn.Dst
	remote := syn.Src
	e := newEndpoint(iface, local, remote, cfg, hooks)
	if err := e.host.Register(local, remote, e); err != nil {
		return nil, err
	}
	e.setState(StateSynReceived)
	e.processSYNOptions(syn)
	e.irs = syn.Seq
	e.rcvNxt = syn.Seq.Add(1)
	e.iss = packet.SeqNum(e.sim.RNG().Uint32())
	e.sndUna, e.sndNxt = e.iss, e.iss
	e.hooks.OnSegmentReceived(e, syn)
	synack := e.newChunk()
	synack.seq, synack.syn = e.sndNxt, true
	e.sndNxt = e.sndNxt.Add(1)
	e.retransQ = append(e.retransQ, synack)
	e.transmitChunk(synack, false)
	e.armRTO()
	return e, nil
}

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

// State returns the connection state.
func (e *Endpoint) State() State { return e.state }

// LocalEndpoint returns the local address and port.
func (e *Endpoint) LocalEndpoint() packet.Endpoint { return e.local }

// RemoteEndpoint returns the remote address and port.
func (e *Endpoint) RemoteEndpoint() packet.Endpoint { return e.remote }

// Interface returns the interface the endpoint is bound to.
func (e *Endpoint) Interface() *netem.Interface { return e.iface }

// Sim returns the simulator.
func (e *Endpoint) Sim() *sim.Simulator { return e.sim }

// Config returns the endpoint configuration (after defaulting).
func (e *Endpoint) Config() Config { return e.cfg }

// SetHooks replaces the hook set; intended to be called before the handshake
// completes (listeners call it from their accept callback).
func (e *Endpoint) SetHooks(h Hooks) {
	if h == nil {
		h = NopHooks{}
	}
	e.hooks = h
}

// Stats returns a copy of the endpoint counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// Err returns the terminal error, if any.
func (e *Endpoint) Err() error { return e.err }

// EffectiveMSS returns the MSS in use (minimum of ours and the peer's).
func (e *Endpoint) EffectiveMSS() int { return minInt(e.cfg.MSS, e.peerMSS) }

// Cwnd returns the congestion window in bytes.
func (e *Endpoint) Cwnd() int { return e.ctrl.Cwnd() }

// Controller returns the congestion controller (the MPTCP layer uses it for
// Mechanisms 2 and 4).
func (e *Endpoint) Controller() cc.Controller { return e.ctrl }

// SetController replaces the congestion controller. It is intended to be
// called right after a passive open is accepted, before any data has been
// exchanged (the MPTCP listener installs the connection's coupled controller
// this way).
func (e *Endpoint) SetController(ctrl cc.Controller) {
	if ctrl != nil {
		e.ctrl = ctrl
	}
}

// ControllerConfig returns the congestion-control parameters derived from the
// endpoint configuration, for callers constructing a replacement controller.
func (e *Endpoint) ControllerConfig() cc.Config { return cc.Config{MSS: e.cfg.MSS} }

// SRTT returns the smoothed round-trip time estimate.
func (e *Endpoint) SRTT() time.Duration {
	if e.srtt == 0 {
		return e.cfg.InitialRTO / 2
	}
	return e.srtt
}

// BaseRTT returns the minimum RTT observed (the propagation estimate used by
// Mechanism 4's cwnd capping).
func (e *Endpoint) BaseRTT() time.Duration {
	if e.baseRTT == 0 {
		return e.SRTT()
	}
	return e.baseRTT
}

// RTO returns the current retransmission timeout.
func (e *Endpoint) RTO() time.Duration { return e.backedOffRTO() }

// BytesInFlight returns the number of un-acknowledged sequence-space bytes.
func (e *Endpoint) BytesInFlight() int { return int(e.sndNxt.DiffFrom(e.sndUna)) }

// RelativeSndUna returns how many payload bytes of ours the peer has
// cumulatively acknowledged (the subflow-level acknowledgement point as an
// offset from the first payload byte).
func (e *Endpoint) RelativeSndUna() uint32 {
	d := e.sndUna.DiffFrom(e.iss.Add(1))
	if d < 0 {
		return 0
	}
	return uint32(d)
}

// RelativeRcvNxt returns how many in-order payload bytes have been received
// from the peer (offset from the peer's first payload byte).
func (e *Endpoint) RelativeRcvNxt() uint32 {
	d := e.rcvNxt.DiffFrom(e.irs.Add(1))
	if d < 0 {
		return 0
	}
	return uint32(d)
}

// QueuedPayloadBytes returns how many payload bytes have been queued for
// transmission so far (sent or not); the MPTCP layer uses it to compute the
// subflow-relative offset of the next chunk it hands down.
func (e *Endpoint) QueuedPayloadBytes() uint64 { return e.queuedPayloadTotal }

// PeerWindowScale returns the window-scale shift negotiated by the peer.
func (e *Endpoint) PeerWindowScale() uint8 { return e.peerWndShift }

// ISS returns our initial sequence number.
func (e *Endpoint) ISS() packet.SeqNum { return e.iss }

// IRS returns the peer's initial sequence number.
func (e *Endpoint) IRS() packet.SeqNum { return e.irs }

// PeerWindow returns the peer's advertised receive window in bytes.
func (e *Endpoint) PeerWindow() int { return e.sndWnd }

// IsEstablished reports whether the connection is in a state that can carry
// data.
func (e *Endpoint) IsEstablished() bool {
	switch e.state {
	case StateEstablished, StateCloseWait, StateFinWait1, StateFinWait2:
		return true
	default:
		return false
	}
}

// SendSpace returns how many payload bytes the endpoint could transmit right
// now given its congestion window, the peer window (unless connection-level
// flow control is in effect) and in-flight data.
func (e *Endpoint) SendSpace() int {
	if !e.IsEstablished() && e.state != StateSynSent && e.state != StateSynReceived {
		return 0
	}
	allowance := e.ctrl.Cwnd() + e.recoveryInfl - e.BytesInFlight()
	if !e.cfg.ConnectionLevelWindow {
		wndSpace := e.sndWnd - e.BytesInFlight()
		if wndSpace < allowance {
			allowance = wndSpace
		}
	}
	if allowance < 0 {
		allowance = 0
	}
	return allowance
}

// SendBufferSpace returns how many more payload bytes Write will accept.
func (e *Endpoint) SendBufferSpace() int {
	limit := e.effectiveSendBuf()
	space := limit - e.queuedBytes
	if space < 0 {
		space = 0
	}
	return space
}

// QueuedBytes returns payload bytes held in the send path (sent-unacked plus
// unsent) — the sender-side memory footprint used by the Fig. 5 experiment.
func (e *Endpoint) QueuedBytes() int { return e.queuedBytes }

// ReceiveQueuedBytes returns payload bytes held in the receive path (in-order
// unread plus out-of-order).
func (e *Endpoint) ReceiveQueuedBytes() int {
	n := e.recvOfo.Bytes()
	if e.recvQueue != nil {
		n += e.recvQueue.Len()
	}
	return n
}

func (e *Endpoint) effectiveSendBuf() int {
	if !e.cfg.AutoTuneBuffers {
		return e.cfg.SendBufBytes
	}
	// Autotuning: allow roughly two congestion windows of data, within the
	// configured maximum.
	want := 2 * e.ctrl.Cwnd()
	if want < 16<<10 {
		want = 16 << 10
	}
	return minInt(want, e.cfg.SendBufBytes)
}

// ---------------------------------------------------------------------------
// Application API (plain TCP)
// ---------------------------------------------------------------------------

// Write queues application data for transmission and returns how many bytes
// were accepted (bounded by send-buffer space). It never blocks.
func (e *Endpoint) Write(data []byte) int {
	if e.state == StateClosed || e.finQueued || e.err != nil {
		return 0
	}
	space := e.SendBufferSpace()
	if space <= 0 {
		return 0
	}
	if len(data) > space {
		data = data[:space]
	}
	mss := e.EffectiveMSS()
	accepted := len(data)
	// One copy into the send queue; chunks reference MSS-sized ranges of it.
	off := e.sndBuf.TailOffset()
	e.sndBuf.Append(data)
	for n := accepted; n > 0; {
		l := minInt(mss, n)
		c := e.newChunk()
		c.payOff, c.payLen = off, l
		e.enqueueChunk(c)
		off += uint64(l)
		n -= l
	}
	e.output()
	return accepted
}

// admitChunk runs the shared admission test for a pre-segmented chunk and,
// when the payload is accepted, appends it to the send buffer and returns a
// fresh chunk referencing it. The buffer-space test deliberately lets a
// chunk through when both queues are empty so a sender can always make
// progress (the MPTCP layer sizes chunks to the connection-level window).
func (e *Endpoint) admitChunk(payload []byte) (*chunk, bool) {
	if e.state == StateClosed || e.finQueued || e.err != nil {
		return nil, false
	}
	if len(payload) > e.SendBufferSpace() && len(e.sendQueue)+len(e.retransQ) > 0 {
		return nil, false
	}
	off := e.sndBuf.TailOffset()
	e.sndBuf.Append(payload)
	c := e.newChunk()
	c.payOff, c.payLen = off, len(payload)
	return c, true
}

// SendChunk queues exactly one pre-segmented chunk of payload with its
// accompanying options (the MPTCP data path). It returns false if the chunk
// does not fit the send buffer. Ownership of the option objects transfers to
// the endpoint: they are recycled once the chunk is fully acknowledged, so
// callers must not retain them.
func (e *Endpoint) SendChunk(payload []byte, opts []packet.Option) bool {
	c, ok := e.admitChunk(payload)
	if !ok {
		return false
	}
	c.opts = append(c.opts[:0], opts...)
	c.ownsOpts = len(opts) > 0
	e.enqueueChunk(c)
	e.output()
	return true
}

// SendChunkWithOpt is SendChunk for the common single-option case (a data
// chunk carrying its DSS mapping); it avoids materializing an option slice
// per chunk. opt may be nil. Ownership of opt transfers to the endpoint in
// all cases: on success it is recycled when the chunk's retransmission
// lifetime ends, on failure immediately — callers must not touch the
// option after the call either way.
func (e *Endpoint) SendChunkWithOpt(payload []byte, opt packet.Option) bool {
	c, ok := e.admitChunk(payload)
	if !ok {
		if d, isDSS := opt.(*packet.DSSOption); isDSS {
			e.recycleDSS(d)
		}
		return false
	}
	if opt != nil {
		c.opts = append(c.opts[:0], opt)
		c.ownsOpts = true
	}
	e.enqueueChunk(c)
	e.output()
	return true
}

// Read removes and returns up to max bytes of in-order received data (plain
// TCP applications). It returns nil when nothing is buffered.
func (e *Endpoint) Read(max int) []byte {
	if e.recvQueue == nil || e.recvQueue.Len() == 0 {
		return nil
	}
	data := e.recvQueue.Pop(max)
	e.maybeSendWindowUpdate()
	return data
}

// ReadableBytes returns the number of bytes Read would return.
func (e *Endpoint) ReadableBytes() int {
	if e.recvQueue == nil {
		return 0
	}
	return e.recvQueue.Len()
}

// EOF reports whether the peer has closed its sending direction and all data
// has been read.
func (e *Endpoint) EOF() bool {
	return e.finReceived && (e.recvQueue == nil || e.recvQueue.Len() == 0)
}

// Close closes the sending direction: a FIN is queued after any pending data.
func (e *Endpoint) Close() {
	if e.finQueued || e.state == StateClosed {
		return
	}
	e.finQueued = true
	fin := e.newChunk()
	fin.fin, fin.payOff = true, e.sndBuf.TailOffset()
	e.enqueueChunk(fin)
	e.output()
}

// Abort sends a RST and tears the connection down immediately.
func (e *Endpoint) Abort() {
	if e.state == StateClosed {
		return
	}
	rst := e.makeSegment(packet.FlagRST|packet.FlagACK, e.sndNxt, nil, nil)
	e.sendSegment(rst, false)
	e.teardown(ErrClosed)
}

// SendAck emits an immediate pure acknowledgement (the MPTCP layer uses it to
// push DATA_ACK updates and DATA_FIN without waiting for data).
func (e *Endpoint) SendAck() {
	if e.state == StateClosed || e.state == StateSynSent {
		return
	}
	e.cancelDelayedAck()
	seg := e.makeSegment(packet.FlagACK, e.sndNxt, nil, nil)
	e.sendSegment(seg, false)
}

// SendReset aborts only this endpoint with a RST without reporting an
// application error (used when MPTCP resets a single subflow, §3.4).
func (e *Endpoint) SendReset() {
	if e.state == StateClosed {
		return
	}
	rst := e.makeSegment(packet.FlagRST|packet.FlagACK, e.sndNxt, nil, nil)
	e.sendSegment(rst, false)
	e.teardown(nil)
}

// ---------------------------------------------------------------------------
// Internal helpers shared across files
// ---------------------------------------------------------------------------

func (e *Endpoint) setState(s State) {
	if s == e.state {
		return
	}
	old := e.state
	e.state = s
	e.hooks.OnStateChange(e, old, s)
	if s == StateEstablished && e.OnEstablished != nil {
		e.OnEstablished()
	}
}

func (e *Endpoint) enqueueChunk(c *chunk) {
	e.sendQueue = append(e.sendQueue, c)
	e.queuedBytes += c.payLen
	e.queuedPayloadTotal += uint64(c.payLen)
}

// popChunk removes and returns the head of a chunk queue via the shared
// compacting drain (see buffer.CompactPrefix); batch drains compact once
// for the whole batch instead.
func popChunk(q []*chunk) ([]*chunk, *chunk) {
	c := q[0]
	return buffer.CompactPrefix(q, 1), c
}

// chunkFreeCap and dssFreeCap bound the per-endpoint free lists; a 256 KiB
// send buffer holds at most ~180 MSS chunks, so these caps cover the deepest
// configured windows with headroom while keeping idle endpoints small.
const (
	chunkFreeCap = 512
	dssFreeCap   = 512
)

// newChunk returns a zeroed chunk, recycled from the endpoint's free list
// when possible (the opts slice retains its capacity across reuses).
func (e *Endpoint) newChunk() *chunk {
	if n := len(e.chunkFree); n > 0 {
		c := e.chunkFree[n-1]
		e.chunkFree[n-1] = nil
		e.chunkFree = e.chunkFree[:n-1]
		return c
	}
	return &chunk{}
}

// freeChunk ends a chunk's retransmission lifetime: option objects the chunk
// owns go back to their free lists, and the chunk itself is zeroed and
// retained for reuse. Callers must not touch the chunk afterwards.
func (e *Endpoint) freeChunk(c *chunk) {
	if c.ownsOpts {
		for _, o := range c.opts {
			if d, ok := o.(*packet.DSSOption); ok {
				e.recycleDSS(d)
			}
		}
	}
	for i := range c.opts {
		c.opts[i] = nil
	}
	opts := c.opts[:0]
	*c = chunk{opts: opts}
	if len(e.chunkFree) < chunkFreeCap {
		e.chunkFree = append(e.chunkFree, c)
	}
}

// NewDSSOption returns a zeroed DSS option from the endpoint's free list.
// Ownership transfers to the endpoint when the option is attached to a chunk
// via SendChunkWithOpt; the endpoint recycles it once the chunk's data has
// been fully acknowledged. Callers must not retain the pointer beyond the
// SendChunkWithOpt call.
func (e *Endpoint) NewDSSOption() *packet.DSSOption {
	if n := len(e.dssFree); n > 0 {
		d := e.dssFree[n-1]
		e.dssFree[n-1] = nil
		e.dssFree = e.dssFree[:n-1]
		return d
	}
	return &packet.DSSOption{}
}

func (e *Endpoint) recycleDSS(d *packet.DSSOption) {
	*d = packet.DSSOption{}
	if len(e.dssFree) < dssFreeCap {
		e.dssFree = append(e.dssFree, d)
	}
}

// teardown releases host resources and reports the terminal error.
func (e *Endpoint) teardown(err error) {
	if e.state == StateClosed && e.err != nil {
		return
	}
	if err != nil && e.err == nil {
		e.err = err
	}
	e.rtoTimer.Stop()
	e.persistTimer.Stop()
	e.delackTimer.Stop()
	if e.timeWaitTimer != nil {
		e.timeWaitTimer.Stop()
	}
	e.host.Unregister(e.local, e.remote)
	e.setState(StateClosed)
	if e.OnClosed != nil {
		cb := e.OnClosed
		e.OnClosed = nil
		cb(err)
	}
}

func (e *Endpoint) String() string {
	return fmt.Sprintf("tcp(%v->%v %v)", e.local, e.remote, e.state)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
