package tcp

import (
	"bytes"
	"testing"
	"time"

	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/sim"
)

// testNet builds a single-path client/server topology.
func testNet(t *testing.T, cfg netem.LinkConfig) *netem.Network {
	t.Helper()
	s := sim.New(1)
	return netem.Build(s, netem.PathSpec{Name: "p0", Config: netem.PathConfig{AB: cfg, BA: cfg}})
}

// runTransfer sends total bytes from client to server over a fresh
// connection and returns the completion time and the received data length.
func runTransfer(t *testing.T, n *netem.Network, cfg Config, total int, deadline time.Duration) (time.Duration, int) {
	t.Helper()
	received := 0
	var done time.Duration

	_, err := Listen(n.Server, 80, cfg, func(ep *Endpoint, _ *packet.Segment) {
		ep.OnReadable = func() {
			for {
				data := ep.Read(64 << 10)
				if len(data) == 0 {
					break
				}
				received += len(data)
			}
			if received >= total && done == 0 {
				done = n.Sim.Now()
			}
		}
	})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}

	client, err := Dial(n.Client.Interfaces()[0], packet.Endpoint{Addr: n.ServerAddr(0), Port: 80}, cfg, nil)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	sent := 0
	pump := func() {
		for sent < total {
			chunk := minInt(32<<10, total-sent)
			w := client.Write(bytes.Repeat([]byte{byte(sent)}, chunk))
			if w == 0 {
				break
			}
			sent += w
		}
	}
	client.OnEstablished = pump
	client.OnWritable = pump

	if err := n.Sim.RunUntil(deadline); err != nil {
		t.Fatalf("sim: %v", err)
	}
	return done, received
}

func TestHandshakeAndTransfer(t *testing.T) {
	n := testNet(t, netem.LinkConfig{RateBps: netem.Mbps(10), Delay: 10 * time.Millisecond, QueueBytes: 64 << 10})
	done, received := runTransfer(t, n, Config{}, 500<<10, 10*time.Second)
	if received != 500<<10 {
		t.Fatalf("received %d bytes, want %d", received, 500<<10)
	}
	if done == 0 {
		t.Fatal("transfer did not complete")
	}
	// 500 KB over 10 Mbps is ~0.4 s plus slow start; allow generous slack.
	if done > 3*time.Second {
		t.Fatalf("transfer too slow: %v", done)
	}
}

func TestThroughputApproachesLinkRate(t *testing.T) {
	link := netem.LinkConfig{RateBps: netem.Mbps(8), Delay: 10 * time.Millisecond, QueueBytes: 80 << 10}
	n := testNet(t, link)
	total := 12 << 20
	done, received := runTransfer(t, n, Config{SendBufBytes: 512 << 10, RecvBufBytes: 512 << 10}, total, 60*time.Second)
	if received < total {
		t.Fatalf("received %d of %d bytes", received, total)
	}
	rate := float64(total*8) / done.Seconds() / 1e6
	if rate < 6.0 {
		t.Fatalf("throughput %.2f Mbps, want at least 6 Mbps on an 8 Mbps link", rate)
	}
}

func TestTransferWithLoss(t *testing.T) {
	link := netem.LinkConfig{RateBps: netem.Mbps(10), Delay: 10 * time.Millisecond, QueueBytes: 128 << 10, LossRate: 0.01}
	n := testNet(t, link)
	total := 1 << 20
	done, received := runTransfer(t, n, Config{}, total, 60*time.Second)
	if received < total {
		t.Fatalf("received %d of %d bytes under 1%% loss", received, total)
	}
	if done == 0 {
		t.Fatal("transfer did not complete")
	}
}

func TestSmallReceiveWindowLimitsThroughput(t *testing.T) {
	// 2 Mbps, 150 ms RTT "3G" path: BDP is ~37.5 KB. A 16 KB receive buffer
	// must keep throughput well below the link rate.
	link := netem.LinkConfig{RateBps: netem.Mbps(2), Delay: 75 * time.Millisecond, QueueBytes: 512 << 10}
	n := testNet(t, link)
	total := 256 << 10
	cfg := Config{RecvBufBytes: 16 << 10, SendBufBytes: 256 << 10, WindowScale: -1}
	done, received := runTransfer(t, n, cfg, total, 60*time.Second)
	if received < total {
		t.Fatalf("received %d of %d bytes", received, total)
	}
	rate := float64(total*8) / done.Seconds() / 1e6
	// Window-limited throughput: 16 KB per 150 ms RTT is ~0.87 Mbps.
	if rate > 1.4 {
		t.Fatalf("throughput %.2f Mbps should be window-limited below 1.4 Mbps", rate)
	}
}

func TestGracefulClose(t *testing.T) {
	n := testNet(t, netem.LinkConfig{RateBps: netem.Mbps(10), Delay: 5 * time.Millisecond, QueueBytes: 64 << 10})
	cfg := Config{}

	var serverEp *Endpoint
	_, err := Listen(n.Server, 80, cfg, func(ep *Endpoint, _ *packet.Segment) {
		serverEp = ep
		ep.OnReadable = func() {
			for len(ep.Read(4096)) > 0 {
			}
			if ep.EOF() {
				ep.Close()
			}
		}
	})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	client, err := Dial(n.Client.Interfaces()[0], packet.Endpoint{Addr: n.ServerAddr(0), Port: 80}, cfg, nil)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	client.OnEstablished = func() {
		client.Write([]byte("hello, multipath world"))
		client.Close()
	}
	if err := n.Sim.RunUntil(30 * time.Second); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if client.State() != StateClosed {
		t.Fatalf("client state = %v, want CLOSED", client.State())
	}
	if serverEp == nil || serverEp.State() != StateClosed {
		t.Fatalf("server state = %v, want CLOSED", serverEp.State())
	}
	if client.Err() != nil {
		t.Fatalf("client terminal error: %v", client.Err())
	}
}

func TestConnectionRefusedRST(t *testing.T) {
	n := testNet(t, netem.LinkConfig{RateBps: netem.Mbps(10), Delay: 5 * time.Millisecond})
	client, err := Dial(n.Client.Interfaces()[0], packet.Endpoint{Addr: n.ServerAddr(0), Port: 9999}, Config{}, nil)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := n.Sim.RunUntil(5 * time.Second); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if client.State() != StateClosed {
		t.Fatalf("client state = %v, want CLOSED after RST", client.State())
	}
	if client.Err() == nil {
		t.Fatal("expected a terminal error after connection refused")
	}
}

func TestRTTEstimate(t *testing.T) {
	n := testNet(t, netem.LinkConfig{RateBps: netem.Mbps(10), Delay: 25 * time.Millisecond, QueueBytes: 64 << 10})
	done, _ := runTransfer(t, n, Config{}, 64<<10, 10*time.Second)
	if done == 0 {
		t.Fatal("transfer did not complete")
	}
	// RTT is 50 ms propagation plus queueing; the estimate should be in a
	// sane band.
	// (Validated indirectly through completion; direct SRTT access tested in
	// endpoint_more_test.go.)
}
