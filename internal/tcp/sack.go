package tcp

import "mptcpgo/internal/packet"

// Selective acknowledgements (RFC 2018). The receiver reports the ranges it
// holds out of order; the sender uses them to repair multiple losses within a
// window in roughly one round trip instead of one loss per round trip. The
// Linux kernel the paper builds on relies on SACK, and the slow-start
// overshoot on a freshly established subflow makes multi-loss recovery a
// common case for MPTCP.

// recordSackRange merges an out-of-order arrival into the receiver's SACK
// range list.
func (e *Endpoint) recordSackRange(left, right packet.SeqNum) {
	if !left.LessThan(right) {
		return
	}
	merged := packet.SACKBlock{Left: left, Right: right}
	out := e.sackRanges[:0]
	for _, r := range e.sackRanges {
		if r.Right.LessThan(merged.Left) || merged.Right.LessThan(r.Left) {
			out = append(out, r) // disjoint
			continue
		}
		// Overlapping or adjacent: grow the merged block.
		if r.Left.LessThan(merged.Left) {
			merged.Left = r.Left
		}
		if merged.Right.LessThan(r.Right) {
			merged.Right = r.Right
		}
	}
	e.sackRanges = append(out, merged)
	packet.SortSACKBlocks(e.sackRanges)
}

// pruneSackRanges drops ranges that the cumulative acknowledgement has
// covered.
func (e *Endpoint) pruneSackRanges() {
	out := e.sackRanges[:0]
	for _, r := range e.sackRanges {
		if r.Right.LessThanEq(e.rcvNxt) {
			continue
		}
		if r.Left.LessThan(e.rcvNxt) {
			r.Left = e.rcvNxt
		}
		out = append(out, r)
	}
	e.sackRanges = out
}

// sackBlocks returns the blocks to advertise on an outgoing ACK (at most
// three, most recently changed ranges first is approximated by reporting the
// lowest ranges, which is what matters for hole repair). The returned slice
// aliases the endpoint's range list; makeSegment copies it into the
// segment's option arena.
func (e *Endpoint) sackBlocks() []packet.SACKBlock {
	if !e.peerSackOK || len(e.sackRanges) == 0 {
		return nil
	}
	n := len(e.sackRanges)
	if n > 3 {
		n = 3
	}
	return e.sackRanges[:n]
}

// processSack marks retransmission-queue chunks covered by the peer's SACK
// blocks.
func (e *Endpoint) processSack(opt *packet.SACKOption) {
	if opt == nil || len(e.retransQ) == 0 {
		return
	}
	for _, blk := range opt.Blocks {
		for _, c := range e.retransQ {
			if c.sacked {
				continue
			}
			if !c.seq.LessThan(blk.Left) && c.endSeq().LessThanEq(blk.Right) {
				c.sacked = true
			}
		}
	}
}

// retransmitNextHole retransmits the oldest unacknowledged chunk that has not
// been selectively acknowledged and has not yet been repaired in the current
// recovery episode. It returns false when there is nothing (left) to repair.
func (e *Endpoint) retransmitNextHole() bool {
	for _, c := range e.retransQ {
		if c.sacked || c.rtxEpoch == e.recoveryEpoch {
			continue
		}
		if !c.seq.LessThan(e.recoveryEnd) {
			break
		}
		c.rtxEpoch = e.recoveryEpoch
		e.transmitChunk(c, true)
		return true
	}
	return false
}

// highestSacked returns the end of the highest selectively acknowledged
// range, or sndUna when nothing is sacked.
func (e *Endpoint) highestSacked() packet.SeqNum {
	high := e.sndUna
	for _, c := range e.retransQ {
		if c.sacked && high.LessThan(c.endSeq()) {
			high = c.endSeq()
		}
	}
	return high
}

// pipeBytes estimates how much data is still in the network (RFC 6675 "pipe"):
// sacked chunks have left the network, chunks below the highest SACKed range
// that are neither sacked nor retransmitted this episode are presumed lost,
// everything else is presumed in flight.
func (e *Endpoint) pipeBytes() int {
	high := e.highestSacked()
	pipe := 0
	for _, c := range e.retransQ {
		size := int(c.seqLen())
		switch {
		case c.sacked:
			// Delivered; not in the pipe.
		case c.rtxEpoch == e.recoveryEpoch:
			// Retransmitted this episode; in the pipe again.
			pipe += size
		case c.endSeq().LessThanEq(high):
			// Below the highest SACK and never repaired: presumed lost.
		default:
			pipe += size
		}
	}
	return pipe
}

// recoveryTransmit repairs holes while the estimated pipe leaves room under
// the congestion window. This is what keeps a large loss burst from being
// re-blasted into the bottleneck queue all at once.
func (e *Endpoint) recoveryTransmit() {
	if !e.inRecovery {
		return
	}
	mss := e.EffectiveMSS()
	for e.pipeBytes()+mss <= e.ctrl.Cwnd() {
		if !e.retransmitNextHole() {
			break
		}
	}
}

// clearSackState resets per-chunk SACK marks (after a retransmission timeout
// the scoreboard is no longer trustworthy).
func (e *Endpoint) clearSackState() {
	for _, c := range e.retransQ {
		c.sacked = false
	}
}
