// Package probe is the simulator's flight recorder: a low-overhead,
// deterministic observability layer recording typed protocol events,
// per-subflow time-series samples and a per-member counter registry.
//
// Design rules (see DESIGN.md "Observability"):
//
//   - One Recorder per shard, owned by that shard's goroutine. All methods
//     are called synchronously on the shard's simulator; nothing is shared
//     across shards, so worker count cannot affect recorded content.
//   - Storage is keyed by *global* member index and preallocated at
//     construction: per-member ring buffers (flight-recorder semantics —
//     bounded memory, oldest events overwritten), per-member counter sets
//     and per-member sample slices. The steady-state emit path performs no
//     allocation.
//   - Every hook is nil-receiver safe: a nil *Recorder makes Emit, Count and
//     Watch no-ops, so instrumentation sites stay unconditional and cost a
//     single predictable branch when tracing is off.
//   - Events carry sim-time stamps and only *relative* protocol quantities
//     (backoff counts, window sizes, byte counts) — never wire sequence
//     numbers or keys, which are drawn from the shard-shared RNG and would
//     make output depend on how members are partitioned into shards.
//   - The time-series sampler fires at absolute aligned sim times
//     (k·interval), so sample timestamps are invariant across shard layouts.
//     Sampler timer firings are self-counted (TimerEvents) so scenarios can
//     subtract them from the simulator's processed-event total and report
//     the same "events" column with tracing on or off.
package probe

import (
	"time"

	"mptcpgo/internal/sim"
)

// Kind identifies a typed event.
type Kind uint8

// Event kinds. The integer values are not part of the stable output format
// (JSONL uses the names); ordering groups related kinds.
const (
	// Subflow lifecycle.
	KindSubflowSYN Kind = iota
	KindSubflowEstablished
	KindSubflowFailed
	KindSubflowClosed
	// Congestion-control transitions (per subflow).
	KindCCSlowStart
	KindCCAvoidance
	KindCCRecovery
	KindCCAlpha
	// Loss recovery.
	KindRTO
	KindFastRetransmit
	// Connection-level machinery.
	KindReinjection
	KindFallback
	KindAddrRemoved
	KindAddrRestored
	// External actors.
	KindFaultAction
	KindEpochAlloc
	KindStall
	// Workload milestones.
	KindFlowDone
	numKinds
)

var kindNames = [numKinds]string{
	KindSubflowSYN:         "syn",
	KindSubflowEstablished: "established",
	KindSubflowFailed:      "subflow_failed",
	KindSubflowClosed:      "subflow_closed",
	KindCCSlowStart:        "cc_slowstart",
	KindCCAvoidance:        "cc_avoidance",
	KindCCRecovery:         "cc_recovery",
	KindCCAlpha:            "cc_alpha",
	KindRTO:                "rto",
	KindFastRetransmit:     "fast_rtx",
	KindReinjection:        "reinject",
	KindFallback:           "fallback",
	KindAddrRemoved:        "addr_removed",
	KindAddrRestored:       "addr_restored",
	KindFaultAction:        "fault",
	KindEpochAlloc:         "epoch_alloc",
	KindStall:              "stall",
	KindFlowDone:           "flow_done",
}

// String returns the kind's stable name (the JSONL "kind" field).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// NumKinds is the number of defined event kinds.
func NumKinds() int { return int(numKinds) }

// Fault-action codes carried in the A field of KindFaultAction events.
const (
	FaultLinkDown int64 = iota
	FaultLinkUp
	FaultLossOn
	FaultLossOff
	FaultSqueeze
	FaultRestoreRate
	FaultIfaceDown
	FaultIfaceUp
)

// Counter indexes the per-member counter registry.
type Counter uint8

// Registry counters.
const (
	CtrSegments Counter = iota
	CtrSegBytes
	CtrRTOs
	CtrFastRtx
	CtrReinjections
	CtrFallbacks
	CtrSubflowDeaths
	CtrDrops
	CtrEpochCongested
	CtrStallEpisodes
	CtrFaultActions
	NumCounters
)

var counterNames = [NumCounters]string{
	CtrSegments:       "segments",
	CtrSegBytes:       "seg bytes",
	CtrRTOs:           "rtos",
	CtrFastRtx:        "fast rtx",
	CtrReinjections:   "reinject",
	CtrFallbacks:      "fallbacks",
	CtrSubflowDeaths:  "sf deaths",
	CtrDrops:          "drops",
	CtrEpochCongested: "epoch cong",
	CtrStallEpisodes:  "stall eps",
	CtrFaultActions:   "faults",
}

// String returns the counter's column name in the registry table.
func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "unknown"
}

// Event is one typed trace record. It is a fixed-size value (no pointers) so
// rings are flat arrays. Member is the global member index; Conn and Subflow
// are -1 when the event is not connection- or subflow-scoped. A and B are
// kind-specific payloads:
//
//	KindSubflowSYN/Established:  A=address ID, B=1 if join subflow
//	KindSubflowFailed:           A=1 for a transport-level death (RTO limit,
//	                             reset), 0 for an MPTCP option-level failure;
//	                             B=bytes in flight at death
//	KindRTO:                     A=consecutive backoff count, B=backed-off RTO (ns)
//	KindCCAlpha:                 A=alpha*1000 (quantized), B=total cwnd bytes
//	KindReinjection:             A=bytes, B=times the mapping was reinjected
//	KindFallback:                A=reason code
//	KindFaultAction:             A=fault code (Fault*), B=path index
//	KindEpochAlloc:              A=epoch index, B=bottlenecked shard count
//	KindStall:                   A=bytes received at stall entry
//	KindFlowDone:                A=outcome (0 failed, 1 completed, 2 deadline-dropped), B=bytes received
type Event struct {
	At      time.Duration
	Kind    Kind
	Member  int32
	Conn    int32
	Subflow int32
	A, B    int64
}

// Sample is one per-subflow time-series observation.
type Sample struct {
	At         time.Duration
	Member     int32
	Conn       int32
	Subflow    int32
	Cwnd       int64
	Ssthresh   int64
	SRTT       time.Duration
	RTO        time.Duration
	Inflight   int64
	SentBytes  int64
	ReinjBytes int64
	Alpha      float64
}

// SampleFn fills a sample for one watched subflow. The At/Member/Conn/Subflow
// fields are pre-filled by the sampler. Returning false deregisters the
// target (the subflow is gone); the sample is still recorded so timelines end
// with a final observation.
type SampleFn func(*Sample) bool

// Config sizes a Recorder.
type Config struct {
	// EventCap is the per-member ring capacity (default 2048). When a ring
	// is full the oldest event is overwritten and the member's dropped
	// counter incremented — flight-recorder semantics.
	EventCap int
	// SampleInterval is the time-series cadence; zero disables sampling.
	SampleInterval time.Duration
	// SampleCap bounds the per-member sample count (default 4096); further
	// samples are counted as dropped.
	SampleCap int
}

func (c Config) withDefaults() Config {
	if c.EventCap <= 0 {
		c.EventCap = 2048
	}
	if c.SampleCap <= 0 {
		c.SampleCap = 4096
	}
	return c
}

// ring is one member's event buffer.
type ring struct {
	buf     []Event
	start   int
	n       int
	dropped uint64
}

func (r *ring) push(e Event) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = e
		r.n++
		return
	}
	r.buf[r.start] = e
	r.start = (r.start + 1) % len(r.buf)
	r.dropped++
}

type target struct {
	member  int32
	conn    int32
	subflow int32
	fn      SampleFn
}

// Recorder is one shard's flight recorder. See the package comment for the
// ownership and determinism rules.
type Recorder struct {
	sim *sim.Simulator
	cfg Config
	lo  int

	rings          []ring
	counters       [][NumCounters]uint64
	samples        [][]Sample
	samplesDropped []uint64
	frozen         []bool

	targets     []target
	timer       *sim.Timer
	done        func() bool
	started     bool
	timerEvents uint64
}

// NewRecorder builds a recorder for members [lo, lo+members) on the given
// simulator. All per-member storage is preallocated here.
func NewRecorder(s *sim.Simulator, lo, members int, cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	r := &Recorder{
		sim:            s,
		cfg:            cfg,
		lo:             lo,
		rings:          make([]ring, members),
		counters:       make([][NumCounters]uint64, members),
		samples:        make([][]Sample, members),
		samplesDropped: make([]uint64, members),
		frozen:         make([]bool, members),
	}
	for i := range r.rings {
		r.rings[i].buf = make([]Event, cfg.EventCap)
	}
	r.timer = s.NewTimer(r.tick)
	return r
}

// Members returns the number of members the recorder covers.
func (r *Recorder) Members() int {
	if r == nil {
		return 0
	}
	return len(r.rings)
}

// Lo returns the global index of the recorder's first member.
func (r *Recorder) Lo() int {
	if r == nil {
		return 0
	}
	return r.lo
}

// SampleInterval returns the configured time-series cadence (zero when
// sampling is disabled).
func (r *Recorder) SampleInterval() time.Duration {
	if r == nil {
		return 0
	}
	return r.cfg.SampleInterval
}

// Emit records one event for the given global member. Nil-receiver safe and
// allocation-free.
func (r *Recorder) Emit(member int, k Kind, conn, subflow int32, a, b int64) {
	if r == nil {
		return
	}
	i := member - r.lo
	if i < 0 || i >= len(r.rings) || r.frozen[i] {
		return
	}
	r.rings[i].push(Event{
		At: r.sim.Now(), Kind: k,
		Member: int32(member), Conn: conn, Subflow: subflow,
		A: a, B: b,
	})
}

// Count adds delta to one of the member's registry counters. Nil-receiver
// safe and allocation-free.
func (r *Recorder) Count(member int, c Counter, delta uint64) {
	if r == nil {
		return
	}
	i := member - r.lo
	if i < 0 || i >= len(r.counters) || r.frozen[i] {
		return
	}
	r.counters[i][c] += delta
}

// Freeze permanently stops recording for one global member: further Emits,
// Counts and sampler ticks for it are dropped. Scenarios whose shards run
// until the *slowest* member finishes call this at each member's own
// completion time, so a member's recorded stream is a function of (seed,
// member index) alone — independent of how members are partitioned into
// shards and of how long its shard keeps simulating for the others.
func (r *Recorder) Freeze(member int) {
	if r == nil {
		return
	}
	i := member - r.lo
	if i < 0 || i >= len(r.frozen) {
		return
	}
	r.frozen[i] = true
}

// CountFinal is Count for collect-time folds (wire drop totals read from
// link statistics after the shard run): it bypasses Freeze, because the
// folded value is itself frozen at the member's completion.
func (r *Recorder) CountFinal(member int, c Counter, delta uint64) {
	if r == nil {
		return
	}
	i := member - r.lo
	if i < 0 || i >= len(r.counters) {
		return
	}
	r.counters[i][c] += delta
}

// Watch registers a sampling target. Targets are visited in registration
// order on every sampler tick — registration happens on the simulator
// goroutine, so the order is deterministic. If the sampler is running but its
// timer has gone idle (all previous targets deregistered), Watch re-arms it.
func (r *Recorder) Watch(member int, conn, subflow int32, fn SampleFn) {
	if r == nil || r.cfg.SampleInterval <= 0 {
		return
	}
	r.targets = append(r.targets, target{member: int32(member), conn: conn, subflow: subflow, fn: fn})
	if r.started && !r.timer.Pending() {
		r.armNextTick()
	}
}

// StartSampler arms the time-series timer. done, when non-nil, is consulted
// on every tick: once it reports true the sampler stops rescheduling, so the
// event queue can drain exactly as it would without tracing.
func (r *Recorder) StartSampler(done func() bool) {
	if r == nil || r.cfg.SampleInterval <= 0 || r.started {
		return
	}
	r.done = done
	r.started = true
	if len(r.targets) > 0 {
		r.armNextTick()
	}
}

// armNextTick schedules the next tick at the next absolute multiple of the
// sample interval, so timestamps are aligned regardless of when targets
// appear.
func (r *Recorder) armNextTick() {
	iv := r.cfg.SampleInterval
	next := (r.sim.Now()/iv + 1) * iv
	r.timer.Reset(next - r.sim.Now())
}

func (r *Recorder) tick() {
	r.timerEvents++
	if r.done != nil && r.done() {
		return
	}
	now := r.sim.Now()
	live := r.targets[:0]
	for _, t := range r.targets {
		i := int(t.member) - r.lo
		if i < 0 || i >= len(r.samples) || r.frozen[i] {
			continue
		}
		s := Sample{At: now, Member: t.member, Conn: t.conn, Subflow: t.subflow}
		keep := t.fn(&s)
		if len(r.samples[i]) < r.cfg.SampleCap {
			r.samples[i] = append(r.samples[i], s)
		} else {
			r.samplesDropped[i]++
		}
		if keep {
			live = append(live, t)
		}
	}
	// Clear deregistered tail slots so closures are not retained.
	for i := len(live); i < len(r.targets); i++ {
		r.targets[i] = target{}
	}
	r.targets = live
	if len(r.targets) > 0 {
		r.armNextTick()
	}
}

// TimerEvents returns how many sampler timer firings the recorder has
// processed; scenarios subtract it from the simulator's processed-event
// count so reported event totals match the untraced run.
func (r *Recorder) TimerEvents() uint64 {
	if r == nil {
		return 0
	}
	return r.timerEvents
}

// AppendEvents appends member's recorded events (oldest first) to dst and
// returns the extended slice. member is a global index.
func (r *Recorder) AppendEvents(dst []Event, member int) []Event {
	if r == nil {
		return dst
	}
	i := member - r.lo
	if i < 0 || i >= len(r.rings) {
		return dst
	}
	rg := &r.rings[i]
	for k := 0; k < rg.n; k++ {
		dst = append(dst, rg.buf[(rg.start+k)%len(rg.buf)])
	}
	return dst
}

// EventCount returns how many events member currently holds (bounded by the
// ring capacity).
func (r *Recorder) EventCount(member int) int {
	if r == nil {
		return 0
	}
	i := member - r.lo
	if i < 0 || i >= len(r.rings) {
		return 0
	}
	return r.rings[i].n
}

// Dropped returns how many of member's events were overwritten.
func (r *Recorder) Dropped(member int) uint64 {
	if r == nil {
		return 0
	}
	i := member - r.lo
	if i < 0 || i >= len(r.rings) {
		return 0
	}
	return r.rings[i].dropped
}

// Counters returns member's counter registry values.
func (r *Recorder) Counters(member int) [NumCounters]uint64 {
	if r == nil {
		return [NumCounters]uint64{}
	}
	i := member - r.lo
	if i < 0 || i >= len(r.counters) {
		return [NumCounters]uint64{}
	}
	return r.counters[i]
}

// Samples returns member's time series (sorted by time; one entry per watched
// subflow per tick). The slice is owned by the recorder.
func (r *Recorder) Samples(member int) []Sample {
	if r == nil {
		return nil
	}
	i := member - r.lo
	if i < 0 || i >= len(r.samples) {
		return nil
	}
	return r.samples[i]
}
