package probe

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// eventJSON is the stable JSONL wire form of an Event.
type eventJSON struct {
	T       int64  `json:"t_ns"`
	Kind    string `json:"kind"`
	Member  int32  `json:"member"`
	Conn    int32  `json:"conn"`
	Subflow int32  `json:"subflow"`
	A       int64  `json:"a"`
	B       int64  `json:"b"`
}

// AppendJSONL appends one JSONL line per event to dst and returns the
// extended buffer. Lines are emitted in slice order; callers pass events in
// member-ascending, time-ascending order so output is deterministic.
func AppendJSONL(dst []byte, events []Event) []byte {
	for _, e := range events {
		line, err := json.Marshal(eventJSON{
			T: int64(e.At), Kind: e.Kind.String(),
			Member: e.Member, Conn: e.Conn, Subflow: e.Subflow,
			A: e.A, B: e.B,
		})
		if err != nil {
			continue
		}
		dst = append(dst, line...)
		dst = append(dst, '\n')
	}
	return dst
}

// ParseJSONL decodes a JSONL event stream produced by AppendJSONL.
func ParseJSONL(data []byte) ([]Event, error) {
	var out []Event
	for lineNo, line := range bytes.Split(data, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ej eventJSON
		if err := json.Unmarshal(line, &ej); err != nil {
			return nil, fmt.Errorf("events line %d: %w", lineNo+1, err)
		}
		k, ok := KindFromString(ej.Kind)
		if !ok {
			return nil, fmt.Errorf("events line %d: unknown kind %q", lineNo+1, ej.Kind)
		}
		out = append(out, Event{
			At: time.Duration(ej.T), Kind: k,
			Member: ej.Member, Conn: ej.Conn, Subflow: ej.Subflow,
			A: ej.A, B: ej.B,
		})
	}
	return out, nil
}

// KindFromString maps a stable kind name back to its Kind.
func KindFromString(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// CountKinds tallies events per kind.
func CountKinds(events []Event) [numKinds]uint64 {
	var out [numKinds]uint64
	for _, e := range events {
		if int(e.Kind) < len(out) {
			out[e.Kind]++
		}
	}
	return out
}

// TailRun describes one subflow's final run of consecutive retransmission
// timeouts: the first RTO of the trailing backoff run through the last RTO,
// plus that timeout's backed-off RTO (the earliest moment the retransmission
// could have gone out).
type TailRun struct {
	Member, Conn, Subflow int32
	Start, Last           time.Duration
	LastRTO               time.Duration
	Count                 int
}

// Tail is the run's drain-tail duration.
func (t TailRun) Tail() time.Duration { return t.Last - t.Start + t.LastRTO }

// DrainTails extracts every subflow's trailing RTO run from an event stream,
// sorted by (member, conn, subflow). Subflows with no RTO events are absent.
func DrainTails(events []Event) []TailRun {
	type key struct {
		member, conn, subflow int32
	}
	type run struct {
		TailRun
		prevA int64
	}
	runs := make(map[key]*run)
	order := make([]key, 0, 8)
	for _, e := range events {
		if e.Kind != KindRTO {
			continue
		}
		k := key{e.Member, e.Conn, e.Subflow}
		r := runs[k]
		if r == nil {
			r = &run{TailRun: TailRun{Member: e.Member, Conn: e.Conn, Subflow: e.Subflow}}
			runs[k] = r
			order = append(order, k)
		}
		if r.prevA == 0 || e.A <= r.prevA {
			// Backoff counter reset (an ACK intervened): a new run starts.
			r.Start = e.At
			r.Count = 0
		}
		r.Last = e.At
		r.LastRTO = time.Duration(e.B)
		r.prevA = e.A
		r.Count++
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.member != b.member {
			return a.member < b.member
		}
		if a.conn != b.conn {
			return a.conn < b.conn
		}
		return a.subflow < b.subflow
	})
	out := make([]TailRun, 0, len(order))
	for _, k := range order {
		out = append(out, runs[k].TailRun)
	}
	return out
}

// DrainTail measures the RTO drain tail in an event stream: the maximum
// TailRun duration across subflows — how long completion trails the last
// useful delivery because senders sit in exponential backoff (the ROADMAP
// "16 KB flow takes 20+ s after deep loss" number).
func DrainTail(events []Event) time.Duration {
	var max time.Duration
	for _, r := range DrainTails(events) {
		if tail := r.Tail(); tail > max {
			max = tail
		}
	}
	return max
}

// FaultName renders the A payload of a KindFaultAction event.
func FaultName(code int64) string {
	names := [...]string{
		FaultLinkDown:    "link_down",
		FaultLinkUp:      "link_up",
		FaultLossOn:      "loss_on",
		FaultLossOff:     "loss_off",
		FaultSqueeze:     "squeeze",
		FaultRestoreRate: "restore_rate",
		FaultIfaceDown:   "iface_down",
		FaultIfaceUp:     "iface_up",
	}
	if code >= 0 && int(code) < len(names) {
		return names[code]
	}
	return fmt.Sprintf("fault_%d", code)
}

// StallEpisodes counts watchdog stall-entry events.
func StallEpisodes(events []Event) int {
	n := 0
	for _, e := range events {
		if e.Kind == KindStall {
			n++
		}
	}
	return n
}
