package probe

import (
	"testing"
	"time"

	"mptcpgo/internal/sim"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Emit(0, KindRTO, 0, 0, 1, 2)
	r.Count(0, CtrRTOs, 1)
	r.Watch(0, 0, 0, func(*Sample) bool { return true })
	r.StartSampler(nil)
	if r.Members() != 0 || r.TimerEvents() != 0 || r.EventCount(0) != 0 {
		t.Fatal("nil recorder reported non-zero state")
	}
	if got := r.AppendEvents(nil, 0); got != nil {
		t.Fatalf("nil recorder appended events: %v", got)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	s := sim.New(1)
	r := NewRecorder(s, 4, 2, Config{EventCap: 4})
	for i := 0; i < 10; i++ {
		r.Emit(5, KindRTO, 0, 0, int64(i), 0)
	}
	evs := r.AppendEvents(nil, 5)
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := int64(6 + i); e.A != want {
			t.Fatalf("event %d: A=%d, want %d (oldest overwritten)", i, e.A, want)
		}
		if e.Member != 5 {
			t.Fatalf("event %d: member=%d, want 5", i, e.Member)
		}
	}
	if r.Dropped(5) != 6 {
		t.Fatalf("dropped=%d, want 6", r.Dropped(5))
	}
	if r.EventCount(4) != 0 {
		t.Fatal("untouched member has events")
	}
}

func TestEmitDoesNotAllocate(t *testing.T) {
	s := sim.New(1)
	r := NewRecorder(s, 0, 1, Config{EventCap: 64})
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(0, KindFastRetransmit, 1, 2, 3, 4)
		r.Count(0, CtrFastRtx, 1)
	})
	if allocs != 0 {
		t.Fatalf("Emit+Count allocated %.1f per op, want 0", allocs)
	}
}

func TestSamplerAlignedAndBounded(t *testing.T) {
	s := sim.New(1)
	r := NewRecorder(s, 0, 1, Config{SampleInterval: 100 * time.Millisecond})
	alive := true
	// Register at a non-aligned time: first sample must land on the next
	// absolute multiple of the interval.
	s.Schedule(37*time.Millisecond, func() {
		r.Watch(0, 1, 2, func(out *Sample) bool {
			out.Cwnd = 42
			return alive
		})
	})
	s.Schedule(450*time.Millisecond, func() { alive = false })
	r.StartSampler(nil)
	s.Run()
	got := r.Samples(0)
	if len(got) != 5 {
		t.Fatalf("got %d samples, want 5 (100..500ms)", len(got))
	}
	for i, smp := range got {
		want := time.Duration(i+1) * 100 * time.Millisecond
		if smp.At != want {
			t.Fatalf("sample %d at %v, want %v", i, smp.At, want)
		}
		if smp.Cwnd != 42 || smp.Conn != 1 || smp.Subflow != 2 {
			t.Fatalf("sample %d not filled: %+v", i, smp)
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("sampler left %d events pending after last target died", s.Pending())
	}
	if r.TimerEvents() == 0 {
		t.Fatal("timer events not counted")
	}
}

func TestSamplerStopsWhenDone(t *testing.T) {
	s := sim.New(1)
	r := NewRecorder(s, 0, 1, Config{SampleInterval: 50 * time.Millisecond})
	done := false
	r.Watch(0, 0, 0, func(out *Sample) bool { return true })
	r.StartSampler(func() bool { return done })
	s.Schedule(175*time.Millisecond, func() { done = true })
	s.Run()
	if n := len(r.Samples(0)); n != 3 {
		t.Fatalf("got %d samples, want 3 (50,100,150ms)", n)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{At: time.Second, Kind: KindRTO, Member: 3, Conn: 0, Subflow: 1, A: 2, B: int64(800 * time.Millisecond)},
		{At: 2 * time.Second, Kind: KindFallback, Member: 3, Conn: 0, Subflow: -1, A: 1},
	}
	buf := AppendJSONL(nil, in)
	out, err := ParseJSONL(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost events: %d != %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("event %d: %+v != %+v", i, in[i], out[i])
		}
	}
}

func TestDrainTail(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	events := []Event{
		// An early run that ends (backoff resets afterwards).
		{At: ms(100), Kind: KindRTO, Member: 0, Conn: 0, Subflow: 0, A: 1, B: int64(ms(200))},
		{At: ms(300), Kind: KindRTO, Member: 0, Conn: 0, Subflow: 0, A: 2, B: int64(ms(400))},
		// The trailing run: 1s, 2s, 4s backoff starting at t=1000ms.
		{At: ms(1000), Kind: KindRTO, Member: 0, Conn: 0, Subflow: 0, A: 1, B: int64(ms(1000))},
		{At: ms(2000), Kind: KindRTO, Member: 0, Conn: 0, Subflow: 0, A: 2, B: int64(ms(2000))},
		{At: ms(4000), Kind: KindRTO, Member: 0, Conn: 0, Subflow: 0, A: 3, B: int64(ms(4000))},
		// A different subflow with a short tail.
		{At: ms(500), Kind: KindRTO, Member: 0, Conn: 0, Subflow: 1, A: 1, B: int64(ms(100))},
	}
	got := DrainTail(events)
	want := ms(4000) - ms(1000) + ms(4000) // trailing run span + final backoff
	if got != want {
		t.Fatalf("DrainTail=%v, want %v", got, want)
	}
	if DrainTail(nil) != 0 {
		t.Fatal("empty stream should have zero tail")
	}
}
