// Package bonding models Linux balance-rr link bonding: several physical
// links between the same pair of hosts are presented as one logical
// interface, and packets are spread over the member links in round-robin
// order. It is the baseline MPTCP is compared against in the HTTP experiment
// (Figure 11): bonding aggregates capacity below TCP, so a single TCP
// connection sees the sum of the link rates but also the reordering and the
// per-link congestion that round-robin striping causes.
package bonding

import (
	"fmt"

	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/sim"
)

// Bond is one direction of a bonded set of links.
type Bond struct {
	name  string
	links []*netem.Link
	next  int
}

// Send implements netem.Sender: packets are assigned to member links in
// round-robin order, exactly like the Linux bonding driver's balance-rr mode.
func (b *Bond) Send(seg *packet.Segment) {
	if len(b.links) == 0 {
		return
	}
	link := b.links[b.next%len(b.links)]
	b.next++
	link.Send(seg)
}

// Links returns the member links (for stats).
func (b *Bond) Links() []*netem.Link { return b.links }

// Name returns the bond's name.
func (b *Bond) Name() string { return b.name }

// Pair is a bidirectional bonded connection between two interfaces.
type Pair struct {
	AtoB *Bond
	BtoA *Bond
}

// Attach creates count parallel member links with the given per-member
// configuration between interfaces a and b, bonds them in both directions
// and attaches the bonds to the interfaces.
func Attach(s *sim.Simulator, name string, a, b *netem.Interface, member netem.LinkConfig, count int) *Pair {
	if count < 1 {
		count = 1
	}
	ab := &Bond{name: name + "/ab"}
	ba := &Bond{name: name + "/ba"}
	for i := 0; i < count; i++ {
		ab.links = append(ab.links, netem.NewLink(s, fmt.Sprintf("%s/ab%d", name, i), member, b))
		ba.links = append(ba.links, netem.NewLink(s, fmt.Sprintf("%s/ba%d", name, i), member, a))
	}
	a.AttachSender(ab)
	b.AttachSender(ba)
	return &Pair{AtoB: ab, BtoA: ba}
}

// BuildBondedHostPair creates a client and server connected by a bond of
// count identical links (the Fig. 11 "TCP with link-bonding" configuration).
func BuildBondedHostPair(s *sim.Simulator, member netem.LinkConfig, count int) (*netem.Host, *netem.Host, *Pair) {
	client := netem.NewHost(s, "client")
	server := netem.NewHost(s, "server")
	ci := client.AddInterface(packet.MakeAddr(10, 10, 0, 1))
	si := server.AddInterface(packet.MakeAddr(10, 10, 0, 2))
	pair := Attach(s, "bond", ci, si, member, count)
	return client, server, pair
}
