package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
)

// Classic pcap export. Every segment a link accepts can be serialized
// through the unified wire codec (packet.Encode) and written as a raw-IPv4
// pcap record, so any scenario's traffic is inspectable with tcpdump,
// Wireshark or tshark. The format is the classic libpcap file format
// (little-endian, version 2.4) with LINKTYPE_RAW: each record starts
// directly with a synthesized IPv4 header followed by the exact TCP bytes
// the codec produced — the same bytes a middlebox on the emulated path would
// see.

// Pcap file constants.
const (
	pcapMagic        = 0xa1b2c3d4
	pcapVersionMajor = 2
	pcapVersionMinor = 4
	pcapSnapLen      = 262144

	// LinkTypeRaw is LINKTYPE_RAW (101): packets begin with the IPv4 header.
	LinkTypeRaw = 101

	ipHeaderLen       = 20
	pcapFileHeaderLen = 24
	pcapRecHeaderLen  = 16
)

// Pcap errors.
var (
	ErrPcapMagic     = errors.New("trace: not a little-endian classic pcap file")
	ErrPcapTruncated = errors.New("trace: truncated pcap record")
)

// PcapWriter streams segments into a classic pcap capture. Writes are
// buffered; Close flushes (and closes the underlying file when the writer
// was opened with NewPcapFile). The zero value is not usable — construct
// with NewPcapWriter or NewPcapFile.
//
// Wire buffers produced while encoding are drawn from and returned to the
// byte-buffer pool, so steady-state capture does not allocate per packet.
type PcapWriter struct {
	buf     *bufio.Writer
	closer  io.Closer
	closed  bool
	packets int
	// EncodeErrors counts segments the codec rejected and therefore skipped.
	// The emulated stacks emit only wire-expressible segments (every option
	// set fits the 40-byte TCP option space), so any nonzero count indicates
	// an emulator bug. Callers that require gap-free captures check this
	// field.
	EncodeErrors int

	scratch [pcapRecHeaderLen + ipHeaderLen]byte
}

// NewPcapWriter wraps w in a pcap stream and writes the global file header.
func NewPcapWriter(w io.Writer) (*PcapWriter, error) {
	p := &PcapWriter{buf: bufio.NewWriterSize(w, 64<<10)}
	var hdr [pcapFileHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], pcapVersionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], pcapVersionMinor)
	// hdr[8:16]: thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], pcapSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeRaw)
	if _, err := p.buf.Write(hdr[:]); err != nil {
		return nil, err
	}
	return p, nil
}

// NewPcapFile creates (truncating) the file at path and returns a writer
// capturing into it.
func NewPcapFile(path string) (*PcapWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	p, err := NewPcapWriter(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	p.closer = f
	return p, nil
}

// WriteSegment encodes the segment through the wire codec and appends one
// record stamped with the simulation time. Segments the codec rejects are
// counted in EncodeErrors and skipped.
func (p *PcapWriter) WriteSegment(now time.Duration, seg *packet.Segment) error {
	wire, err := packet.Encode(seg)
	if err != nil {
		p.EncodeErrors++
		return err
	}
	defer packet.ReleaseWire(wire)

	caplen := ipHeaderLen + len(wire)
	b := p.scratch[:]
	binary.LittleEndian.PutUint32(b[0:4], uint32(now/time.Second))
	binary.LittleEndian.PutUint32(b[4:8], uint32((now%time.Second)/time.Microsecond))
	binary.LittleEndian.PutUint32(b[8:12], uint32(caplen))
	binary.LittleEndian.PutUint32(b[12:16], uint32(caplen))

	// Synthesized IPv4 header: the emulator carries addresses out of band,
	// so the wire capture reconstructs the header a real stack would emit.
	ip := b[pcapRecHeaderLen:]
	totalLen := caplen
	if totalLen > 0xffff {
		totalLen = 0xffff // oversized coalesced segments: clamp, like TSO captures
	}
	ip[0], ip[1] = 0x45, 0
	binary.BigEndian.PutUint16(ip[2:4], uint16(totalLen))
	ip[4], ip[5], ip[6], ip[7] = 0, 0, 0, 0 // id, flags/fragment
	ip[8], ip[9] = 64, 6                    // TTL, protocol TCP
	ip[10], ip[11] = 0, 0                   // checksum below
	binary.BigEndian.PutUint32(ip[12:16], uint32(seg.Src.Addr))
	binary.BigEndian.PutUint32(ip[16:20], uint32(seg.Dst.Addr))
	binary.BigEndian.PutUint16(ip[10:12], packet.Checksum(ip[:ipHeaderLen]))

	if _, err := p.buf.Write(b); err != nil {
		return err
	}
	if _, err := p.buf.Write(wire); err != nil {
		return err
	}
	p.packets++
	return nil
}

// Packets returns how many records have been written.
func (p *PcapWriter) Packets() int { return p.packets }

// Close flushes buffered records and closes the underlying file, if any.
// Close is idempotent: second and later calls return nil, so callers can
// pair a defensive `defer w.Close()` with an explicit error-checked Close.
// Close does not fail on EncodeErrors; callers requiring gap-free captures
// check the counter instead.
func (p *PcapWriter) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	err := p.buf.Flush()
	if p.closer != nil {
		if cerr := p.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// PcapRecord is one captured packet: the capture timestamp and the raw
// bytes (IPv4 header + TCP segment for captures this package wrote).
type PcapRecord struct {
	Ts   time.Duration
	Data []byte
}

// TCP splits the record into the IPv4 source/destination addresses and the
// TCP bytes, which packet.Decode can parse back into a Segment.
func (r PcapRecord) TCP() (src, dst packet.Addr, tcp []byte, err error) {
	if len(r.Data) < ipHeaderLen || r.Data[0]>>4 != 4 {
		return 0, 0, nil, fmt.Errorf("trace: record is not IPv4")
	}
	ihl := int(r.Data[0]&0x0f) * 4
	if ihl < ipHeaderLen || len(r.Data) < ihl {
		return 0, 0, nil, ErrPcapTruncated
	}
	src = packet.Addr(binary.BigEndian.Uint32(r.Data[12:16]))
	dst = packet.Addr(binary.BigEndian.Uint32(r.Data[16:20]))
	return src, dst, r.Data[ihl:], nil
}

// ReadPcap parses a little-endian classic pcap stream (the format
// PcapWriter produces) and returns its records.
func ReadPcap(r io.Reader) ([]PcapRecord, error) {
	br := bufio.NewReader(r)
	var hdr [pcapFileHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != pcapMagic {
		return nil, ErrPcapMagic
	}
	var out []PcapRecord
	for {
		var rh [pcapRecHeaderLen]byte
		if _, err := io.ReadFull(br, rh[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, ErrPcapTruncated
		}
		sec := binary.LittleEndian.Uint32(rh[0:4])
		usec := binary.LittleEndian.Uint32(rh[4:8])
		caplen := binary.LittleEndian.Uint32(rh[8:12])
		if caplen > pcapSnapLen {
			return nil, fmt.Errorf("trace: record length %d exceeds snaplen", caplen)
		}
		data := make([]byte, caplen)
		if _, err := io.ReadFull(br, data); err != nil {
			return nil, ErrPcapTruncated
		}
		out = append(out, PcapRecord{
			Ts:   time.Duration(sec)*time.Second + time.Duration(usec)*time.Microsecond,
			Data: data,
		})
	}
}

// ReadPcapFile reads every record of the capture at path.
func ReadPcapFile(path string) ([]PcapRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPcap(f)
}

// CapturePaths taps both links of each path into w: every segment a link
// accepts is encoded through the wire codec and recorded, stamped with the
// time now() reports (the owning simulator's clock). Taps only observe —
// they never mutate or retain the segment — so capture cannot change
// simulation results. This is the one place the tap wiring lives; the fleet
// shards and the bulk-experiment harness both go through it.
func CapturePaths(w *PcapWriter, now func() time.Duration, paths ...*netem.Path) {
	for _, p := range paths {
		for _, l := range []*netem.Link{p.LinkAB(), p.LinkBA()} {
			// Chain rather than replace any hook already installed, so
			// multiple taps (or unrelated OnTransmit users) compose instead
			// of silently discarding each other.
			prev := l.OnTransmit
			l.OnTransmit = func(seg *packet.Segment) {
				if prev != nil {
					prev(seg)
				}
				w.WriteSegment(now(), seg)
			}
		}
	}
}
