// Package trace provides the measurement utilities the experiments use:
// goodput/throughput meters, time-weighted samplers for memory usage, latency
// histograms and probability density functions matching the figures in the
// paper.
package trace

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Meter accumulates a byte count over simulated time and reports rates.
type Meter struct {
	total     uint64
	start     time.Duration
	last      time.Duration
	markTotal uint64
	markTime  time.Duration
}

// NewMeter creates a meter starting at the given simulation time.
func NewMeter(start time.Duration) *Meter {
	return &Meter{start: start, last: start, markTime: start}
}

// Add records n bytes at simulation time now.
func (m *Meter) Add(n int, now time.Duration) {
	m.total += uint64(n)
	m.last = now
}

// Total returns the cumulative byte count.
func (m *Meter) Total() uint64 { return m.total }

// Mark sets a checkpoint; RateSinceMark measures from this point, which lets
// experiments exclude the slow-start transient.
func (m *Meter) Mark(now time.Duration) {
	m.markTotal = m.total
	m.markTime = now
}

// RateMbps returns the average rate since the meter started, in Mbps, using
// the supplied end time.
func (m *Meter) RateMbps(end time.Duration) float64 {
	d := end - m.start
	if d <= 0 {
		return 0
	}
	return float64(m.total) * 8 / d.Seconds() / 1e6
}

// RateSinceMarkMbps returns the rate since the last Mark.
func (m *Meter) RateSinceMarkMbps(end time.Duration) float64 {
	d := end - m.markTime
	if d <= 0 {
		return 0
	}
	return float64(m.total-m.markTotal) * 8 / d.Seconds() / 1e6
}

// Sampler keeps a time series of scalar samples (e.g. memory usage) and
// reports aggregates.
type Sampler struct {
	samples []float64
	times   []time.Duration
}

// NewSampler creates an empty sampler.
func NewSampler() *Sampler { return &Sampler{} }

// Record appends one sample.
func (s *Sampler) Record(v float64, now time.Duration) {
	s.samples = append(s.samples, v)
	s.times = append(s.times, now)
}

// Len returns the number of samples.
func (s *Sampler) Len() int { return len(s.samples) }

// Samples returns the recorded values in record order, so consumers that
// fold samples across simulators (the fleet merge layer) can aggregate raw
// values. The slice is owned by the sampler; callers that outlive it must
// copy.
func (s *Sampler) Samples() []float64 { return s.samples }

// Mean returns the arithmetic mean of the samples (0 when empty).
func (s *Sampler) Mean() float64 { return Mean(s.samples) }

// Max returns the largest sample.
func (s *Sampler) Max() float64 { return Max(s.samples) }

// Percentile returns the p-th percentile (0..100) of the samples.
func (s *Sampler) Percentile(p float64) float64 { return Percentile(s.samples, p) }

// Mean returns the arithmetic mean of xs (0 when empty). The package-level
// statistics exist so consumers that merge raw sample slices across shards
// (internal/fleet) share one convention with Sampler.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// Max returns the largest value in xs (0 when empty).
func Max(xs []float64) float64 {
	var max float64
	for _, v := range xs {
		if v > max {
			max = v
		}
	}
	return max
}

// Percentile returns the p-th percentile (0..100) of xs using the ceil-rank
// convention. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Histogram builds a probability density function over fixed-width bins, used
// for the latency PDFs in Figures 7 and 10.
type Histogram struct {
	// BinWidth is the bin size.
	BinWidth float64
	counts   map[int]int
	total    int
	min, max float64
	any      bool
}

// NewHistogram creates a histogram with the given bin width.
func NewHistogram(binWidth float64) *Histogram {
	return &Histogram{BinWidth: binWidth, counts: make(map[int]int)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	bin := int(math.Floor(v / h.BinWidth))
	h.counts[bin]++
	h.total++
	if !h.any || v < h.min {
		h.min = v
	}
	if !h.any || v > h.max {
		h.max = v
	}
	h.any = true
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Min returns the smallest observation.
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest observation.
func (h *Histogram) Max() float64 { return h.max }

// Bin is one histogram bin of the PDF.
type Bin struct {
	// Low is the inclusive lower edge of the bin.
	Low float64
	// Fraction is the share of observations in the bin (0..1).
	Fraction float64
	// Count is the raw number of observations.
	Count int
}

// PDF returns the normalized bins in increasing order.
func (h *Histogram) PDF() []Bin {
	if h.total == 0 {
		return nil
	}
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]Bin, 0, len(keys))
	for _, k := range keys {
		out = append(out, Bin{
			Low:      float64(k) * h.BinWidth,
			Fraction: float64(h.counts[k]) / float64(h.total),
			Count:    h.counts[k],
		})
	}
	return out
}

// Mean returns the mean of the recorded observations (bin-center
// approximation).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for k, c := range h.counts {
		center := (float64(k) + 0.5) * h.BinWidth
		sum += center * float64(c)
	}
	return sum / float64(h.total)
}

// FormatBytes renders a byte count in a human-friendly KB/MB form for tables.
func FormatBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.0fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
