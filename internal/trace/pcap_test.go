package trace

import (
	"bytes"
	"encoding/binary"
	"path/filepath"
	"testing"
	"time"

	"mptcpgo/internal/packet"
)

func pcapSampleSegment(i int) *packet.Segment {
	return &packet.Segment{
		Src:    packet.Endpoint{Addr: packet.MakeAddr(10, 0, 0, 1), Port: 40000},
		Dst:    packet.Endpoint{Addr: packet.MakeAddr(10, 0, 1, 2), Port: 80},
		Seq:    packet.SeqNum(1000 + i),
		Ack:    packet.SeqNum(2000 + i),
		Flags:  packet.FlagACK | packet.FlagPSH,
		Window: 8192,
		Options: []packet.Option{
			&packet.TimestampsOption{Val: uint32(i), Echo: uint32(i + 1)},
			&packet.DSSOption{HasDataACK: true, DataACK: packet.DataSeq(i), HasMapping: true, DataSeq: 7, SubflowOffset: 9, Length: 4},
		},
		Payload: []byte{0xde, 0xad, 0xbe, byte(i)},
	}
}

// TestPcapRoundTrip writes segments into a capture file, reads the file
// back with the package's own reader and checks that every record carries a
// valid pcap header, a well-formed IPv4 header and TCP bytes that Decode
// back to the emitted segment.
func TestPcapRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "roundtrip.pcap")
	w, err := NewPcapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if err := w.WriteSegment(time.Duration(i)*time.Second+250*time.Millisecond, pcapSampleSegment(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Packets() != n || w.EncodeErrors != 0 {
		t.Fatalf("packets=%d errors=%d", w.Packets(), w.EncodeErrors)
	}

	recs, err := ReadPcapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("read %d records, want %d", len(recs), n)
	}
	for i, rec := range recs {
		wantTs := time.Duration(i)*time.Second + 250*time.Millisecond
		if rec.Ts != wantTs {
			t.Fatalf("record %d timestamp %v, want %v", i, rec.Ts, wantTs)
		}
		src, dst, tcp, err := rec.TCP()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		want := pcapSampleSegment(i)
		if src != want.Src.Addr || dst != want.Dst.Addr {
			t.Fatalf("record %d addresses %v->%v", i, src, dst)
		}
		// The synthesized IPv4 header must checksum to zero when re-summed
		// with its stored checksum (standard header validity check).
		if got := packet.Checksum(rec.Data[:20]); got != 0 {
			t.Fatalf("record %d IPv4 header checksum residue %#04x", i, got)
		}
		got, err := packet.Decode(src, dst, tcp)
		if err != nil {
			t.Fatalf("record %d TCP decode: %v", i, err)
		}
		if got.Seq != want.Seq || got.Ack != want.Ack || got.Flags != want.Flags || got.Window != want.Window {
			t.Fatalf("record %d header mismatch: %v", i, got)
		}
		if !packet.VerifyTCPChecksum(got.Src, got.Dst, tcp) {
			t.Fatalf("record %d TCP checksum invalid", i)
		}
		if !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("record %d payload %x", i, got.Payload)
		}
		if len(got.Options) != len(want.Options) {
			t.Fatalf("record %d option count %d", i, len(got.Options))
		}
		for j := range want.Options {
			if got.Options[j].String() != want.Options[j].String() {
				t.Fatalf("record %d option %d: got %v want %v", i, j, got.Options[j], want.Options[j])
			}
		}
		got.Release()
	}
}

// TestPcapGlobalHeader pins the on-disk header format so external tools can
// open our captures: little-endian classic magic, version 2.4, LINKTYPE_RAW.
func TestPcapGlobalHeader(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	hdr := buf.Bytes()
	if len(hdr) != pcapFileHeaderLen {
		t.Fatalf("header length %d", len(hdr))
	}
	if !bytes.Equal(hdr[0:4], []byte{0xd4, 0xc3, 0xb2, 0xa1}) {
		t.Fatalf("magic bytes % x", hdr[0:4])
	}
	if binary.LittleEndian.Uint16(hdr[4:6]) != 2 || binary.LittleEndian.Uint16(hdr[6:8]) != 4 {
		t.Fatal("version is not 2.4")
	}
	if binary.LittleEndian.Uint32(hdr[20:24]) != LinkTypeRaw {
		t.Fatal("link type is not LINKTYPE_RAW")
	}
}

// TestPcapReaderRejectsForeignMagic guards the reader's error path.
func TestPcapReaderRejectsForeignMagic(t *testing.T) {
	if _, err := ReadPcap(bytes.NewReader(make([]byte, 24))); err != ErrPcapMagic {
		t.Fatalf("got %v, want ErrPcapMagic", err)
	}
}
