package trace

import (
	"testing"
	"time"
)

func TestMeterRates(t *testing.T) {
	m := NewMeter(0)
	m.Add(1_000_000, time.Second)
	if got := m.RateMbps(time.Second); got < 7.9 || got > 8.1 {
		t.Fatalf("RateMbps = %v, want ~8", got)
	}
	m.Mark(time.Second)
	m.Add(500_000, 2*time.Second)
	if got := m.RateSinceMarkMbps(2 * time.Second); got < 3.9 || got > 4.1 {
		t.Fatalf("RateSinceMarkMbps = %v, want ~4", got)
	}
	if m.Total() != 1_500_000 {
		t.Fatalf("Total = %d", m.Total())
	}
}

func TestSamplerStats(t *testing.T) {
	s := NewSampler()
	for i := 1; i <= 100; i++ {
		s.Record(float64(i), time.Duration(i))
	}
	if s.Len() != 100 || s.Mean() != 50.5 || s.Max() != 100 {
		t.Fatalf("sampler stats wrong: len=%d mean=%v max=%v", s.Len(), s.Mean(), s.Max())
	}
	if p := s.Percentile(95); p != 95 {
		t.Fatalf("p95 = %v", p)
	}
	empty := NewSampler()
	if empty.Mean() != 0 || empty.Percentile(50) != 0 {
		t.Fatal("empty sampler must report zeros")
	}
}

func TestHistogramPDF(t *testing.T) {
	h := NewHistogram(10)
	for i := 0; i < 60; i++ {
		h.Add(5) // bin 0
	}
	for i := 0; i < 40; i++ {
		h.Add(25) // bin 2
	}
	pdf := h.PDF()
	if len(pdf) != 2 {
		t.Fatalf("expected 2 bins, got %d", len(pdf))
	}
	if pdf[0].Low != 0 || pdf[0].Fraction != 0.6 {
		t.Fatalf("bin0 = %+v", pdf[0])
	}
	if pdf[1].Low != 20 || pdf[1].Fraction != 0.4 {
		t.Fatalf("bin1 = %+v", pdf[1])
	}
	if h.Total() != 100 || h.Min() != 5 || h.Max() != 25 {
		t.Fatalf("histogram aggregates wrong: %d %v %v", h.Total(), h.Min(), h.Max())
	}
	// Bin-centre approximation: 0.6·5 + 0.4·25 = 13.
	if mean := h.Mean(); mean < 12.5 || mean > 13.5 {
		t.Fatalf("mean = %v", mean)
	}
}

func TestFormatBytes(t *testing.T) {
	if FormatBytes(512) != "512B" || FormatBytes(2048) != "2KB" || FormatBytes(3<<20) != "3.0MB" {
		t.Fatalf("unexpected formats: %s %s %s", FormatBytes(512), FormatBytes(2048), FormatBytes(3<<20))
	}
}
