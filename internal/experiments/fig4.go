package experiments

import (
	"fmt"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/netem"
)

// Figure 4: throughput as a function of the receive window over the emulated
// WiFi (8 Mbps / 20 ms RTT / 80 ms buffer) + 3G (2 Mbps / 150 ms RTT / 2 s
// buffer) phone scenario, for regular MPTCP, MPTCP with opportunistic
// retransmission (M1) and MPTCP with M1 + penalization (M2), against TCP on
// either path alone.

func init() {
	Register(Experiment{
		ID:    "fig4",
		Title: "Fig. 4 — receive-buffer impact on throughput (WiFi + 3G)",
		Run:   runFig4,
	})
}

// fig4Buffers returns the receive/send buffer sweep in bytes.
func fig4Buffers(quick bool) []int {
	if quick {
		return []int{100 << 10, 200 << 10, 400 << 10}
	}
	return []int{50 << 10, 100 << 10, 200 << 10, 300 << 10, 400 << 10, 600 << 10, 800 << 10, 1000 << 10}
}

func fig4Duration(quick bool) (time.Duration, time.Duration) {
	if quick {
		return 12 * time.Second, 4 * time.Second
	}
	return 40 * time.Second, 10 * time.Second
}

// fig4Variant is one curve of the figure.
type fig4Variant struct {
	name    string
	cfg     func(buf int) core.Config
	iface   int
	goodput bool
}

func fig4Variants() []fig4Variant {
	return []fig4Variant{
		{name: "TCP over WiFi", cfg: tcpBaseline, iface: 0},
		{name: "TCP over 3G", cfg: tcpBaseline, iface: 1},
		{name: "Regular MPTCP", cfg: regularMPTCP, iface: 0},
		{name: "MPTCP+M1", cfg: mptcpM1, iface: 0},
		{name: "MPTCP+M1,2", cfg: mptcpM12, iface: 0},
	}
}

func runFig4(opt Options) (*Result, error) {
	duration, warmup := fig4Duration(opt.Quick)
	buffers := fig4Buffers(opt.Quick)

	table := NewTable("Throughput (Mbps) vs receive window",
		append([]string{"rcv/snd buffer"}, variantNames(fig4Variants())...)...)
	goodputTable := NewTable("Goodput vs throughput for MPTCP+M1 (opportunistic retransmission overhead)",
		"rcv/snd buffer", "goodput Mbps", "throughput Mbps")

	variants := fig4Variants()
	results, err := sweepGrid(len(buffers), len(variants), func(r, c int) (BulkResult, error) {
		buf, v := buffers[r], variants[c]
		return RunBulk(BulkOptions{
			Seed:        opt.Seed + uint64(buf),
			Specs:       netem.WiFi3GSpec(),
			Client:      v.cfg(buf),
			Server:      v.cfg(buf),
			ClientIface: v.iface,
			Duration:    duration,
			Warmup:      warmup,
		})
	})
	if err != nil {
		return nil, err
	}
	for r, buf := range buffers {
		row := []string{fmt.Sprintf("%dKB", buf>>10)}
		for c, v := range variants {
			res := results[r][c]
			row = append(row, fmtMbps(res.GoodputMbps))
			if v.name == "MPTCP+M1" {
				goodputTable.AddRow(fmt.Sprintf("%dKB", buf>>10), fmtMbps(res.GoodputMbps), fmtMbps(res.ThroughputMbps))
			}
		}
		table.AddRow(row...)
	}
	table.AddNote("paper: regular MPTCP underperforms TCP-over-WiFi below ~400KB; MPTCP+M1,2 matches or exceeds it at every buffer size")
	res := &Result{Tables: []*Table{table, goodputTable}}
	for _, s := range goodputSeries(buffers, variants, results) {
		res.AddSeries(s)
	}
	return res, nil
}

// goodputSeries extracts one goodput-vs-buffer series per variant from a
// buffers × variants BulkResult grid (shared by figures 4, 6 and 9).
func goodputSeries(buffers []int, variants []fig4Variant, results [][]BulkResult) []Series {
	x := make([]float64, len(buffers))
	for i, buf := range buffers {
		x[i] = float64(buf >> 10)
	}
	out := make([]Series, len(variants))
	for c, v := range variants {
		y := make([]float64, len(buffers))
		for r := range buffers {
			y[r] = results[r][c].GoodputMbps
		}
		out[c] = Series{Name: v.name, Unit: "Mbps", XLabel: "buffer KB", X: x, Y: y}
	}
	return out
}

func variantNames(vs []fig4Variant) []string {
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = v.name
	}
	return names
}
