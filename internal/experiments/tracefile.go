package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mptcpgo/internal/probe"
	"mptcpgo/internal/telemetry"
)

// TraceSpec describes flight-recorder capture: where the files go and how
// densely the per-subflow time series samples. The zero value disables
// capture entirely.
type TraceSpec struct {
	// Dir is the output directory; empty disables capture.
	Dir string
	// ProbeInterval is the time-series cadence (0 = events only).
	ProbeInterval time.Duration
	// EventCap overrides the per-member event ring capacity (0 = default).
	EventCap int
	// RunInfo, when set, is written alongside the trace files as
	// `<name>-runinfo.json` (the configuration/environment portion only —
	// wall-clock results are machine-dependent and stay out of trace
	// directories, whose trace.json contents are byte-comparable goldens).
	RunInfo *telemetry.RunInfo
}

// Enabled reports whether capture is on.
func (t TraceSpec) Enabled() bool { return t.Dir != "" }

// ProbeConfig converts the spec into a recorder configuration.
func (t TraceSpec) ProbeConfig() probe.Config {
	return probe.Config{EventCap: t.EventCap, SampleInterval: t.ProbeInterval}
}

// MergedEvents concatenates the recorders' events in recorder order (fleet
// callers pass recorders in shard-index order), members ascending within
// each — i.e. global-member-ascending, time-ascending within a member. Nil
// recorders are skipped.
func MergedEvents(recs []*probe.Recorder) []probe.Event {
	var out []probe.Event
	for _, r := range recs {
		if r == nil {
			continue
		}
		for m := r.Lo(); m < r.Lo()+r.Members(); m++ {
			out = r.AppendEvents(out, m)
		}
	}
	return out
}

// BuildTraceResult renders the recorders' content — counter registry, event
// kind tally, per-subflow time series — as an experiments.Result, so the
// trace reuses the standard text/JSON/CSV encoders. Elapsed is pinned to 0:
// a trace file is a function of (seed, scenario), byte-comparable across
// machines and worker counts.
func BuildTraceResult(id, title string, seed uint64, quick bool, recs []*probe.Recorder) *Result {
	res := &Result{ID: id, Title: title, Seed: seed, Quick: quick}

	// Counter registry: one row per member, in global member order.
	reg := NewTable("counter registry (per member)", counterColumns()...)
	var total [probe.NumCounters]uint64
	var totalEvents, totalDropped uint64
	members := 0
	for _, r := range recs {
		if r == nil {
			continue
		}
		for m := r.Lo(); m < r.Lo()+r.Members(); m++ {
			ctr := r.Counters(m)
			row := make([]string, 0, len(ctr)+2)
			row = append(row, fmt.Sprintf("%d", m))
			for i, v := range ctr {
				total[i] += v
				row = append(row, fmt.Sprintf("%d", v))
			}
			row = append(row, fmt.Sprintf("%d", r.EventCount(m)))
			reg.AddRow(row...)
			totalEvents += uint64(r.EventCount(m))
			totalDropped += r.Dropped(m)
			members++
		}
	}
	allRow := make([]string, 0, len(total)+2)
	allRow = append(allRow, "all")
	for _, v := range total {
		allRow = append(allRow, fmt.Sprintf("%d", v))
	}
	allRow = append(allRow, fmt.Sprintf("%d", totalEvents))
	reg.AddRow(allRow...)
	reg.AddNote(fmt.Sprintf("%d members; %d events retained, %d overwritten (flight-recorder rings)", members, totalEvents, totalDropped))
	res.AddTable(reg)

	// Event tally by kind.
	events := MergedEvents(recs)
	kinds := probe.CountKinds(events)
	tally := NewTable("events by kind", "kind", "count")
	for k, n := range kinds {
		if n > 0 {
			tally.AddRow(probe.Kind(k).String(), fmt.Sprintf("%d", n))
		}
	}
	if tail := probe.DrainTail(events); tail > 0 {
		tally.AddNote(fmt.Sprintf("rto drain tail (longest trailing backoff run): %.0f ms", float64(tail)/float64(time.Millisecond)))
	}
	res.AddTable(tally)

	// Per-subflow time series, when sampling was on.
	samples := NewTable("per-subflow samples",
		"t ms", "member", "conn", "subflow", "cwnd", "ssthresh", "srtt ms", "rto ms", "inflight", "sent", "reinject", "alpha")
	for _, r := range recs {
		if r == nil {
			continue
		}
		for m := r.Lo(); m < r.Lo()+r.Members(); m++ {
			for _, s := range r.Samples(m) {
				samples.AddRow(
					fmt.Sprintf("%.1f", float64(s.At)/float64(time.Millisecond)),
					fmt.Sprintf("%d", s.Member),
					fmt.Sprintf("%d", s.Conn),
					fmt.Sprintf("%d", s.Subflow),
					fmt.Sprintf("%d", s.Cwnd),
					fmt.Sprintf("%d", s.Ssthresh),
					fmt.Sprintf("%.2f", float64(s.SRTT)/float64(time.Millisecond)),
					fmt.Sprintf("%.1f", float64(s.RTO)/float64(time.Millisecond)),
					fmt.Sprintf("%d", s.Inflight),
					fmt.Sprintf("%d", s.SentBytes),
					fmt.Sprintf("%d", s.ReinjBytes),
					fmt.Sprintf("%.3f", s.Alpha),
				)
			}
		}
	}
	if len(samples.Rows) > 0 {
		res.AddTable(samples)
	}
	return res
}

// WriteTraceFiles writes `<name>-trace.json` (the BuildTraceResult output as
// JSON) and `<name>-events.jsonl` (the merged typed event stream) into
// spec.Dir.
func WriteTraceFiles(spec TraceSpec, name string, res *Result, events []probe.Event) error {
	if !spec.Enabled() {
		return nil
	}
	if err := os.MkdirAll(spec.Dir, 0o755); err != nil {
		return fmt.Errorf("trace dir: %w", err)
	}
	f, err := os.Create(filepath.Join(spec.Dir, name+"-trace.json"))
	if err != nil {
		return err
	}
	if err := res.JSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(spec.Dir, name+"-events.jsonl"), probe.AppendJSONL(nil, events), 0o644); err != nil {
		return err
	}
	if spec.RunInfo != nil {
		// Provenance sidecar: trace.json itself must stay machine-independent,
		// so the runinfo (which records go version, CPU count, VCS state) rides
		// next to it instead of inside it.
		if err := spec.RunInfo.Config().WriteFile(filepath.Join(spec.Dir, name+"-runinfo.json")); err != nil {
			return err
		}
	}
	return nil
}

// counterColumns is the registry table header: member, one column per
// counter, plus the retained-event count.
func counterColumns() []string {
	cols := make([]string, 0, int(probe.NumCounters)+2)
	cols = append(cols, "member")
	for c := probe.Counter(0); c < probe.NumCounters; c++ {
		cols = append(cols, c.String())
	}
	cols = append(cols, "events")
	return cols
}
