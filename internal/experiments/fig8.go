package experiments

import (
	"fmt"
	"time"

	"mptcpgo/internal/buffer"
	"mptcpgo/internal/netem"
)

// Figure 8: receiver cost of the out-of-order reassembly algorithms
// (Regular, Tree, Shortcuts, AllShortcuts) for a long download over two
// 1 Gbps links with 2 and with 8 subflows. CPU utilization on the paper's
// testbed is proxied here by the number of reassembly search steps per
// received segment inside the simulation, complemented by the wall-clock
// micro-benchmarks of the same four algorithms in bench_test.go
// (BenchmarkOfo*).

func init() {
	Register(Experiment{
		ID:    "fig8",
		Title: "Fig. 8 — out-of-order receive algorithms (2 and 8 subflows)",
		Run:   runFig8,
	})
}

func runFig8(opt Options) (*Result, error) {
	duration := 3 * time.Second
	warmup := 500 * time.Millisecond
	if opt.Quick {
		duration = 1200 * time.Millisecond
		warmup = 300 * time.Millisecond
	}

	table := NewTable("Reassembly cost per received segment (search steps; lower is cheaper)",
		"algorithm", "2 subflows", "8 subflows", "goodput 2sf (Mbps)", "goodput 8sf (Mbps)")

	algs := buffer.Algorithms()
	perIfaces := []int{1, 4} // 2 paths × {1,4} = 2 and 8 subflows
	results, err := sweepGrid(len(algs), len(perIfaces), func(r, c int) (BulkResult, error) {
		cfg := mptcpM12(4 << 20)
		cfg.OfoAlgorithm = algs[r]
		cfg.SubflowsPerInterface = perIfaces[c]
		return RunBulk(BulkOptions{
			Seed:     opt.Seed + uint64(algs[r])*31 + uint64(perIfaces[c]),
			Specs:    netem.DualGigabitSpec(),
			Client:   cfg,
			Server:   cfg,
			Duration: duration,
			Warmup:   warmup,
		})
	})
	if err != nil {
		return nil, err
	}
	res := &Result{}
	subflowX := []float64{2, 8}
	for r, alg := range algs {
		row := []string{alg.String()}
		var goodputs []string
		steps := make([]float64, len(perIfaces))
		for c := range perIfaces {
			br := results[r][c]
			stepsPerSeg := 0.0
			if br.SegmentsDelivered > 0 {
				stepsPerSeg = float64(br.ReassemblySteps) / float64(br.SegmentsDelivered)
			}
			steps[c] = stepsPerSeg
			row = append(row, fmt.Sprintf("%.2f", stepsPerSeg))
			goodputs = append(goodputs, fmtMbps(br.GoodputMbps))
		}
		row = append(row, goodputs...)
		table.AddRow(row...)
		res.AddSeries(Series{Name: alg.String(), Unit: "steps/segment", XLabel: "subflows", X: subflowX, Y: steps})
	}
	table.AddNote("paper: CPU load drops from Regular to Tree and further with Shortcuts/AllShortcuts; with 8 subflows the gap widens (42%% -> 30%% CPU), with 2 subflows 25%% -> 20%%")
	table.AddNote("wall-clock per-insert costs for the same algorithms: go test -bench BenchmarkOfo")
	res.AddTable(table)
	return res, nil
}
