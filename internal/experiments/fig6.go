package experiments

import (
	"fmt"
	"time"

	"mptcpgo/internal/netem"
)

// Figure 6: goodput as a function of the configured send/receive buffer for
// three scenarios — (a) WiFi plus an extremely slow and lossy 3G path,
// (b) a 1 Gbps and a 100 Mbps link, (c) three symmetric 1 Gbps links —
// comparing MPTCP+M1,2 against regular MPTCP and single-path TCP.

func init() {
	Register(Experiment{ID: "fig6a", Title: "Fig. 6(a) — WiFi + very slow lossy 3G", Run: func(o Options) (*Result, error) { return runFig6(o, "a") }})
	Register(Experiment{ID: "fig6b", Title: "Fig. 6(b) — 1 Gbps + 100 Mbps links", Run: func(o Options) (*Result, error) { return runFig6(o, "b") }})
	Register(Experiment{ID: "fig6c", Title: "Fig. 6(c) — three 1 Gbps links", Run: func(o Options) (*Result, error) { return runFig6(o, "c") }})
}

type fig6Scenario struct {
	specs    []netem.PathSpec
	buffers  []int
	duration time.Duration
	warmup   time.Duration
	variants []fig4Variant
	note     string
}

func fig6Config(which string, quick bool) fig6Scenario {
	switch which {
	case "a":
		sc := fig6Scenario{
			specs:    netem.LossyWiFi3GSpec(),
			buffers:  []int{100 << 10, 200 << 10, 400 << 10, 800 << 10, 1500 << 10, 2000 << 10},
			duration: 40 * time.Second,
			warmup:   10 * time.Second,
			variants: []fig4Variant{
				{name: "MPTCP+M1,2", cfg: mptcpM12, iface: 0},
				{name: "Regular MPTCP", cfg: regularMPTCP, iface: 0},
				{name: "TCP over WiFi", cfg: tcpBaseline, iface: 0},
				{name: "TCP over 3G", cfg: tcpBaseline, iface: 1},
			},
			note: "paper: with ~200KB buffers the mechanisms give a roughly tenfold improvement over regular MPTCP, which stalls behind the lossy deeply-buffered 3G path",
		}
		if quick {
			sc.buffers = []int{200 << 10, 800 << 10}
			sc.duration, sc.warmup = 15*time.Second, 5*time.Second
		}
		return sc
	case "b":
		sc := fig6Scenario{
			specs:    netem.AsymGigabitSpec(),
			buffers:  []int{256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20},
			duration: 4 * time.Second,
			warmup:   1 * time.Second,
			variants: []fig4Variant{
				{name: "MPTCP+M1,2", cfg: mptcpM12, iface: 0},
				{name: "Regular MPTCP", cfg: regularMPTCP, iface: 0},
				{name: "TCP over 1Gbps itf", cfg: tcpBaseline, iface: 0},
				{name: "TCP over 100Mbps itf", cfg: tcpBaseline, iface: 1},
			},
			note: "paper: MPTCP+M1,2 uses both links with ~250KB of memory; regular MPTCP underperforms TCP over the 1 Gbps link until the buffer reaches ~2MB",
		}
		if quick {
			sc.buffers = []int{512 << 10, 2 << 20}
			sc.duration, sc.warmup = 2*time.Second, 500*time.Millisecond
		}
		return sc
	default: // "c"
		sc := fig6Scenario{
			specs:    netem.TripleGigabitSpec(),
			buffers:  []int{512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20},
			duration: 4 * time.Second,
			warmup:   1 * time.Second,
			variants: []fig4Variant{
				{name: "MPTCP+M1,2", cfg: mptcpM12, iface: 0},
				{name: "Regular MPTCP", cfg: regularMPTCP, iface: 0},
				{name: "TCP over 1Gbps itf", cfg: tcpBaseline, iface: 0},
			},
			note: "paper: with symmetric links both MPTCP variants perform equally well regardless of buffer size (using the fastest path is optimal when underbuffered)",
		}
		if quick {
			sc.buffers = []int{1 << 20, 4 << 20}
			sc.duration, sc.warmup = 2*time.Second, 500*time.Millisecond
		}
		return sc
	}
}

func runFig6(opt Options, which string) (*Result, error) {
	sc := fig6Config(which, opt.Quick)
	table := NewTable(fmt.Sprintf("Fig. 6(%s): goodput (Mbps) vs rcv/snd buffer", which),
		append([]string{"buffer"}, variantNames(sc.variants)...)...)
	results, err := sweepGrid(len(sc.buffers), len(sc.variants), func(r, c int) (BulkResult, error) {
		buf, v := sc.buffers[r], sc.variants[c]
		return RunBulk(BulkOptions{
			Seed:        opt.Seed + uint64(buf)*13,
			Specs:       sc.specs,
			Client:      v.cfg(buf),
			Server:      v.cfg(buf),
			ClientIface: v.iface,
			Duration:    sc.duration,
			Warmup:      sc.warmup,
		})
	})
	if err != nil {
		return nil, err
	}
	for r, buf := range sc.buffers {
		row := []string{fmt.Sprintf("%.2fMB", float64(buf)/(1<<20))}
		for c := range sc.variants {
			row = append(row, fmtMbps(results[r][c].GoodputMbps))
		}
		table.AddRow(row...)
	}
	table.AddNote("%s", sc.note)
	res := &Result{Tables: []*Table{table}}
	for _, s := range goodputSeries(sc.buffers, sc.variants, results) {
		res.AddSeries(s)
	}
	return res, nil
}
