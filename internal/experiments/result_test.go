package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with the current output")

func TestOptionsSeedDefaulting(t *testing.T) {
	if got := NewOptions().withDefaults().Seed; got != 42 {
		t.Errorf("no WithSeed: default seed = %d, want 42", got)
	}
	if got := NewOptions(WithSeed(0)).withDefaults().Seed; got != 0 {
		t.Errorf("WithSeed(0) remapped to %d; seed 0 must be a legal seed", got)
	}
	if got := NewOptions(WithSeed(7)).withDefaults().Seed; got != 7 {
		t.Errorf("WithSeed(7) = %d", got)
	}
	// Struct-literal construction keeps the historical alias for existing
	// callers: zero means "default".
	if got := (Options{}).withDefaults().Seed; got != 42 {
		t.Errorf("Options{}.withDefaults().Seed = %d, want 42", got)
	}
	opt := NewOptions(WithQuick(), WithPaperEraCPU())
	if !opt.Quick || !opt.PaperEraCPU {
		t.Errorf("functional options not applied: %+v", opt)
	}
}

// TestResultTextFormat pins the text encoding to the historical RunAndPrint
// byte layout: header, then each table with aligned columns and notes.
func TestResultTextFormat(t *testing.T) {
	tbl := NewTable("demo", "col", "x")
	tbl.AddRow("value", "1")
	tbl.AddNote("a note")
	res := &Result{ID: "figX", Title: "a title", Tables: []*Table{tbl}}
	var buf bytes.Buffer
	if err := res.Text(&buf); err != nil {
		t.Fatal(err)
	}
	want := "# figX — a title\n\n" +
		"== demo ==\n" +
		"  col    x\n" +
		"  value  1\n" +
		"  note: a note\n" +
		"\n"
	if buf.String() != want {
		t.Fatalf("text encoding drifted:\n got %q\nwant %q", buf.String(), want)
	}
}

func TestRunMatchesRunAndPrint(t *testing.T) {
	// The structured path and the legacy printer must render the same bytes.
	res, err := Run("rationale", WithQuick(), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	var structured, legacy bytes.Buffer
	if err := res.Text(&structured); err != nil {
		t.Fatal(err)
	}
	if err := RunAndPrint(&legacy, "rationale", Options{Quick: true, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if structured.String() != legacy.String() {
		t.Fatalf("structured Text and RunAndPrint disagree:\n--- structured\n%s\n--- legacy\n%s", structured.String(), legacy.String())
	}
}

// TestGoldenJSON pins the JSON encoding of one quick experiment. The run is
// deterministic (fixed seed, simulated clock); only the wall-clock Elapsed
// field is normalised. Regenerate with: go test ./internal/experiments -run
// TestGoldenJSON -update
func TestGoldenJSON(t *testing.T) {
	res, err := Run("rationale", WithQuick(), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	res.Elapsed = 0
	var buf bytes.Buffer
	if err := res.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "rationale_quick.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("JSON encoding drifted from golden file %s:\n%s", golden, diffHint(string(want), buf.String()))
	}
}

// diffHint returns the first differing line of two texts.
func diffHint(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d: want %q, got %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(wl), len(gl))
}

func TestCSVEncoding(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.AddRow("1", "2")
	res := &Result{
		ID: "x", Title: "y", Seed: 5,
		Tables: []*Table{tbl},
		Series: []Series{{Name: "s", Unit: "Mbps", X: []float64{1}, Y: []float64{2.5}}},
	}
	var buf bytes.Buffer
	if err := res.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"experiment,x,y", "seed,5", "table,t", "a,b", "1,2", "series,s,Mbps", "1,2.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	res, err := Run("rationale", WithQuick(), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("encoded JSON does not parse back: %v", err)
	}
	if back.ID != "rationale" || back.Seed != 11 || !back.Quick {
		t.Fatalf("metadata lost in round trip: %+v", back)
	}
	if len(back.Tables) != len(res.Tables) || len(back.Series) != len(res.Series) {
		t.Fatal("tables/series lost in round trip")
	}
}
