package experiments

import (
	"fmt"
	"time"

	"mptcpgo/internal/bonding"
	"mptcpgo/internal/core"
	"mptcpgo/internal/httpsim"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/probe"
	"mptcpgo/internal/sim"
)

// Figure 11: apachebench-style HTTP benchmark — requests per second served
// as a function of the transfer size, for regular TCP over one gigabit link,
// TCP over two bonded gigabit links (Linux balance-rr) and MPTCP over both
// links. 100 closed-loop clients issue requests back to back.

func init() {
	Register(Experiment{
		ID:    "fig11",
		Title: "Fig. 11 — HTTP requests/second: TCP vs link bonding vs MPTCP",
		Run:   runFig11,
	})
}

// Fig11Sizes returns the transfer-size sweep in bytes.
func Fig11Sizes(quick bool) []int {
	if quick {
		return []int{10 << 10, 100 << 10, 300 << 10}
	}
	return []int{10 << 10, 30 << 10, 70 << 10, 100 << 10, 150 << 10, 200 << 10, 300 << 10}
}

func fig11Params(quick bool) (clients, requests int) {
	if quick {
		return 20, 200
	}
	return 100, 2000
}

// RunFig11Point runs one (mode, size) combination and returns requests/sec.
// Mode is one of "tcp", "bonding", "mptcp".
func RunFig11Point(seed uint64, mode string, size, clients, requests int) (httpsim.PoolResult, error) {
	return RunFig11PointTraced(seed, mode, size, clients, requests, TraceSpec{})
}

// RunFig11PointTraced is RunFig11Point with an optional flight recorder:
// when the spec is enabled, httpbench-trace.json and httpbench-events.jsonl
// are written to its directory. Capture never changes the returned result.
func RunFig11PointTraced(seed uint64, mode string, size, clients, requests int, tspec TraceSpec) (httpsim.PoolResult, error) {
	s := sim.New(seed)
	gig := netem.LinkConfig{RateBps: netem.Gbps(1), Delay: 100 * time.Microsecond, QueueBytes: 512 << 10}

	var clientHost, serverHost *netem.Host
	var clientIface *netem.Interface

	connCfg := core.TCPOnlyConfig()
	connCfg.SendBufBytes = 1 << 20
	connCfg.RecvBufBytes = 1 << 20

	switch mode {
	case "bonding":
		c, srv, _ := bonding.BuildBondedHostPair(s, gig, 2)
		clientHost, serverHost = c, srv
		clientIface = c.Interfaces()[0]
	case "mptcp":
		n := netem.Build(s, netem.DualGigabitSpec()...)
		clientHost, serverHost = n.Client, n.Server
		clientIface = n.Client.Interfaces()[0]
		connCfg = core.DefaultConfig()
		connCfg.SendBufBytes = 1 << 20
		connCfg.RecvBufBytes = 1 << 20
	default: // plain TCP over a single gigabit link
		n := netem.Build(s, netem.DualGigabitSpec()[:1]...)
		clientHost, serverHost = n.Client, n.Server
		clientIface = n.Client.Interfaces()[0]
	}

	cliMgr := core.NewManager(clientHost)
	srvMgr := core.NewManager(serverHost)

	_, err := httpsim.StartServer(srvMgr, httpsim.ServerConfig{Port: 80, Conn: connCfg})
	if err != nil {
		return httpsim.PoolResult{}, err
	}

	var rec *probe.Recorder
	if tspec.Enabled() {
		rec = probe.NewRecorder(s, 0, 1, tspec.ProbeConfig())
		cliMgr.SetProbe(rec, 0)
	}

	serverIfaceAddr := serverHost.Interfaces()[0].Addr()
	pool, err := httpsim.NewClientPool(cliMgr, httpsim.ClientPoolConfig{
		Clients:       clients,
		TotalRequests: requests,
		TransferSize:  size,
		ServerAddr:    serverIfaceAddr,
		ServerPort:    80,
		Conn:          connCfg,
		Iface:         clientIface,
	})
	if err != nil {
		return httpsim.PoolResult{}, err
	}
	rec.StartSampler(pool.Done)
	pool.Start()
	if err := s.RunUntil(10 * time.Minute); err != nil {
		return httpsim.PoolResult{}, err
	}
	if tspec.Enabled() {
		recs := []*probe.Recorder{rec}
		tr := BuildTraceResult("httpbench-trace",
			fmt.Sprintf("httpbench mode=%s size=%d (flight recorder)", mode, size),
			seed, false, recs)
		if err := WriteTraceFiles(tspec, "httpbench", tr, MergedEvents(recs)); err != nil {
			return httpsim.PoolResult{}, err
		}
	}
	return pool.Result(), nil
}

func runFig11(opt Options) (*Result, error) {
	clients, requests := fig11Params(opt.Quick)
	sizes := Fig11Sizes(opt.Quick)

	table := NewTable(fmt.Sprintf("HTTP requests/second (%d closed-loop clients, %d requests per point)", clients, requests),
		"transfer size", "regular TCP", "bonding TCP", "MPTCP")
	modes := []string{"tcp", "bonding", "mptcp"}
	results, err := sweepGrid(len(sizes), len(modes), func(r, c int) (httpsim.PoolResult, error) {
		return RunFig11Point(opt.Seed+uint64(sizes[r]), modes[c], sizes[r], clients, requests)
	})
	if err != nil {
		return nil, err
	}
	for r, size := range sizes {
		row := []string{fmt.Sprintf("%dKB", size>>10)}
		for c := range modes {
			res := results[r][c]
			if res.Completed < requests {
				row = append(row, fmt.Sprintf("%.0f (only %d/%d done)", res.RequestsPerSec, res.Completed, requests))
			} else {
				row = append(row, fmt.Sprintf("%.0f", res.RequestsPerSec))
			}
		}
		table.AddRow(row...)
	}
	table.AddNote("paper: for files >100KB MPTCP doubles the requests served vs single-link TCP; below ~30KB the subflow-setup overhead makes MPTCP slower; bonding is strong for small files, MPTCP pulls ahead of bonding above ~150KB")
	res := &Result{Tables: []*Table{table}}
	sizeX := make([]float64, len(sizes))
	for i, size := range sizes {
		sizeX[i] = float64(size >> 10)
	}
	for c, mode := range modes {
		y := make([]float64, len(sizes))
		for r := range sizes {
			y[r] = results[r][c].RequestsPerSec
		}
		res.AddSeries(Series{Name: mode, Unit: "req/s", XLabel: "transfer KB", X: sizeX, Y: y})
	}
	return res, nil
}
