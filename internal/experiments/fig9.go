package experiments

import (
	"fmt"

	"mptcpgo/internal/middlebox"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
)

// Figure 9: goodput over a "real" commercial 3G network (≈2 Mbps achievable,
// deep buffers, NAT and other middleboxes on path) and a WiFi access point
// capped at 2 Mbps, as a function of the send/receive buffer size. The real
// networks are replaced by their emulated equivalents, with a NAT and a
// proactive-ACKing proxy installed on the 3G path to stand in for the
// operator's middleboxes (the paper notes MPTCP worked through them).

func init() {
	Register(Experiment{
		ID:    "fig9",
		Title: "Fig. 9 — MPTCP over (emulated) real 3G and capped WiFi",
		Run:   runFig9,
	})
}

func runFig9(opt Options) (*Result, error) {
	buffers := []int{50 << 10, 100 << 10, 200 << 10, 500 << 10}
	duration, warmup := fig4Duration(opt.Quick)

	variants := []fig4Variant{
		{name: "MPTCP", cfg: mptcpM12, iface: 0},
		{name: "TCP over WiFi", cfg: tcpBaseline, iface: 0},
		{name: "TCP over 3G", cfg: tcpBaseline, iface: 1},
	}
	table := NewTable("Goodput (Mbps) vs rcv/snd buffer (2 Mbps WiFi + 2 Mbps 3G)",
		append([]string{"buffer"}, variantNames(variants)...)...)

	results, err := sweepGrid(len(buffers), len(variants), func(r, c int) (BulkResult, error) {
		buf, v := buffers[r], variants[c]
		// The 3G path (index 1) carries the operator's middleboxes; they are
		// stateful, so each sweep point builds its own chain.
		boxes := map[int][]netem.Box{
			1: {
				middlebox.NewNAT(packet.MakeAddr(100, 64, 0, 1), true),
				middlebox.NewProactiveACKer(),
			},
		}
		return RunBulk(BulkOptions{
			Seed:        opt.Seed + uint64(buf)*3,
			Specs:       netem.Capped3GWiFiSpec(),
			Boxes:       boxes,
			Client:      v.cfg(buf),
			Server:      v.cfg(buf),
			ClientIface: v.iface,
			Duration:    duration,
			Warmup:      warmup,
		})
	})
	if err != nil {
		return nil, err
	}
	for r, buf := range buffers {
		row := []string{fmt.Sprintf("%dKB", buf>>10)}
		for c := range variants {
			row = append(row, fmtMbps(results[r][c].GoodputMbps))
		}
		table.AddRow(row...)
	}
	table.AddNote("paper: MPTCP never underperforms TCP; at 500KB it reaches almost double the goodput of either path, at 100KB it is ~25%% ahead")
	res := &Result{Tables: []*Table{table}}
	for _, s := range goodputSeries(buffers, variants, results) {
		res.AddSeries(s)
	}
	return res, nil
}
