package experiments

import (
	"fmt"
	"time"

	"mptcpgo/internal/netem"
)

// Loss-rate × RTT sweep (ROADMAP "scenario breadth"): bulk MPTCP over two
// symmetric 8 Mbps paths versus single-path TCP over one of them, across a
// grid of random-loss rates and base RTTs. MPTCP's coupled controller pools
// the two paths' capacity and rides out loss on either; the sweep quantifies
// how much of that pooling survives as loss and RTT grow.

func init() {
	Register(Experiment{
		ID:    "lossrtt",
		Title: "Loss-rate × RTT sweep — MPTCP pooling vs single-path TCP",
		Run:   runLossRTT,
	})
}

// lossRTTPoint is one grid point: MPTCP and TCP goodput at (loss, rtt).
type lossRTTPoint struct {
	mptcp, tcp float64
}

func runLossRTT(opt Options) (*Result, error) {
	duration := 25 * time.Second
	warmup := 5 * time.Second
	losses := []float64{0, 0.001, 0.01, 0.02, 0.05}
	rtts := []time.Duration{20 * time.Millisecond, 80 * time.Millisecond, 160 * time.Millisecond}
	if opt.Quick {
		duration = 8 * time.Second
		warmup = 2 * time.Second
		losses = []float64{0, 0.01, 0.05}
		rtts = []time.Duration{20 * time.Millisecond, 160 * time.Millisecond}
	}

	const rateMbps = 8
	pathsFor := func(loss float64, rtt time.Duration, n int) []netem.PathSpec {
		specs := make([]netem.PathSpec, n)
		// Deep 2 s drop-tail queues (the paper's cellular bufferbloat regime)
		// keep slow-start overshoot from ever dropping a packet, so the
		// injected random loss is the only loss the endpoints see and the
		// sweep isolates exactly the (loss, RTT) recovery behaviour.
		queue := int(float64(netem.Mbps(rateMbps)) / 8 * 2.0)
		for i := range specs {
			specs[i] = netem.Symmetric(fmt.Sprintf("p%d", i), netem.Mbps(rateMbps), rtt/2, queue, loss)
		}
		return specs
	}

	results, err := sweepGrid(len(losses), len(rtts), func(r, c int) (lossRTTPoint, error) {
		seed := opt.Seed + uint64(r)*17 + uint64(c)*3
		mp, err := RunBulk(BulkOptions{
			Seed:     seed,
			Specs:    pathsFor(losses[r], rtts[c], 2),
			Client:   mptcpM12(1 << 20),
			Server:   mptcpM12(1 << 20),
			Duration: duration,
			Warmup:   warmup,
		})
		if err != nil {
			return lossRTTPoint{}, err
		}
		tcp, err := RunBulk(BulkOptions{
			Seed:     seed + 1,
			Specs:    pathsFor(losses[r], rtts[c], 1),
			Client:   tcpBaseline(1 << 20),
			Server:   tcpBaseline(1 << 20),
			Duration: duration,
			Warmup:   warmup,
		})
		if err != nil {
			return lossRTTPoint{}, err
		}
		return lossRTTPoint{mptcp: mp.GoodputMbps, tcp: tcp.GoodputMbps}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{}
	table := NewTable(
		fmt.Sprintf("goodput over two %d Mbps paths (MPTCP) vs one (TCP)", rateMbps),
		"loss %", "rtt ms", "mptcp Mbps", "tcp Mbps", "pooling ×")
	for r, loss := range losses {
		for c, rtt := range rtts {
			pt := results[r][c]
			ratio := 0.0
			if pt.tcp > 0 {
				ratio = pt.mptcp / pt.tcp
			}
			table.AddRow(fmt.Sprintf("%.1f", loss*100),
				fmt.Sprintf("%.0f", float64(rtt)/float64(time.Millisecond)),
				fmtMbps(pt.mptcp), fmtMbps(pt.tcp), fmt.Sprintf("%.2f", ratio))
		}
	}
	table.AddNote("pooling × = MPTCP goodput over the single-path TCP baseline at the same loss and RTT; 2.0 is perfect capacity pooling of the two paths")
	res.AddTable(table)
	for c, rtt := range rtts {
		y := make([]float64, len(losses))
		x := make([]float64, len(losses))
		for r := range losses {
			x[r] = losses[r] * 100
			y[r] = results[r][c].mptcp
		}
		res.AddSeries(Series{
			Name:   fmt.Sprintf("mptcp rtt=%dms", rtt/time.Millisecond),
			Unit:   "Mbps",
			XLabel: "loss %",
			X:      x,
			Y:      y,
		})
	}
	return res, nil
}
