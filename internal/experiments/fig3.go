package experiments

import (
	"fmt"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
)

// Figure 3: goodput over a 10 Gbps LAN as a function of the TCP maximum
// segment size, with DSS checksums enabled (computed in software, as in the
// paper's implementation) and disabled (checksum offload does the TCP
// checksum, the DSS checksum is simply not used).
//
// The paper's Xeon/10G testbed is replaced by the host CPU cost model in
// internal/netem: every packet is charged a fixed per-packet processing cost
// and, when DSS checksums are enabled, a per-byte cost measured from this
// build's actual ones-complement checksum implementation (see
// CalibrateChecksumCost).

func init() {
	Register(Experiment{
		ID:    "fig3",
		Title: "Fig. 3 — impact of DSS checksumming on 10G goodput vs MSS",
		Run:   runFig3,
	})
}

// CalibrateChecksumCost measures the per-byte cost of the DSS/TCP
// ones-complement checksum on this machine.
func CalibrateChecksumCost() time.Duration {
	buf := make([]byte, 64<<10)
	for i := range buf {
		buf[i] = byte(i)
	}
	const rounds = 64
	start := time.Now()
	var sink uint16
	for i := 0; i < rounds; i++ {
		sink ^= packet.Checksum(buf)
	}
	elapsed := time.Since(start)
	_ = sink
	perByte := elapsed / time.Duration(rounds*len(buf))
	if perByte <= 0 {
		perByte = time.Nanosecond
	}
	return perByte
}

// fig3PerPacketCost is the fixed per-packet processing cost of the host model
// (interrupt handling, protocol processing). It is chosen so that with the
// standard Ethernet MSS the 10G link cannot be filled — the regime the paper
// reports ("performance is limited by per-packet costs such as interrupt
// processing").
const fig3PerPacketCost = 2 * time.Microsecond

// PaperEraChecksumCost stands in for CalibrateChecksumCost when
// Options.PaperEraCPU is set: the per-byte ones-complement checksum cost of
// the paper's 2012-era testbed CPUs (a few hundred MB/s of checksum
// throughput), so the checksum-on curve keeps its distance from the offload
// curve even though this build's word-at-a-time checksum is ~4× faster than
// the one the cost model was originally calibrated against.
const PaperEraChecksumCost = 3 * time.Nanosecond

func runFig3(opt Options) (*Result, error) {
	msses := []int{1460, 2960, 4440, 5920, 7400, 8960}
	if opt.Quick {
		msses = []int{1460, 4440, 8960}
	}
	duration := 3 * time.Second
	warmup := 500 * time.Millisecond
	if opt.Quick {
		duration = 1 * time.Second
		warmup = 250 * time.Millisecond
	}

	perByte := CalibrateChecksumCost()
	costKind := "measured"
	if opt.PaperEraCPU {
		perByte = PaperEraChecksumCost
		costKind = "paper-era"
	}
	table := NewTable("Average goodput (Gbps) vs MSS on 2×10Gbps paths",
		"MSS (bytes)", "MPTCP - No Checksum", "MPTCP - Checksum")
	table.AddNote("host CPU model: %v per packet; %s checksum cost %v/byte (applied per payload byte at sender and receiver when DSS checksums are on)",
		fig3PerPacketCost, costKind, perByte)

	variants := []bool{false, true} // columns: (no checksum, checksum)
	results, err := sweepGrid(len(msses), len(variants), func(r, c int) (float64, error) {
		mss, withChecksum := msses[r], variants[c]
		cfg := mptcpM12(16 << 20)
		cfg.UseDSSChecksum = withChecksum
		cfg.SubflowTemplate.MSS = mss
		return runFig3Point(opt.Seed+uint64(mss), cfg, withChecksum, perByte, duration, warmup)
	})
	if err != nil {
		return nil, err
	}
	res := &Result{}
	mssX := make([]float64, len(msses))
	noCsum := make([]float64, len(msses))
	withCsum := make([]float64, len(msses))
	for r, mss := range msses {
		table.AddRow(fmt.Sprintf("%d", mss),
			fmt.Sprintf("%.2f", results[r][0]/1e3),
			fmt.Sprintf("%.2f", results[r][1]/1e3))
		mssX[r] = float64(mss)
		noCsum[r] = results[r][0] / 1e3
		withCsum[r] = results[r][1] / 1e3
	}
	table.AddNote("paper: goodput rises with MSS as per-packet costs amortize; with jumbo frames software DSS checksums cost ~30%% of goodput")
	res.AddTable(table)
	res.AddSeries(Series{Name: "MPTCP - No Checksum", Unit: "Gbps", XLabel: "MSS bytes", X: mssX, Y: noCsum})
	res.AddSeries(Series{Name: "MPTCP - Checksum", Unit: "Gbps", XLabel: "MSS bytes", X: mssX, Y: withCsum})
	return res, nil
}

// runFig3Point runs one bulk transfer over the 10G topology with the CPU
// model installed and returns goodput in Mbps.
func runFig3Point(seed uint64, cfg core.Config, checksummed bool, perByte time.Duration, duration, warmup time.Duration) (float64, error) {
	specs := netem.TenGigSpec()
	opt := BulkOptions{
		Seed:     seed,
		Specs:    specs,
		Client:   cfg,
		Server:   cfg,
		Duration: duration,
		Warmup:   warmup,
		HostCPU: &netem.CPUModel{
			PerPacket:      fig3PerPacketCost,
			PerPayloadByte: cpuPerByte(checksummed, perByte),
		},
	}
	res, err := RunBulk(opt)
	if err != nil {
		return 0, err
	}
	return res.GoodputMbps, nil
}

func cpuPerByte(checksummed bool, perByte time.Duration) time.Duration {
	if !checksummed {
		// Checksum offload: no per-byte software cost.
		return 0
	}
	return perByte
}
