package experiments

import (
	"fmt"
	"testing"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/middlebox"
	"mptcpgo/internal/netem"
)

// TestDebugProactiveProxy is a diagnostic for the proactive-ACK middlebox
// scenario; run with -run TestDebugProactiveProxy -v.
func TestDebugProactiveProxy(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	cfg := core.DefaultConfig()
	cfg.SendBufBytes = 200 << 10
	cfg.RecvBufBytes = 200 << 10
	res, err := RunBulk(BulkOptions{
		Seed:     7,
		Specs:    netem.WiFi3GSpec(),
		Boxes:    map[int][]netem.Box{0: {middlebox.NewProactiveACKer()}},
		Client:   cfg,
		Server:   cfg,
		Duration: 6 * time.Second,
		Warmup:   1 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("proxy: goodput=%.2f Mbps total=%d mptcp=%v subflows=%d clientStats=%+v serverStats=%+v\n",
		res.GoodputMbps, res.TotalReceived, res.MPTCPActive, res.Subflows, res.ClientStats, res.ServerStats)

	res2, err := RunBulk(BulkOptions{
		Seed:     7,
		Specs:    netem.WiFi3GSpec(),
		Boxes:    map[int][]netem.Box{0: {middlebox.NewCoalescer(2, 8192)}},
		Client:   cfg,
		Server:   cfg,
		Duration: 6 * time.Second,
		Warmup:   1 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("coalesce: goodput=%.2f Mbps total=%d mptcp=%v subflows=%d clientStats=%+v serverStats=%+v\n",
		res2.GoodputMbps, res2.TotalReceived, res2.MPTCPActive, res2.Subflows, res2.ClientStats, res2.ServerStats)
}
