package experiments

import (
	"fmt"
	"time"

	"mptcpgo/internal/netem"
)

// Figure 5: sender and receiver memory consumption as a function of the
// configured maximum receive buffer, with buffer autotuning (Mechanism 3) and
// with/without congestion-window capping (Mechanism 4), compared to
// single-path TCP over WiFi and over 3G.

func init() {
	Register(Experiment{
		ID:    "fig5",
		Title: "Fig. 5 — receive-buffer impact on memory use (WiFi + 3G)",
		Run:   runFig5,
	})
}

func runFig5(opt Options) (*Result, error) {
	buffers := fig4Buffers(opt.Quick)
	duration, warmup := fig4Duration(opt.Quick)

	variants := []fig4Variant{
		{name: "MPTCP+M1,2,3,4", cfg: mptcpM1234, iface: 0},
		{name: "MPTCP+M1,2,3", cfg: mptcpM123, iface: 0},
		{name: "TCP over WiFi", cfg: tcpBaseline, iface: 0},
		{name: "TCP over 3G", cfg: tcpBaseline, iface: 1},
	}

	sender := NewTable("Sender memory (mean KB) vs configured receive buffer",
		append([]string{"max buffer"}, variantNames(variants)...)...)
	receiver := NewTable("Receiver memory (mean KB) vs configured receive buffer",
		append([]string{"max buffer"}, variantNames(variants)...)...)

	results, err := sweepGrid(len(buffers), len(variants), func(r, c int) (BulkResult, error) {
		buf, v := buffers[r], variants[c]
		cfg := v.cfg(buf)
		// Single-path TCP baselines use the endpoint's own autotuning.
		if !cfg.EnableMPTCP {
			cfg.SubflowTemplate.AutoTuneBuffers = true
		}
		return RunBulk(BulkOptions{
			Seed:           opt.Seed + uint64(buf)*7,
			Specs:          netem.WiFi3GSpec(),
			Client:         cfg,
			Server:         cfg,
			ClientIface:    v.iface,
			Duration:       duration,
			Warmup:         warmup,
			MemorySampling: true,
			SampleInterval: 50 * time.Millisecond,
		})
	})
	if err != nil {
		return nil, err
	}
	for r, buf := range buffers {
		srow := []string{fmt.Sprintf("%dKB", buf>>10)}
		rrow := []string{fmt.Sprintf("%dKB", buf>>10)}
		for c := range variants {
			res := results[r][c]
			srow = append(srow, fmt.Sprintf("%.0f", res.SenderMemMeanKB))
			rrow = append(rrow, fmt.Sprintf("%.0f", res.ReceiverMemMeanKB))
		}
		sender.AddRow(srow...)
		receiver.AddRow(rrow...)
	}
	sender.AddNote("paper: TCP/WiFi uses the least memory, TCP/3G more, MPTCP up to ~500KB; capping (M4) roughly halves MPTCP's usage at large configured buffers")
	receiver.AddNote("paper: receiver memory for MPTCP is at least ~2/3 of the sender's because of multipath reordering; single-path TCP receivers stay near zero")
	res := &Result{Tables: []*Table{sender, receiver}}
	x := make([]float64, len(buffers))
	for i, buf := range buffers {
		x[i] = float64(buf >> 10)
	}
	for c, v := range variants {
		snd := make([]float64, len(buffers))
		rcv := make([]float64, len(buffers))
		for r := range buffers {
			snd[r] = results[r][c].SenderMemMeanKB
			rcv[r] = results[r][c].ReceiverMemMeanKB
		}
		res.AddSeries(Series{Name: "sender mem " + v.name, Unit: "KB", XLabel: "buffer KB", X: x, Y: snd})
		res.AddSeries(Series{Name: "receiver mem " + v.name, Unit: "KB", XLabel: "buffer KB", X: x, Y: rcv})
	}
	return res, nil
}
