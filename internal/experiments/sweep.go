package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Sweep runs fn(i) for every i in [0, n) across up to GOMAXPROCS (by
// default runtime.NumCPU()) worker goroutines and returns the results in
// index order.
//
// Every experiment sweep point is self-contained — it builds its own
// sim.Simulator with a seed derived from the point's parameters — so results
// (and therefore the rendered tables) are bit-identical regardless of how
// the points are scheduled across workers. Errors are reported from the
// lowest-indexed failing point so output stays deterministic too.
func Sweep[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return SweepWorkers(n, 0, fn)
}

// SweepWorkers is Sweep with an explicit worker count: fn(i) runs for every i
// in [0, n) across up to workers goroutines (0 means GOMAXPROCS) and results
// come back in index order. The fleet engine uses it to scale shard execution
// independently of GOMAXPROCS; results must not depend on the worker count,
// which holds whenever every point is self-contained.
func SweepWorkers[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sweepGrid runs a rows × cols grid of sweep points in parallel and returns
// the results indexed [row][col]. The figure harnesses use it for their
// buffer × variant sweeps.
func sweepGrid[T any](rows, cols int, fn func(r, c int) (T, error)) ([][]T, error) {
	flat, err := Sweep(rows*cols, func(i int) (T, error) {
		return fn(i/cols, i%cols)
	})
	if err != nil {
		return nil, err
	}
	out := make([][]T, rows)
	for r := 0; r < rows; r++ {
		out[r] = flat[r*cols : (r+1)*cols]
	}
	return out, nil
}
