package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/middlebox"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
)

// mbox reproduces the design-validation results of §3 and §4.1: every
// middlebox behaviour the paper models (NAT, sequence-number rewriting,
// option stripping from SYNs or from all segments, segment splitting,
// segment coalescing, pro-active ACKing, payload modification) is placed on
// one or both paths of the WiFi+3G scenario and the table reports how the
// connection responded: full MPTCP, fallback to regular TCP, or subflow
// reset — and whether the data transfer completed correctly in every case
// (the paper's deployability requirement).

func init() {
	Register(Experiment{
		ID:    "mbox",
		Title: "Middlebox traversal matrix (§3, §4.1)",
		Run:   runMbox,
	})
}

type mboxCase struct {
	name     string
	boxes    func() []netem.Box
	both     bool   // install on both paths (otherwise only on path 0)
	expected string // expected outcome, for the table
}

func mboxCases() []mboxCase {
	return []mboxCase{
		{"none (baseline)", func() []netem.Box { return nil }, false, "MPTCP on both paths"},
		{"NAT", func() []netem.Box { return []netem.Box{middlebox.NewNAT(packet.MakeAddr(100, 64, 1, 1), true)} }, false, "MPTCP unaffected"},
		{"sequence rewriting", func() []netem.Box { return []netem.Box{middlebox.NewSeqRewriter(0)} }, false, "MPTCP unaffected (relative DSS offsets)"},
		{"strip options from SYNs (one path)", func() []netem.Box { return []netem.Box{middlebox.NewOptionStripper(true)} }, false, "falls back to regular TCP"},
		{"strip options from SYNs (both paths)", func() []netem.Box { return []netem.Box{middlebox.NewOptionStripper(true)} }, true, "falls back to regular TCP"},
		{"strip options from all segments", func() []netem.Box {
			s := middlebox.NewOptionStripper(false)
			s.SYNOnly = false
			return []netem.Box{s}
		}, false, "negotiates, then falls back on first data"},
		{"segment splitting (TSO, 536B)", func() []netem.Box { return []netem.Box{middlebox.NewSplitter(536)} }, false, "MPTCP unaffected (duplicate mappings are harmless)"},
		{"segment coalescing", func() []netem.Box { return []netem.Box{middlebox.NewCoalescer(2, 8192)} }, false, "MPTCP works; lost mappings retransmitted"},
		{"pro-active ACKing proxy", func() []netem.Box { return []netem.Box{middlebox.NewProactiveACKer()} }, false, "MPTCP works (DATA_ACK is authoritative)"},
		{"payload-modifying ALG", func() []netem.Box { return []netem.Box{middlebox.NewPayloadCorrupter(400)} }, false, "checksum failure: subflow reset, transfer continues"},
		// Appended after the original matrix so the earlier rows keep their
		// per-case seeds (opt.Seed + i*101) and stay byte-identical.
		{"wire reserializer (codec round-trip)", func() []netem.Box { return []netem.Box{middlebox.NewReserializer()} }, false, "MPTCP unaffected (wire and in-memory forms agree)"},
	}
}

func runMbox(opt Options) (*Result, error) {
	duration := 8 * time.Second
	if opt.Quick {
		duration = 4 * time.Second
	}

	table := NewTable("MPTCP behaviour through middleboxes (WiFi+3G, 200KB buffers)",
		"middlebox", "transfer ok", "mptcp active", "fell back", "subflows", "csum failures", "expected")

	cases := mboxCases()
	results, err := Sweep(len(cases), func(i int) (BulkResult, error) {
		mc := cases[i]
		// Middlebox elements are stateful: each sweep point builds its own.
		boxes := map[int][]netem.Box{0: mc.boxes()}
		if mc.both {
			boxes[1] = mc.boxes()
		}
		cfg := core.DefaultConfig()
		cfg.SendBufBytes = 200 << 10
		cfg.RecvBufBytes = 200 << 10
		pcapPath := ""
		if opt.PcapDir != "" {
			if err := os.MkdirAll(opt.PcapDir, 0o755); err != nil {
				return BulkResult{}, err
			}
			pcapPath = filepath.Join(opt.PcapDir, fmt.Sprintf("mbox-%02d.pcap", i))
		}
		return RunBulk(BulkOptions{
			Seed:      opt.Seed + uint64(i)*101,
			Specs:     netem.WiFi3GSpec(),
			Boxes:     boxes,
			Client:    cfg,
			Server:    cfg,
			Duration:  duration,
			Warmup:    duration / 4,
			PcapPath:  pcapPath,
			Trace:     opt.Trace,
			TraceName: fmt.Sprintf("mbox-%02d", i),
		})
	})
	if err != nil {
		return nil, err
	}
	goodput := Series{Name: "goodput", Unit: "Mbps", XLabel: "case index"}
	for i, mc := range cases {
		res := results[i]
		ok := res.GoodputMbps > 0.5 // the transfer made real progress
		table.AddRow(mc.name,
			fmt.Sprintf("%v (%.1f Mbps)", ok, res.GoodputMbps),
			fmt.Sprintf("%v", res.MPTCPActive),
			fmt.Sprintf("%v", res.ClientStats.Fallbacks > 0 || !res.MPTCPActive),
			fmt.Sprintf("%d", res.Subflows),
			fmt.Sprintf("%d", res.ClientStats.ChecksumFailures+res.ServerStats.ChecksumFailures),
			mc.expected)
		goodput.X = append(goodput.X, float64(i))
		goodput.Y = append(goodput.Y, res.GoodputMbps)
	}
	table.AddNote("the deployability requirement (§2): data transfer must complete in every row, with or without multipath")
	return &Result{Tables: []*Table{table}, Series: []Series{goodput}}, nil
}
