// Package experiments contains one harness per table/figure in the paper's
// evaluation. Each experiment builds its topology, runs the workload on the
// discrete-event simulator and returns a structured Result (tables, numeric
// series and run metadata), so `mptcpbench -run figN` (or the corresponding
// Benchmark in bench_test.go) regenerates the figure's data in text, JSON or
// CSV form.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Options controls how an experiment is run. Construct it with NewOptions
// and the With* functional options; the zero value (plus withDefaults) keeps
// the historical behaviour of a full sweep at seed 42.
type Options struct {
	// Quick shrinks transfer durations and sweep densities so the experiment
	// finishes in a few seconds (used by `go test -bench` and CI); the full
	// sweep is the default for the CLI.
	Quick bool
	// Seed is the base RNG seed; every run derives its own deterministic
	// seed from it.
	Seed uint64
	// PaperEraCPU replaces this machine's measured per-byte checksum cost
	// with a fixed 2012-class figure in the experiments that model host CPU
	// (Figure 3), so the emulated curves keep the paper's shape on modern
	// hardware.
	PaperEraCPU bool

	// PcapDir, when non-empty, makes experiments that support wire capture
	// (currently the middlebox matrix) write one classic pcap file per case
	// into this directory. Capture taps only observe traffic through the
	// wire codec; results are unchanged.
	PcapDir string

	// Trace, when enabled (non-empty Dir), makes experiments that support
	// the flight recorder write `<case>-trace.json` and `<case>-events.jsonl`
	// into Trace.Dir. Capture never changes the experiment's own results.
	Trace TraceSpec

	// seedSet records that Seed was supplied explicitly (WithSeed), making
	// seed 0 a legal seed instead of an alias for the default.
	seedSet bool
}

// Option mutates Options; see WithQuick, WithSeed and WithPaperEraCPU.
type Option func(*Options)

// WithQuick selects the reduced sweep.
func WithQuick() Option { return func(o *Options) { o.Quick = true } }

// WithSeed sets the base RNG seed. Any value — including 0 — is used as
// given; the default seed (42) applies only when WithSeed is absent.
func WithSeed(seed uint64) Option {
	return func(o *Options) {
		o.Seed = seed
		o.seedSet = true
	}
}

// WithPaperEraCPU selects the 2012-class host CPU cost model.
func WithPaperEraCPU() Option { return func(o *Options) { o.PaperEraCPU = true } }

// WithPcapDir enables per-case pcap capture into dir for experiments that
// support it.
func WithPcapDir(dir string) Option { return func(o *Options) { o.PcapDir = dir } }

// WithTrace enables flight-recorder capture into dir; interval sets the
// per-subflow time-series cadence (0 records events only).
func WithTrace(dir string, interval time.Duration) Option {
	return func(o *Options) { o.Trace = TraceSpec{Dir: dir, ProbeInterval: interval} }
}

// NewOptions applies the functional options to a zero Options value.
func NewOptions(opts ...Option) Options {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 && !o.seedSet {
		o.Seed = 42
	}
	return o
}

// Table is one table or figure series produced by an experiment.
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-form note rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Columns)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// MarshalJSON keeps an empty row set encoded as [] rather than null.
func (t *Table) MarshalJSON() ([]byte, error) {
	type alias Table
	a := alias(*t)
	if a.Rows == nil {
		a.Rows = [][]string{}
	}
	if a.Columns == nil {
		a.Columns = []string{}
	}
	return json.Marshal(a)
}

// Experiment is a registered, runnable experiment.
type Experiment struct {
	// ID is the short identifier used on the command line (e.g. "fig4").
	ID string
	// Title describes what the experiment reproduces.
	Title string
	// Run executes the experiment and returns its result; the registry
	// fills in the identification and metadata fields afterwards.
	Run func(opt Options) (*Result, error)
}

var registry = map[string]Experiment{}

// Register adds an experiment to the registry (called from init functions).
func Register(e Experiment) {
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs returns all registered experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id and returns its structured result.
func Run(id string, opts ...Option) (*Result, error) {
	return RunWithOptions(id, NewOptions(opts...))
}

// RunWithOptions is Run for callers that already hold an Options value.
func RunWithOptions(id string, opt Options) (*Result, error) {
	e, ok := Get(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	opt = opt.withDefaults()
	start := time.Now()
	res, err := e.Run(opt)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID = e.ID
	res.Title = e.Title
	res.Seed = opt.Seed
	res.Quick = opt.Quick
	res.PaperEraCPU = opt.PaperEraCPU
	res.Elapsed = time.Since(start)
	return res, nil
}

// RunAll runs every registered experiment and writes the tables to w.
func RunAll(w io.Writer, opt Options) error {
	for _, id := range IDs() {
		if err := RunAndPrint(w, id, opt); err != nil {
			return err
		}
	}
	return nil
}

// RunAndPrint runs one experiment by id and writes its tables to w as
// aligned text (the historical output format).
func RunAndPrint(w io.Writer, id string, opt Options) error {
	res, err := RunWithOptions(id, opt)
	if err != nil {
		return err
	}
	return res.Text(w)
}
