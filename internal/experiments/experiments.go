// Package experiments contains one harness per table/figure in the paper's
// evaluation. Each experiment builds its topology, runs the workload on the
// discrete-event simulator and returns the rows/series the paper reports, so
// `mptcpbench -run figN` (or the corresponding Benchmark in bench_test.go)
// regenerates the figure's data.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Options controls how an experiment is run.
type Options struct {
	// Quick shrinks transfer durations and sweep densities so the experiment
	// finishes in a few seconds (used by `go test -bench` and CI); the full
	// sweep is the default for the CLI.
	Quick bool
	// Seed is the base RNG seed; every run derives its own deterministic
	// seed from it.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Table is one table or figure series produced by an experiment.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-form note rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Columns)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is a registered, runnable experiment.
type Experiment struct {
	// ID is the short identifier used on the command line (e.g. "fig4").
	ID string
	// Title describes what the experiment reproduces.
	Title string
	// Run executes the experiment and returns its tables.
	Run func(opt Options) ([]*Table, error)
}

var registry = map[string]Experiment{}

// Register adds an experiment to the registry (called from init functions).
func Register(e Experiment) {
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs returns all registered experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RunAll runs every registered experiment and writes the tables to w.
func RunAll(w io.Writer, opt Options) error {
	for _, id := range IDs() {
		if err := RunAndPrint(w, id, opt); err != nil {
			return err
		}
	}
	return nil
}

// RunAndPrint runs one experiment by id and writes its tables to w.
func RunAndPrint(w io.Writer, id string, opt Options) error {
	e, ok := Get(id)
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	fmt.Fprintf(w, "# %s — %s\n\n", e.ID, e.Title)
	tables, err := e.Run(opt)
	if err != nil {
		return fmt.Errorf("experiments: %s: %w", id, err)
	}
	for _, t := range tables {
		t.Fprint(w)
	}
	return nil
}
