package experiments

import (
	"fmt"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/httpsim"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/sim"
	"mptcpgo/internal/trace"
	"mptcpgo/internal/workload"
)

// Offered-load sweep: an open-loop Poisson client drives a single bottleneck
// link at a grid of offered loads (fractions of the link capacity) for each
// of several flow-size distributions. Past the knee (offered ≈ capacity)
// goodput saturates and the completion-latency tail rises — the open-loop
// regime a closed-loop workload structurally cannot reach. Every grid point
// is a self-contained simulation, fanned across the Sweep worker pool.

func init() {
	Register(Experiment{
		ID:    "openloop",
		Title: "Offered-load sweep — open-loop arrivals vs bottleneck capacity",
		Run:   runOpenLoopSweep,
	})
}

// openLoopCapacityMbps is the bottleneck access link of every sweep point.
const openLoopCapacityMbps = 10

// openLoopPoint is one grid point's measurements.
type openLoopPoint struct {
	offeredMbps float64
	goodput     float64
	completed   int
	dropped     int
	unfinished  int
	p50, p99    float64
}

func runOpenLoopSweep(opt Options) (*Result, error) {
	window := 8 * time.Second
	flowDeadline := 4 * time.Second
	factors := []float64{0.3, 0.6, 0.9, 1.2, 1.5, 2.0}
	if opt.Quick {
		window = 3 * time.Second
		flowDeadline = 2 * time.Second
		factors = []float64{0.5, 1.0, 1.75}
	}
	dists := []workload.SizeDist{
		workload.FixedSize(32 << 10),
		workload.WebMix(),
		workload.BoundedPareto(1.2, 4<<10, 1<<20),
	}

	results, err := sweepGrid(len(dists), len(factors), func(r, c int) (openLoopPoint, error) {
		return runOpenLoopPoint(opt.Seed+uint64(r)*131+uint64(c), dists[r], factors[c], window, flowDeadline)
	})
	if err != nil {
		return nil, err
	}

	res := &Result{}
	for r, dist := range dists {
		table := NewTable(
			fmt.Sprintf("open-loop sweep, %s sizes over a %d Mbps bottleneck", dist.Name(), openLoopCapacityMbps),
			"load factor", "offered Mbps", "goodput Mbps", "done", "dropped", "open", "p50 ms", "p99 ms")
		goodput := make([]float64, len(factors))
		p99 := make([]float64, len(factors))
		for c, f := range factors {
			pt := results[r][c]
			goodput[c] = pt.goodput
			p99[c] = pt.p99
			table.AddRow(fmt.Sprintf("%.2f", f), fmt.Sprintf("%.2f", pt.offeredMbps),
				fmt.Sprintf("%.2f", pt.goodput), fmt.Sprintf("%d", pt.completed),
				fmt.Sprintf("%d", pt.dropped), fmt.Sprintf("%d", pt.unfinished),
				fmt.Sprintf("%.2f", pt.p50), fmt.Sprintf("%.2f", pt.p99))
		}
		table.AddNote("open-loop Poisson arrivals; goodput saturates at the %d Mbps knee while the latency tail keeps rising", openLoopCapacityMbps)
		res.AddTable(table)
		res.AddSeries(Series{Name: "goodput " + dist.Name(), Unit: "Mbps", XLabel: "load factor", X: factors, Y: goodput})
		res.AddSeries(Series{Name: "p99 " + dist.Name(), Unit: "ms", XLabel: "load factor", X: factors, Y: p99})
	}
	return res, nil
}

// runOpenLoopPoint runs one self-contained open-loop simulation: a two-host
// topology with one bottleneck path, a server, and a Poisson open-loop pool
// offering factor × capacity.
func runOpenLoopPoint(seed uint64, dist workload.SizeDist, factor float64, window, flowDeadline time.Duration) (openLoopPoint, error) {
	rate := factor * openLoopCapacityMbps * 1e6 / (dist.Mean() * 8)

	s := sim.New(seed)
	net := netem.Build(s, netem.Symmetric("bottleneck",
		netem.Mbps(openLoopCapacityMbps), 10*time.Millisecond,
		int(float64(netem.Mbps(openLoopCapacityMbps))/8*0.100), 0))

	srvCfg := core.DefaultConfig()
	srvCfg.AdvertiseAddresses = false
	if _, err := httpsim.StartServer(core.NewManager(net.Server), httpsim.ServerConfig{Port: 80, Conn: srvCfg}); err != nil {
		return openLoopPoint{}, err
	}

	cliCfg := core.DefaultConfig()
	cliCfg.AdvertiseAddresses = false
	cliCfg.SendBufBytes = 128 << 10
	cliCfg.RecvBufBytes = 128 << 10
	pool, err := httpsim.NewOpenLoopPool(core.NewManager(net.Client), httpsim.OpenLoopConfig{
		Arrival:      workload.Poisson(rate),
		Sizes:        dist,
		Rng:          sim.NewRNG(sim.DeriveSeed(seed, 1)),
		Window:       window,
		FlowDeadline: flowDeadline,
		ServerAddr:   net.ServerAddr(0),
		ServerPort:   80,
		Conn:         cliCfg,
		Iface:        net.Client.Interfaces()[0],
	})
	if err != nil {
		return openLoopPoint{}, err
	}
	s.Schedule(0, pool.Start)
	deadline := window + flowDeadline + 5*time.Second
	for !pool.Done() && s.Now() < deadline && s.Step() {
	}

	r := pool.Result()
	samples := pool.LatencySamples()
	return openLoopPoint{
		offeredMbps: r.OfferedMbps,
		goodput:     r.GoodputMbps,
		completed:   r.Completed,
		dropped:     r.Dropped,
		unfinished:  r.Unfinished,
		p50:         trace.Percentile(samples, 50),
		p99:         trace.Percentile(samples, 99),
	}, nil
}
