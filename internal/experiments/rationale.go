package experiments

import (
	"fmt"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/sim"
)

// rationale demonstrates the §3.3.1 design argument experimentally: if MPTCP
// inherited TCP's per-subflow receive-window semantics, a subflow that fails
// silently while holding the trailing edge of the window deadlocks the whole
// connection; with the shared (connection-level) window the retransmission on
// the surviving subflow always fits and the transfer completes.

func init() {
	Register(Experiment{
		ID:    "rationale",
		Title: "§3.3.1 — per-subflow vs shared receive window under silent subflow failure",
		Run:   runRationale,
	})
}

// runWindowScenario transfers data over WiFi+3G, fails the 3G path silently
// mid-transfer, and reports how much the application ultimately received.
func runWindowScenario(seed uint64, perSubflowWindow bool, total int, deadline time.Duration) (received int, completed bool, err error) {
	s := sim.New(seed)
	net := netem.Build(s, netem.WiFi3GSpec()...)

	cfg := core.RegularMPTCPConfig()
	cfg.PerSubflowReceiveWindow = perSubflowWindow
	cfg.SendBufBytes = 64 << 10
	cfg.RecvBufBytes = 64 << 10
	// Disable the rescue mechanisms: the point of the experiment is the
	// window semantics themselves.
	cfg.OpportunisticRetransmit = false
	cfg.PenalizeSlowSubflows = false

	cliMgr := core.NewManager(net.Client)
	srvMgr := core.NewManager(net.Server)

	_, err = srvMgr.Listen(80, cfg, func(c *core.Connection) {
		c.OnReadable = func() {
			for {
				data := c.Read(64 << 10)
				if len(data) == 0 {
					break
				}
				received += len(data)
			}
		}
	})
	if err != nil {
		return 0, false, err
	}
	conn, err := cliMgr.Dial(net.Client.Interfaces()[0], packet.Endpoint{Addr: net.ServerAddr(0), Port: 80}, cfg)
	if err != nil {
		return 0, false, err
	}
	payload := make([]byte, 16<<10)
	sent := 0
	pump := func() {
		for sent < total {
			w := conn.Write(payload[:min(len(payload), total-sent)])
			if w == 0 {
				return
			}
			sent += w
		}
	}
	conn.OnEstablished = pump
	conn.OnWritable = pump

	// Fail the 3G path silently once both subflows carry data.
	s.Schedule(2*time.Second, func() { net.Path(1).SetDown(true) })

	if err := s.RunUntil(deadline); err != nil {
		return received, false, err
	}
	return received, received >= total, nil
}

func runRationale(opt Options) (*Result, error) {
	total := 2 << 20
	deadline := 60 * time.Second
	if opt.Quick {
		total = 1 << 20
		deadline = 30 * time.Second
	}

	table := NewTable("Silent 3G failure at t=2s, 64KB buffers, no rescue mechanisms",
		"receive-window semantics", "bytes delivered", "transfer completed")
	semantics := []bool{true, false}
	type windowResult struct {
		received  int
		completed bool
	}
	results, err := Sweep(len(semantics), func(i int) (windowResult, error) {
		received, completed, err := runWindowScenario(opt.Seed+9, semantics[i], total, deadline)
		return windowResult{received, completed}, err
	})
	if err != nil {
		return nil, err
	}
	delivered := Series{Name: "bytes delivered", Unit: "bytes", XLabel: "0=per-subflow window, 1=shared window"}
	for i, perSubflow := range semantics {
		name := "shared connection-level window (MPTCP design)"
		if perSubflow {
			name = "per-subflow windows (naive TCP inheritance)"
		}
		table.AddRow(name, fmt.Sprintf("%d / %d", results[i].received, total), fmt.Sprintf("%v", results[i].completed))
		delivered.X = append(delivered.X, float64(i))
		delivered.Y = append(delivered.Y, float64(results[i].received))
	}
	table.AddNote("paper §3.3.1: with per-subflow windows the data lost on the failed subflow cannot be resent on the surviving one once its window slice has filled — the connection deadlocks; the shared window avoids this by construction")
	return &Result{Tables: []*Table{table}, Series: []Series{delivered}}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
