package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Series is one numeric metric series produced by an experiment: the data
// behind a figure curve, exposed so downstream tooling (plotters, CI
// trajectory tracking) can consume experiments without parsing tables.
type Series struct {
	// Name identifies the curve ("MPTCP+M1,2", "checksum", ...).
	Name string `json:"name"`
	// Unit is the unit of the Y values ("Mbps", "KB", "steps/segment").
	Unit string `json:"unit,omitempty"`
	// XLabel describes the X axis ("buffer KB", "MSS bytes").
	XLabel string `json:"x_label,omitempty"`
	// X holds the sweep points; when empty, Y is indexed 0..n-1.
	X []float64 `json:"x,omitempty"`
	// Y holds one value per sweep point.
	Y []float64 `json:"y"`
}

// Result is the structured outcome of one experiment run: the rendered
// tables, the numeric series behind them, and run metadata. Encoders render
// it as aligned text (byte-identical to the historical RunAndPrint output),
// JSON or CSV.
type Result struct {
	// ID and Title identify the experiment ("fig4", ...).
	ID    string `json:"id"`
	Title string `json:"title"`
	// Seed is the effective base RNG seed the run used.
	Seed uint64 `json:"seed"`
	// Quick reports whether the reduced sweep was run.
	Quick bool `json:"quick"`
	// PaperEraCPU reports whether the 2012-era CPU cost model was used.
	PaperEraCPU bool `json:"paper_era_cpu,omitempty"`
	// Elapsed is the wall-clock runtime of the experiment.
	Elapsed time.Duration `json:"elapsed_ns"`

	Tables []*Table `json:"tables"`
	Series []Series `json:"series,omitempty"`
}

// AddTable appends a table.
func (r *Result) AddTable(t *Table) { r.Tables = append(r.Tables, t) }

// AddSeries appends a numeric series.
func (r *Result) AddSeries(s Series) { r.Series = append(r.Series, s) }

// Text renders the result as aligned text. The output is byte-identical to
// what RunAndPrint has always produced: a "# id — title" header followed by
// each table.
func (r *Result) Text(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, t := range r.Tables {
		t.Fprint(w)
	}
	return nil
}

// JSON renders the result as indented JSON.
func (r *Result) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// CSV renders the result as CSV: a metadata record, then one section per
// table (a "table" record with the title, a header record, the data records)
// and one section per series ("series" record, then x,y records). Sections
// are separated by blank records so the file splits cleanly.
func (r *Result) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	write := func(rec ...string) {
		// csv.Writer latches the first error; checked once at Flush.
		_ = cw.Write(rec)
	}
	write("experiment", r.ID, r.Title)
	write("seed", strconv.FormatUint(r.Seed, 10))
	write("quick", strconv.FormatBool(r.Quick))
	for _, t := range r.Tables {
		write()
		write("table", t.Title)
		write(t.Columns...)
		for _, row := range t.Rows {
			write(row...)
		}
		for _, n := range t.Notes {
			write("note", n)
		}
	}
	for _, s := range r.Series {
		write()
		write("series", s.Name, s.Unit, s.XLabel)
		for i, y := range s.Y {
			x := float64(i)
			if i < len(s.X) {
				x = s.X[i]
			}
			write(formatFloat(x), formatFloat(y))
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Encode renders the result in the named format: "text", "json" or "csv".
func (r *Result) Encode(w io.Writer, format string) error {
	switch format {
	case "", "text":
		return r.Text(w)
	case "json":
		return r.JSON(w)
	case "csv":
		return r.CSV(w)
	}
	return fmt.Errorf("experiments: unknown output format %q (want text, json or csv)", format)
}

// WriteResults renders a batch of results in the named format. Text and CSV
// concatenate the individual encodings; JSON emits a single object for one
// result and an array for several, so `-run all` produces one well-formed
// document.
func WriteResults(w io.Writer, format string, results []*Result) error {
	if format == "json" && len(results) != 1 {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	for _, r := range results {
		if err := r.Encode(w, format); err != nil {
			return err
		}
	}
	return nil
}
