package experiments

import (
	"fmt"

	"mptcpgo/internal/netem"
	"mptcpgo/internal/trace"
)

// Figure 7: probability density function of the application-level delay of
// 8 KB blocks with a 200 KB buffer over the WiFi + 3G scenario, for
// MPTCP+M1,2, regular MPTCP and single-path TCP on either interface.

func init() {
	Register(Experiment{
		ID:    "fig7",
		Title: "Fig. 7 — application-level latency PDF (8KB blocks, 200KB buffer)",
		Run:   runFig7,
	})
}

func runFig7(opt Options) (*Result, error) {
	const buf = 200 << 10
	duration, warmup := fig4Duration(opt.Quick)

	variants := []fig4Variant{
		{name: "MPTCP+M1,2", cfg: mptcpM12, iface: 0},
		{name: "Regular MPTCP", cfg: regularMPTCP, iface: 0},
		{name: "TCP over WiFi", cfg: tcpBaseline, iface: 0},
		{name: "TCP over 3G", cfg: tcpBaseline, iface: 1},
	}

	summary := NewTable("Application delay of 8KB blocks (ms)",
		"variant", "mean", "p50", "p95", "max", "blocks")
	var pdfs []*Table
	var series []Series

	results, err := Sweep(len(variants), func(i int) (BulkResult, error) {
		v := variants[i]
		return RunBulk(BulkOptions{
			Seed:        opt.Seed + 77,
			Specs:       netem.WiFi3GSpec(),
			Client:      v.cfg(buf),
			Server:      v.cfg(buf),
			ClientIface: v.iface,
			Duration:    duration,
			Warmup:      warmup,
			BlockSize:   8 << 10,
		})
	})
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		h := results[i].AppDelay
		if h == nil || h.Total() == 0 {
			summary.AddRow(v.name, "-", "-", "-", "-", "0")
			continue
		}
		summary.AddRow(v.name,
			fmt.Sprintf("%.1f", h.Mean()),
			fmt.Sprintf("%.1f", percentileFromHistogram(h, 0.50)),
			fmt.Sprintf("%.1f", percentileFromHistogram(h, 0.95)),
			fmt.Sprintf("%.1f", h.Max()),
			fmt.Sprintf("%d", h.Total()))

		pdf := NewTable(fmt.Sprintf("PDF of app-delay — %s (10ms bins)", v.name), "delay bin (ms)", "fraction %")
		var binX, binY []float64
		for _, b := range h.PDF() {
			pdf.AddRow(fmt.Sprintf("%.0f-%.0f", b.Low, b.Low+h.BinWidth), fmt.Sprintf("%.1f", b.Fraction*100))
			binX = append(binX, b.Low)
			binY = append(binY, b.Fraction)
		}
		pdfs = append(pdfs, pdf)
		series = append(series, Series{Name: "app-delay PDF " + v.name, Unit: "fraction", XLabel: "delay ms (bin low)", X: binX, Y: binY})
	}
	summary.AddNote("paper: M1,2 avoid the long delay tail of regular MPTCP; TCP over WiFi is counter-intuitively slower than MPTCP+M1,2 because 200KB over-buffers its send queue")
	summary.AddNote("duration %v, warmup %v", duration, warmup)
	return &Result{Tables: append([]*Table{summary}, pdfs...), Series: series}, nil
}

// percentileFromHistogram approximates a percentile from histogram bins.
func percentileFromHistogram(h *trace.Histogram, q float64) float64 {
	cum := 0.0
	for _, b := range h.PDF() {
		cum += b.Fraction
		if cum >= q {
			return b.Low + h.BinWidth/2
		}
	}
	return h.Max()
}
