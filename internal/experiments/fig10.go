package experiments

import (
	"fmt"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/sim"
	"mptcpgo/internal/trace"
)

// Figure 10: connection-establishment latency — the time the server spends
// between receiving a SYN and sending the SYN/ACK — for regular TCP and for
// MPTCP with 0, 100 and 1000 already-established connections. The MPTCP cost
// is dominated by generating the local key and verifying that its token is
// unique among established connections (§5.2); this experiment measures the
// actual wall-clock time of that code path in this implementation.

func init() {
	Register(Experiment{
		ID:    "fig10",
		Title: "Fig. 10 — connection establishment latency (SYN to SYN/ACK processing)",
		Run:   runFig10,
	})
}

func runFig10(opt Options) (*Result, error) {
	attempts := 20000
	if opt.Quick {
		attempts = 2000
	}
	rng := sim.NewRNG(opt.Seed)

	summary := NewTable("SYN processing cost (wall-clock, this machine)",
		"configuration", "mean (µs)", "p50 (µs)", "p95 (µs)", "attempts")
	var pdfs []*Table
	meanSeries := Series{Name: "mean SYN processing cost", Unit: "µs", XLabel: "configuration index"}

	configs := []struct {
		name     string
		existing int
		mptcp    bool
	}{
		{"regular TCP", 0, false},
		{"MPTCP", 0, true},
		{"MPTCP - 100 conn", 100, true},
		{"MPTCP - 1000 conn", 1000, true},
	}

	for _, cfgCase := range configs {
		hist := trace.NewHistogram(1) // 1 µs bins, as in the figure
		samples := trace.NewSampler()

		table := core.NewTokenTable()
		for i := 0; i < cfgCase.existing; i++ {
			key, token := table.GenerateUniqueKey(rng)
			table.Insert(token, nil)
			_ = key
		}

		for i := 0; i < attempts; i++ {
			start := time.Now()
			if cfgCase.mptcp {
				// Server-side MP_CAPABLE processing: hash the client's key
				// (token + IDSN), generate a server key and verify its token
				// is unique among established connections.
				clientKey := core.GenerateKey(rng)
				_ = clientKey.Token()
				_ = clientKey.IDSN()
				serverKey, _ := table.GenerateUniqueKey(rng)
				_ = serverKey.IDSN()
			} else {
				// Regular TCP: the passive opener only has to pick an ISN.
				_ = rng.Uint32()
			}
			elapsed := time.Since(start)
			us := float64(elapsed) / float64(time.Microsecond)
			hist.Add(us)
			samples.Record(us, 0)
		}

		summary.AddRow(cfgCase.name,
			fmt.Sprintf("%.2f", samples.Mean()),
			fmt.Sprintf("%.2f", samples.Percentile(50)),
			fmt.Sprintf("%.2f", samples.Percentile(95)),
			fmt.Sprintf("%d", attempts))
		meanSeries.X = append(meanSeries.X, float64(len(meanSeries.Y)))
		meanSeries.Y = append(meanSeries.Y, samples.Mean())

		pdf := NewTable(fmt.Sprintf("PDF of SYN processing delay — %s (1µs bins)", cfgCase.name), "delay (µs)", "fraction %")
		for _, b := range hist.PDF() {
			if b.Fraction < 0.005 {
				continue
			}
			pdf.AddRow(fmt.Sprintf("%.0f", b.Low), fmt.Sprintf("%.1f", b.Fraction*100))
		}
		pdfs = append(pdfs, pdf)
	}
	summary.AddNote("paper (2006-era Xeon): regular TCP ~6µs, first MPTCP connection 10-11µs, growing with 100/1000 established connections because of the token-uniqueness scan")
	summary.AddNote("absolute numbers differ on modern hardware; the reproduced claim is the ordering TCP < MPTCP < MPTCP+many-connections and its cause (SHA-1 hashing plus the uniqueness check)")
	return &Result{Tables: append([]*Table{summary}, pdfs...), Series: []Series{meanSeries}}, nil
}
