package experiments

import (
	"fmt"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/netem"
	"mptcpgo/internal/packet"
	"mptcpgo/internal/probe"
	"mptcpgo/internal/sim"
	"mptcpgo/internal/trace"
)

// BulkOptions describes one bulk-transfer run: a topology, a pair of
// connection configurations and a measurement window. Every buffer-sweep
// figure (4, 5, 6, 9) and the latency figure (7) is a set of such runs.
type BulkOptions struct {
	Seed  uint64
	Specs []netem.PathSpec
	// Boxes installs middlebox chains per path index.
	Boxes map[int][]netem.Box

	Client core.Config
	Server core.Config
	// ClientIface selects which client interface the initial subflow (or the
	// single-path TCP connection) is dialed from.
	ClientIface int

	// Warmup is excluded from goodput/throughput/memory measurements.
	Warmup time.Duration
	// Duration is the total simulated run length.
	Duration time.Duration

	// MemorySampling records sender/receiver memory every SampleInterval.
	MemorySampling bool
	SampleInterval time.Duration

	// BlockSize, when non-zero, makes the sender write timestamped blocks of
	// this size and records application-level per-block latency (Figure 7).
	BlockSize int

	// HostCPU, when set, installs the host packet-processing cost model on
	// both hosts (Figure 3's per-packet and software-checksum costs).
	HostCPU *netem.CPUModel

	// PcapPath, when non-empty, captures every segment the run's links
	// accept (both paths, both directions) into a classic pcap file at this
	// path via the unified wire codec. Capture only observes; the run's
	// results are unchanged.
	PcapPath string

	// Trace, when enabled, attaches the flight recorder to the client stack
	// and writes <TraceName>-trace.json and <TraceName>-events.jsonl into
	// Trace.Dir. Capture never changes the run's results.
	Trace     TraceSpec
	TraceName string
}

// BulkResult summarises one bulk-transfer run.
type BulkResult struct {
	GoodputMbps    float64
	ThroughputMbps float64
	TotalReceived  int

	SenderMemMeanKB   float64
	SenderMemMaxKB    float64
	ReceiverMemMeanKB float64
	ReceiverMemMaxKB  float64

	AppDelay *trace.Histogram

	MPTCPActive       bool
	ClientStats       core.ConnStats
	ServerStats       core.ConnStats
	ReassemblySteps   uint64
	SegmentsDelivered uint64
	Subflows          int
}

// RunBulk executes one bulk-transfer run and returns its measurements.
func RunBulk(opt BulkOptions) (BulkResult, error) {
	if opt.Duration <= 0 {
		opt.Duration = 20 * time.Second
	}
	if opt.Warmup <= 0 || opt.Warmup >= opt.Duration {
		opt.Warmup = opt.Duration / 5
	}
	if opt.SampleInterval <= 0 {
		opt.SampleInterval = 100 * time.Millisecond
	}

	s := sim.New(opt.Seed)
	net := netem.Build(s, opt.Specs...)
	for idx, boxes := range opt.Boxes {
		if idx < 0 || idx >= len(net.Paths) {
			return BulkResult{}, fmt.Errorf("bulk: box index %d out of range", idx)
		}
		for _, b := range boxes {
			net.Path(idx).AddBox(b)
		}
	}

	if opt.HostCPU != nil {
		net.Client.CPU = *opt.HostCPU
		net.Server.CPU = *opt.HostCPU
	}

	closePcap := func() error { return nil }
	if opt.PcapPath != "" {
		pw, err := trace.NewPcapFile(opt.PcapPath)
		if err != nil {
			return BulkResult{}, err
		}
		closePcap = pw.Close // idempotent: deferred for error paths, checked below
		defer pw.Close()
		trace.CapturePaths(pw, s.Now, net.Paths...)
	}

	cliMgr := core.NewManager(net.Client)
	srvMgr := core.NewManager(net.Server)
	var rec *probe.Recorder
	if opt.Trace.Enabled() {
		rec = probe.NewRecorder(s, 0, 1, opt.Trace.ProbeConfig())
		cliMgr.SetProbe(rec, 0)
		// The run ends at a fixed simulated Duration, so the sampler never
		// needs a completion signal; unprocessed ticks past it are dropped.
		rec.StartSampler(func() bool { return false })
	}

	received := 0
	var serverConn *core.Connection
	var blockDelays *trace.Histogram
	var blockStarts []time.Duration
	if opt.BlockSize > 0 {
		blockDelays = trace.NewHistogram(10) // 10 ms bins, as in Figure 7
	}

	_, err := srvMgr.Listen(80, opt.Server, func(c *core.Connection) {
		serverConn = c
		c.OnReadable = func() {
			for {
				data := c.Read(64 << 10)
				if len(data) == 0 {
					break
				}
				prev := received
				received += len(data)
				if opt.BlockSize > 0 {
					for blk := prev/opt.BlockSize + 1; blk <= received/opt.BlockSize; blk++ {
						idx := blk - 1
						if idx < len(blockStarts) && s.Now() >= opt.Warmup {
							delayMs := float64(s.Now()-blockStarts[idx]) / float64(time.Millisecond)
							blockDelays.Add(delayMs)
						}
					}
				}
			}
		}
	})
	if err != nil {
		return BulkResult{}, err
	}

	ifaces := net.Client.Interfaces()
	if opt.ClientIface < 0 || opt.ClientIface >= len(ifaces) {
		opt.ClientIface = 0
	}
	serverAddr := net.ServerAddr(opt.ClientIface)
	conn, err := cliMgr.Dial(ifaces[opt.ClientIface], packet.Endpoint{Addr: serverAddr, Port: 80}, opt.Client)
	if err != nil {
		return BulkResult{}, err
	}

	// Unbounded source: keep the connection's send buffer full.
	payload := make([]byte, 32<<10)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	written := 0
	pump := func() {
		for {
			n := len(payload)
			if opt.BlockSize > 0 {
				// Align writes to block boundaries so block start times are
				// recorded exactly when a block's first byte is accepted.
				n = opt.BlockSize - written%opt.BlockSize
				if n > len(payload) {
					n = len(payload)
				}
			}
			w := conn.Write(payload[:n])
			if w == 0 {
				return
			}
			if opt.BlockSize > 0 {
				// Record the start time of every block whose first byte was
				// accepted by this write.
				first := written / opt.BlockSize
				if written%opt.BlockSize != 0 {
					first++
				}
				last := (written + w - 1) / opt.BlockSize
				for blk := first; blk <= last; blk++ {
					for len(blockStarts) <= blk {
						blockStarts = append(blockStarts, s.Now())
					}
				}
			}
			written += w
		}
	}
	conn.OnEstablished = pump
	conn.OnWritable = pump

	// Memory samplers.
	sndMem := trace.NewSampler()
	rcvMem := trace.NewSampler()
	if opt.MemorySampling {
		var sample func()
		sample = func() {
			if s.Now() >= opt.Warmup {
				sndMem.Record(float64(conn.SenderMemory())/1024, s.Now())
				if serverConn != nil {
					rcvMem.Record(float64(serverConn.ReceiverMemory())/1024, s.Now())
				}
			}
			if s.Now() < opt.Duration {
				s.Schedule(opt.SampleInterval, sample)
			}
		}
		s.Schedule(opt.SampleInterval, sample)
	}

	// Warmup, then measure.
	if err := s.RunUntil(opt.Warmup); err != nil {
		return BulkResult{}, err
	}
	baselineReceived := received
	baselineWire := forwardWireBytes(net)
	if err := s.RunUntil(opt.Duration); err != nil {
		return BulkResult{}, err
	}

	window := (opt.Duration - opt.Warmup).Seconds()
	res := BulkResult{
		TotalReceived:  received,
		GoodputMbps:    float64(received-baselineReceived) * 8 / window / 1e6,
		ThroughputMbps: float64(forwardWireBytes(net)-baselineWire) * 8 / window / 1e6,
		MPTCPActive:    conn.MPTCPActive(),
		ClientStats:    conn.Stats(),
		AppDelay:       blockDelays,
		Subflows:       len(conn.Subflows()),
	}
	if serverConn != nil {
		res.ServerStats = serverConn.Stats()
		res.ReassemblySteps = serverConn.ReassemblySteps()
		for _, sf := range serverConn.Subflows() {
			res.SegmentsDelivered += sf.Endpoint().Stats().SegmentsReceived
		}
	}
	if opt.MemorySampling {
		res.SenderMemMeanKB = sndMem.Mean()
		res.SenderMemMaxKB = sndMem.Max()
		res.ReceiverMemMeanKB = rcvMem.Mean()
		res.ReceiverMemMaxKB = rcvMem.Max()
	}
	// A capture that failed to flush must fail the run, not silently hand
	// back a truncated file.
	if err := closePcap(); err != nil {
		return BulkResult{}, err
	}
	if opt.Trace.Enabled() {
		name := opt.TraceName
		if name == "" {
			name = "bulk"
		}
		recs := []*probe.Recorder{rec}
		tr := BuildTraceResult(name+"-trace", name+" (flight recorder)", opt.Seed, false, recs)
		if err := WriteTraceFiles(opt.Trace, name, tr, MergedEvents(recs)); err != nil {
			return BulkResult{}, err
		}
	}
	return res, nil
}

// forwardWireBytes sums the bytes delivered by the client-to-server links
// (wire-level throughput including retransmissions and duplicates).
func forwardWireBytes(n *netem.Network) uint64 {
	var total uint64
	for _, p := range n.Paths {
		total += p.LinkAB().Stats().DeliveredBytes
	}
	return total
}

// mptcpVariants returns the three MPTCP configurations compared in Figure 4,
// plus the single-path TCP baselines, keyed by display name.
func tcpBaseline(buf int) core.Config {
	cfg := core.TCPOnlyConfig()
	cfg.SendBufBytes = buf
	cfg.RecvBufBytes = buf
	return cfg
}

func regularMPTCP(buf int) core.Config {
	cfg := core.RegularMPTCPConfig()
	cfg.SendBufBytes = buf
	cfg.RecvBufBytes = buf
	return cfg
}

func mptcpM1(buf int) core.Config {
	cfg := core.RegularMPTCPConfig()
	cfg.OpportunisticRetransmit = true
	cfg.SendBufBytes = buf
	cfg.RecvBufBytes = buf
	return cfg
}

func mptcpM12(buf int) core.Config {
	cfg := core.RegularMPTCPConfig()
	cfg.OpportunisticRetransmit = true
	cfg.PenalizeSlowSubflows = true
	cfg.SendBufBytes = buf
	cfg.RecvBufBytes = buf
	return cfg
}

func mptcpM123(buf int) core.Config {
	cfg := mptcpM12(buf)
	cfg.AutoTuneBuffers = true
	return cfg
}

func mptcpM1234(buf int) core.Config {
	cfg := mptcpM123(buf)
	cfg.CwndCapping = true
	return cfg
}

func fmtMbps(v float64) string { return fmt.Sprintf("%.2f", v) }
