package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mptcpgo/internal/core"
	"mptcpgo/internal/netem"
)

func TestRegistryHasEveryPaperFigure(t *testing.T) {
	want := []string{"fig3", "fig4", "fig5", "fig6a", "fig6b", "fig6c", "fig7", "fig8", "fig9", "fig10", "fig11", "mbox", "rationale"}
	ids := IDs()
	have := make(map[string]bool)
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q is not registered", id)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("demo", "a", "bb")
	tbl.AddRow("1", "2")
	tbl.AddNote("note %d", 7)
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "a", "bb", "1", "2", "note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := RunAndPrint(&bytes.Buffer{}, "nope", Options{}); err == nil {
		t.Fatal("unknown experiment id must error")
	}
}

func TestRunBulkTCPvsMPTCPOrdering(t *testing.T) {
	// Integration sanity check used by several figures: on WiFi+3G with a
	// generous buffer, MPTCP+M1,2 goodput must at least match TCP over the
	// best single path, and TCP over 3G must be the slowest.
	duration, warmup := 35*time.Second, 15*time.Second
	run := func(cfg core.Config, iface int) float64 {
		res, err := RunBulk(BulkOptions{
			Seed:        3,
			Specs:       netem.WiFi3GSpec(),
			Client:      cfg,
			Server:      cfg,
			ClientIface: iface,
			Duration:    duration,
			Warmup:      warmup,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.GoodputMbps
	}
	buf := 600 << 10
	tcpWifi := run(tcpBaseline(buf), 0)
	tcp3G := run(tcpBaseline(buf), 1)
	mptcp := run(mptcpM12(buf), 0)

	if tcpWifi < 6.5 || tcpWifi > 8.2 {
		t.Fatalf("TCP over WiFi goodput %.2f Mbps outside the expected 6.5-8.2 band", tcpWifi)
	}
	if tcp3G > 2.2 {
		t.Fatalf("TCP over 3G goodput %.2f Mbps exceeds its 2 Mbps link", tcp3G)
	}
	if mptcp < tcpWifi-1.0 {
		t.Fatalf("MPTCP+M1,2 (%.2f Mbps) must not fall notably below TCP on the best path (%.2f Mbps)", mptcp, tcpWifi)
	}
	if mptcp > 10.5 {
		t.Fatalf("MPTCP goodput %.2f Mbps exceeds the physical aggregate", mptcp)
	}
}

func TestFig10KeyGenerationOrdering(t *testing.T) {
	res, err := runFig10(Options{Quick: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 || len(res.Tables[0].Rows) != 4 {
		t.Fatalf("fig10 should produce a 4-row summary, got %+v", res.Tables)
	}
}

func TestCalibrateChecksumCostPositive(t *testing.T) {
	if CalibrateChecksumCost() <= 0 {
		t.Fatal("calibrated checksum cost must be positive")
	}
}

func TestRationaleShowsDeadlockDifference(t *testing.T) {
	// The shared-window design must deliver everything; the per-subflow
	// ablation must get stuck after the silent path failure.
	recvShared, okShared, err := runWindowScenario(11, false, 1<<20, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	recvPer, okPer, err := runWindowScenario(11, true, 1<<20, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !okShared {
		t.Fatalf("shared-window transfer did not complete (%d bytes)", recvShared)
	}
	if okPer {
		t.Fatalf("per-subflow-window transfer unexpectedly completed (%d bytes) — the §3.3.1 deadlock should occur", recvPer)
	}
}
