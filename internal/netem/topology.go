package netem

import (
	"fmt"
	"time"

	"mptcpgo/internal/packet"
	"mptcpgo/internal/sim"
)

// Network bundles a simulator, hosts and paths into one experiment topology.
type Network struct {
	Sim    *sim.Simulator
	Client *Host
	Server *Host
	Paths  []*Path
}

// PathSpec describes one bidirectional path between the client and the
// server in a topology built with Build.
type PathSpec struct {
	Name string
	// Config describes the two directions; if BA is the zero value, the AB
	// configuration is mirrored.
	Config PathConfig
}

// Symmetric creates a PathSpec with identical directions.
func Symmetric(name string, rateBps int64, delay time.Duration, queueBytes int, loss float64) PathSpec {
	return PathSpec{Name: name, Config: SymmetricPath(rateBps, delay, queueBytes, loss)}
}

// Build constructs a client and a server connected by one path per spec. The
// client's i-th interface gets address 10.0.i.1, the server's 10.0.i.2.
func Build(s *sim.Simulator, specs ...PathSpec) *Network {
	n := &Network{Sim: s}
	n.Client = NewHost(s, "client")
	n.Server = NewHost(s, "server")
	for i, spec := range specs {
		cfg := spec.Config
		if cfg.BA == (LinkConfig{}) {
			cfg.BA = cfg.AB
		}
		ca := n.Client.AddInterface(packet.MakeAddr(10, 0, byte(i), 1))
		sa := n.Server.AddInterface(packet.MakeAddr(10, 0, byte(i), 2))
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("path%d", i)
		}
		n.Paths = append(n.Paths, NewPath(s, name, ca, sa, cfg))
	}
	return n
}

// Path returns the i-th path.
func (n *Network) Path(i int) *Path { return n.Paths[i] }

// ClientAddr returns the client's address on path i.
func (n *Network) ClientAddr(i int) packet.Addr { return n.Paths[i].A().Addr() }

// ServerAddr returns the server's address on path i.
func (n *Network) ServerAddr(i int) packet.Addr { return n.Paths[i].B().Addr() }

// ---------------------------------------------------------------------------
// Canonical topologies used by the paper's evaluation
// ---------------------------------------------------------------------------

// WiFi3GSpec reproduces the emulated phone scenario of §4.2: an 8 Mbps WiFi
// path with 20 ms base RTT and 80 ms of buffering, and a 2 Mbps 3G path with
// 150 ms base RTT and 2 s of buffering.
func WiFi3GSpec() []PathSpec {
	wifi := LinkConfig{
		RateBps:    Mbps(8),
		Delay:      10 * time.Millisecond, // 20 ms RTT
		QueueBytes: int(float64(Mbps(8)) / 8 * 0.080),
	}
	threeG := LinkConfig{
		RateBps:    Mbps(2),
		Delay:      75 * time.Millisecond, // 150 ms RTT
		QueueBytes: int(float64(Mbps(2)) / 8 * 2.0),
	}
	return []PathSpec{
		{Name: "wifi", Config: PathConfig{AB: wifi, BA: wifi}},
		{Name: "3g", Config: PathConfig{AB: threeG, BA: threeG}},
	}
}

// LossyWiFi3GSpec reproduces Figure 6(a): the same WiFi path plus an
// extremely slow (50 kbps) 3G path whose deep buffer makes retransmissions
// take seconds.
func LossyWiFi3GSpec() []PathSpec {
	wifi := LinkConfig{
		RateBps:    Mbps(8),
		Delay:      10 * time.Millisecond,
		QueueBytes: int(float64(Mbps(8)) / 8 * 0.080),
	}
	slow3G := LinkConfig{
		RateBps:    Kbps(50),
		Delay:      75 * time.Millisecond,
		QueueBytes: int(float64(Kbps(50)) / 8 * 2.0),
		LossRate:   0.02,
	}
	return []PathSpec{
		{Name: "wifi", Config: PathConfig{AB: wifi, BA: wifi}},
		{Name: "slow3g", Config: PathConfig{AB: slow3G, BA: slow3G}},
	}
}

// AsymGigabitSpec reproduces Figure 6(b): one gigabit and one 100 Mbps link
// between two hosts (inter-datacenter transfer with asymmetric links).
func AsymGigabitSpec() []PathSpec {
	return []PathSpec{
		Symmetric("1g", Gbps(1), 250*time.Microsecond, 256<<10, 0),
		Symmetric("100m", Mbps(100), 250*time.Microsecond, 128<<10, 0),
	}
}

// TripleGigabitSpec reproduces Figure 6(c): three symmetric gigabit links.
func TripleGigabitSpec() []PathSpec {
	return []PathSpec{
		Symmetric("1g-a", Gbps(1), 250*time.Microsecond, 256<<10, 0),
		Symmetric("1g-b", Gbps(1), 250*time.Microsecond, 256<<10, 0),
		Symmetric("1g-c", Gbps(1), 250*time.Microsecond, 256<<10, 0),
	}
}

// DualGigabitSpec is the directly connected client/server pair with two
// gigabit links used for the receive-algorithm (Fig. 8) and HTTP (Fig. 11)
// experiments.
func DualGigabitSpec() []PathSpec {
	return []PathSpec{
		Symmetric("1g-a", Gbps(1), 100*time.Microsecond, 512<<10, 0),
		Symmetric("1g-b", Gbps(1), 100*time.Microsecond, 512<<10, 0),
	}
}

// TenGigSpec is the 10 Gbps LAN used by the Figure 3 checksum experiment.
func TenGigSpec() []PathSpec {
	return []PathSpec{
		Symmetric("10g-a", Gbps(10), 50*time.Microsecond, 2<<20, 0),
		Symmetric("10g-b", Gbps(10), 50*time.Microsecond, 2<<20, 0),
	}
}

// Capped3GWiFiSpec reproduces Figure 9: a commercial 3G network with ~2 Mbps
// achievable throughput and a WiFi access point capped at 2 Mbps.
func Capped3GWiFiSpec() []PathSpec {
	wifi := LinkConfig{
		RateBps:    Mbps(2),
		Delay:      10 * time.Millisecond,
		QueueBytes: int(float64(Mbps(2)) / 8 * 0.100),
	}
	threeG := LinkConfig{
		RateBps:    Mbps(2),
		Delay:      75 * time.Millisecond,
		QueueBytes: int(float64(Mbps(2)) / 8 * 2.0),
	}
	return []PathSpec{
		{Name: "wifi", Config: PathConfig{AB: wifi, BA: wifi}},
		{Name: "3g", Config: PathConfig{AB: threeG, BA: threeG}},
	}
}
