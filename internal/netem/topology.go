package netem

import (
	"fmt"
	"time"

	"mptcpgo/internal/packet"
	"mptcpgo/internal/sim"
)

// Network bundles a simulator, hosts and paths into one experiment topology.
// Topologies may contain any number of hosts; the classic two-host
// client/server experiments are the special case built by Build.
type Network struct {
	Sim *sim.Simulator
	// Client and Server alias the hosts named "client" and "server" (the
	// names Build assigns; nil otherwise); the multi-host API is
	// Hosts/Host.
	Client *Host
	Server *Host
	// Hosts lists every host in declaration order.
	Hosts []*Host
	Paths []*Path

	hostByName map[string]*Host
}

// PathSpec describes one bidirectional path between the client and the
// server in a topology built with Build.
type PathSpec struct {
	Name string
	// Config describes the two directions; if BA is the zero value, the AB
	// configuration is mirrored.
	Config PathConfig
}

// Symmetric creates a PathSpec with identical directions.
func Symmetric(name string, rateBps int64, delay time.Duration, queueBytes int, loss float64) PathSpec {
	return PathSpec{Name: name, Config: SymmetricPath(rateBps, delay, queueBytes, loss)}
}

// LinkSpec describes one bidirectional path between two named hosts in a
// GraphSpec topology.
type LinkSpec struct {
	// Name labels the path in traces; defaults to "path<i>".
	Name string
	// A and B name the two endpoint hosts. Traffic from A to B uses
	// Config.AB, the reverse direction Config.BA (mirrored from AB when
	// zero).
	A, B string
	// Config describes the two directions.
	Config PathConfig
	// Boxes is the middlebox chain installed on the path (applied in order
	// for A-to-B traffic).
	Boxes []Box
	// SharedAB and SharedBA name the shared capacity resource each direction
	// transits (empty = dedicated capacity). A link tagged with a shared
	// resource keeps its own rate as a ceiling, but the capacity layer
	// (internal/capacity) may cap the direction further so that all tagged
	// directions — across every shard of a fleet run — jointly respect the
	// named resource's rate. The tag is pure metadata to netem; BuildGraph
	// ignores it.
	SharedAB, SharedBA string
}

// GraphSpec declares a multi-host topology: named hosts connected by
// point-to-point links. It is the input to BuildGraph.
type GraphSpec struct {
	// Hosts lists the host names in declaration order.
	Hosts []string
	// Links lists the point-to-point paths between hosts.
	Links []LinkSpec

	// hostSet indexes Hosts for AddHost's duplicate check (lazily built, and
	// seeded from a literal-initialized Hosts slice on first use), keeping
	// programmatic construction of thousand-host graphs linear.
	hostSet map[string]bool
}

// AddHost declares a host in the spec (idempotent: a name already declared is
// not duplicated) and returns the spec for chaining. Programmatic topology
// generators — the fleet shard builders — use it together with AddLink.
func (g *GraphSpec) AddHost(name string) *GraphSpec {
	if g.hostSet == nil {
		g.hostSet = make(map[string]bool, len(g.Hosts)+1)
		for _, h := range g.Hosts {
			g.hostSet[h] = true
		}
	}
	if !g.hostSet[name] {
		g.hostSet[name] = true
		g.Hosts = append(g.Hosts, name)
	}
	return g
}

// AddLink appends a link (declaring its endpoint hosts if needed) and returns
// the link's index, which determines its 10.x.y.0/24 subnet.
func (g *GraphSpec) AddLink(l LinkSpec) int {
	g.AddHost(l.A).AddHost(l.B)
	g.Links = append(g.Links, l)
	return len(g.Links) - 1
}

// linkAddrs returns the interface addresses for the i-th link: the A side
// gets 10.hi.lo.1 and the B side 10.hi.lo.2, so two-host topologies keep the
// historical 10.0.i.{1,2} layout while graphs may hold up to 2^16 links.
func linkAddrs(i int) (a, b packet.Addr) {
	hi, lo := byte(i>>8), byte(i)
	return packet.MakeAddr(10, hi, lo, 1), packet.MakeAddr(10, hi, lo, 2)
}

// BuildGraph constructs a multi-host topology from the spec: one Host per
// declared name and one Path (with a fresh interface on both endpoint hosts)
// per link. Link i uses the 10.x.y.0/24 subnet derived from its index, A side
// .1 and B side .2.
func BuildGraph(s *sim.Simulator, spec GraphSpec) (*Network, error) {
	if len(spec.Links) > 1<<16 {
		return nil, fmt.Errorf("netem: %d links exceed the addressing plan's 2^16 limit", len(spec.Links))
	}
	n := &Network{Sim: s, hostByName: make(map[string]*Host, len(spec.Hosts))}
	for _, name := range spec.Hosts {
		if name == "" {
			return nil, fmt.Errorf("netem: empty host name")
		}
		if _, dup := n.hostByName[name]; dup {
			return nil, fmt.Errorf("netem: duplicate host %q", name)
		}
		h := NewHost(s, name)
		n.hostByName[name] = h
		n.Hosts = append(n.Hosts, h)
	}
	for i, l := range spec.Links {
		ha, hb := n.hostByName[l.A], n.hostByName[l.B]
		if ha == nil {
			return nil, fmt.Errorf("netem: link %d references unknown host %q", i, l.A)
		}
		if hb == nil {
			return nil, fmt.Errorf("netem: link %d references unknown host %q", i, l.B)
		}
		if ha == hb {
			return nil, fmt.Errorf("netem: link %d connects host %q to itself", i, l.A)
		}
		cfg := l.Config
		if cfg.BA == (LinkConfig{}) {
			cfg.BA = cfg.AB
		}
		addrA, addrB := linkAddrs(i)
		ia := ha.AddInterface(addrA)
		ib := hb.AddInterface(addrB)
		name := l.Name
		if name == "" {
			name = fmt.Sprintf("path%d", i)
		}
		p := NewPath(s, name, ia, ib, cfg)
		for _, b := range l.Boxes {
			p.AddBox(b)
		}
		n.Paths = append(n.Paths, p)
	}
	// The aliases are bound by name, not position: a graph that declares the
	// server first (or names its hosts differently) must not hand consumers
	// the wrong host through the historical accessors.
	n.Client = n.hostByName["client"]
	n.Server = n.hostByName["server"]
	return n, nil
}

// Build constructs a client and a server connected by one path per spec. The
// client's i-th interface gets address 10.0.i.1, the server's 10.0.i.2. It is
// the two-host special case of BuildGraph.
func Build(s *sim.Simulator, specs ...PathSpec) *Network {
	g := GraphSpec{Hosts: []string{"client", "server"}}
	for _, spec := range specs {
		g.Links = append(g.Links, LinkSpec{Name: spec.Name, A: "client", B: "server", Config: spec.Config})
	}
	n, err := BuildGraph(s, g)
	if err != nil {
		// The generated spec is structurally valid by construction.
		panic(err)
	}
	return n
}

// Host returns the host with the given name, or nil.
func (n *Network) Host(name string) *Host { return n.hostByName[name] }

// HostNames returns the host names in declaration order.
func (n *Network) HostNames() []string {
	names := make([]string, len(n.Hosts))
	for i, h := range n.Hosts {
		names[i] = h.Name()
	}
	return names
}

// Path returns the i-th path.
func (n *Network) Path(i int) *Path { return n.Paths[i] }

// PathByName returns the path with the given name, or nil.
func (n *Network) PathByName(name string) *Path {
	for _, p := range n.Paths {
		if p.Name() == name {
			return p
		}
	}
	return nil
}

// PathsBetween returns the paths whose endpoints are the two given hosts, in
// construction order.
func (n *Network) PathsBetween(a, b *Host) []*Path {
	var out []*Path
	for _, p := range n.Paths {
		ha, hb := p.A().Host(), p.B().Host()
		if (ha == a && hb == b) || (ha == b && hb == a) {
			out = append(out, p)
		}
	}
	return out
}

// ClientAddr returns the client's address on path i.
func (n *Network) ClientAddr(i int) packet.Addr { return n.Paths[i].A().Addr() }

// ServerAddr returns the server's address on path i.
func (n *Network) ServerAddr(i int) packet.Addr { return n.Paths[i].B().Addr() }

// ---------------------------------------------------------------------------
// Canonical topologies used by the paper's evaluation
// ---------------------------------------------------------------------------

// WiFi3GSpec reproduces the emulated phone scenario of §4.2: an 8 Mbps WiFi
// path with 20 ms base RTT and 80 ms of buffering, and a 2 Mbps 3G path with
// 150 ms base RTT and 2 s of buffering.
func WiFi3GSpec() []PathSpec {
	wifi := LinkConfig{
		RateBps:    Mbps(8),
		Delay:      10 * time.Millisecond, // 20 ms RTT
		QueueBytes: int(float64(Mbps(8)) / 8 * 0.080),
	}
	threeG := LinkConfig{
		RateBps:    Mbps(2),
		Delay:      75 * time.Millisecond, // 150 ms RTT
		QueueBytes: int(float64(Mbps(2)) / 8 * 2.0),
	}
	return []PathSpec{
		{Name: "wifi", Config: PathConfig{AB: wifi, BA: wifi}},
		{Name: "3g", Config: PathConfig{AB: threeG, BA: threeG}},
	}
}

// LossyWiFi3GSpec reproduces Figure 6(a): the same WiFi path plus an
// extremely slow (50 kbps) 3G path whose deep buffer makes retransmissions
// take seconds.
func LossyWiFi3GSpec() []PathSpec {
	wifi := LinkConfig{
		RateBps:    Mbps(8),
		Delay:      10 * time.Millisecond,
		QueueBytes: int(float64(Mbps(8)) / 8 * 0.080),
	}
	slow3G := LinkConfig{
		RateBps:    Kbps(50),
		Delay:      75 * time.Millisecond,
		QueueBytes: int(float64(Kbps(50)) / 8 * 2.0),
		LossRate:   0.02,
	}
	return []PathSpec{
		{Name: "wifi", Config: PathConfig{AB: wifi, BA: wifi}},
		{Name: "slow3g", Config: PathConfig{AB: slow3G, BA: slow3G}},
	}
}

// AsymGigabitSpec reproduces Figure 6(b): one gigabit and one 100 Mbps link
// between two hosts (inter-datacenter transfer with asymmetric links).
func AsymGigabitSpec() []PathSpec {
	return []PathSpec{
		Symmetric("1g", Gbps(1), 250*time.Microsecond, 256<<10, 0),
		Symmetric("100m", Mbps(100), 250*time.Microsecond, 128<<10, 0),
	}
}

// TripleGigabitSpec reproduces Figure 6(c): three symmetric gigabit links.
func TripleGigabitSpec() []PathSpec {
	return []PathSpec{
		Symmetric("1g-a", Gbps(1), 250*time.Microsecond, 256<<10, 0),
		Symmetric("1g-b", Gbps(1), 250*time.Microsecond, 256<<10, 0),
		Symmetric("1g-c", Gbps(1), 250*time.Microsecond, 256<<10, 0),
	}
}

// DualGigabitSpec is the directly connected client/server pair with two
// gigabit links used for the receive-algorithm (Fig. 8) and HTTP (Fig. 11)
// experiments.
func DualGigabitSpec() []PathSpec {
	return []PathSpec{
		Symmetric("1g-a", Gbps(1), 100*time.Microsecond, 512<<10, 0),
		Symmetric("1g-b", Gbps(1), 100*time.Microsecond, 512<<10, 0),
	}
}

// TenGigSpec is the 10 Gbps LAN used by the Figure 3 checksum experiment.
func TenGigSpec() []PathSpec {
	return []PathSpec{
		Symmetric("10g-a", Gbps(10), 50*time.Microsecond, 2<<20, 0),
		Symmetric("10g-b", Gbps(10), 50*time.Microsecond, 2<<20, 0),
	}
}

// Capped3GWiFiSpec reproduces Figure 9: a commercial 3G network with ~2 Mbps
// achievable throughput and a WiFi access point capped at 2 Mbps.
func Capped3GWiFiSpec() []PathSpec {
	wifi := LinkConfig{
		RateBps:    Mbps(2),
		Delay:      10 * time.Millisecond,
		QueueBytes: int(float64(Mbps(2)) / 8 * 0.100),
	}
	threeG := LinkConfig{
		RateBps:    Mbps(2),
		Delay:      75 * time.Millisecond,
		QueueBytes: int(float64(Mbps(2)) / 8 * 2.0),
	}
	return []PathSpec{
		{Name: "wifi", Config: PathConfig{AB: wifi, BA: wifi}},
		{Name: "3g", Config: PathConfig{AB: threeG, BA: threeG}},
	}
}
