package netem

import (
	"testing"
	"time"

	"mptcpgo/internal/packet"
	"mptcpgo/internal/sim"
)

func testSegment(n int) *packet.Segment {
	return &packet.Segment{
		Src:     packet.Endpoint{Addr: packet.MakeAddr(10, 0, 0, 1), Port: 1},
		Dst:     packet.Endpoint{Addr: packet.MakeAddr(10, 0, 0, 2), Port: 2},
		Flags:   packet.FlagACK,
		Payload: make([]byte, n),
	}
}

func TestLinkDelayAndSerialization(t *testing.T) {
	s := sim.New(1)
	var arrival time.Duration
	link := NewLink(s, "l", LinkConfig{RateBps: Mbps(8), Delay: 10 * time.Millisecond}, ReceiverFunc(func(seg *packet.Segment) {
		arrival = s.Now()
	}))
	seg := testSegment(1000)
	size := wireSize(seg)
	link.Send(seg)
	_ = s.Run()
	expected := time.Duration(float64(size*8)/8e6*float64(time.Second)) + 10*time.Millisecond
	diff := arrival - expected
	if diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("arrival %v, expected about %v", arrival, expected)
	}
}

func TestLinkQueueOverflowDrops(t *testing.T) {
	s := sim.New(1)
	delivered := 0
	link := NewLink(s, "l", LinkConfig{RateBps: Kbps(100), Delay: time.Millisecond, QueueBytes: 3000}, ReceiverFunc(func(seg *packet.Segment) {
		delivered++
	}))
	for i := 0; i < 10; i++ {
		link.Send(testSegment(1000))
	}
	_ = s.Run()
	st := link.Stats()
	if st.DroppedQueue == 0 {
		t.Fatal("expected tail drops on a 3000-byte queue")
	}
	if delivered+int(st.DroppedQueue) != 10 {
		t.Fatalf("delivered %d + dropped %d != 10", delivered, st.DroppedQueue)
	}
}

func TestLinkRandomLoss(t *testing.T) {
	s := sim.New(7)
	delivered := 0
	link := NewLink(s, "l", LinkConfig{LossRate: 0.5}, ReceiverFunc(func(seg *packet.Segment) { delivered++ }))
	for i := 0; i < 1000; i++ {
		link.Send(testSegment(100))
	}
	_ = s.Run()
	if delivered < 350 || delivered > 650 {
		t.Fatalf("with 50%% loss, delivered %d of 1000", delivered)
	}
}

func TestHostDemuxAndRST(t *testing.T) {
	s := sim.New(1)
	n := Build(s, Symmetric("p", Mbps(10), time.Millisecond, 0, 0))
	// A segment to a port nobody listens on must trigger a RST back.
	var gotRST bool
	n.Client.OnUnmatched = func(_ *Interface, seg *packet.Segment) {
		if seg.Flags.Has(packet.FlagRST) {
			gotRST = true
		}
	}
	seg := &packet.Segment{
		Src:   packet.Endpoint{Addr: n.ClientAddr(0), Port: 5555},
		Dst:   packet.Endpoint{Addr: n.ServerAddr(0), Port: 4444},
		Flags: packet.FlagSYN,
	}
	n.Client.Interfaces()[0].Send(seg)
	_ = s.Run()
	if !gotRST {
		t.Fatal("expected a RST for a SYN to a closed port")
	}
	if n.Server.Stats().NoMatchRST == 0 {
		t.Fatal("server should have counted the unmatched segment")
	}
}

func TestPathDownDropsTraffic(t *testing.T) {
	s := sim.New(1)
	n := Build(s, Symmetric("p", Mbps(10), time.Millisecond, 0, 0))
	n.Path(0).SetDown(true)
	received := false
	n.Server.OnUnmatched = func(_ *Interface, _ *packet.Segment) { received = true }
	n.Client.Interfaces()[0].Send(testSegment(10))
	_ = s.Run()
	if received {
		t.Fatal("segments must be dropped on a failed path")
	}
}

func TestCPUModelSerializesProcessing(t *testing.T) {
	s := sim.New(1)
	n := Build(s, Symmetric("p", Gbps(1), 0, 0, 0))
	n.Server.CPU = CPUModel{PerPacket: time.Millisecond}
	var lastDelivery time.Duration
	n.Server.OnUnmatched = func(_ *Interface, _ *packet.Segment) { lastDelivery = s.Now() }
	for i := 0; i < 5; i++ {
		n.Client.Interfaces()[0].Send(testSegment(100))
	}
	_ = s.Run()
	if lastDelivery < 5*time.Millisecond {
		t.Fatalf("five packets at 1ms CPU each should take at least 5ms, took %v", lastDelivery)
	}
}

func TestTopologyBuilders(t *testing.T) {
	s := sim.New(1)
	for _, specs := range [][]PathSpec{WiFi3GSpec(), LossyWiFi3GSpec(), AsymGigabitSpec(), TripleGigabitSpec(), DualGigabitSpec(), TenGigSpec(), Capped3GWiFiSpec()} {
		n := Build(sim.New(1), specs...)
		if len(n.Paths) != len(specs) {
			t.Fatalf("expected %d paths, got %d", len(specs), len(n.Paths))
		}
		for i := range specs {
			if n.ClientAddr(i) == n.ServerAddr(i) {
				t.Fatal("client and server addresses must differ")
			}
		}
	}
	_ = s
}

func TestBandwidthDelayProduct(t *testing.T) {
	cfg := LinkConfig{RateBps: Mbps(8), Delay: 100 * time.Millisecond}
	if got := cfg.BandwidthDelayProduct(); got != 100000 {
		t.Fatalf("BDP = %d, want 100000", got)
	}
}
