package netem

import (
	"testing"
	"time"

	"mptcpgo/internal/packet"
	"mptcpgo/internal/sim"
)

func testSegment(n int) *packet.Segment {
	return &packet.Segment{
		Src:     packet.Endpoint{Addr: packet.MakeAddr(10, 0, 0, 1), Port: 1},
		Dst:     packet.Endpoint{Addr: packet.MakeAddr(10, 0, 0, 2), Port: 2},
		Flags:   packet.FlagACK,
		Payload: make([]byte, n),
	}
}

func TestLinkDelayAndSerialization(t *testing.T) {
	s := sim.New(1)
	var arrival time.Duration
	link := NewLink(s, "l", LinkConfig{RateBps: Mbps(8), Delay: 10 * time.Millisecond}, ReceiverFunc(func(seg *packet.Segment) {
		arrival = s.Now()
	}))
	seg := testSegment(1000)
	size := wireSize(seg)
	link.Send(seg)
	_ = s.Run()
	expected := time.Duration(float64(size*8)/8e6*float64(time.Second)) + 10*time.Millisecond
	diff := arrival - expected
	if diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("arrival %v, expected about %v", arrival, expected)
	}
}

func TestLinkQueueOverflowDrops(t *testing.T) {
	s := sim.New(1)
	delivered := 0
	link := NewLink(s, "l", LinkConfig{RateBps: Kbps(100), Delay: time.Millisecond, QueueBytes: 3000}, ReceiverFunc(func(seg *packet.Segment) {
		delivered++
	}))
	for i := 0; i < 10; i++ {
		link.Send(testSegment(1000))
	}
	_ = s.Run()
	st := link.Stats()
	if st.DroppedQueue == 0 {
		t.Fatal("expected tail drops on a 3000-byte queue")
	}
	if delivered+int(st.DroppedQueue) != 10 {
		t.Fatalf("delivered %d + dropped %d != 10", delivered, st.DroppedQueue)
	}
}

func TestLinkRandomLoss(t *testing.T) {
	s := sim.New(7)
	delivered := 0
	link := NewLink(s, "l", LinkConfig{LossRate: 0.5}, ReceiverFunc(func(seg *packet.Segment) { delivered++ }))
	for i := 0; i < 1000; i++ {
		link.Send(testSegment(100))
	}
	_ = s.Run()
	if delivered < 350 || delivered > 650 {
		t.Fatalf("with 50%% loss, delivered %d of 1000", delivered)
	}
}

func TestHostDemuxAndRST(t *testing.T) {
	s := sim.New(1)
	n := Build(s, Symmetric("p", Mbps(10), time.Millisecond, 0, 0))
	// A segment to a port nobody listens on must trigger a RST back.
	var gotRST bool
	n.Client.OnUnmatched = func(_ *Interface, seg *packet.Segment) {
		if seg.Flags.Has(packet.FlagRST) {
			gotRST = true
		}
	}
	seg := &packet.Segment{
		Src:   packet.Endpoint{Addr: n.ClientAddr(0), Port: 5555},
		Dst:   packet.Endpoint{Addr: n.ServerAddr(0), Port: 4444},
		Flags: packet.FlagSYN,
	}
	n.Client.Interfaces()[0].Send(seg)
	_ = s.Run()
	if !gotRST {
		t.Fatal("expected a RST for a SYN to a closed port")
	}
	if n.Server.Stats().NoMatchRST == 0 {
		t.Fatal("server should have counted the unmatched segment")
	}
}

func TestPathDownDropsTraffic(t *testing.T) {
	s := sim.New(1)
	n := Build(s, Symmetric("p", Mbps(10), time.Millisecond, 0, 0))
	n.Path(0).SetDown(true)
	received := false
	n.Server.OnUnmatched = func(_ *Interface, _ *packet.Segment) { received = true }
	n.Client.Interfaces()[0].Send(testSegment(10))
	_ = s.Run()
	if received {
		t.Fatal("segments must be dropped on a failed path")
	}
}

func TestCPUModelSerializesProcessing(t *testing.T) {
	s := sim.New(1)
	n := Build(s, Symmetric("p", Gbps(1), 0, 0, 0))
	n.Server.CPU = CPUModel{PerPacket: time.Millisecond}
	var lastDelivery time.Duration
	n.Server.OnUnmatched = func(_ *Interface, _ *packet.Segment) { lastDelivery = s.Now() }
	for i := 0; i < 5; i++ {
		n.Client.Interfaces()[0].Send(testSegment(100))
	}
	_ = s.Run()
	if lastDelivery < 5*time.Millisecond {
		t.Fatalf("five packets at 1ms CPU each should take at least 5ms, took %v", lastDelivery)
	}
}

func TestTopologyBuilders(t *testing.T) {
	s := sim.New(1)
	for _, specs := range [][]PathSpec{WiFi3GSpec(), LossyWiFi3GSpec(), AsymGigabitSpec(), TripleGigabitSpec(), DualGigabitSpec(), TenGigSpec(), Capped3GWiFiSpec()} {
		n := Build(sim.New(1), specs...)
		if len(n.Paths) != len(specs) {
			t.Fatalf("expected %d paths, got %d", len(specs), len(n.Paths))
		}
		for i := range specs {
			if n.ClientAddr(i) == n.ServerAddr(i) {
				t.Fatal("client and server addresses must differ")
			}
		}
	}
	_ = s
}

func TestBandwidthDelayProduct(t *testing.T) {
	cfg := LinkConfig{RateBps: Mbps(8), Delay: 100 * time.Millisecond}
	if got := cfg.BandwidthDelayProduct(); got != 100000 {
		t.Fatalf("BDP = %d, want 100000", got)
	}
}

func TestBuildGraphMultiHost(t *testing.T) {
	s := sim.New(1)
	n, err := BuildGraph(s, GraphSpec{
		Hosts: []string{"c0", "c1", "srv"},
		Links: []LinkSpec{
			{Name: "a", A: "c0", B: "srv", Config: SymmetricPath(Mbps(8), time.Millisecond, 0, 0)},
			{A: "c1", B: "srv", Config: SymmetricPath(Mbps(2), time.Millisecond, 0, 0)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Hosts) != 3 || n.Host("srv") == nil || n.Host("c0") == nil {
		t.Fatalf("hosts not built: %v", n.HostNames())
	}
	if n.Client != nil || n.Server != nil {
		t.Fatal("Client/Server aliases must stay nil without hosts named client/server")
	}
	if got := n.Path(1).Name(); got != "path1" {
		t.Fatalf("unnamed link default = %q, want path1", got)
	}
	if len(n.Host("srv").Interfaces()) != 2 {
		t.Fatalf("server should have one interface per link, got %d", len(n.Host("srv").Interfaces()))
	}
	// Address plan: link i is 10.(i>>8).(i&255).{1,2} with A at .1.
	if got := n.Path(1).A().Addr(); got != packet.MakeAddr(10, 0, 1, 1) {
		t.Fatalf("link 1 A-side address = %v", got)
	}
	if ps := n.PathsBetween(n.Host("c0"), n.Host("srv")); len(ps) != 1 || ps[0].Name() != "a" {
		t.Fatalf("PathsBetween(c0, srv) = %v", ps)
	}
	if peer := n.Path(0).Peer(n.Path(0).A()); peer != n.Path(0).B() {
		t.Fatal("Peer(A) must be B")
	}
	if peer := n.Path(0).Peer(n.Path(1).A()); peer != nil {
		t.Fatal("Peer of a foreign interface must be nil")
	}
}

func TestBuildGraphErrors(t *testing.T) {
	s := sim.New(1)
	cases := []GraphSpec{
		{Hosts: []string{"a", "a"}},
		{Hosts: []string{""}},
		{Hosts: []string{"a"}, Links: []LinkSpec{{A: "a", B: "missing"}}},
		{Hosts: []string{"a"}, Links: []LinkSpec{{A: "missing", B: "a"}}},
		{Hosts: []string{"a", "b"}, Links: []LinkSpec{{A: "a", B: "a"}}},
	}
	for i, spec := range cases {
		if _, err := BuildGraph(s, spec); err == nil {
			t.Errorf("case %d: BuildGraph accepted an invalid spec", i)
		}
	}
}

func TestBuildKeepsTwoHostLayout(t *testing.T) {
	s := sim.New(1)
	n := Build(s, WiFi3GSpec()...)
	if n.Client == nil || n.Server == nil {
		t.Fatal("two-host Build must set the Client/Server aliases")
	}
	if n.Client != n.Host("client") || n.Server != n.Host("server") {
		t.Fatal("aliases must match named hosts")
	}
	// The historical address plan: client 10.0.i.1, server 10.0.i.2.
	for i := range n.Paths {
		if n.ClientAddr(i) != packet.MakeAddr(10, 0, byte(i), 1) || n.ServerAddr(i) != packet.MakeAddr(10, 0, byte(i), 2) {
			t.Fatalf("path %d addresses drifted: %v / %v", i, n.ClientAddr(i), n.ServerAddr(i))
		}
	}
}

func TestBuildGraphAliasesAreNameBased(t *testing.T) {
	s := sim.New(1)
	// Two hosts declared server-first: the aliases must follow the names,
	// not the declaration positions.
	n, err := BuildGraph(s, GraphSpec{
		Hosts: []string{"server", "client0"},
		Links: []LinkSpec{{A: "client0", B: "server", Config: SymmetricPath(Mbps(8), time.Millisecond, 0, 0)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Client != nil {
		t.Fatalf("no host is named client, yet Client aliases %q", n.Client.Name())
	}
	if n.Server != n.Host("server") {
		t.Fatal("Server alias must resolve to the host named server")
	}
}
