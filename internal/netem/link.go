// Package netem emulates the network underneath the TCP/MPTCP endpoints:
// point-to-point links with configurable rate, propagation delay, queue size
// and loss, hosts with multiple interfaces, bidirectional paths that may have
// middlebox chains attached, and topology builders for the scenarios
// evaluated in the paper (WiFi+3G phone, asymmetric and symmetric gigabit
// hosts, 10G LAN).
package netem

import (
	"time"

	"mptcpgo/internal/packet"
	"mptcpgo/internal/sim"
)

// WireOverheadBytes approximates the per-packet IP + Ethernet framing
// overhead added on the wire in addition to the TCP header and options.
const WireOverheadBytes = 38

// LinkConfig describes one unidirectional link.
type LinkConfig struct {
	// RateBps is the link rate in bits per second; zero means infinitely
	// fast (no serialization delay).
	RateBps int64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// QueueBytes is the buffer in front of the link; zero means unlimited.
	// This is where the 3G "2 second buffer" bufferbloat of the paper's
	// experiments lives.
	QueueBytes int
	// LossRate is the probability that a packet is dropped by the link
	// (independent random losses).
	LossRate float64
}

// LinkStats counts what the link did.
type LinkStats struct {
	SentPackets    uint64
	SentBytes      uint64
	DroppedQueue   uint64
	DroppedRandom  uint64
	DeliveredBytes uint64
	MaxQueueBytes  int
	// OfferedBytes counts the wire bytes of every segment presented to the
	// link, including segments later dropped by loss or queue overflow. The
	// capacity layer reads it as the demand signal for a shared bottleneck:
	// under a rate cap, arrivals (retransmissions, window growth into a full
	// queue) exceed departures, so offered > sent reveals unmet demand.
	OfferedBytes uint64
}

// Receiver consumes segments at the far end of a link.
type Receiver interface {
	Receive(seg *packet.Segment)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(seg *packet.Segment)

// Receive implements Receiver.
func (f ReceiverFunc) Receive(seg *packet.Segment) { f(seg) }

// Link is a unidirectional FIFO link with a finite drop-tail queue, a
// serialization rate and a propagation delay.
type Link struct {
	sim  *sim.Simulator
	cfg  LinkConfig
	dst  Receiver
	name string

	busyUntil   time.Duration
	queuedBytes int
	ordinal     uint64

	// pending carries the wire sizes of queued transmissions to their
	// dequeue events in FIFO order (serialization completions are scheduled
	// in monotonically increasing time, so the head always matches the next
	// firing event). Passing sizes this way lets the per-segment dequeue use
	// the closure-free ScheduleArgsAt form.
	pending     []int
	pendingHead int

	stats LinkStats

	// OnTransmit, if set, is invoked for every segment the link accepts
	// (after queue admission, before delivery). Traces use it.
	OnTransmit func(seg *packet.Segment)
	// OnDrop, if set, is invoked for every dropped segment with a reason.
	OnDrop func(seg *packet.Segment, reason string)
}

// NewLink creates a link delivering to dst.
func NewLink(s *sim.Simulator, name string, cfg LinkConfig, dst Receiver) *Link {
	return &Link{sim: s, cfg: cfg, dst: dst, name: name}
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// Config returns the link configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// SetConfig replaces the link configuration (used to model path changes such
// as a WiFi link degrading mid-connection).
func (l *Link) SetConfig(cfg LinkConfig) { l.cfg = cfg }

// SetReceiver points the link at a new far end.
func (l *Link) SetReceiver(dst Receiver) { l.dst = dst }

// Stats returns a copy of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// QueueBytes returns the current queue occupancy.
func (l *Link) QueueBytes() int { return l.queuedBytes }

// wireSize returns the number of bytes the segment occupies on the wire.
func wireSize(seg *packet.Segment) int {
	return len(seg.Payload) + 20 + packet.OptionsWireLen(seg.Options) + WireOverheadBytes
}

// Send enqueues a segment for transmission. The segment is owned by the link
// afterwards; callers must Clone if they keep a reference. Dropped segments
// are released back to the segment pool.
func (l *Link) Send(seg *packet.Segment) {
	if l.dst == nil {
		seg.Release()
		return
	}
	size := wireSize(seg)
	l.stats.OfferedBytes += uint64(size)

	if l.cfg.LossRate > 0 && l.sim.RNG().Float64() < l.cfg.LossRate {
		l.stats.DroppedRandom++
		if l.OnDrop != nil {
			l.OnDrop(seg, "loss")
		}
		seg.Release()
		return
	}
	if l.cfg.QueueBytes > 0 && l.queuedBytes+size > l.cfg.QueueBytes {
		l.stats.DroppedQueue++
		if l.OnDrop != nil {
			l.OnDrop(seg, "queue-overflow")
		}
		seg.Release()
		return
	}

	l.queuedBytes += size
	if l.queuedBytes > l.stats.MaxQueueBytes {
		l.stats.MaxQueueBytes = l.queuedBytes
	}
	l.ordinal++
	seg.Ordinal = l.ordinal
	l.stats.SentPackets++
	l.stats.SentBytes += uint64(size)
	if l.OnTransmit != nil {
		l.OnTransmit(seg)
	}

	now := l.sim.Now()
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	txTime := time.Duration(0)
	if l.cfg.RateBps > 0 {
		txTime = time.Duration(float64(size*8) / float64(l.cfg.RateBps) * float64(time.Second))
	}
	done := start + txTime
	l.busyUntil = done

	// Both per-segment events go through shared top-level functions so that
	// neither allocates a closure; the dequeue event pops its size from the
	// link's pending FIFO.
	l.pending = append(l.pending, size)
	l.sim.ScheduleArgsAt(done, dequeueSegment, l, nil)
	l.sim.ScheduleArgsAt(done+l.cfg.Delay, deliverSegment, l, seg)
}

// dequeueSegment fires when a transmission's serialization completes: the
// segment's bytes leave the link queue.
func dequeueSegment(a, _ any) {
	l := a.(*Link)
	l.queuedBytes -= l.pending[l.pendingHead]
	l.pendingHead++
	if l.pendingHead == len(l.pending) {
		l.pending = l.pending[:0]
		l.pendingHead = 0
	} else if l.pendingHead >= 1024 && l.pendingHead*2 >= len(l.pending) {
		// A continuously-busy link never fully drains; compact the consumed
		// prefix so the FIFO stays bounded by the in-queue segment count.
		n := copy(l.pending, l.pending[l.pendingHead:])
		l.pending = l.pending[:n]
		l.pendingHead = 0
	}
}

// deliverSegment completes a transmission: it is the ScheduleArgsAt callback
// shared by all links.
func deliverSegment(a, b any) {
	l := a.(*Link)
	seg := b.(*packet.Segment)
	l.stats.DeliveredBytes += uint64(wireSize(seg))
	l.dst.Receive(seg)
}

// BandwidthDelayProduct returns the link's BDP in bytes, a convenience for
// buffer sizing in experiments.
func (c LinkConfig) BandwidthDelayProduct() int {
	if c.RateBps == 0 {
		return 0
	}
	return int(float64(c.RateBps) / 8 * c.Delay.Seconds())
}

// Mbps converts a megabit-per-second figure to bits per second.
func Mbps(m float64) int64 { return int64(m * 1e6) }

// Kbps converts a kilobit-per-second figure to bits per second.
func Kbps(k float64) int64 { return int64(k * 1e3) }

// Gbps converts a gigabit-per-second figure to bits per second.
func Gbps(g float64) int64 { return int64(g * 1e9) }
