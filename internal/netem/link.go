// Package netem emulates the network underneath the TCP/MPTCP endpoints:
// point-to-point links with configurable rate, propagation delay, queue size
// and loss, hosts with multiple interfaces, bidirectional paths that may have
// middlebox chains attached, and topology builders for the scenarios
// evaluated in the paper (WiFi+3G phone, asymmetric and symmetric gigabit
// hosts, 10G LAN).
package netem

import (
	"time"

	"mptcpgo/internal/packet"
	"mptcpgo/internal/sim"
)

// WireOverheadBytes approximates the per-packet IP + Ethernet framing
// overhead added on the wire in addition to the TCP header and options.
const WireOverheadBytes = 38

// LinkConfig describes one unidirectional link.
type LinkConfig struct {
	// RateBps is the link rate in bits per second; zero means infinitely
	// fast (no serialization delay).
	RateBps int64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// QueueBytes is the buffer in front of the link; zero means unlimited.
	// This is where the 3G "2 second buffer" bufferbloat of the paper's
	// experiments lives.
	QueueBytes int
	// LossRate is the probability that a packet is dropped by the link
	// (independent random losses).
	LossRate float64
}

// LinkStats counts what the link did.
type LinkStats struct {
	SentPackets    uint64
	SentBytes      uint64
	DroppedQueue   uint64
	DroppedRandom  uint64
	DeliveredBytes uint64
	MaxQueueBytes  int
	// OfferedBytes counts the wire bytes of every segment presented to the
	// link, including segments later dropped by loss or queue overflow. The
	// capacity layer reads it as the demand signal for a shared bottleneck:
	// under a rate cap, arrivals (retransmissions, window growth into a full
	// queue) exceed departures, so offered > sent reveals unmet demand.
	OfferedBytes uint64
}

// Receiver consumes segments at the far end of a link.
type Receiver interface {
	Receive(seg *packet.Segment)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(seg *packet.Segment)

// Receive implements Receiver.
func (f ReceiverFunc) Receive(seg *packet.Segment) { f(seg) }

// txEntry is one in-flight transmission in the link's burst FIFO. The wire
// size computed at Send time rides along to delivery, and the two sequence
// numbers pin the entry's virtual dequeue and real delivery to the exact
// (At, seq) positions the unbatched two-events-per-segment schedule would
// have used.
type txEntry struct {
	seg   *packet.Segment
	size  int
	done  time.Duration // serialization completes; bytes leave the queue
	at    time.Duration // delivery at the far end (done + Delay at Send time)
	dqSeq uint64        // reserved seq of the elided dequeue event
	dlSeq uint64        // seq of the delivery event
}

// Link is a unidirectional FIFO link with a finite drop-tail queue, a
// serialization rate and a propagation delay.
//
// The hot path is burst-mode: instead of scheduling two simulator events per
// segment (dequeue at serialization completion, delivery after propagation),
// the link keeps a FIFO of back-to-back transmissions and schedules a single
// delivery event for the head entry only. Dequeue completions are virtual —
// their seq is reserved but no event is queued; queue occupancy and the
// processed-event count are settled lazily, strictly ordered by (time, seq)
// against the running simulation, so every observable (admission decisions,
// QueueBytes, Sim.Processed) matches the unbatched schedule bit for bit. The
// wire times are untouched: busyUntil serialization math is exactly the
// per-segment computation, only the scheduler round-trips are batched away.
type Link struct {
	sim  *sim.Simulator
	cfg  LinkConfig
	dst  Receiver
	name string

	busyUntil   time.Duration
	queuedBytes int
	ordinal     uint64

	// fifo holds accepted transmissions in serialization order. head indexes
	// the next entry to deliver (a delivery event is pending iff
	// head < len(fifo)); undrained indexes the next entry whose virtual
	// dequeue has not yet been credited (undrained >= head at event
	// boundaries: an entry's dequeue is always ordered before its delivery).
	fifo      []txEntry
	head      int
	undrained int

	stats LinkStats

	// OnTransmit, if set, is invoked for every segment the link accepts
	// (after queue admission, before delivery). Traces use it.
	OnTransmit func(seg *packet.Segment)
	// OnDrop, if set, is invoked for every dropped segment with a reason.
	OnDrop func(seg *packet.Segment, reason string)
}

// NewLink creates a link delivering to dst.
func NewLink(s *sim.Simulator, name string, cfg LinkConfig, dst Receiver) *Link {
	l := &Link{sim: s, cfg: cfg, dst: dst, name: name}
	s.RegisterSettler(l)
	return l
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// Config returns the link configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// SetConfig replaces the link configuration (used to model path changes such
// as a WiFi link degrading mid-connection).
func (l *Link) SetConfig(cfg LinkConfig) { l.cfg = cfg }

// SetReceiver points the link at a new far end.
func (l *Link) SetReceiver(dst Receiver) { l.dst = dst }

// Stats returns a copy of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// QueueBytes returns the current queue occupancy.
func (l *Link) QueueBytes() int {
	l.drainDue()
	return l.queuedBytes
}

// drainDue credits every virtual dequeue ordered strictly before the point
// the simulation has reached, exactly when the elided per-segment dequeue
// events would have fired.
func (l *Link) drainDue() { l.SettleAt(l.sim.Now(), l.sim.RunningSeq()) }

// SettleAt implements sim.Settler: (now, seq) is the exclusive upper bound of
// event execution, and every virtual dequeue with (done, dqSeq) strictly
// before it fires now — releasing its bytes from the queue and crediting the
// event it replaced to the simulator's processed count.
func (l *Link) SettleAt(now time.Duration, seq uint64) {
	for l.undrained < len(l.fifo) {
		e := &l.fifo[l.undrained]
		if e.done > now || (e.done == now && e.dqSeq >= seq) {
			break
		}
		l.queuedBytes -= e.size
		l.undrained++
		l.sim.Processed++
	}
}

// wireSize returns the number of bytes the segment occupies on the wire.
func wireSize(seg *packet.Segment) int {
	return len(seg.Payload) + 20 + packet.OptionsWireLen(seg.Options) + WireOverheadBytes
}

// Send enqueues a segment for transmission. The segment is owned by the link
// afterwards; callers must Clone if they keep a reference. Dropped segments
// are released back to the segment pool.
func (l *Link) Send(seg *packet.Segment) {
	if l.dst == nil {
		seg.Release()
		return
	}
	l.drainDue() // queue occupancy must be current for the admission check
	size := wireSize(seg)
	l.stats.OfferedBytes += uint64(size)

	if l.cfg.LossRate > 0 && l.sim.RNG().Float64() < l.cfg.LossRate {
		l.stats.DroppedRandom++
		if l.OnDrop != nil {
			l.OnDrop(seg, "loss")
		}
		seg.Release()
		return
	}
	if l.cfg.QueueBytes > 0 && l.queuedBytes+size > l.cfg.QueueBytes {
		l.stats.DroppedQueue++
		if l.OnDrop != nil {
			l.OnDrop(seg, "queue-overflow")
		}
		seg.Release()
		return
	}

	l.queuedBytes += size
	if l.queuedBytes > l.stats.MaxQueueBytes {
		l.stats.MaxQueueBytes = l.queuedBytes
	}
	l.ordinal++
	seg.Ordinal = l.ordinal
	l.stats.SentPackets++
	l.stats.SentBytes += uint64(size)
	if l.OnTransmit != nil {
		l.OnTransmit(seg)
	}

	now := l.sim.Now()
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	txTime := time.Duration(0)
	if l.cfg.RateBps > 0 {
		txTime = time.Duration(float64(size*8) / float64(l.cfg.RateBps) * float64(time.Second))
	}
	done := start + txTime
	l.busyUntil = done

	// Reserve the seqs the unbatched schedule would have consumed (dequeue
	// first, then delivery), append to the burst FIFO, and arm the delivery
	// pump only when it is idle — one scheduler insertion replaces two, and
	// the closure-free ScheduleArgsAt form is kept.
	dqSeq := l.sim.ReserveSeq()
	dlSeq := l.sim.ReserveSeq()
	l.fifo = append(l.fifo, txEntry{
		seg: seg, size: size,
		done: done, at: done + l.cfg.Delay,
		dqSeq: dqSeq, dlSeq: dlSeq,
	})
	if l.head == len(l.fifo)-1 {
		l.sim.ScheduleArgsAtSeq(done+l.cfg.Delay, dlSeq, deliverBurst, l, nil)
	}
}

// deliverBurst fires at the head entry's delivery time with its reserved seq:
// it completes that transmission and re-arms for the next FIFO entry at its
// own pre-reserved (at, seq), so the interleaving with every other simulator
// event is identical to the unbatched per-segment schedule.
func deliverBurst(a, _ any) {
	l := a.(*Link)
	e := &l.fifo[l.head]
	l.drainDue() // the entry's own virtual dequeue is always ordered first
	l.stats.DeliveredBytes += uint64(e.size)
	seg := e.seg
	e.seg = nil
	l.head++
	if l.head < len(l.fifo) {
		if l.head >= 1024 && l.head*2 >= len(l.fifo) {
			// A continuously-busy link never fully drains; compact the
			// delivered prefix so the FIFO stays bounded by the in-flight
			// segment count.
			n := copy(l.fifo, l.fifo[l.head:])
			clearTail := l.fifo[n:]
			for i := range clearTail {
				clearTail[i] = txEntry{}
			}
			l.fifo = l.fifo[:n]
			l.undrained -= l.head
			l.head = 0
		}
		next := &l.fifo[l.head]
		l.sim.ScheduleArgsAtSeq(next.at, next.dlSeq, deliverBurst, l, nil)
	} else {
		// Fully delivered implies fully drained: each delivery settles its
		// own dequeue first, so both cursors sit at len(fifo).
		l.fifo = l.fifo[:0]
		l.head, l.undrained = 0, 0
	}
	l.dst.Receive(seg)
}

// BandwidthDelayProduct returns the link's BDP in bytes, a convenience for
// buffer sizing in experiments.
func (c LinkConfig) BandwidthDelayProduct() int {
	if c.RateBps == 0 {
		return 0
	}
	return int(float64(c.RateBps) / 8 * c.Delay.Seconds())
}

// Mbps converts a megabit-per-second figure to bits per second.
func Mbps(m float64) int64 { return int64(m * 1e6) }

// Kbps converts a kilobit-per-second figure to bits per second.
func Kbps(k float64) int64 { return int64(k * 1e3) }

// Gbps converts a gigabit-per-second figure to bits per second.
func Gbps(g float64) int64 { return int64(g * 1e9) }
