package netem

import (
	"time"

	"mptcpgo/internal/packet"
	"mptcpgo/internal/sim"
)

// Direction identifies which way a segment travels across a path.
type Direction int

// Path directions.
const (
	// AtoB is the direction from the path's A interface to its B interface
	// (conventionally client to server).
	AtoB Direction = iota
	// BtoA is the reverse direction.
	BtoA
)

// Reverse returns the opposite direction.
func (d Direction) Reverse() Direction {
	if d == AtoB {
		return BtoA
	}
	return AtoB
}

// String renders the direction.
func (d Direction) String() string {
	if d == AtoB {
		return "a->b"
	}
	return "b->a"
}

// Box is an on-path middlebox element. Implementations live in the middlebox
// package (NAT, sequence rewriting, option stripping, segment splitting,
// coalescing, proactive ACKing, payload modification).
type Box interface {
	// Name identifies the element for traces.
	Name() string
	// Process handles one segment travelling in dir and returns the
	// segments to forward onward (possibly none, possibly several). The
	// context lets elements inject segments of their own (e.g. a proxy
	// generating ACKs toward the sender).
	Process(ctx BoxContext, dir Direction, seg *packet.Segment) []*packet.Segment
}

// BoxContext is the environment a middlebox element runs in.
type BoxContext interface {
	// Now returns the current simulation time.
	Now() time.Duration
	// Inject sends a segment in the given direction from the middlebox's
	// position on the path, bypassing the elements the segment has already
	// traversed.
	Inject(dir Direction, seg *packet.Segment)
	// Sim returns the simulator, for elements that need timers.
	Sim() *sim.Simulator
}

// PathConfig describes both directions of a path.
type PathConfig struct {
	AB LinkConfig
	BA LinkConfig
}

// SymmetricPath returns a configuration with identical properties in both
// directions.
func SymmetricPath(rateBps int64, delay time.Duration, queueBytes int, loss float64) PathConfig {
	lc := LinkConfig{RateBps: rateBps, Delay: delay, QueueBytes: queueBytes, LossRate: loss}
	return PathConfig{AB: lc, BA: lc}
}

// Path is a bidirectional point-to-point path between two interfaces with an
// optional middlebox chain. Elements are applied in order for AtoB traffic
// and in reverse order for BtoA traffic, as they would be for a physical
// chain of boxes.
type Path struct {
	sim    *sim.Simulator
	name   string
	a, b   *Interface
	linkAB *Link
	linkBA *Link
	boxes  []Box
	down   bool
}

// NewPath wires interfaces a and b together with the given configuration.
func NewPath(s *sim.Simulator, name string, a, b *Interface, cfg PathConfig) *Path {
	p := &Path{sim: s, name: name, a: a, b: b}
	p.linkAB = NewLink(s, name+"/ab", cfg.AB, ReceiverFunc(func(seg *packet.Segment) {
		p.arrive(AtoB, seg)
	}))
	p.linkBA = NewLink(s, name+"/ba", cfg.BA, ReceiverFunc(func(seg *packet.Segment) {
		p.arrive(BtoA, seg)
	}))
	a.out = p.linkAB
	a.path = p
	b.out = p.linkBA
	b.path = p
	return p
}

// Name returns the path name.
func (p *Path) Name() string { return p.name }

// A returns the path's A-side interface.
func (p *Path) A() *Interface { return p.a }

// B returns the path's B-side interface.
func (p *Path) B() *Interface { return p.b }

// Peer returns the interface at the opposite end of the path from ifc, or
// nil when ifc is not one of the path's endpoints.
func (p *Path) Peer(ifc *Interface) *Interface {
	switch ifc {
	case p.a:
		return p.b
	case p.b:
		return p.a
	}
	return nil
}

// LinkAB returns the A-to-B link.
func (p *Path) LinkAB() *Link { return p.linkAB }

// LinkBA returns the B-to-A link.
func (p *Path) LinkBA() *Link { return p.linkBA }

// AddBox appends a middlebox element to the chain.
func (p *Path) AddBox(b Box) { p.boxes = append(p.boxes, b) }

// Boxes returns the middlebox chain.
func (p *Path) Boxes() []Box { return p.boxes }

// SetDown marks the path as failed; segments in either direction are
// silently discarded (models the "subflow fails silently" scenarios of
// §3.3.1 and mobility events).
func (p *Path) SetDown(down bool) { p.down = down }

// Down reports whether the path is failed.
func (p *Path) Down() bool { return p.down }

// arrive runs the middlebox chain at the far end of a link and delivers the
// result to the destination interface.
func (p *Path) arrive(dir Direction, seg *packet.Segment) {
	if p.down {
		seg.Release()
		return
	}
	if len(p.boxes) == 0 {
		// Box-free paths (the common case) deliver directly; the chain walk
		// below would allocate a slice per segment for nothing.
		p.destination(dir).Receive(seg)
		return
	}
	segs := p.runChain(dir, 0, seg)
	for _, s := range segs {
		p.destination(dir).Receive(s)
	}
}

func (p *Path) destination(dir Direction) *Interface {
	if dir == AtoB {
		return p.b
	}
	return p.a
}

// runChain applies boxes starting at index from (in chain order for AtoB,
// reverse order for BtoA).
func (p *Path) runChain(dir Direction, from int, seg *packet.Segment) []*packet.Segment {
	segs := []*packet.Segment{seg}
	n := len(p.boxes)
	for i := from; i < n; i++ {
		box := p.boxAt(dir, i)
		var next []*packet.Segment
		for _, s := range segs {
			out := box.Process(&boxCtx{path: p, index: i}, dir, s)
			next = append(next, out...)
		}
		segs = next
		if len(segs) == 0 {
			break
		}
	}
	return segs
}

// boxAt returns the i-th element along the given direction.
func (p *Path) boxAt(dir Direction, i int) Box {
	if dir == AtoB {
		return p.boxes[i]
	}
	return p.boxes[len(p.boxes)-1-i]
}

type boxCtx struct {
	path  *Path
	index int
}

// Now implements BoxContext.
func (c *boxCtx) Now() time.Duration { return c.path.sim.Now() }

// Sim implements BoxContext.
func (c *boxCtx) Sim() *sim.Simulator { return c.path.sim }

// Inject implements BoxContext. Injected segments traverse the remaining
// elements toward the destination of dir and are then delivered.
func (c *boxCtx) Inject(dir Direction, seg *packet.Segment) {
	p := c.path
	if p.down {
		seg.Release()
		return
	}
	// The injecting element sits at position index along its own direction;
	// translate that to a starting index along dir.
	start := 0
	segs := p.runChain(dir, start, seg)
	for _, s := range segs {
		p.destination(dir).Receive(s)
	}
}

// SendDirect bypasses the attached interfaces and pushes a segment onto the
// path in the given direction; probes and tests use it to craft raw traffic.
func (p *Path) SendDirect(dir Direction, seg *packet.Segment) {
	if dir == AtoB {
		p.linkAB.Send(seg)
	} else {
		p.linkBA.Send(seg)
	}
}
