package netem

import (
	"fmt"
	"time"

	"mptcpgo/internal/packet"
	"mptcpgo/internal/sim"
)

// SegmentHandler receives segments demultiplexed to one connection or
// subflow. The ingress interface is provided so that responses can be routed
// back the way the segment came (important behind NATs).
type SegmentHandler interface {
	HandleSegment(ingress *Interface, seg *packet.Segment)
}

// ListenHandler receives SYN segments for which no established connection
// exists on the destination port.
type ListenHandler interface {
	HandleSYN(ingress *Interface, seg *packet.Segment)
}

// CPUModel models host packet-processing cost. It reproduces the effect in
// Figure 3: with small segments, per-packet costs (interrupts, protocol
// processing) dominate; software DSS checksumming adds a per-byte cost that
// checksum offload would otherwise hide.
type CPUModel struct {
	// PerPacket is charged for every segment sent or received.
	PerPacket time.Duration
	// PerPayloadByte is charged per payload byte (software checksumming).
	PerPayloadByte time.Duration
}

// Cost returns the processing time for one segment.
func (m CPUModel) Cost(seg *packet.Segment) time.Duration {
	return m.PerPacket + time.Duration(len(seg.Payload))*m.PerPayloadByte
}

// HostStats aggregates host-level counters.
type HostStats struct {
	Delivered   uint64
	NoMatchRST  uint64
	CPUBusyTime time.Duration
}

// Host is an end system with one or more interfaces and a TCP demultiplexer.
type Host struct {
	sim  *sim.Simulator
	name string

	ifaces []*Interface

	conns     map[packet.FourTuple]SegmentHandler
	listeners map[uint16]ListenHandler

	// lastKey/lastHandler memoize the most recent successful demux. Burst
	// delivery hands a link's back-to-back segments to the host consecutively,
	// so a bulk transfer's segments hit the cache and skip the map lookup.
	// Only positive lookups are cached; Unregister invalidates the entry when
	// it removes the cached tuple.
	lastKey     packet.FourTuple
	lastHandler SegmentHandler

	nextEphemeral uint16

	// CPU, when non-zero, serializes packet processing through a single
	// busy-until model.
	CPU        CPUModel
	cpuBusyTil time.Duration

	stats HostStats

	// OnUnmatched, if set, overrides the default RST-on-unmatched-segment
	// behaviour (used by probes and tests).
	OnUnmatched func(ingress *Interface, seg *packet.Segment)
}

// NewHost creates a host attached to the simulator.
func NewHost(s *sim.Simulator, name string) *Host {
	return &Host{
		sim:           s,
		name:          name,
		conns:         make(map[packet.FourTuple]SegmentHandler),
		listeners:     make(map[uint16]ListenHandler),
		nextEphemeral: 40000,
	}
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Sim returns the simulator the host runs on.
func (h *Host) Sim() *sim.Simulator { return h.sim }

// Stats returns a copy of the host counters.
func (h *Host) Stats() HostStats {
	s := h.stats
	s.CPUBusyTime = h.stats.CPUBusyTime
	return s
}

// AddInterface attaches a new interface with the given address.
func (h *Host) AddInterface(addr packet.Addr) *Interface {
	ifc := &Interface{host: h, addr: addr, mtu: 1500}
	h.ifaces = append(h.ifaces, ifc)
	return ifc
}

// Interfaces returns the host's interfaces in attachment order.
func (h *Host) Interfaces() []*Interface { return h.ifaces }

// InterfaceByAddr returns the interface with the given address, or nil.
func (h *Host) InterfaceByAddr(addr packet.Addr) *Interface {
	for _, ifc := range h.ifaces {
		if ifc.addr == addr {
			return ifc
		}
	}
	return nil
}

// AllocatePort returns a fresh ephemeral port.
func (h *Host) AllocatePort() uint16 {
	h.nextEphemeral++
	if h.nextEphemeral < 40000 {
		h.nextEphemeral = 40000
	}
	return h.nextEphemeral
}

// Register installs a handler for the connection identified by the local and
// remote endpoints.
func (h *Host) Register(local, remote packet.Endpoint, handler SegmentHandler) error {
	key := packet.FourTuple{Src: local, Dst: remote}
	if _, exists := h.conns[key]; exists {
		return fmt.Errorf("netem: %s: connection %v already registered", h.name, key)
	}
	h.conns[key] = handler
	return nil
}

// Unregister removes a connection handler.
func (h *Host) Unregister(local, remote packet.Endpoint) {
	key := packet.FourTuple{Src: local, Dst: remote}
	if key == h.lastKey {
		h.lastHandler = nil
	}
	delete(h.conns, key)
}

// Listen installs a SYN handler on the given port.
func (h *Host) Listen(port uint16, handler ListenHandler) error {
	if _, exists := h.listeners[port]; exists {
		return fmt.Errorf("netem: %s: port %d already has a listener", h.name, port)
	}
	h.listeners[port] = handler
	return nil
}

// Unlisten removes a listener.
func (h *Host) Unlisten(port uint16) { delete(h.listeners, port) }

// deliver demultiplexes a received segment after the CPU model charge.
func (h *Host) deliver(ingress *Interface, seg *packet.Segment) {
	if h.CPU.PerPacket > 0 || h.CPU.PerPayloadByte > 0 {
		cost := h.CPU.Cost(seg)
		start := h.sim.Now()
		if h.cpuBusyTil > start {
			start = h.cpuBusyTil
		}
		done := start + cost
		h.cpuBusyTil = done
		h.stats.CPUBusyTime += cost
		h.sim.ScheduleAt(done, func() { h.dispatch(ingress, seg) })
		return
	}
	h.dispatch(ingress, seg)
}

func (h *Host) dispatch(ingress *Interface, seg *packet.Segment) {
	h.stats.Delivered++
	key := packet.FourTuple{Src: seg.Dst, Dst: seg.Src}
	if h.lastHandler != nil && key == h.lastKey {
		h.lastHandler.HandleSegment(ingress, seg)
		seg.Release()
		return
	}
	if handler, ok := h.conns[key]; ok {
		h.lastKey, h.lastHandler = key, handler
		handler.HandleSegment(ingress, seg)
		// The segment has been fully consumed: handlers copy any payload
		// bytes they keep (receive queues and reassembly buffers own their
		// own pool buffers), so the segment goes back to the pool here.
		seg.Release()
		return
	}
	if seg.Flags.Has(packet.FlagSYN) && !seg.Flags.Has(packet.FlagACK) {
		if l, ok := h.listeners[seg.Dst.Port]; ok {
			l.HandleSYN(ingress, seg)
			seg.Release()
			return
		}
	}
	if h.OnUnmatched != nil {
		// Probes may retain the segment; ownership passes to the callback.
		h.OnUnmatched(ingress, seg)
		return
	}
	// Default behaviour: answer non-RST segments with a RST, as a real host
	// with no matching socket would.
	if !seg.Flags.Has(packet.FlagRST) {
		h.stats.NoMatchRST++
		rst := &packet.Segment{
			Src:   seg.Dst,
			Dst:   seg.Src,
			Seq:   seg.Ack,
			Ack:   seg.EndSeq(),
			Flags: packet.FlagRST | packet.FlagACK,
		}
		ingress.Send(rst)
	}
	seg.Release()
}

// chargeTX applies the CPU model to an outgoing segment and invokes send when
// the CPU is free.
func (h *Host) chargeTX(seg *packet.Segment, send func()) {
	if h.CPU.PerPacket == 0 && h.CPU.PerPayloadByte == 0 {
		send()
		return
	}
	cost := h.CPU.Cost(seg)
	start := h.sim.Now()
	if h.cpuBusyTil > start {
		start = h.cpuBusyTil
	}
	done := start + cost
	h.cpuBusyTil = done
	h.stats.CPUBusyTime += cost
	h.sim.ScheduleAt(done, send)
}

// Sender is anything an interface can transmit segments through: a plain
// Link, or an aggregate such as a round-robin bond.
type Sender interface {
	Send(seg *packet.Segment)
}

// Interface is a host network interface attached to (at most) one path.
type Interface struct {
	host *Host
	addr packet.Addr
	mtu  int

	// out is the transmit side of the attached path for this interface.
	out Sender
	// path is the bidirectional path the interface is attached to.
	path *Path
}

// Host returns the owning host.
func (i *Interface) Host() *Host { return i.host }

// Addr returns the interface address.
func (i *Interface) Addr() packet.Addr { return i.addr }

// MTU returns the interface MTU in bytes.
func (i *Interface) MTU() int { return i.mtu }

// SetMTU changes the interface MTU (jumbo frames for the Fig. 3 sweep).
func (i *Interface) SetMTU(mtu int) { i.mtu = mtu }

// Path returns the path the interface is attached to, or nil.
func (i *Interface) Path() *Path { return i.path }

// Attached reports whether the interface is connected to a path.
func (i *Interface) Attached() bool { return i.out != nil }

// AttachSender connects the interface's transmit side to an arbitrary Sender
// (used by link bonding). Interfaces attached to a Path get their sender set
// automatically.
func (i *Interface) AttachSender(s Sender) { i.out = s }

// Send transmits a segment out of this interface.
func (i *Interface) Send(seg *packet.Segment) {
	if i.out == nil {
		seg.Release()
		return
	}
	h := i.host
	seg.SentAt = h.sim.Now()
	if h.CPU.PerPacket == 0 && h.CPU.PerPayloadByte == 0 {
		// No CPU model: transmit synchronously without allocating the
		// deferred-send closure.
		i.out.Send(seg)
		return
	}
	i.host.chargeTX(seg, func() { i.out.Send(seg) })
}

// Receive implements Receiver; segments arriving from the path are handed to
// the host demultiplexer.
func (i *Interface) Receive(seg *packet.Segment) {
	i.host.deliver(i, seg)
}
