package buffer

// listQueue implements the Regular, Shortcuts and AllShortcuts out-of-order
// queues from §4.3. The underlying container is a doubly-linked list sorted
// by data sequence number, exactly like the Linux out-of-order receive queue;
// the variants differ in how the insertion point is located:
//
//   - Regular: linear scan from the head.
//   - Shortcuts: each subflow remembers where its previous segment was
//     inserted. Because a subflow transmits batches of contiguous data
//     sequence numbers, the next segment usually belongs right after the
//     previous one and is inserted in constant time.
//   - AllShortcuts: when the shortcut misses, the scan iterates over batches
//     of contiguous segments instead of individual segments.
//
// Node and batch structs are free-listed per queue: out-of-order segments
// arrive once per reordering event on the hot receive path, and recycling
// the structs (like the payload buffers they carry) keeps that path
// allocation-free at steady state. Recycled nodes bump a generation counter
// so stale subflow hints can never mistake a reused node for the one they
// remembered.
type listQueue struct {
	head, tail *listNode
	batches    *batchNode // first batch (ordered)
	lastBatch  *batchNode

	useShortcuts bool
	useBatches   bool

	hints map[int]listHint

	count int
	bytes int
	steps uint64

	// freeNodes/freeBatches recycle structs; popScratch is the reused
	// PopContiguous result slice. All three are queue-local: queues belong to
	// one endpoint on one simulator, so no locking is needed.
	freeNodes   []*listNode
	freeBatches []*batchNode
	popScratch  []Item
}

type listNode struct {
	it         Item
	prev, next *listNode
	batch      *batchNode
	// gen counts reuses of this struct; a hint taken on an earlier life of
	// the node no longer matches and is ignored.
	gen uint64
}

type batchNode struct {
	first, last *listNode
	prev, next  *batchNode
}

// listHint remembers where a subflow's previous segment was inserted, pinned
// to the generation of the node at the time.
type listHint struct {
	n   *listNode
	gen uint64
}

func newListQueue(shortcuts, batches bool) *listQueue {
	return &listQueue{
		useShortcuts: shortcuts,
		useBatches:   batches,
		hints:        make(map[int]listHint),
	}
}

// Name implements OfoQueue.
func (q *listQueue) Name() string {
	switch {
	case q.useBatches:
		return "AllShortcuts"
	case q.useShortcuts:
		return "Shortcuts"
	default:
		return "Regular"
	}
}

// Len implements OfoQueue.
func (q *listQueue) Len() int { return q.count }

// Bytes implements OfoQueue.
func (q *listQueue) Bytes() int { return q.bytes }

// Steps implements OfoQueue.
func (q *listQueue) Steps() uint64 { return q.steps }

// newNode takes a node from the free list (or allocates one) and loads it.
func (q *listQueue) newNode(it Item) *listNode {
	if n := len(q.freeNodes); n > 0 {
		nd := q.freeNodes[n-1]
		q.freeNodes = q.freeNodes[:n-1]
		nd.it = it
		return nd
	}
	return &listNode{it: it}
}

// recycleNode returns an unlinked node to the free list, invalidating any
// hints that still reference it.
func (q *listQueue) recycleNode(n *listNode) {
	n.gen++
	n.it = Item{}
	n.prev, n.next, n.batch = nil, nil, nil
	q.freeNodes = append(q.freeNodes, n)
}

// newBatch takes a batch from the free list (or allocates one).
func (q *listQueue) newBatch(first, last *listNode) *batchNode {
	if n := len(q.freeBatches); n > 0 {
		b := q.freeBatches[n-1]
		q.freeBatches = q.freeBatches[:n-1]
		b.first, b.last = first, last
		return b
	}
	return &batchNode{first: first, last: last}
}

// Insert implements OfoQueue.
func (q *listQueue) Insert(it Item) int {
	steps := q.insert(it)
	q.steps += uint64(steps)
	return steps
}

func (q *listQueue) insert(it Item) (steps int) {
	// 1. Locate the node after which the item belongs (nil = before head).
	var after *listNode
	located := false

	if q.useShortcuts {
		if h, ok := q.hints[it.Subflow]; ok && h.n != nil && h.n.gen == h.gen {
			hint := h.n
			steps++
			if hint.it.End() == it.Seq && (hint.next == nil || it.End() <= hint.next.it.Seq) {
				after = hint
				located = true
			}
		}
	}

	if !located {
		if q.useBatches {
			after = q.locateByBatches(it, &steps)
		} else {
			after = q.locateLinear(it, &steps)
		}
	}

	// 2. Trim overlap with neighbours.
	if after != nil && after.it.End() > it.Seq {
		if !trimItem(&it, after.it.End()) {
			return steps
		}
	}
	next := q.head
	if after != nil {
		next = after.next
	}
	if next != nil && it.End() > next.it.Seq {
		keep := next.it.Seq - it.Seq
		if keep == 0 {
			return steps
		}
		it.Data = it.Data[:keep]
	}

	// 3. Splice in the new node, adopting a pool-owned copy of the payload.
	adoptItemData(&it)
	n := q.newNode(it)
	q.insertAfter(after, n)
	q.count++
	q.bytes += len(it.Data)
	if q.useShortcuts {
		q.hints[it.Subflow] = listHint{n: n, gen: n.gen}
	}
	q.attachBatch(n)
	return steps
}

// locateLinear walks the node list from the head.
func (q *listQueue) locateLinear(it Item, steps *int) *listNode {
	var after *listNode
	for n := q.head; n != nil; n = n.next {
		*steps++
		if it.Seq < n.it.Seq {
			break
		}
		after = n
	}
	return after
}

// locateByBatches walks the batch list, then descends into the single batch
// that can contain the insertion point.
func (q *listQueue) locateByBatches(it Item, steps *int) *listNode {
	var prevBatch *batchNode
	for b := q.batches; b != nil; b = b.next {
		*steps++
		if it.Seq < b.first.it.Seq {
			break
		}
		prevBatch = b
	}
	if prevBatch == nil {
		return nil
	}
	// The item belongs after prevBatch.first. If it extends past the batch's
	// end it sits after the batch's last node; otherwise scan within the
	// batch (short by construction: it is a contiguous run, so the position
	// is found by sequence comparison against individual nodes).
	if it.Seq >= prevBatch.last.it.Seq {
		*steps++
		return prevBatch.last
	}
	after := prevBatch.first
	for n := prevBatch.first; n != nil && n.batch == prevBatch; n = n.next {
		*steps++
		if it.Seq < n.it.Seq {
			break
		}
		after = n
	}
	return after
}

func (q *listQueue) insertAfter(after, n *listNode) {
	if after == nil {
		n.next = q.head
		if q.head != nil {
			q.head.prev = n
		}
		q.head = n
		if q.tail == nil {
			q.tail = n
		}
		return
	}
	n.prev = after
	n.next = after.next
	if after.next != nil {
		after.next.prev = n
	} else {
		q.tail = n
	}
	after.next = n
}

// attachBatch places n into the batch structure, merging adjacent batches
// when the new node bridges them.
func (q *listQueue) attachBatch(n *listNode) {
	joinPrev := n.prev != nil && n.prev.it.End() == n.it.Seq
	joinNext := n.next != nil && n.it.End() == n.next.it.Seq

	switch {
	case joinPrev && joinNext && n.prev.batch != n.next.batch:
		// Bridge two batches into one.
		b := n.prev.batch
		other := n.next.batch
		n.batch = b
		for m := other.first; m != nil; m = m.next {
			m.batch = b
			if m == other.last {
				break
			}
		}
		b.last = other.last
		q.removeBatch(other)
	case joinPrev:
		b := n.prev.batch
		n.batch = b
		if b.last == n.prev {
			b.last = n
		}
	case joinNext:
		b := n.next.batch
		n.batch = b
		if b.first == n.next {
			b.first = n
		}
	default:
		// New standalone batch between the neighbours' batches.
		b := q.newBatch(n, n)
		n.batch = b
		var prevBatch *batchNode
		if n.prev != nil {
			prevBatch = n.prev.batch
		}
		q.insertBatchAfter(prevBatch, b)
	}
}

func (q *listQueue) insertBatchAfter(after, b *batchNode) {
	if after == nil {
		b.next = q.batches
		if q.batches != nil {
			q.batches.prev = b
		}
		q.batches = b
		if q.lastBatch == nil {
			q.lastBatch = b
		}
		return
	}
	b.prev = after
	b.next = after.next
	if after.next != nil {
		after.next.prev = b
	} else {
		q.lastBatch = b
	}
	after.next = b
}

// removeBatch unlinks a batch and returns the struct to the free list.
func (q *listQueue) removeBatch(b *batchNode) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		q.batches = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		q.lastBatch = b.prev
	}
	b.first, b.last, b.prev, b.next = nil, nil, nil, nil
	q.freeBatches = append(q.freeBatches, b)
}

// removeNode unlinks a node (updating counters and batch bookkeeping with the
// item still attached) and recycles the struct. The caller must copy n.it
// first if it still needs the item.
func (q *listQueue) removeNode(n *listNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		q.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		q.tail = n.prev
	}
	q.count--
	q.bytes -= len(n.it.Data)

	b := n.batch
	if b != nil {
		switch {
		case b.first == n && b.last == n:
			q.removeBatch(b)
		case b.first == n:
			b.first = n.next
		case b.last == n:
			b.last = n.prev
		}
	}
	q.recycleNode(n)
}

// PopContiguous implements OfoQueue. The returned slice is reused by the
// next PopContiguous call on this queue.
func (q *listQueue) PopContiguous(nextSeq uint64) []Item {
	out := q.popScratch[:0]
	for q.head != nil {
		n := q.head
		if n.it.End() <= nextSeq {
			it := n.it
			q.removeNode(n)
			discardItemData(&it)
			continue
		}
		if n.it.Seq > nextSeq {
			break
		}
		it := n.it
		q.removeNode(n)
		if !trimItem(&it, nextSeq) {
			discardItemData(&it)
			continue
		}
		out = append(out, it)
		nextSeq = it.End()
	}
	q.popScratch = out
	return out
}
