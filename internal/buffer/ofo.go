package buffer

import "mptcpgo/internal/pool"

// Item is one out-of-order segment held at the connection level, keyed by its
// data sequence number.
type Item struct {
	// Seq is the absolute stream offset (data sequence number) of Data[0].
	Seq uint64
	// Data is the segment payload (already trimmed of any overlap with
	// delivered data).
	Data []byte
	// Subflow identifies the subflow the segment arrived on; the Shortcuts
	// algorithms exploit the fact that arrivals on one subflow are usually
	// in data-sequence order.
	Subflow int
}

// End returns the stream offset one past the item's last byte.
func (it *Item) End() uint64 { return it.Seq + uint64(len(it.Data)) }

// OfoQueue is an out-of-order reassembly queue. Implementations differ only
// in how they locate the insertion point for a new segment, which is exactly
// the cost §4.3 of the paper optimizes.
type OfoQueue interface {
	// Insert adds an item arriving on the given subflow. Fully duplicate
	// items are dropped. It returns the number of elementary search steps
	// (node visits / comparisons) performed, the proxy used for CPU cost.
	//
	// The queue stores a pool-owned copy of it.Data; the caller keeps
	// ownership of (and may immediately reuse) the slice it passed in.
	Insert(it Item) int
	// PopContiguous removes and returns the maximal run of items that starts
	// exactly at nextSeq, in order. Items entirely below nextSeq are
	// discarded. Ownership of each returned item's Data passes to the
	// caller, which should pool.Recycle it once consumed. The returned slice
	// itself stays owned by the queue and is reused by the next
	// PopContiguous call: consume (or copy) it before touching the queue
	// again.
	PopContiguous(nextSeq uint64) []Item
	// Len returns the number of queued items.
	Len() int
	// Bytes returns the number of queued payload bytes.
	Bytes() int
	// Steps returns the cumulative number of search steps since creation.
	Steps() uint64
	// Name returns the algorithm name used in reports.
	Name() string
}

// Algorithm selects an out-of-order reassembly implementation.
type Algorithm int

// The four receive algorithms compared in Figure 8.
const (
	// AlgRegular scans the queue linearly from the head, as the unmodified
	// Linux receive path does for out-of-order arrivals.
	AlgRegular Algorithm = iota
	// AlgTree keeps the queue in a balanced search tree (logarithmic
	// insertion).
	AlgTree
	// AlgShortcuts keeps a per-subflow pointer to the expected insertion
	// point; a correct prediction inserts in constant time.
	AlgShortcuts
	// AlgAllShortcuts additionally groups in-sequence items into batches and
	// scans batches rather than items when the shortcut misses.
	AlgAllShortcuts
)

// String returns the algorithm's display name.
func (a Algorithm) String() string {
	switch a {
	case AlgRegular:
		return "Regular"
	case AlgTree:
		return "Tree"
	case AlgShortcuts:
		return "Shortcuts"
	case AlgAllShortcuts:
		return "AllShortcuts"
	default:
		return "Unknown"
	}
}

// Algorithms lists all implementations in the order Figure 8 reports them.
func Algorithms() []Algorithm {
	return []Algorithm{AlgRegular, AlgTree, AlgShortcuts, AlgAllShortcuts}
}

// NewOfoQueue constructs an out-of-order queue using the given algorithm.
func NewOfoQueue(a Algorithm) OfoQueue {
	switch a {
	case AlgTree:
		return newTreeQueue()
	case AlgShortcuts:
		return newListQueue(true, false)
	case AlgAllShortcuts:
		return newListQueue(true, true)
	default:
		return newListQueue(false, false)
	}
}

// trimItem clips it against the already-delivered prefix ending at nextSeq.
// It returns false if nothing remains.
func trimItem(it *Item, nextSeq uint64) bool {
	if it.End() <= nextSeq {
		return false
	}
	if it.Seq < nextSeq {
		cut := nextSeq - it.Seq
		it.Data = it.Data[cut:]
		it.Seq = nextSeq
	}
	return len(it.Data) > 0
}

// adoptItemData replaces the item's (borrowed) data slice with a pool-owned
// copy; implementations call it right before storing a new item.
func adoptItemData(it *Item) {
	it.Data = pool.Copy(it.Data)
}

// discardItemData recycles the pool-owned buffer of an item the queue is
// dropping internally (fully-duplicate or below the delivery point).
func discardItemData(it *Item) {
	pool.Recycle(it.Data)
	it.Data = nil
}
