// Package buffer provides the byte queues and reassembly structures used by
// the TCP and MPTCP endpoints: application send queues, in-order receive
// queues and the four out-of-order reassembly algorithms evaluated in §4.3 of
// the paper (Regular, Tree, Shortcuts, AllShortcuts).
package buffer

// ByteQueue is a FIFO byte stream with an absolute offset for its head. It
// backs both the subflow send buffer (offsets are subflow sequence numbers
// relative to the ISN) and the connection-level receive queue (offsets are
// data sequence numbers).
type ByteQueue struct {
	data []byte
	// headOffset is the absolute stream offset of data[0].
	headOffset uint64
}

// NewByteQueue returns an empty queue whose head sits at the given absolute
// stream offset.
func NewByteQueue(headOffset uint64) *ByteQueue {
	return &ByteQueue{headOffset: headOffset}
}

// Len returns the number of buffered bytes.
func (q *ByteQueue) Len() int { return len(q.data) }

// HeadOffset returns the absolute offset of the first buffered byte.
func (q *ByteQueue) HeadOffset() uint64 { return q.headOffset }

// TailOffset returns the absolute offset one past the last buffered byte.
func (q *ByteQueue) TailOffset() uint64 { return q.headOffset + uint64(len(q.data)) }

// Append adds data at the tail of the stream.
func (q *ByteQueue) Append(b []byte) {
	q.data = append(q.data, b...)
}

// Peek returns up to n bytes starting at absolute offset off without removing
// them. It returns nil if off is outside the buffered range.
func (q *ByteQueue) Peek(off uint64, n int) []byte {
	if off < q.headOffset || off >= q.TailOffset() {
		return nil
	}
	start := int(off - q.headOffset)
	end := start + n
	if end > len(q.data) {
		end = len(q.data)
	}
	return q.data[start:end]
}

// Pop removes and returns up to n bytes from the head of the queue.
func (q *ByteQueue) Pop(n int) []byte {
	if n > len(q.data) {
		n = len(q.data)
	}
	out := append([]byte(nil), q.data[:n]...)
	q.discard(n)
	return out
}

// TrimTo discards all bytes before absolute offset off (typically the
// cumulative acknowledgement point).
func (q *ByteQueue) TrimTo(off uint64) {
	if off <= q.headOffset {
		return
	}
	n := off - q.headOffset
	if n >= uint64(len(q.data)) {
		q.headOffset = q.TailOffset()
		q.data = q.data[:0]
		q.headOffset = off
		return
	}
	q.discard(int(n))
}

func (q *ByteQueue) discard(n int) {
	q.headOffset += uint64(n)
	// Compact occasionally instead of copying on every discard.
	q.data = q.data[n:]
	if cap(q.data) > 1<<16 && len(q.data) < cap(q.data)/4 {
		q.data = append([]byte(nil), q.data...)
	}
}

// Reset empties the queue and moves its head to the given offset.
func (q *ByteQueue) Reset(headOffset uint64) {
	q.data = q.data[:0]
	q.headOffset = headOffset
}
