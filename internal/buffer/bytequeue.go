// Package buffer provides the byte queues and reassembly structures used by
// the TCP and MPTCP endpoints: application send queues, in-order receive
// queues and the four out-of-order reassembly algorithms evaluated in §4.3 of
// the paper (Regular, Tree, Shortcuts, AllShortcuts).
package buffer

// ByteQueue is a FIFO byte stream with an absolute offset for its head. It
// backs both the subflow send buffer (offsets are subflow sequence numbers
// relative to the ISN) and the connection-level receive queue (offsets are
// data sequence numbers).
//
// Consumed bytes are tracked with an explicit head index instead of
// re-slicing, so Append can reclaim the consumed prefix of the backing array
// before growing: a steady-state write→ack cycle reuses one buffer forever
// instead of leaking capacity off the front and reallocating.
type ByteQueue struct {
	data []byte
	// head indexes the first live byte in data; bytes before it have been
	// consumed and their space is reclaimed on the next growing Append.
	head int
	// headOffset is the absolute stream offset of data[head].
	headOffset uint64
}

// NewByteQueue returns an empty queue whose head sits at the given absolute
// stream offset.
func NewByteQueue(headOffset uint64) *ByteQueue {
	return &ByteQueue{headOffset: headOffset}
}

// Len returns the number of buffered bytes.
func (q *ByteQueue) Len() int { return len(q.data) - q.head }

// HeadOffset returns the absolute offset of the first buffered byte.
func (q *ByteQueue) HeadOffset() uint64 { return q.headOffset }

// TailOffset returns the absolute offset one past the last buffered byte.
func (q *ByteQueue) TailOffset() uint64 { return q.headOffset + uint64(q.Len()) }

// Append adds data at the tail of the stream.
func (q *ByteQueue) Append(b []byte) {
	if q.head > 0 && len(q.data)+len(b) > cap(q.data) {
		// Reclaim the consumed prefix before the append would grow the
		// backing array.
		n := copy(q.data, q.data[q.head:])
		q.data = q.data[:n]
		q.head = 0
	}
	q.data = append(q.data, b...)
}

// Peek returns up to n bytes starting at absolute offset off without removing
// them. It returns nil if off is outside the buffered range.
func (q *ByteQueue) Peek(off uint64, n int) []byte {
	if off < q.headOffset || off >= q.TailOffset() {
		return nil
	}
	start := q.head + int(off-q.headOffset)
	end := start + n
	if end > len(q.data) {
		end = len(q.data)
	}
	return q.data[start:end]
}

// Pop removes and returns up to n bytes from the head of the queue. The
// returned slice is freshly allocated; zero-allocation consumers use Peek +
// TrimTo instead.
func (q *ByteQueue) Pop(n int) []byte {
	if n > q.Len() {
		n = q.Len()
	}
	out := append([]byte(nil), q.data[q.head:q.head+n]...)
	q.discard(n)
	return out
}

// TrimTo discards all bytes before absolute offset off (typically the
// cumulative acknowledgement point).
func (q *ByteQueue) TrimTo(off uint64) {
	if off <= q.headOffset {
		return
	}
	n := off - q.headOffset
	if n >= uint64(q.Len()) {
		q.data = q.data[:0]
		q.head = 0
		q.headOffset = off
		return
	}
	q.discard(int(n))
}

func (q *ByteQueue) discard(n int) {
	q.headOffset += uint64(n)
	q.head += n
	if q.head == len(q.data) {
		q.data = q.data[:0]
		q.head = 0
		return
	}
	// Shed a high-water backing array once the live bytes fall well below
	// it, so a queue that once absorbed a burst does not pin that peak for
	// the connection's lifetime. Small arrays are kept forever — that is
	// what makes the steady-state cycle allocation-free.
	if cap(q.data) > 1<<16 && q.Len() < cap(q.data)/4 {
		q.data = append([]byte(nil), q.data[q.head:]...)
		q.head = 0
	}
}

// Reset empties the queue and moves its head to the given offset.
func (q *ByteQueue) Reset(headOffset uint64) {
	q.data = q.data[:0]
	q.head = 0
	q.headOffset = headOffset
}

// CompactPrefix removes the first n elements of q in place: survivors shift
// to the front, the vacated tail slots are zeroed — load-bearing for
// pointer elements, so freed objects are not pinned (or aliased by free
// lists) through the backing array — and the shortened slice keeps its
// capacity. This is the shared drain primitive for the endpoint chunk
// queues and the connection-level in-flight list; re-slicing with q[n:]
// instead would leak capacity off the front and reallocate every window.
func CompactPrefix[T any](q []T, n int) []T {
	m := copy(q, q[n:])
	var zero T
	for i := m; i < len(q); i++ {
		q[i] = zero
	}
	return q[:m]
}
