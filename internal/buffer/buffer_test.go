package buffer

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestByteQueueBasics(t *testing.T) {
	q := NewByteQueue(100)
	q.Append([]byte("hello "))
	q.Append([]byte("world"))
	if q.Len() != 11 || q.HeadOffset() != 100 || q.TailOffset() != 111 {
		t.Fatalf("unexpected state: len=%d head=%d tail=%d", q.Len(), q.HeadOffset(), q.TailOffset())
	}
	if got := q.Peek(106, 5); string(got) != "world" {
		t.Fatalf("Peek = %q", got)
	}
	if got := q.Pop(6); string(got) != "hello " {
		t.Fatalf("Pop = %q", got)
	}
	if q.HeadOffset() != 106 {
		t.Fatalf("head after pop = %d", q.HeadOffset())
	}
	q.TrimTo(109)
	if q.Len() != 2 || string(q.Peek(109, 2)) != "ld" {
		t.Fatalf("trim result wrong: %q", q.Peek(109, 2))
	}
	q.TrimTo(200) // beyond tail
	if q.Len() != 0 || q.HeadOffset() != 200 {
		t.Fatalf("trim past tail: len=%d head=%d", q.Len(), q.HeadOffset())
	}
}

func TestByteQueuePeekOutOfRange(t *testing.T) {
	q := NewByteQueue(0)
	q.Append([]byte("abc"))
	if q.Peek(10, 1) != nil || q.Peek(3, 1) != nil {
		t.Fatal("out-of-range peeks must return nil")
	}
}

// streamModel checks an OfoQueue implementation against a trivial reference:
// random segments of a contiguous stream are inserted in random order, and
// the reassembled output must equal the original stream.
func streamModel(t *testing.T, alg Algorithm, segments int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const segSize = 100
	total := segments * segSize
	stream := make([]byte, total)
	rng.Read(stream)

	items := make([]Item, segments)
	for i := 0; i < segments; i++ {
		items[i] = Item{
			Seq:     uint64(i * segSize),
			Data:    stream[i*segSize : (i+1)*segSize],
			Subflow: i % 3,
		}
	}
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })

	q := NewOfoQueue(alg)
	var out []byte
	var next uint64
	deliver := func(its []Item) {
		for _, it := range its {
			out = append(out, it.Data...)
			next = it.End()
		}
	}
	for _, it := range items {
		if it.Seq == next {
			out = append(out, it.Data...)
			next = it.End()
			deliver(q.PopContiguous(next))
			continue
		}
		q.Insert(it)
		deliver(q.PopContiguous(next))
	}
	deliver(q.PopContiguous(next))

	if !bytes.Equal(out, stream) {
		t.Fatalf("%s: reassembled stream differs (got %d bytes, want %d)", alg, len(out), len(stream))
	}
	if q.Len() != 0 || q.Bytes() != 0 {
		t.Fatalf("%s: queue not empty after full reassembly: len=%d bytes=%d", alg, q.Len(), q.Bytes())
	}
}

func TestOfoQueueReassemblesAllAlgorithms(t *testing.T) {
	for _, alg := range Algorithms() {
		for seed := int64(1); seed <= 5; seed++ {
			streamModel(t, alg, 200, seed)
		}
	}
}

func TestOfoQueueDuplicatesAndOverlaps(t *testing.T) {
	for _, alg := range Algorithms() {
		q := NewOfoQueue(alg)
		q.Insert(Item{Seq: 100, Data: make([]byte, 50)})
		q.Insert(Item{Seq: 100, Data: make([]byte, 50)}) // exact duplicate
		q.Insert(Item{Seq: 125, Data: make([]byte, 50)}) // overlaps tail
		if q.Bytes() > 75 {
			t.Fatalf("%s: overlapping inserts should not double-count bytes, got %d", alg, q.Bytes())
		}
		out := q.PopContiguous(100)
		var n int
		for _, it := range out {
			n += len(it.Data)
		}
		if n != 75 {
			t.Fatalf("%s: expected 75 contiguous bytes, got %d", alg, n)
		}
	}
}

func TestOfoQueueStepsOrdering(t *testing.T) {
	// For a workload with a persistent hole, Regular must do more work than
	// AllShortcuts (this is the §4.3 claim in miniature).
	build := func(alg Algorithm) uint64 {
		q := NewOfoQueue(alg)
		// Hole at 0; two interleaved subflows deliver batches above it.
		seq := uint64(1000)
		for i := 0; i < 600; i++ {
			q.Insert(Item{Seq: seq, Data: make([]byte, 10), Subflow: i % 2})
			seq += 10
		}
		return q.Steps()
	}
	regular := build(AlgRegular)
	all := build(AlgAllShortcuts)
	if all >= regular {
		t.Fatalf("AllShortcuts (%d steps) should be cheaper than Regular (%d steps)", all, regular)
	}
}

// TestOfoQueueEquivalenceQuick is a property test: all four algorithms must
// produce identical reassembled streams for arbitrary insertion orders.
func TestOfoQueueEquivalenceQuick(t *testing.T) {
	f := func(order []uint8, holdFirst bool) bool {
		if len(order) == 0 {
			return true
		}
		if len(order) > 60 {
			order = order[:60]
		}
		segCount := len(order)
		const segSize = 8
		stream := make([]byte, segCount*segSize)
		for i := range stream {
			stream[i] = byte(i * 7)
		}
		results := make([][]byte, 0, 4)
		for _, alg := range Algorithms() {
			q := NewOfoQueue(alg)
			var out []byte
			var next uint64
			insert := func(idx int) {
				it := Item{Seq: uint64(idx * segSize), Data: stream[idx*segSize : (idx+1)*segSize], Subflow: idx % 2}
				if it.Seq == next {
					out = append(out, it.Data...)
					next = it.End()
				} else {
					q.Insert(it)
				}
				for _, d := range q.PopContiguous(next) {
					out = append(out, d.Data...)
					next = d.End()
				}
			}
			// Insertion order derived from the fuzzed slice.
			perm := make([]int, segCount)
			for i := range perm {
				perm[i] = i
			}
			for i, o := range order {
				j := int(o) % segCount
				perm[i], perm[j] = perm[j], perm[i]
			}
			for _, idx := range perm {
				insert(idx)
			}
			results = append(results, out)
		}
		for i := 1; i < len(results); i++ {
			if !bytes.Equal(results[0], results[i]) {
				return false
			}
		}
		return bytes.Equal(results[0], stream)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithmNames(t *testing.T) {
	want := map[Algorithm]string{
		AlgRegular:      "Regular",
		AlgTree:         "Tree",
		AlgShortcuts:    "Shortcuts",
		AlgAllShortcuts: "AllShortcuts",
	}
	for alg, name := range want {
		if alg.String() != name || NewOfoQueue(alg).Name() != name {
			t.Errorf("algorithm %d name mismatch", alg)
		}
	}
}
