package buffer

// treeQueue is the "Tree" out-of-order queue from §4.3: a balanced binary
// search tree (a treap with deterministic pseudo-random priorities) keyed by
// data sequence number. Insertion is logarithmic in the queue length, which
// is cheaper than the Regular linear scan but still slower than the Shortcuts
// variants for the common in-batch arrival pattern.
// Tree nodes are free-listed per queue (like the list queue's nodes) so
// steady-state insert/pop cycles do not allocate.
type treeQueue struct {
	root  *treeNode
	count int
	bytes int
	steps uint64
	// prioState drives the deterministic priority sequence.
	prioState uint64

	freeNodes  []*treeNode
	popScratch []Item
}

type treeNode struct {
	it          Item
	prio        uint64
	left, right *treeNode
}

func newTreeQueue() *treeQueue {
	return &treeQueue{prioState: 0x1234_5678_9abc_def1}
}

// Name implements OfoQueue.
func (q *treeQueue) Name() string { return "Tree" }

// Len implements OfoQueue.
func (q *treeQueue) Len() int { return q.count }

// Bytes implements OfoQueue.
func (q *treeQueue) Bytes() int { return q.bytes }

// Steps implements OfoQueue.
func (q *treeQueue) Steps() uint64 { return q.steps }

func (q *treeQueue) nextPrio() uint64 {
	x := q.prioState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	q.prioState = x
	return x * 0x2545f4914f6cdd1d
}

// Insert implements OfoQueue.
func (q *treeQueue) Insert(it Item) int {
	steps := 0

	// Trim against the predecessor and successor so stored items never
	// overlap; this mirrors the trimming the list-based queues perform.
	if pred := q.floor(it.Seq, &steps); pred != nil && pred.it.End() > it.Seq {
		if !trimItem(&it, pred.it.End()) {
			q.steps += uint64(steps)
			return steps
		}
	}
	if succ := q.ceiling(it.Seq, &steps); succ != nil && it.End() > succ.it.Seq {
		keep := succ.it.Seq - it.Seq
		if keep == 0 {
			q.steps += uint64(steps)
			return steps
		}
		it.Data = it.Data[:keep]
	}

	adoptItemData(&it)
	q.root = q.insertNode(q.root, q.newNode(it, q.nextPrio()), &steps)
	q.count++
	q.bytes += len(it.Data)
	q.steps += uint64(steps)
	return steps
}

// newNode takes a node from the free list (or allocates one) and loads it.
func (q *treeQueue) newNode(it Item, prio uint64) *treeNode {
	if n := len(q.freeNodes); n > 0 {
		nd := q.freeNodes[n-1]
		q.freeNodes = q.freeNodes[:n-1]
		nd.it, nd.prio = it, prio
		return nd
	}
	return &treeNode{it: it, prio: prio}
}

// recycleNode returns a detached node to the free list.
func (q *treeQueue) recycleNode(n *treeNode) {
	n.it = Item{}
	n.left, n.right = nil, nil
	q.freeNodes = append(q.freeNodes, n)
}

// floor returns the node with the largest Seq <= seq.
func (q *treeQueue) floor(seq uint64, steps *int) *treeNode {
	var best *treeNode
	n := q.root
	for n != nil {
		*steps++
		if n.it.Seq <= seq {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	return best
}

// ceiling returns the node with the smallest Seq > seq.
func (q *treeQueue) ceiling(seq uint64, steps *int) *treeNode {
	var best *treeNode
	n := q.root
	for n != nil {
		*steps++
		if n.it.Seq > seq {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	return best
}

func (q *treeQueue) insertNode(root, n *treeNode, steps *int) *treeNode {
	if root == nil {
		return n
	}
	*steps++
	if n.it.Seq < root.it.Seq {
		root.left = q.insertNode(root.left, n, steps)
		if root.left.prio > root.prio {
			root = rotateRight(root)
		}
	} else {
		root.right = q.insertNode(root.right, n, steps)
		if root.right.prio > root.prio {
			root = rotateLeft(root)
		}
	}
	return root
}

func rotateRight(n *treeNode) *treeNode {
	l := n.left
	n.left = l.right
	l.right = n
	return l
}

func rotateLeft(n *treeNode) *treeNode {
	r := n.right
	n.right = r.left
	r.left = n
	return r
}

// popMin removes and returns the node with the smallest Seq.
func (q *treeQueue) popMin() *treeNode {
	if q.root == nil {
		return nil
	}
	var parent *treeNode
	n := q.root
	for n.left != nil {
		parent = n
		n = n.left
	}
	if parent == nil {
		q.root = n.right
	} else {
		parent.left = n.right
	}
	q.count--
	q.bytes -= len(n.it.Data)
	return n
}

// peekMin returns the smallest node without removing it.
func (q *treeQueue) peekMin() *treeNode {
	n := q.root
	if n == nil {
		return nil
	}
	for n.left != nil {
		n = n.left
	}
	return n
}

// PopContiguous implements OfoQueue. The returned slice is reused by the
// next PopContiguous call on this queue.
func (q *treeQueue) PopContiguous(nextSeq uint64) []Item {
	out := q.popScratch[:0]
	for {
		min := q.peekMin()
		if min == nil {
			break
		}
		if min.it.End() <= nextSeq {
			// Pop (with the item still attached, so byte accounting sees its
			// length), then recycle buffer and node.
			n := q.popMin()
			it := n.it
			q.recycleNode(n)
			discardItemData(&it)
			continue
		}
		if min.it.Seq > nextSeq {
			break
		}
		n := q.popMin()
		it := n.it
		q.recycleNode(n)
		if !trimItem(&it, nextSeq) {
			discardItemData(&it)
			continue
		}
		out = append(out, it)
		nextSeq = it.End()
	}
	q.popScratch = out
	return out
}
