package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mptcpgo/internal/pool"
)

// Wire-format errors.
var (
	ErrOptionSpace   = errors.New("packet: options exceed 40-byte TCP option space")
	ErrShortSegment  = errors.New("packet: truncated segment")
	ErrBadDataOffset = errors.New("packet: bad data offset")
	ErrBadOption     = errors.New("packet: malformed option")
)

const headerLen = 20

// WireLen returns the number of bytes Encode will produce for the segment.
func WireLen(s *Segment) int {
	return headerLen + OptionsWireLen(s.Options) + len(s.Payload)
}

// WireLen returns the number of bytes Encode will produce for the segment.
// Method form of the package-level WireLen, for hot-path callers (the
// observability layer's per-segment byte accounting) that hold a segment.
func (s *Segment) WireLen() int { return WireLen(s) }

// Encode serializes the segment into the RFC 793 wire format (TCP header,
// options padded to a 4-byte boundary, payload) and fills in the TCP
// checksum. Addresses are included via the pseudo-header, matching how the
// checksum is computed on a real stack.
//
// The returned buffer is drawn from the internal/pool size classes and
// ownership transfers to the caller: return it with ReleaseWire (or
// pool.Recycle) once the bytes have been consumed, or let the garbage
// collector take it if it escapes. Encoding a steady stream of segments is
// allocation-free once the pool classes are warm.
func Encode(s *Segment) ([]byte, error) {
	optLen := OptionsWireLen(s.Options)
	if optLen > MaxOptionSpace {
		return nil, fmt.Errorf("%w: %d bytes", ErrOptionSpace, optLen)
	}
	hdrLen := headerLen + optLen
	buf := pool.Bytes(hdrLen + len(s.Payload))
	binary.BigEndian.PutUint16(buf[0:2], s.Src.Port)
	binary.BigEndian.PutUint16(buf[2:4], s.Dst.Port)
	binary.BigEndian.PutUint32(buf[4:8], uint32(s.Seq))
	binary.BigEndian.PutUint32(buf[8:12], uint32(s.Ack))
	buf[12] = byte(hdrLen/4) << 4
	buf[13] = byte(s.Flags)
	binary.BigEndian.PutUint16(buf[14:16], s.Window)
	// Pool buffers arrive with undefined contents: the checksum field must be
	// zero while the checksum is computed, and the urgent pointer is always
	// zero on the wire.
	buf[16], buf[17] = 0, 0
	buf[18], buf[19] = 0, 0

	off := headerLen
	for _, o := range s.Options {
		n, err := encodeOption(buf[off:hdrLen], o)
		if err != nil {
			pool.Recycle(buf)
			return nil, err
		}
		off += n
	}
	// Pad the remaining option space with NOPs (the padding is at most three
	// bytes, since OptionsWireLen rounds up to the 4-byte boundary).
	for off < hdrLen {
		buf[off] = byte(OptNOP)
		off++
	}
	copy(buf[hdrLen:], s.Payload)

	csum := TCPChecksum(s.Src, s.Dst, buf[:hdrLen], s.Payload)
	binary.BigEndian.PutUint16(buf[16:18], csum)
	return buf, nil
}

// ReleaseWire returns a buffer obtained from Encode to the buffer pool. It
// is safe on sub-sliced or foreign buffers (they are simply dropped).
func ReleaseWire(b []byte) { pool.Recycle(b) }

// VerifyTCPChecksum reports whether an encoded segment's checksum is valid
// for the given endpoints. The verification sums around the checksum field
// in place, so it never copies or allocates.
func VerifyTCPChecksum(src, dst Endpoint, wire []byte) bool {
	if len(wire) < headerLen {
		return false
	}
	hdrLen := int(wire[12]>>4) * 4
	if hdrLen < headerLen || hdrLen > len(wire) {
		return false
	}
	// The stored checksum occupies exactly one 16-bit word at an even offset,
	// so summing the bytes before and after it is congruent to summing the
	// whole header with the field zeroed.
	sum := pseudoHeaderSum(src, dst, len(wire))
	sum = PartialChecksum(sum, wire[:16])
	sum = PartialChecksum(sum, wire[18:])
	return FoldChecksum(sum) == binary.BigEndian.Uint16(wire[16:18])
}

func encodeOption(dst []byte, o Option) (int, error) {
	n := o.WireLen()
	if len(dst) < n {
		return 0, ErrOptionSpace
	}
	b := dst[:n]
	switch opt := o.(type) {
	case *MSSOption:
		b[0], b[1] = byte(OptMSS), 4
		binary.BigEndian.PutUint16(b[2:4], opt.MSS)
	case *WindowScaleOption:
		b[0], b[1], b[2] = byte(OptWindowScale), 3, opt.Shift
	case *TimestampsOption:
		b[0], b[1] = byte(OptTimestamps), 10
		binary.BigEndian.PutUint32(b[2:6], opt.Val)
		binary.BigEndian.PutUint32(b[6:10], opt.Echo)
	case *SACKPermittedOption:
		b[0], b[1] = byte(OptSACKPermitted), 2
	case *SACKOption:
		b[0], b[1] = byte(OptSACK), byte(2+8*len(opt.Blocks))
		for i, blk := range opt.Blocks {
			binary.BigEndian.PutUint32(b[2+8*i:], uint32(blk.Left))
			binary.BigEndian.PutUint32(b[6+8*i:], uint32(blk.Right))
		}
	case *MPCapableOption:
		b[0], b[1] = byte(OptMPTCP), byte(n)
		b[2] = byte(SubMPCapable)<<4 | (opt.Version & 0x0f)
		var flags byte = 0x01 // H: HMAC-SHA1
		if opt.ChecksumRequired {
			flags |= 0x80
		}
		b[3] = flags
		binary.BigEndian.PutUint64(b[4:12], opt.SenderKey)
		if opt.HasReceiverKey {
			binary.BigEndian.PutUint64(b[12:20], opt.ReceiverKey)
		}
	case *MPJoinOption:
		b[0], b[1] = byte(OptMPTCP), byte(n)
		var backup byte
		if opt.Backup {
			backup = 0x01
		}
		switch opt.Phase {
		case JoinSYN:
			b[2] = byte(SubMPJoin)<<4 | backup
			b[3] = opt.AddrID
			binary.BigEndian.PutUint32(b[4:8], opt.ReceiverToken)
			binary.BigEndian.PutUint32(b[8:12], opt.SenderNonce)
		case JoinSYNACK:
			b[2] = byte(SubMPJoin)<<4 | backup
			b[3] = opt.AddrID
			putHMAC(b[4:12], opt.SenderHMAC)
			binary.BigEndian.PutUint32(b[12:16], opt.SenderNonce)
		default: // JoinACK
			b[2] = byte(SubMPJoin) << 4
			b[3] = 0
			putHMAC(b[4:24], opt.SenderHMAC)
		}
	case *DSSOption:
		b[0], b[1] = byte(OptMPTCP), byte(n)
		b[2] = byte(SubDSS) << 4
		var flags byte
		if opt.DataFIN {
			flags |= 0x10
		}
		off := 4
		if opt.HasDataACK {
			flags |= 0x01 | 0x02 // data ACK present, 8 octets
			binary.BigEndian.PutUint64(b[off:], uint64(opt.DataACK))
			off += 8
		}
		if opt.HasMapping {
			flags |= 0x04 | 0x08 // DSN present, 8 octets
			binary.BigEndian.PutUint64(b[off:], uint64(opt.DataSeq))
			off += 8
			binary.BigEndian.PutUint32(b[off:], opt.SubflowOffset)
			off += 4
			binary.BigEndian.PutUint16(b[off:], opt.Length)
			off += 2
			if opt.HasChecksum {
				binary.BigEndian.PutUint16(b[off:], opt.Checksum)
				off += 2
			}
		}
		b[3] = flags
	case *AddAddrOption:
		b[0], b[1] = byte(OptMPTCP), byte(n)
		b[2] = byte(SubAddAddr)<<4 | 4 // IPVer = 4
		b[3] = opt.AddrID
		binary.BigEndian.PutUint32(b[4:8], uint32(opt.Addr))
		if opt.Port != 0 {
			binary.BigEndian.PutUint16(b[8:10], opt.Port)
		}
	case *RemoveAddrOption:
		b[0], b[1] = byte(OptMPTCP), byte(n)
		b[2] = byte(SubRemoveAddr) << 4
		copy(b[3:], opt.AddrIDs)
	case *MPPrioOption:
		b[0], b[1] = byte(OptMPTCP), byte(n)
		var backup byte
		if opt.Backup {
			backup = 0x01
		}
		b[2] = byte(SubMPPrio)<<4 | backup
		b[3] = opt.AddrID
	case *MPFailOption:
		b[0], b[1] = byte(OptMPTCP), byte(n)
		b[2] = byte(SubMPFail) << 4
		b[3] = 0
		binary.BigEndian.PutUint64(b[4:12], uint64(opt.DataSeq))
	case *FastcloseOption:
		b[0], b[1] = byte(OptMPTCP), byte(n)
		b[2] = byte(SubFastclose) << 4
		b[3] = 0
		binary.BigEndian.PutUint64(b[4:12], opt.ReceiverKey)
	default:
		return 0, fmt.Errorf("%w: unknown option type %T", ErrBadOption, o)
	}
	return n, nil
}

// putHMAC writes h into dst, zero-padding the tail; pool-backed encode
// buffers have undefined contents, so every byte must be written explicitly.
func putHMAC(dst, h []byte) {
	n := copy(dst, h)
	for ; n < len(dst); n++ {
		dst[n] = 0
	}
}

// Decode parses a wire-format segment. The src/dst endpoints carry the
// addresses (which live in the IP header on a real network); ports are taken
// from the TCP header itself.
//
// The returned segment is drawn from the segment pool with its options
// stored in the segment's inline arena, and its payload borrows from wire
// rather than copying — zero allocations at steady state. The caller owns
// the segment (Release it when done) and must keep wire alive and unmodified
// for as long as the segment's payload is in use; Clone the segment to
// outlive the wire buffer.
func Decode(src, dst Addr, wire []byte) (*Segment, error) {
	if len(wire) < headerLen {
		return nil, ErrShortSegment
	}
	hdrLen := int(wire[12]>>4) * 4
	if hdrLen < headerLen || hdrLen > len(wire) {
		return nil, ErrBadDataOffset
	}
	s := NewSegment()
	s.Src = Endpoint{Addr: src, Port: binary.BigEndian.Uint16(wire[0:2])}
	s.Dst = Endpoint{Addr: dst, Port: binary.BigEndian.Uint16(wire[2:4])}
	s.Seq = SeqNum(binary.BigEndian.Uint32(wire[4:8]))
	s.Ack = SeqNum(binary.BigEndian.Uint32(wire[8:12]))
	s.Flags = Flags(wire[13])
	s.Window = binary.BigEndian.Uint16(wire[14:16])
	if err := decodeOptionsInto(s, wire[headerLen:hdrLen]); err != nil {
		s.Release()
		return nil, err
	}
	if len(wire) > hdrLen {
		s.Payload = wire[hdrLen:]
	}
	return s, nil
}

// decodeOptionsInto parses the option block into the segment's option list,
// drawing option storage from the segment's arena.
func decodeOptionsInto(s *Segment, b []byte) error {
	for len(b) > 0 {
		kind := OptionKind(b[0])
		if kind == OptEOL {
			break
		}
		if kind == OptNOP {
			b = b[1:]
			continue
		}
		if len(b) < 2 {
			return ErrBadOption
		}
		olen := int(b[1])
		if olen < 2 || olen > len(b) {
			return ErrBadOption
		}
		if err := decodeOptionInto(s, kind, b[:olen]); err != nil {
			return err
		}
		b = b[olen:]
	}
	return nil
}

func decodeOptionInto(s *Segment, kind OptionKind, b []byte) error {
	switch kind {
	case OptMSS:
		if len(b) != 4 {
			return ErrBadOption
		}
		o := s.newMSS()
		o.MSS = binary.BigEndian.Uint16(b[2:4])
		s.Options = append(s.Options, o)
	case OptWindowScale:
		if len(b) != 3 {
			return ErrBadOption
		}
		o := s.newWindowScale()
		o.Shift = b[2]
		s.Options = append(s.Options, o)
	case OptTimestamps:
		if len(b) != 10 {
			return ErrBadOption
		}
		s.AppendTimestamps(binary.BigEndian.Uint32(b[2:6]), binary.BigEndian.Uint32(b[6:10]))
	case OptSACKPermitted:
		if len(b) != 2 {
			return ErrBadOption
		}
		s.Options = append(s.Options, s.newSACKPermitted())
	case OptSACK:
		if (len(b)-2)%8 != 0 {
			return ErrBadOption
		}
		o := s.newSACK((len(b) - 2) / 8)
		for i := range o.Blocks {
			o.Blocks[i] = SACKBlock{
				Left:  SeqNum(binary.BigEndian.Uint32(b[2+8*i:])),
				Right: SeqNum(binary.BigEndian.Uint32(b[6+8*i:])),
			}
		}
		s.Options = append(s.Options, o)
	case OptMPTCP:
		return decodeMPTCPInto(s, b)
	default:
		// Unknown options are preserved so that "pass options you don't
		// understand" middlebox behaviour can be modeled; for simplicity we
		// drop them here since our endpoints never emit unknown kinds.
	}
	return nil
}

func decodeMPTCPInto(s *Segment, b []byte) error {
	if len(b) < 3 {
		return ErrBadOption
	}
	sub := MPTCPSubtype(b[2] >> 4)
	switch sub {
	case SubMPCapable:
		if len(b) != 12 && len(b) != 20 {
			return ErrBadOption
		}
		o := s.newMPCapable()
		o.Version = b[2] & 0x0f
		o.ChecksumRequired = b[3]&0x80 != 0
		o.SenderKey = binary.BigEndian.Uint64(b[4:12])
		if len(b) == 20 {
			o.HasReceiverKey = true
			o.ReceiverKey = binary.BigEndian.Uint64(b[12:20])
		}
		s.Options = append(s.Options, o)
	case SubMPJoin:
		o := s.newMPJoin()
		switch len(b) {
		case 12:
			o.Phase = JoinSYN
			o.Backup = b[2]&0x01 != 0
			o.AddrID = b[3]
			o.ReceiverToken = binary.BigEndian.Uint32(b[4:8])
			o.SenderNonce = binary.BigEndian.Uint32(b[8:12])
		case 16:
			o.Phase = JoinSYNACK
			o.Backup = b[2]&0x01 != 0
			o.AddrID = b[3]
			o.SenderHMAC = s.arenaBytes(8)
			copy(o.SenderHMAC, b[4:12])
			o.SenderNonce = binary.BigEndian.Uint32(b[12:16])
		case 24:
			o.Phase = JoinACK
			o.SenderHMAC = s.arenaBytes(20)
			copy(o.SenderHMAC, b[4:24])
		default:
			return ErrBadOption
		}
		s.Options = append(s.Options, o)
	case SubDSS:
		if len(b) < 4 {
			return ErrBadOption
		}
		flags := b[3]
		o := s.NewDSSOption()
		o.DataFIN = flags&0x10 != 0
		off := 4
		if flags&0x01 != 0 {
			ackLen := 4
			if flags&0x02 != 0 {
				ackLen = 8
			}
			if len(b) < off+ackLen {
				return ErrBadOption
			}
			o.HasDataACK = true
			if ackLen == 8 {
				o.DataACK = DataSeq(binary.BigEndian.Uint64(b[off:]))
			} else {
				o.DataACK = DataSeq(binary.BigEndian.Uint32(b[off:]))
			}
			off += ackLen
		}
		if flags&0x04 != 0 {
			dsnLen := 4
			if flags&0x08 != 0 {
				dsnLen = 8
			}
			if len(b) < off+dsnLen+6 {
				return ErrBadOption
			}
			o.HasMapping = true
			if dsnLen == 8 {
				o.DataSeq = DataSeq(binary.BigEndian.Uint64(b[off:]))
			} else {
				o.DataSeq = DataSeq(binary.BigEndian.Uint32(b[off:]))
			}
			off += dsnLen
			o.SubflowOffset = binary.BigEndian.Uint32(b[off:])
			off += 4
			o.Length = binary.BigEndian.Uint16(b[off:])
			off += 2
			if len(b) >= off+2 {
				o.HasChecksum = true
				o.Checksum = binary.BigEndian.Uint16(b[off:])
			}
		}
		s.Options = append(s.Options, o)
	case SubAddAddr:
		if len(b) != 8 && len(b) != 10 {
			return ErrBadOption
		}
		o := s.newAddAddr()
		o.AddrID = b[3]
		o.Addr = Addr(binary.BigEndian.Uint32(b[4:8]))
		if len(b) == 10 {
			o.Port = binary.BigEndian.Uint16(b[8:10])
		}
		s.Options = append(s.Options, o)
	case SubRemoveAddr:
		if len(b) < 4 {
			return ErrBadOption
		}
		o := s.newRemoveAddr(len(b) - 3)
		copy(o.AddrIDs, b[3:])
		s.Options = append(s.Options, o)
	case SubMPPrio:
		o := s.newMPPrio()
		o.Backup = b[2]&0x01 != 0
		if len(b) >= 4 {
			o.AddrID = b[3]
		}
		s.Options = append(s.Options, o)
	case SubMPFail:
		if len(b) != 12 {
			return ErrBadOption
		}
		o := s.newMPFail()
		o.DataSeq = DataSeq(binary.BigEndian.Uint64(b[4:12]))
		s.Options = append(s.Options, o)
	case SubFastclose:
		if len(b) != 12 {
			return ErrBadOption
		}
		o := s.newFastclose()
		o.ReceiverKey = binary.BigEndian.Uint64(b[4:12])
		s.Options = append(s.Options, o)
	default:
		return fmt.Errorf("%w: MPTCP subtype %d", ErrBadOption, sub)
	}
	return nil
}
