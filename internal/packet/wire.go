package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire-format errors.
var (
	ErrOptionSpace   = errors.New("packet: options exceed 40-byte TCP option space")
	ErrShortSegment  = errors.New("packet: truncated segment")
	ErrBadDataOffset = errors.New("packet: bad data offset")
	ErrBadOption     = errors.New("packet: malformed option")
)

const headerLen = 20

// Encode serializes the segment into the RFC 793 wire format (TCP header,
// options padded to a 4-byte boundary, payload) and fills in the TCP
// checksum. Addresses are included via the pseudo-header, matching how the
// checksum is computed on a real stack.
func Encode(s *Segment) ([]byte, error) {
	optLen := OptionsWireLen(s.Options)
	if optLen > MaxOptionSpace {
		return nil, fmt.Errorf("%w: %d bytes", ErrOptionSpace, optLen)
	}
	hdrLen := headerLen + optLen
	buf := make([]byte, hdrLen+len(s.Payload))
	binary.BigEndian.PutUint16(buf[0:2], s.Src.Port)
	binary.BigEndian.PutUint16(buf[2:4], s.Dst.Port)
	binary.BigEndian.PutUint32(buf[4:8], uint32(s.Seq))
	binary.BigEndian.PutUint32(buf[8:12], uint32(s.Ack))
	buf[12] = byte(hdrLen/4) << 4
	buf[13] = byte(s.Flags)
	binary.BigEndian.PutUint16(buf[14:16], s.Window)
	// Checksum (buf[16:18]) is filled below; urgent pointer stays zero.

	off := headerLen
	for _, o := range s.Options {
		n, err := encodeOption(buf[off:hdrLen], o)
		if err != nil {
			return nil, err
		}
		off += n
	}
	// Pad remaining option space with NOPs, then terminate with EOL when the
	// padding is more than a byte (keeps decoders honest).
	for off < hdrLen {
		buf[off] = byte(OptNOP)
		off++
	}
	copy(buf[hdrLen:], s.Payload)

	csum := TCPChecksum(s.Src, s.Dst, buf[:hdrLen], s.Payload)
	binary.BigEndian.PutUint16(buf[16:18], csum)
	return buf, nil
}

// VerifyTCPChecksum reports whether an encoded segment's checksum is valid
// for the given endpoints.
func VerifyTCPChecksum(src, dst Endpoint, wire []byte) bool {
	if len(wire) < headerLen {
		return false
	}
	hdrLen := int(wire[12]>>4) * 4
	if hdrLen < headerLen || hdrLen > len(wire) {
		return false
	}
	cp := append([]byte(nil), wire...)
	binary.BigEndian.PutUint16(cp[16:18], 0)
	want := binary.BigEndian.Uint16(wire[16:18])
	return TCPChecksum(src, dst, cp[:hdrLen], cp[hdrLen:]) == want
}

func encodeOption(dst []byte, o Option) (int, error) {
	n := o.WireLen()
	if len(dst) < n {
		return 0, ErrOptionSpace
	}
	b := dst[:n]
	switch opt := o.(type) {
	case *MSSOption:
		b[0], b[1] = byte(OptMSS), 4
		binary.BigEndian.PutUint16(b[2:4], opt.MSS)
	case *WindowScaleOption:
		b[0], b[1], b[2] = byte(OptWindowScale), 3, opt.Shift
	case *TimestampsOption:
		b[0], b[1] = byte(OptTimestamps), 10
		binary.BigEndian.PutUint32(b[2:6], opt.Val)
		binary.BigEndian.PutUint32(b[6:10], opt.Echo)
	case *SACKPermittedOption:
		b[0], b[1] = byte(OptSACKPermitted), 2
	case *SACKOption:
		b[0], b[1] = byte(OptSACK), byte(2+8*len(opt.Blocks))
		for i, blk := range opt.Blocks {
			binary.BigEndian.PutUint32(b[2+8*i:], uint32(blk.Left))
			binary.BigEndian.PutUint32(b[6+8*i:], uint32(blk.Right))
		}
	case *MPCapableOption:
		b[0], b[1] = byte(OptMPTCP), byte(n)
		b[2] = byte(SubMPCapable)<<4 | (opt.Version & 0x0f)
		var flags byte = 0x01 // H: HMAC-SHA1
		if opt.ChecksumRequired {
			flags |= 0x80
		}
		b[3] = flags
		binary.BigEndian.PutUint64(b[4:12], opt.SenderKey)
		if opt.HasReceiverKey {
			binary.BigEndian.PutUint64(b[12:20], opt.ReceiverKey)
		}
	case *MPJoinOption:
		b[0], b[1] = byte(OptMPTCP), byte(n)
		var backup byte
		if opt.Backup {
			backup = 0x01
		}
		switch opt.Phase {
		case JoinSYN:
			b[2] = byte(SubMPJoin)<<4 | backup
			b[3] = opt.AddrID
			binary.BigEndian.PutUint32(b[4:8], opt.ReceiverToken)
			binary.BigEndian.PutUint32(b[8:12], opt.SenderNonce)
		case JoinSYNACK:
			b[2] = byte(SubMPJoin)<<4 | backup
			b[3] = opt.AddrID
			copy(b[4:12], padHMAC(opt.SenderHMAC, 8))
			binary.BigEndian.PutUint32(b[12:16], opt.SenderNonce)
		default: // JoinACK
			b[2] = byte(SubMPJoin) << 4
			b[3] = 0
			copy(b[4:24], padHMAC(opt.SenderHMAC, 20))
		}
	case *DSSOption:
		b[0], b[1] = byte(OptMPTCP), byte(n)
		b[2] = byte(SubDSS) << 4
		var flags byte
		if opt.DataFIN {
			flags |= 0x10
		}
		off := 4
		if opt.HasDataACK {
			flags |= 0x01 | 0x02 // data ACK present, 8 octets
			binary.BigEndian.PutUint64(b[off:], uint64(opt.DataACK))
			off += 8
		}
		if opt.HasMapping {
			flags |= 0x04 | 0x08 // DSN present, 8 octets
			binary.BigEndian.PutUint64(b[off:], uint64(opt.DataSeq))
			off += 8
			binary.BigEndian.PutUint32(b[off:], opt.SubflowOffset)
			off += 4
			binary.BigEndian.PutUint16(b[off:], opt.Length)
			off += 2
			if opt.HasChecksum {
				binary.BigEndian.PutUint16(b[off:], opt.Checksum)
				off += 2
			}
		}
		b[3] = flags
	case *AddAddrOption:
		b[0], b[1] = byte(OptMPTCP), byte(n)
		b[2] = byte(SubAddAddr)<<4 | 4 // IPVer = 4
		b[3] = opt.AddrID
		binary.BigEndian.PutUint32(b[4:8], uint32(opt.Addr))
		if opt.Port != 0 {
			binary.BigEndian.PutUint16(b[8:10], opt.Port)
		}
	case *RemoveAddrOption:
		b[0], b[1] = byte(OptMPTCP), byte(n)
		b[2] = byte(SubRemoveAddr) << 4
		copy(b[3:], opt.AddrIDs)
	case *MPPrioOption:
		b[0], b[1] = byte(OptMPTCP), byte(n)
		var backup byte
		if opt.Backup {
			backup = 0x01
		}
		b[2] = byte(SubMPPrio)<<4 | backup
		b[3] = opt.AddrID
	case *MPFailOption:
		b[0], b[1] = byte(OptMPTCP), byte(n)
		b[2] = byte(SubMPFail) << 4
		b[3] = 0
		binary.BigEndian.PutUint64(b[4:12], uint64(opt.DataSeq))
	case *FastcloseOption:
		b[0], b[1] = byte(OptMPTCP), byte(n)
		b[2] = byte(SubFastclose) << 4
		b[3] = 0
		binary.BigEndian.PutUint64(b[4:12], opt.ReceiverKey)
	default:
		return 0, fmt.Errorf("%w: unknown option type %T", ErrBadOption, o)
	}
	return n, nil
}

func padHMAC(h []byte, n int) []byte {
	out := make([]byte, n)
	copy(out, h)
	return out
}

// Decode parses a wire-format segment. The src/dst endpoints carry the
// addresses (which live in the IP header on a real network); ports are taken
// from the TCP header itself.
func Decode(src, dst Addr, wire []byte) (*Segment, error) {
	if len(wire) < headerLen {
		return nil, ErrShortSegment
	}
	hdrLen := int(wire[12]>>4) * 4
	if hdrLen < headerLen || hdrLen > len(wire) {
		return nil, ErrBadDataOffset
	}
	s := &Segment{
		Src:    Endpoint{Addr: src, Port: binary.BigEndian.Uint16(wire[0:2])},
		Dst:    Endpoint{Addr: dst, Port: binary.BigEndian.Uint16(wire[2:4])},
		Seq:    SeqNum(binary.BigEndian.Uint32(wire[4:8])),
		Ack:    SeqNum(binary.BigEndian.Uint32(wire[8:12])),
		Flags:  Flags(wire[13]),
		Window: binary.BigEndian.Uint16(wire[14:16]),
	}
	opts, err := decodeOptions(wire[headerLen:hdrLen])
	if err != nil {
		return nil, err
	}
	s.Options = opts
	if len(wire) > hdrLen {
		s.Payload = append([]byte(nil), wire[hdrLen:]...)
	}
	return s, nil
}

func decodeOptions(b []byte) ([]Option, error) {
	var opts []Option
	for len(b) > 0 {
		kind := OptionKind(b[0])
		if kind == OptEOL {
			break
		}
		if kind == OptNOP {
			b = b[1:]
			continue
		}
		if len(b) < 2 {
			return nil, ErrBadOption
		}
		olen := int(b[1])
		if olen < 2 || olen > len(b) {
			return nil, ErrBadOption
		}
		body := b[:olen]
		opt, err := decodeOption(kind, body)
		if err != nil {
			return nil, err
		}
		if opt != nil {
			opts = append(opts, opt)
		}
		b = b[olen:]
	}
	return opts, nil
}

func decodeOption(kind OptionKind, b []byte) (Option, error) {
	switch kind {
	case OptMSS:
		if len(b) != 4 {
			return nil, ErrBadOption
		}
		return &MSSOption{MSS: binary.BigEndian.Uint16(b[2:4])}, nil
	case OptWindowScale:
		if len(b) != 3 {
			return nil, ErrBadOption
		}
		return &WindowScaleOption{Shift: b[2]}, nil
	case OptTimestamps:
		if len(b) != 10 {
			return nil, ErrBadOption
		}
		return &TimestampsOption{
			Val:  binary.BigEndian.Uint32(b[2:6]),
			Echo: binary.BigEndian.Uint32(b[6:10]),
		}, nil
	case OptSACKPermitted:
		if len(b) != 2 {
			return nil, ErrBadOption
		}
		return &SACKPermittedOption{}, nil
	case OptSACK:
		if (len(b)-2)%8 != 0 {
			return nil, ErrBadOption
		}
		o := &SACKOption{}
		for i := 2; i < len(b); i += 8 {
			o.Blocks = append(o.Blocks, SACKBlock{
				Left:  SeqNum(binary.BigEndian.Uint32(b[i:])),
				Right: SeqNum(binary.BigEndian.Uint32(b[i+4:])),
			})
		}
		return o, nil
	case OptMPTCP:
		return decodeMPTCP(b)
	default:
		// Unknown options are preserved so that "pass options you don't
		// understand" middlebox behaviour can be modeled; for simplicity we
		// drop them here since our endpoints never emit unknown kinds.
		return nil, nil
	}
}

func decodeMPTCP(b []byte) (Option, error) {
	if len(b) < 3 {
		return nil, ErrBadOption
	}
	sub := MPTCPSubtype(b[2] >> 4)
	switch sub {
	case SubMPCapable:
		if len(b) != 12 && len(b) != 20 {
			return nil, ErrBadOption
		}
		o := &MPCapableOption{
			Version:          b[2] & 0x0f,
			ChecksumRequired: b[3]&0x80 != 0,
			SenderKey:        binary.BigEndian.Uint64(b[4:12]),
		}
		if len(b) == 20 {
			o.HasReceiverKey = true
			o.ReceiverKey = binary.BigEndian.Uint64(b[12:20])
		}
		return o, nil
	case SubMPJoin:
		switch len(b) {
		case 12:
			return &MPJoinOption{
				Phase:         JoinSYN,
				Backup:        b[2]&0x01 != 0,
				AddrID:        b[3],
				ReceiverToken: binary.BigEndian.Uint32(b[4:8]),
				SenderNonce:   binary.BigEndian.Uint32(b[8:12]),
			}, nil
		case 16:
			return &MPJoinOption{
				Phase:       JoinSYNACK,
				Backup:      b[2]&0x01 != 0,
				AddrID:      b[3],
				SenderHMAC:  append([]byte(nil), b[4:12]...),
				SenderNonce: binary.BigEndian.Uint32(b[12:16]),
			}, nil
		case 24:
			return &MPJoinOption{
				Phase:      JoinACK,
				SenderHMAC: append([]byte(nil), b[4:24]...),
			}, nil
		default:
			return nil, ErrBadOption
		}
	case SubDSS:
		flags := b[3]
		o := &DSSOption{DataFIN: flags&0x10 != 0}
		off := 4
		if flags&0x01 != 0 {
			ackLen := 4
			if flags&0x02 != 0 {
				ackLen = 8
			}
			if len(b) < off+ackLen {
				return nil, ErrBadOption
			}
			o.HasDataACK = true
			if ackLen == 8 {
				o.DataACK = DataSeq(binary.BigEndian.Uint64(b[off:]))
			} else {
				o.DataACK = DataSeq(binary.BigEndian.Uint32(b[off:]))
			}
			off += ackLen
		}
		if flags&0x04 != 0 {
			dsnLen := 4
			if flags&0x08 != 0 {
				dsnLen = 8
			}
			if len(b) < off+dsnLen+6 {
				return nil, ErrBadOption
			}
			o.HasMapping = true
			if dsnLen == 8 {
				o.DataSeq = DataSeq(binary.BigEndian.Uint64(b[off:]))
			} else {
				o.DataSeq = DataSeq(binary.BigEndian.Uint32(b[off:]))
			}
			off += dsnLen
			o.SubflowOffset = binary.BigEndian.Uint32(b[off:])
			off += 4
			o.Length = binary.BigEndian.Uint16(b[off:])
			off += 2
			if len(b) >= off+2 {
				o.HasChecksum = true
				o.Checksum = binary.BigEndian.Uint16(b[off:])
			}
		}
		return o, nil
	case SubAddAddr:
		if len(b) != 8 && len(b) != 10 {
			return nil, ErrBadOption
		}
		o := &AddAddrOption{
			AddrID: b[3],
			Addr:   Addr(binary.BigEndian.Uint32(b[4:8])),
		}
		if len(b) == 10 {
			o.Port = binary.BigEndian.Uint16(b[8:10])
		}
		return o, nil
	case SubRemoveAddr:
		if len(b) < 4 {
			return nil, ErrBadOption
		}
		return &RemoveAddrOption{AddrIDs: append([]uint8(nil), b[3:]...)}, nil
	case SubMPPrio:
		o := &MPPrioOption{Backup: b[2]&0x01 != 0}
		if len(b) >= 4 {
			o.AddrID = b[3]
		}
		return o, nil
	case SubMPFail:
		if len(b) != 12 {
			return nil, ErrBadOption
		}
		return &MPFailOption{DataSeq: DataSeq(binary.BigEndian.Uint64(b[4:12]))}, nil
	case SubFastclose:
		if len(b) != 12 {
			return nil, ErrBadOption
		}
		return &FastcloseOption{ReceiverKey: binary.BigEndian.Uint64(b[4:12])}, nil
	default:
		return nil, fmt.Errorf("%w: MPTCP subtype %d", ErrBadOption, sub)
	}
}
