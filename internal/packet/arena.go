package packet

// Per-segment option arena. Decoding a segment used to allocate one heap
// object per option (plus a slice per SACK block list, HMAC and address-ID
// list), and the send path allocated fresh Timestamps/SACK/DSS objects for
// every outgoing segment. The arena gives each pooled Segment a fixed block
// of inline option storage instead: options are carved out of the arena,
// live exactly as long as the segment, and are reclaimed wholesale when the
// segment is released. Option pointers obtained from a segment's arena must
// therefore never outlive the segment — copy the values out (or CloneOption)
// to keep them.
//
// The slot counts cover everything a 40-byte TCP option space can carry in
// practice; pathological inputs (e.g. a fuzzed header stuffed with ten MSS
// options) fall back to ordinary heap allocation, trading speed for
// correctness.
type optionArena struct {
	mss    [2]MSSOption
	ws     [2]WindowScaleOption
	ts     [2]TimestampsOption
	sackP  [2]SACKPermittedOption
	sack   [2]SACKOption
	blocks [8]SACKBlock
	mpc    [2]MPCapableOption
	join   [2]MPJoinOption
	hmac   [40]byte
	dss    [4]DSSOption
	add    [4]AddAddrOption
	rm     [2]RemoveAddrOption
	ids    [16]uint8
	prio   [2]MPPrioOption
	fail   [2]MPFailOption
	fc     [2]FastcloseOption

	nMSS, nWS, nTS, nSackP, nSack, nBlocks    uint8
	nMPC, nJoin, nHMAC, nDSS, nAdd, nRm, nIDs uint8
	nPrio, nFail, nFC                         uint8
}

// reset forgets every allocation; the slots themselves are zeroed lazily on
// their next use.
func (a *optionArena) reset() {
	a.nMSS, a.nWS, a.nTS, a.nSackP, a.nSack, a.nBlocks = 0, 0, 0, 0, 0, 0
	a.nMPC, a.nJoin, a.nHMAC, a.nDSS, a.nAdd, a.nRm, a.nIDs = 0, 0, 0, 0, 0, 0, 0
	a.nPrio, a.nFail, a.nFC = 0, 0, 0
}

// arena returns the segment's option arena, creating it on first use.
// Segments that cycle through the pool keep their arena across reuses.
func (s *Segment) arena() *optionArena {
	if s.optArena == nil {
		s.optArena = new(optionArena)
	}
	return s.optArena
}

// Typed allocators. Each returns a zeroed value backed by the segment's
// arena, falling back to the heap when the arena slots are exhausted.

func (s *Segment) newMSS() *MSSOption {
	a := s.arena()
	if int(a.nMSS) < len(a.mss) {
		o := &a.mss[a.nMSS]
		a.nMSS++
		*o = MSSOption{}
		return o
	}
	return &MSSOption{}
}

func (s *Segment) newWindowScale() *WindowScaleOption {
	a := s.arena()
	if int(a.nWS) < len(a.ws) {
		o := &a.ws[a.nWS]
		a.nWS++
		*o = WindowScaleOption{}
		return o
	}
	return &WindowScaleOption{}
}

func (s *Segment) newTimestamps() *TimestampsOption {
	a := s.arena()
	if int(a.nTS) < len(a.ts) {
		o := &a.ts[a.nTS]
		a.nTS++
		*o = TimestampsOption{}
		return o
	}
	return &TimestampsOption{}
}

func (s *Segment) newSACKPermitted() *SACKPermittedOption {
	a := s.arena()
	if int(a.nSackP) < len(a.sackP) {
		o := &a.sackP[a.nSackP]
		a.nSackP++
		*o = SACKPermittedOption{}
		return o
	}
	return &SACKPermittedOption{}
}

// newSACK returns a SACK option whose Blocks slice has length n (zeroed),
// arena-backed when it fits.
func (s *Segment) newSACK(n int) *SACKOption {
	a := s.arena()
	var o *SACKOption
	if int(a.nSack) < len(a.sack) {
		o = &a.sack[a.nSack]
		a.nSack++
		*o = SACKOption{}
	} else {
		o = &SACKOption{}
	}
	o.Blocks = s.newSACKBlocks(n)
	return o
}

// newSACKBlocks carves a zeroed block slice out of the arena (full capacity
// clamp, so appends never spill into neighbouring allocations).
func (s *Segment) newSACKBlocks(n int) []SACKBlock {
	a := s.arena()
	if int(a.nBlocks)+n <= len(a.blocks) {
		lo := int(a.nBlocks)
		a.nBlocks += uint8(n)
		bl := a.blocks[lo : lo+n : lo+n]
		for i := range bl {
			bl[i] = SACKBlock{}
		}
		return bl
	}
	return make([]SACKBlock, n)
}

func (s *Segment) newMPCapable() *MPCapableOption {
	a := s.arena()
	if int(a.nMPC) < len(a.mpc) {
		o := &a.mpc[a.nMPC]
		a.nMPC++
		*o = MPCapableOption{}
		return o
	}
	return &MPCapableOption{}
}

func (s *Segment) newMPJoin() *MPJoinOption {
	a := s.arena()
	if int(a.nJoin) < len(a.join) {
		o := &a.join[a.nJoin]
		a.nJoin++
		*o = MPJoinOption{}
		return o
	}
	return &MPJoinOption{}
}

// arenaBytes carves n bytes out of the arena's HMAC store (for MP_JOIN
// HMACs), or heap-allocates when full.
func (s *Segment) arenaBytes(n int) []byte {
	a := s.arena()
	if int(a.nHMAC)+n <= len(a.hmac) {
		lo := int(a.nHMAC)
		a.nHMAC += uint8(n)
		return a.hmac[lo : lo+n : lo+n]
	}
	return make([]byte, n)
}

// NewDSSOption returns a zeroed DSS option backed by the segment's arena.
// The returned option is valid only for the lifetime of the segment.
func (s *Segment) NewDSSOption() *DSSOption {
	a := s.arena()
	if int(a.nDSS) < len(a.dss) {
		o := &a.dss[a.nDSS]
		a.nDSS++
		*o = DSSOption{}
		return o
	}
	return &DSSOption{}
}

func (s *Segment) newAddAddr() *AddAddrOption {
	a := s.arena()
	if int(a.nAdd) < len(a.add) {
		o := &a.add[a.nAdd]
		a.nAdd++
		*o = AddAddrOption{}
		return o
	}
	return &AddAddrOption{}
}

func (s *Segment) newRemoveAddr(n int) *RemoveAddrOption {
	a := s.arena()
	var o *RemoveAddrOption
	if int(a.nRm) < len(a.rm) {
		o = &a.rm[a.nRm]
		a.nRm++
		*o = RemoveAddrOption{}
	} else {
		o = &RemoveAddrOption{}
	}
	if int(a.nIDs)+n <= len(a.ids) {
		lo := int(a.nIDs)
		a.nIDs += uint8(n)
		o.AddrIDs = a.ids[lo : lo+n : lo+n]
		for i := range o.AddrIDs {
			o.AddrIDs[i] = 0
		}
	} else {
		o.AddrIDs = make([]uint8, n)
	}
	return o
}

func (s *Segment) newMPPrio() *MPPrioOption {
	a := s.arena()
	if int(a.nPrio) < len(a.prio) {
		o := &a.prio[a.nPrio]
		a.nPrio++
		*o = MPPrioOption{}
		return o
	}
	return &MPPrioOption{}
}

func (s *Segment) newMPFail() *MPFailOption {
	a := s.arena()
	if int(a.nFail) < len(a.fail) {
		o := &a.fail[a.nFail]
		a.nFail++
		*o = MPFailOption{}
		return o
	}
	return &MPFailOption{}
}

func (s *Segment) newFastclose() *FastcloseOption {
	a := s.arena()
	if int(a.nFC) < len(a.fc) {
		o := &a.fc[a.nFC]
		a.nFC++
		*o = FastcloseOption{}
		return o
	}
	return &FastcloseOption{}
}

// ---------------------------------------------------------------------------
// Hot-path builders used by the TCP/MPTCP send path
// ---------------------------------------------------------------------------

// AppendDSS allocates a zeroed DSS option from the segment's arena, appends
// it to the option list and returns it for the caller to fill in.
func (s *Segment) AppendDSS() *DSSOption {
	o := s.NewDSSOption()
	s.Options = append(s.Options, o)
	return o
}

// AppendTimestamps appends an arena-backed RFC 1323 timestamps option.
func (s *Segment) AppendTimestamps(val, echo uint32) {
	o := s.newTimestamps()
	o.Val, o.Echo = val, echo
	s.Options = append(s.Options, o)
}

// AppendSACK appends an arena-backed SACK option carrying a copy of blocks.
func (s *Segment) AppendSACK(blocks []SACKBlock) {
	o := s.newSACK(len(blocks))
	copy(o.Blocks, blocks)
	s.Options = append(s.Options, o)
}

// AppendOptionCopy appends a deep copy of o drawn from the segment's arena.
// The send path uses it to give every outgoing segment its own option
// objects: a segment in flight never aliases the sender's retransmission
// state, which is what makes recycling chunks and their DSS options safe.
func (s *Segment) AppendOptionCopy(o Option) {
	var c Option
	switch opt := o.(type) {
	case *MSSOption:
		n := s.newMSS()
		*n = *opt
		c = n
	case *WindowScaleOption:
		n := s.newWindowScale()
		*n = *opt
		c = n
	case *TimestampsOption:
		n := s.newTimestamps()
		*n = *opt
		c = n
	case *SACKPermittedOption:
		c = s.newSACKPermitted()
	case *SACKOption:
		n := s.newSACK(len(opt.Blocks))
		copy(n.Blocks, opt.Blocks)
		c = n
	case *MPCapableOption:
		n := s.newMPCapable()
		*n = *opt
		c = n
	case *MPJoinOption:
		n := s.newMPJoin()
		*n = *opt
		if opt.SenderHMAC != nil {
			n.SenderHMAC = s.arenaBytes(len(opt.SenderHMAC))
			copy(n.SenderHMAC, opt.SenderHMAC)
		}
		c = n
	case *DSSOption:
		n := s.NewDSSOption()
		*n = *opt
		c = n
	case *AddAddrOption:
		n := s.newAddAddr()
		*n = *opt
		c = n
	case *RemoveAddrOption:
		n := s.newRemoveAddr(len(opt.AddrIDs))
		copy(n.AddrIDs, opt.AddrIDs)
		c = n
	case *MPPrioOption:
		n := s.newMPPrio()
		*n = *opt
		c = n
	case *MPFailOption:
		n := s.newMPFail()
		*n = *opt
		c = n
	case *FastcloseOption:
		n := s.newFastclose()
		*n = *opt
		c = n
	default:
		c = o.CloneOption()
	}
	s.Options = append(s.Options, c)
}
